package fleet

import (
	"testing"
	"time"
)

// TestBreakerLifecycle pins the closed → open → half-open → closed walk
// with an injected clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	opens := 0
	b := newBreaker(3, time.Second, func() { opens++ })
	b.now = func() time.Time { return now }

	// Closed: failures below threshold keep admitting.
	for i := 0; i < 2; i++ {
		b.Failure()
		if ok, _ := b.Allow(); !ok {
			t.Fatalf("breaker tripped after %d failures, threshold 3", i+1)
		}
	}
	// A success resets the consecutive count.
	b.Success()
	b.Failure()
	b.Failure()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after reset+2 failures = %v, want closed", got)
	}
	// Third consecutive failure trips it.
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if opens != 1 {
		t.Fatalf("open observer fired %d times, want 1", opens)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}

	// Cooldown elapses: exactly one half-open trial is admitted.
	now = now.Add(time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("post-cooldown Allow = (%v,%v), want one trial", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// Failed trial reopens with a fresh cooldown.
	b.Failure()
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker admitted traffic right after a failed trial")
	}
	if opens != 2 {
		t.Fatalf("open observer fired %d times after re-trip, want 2", opens)
	}

	// Next trial succeeds: closed again, failures start from zero.
	now = now.Add(time.Second)
	ok, probe = b.Allow()
	if !ok || !probe {
		t.Fatal("breaker refused the second trial")
	}
	b.Success()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after successful trial = %v, want closed", got)
	}
	b.Failure()
	b.Failure()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("failure count survived the close")
	}
}

// TestBreakerCancelReturnsTrialSlot checks an unused half-open slot can
// be handed to the next caller.
func TestBreakerCancelReturnsTrialSlot(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Second, nil)
	b.now = func() time.Time { return now }
	b.Failure() // trips at threshold 1
	now = now.Add(2 * time.Second)
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatal("no trial admitted after cooldown")
	}
	b.Cancel(probe)
	if ok, probe = b.Allow(); !ok || !probe {
		t.Fatal("cancelled trial slot was not returned")
	}
	// Cancel with probe=false is a no-op and must not free a held slot.
	b.Cancel(false)
	if ok, _ := b.Allow(); ok {
		t.Fatal("Cancel(false) freed the trial slot it did not hold")
	}
}

// TestBreakerProbeDrivenClose pins the health-probe path: once the
// cooldown elapses, a successful /healthz probe closes the breaker
// without spending a client request on the trial — but inside the
// cooldown, probes (which only prove /healthz works, not /v1/map) must
// not wash the breaker closed.
func TestBreakerProbeDrivenClose(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(1, time.Second, nil)
	b.now = func() time.Time { return now }
	b.Failure()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	b.ProbeSuccess()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("probe inside the cooldown closed the breaker (state %v)", got)
	}
	now = now.Add(2 * time.Second)
	b.ProbeSuccess()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after post-cooldown probe = %v, want closed", got)
	}
	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("Allow after probe-driven close = (%v,%v), want plain admission", ok, probe)
	}
}
