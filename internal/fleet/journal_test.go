package fleet

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestJournalRoundTrip appends a membership and job history, reopens the
// file, and checks the replay reconstructs the surviving state.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coordinator.journal")
	j, st, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.applied != 0 || len(st.workers) != 0 {
		t.Fatalf("fresh journal replayed state: %+v", st)
	}
	req := &DatasetJobRequest{Circuits: []string{"rc16"}, MapsPerCircuit: 4, Shards: 2, Seed: 9}
	records := []journalRecord{
		{Op: opWorkerAdd, Name: "w1", URL: "http://h1:1"},
		{Op: opWorkerAdd, Name: "w2", URL: "http://h2:1"},
		{Op: opWorkerRemove, Name: "w1"},
		{Op: opWorkerAdd, Name: "w1", URL: "http://h1:9"}, // re-registered on a new port
		{Op: opJobSubmit, Job: "fleet-0001", OutDir: "/jobs/fleet-0001", Req: req},
		{Op: opJobSubmit, Job: "fleet-0002", OutDir: "/jobs/fleet-0002", Req: req},
		{Op: opJobDone, Job: "fleet-0001", File: "/jobs/fleet-0001/dataset.gob"},
	}
	for _, r := range records {
		if err := j.append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	j2, st2, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if st2.applied != len(records) || st2.dropped != 0 {
		t.Fatalf("replay applied %d dropped %d, want %d/0", st2.applied, st2.dropped, len(records))
	}
	if len(st2.workers) != 2 {
		t.Fatalf("membership = %d workers, want 2", len(st2.workers))
	}
	if got := st2.workers["w1"].URL; got != "http://h1:9" {
		t.Fatalf("w1 URL = %q, want last-record-wins http://h1:9", got)
	}
	if got := []string{"fleet-0001", "fleet-0002"}; len(st2.order) != 2 || st2.order[0] != got[0] || st2.order[1] != got[1] {
		t.Fatalf("job order = %v, want %v", st2.order, got)
	}
	if st2.jobs["fleet-0001"].Op != opJobDone {
		t.Fatal("finished job did not keep its terminal record")
	}
	// Terminal records inherit the submit's request so status survives.
	if r := st2.jobs["fleet-0001"]; r.Req == nil || r.Req.Seed != 9 || r.OutDir != "/jobs/fleet-0001" {
		t.Fatalf("terminal record lost the submit context: %+v", r)
	}
	if st2.jobs["fleet-0002"].Op != opJobSubmit {
		t.Fatal("unfinished job lost its submit record")
	}
}

// TestJournalTornAndCorruptLines pins crash tolerance: a torn trailing
// line (SIGKILL mid-append) and a bit-flipped line are both dropped
// without poisoning the rest of the replay.
func TestJournalTornAndCorruptLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "coordinator.journal")
	j, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Op: opWorkerAdd, Name: "w1", URL: "http://h1:1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.append(journalRecord{Op: opWorkerAdd, Name: "w2", URL: "http://h2:1"}); err != nil {
		t.Fatal(err)
	}
	j.close()

	// Flip a byte inside w2's URL (keeps valid JSON, breaks the CRC) and
	// append a torn half-record.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := []byte(string(b))
	idx := -1
	for i := range mut {
		if string(mut[i:i+2]) == "h2" {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("marker not found")
	}
	mut[idx] = 'x'
	mut = append(mut, []byte(`{"op":"worker-add","name":"w3","url":"http`)...)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, st, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.close()
	if st.dropped != 2 {
		t.Fatalf("dropped %d records, want 2 (corrupt + torn)", st.dropped)
	}
	if len(st.workers) != 1 || st.workers["w1"].URL != "http://h1:1" {
		t.Fatalf("surviving membership = %+v, want just w1", st.workers)
	}
}

// TestJournalRejectsForeignFile refuses to replay a file that is not a
// coordinator journal.
func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	rec := journalRecord{Op: opWorkerAdd, Name: "w1"}
	sum, err := rec.checksum()
	if err != nil {
		t.Fatal(err)
	}
	rec.Sum = sum
	b, _ := json.Marshal(rec)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openJournal(path); err == nil {
		t.Fatal("openJournal accepted a file without the journal header")
	}
}
