// Package fleet scales the mapping service past one machine: a
// coordinator fronts a pool of slap-serve worker nodes, routing /v1/map
// and /v1/classify traffic by consistent hashing on the design's
// structural hash — so resubmissions and ECO edits of the same design
// land on the worker whose cut arena and result cache are already warm —
// probing worker health, retrying dead workers on the next ring replica,
// shedding load when the whole fleet is saturated, and fanning dataset
// sweeps out as checksummed genjob shards that merge centrally,
// byte-identical to a single-process run.
package fleet

import (
	"sort"
)

// DefaultVNodes is the number of virtual nodes each worker contributes to
// the ring. 64 points per worker keeps the keyspace split within a few
// percent of even for small fleets while a membership change still moves
// only ~1/N of the keys.
const DefaultVNodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// member.
type ringPoint struct {
	hash   uint64
	member int32
}

// Ring is an immutable consistent-hash ring over worker names. Positions
// depend only on the member names (not join order, not process identity),
// so a coordinator restart with the same membership reproduces the exact
// same routing — that determinism is what keeps affinity warm across
// coordinator redeploys.
type Ring struct {
	points  []ringPoint
	members []string
}

// mix64 is the splitmix64 finalizer (same mixer internal/aig uses for
// structural hashing).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// memberHash hashes a member name to a stable 64-bit seed (FNV-1a then
// avalanched), from which its virtual nodes are derived.
func memberHash(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	return mix64(h)
}

// NewRing builds a ring over the given member names with vnodes virtual
// nodes each (<= 0 means DefaultVNodes). Member order is irrelevant; nil
// or empty membership yields an empty ring whose lookups return nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	// Sort a copy so equal membership sets build identical rings
	// regardless of the order workers registered in.
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	r := &Ring{
		members: ms,
		points:  make([]ringPoint, 0, len(ms)*vnodes),
	}
	for mi, name := range ms {
		seed := memberHash(name)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   mix64(seed ^ mix64(uint64(v)+0x9e3779b97f4a7c15)),
				member: int32(mi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break by member name so even a hash collision cannot make
		// the ring order depend on input order.
		return r.members[r.points[i].member] < r.members[r.points[j].member]
	})
	return r
}

// Members returns the ring's membership, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Size returns the number of members.
func (r *Ring) Size() int { return len(r.members) }

// Lookup returns up to n distinct members in preference order for key: the
// owner of the first ring point clockwise of the key, then the owners of
// the following points, each member listed once. n <= 0 (or n larger than
// the membership) returns every member, making the result a full failover
// order.
func (r *Ring) Lookup(key uint64, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, r.members[p.member])
	}
	return out
}

// Owner returns the primary member for key ("" on an empty ring).
func (r *Ring) Owner(key uint64) string {
	m := r.Lookup(key, 1)
	if len(m) == 0 {
		return ""
	}
	return m[0]
}

// ShardKey maps a dataset shard id onto the ring keyspace, so shard
// executions of a repeated sweep keep landing on the same workers.
func ShardKey(shard int) uint64 {
	return mix64(uint64(shard) + 0xd6e8feb86659fd93)
}
