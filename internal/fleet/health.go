package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// WorkerState is the coordinator's view of one worker's health.
type WorkerState int

// The worker health state machine:
//
//	up ──(probe sees "degraded")──▶ degraded ──(probe sees "ok")──▶ up
//	up/degraded ──(DeadAfter consecutive probe or proxy failures)──▶ dead
//	dead ──(any successful probe or proxied request)──▶ up/degraded
//
// Degraded workers keep receiving traffic (the worker itself is still
// answering 200, matching /healthz's degraded-is-not-down convention);
// dead workers are skipped by routing until they prove themselves again.
const (
	StateUp WorkerState = iota
	StateDegraded
	StateDead
)

// String names the state for metrics labels and health reports.
func (s WorkerState) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDegraded:
		return "degraded"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// worker is one fleet member's routing record: identity, liveness and the
// warmth its last probe reported.
type worker struct {
	name   string
	url    string
	static bool // configured at startup; self-registered otherwise

	// inflight is the worker's current proxied-request count, capped by
	// Config.InflightPerWorker. Atomic: bumped on the request path without
	// taking the coordinator lock.
	inflight atomic.Int64

	// brk is the worker's circuit breaker: request-path failures trip it,
	// a successful request or /healthz probe closes it. Self-locking,
	// touched without the coordinator lock.
	brk *breaker

	// Guarded by the coordinator's mu.
	state       WorkerState
	consecFails int
	lastErr     string
	lastProbe   time.Time
	registered  time.Time
	// Warmth, from the worker's /healthz: how many designs have a parked
	// cut arena, how many mapped results (and ECO snapshots) are cached,
	// and how many built choice views are resident. Routing-quality
	// observability, exported per worker.
	warmGraphs     int
	cacheEntries   int
	cacheSnapshots int
	warmViews      int
}

// WorkerStatus is the JSON view of one worker in coordinator health
// reports.
type WorkerStatus struct {
	Name           string  `json:"name"`
	URL            string  `json:"url"`
	State          string  `json:"state"`
	Breaker        string  `json:"breaker"`
	Static         bool    `json:"static,omitempty"`
	ConsecFails    int     `json:"consec_fails,omitempty"`
	LastErr        string  `json:"last_err,omitempty"`
	LastProbeAgoS  float64 `json:"last_probe_ago_s,omitempty"`
	Inflight       int64   `json:"inflight"`
	WarmGraphs     int     `json:"warm_graphs"`
	CacheEntries   int     `json:"cache_entries"`
	CacheSnapshots int     `json:"cache_snapshots,omitempty"`
	WarmViews      int     `json:"warm_views"`
}

// workerHealthz is the slice of a worker's /healthz body the coordinator
// consumes: overall status plus cache warmth.
type workerHealthz struct {
	Status            string `json:"status"`
	ArenaGraphs       int    `json:"arena_graphs"`
	MapcacheEntries   int    `json:"mapcache_entries"`
	MapcacheSnapshots int    `json:"mapcache_snapshots"`
	ChoiceViews       int    `json:"choice_views"`
}

// probeLoop polls every worker's /healthz on a fixed cadence until the
// coordinator closes.
func (c *Coordinator) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

// probeAll probes every known worker once, concurrently.
func (c *Coordinator) probeAll() {
	c.mu.Lock()
	targets := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		targets = append(targets, w)
	}
	c.mu.Unlock()
	done := make(chan struct{}, len(targets))
	for _, w := range targets {
		go func(w *worker) {
			defer func() { done <- struct{}{} }()
			c.probe(w)
		}(w)
	}
	for range targets {
		<-done
	}
}

// probe performs one /healthz round trip and feeds the state machine.
func (c *Coordinator) probe(w *worker) {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		c.recordProbe(w, nil, err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.recordProbe(w, nil, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.recordProbe(w, nil, fmt.Errorf("healthz answered %d", resp.StatusCode))
		return
	}
	var h workerHealthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		c.recordProbe(w, nil, fmt.Errorf("decoding healthz: %w", err))
		return
	}
	c.recordProbe(w, &h, nil)
}

// recordProbe applies one probe outcome to the worker's state machine,
// including the breaker's probe-driven close path (a successful probe
// stands in for the half-open trial once the cooldown elapses).
func (c *Coordinator) recordProbe(w *worker, h *workerHealthz, err error) {
	if err == nil {
		w.brk.ProbeSuccess()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w.lastProbe = time.Now()
	if err != nil {
		w.consecFails++
		w.lastErr = err.Error()
		if w.consecFails >= c.cfg.DeadAfter && w.state != StateDead {
			w.state = StateDead
			c.metrics.workerDied()
		}
		return
	}
	w.consecFails = 0
	w.lastErr = ""
	if h.Status == "degraded" {
		w.state = StateDegraded
	} else {
		w.state = StateUp
	}
	w.warmGraphs = h.ArenaGraphs
	w.cacheEntries = h.MapcacheEntries
	w.cacheSnapshots = h.MapcacheSnapshots
	w.warmViews = h.ChoiceViews
}

// reportProxyFailure counts a failed proxied request as a health strike:
// transport errors reveal a dead worker faster than the probe cadence.
func (c *Coordinator) reportProxyFailure(w *worker, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.consecFails++
	w.lastErr = err.Error()
	if w.consecFails >= c.cfg.DeadAfter && w.state != StateDead {
		w.state = StateDead
		c.metrics.workerDied()
	}
}

// reportProxySuccess clears strikes: a worker that just answered a real
// request is alive no matter what an earlier probe concluded. (A dead
// worker revived this way reports up until the next probe refines it.)
func (c *Coordinator) reportProxySuccess(w *worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.consecFails = 0
	w.lastErr = ""
	if w.state == StateDead {
		w.state = StateUp
	}
}

// workerStates snapshots per-state worker counts for metrics.
func (c *Coordinator) workerStates() map[WorkerState]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[WorkerState]int, 3)
	for _, w := range c.workers {
		out[w.state]++
	}
	return out
}

// workerStatuses snapshots every worker for the health report, sorted by
// name at the caller.
func (c *Coordinator) workerStatuses() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		ws := WorkerStatus{
			Name:           w.name,
			URL:            w.url,
			State:          w.state.String(),
			Breaker:        w.brk.State().String(),
			Static:         w.static,
			ConsecFails:    w.consecFails,
			LastErr:        w.lastErr,
			Inflight:       w.inflight.Load(),
			WarmGraphs:     w.warmGraphs,
			CacheEntries:   w.cacheEntries,
			CacheSnapshots: w.cacheSnapshots,
			WarmViews:      w.warmViews,
		}
		if !w.lastProbe.IsZero() {
			ws.LastProbeAgoS = time.Since(w.lastProbe).Seconds()
		}
		out = append(out, ws)
	}
	return out
}
