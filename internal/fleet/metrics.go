package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Metrics aggregates coordinator observability: per-state worker gauges,
// retry/shed counters, per-worker routed-request counters, warmth gauges
// and dataset-shard outcomes, rendered as Prometheus text on GET /metrics.
type Metrics struct {
	start time.Time

	mu             sync.Mutex
	retriesTotal   int64
	shedTotal      int64
	deathsTotal    int64
	hedgesTotal    int64
	hedgeWinsByArm map[string]int64
	breakerOpens   int64
	journalReplays int64
	routedByWorker map[string]int64
	shardsByResult map[string]int64

	// statesFunc and statusesFunc snapshot live worker state at scrape
	// time; installed once at coordinator assembly.
	statesFunc   func() map[WorkerState]int
	statusesFunc func() []WorkerStatus
}

// NewMetrics returns an empty fleet metrics set.
func NewMetrics() *Metrics {
	return &Metrics{
		start:          time.Now(),
		hedgeWinsByArm: make(map[string]int64),
		routedByWorker: make(map[string]int64),
		shardsByResult: make(map[string]int64),
	}
}

// AddHedge counts one hedged read: a request raced across two replicas
// because its affine worker was saturated or breaker-open.
func (m *Metrics) AddHedge() {
	m.mu.Lock()
	m.hedgesTotal++
	m.mu.Unlock()
}

// AddHedgeWin counts which arm ("primary" or "hedge") answered a hedged
// read first.
func (m *Metrics) AddHedgeWin(arm string) {
	m.mu.Lock()
	m.hedgeWinsByArm[arm]++
	m.mu.Unlock()
}

// Hedges returns the hedged-read count (tests).
func (m *Metrics) Hedges() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hedgesTotal
}

// breakerOpened counts one closed/half-open → open breaker transition;
// installed as the per-worker breaker observer.
func (m *Metrics) breakerOpened() {
	m.mu.Lock()
	m.breakerOpens++
	m.mu.Unlock()
}

// addJournalReplays counts records replayed from the coordinator journal
// at startup.
func (m *Metrics) addJournalReplays(n int64) {
	m.mu.Lock()
	m.journalReplays += n
	m.mu.Unlock()
}

// JournalReplays returns the replayed-record count (tests).
func (m *Metrics) JournalReplays() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.journalReplays
}

// AddRetry counts one rerouted request or re-shipped dataset shard.
func (m *Metrics) AddRetry() {
	m.mu.Lock()
	m.retriesTotal++
	m.mu.Unlock()
}

// AddShed counts one request answered 503 because every live worker was
// at its in-flight cap (or none was live).
func (m *Metrics) AddShed() {
	m.mu.Lock()
	m.shedTotal++
	m.mu.Unlock()
}

// AddRouted counts one request successfully relayed to worker.
func (m *Metrics) AddRouted(workerName string) {
	m.mu.Lock()
	m.routedByWorker[workerName]++
	m.mu.Unlock()
}

// AddShard counts one dataset shard outcome ("done" or "failed").
func (m *Metrics) AddShard(result string) {
	m.mu.Lock()
	m.shardsByResult[result]++
	m.mu.Unlock()
}

// workerDied counts one up/degraded→dead transition. Called with the
// coordinator lock held, so it only touches its own mutex.
func (m *Metrics) workerDied() {
	m.mu.Lock()
	m.deathsTotal++
	m.mu.Unlock()
}

// Deaths returns the worker-death count (tests).
func (m *Metrics) Deaths() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.deathsTotal
}

// Retries returns the fleet-level retry count (tests, health report).
func (m *Metrics) Retries() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.retriesTotal
}

// WritePrometheus renders the Prometheus text exposition format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	m.mu.Lock()
	retries, shed, deaths := m.retriesTotal, m.shedTotal, m.deathsTotal
	hedges, breakerOpens, journalReplays := m.hedgesTotal, m.breakerOpens, m.journalReplays
	hedgeWins := make(map[string]int64, len(m.hedgeWinsByArm))
	for k, v := range m.hedgeWinsByArm {
		hedgeWins[k] = v
	}
	routed := make(map[string]int64, len(m.routedByWorker))
	for k, v := range m.routedByWorker {
		routed[k] = v
	}
	shards := make(map[string]int64, len(m.shardsByResult))
	for k, v := range m.shardsByResult {
		shards[k] = v
	}
	m.mu.Unlock()

	states := map[WorkerState]int{}
	if m.statesFunc != nil {
		states = m.statesFunc()
	}
	fmt.Fprintln(w, "# HELP slap_fleet_workers Fleet workers by health state.")
	fmt.Fprintln(w, "# TYPE slap_fleet_workers gauge")
	for _, st := range []WorkerState{StateUp, StateDegraded, StateDead} {
		fmt.Fprintf(w, "slap_fleet_workers{state=%q} %d\n", st.String(), states[st])
	}

	fmt.Fprintln(w, "# HELP slap_fleet_retries_total Requests and dataset shards rerouted to another worker after a failure.")
	fmt.Fprintln(w, "# TYPE slap_fleet_retries_total counter")
	fmt.Fprintf(w, "slap_fleet_retries_total %d\n", retries)

	fmt.Fprintln(w, "# HELP slap_fleet_shed_total Requests answered 503 because the whole fleet was saturated or dead.")
	fmt.Fprintln(w, "# TYPE slap_fleet_shed_total counter")
	fmt.Fprintf(w, "slap_fleet_shed_total %d\n", shed)

	fmt.Fprintln(w, "# HELP slap_fleet_worker_deaths_total Workers declared dead after consecutive failures.")
	fmt.Fprintln(w, "# TYPE slap_fleet_worker_deaths_total counter")
	fmt.Fprintf(w, "slap_fleet_worker_deaths_total %d\n", deaths)

	fmt.Fprintln(w, "# HELP slap_fleet_hedges_total Reads raced across two replicas because the affine worker was saturated or breaker-open.")
	fmt.Fprintln(w, "# TYPE slap_fleet_hedges_total counter")
	fmt.Fprintf(w, "slap_fleet_hedges_total %d\n", hedges)

	fmt.Fprintln(w, "# HELP slap_fleet_hedge_wins_total Hedged reads by which arm answered first.")
	fmt.Fprintln(w, "# TYPE slap_fleet_hedge_wins_total counter")
	for _, arm := range sortedKeys(hedgeWins) {
		fmt.Fprintf(w, "slap_fleet_hedge_wins_total{arm=%q} %d\n", arm, hedgeWins[arm])
	}

	fmt.Fprintln(w, "# HELP slap_fleet_breaker_opens_total Circuit-breaker trips (closed or half-open to open).")
	fmt.Fprintln(w, "# TYPE slap_fleet_breaker_opens_total counter")
	fmt.Fprintf(w, "slap_fleet_breaker_opens_total %d\n", breakerOpens)

	fmt.Fprintln(w, "# HELP slap_fleet_journal_replays_total Journal records replayed at coordinator startup.")
	fmt.Fprintln(w, "# TYPE slap_fleet_journal_replays_total counter")
	fmt.Fprintf(w, "slap_fleet_journal_replays_total %d\n", journalReplays)

	fmt.Fprintln(w, "# HELP slap_fleet_routed_requests_total Requests relayed to each worker.")
	fmt.Fprintln(w, "# TYPE slap_fleet_routed_requests_total counter")
	for _, name := range sortedKeys(routed) {
		fmt.Fprintf(w, "slap_fleet_routed_requests_total{worker=%q} %d\n", name, routed[name])
	}

	fmt.Fprintln(w, "# HELP slap_fleet_shards_total Dataset shards by final outcome across fleet sweeps.")
	fmt.Fprintln(w, "# TYPE slap_fleet_shards_total counter")
	for _, res := range sortedKeys(shards) {
		fmt.Fprintf(w, "slap_fleet_shards_total{result=%q} %d\n", res, shards[res])
	}

	// Per-worker routing-quality gauges: cache warmth as of the last
	// successful probe, plus current in-flight load.
	if m.statusesFunc != nil {
		sts := m.statusesFunc()
		sort.Slice(sts, func(i, j int) bool { return sts[i].Name < sts[j].Name })
		fmt.Fprintln(w, "# HELP slap_fleet_worker_inflight Proxied requests currently in flight per worker.")
		fmt.Fprintln(w, "# TYPE slap_fleet_worker_inflight gauge")
		for _, s := range sts {
			fmt.Fprintf(w, "slap_fleet_worker_inflight{worker=%q} %d\n", s.Name, s.Inflight)
		}
		fmt.Fprintln(w, "# HELP slap_fleet_worker_warm_graphs Designs with a parked cut arena on each worker (last probe).")
		fmt.Fprintln(w, "# TYPE slap_fleet_worker_warm_graphs gauge")
		for _, s := range sts {
			fmt.Fprintf(w, "slap_fleet_worker_warm_graphs{worker=%q} %d\n", s.Name, s.WarmGraphs)
		}
		fmt.Fprintln(w, "# HELP slap_fleet_worker_cache_entries Mapping results resident in each worker's result cache (last probe).")
		fmt.Fprintln(w, "# TYPE slap_fleet_worker_cache_entries gauge")
		for _, s := range sts {
			fmt.Fprintf(w, "slap_fleet_worker_cache_entries{worker=%q} %d\n", s.Name, s.CacheEntries)
		}
		fmt.Fprintln(w, "# HELP slap_fleet_worker_warm_views Choice views resident in each worker's view cache (last probe).")
		fmt.Fprintln(w, "# TYPE slap_fleet_worker_warm_views gauge")
		for _, s := range sts {
			fmt.Fprintf(w, "slap_fleet_worker_warm_views{worker=%q} %d\n", s.Name, s.WarmViews)
		}
		fmt.Fprintln(w, "# HELP slap_fleet_breaker_state Per-worker circuit breaker (0 closed, 1 half-open, 2 open).")
		fmt.Fprintln(w, "# TYPE slap_fleet_breaker_state gauge")
		for _, s := range sts {
			fmt.Fprintf(w, "slap_fleet_breaker_state{worker=%q} %d\n", s.Name, breakerStateValue(s.Breaker))
		}
	}

	fmt.Fprintln(w, "# HELP slap_fleet_uptime_seconds Seconds since the coordinator started.")
	fmt.Fprintln(w, "# TYPE slap_fleet_uptime_seconds gauge")
	fmt.Fprintf(w, "slap_fleet_uptime_seconds %g\n", time.Since(m.start).Seconds())
}

// breakerStateValue maps a breaker state name to its gauge value.
func breakerStateValue(s string) int {
	switch s {
	case "half-open":
		return 1
	case "open":
		return 2
	default:
		return 0
	}
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
