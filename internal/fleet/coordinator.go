package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slap/internal/aig"
	"slap/internal/genjob"
)

// Coordinator defaults.
const (
	DefaultProbeInterval     = 2 * time.Second
	DefaultProbeTimeout      = 1 * time.Second
	DefaultDeadAfter         = 3
	DefaultMaxAttempts       = 3
	DefaultBackoffBase       = 25 * time.Millisecond
	DefaultBackoffMax        = 500 * time.Millisecond
	DefaultInflightPerWorker = 32
	DefaultMaxBodyBytes      = 8 << 20
)

// StaticWorker names a worker configured at coordinator startup (as
// opposed to one that self-registered with -advertise).
type StaticWorker struct {
	Name string
	URL  string
}

// Config configures a fleet coordinator.
type Config struct {
	// Workers are the statically configured fleet members; more may join
	// at runtime via POST /v1/workers/register.
	Workers []StaticWorker
	// VNodes is the virtual-node count per worker (0 = DefaultVNodes).
	VNodes int
	// ProbeInterval is the /healthz polling cadence (0 = 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (0 = 1s).
	ProbeTimeout time.Duration
	// DeadAfter is how many consecutive probe/proxy failures declare a
	// worker dead (0 = 3).
	DeadAfter int
	// MaxAttempts bounds how many workers one request may be tried on
	// before answering 502 (0 = 3).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the jittered exponential delay
	// between retry attempts — the same schedule genjob shard retries use
	// (0 = 25ms / 500ms).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// InflightPerWorker caps concurrently proxied requests per worker;
	// when every live worker is at its cap the request is shed with 503
	// (0 = DefaultInflightPerWorker, negative = uncapped).
	InflightPerWorker int64
	// MaxBodyBytes bounds proxied request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// RequestTimeout bounds one proxied request end-to-end — every retry,
	// backoff and hedge included (0 = unbounded). A client ?timeout_ms
	// tightens it further but never extends it.
	RequestTimeout time.Duration
	// BreakerThreshold is how many consecutive request failures trip a
	// worker's circuit breaker open; BreakerCooldown is how long an open
	// breaker waits before admitting a half-open trial (0 = 3 / 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// JournalPath, when set, makes the control plane crash-safe: fleet
	// membership and dataset-job lifecycle append to this checksummed JSONL
	// journal before taking effect, and a restarted coordinator replays it —
	// re-adopting workers and resuming unfinished jobs where their shard
	// manifests left off.
	JournalPath string
	// JobsDir is where fleet dataset jobs persist fetched shard files and
	// manifests (empty = "slap-fleet-jobs" under os.TempDir).
	JobsDir string
	// ShardConcurrency bounds concurrently outstanding shard executions
	// per dataset job (0 = 2 × worker count at submission).
	ShardConcurrency int
	// Client performs outbound HTTP (nil = a default client; probes apply
	// ProbeTimeout per request).
	Client *http.Client
}

// Coordinator fronts a fleet of slap-serve workers: hash-affinity routing
// for /v1/map and /v1/classify, health probing, retry/shed, and dataset
// fan-out. Build with New, serve Handler, stop with Close.
type Coordinator struct {
	cfg     Config
	metrics *Metrics
	client  *http.Client
	mux     *http.ServeMux
	journal *journal // nil when Config.JournalPath is empty
	start   time.Time

	mu      sync.Mutex
	workers map[string]*worker
	ring    *Ring

	jobs    sync.Map // job id -> *fleetJob
	jobsSeq atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New assembles a Coordinator and starts its probe loop.
func New(cfg Config) (*Coordinator, error) {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = DefaultDeadAfter
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.InflightPerWorker == 0 {
		cfg.InflightPerWorker = DefaultInflightPerWorker
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = DefaultBreakerThreshold
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.JobsDir == "" {
		cfg.JobsDir = filepath.Join(os.TempDir(), "slap-fleet-jobs")
	}
	c := &Coordinator{
		cfg:     cfg,
		metrics: NewMetrics(),
		client:  cfg.Client,
		start:   time.Now(),
		workers: make(map[string]*worker),
		stop:    make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	var replayed *replayState
	if cfg.JournalPath != "" {
		j, st, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		c.journal, replayed = j, st
	}
	// Static workers are flag-owned — they come back from the command line
	// on every start and are not journaled.
	for _, sw := range cfg.Workers {
		if _, err := c.addWorker(sw.Name, sw.URL, true, false); err != nil {
			return nil, err
		}
	}
	if replayed != nil {
		c.metrics.addJournalReplays(int64(replayed.applied))
		// Re-adopt journaled members (name collisions keep the static
		// record); probes refresh their health within one interval.
		names := make([]string, 0, len(replayed.workers))
		for n := range replayed.workers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			rec := replayed.workers[n]
			if _, err := c.addWorker(rec.Name, rec.URL, rec.Static, false); err != nil {
				return nil, fmt.Errorf("replaying journal %s: %w", cfg.JournalPath, err)
			}
		}
	}
	c.metrics.statesFunc = c.workerStates
	c.metrics.statusesFunc = c.workerStatuses

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/map", func(w http.ResponseWriter, r *http.Request) { c.routeProxy(w, r) })
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) { c.routeProxy(w, r) })
	mux.HandleFunc("POST /v1/workers/register", c.handleRegister)
	mux.HandleFunc("DELETE /v1/workers/{name}", c.handleDeregister)
	mux.HandleFunc("GET /v1/workers", c.handleWorkers)
	mux.HandleFunc("POST /v1/jobs/dataset", c.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobStatus)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux = mux

	c.wg.Add(1)
	go c.probeLoop()
	if replayed != nil {
		c.resumeJobs(replayed)
	}
	return c, nil
}

// Handler returns the coordinator's HTTP handler tree.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Metrics exposes the coordinator's metrics (tests).
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// Close stops the probe loop, cancels running fleet jobs and closes the
// journal. Close is what a crash looks like to the journal: a job caught
// mid-flight keeps its submit record and resumes on the next start.
func (c *Coordinator) Close() {
	close(c.stop)
	c.wg.Wait()
	c.jobs.Range(func(_, v any) bool {
		v.(*fleetJob).cancel()
		return true
	})
	c.journal.close()
}

// addWorker inserts or refreshes a worker record. Returns whether the
// membership changed (triggering a ring rebuild). record=false during
// startup (static flags, journal replay) keeps the journal from
// re-absorbing its own records.
func (c *Coordinator) addWorker(name, rawURL string, static, record bool) (changed bool, err error) {
	u, err := url.Parse(rawURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return false, fmt.Errorf("fleet: invalid worker URL %q (want http://host:port)", rawURL)
	}
	if name == "" {
		name = u.Host
	}
	clean := strings.TrimRight(u.String(), "/")
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[name]; ok {
		// Heartbeat refresh: same name re-registering updates its URL and
		// proves liveness. Only a URL change is worth a journal record —
		// heartbeats must not grow the journal.
		if record && w.url != clean {
			c.journal.append(journalRecord{Op: opWorkerAdd, Name: name, URL: clean, Static: w.static})
		}
		w.url = clean
		w.registered = time.Now()
		w.consecFails = 0
		if w.state == StateDead {
			w.state = StateUp
		}
		return false, nil
	}
	if record {
		c.journal.append(journalRecord{Op: opWorkerAdd, Name: name, URL: clean, Static: static})
	}
	c.workers[name] = &worker{
		name:       name,
		url:        clean,
		static:     static,
		state:      StateUp,
		registered: time.Now(),
		brk:        newBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown, c.metrics.breakerOpened),
	}
	c.rebuildRingLocked()
	return true, nil
}

// removeWorker drops a worker by name (registered or static) and rebuilds
// the ring. Reports whether it existed.
func (c *Coordinator) removeWorker(name string, record bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[name]; !ok {
		return false
	}
	if record {
		c.journal.append(journalRecord{Op: opWorkerRemove, Name: name})
	}
	delete(c.workers, name)
	c.rebuildRingLocked()
	return true
}

func (c *Coordinator) rebuildRingLocked() {
	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	c.ring = NewRing(names, c.cfg.VNodes)
}

// lookup returns the full failover order for key plus the worker records,
// skipping nothing — liveness is the routing loop's concern.
func (c *Coordinator) lookup(key uint64) []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ring == nil {
		return nil
	}
	names := c.ring.Lookup(key, 0)
	out := make([]*worker, 0, len(names))
	for _, n := range names {
		if w, ok := c.workers[n]; ok {
			out = append(out, w)
		}
	}
	return out
}

func (c *Coordinator) stateOf(w *worker) WorkerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return w.state
}

// acquireSlot reserves one in-flight slot on w, failing when the cap is
// reached.
func (c *Coordinator) acquireSlot(w *worker) bool {
	cap := c.cfg.InflightPerWorker
	if cap < 0 {
		w.inflight.Add(1)
		return true
	}
	for {
		cur := w.inflight.Load()
		if cur >= cap {
			return false
		}
		if w.inflight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (c *Coordinator) releaseSlot(w *worker) { w.inflight.Add(-1) }

// ---------------------------------------------------------------------------
// Request routing

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// routeKey decodes the circuit out of a /v1/map | /v1/classify body and
// returns its structural hash — the affinity key. The body is either a
// JSON envelope with a "circuit" field or the raw circuit text (format in
// the query), mirroring the worker's own request parsing.
func routeKey(body []byte, contentType string, q url.Values) (uint64, error) {
	circuit, format := string(body), q.Get("format")
	if ct, _, _ := mime.ParseMediaType(contentType); ct == "application/json" {
		var env struct {
			Circuit string `json:"circuit"`
			Format  string `json:"format"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			return 0, fmt.Errorf("decoding JSON request: %w", err)
		}
		circuit, format = env.Circuit, env.Format
	}
	if strings.TrimSpace(circuit) == "" {
		return 0, errors.New("empty circuit: send AIGER/BLIF text as the body, or a JSON envelope with a \"circuit\" field")
	}
	g, err := aig.Decode(format, strings.NewReader(circuit))
	if err != nil {
		return 0, err
	}
	return g.StructuralHash(), nil
}

// clientTimeout resolves one proxied request's time budget: the client's
// ?timeout_ms clamped by the coordinator's RequestTimeout. Zero means
// unbounded (beyond the client's own connection lifetime).
func clientTimeout(q url.Values, def time.Duration) time.Duration {
	t := def
	if ms := q.Get("timeout_ms"); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			if d := time.Duration(v) * time.Millisecond; t <= 0 || d < t {
				t = d
			}
		}
	}
	return t
}

// pickResult is one candidate-scan outcome.
type pickResult struct {
	wk    *worker
	probe bool // the pick holds its worker's half-open breaker trial slot
	// saturated: some breaker-admitting live candidate was skipped at its
	// in-flight cap. affineCut names why the ring-affine worker (order[0])
	// was passed over — "saturated" or "breaker" — which is exactly the
	// hedge trigger; a dead affine worker is plain failover, not a hedge.
	saturated bool
	affineCut string
}

// pickWorker scans order for the next routable candidate starting at
// *start — skipping dead workers and open breakers, acquiring an
// in-flight slot — wrapping so a lone worker still gets every attempt.
// exclude (may be nil) is never picked, which keeps a hedge off the arm
// it is racing. On success *start advances past the pick.
func (c *Coordinator) pickWorker(order []*worker, start *int, exclude *worker) pickResult {
	var res pickResult
	for scanned := 0; scanned < len(order); scanned++ {
		pos := (*start + scanned) % len(order)
		cand := order[pos]
		if cand == exclude {
			continue
		}
		reason := ""
		if c.stateOf(cand) == StateDead {
			reason = "dead"
		} else if ok, probe := cand.brk.Allow(); !ok {
			reason = "breaker"
		} else if !c.acquireSlot(cand) {
			cand.brk.Cancel(probe)
			reason = "saturated"
			res.saturated = true
		} else {
			res.wk, res.probe = cand, probe
			*start += scanned + 1
			return res
		}
		if pos == 0 && res.affineCut == "" && reason != "dead" {
			res.affineCut = reason
		}
	}
	return res
}

// routeProxy is the data path: hash the design, walk its ring replicas in
// preference order, forward, and retry dead or failing workers on the next
// replica — all under the client's deadline. A request displaced from its
// affine worker by saturation or an open breaker is hedged across two
// replicas. Saturation of the whole fleet sheds with 503.
func (c *Coordinator) routeProxy(w http.ResponseWriter, r *http.Request) {
	// The body is buffered (and capped) exactly once; every retry and every
	// hedge arm replays these bytes, so a request body that errors midway
	// can never reach a worker half-sent.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", c.cfg.MaxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	key, err := routeKey(body, r.Header.Get("Content-Type"), r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	order := c.lookup(key)
	if len(order) == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("fleet has no workers"))
		c.metrics.AddShed()
		return
	}

	// Deadline propagation: the whole attempt/backoff/hedge walk — not each
	// attempt — lives under one context, so replica walks can never exceed
	// the caller's budget. r.Context() folds in client disconnects.
	ctx := r.Context()
	if t := clientTimeout(r.URL.Query(), c.cfg.RequestTimeout); t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}

	// Jitter seed derived from the affinity key: deterministic per design,
	// uncorrelated across designs.
	rng := rand.New(rand.NewSource(int64(key) ^ 0x5bf03635))
	var lastErr error
	idx := 0
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		pick := c.pickWorker(order, &idx, nil)
		if pick.wk == nil {
			if pick.saturated {
				c.metrics.AddShed()
				writeError(w, http.StatusServiceUnavailable, errors.New("fleet saturated: every live worker is at its in-flight cap"))
				return
			}
			if lastErr == nil {
				lastErr = errors.New("no live workers")
			}
			break
		}

		// Hedged read: the affine worker was passed over while merely busy
		// (saturated or breaker-open), so its replica's cache is cold for
		// this design — race the next replica and take whichever answers
		// first. Only on the first attempt; retries are already failover.
		if attempt == 1 && pick.affineCut != "" {
			hedgeIdx := idx
			if hedge := c.pickWorker(order, &hedgeIdx, pick.wk); hedge.wk != nil {
				winner, hErr := c.raceHedge(ctx, r, body, pick, hedge)
				if winner != nil {
					c.metrics.AddRouted(winner.pick.wk.name)
					c.relay(w, winner.resp)
					winner.cancel()
					c.releaseSlot(winner.pick.wk)
					return
				}
				lastErr = hErr
				c.metrics.AddRetry()
				if ctx.Err() != nil {
					break
				}
				genjob.Backoff(ctx, c.cfg.BackoffBase, c.cfg.BackoffMax, attempt, rng)
				continue
			}
		}

		resp, err := c.forward(ctx, r, pick.wk, body)
		if err != nil {
			c.releaseSlot(pick.wk)
			lastErr = fmt.Errorf("worker %s: %w", pick.wk.name, err)
			if ctx.Err() != nil {
				// Client cancel or deadline, not a worker fault: no health
				// strike, no breaker strike, and the trial slot goes back.
				pick.wk.brk.Cancel(pick.probe)
				break
			}
			pick.wk.brk.Failure()
			c.reportProxyFailure(pick.wk, err)
			c.metrics.AddRetry()
			genjob.Backoff(ctx, c.cfg.BackoffBase, c.cfg.BackoffMax, attempt, rng)
			continue
		}
		if resp.StatusCode >= 500 {
			// Worker-side failure or shed: this worker answered, so it is
			// alive (health clears), but it is failing requests (breaker
			// strikes) and the request deserves another replica.
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			c.releaseSlot(pick.wk)
			c.reportProxySuccess(pick.wk)
			pick.wk.brk.Failure()
			c.metrics.AddRetry()
			lastErr = fmt.Errorf("worker %s answered %d: %s", pick.wk.name, resp.StatusCode, strings.TrimSpace(string(b)))
			if ctx.Err() != nil {
				break
			}
			genjob.Backoff(ctx, c.cfg.BackoffBase, c.cfg.BackoffMax, attempt, rng)
			continue
		}

		// Success (including worker-side 4xx, which is the client's
		// problem, not the fleet's): relay verbatim.
		c.reportProxySuccess(pick.wk)
		pick.wk.brk.Success()
		c.metrics.AddRouted(pick.wk.name)
		c.relay(w, resp)
		c.releaseSlot(pick.wk)
		return
	}
	status := http.StatusBadGateway
	if ctx.Err() != nil {
		status = http.StatusGatewayTimeout
	}
	writeError(w, status, fmt.Errorf("fleet: request failed after %d attempt(s): %w", c.cfg.MaxAttempts, lastErr))
}

// forward replays the buffered request against one worker under ctx.
func (c *Coordinator) forward(ctx context.Context, r *http.Request, wk *worker, body []byte) (*http.Response, error) {
	u := wk.url + r.URL.Path
	if r.URL.RawQuery != "" {
		u += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	return c.client.Do(req)
}

// relay streams a worker response back to the client, preserving status
// and the headers that matter.
func (c *Coordinator) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Slap-Worker", shardSHAHeaderName} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// ---------------------------------------------------------------------------
// Control-plane handlers

// RegisterRequest is the JSON body of POST /v1/workers/register — the
// worker half lives in slap-serve's -advertise/-coordinator flags.
// Repeated registration with the same name is a heartbeat.
type RegisterRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<14)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON request: %w", err))
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"url\""))
		return
	}
	changed, err := c.addWorker(req.Name, req.URL, false, true)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.mu.Lock()
	n := len(c.workers)
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"registered": true,
		"joined":     changed,
		"workers":    n,
	})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !c.removeWorker(name, true) {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown worker %q", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	sts := c.workerStatuses()
	sort.Slice(sts, func(i, j int) bool { return sts[i].Name < sts[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"workers": sts})
}

// handleHealthz reports fleet health with the same ok/degraded convention
// workers use: degraded is not down — routing continues on the live subset
// — but operators see every reason listed.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sts := c.workerStatuses()
	sort.Slice(sts, func(i, j int) bool { return sts[i].Name < sts[j].Name })
	var reasons []string
	live := 0
	for _, s := range sts {
		switch s.State {
		case "dead":
			reasons = append(reasons, fmt.Sprintf("worker %s is dead (%d consecutive failures, last: %s)", s.Name, s.ConsecFails, s.LastErr))
		case "degraded":
			reasons = append(reasons, fmt.Sprintf("worker %s reports degraded", s.Name))
			live++
		default:
			live++
		}
	}
	if len(sts) == 0 {
		reasons = append(reasons, "no workers registered")
	} else if live == 0 {
		reasons = append(reasons, "no live workers: every request will shed")
	}
	status := "ok"
	if len(reasons) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"degraded": reasons,
		"workers":  sts,
		"uptime_s": time.Since(c.start).Seconds(),
	})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	c.metrics.WritePrometheus(w)
}
