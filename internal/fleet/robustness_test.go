package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slap/internal/chaos"
	"slap/internal/dataset"
)

// affineOrder computes the ring preference order the coordinator will use
// for the rc16 design — tests script the affine worker's behavior.
func affineOrder(t *testing.T, c *Coordinator, aag string) []*worker {
	t.Helper()
	key, err := routeKey([]byte(aag), "text/plain", url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	order := c.lookup(key)
	if len(order) == 0 {
		t.Fatal("empty ring")
	}
	return order
}

// switchableWorker is a stub whose /v1/map can be flipped between healthy
// and 500ing at runtime; /healthz always succeeds, which is exactly the
// case the breaker exists for.
func switchableWorker(t *testing.T, name string) (*httptest.Server, *atomic.Bool) {
	t.Helper()
	var failing atomic.Bool
	ts := stubWorker(t, name, func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			http.Error(w, "injected worker failure", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"worker":%q}`, name)
	})
	return ts, &failing
}

// TestBreakerOpensAndHedgedReadWins drives the breaker + hedge path: the
// affine worker serves /healthz but 500s every request, so its breaker
// trips open; the next read for that design is then hedged across the two
// surviving replicas, and either arm's (identical) answer wins.
func TestBreakerOpensAndHedgedReadWins(t *testing.T) {
	stubs := make(map[string]*httptest.Server, 3)
	fails := make(map[string]*atomic.Bool, 3)
	cfg := Config{
		MaxAttempts:      3,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute, // keep it open for the whole test
		ProbeInterval:    time.Hour,   // probes must not interfere
	}
	for _, name := range []string{"w1", "w2", "w3"} {
		ts, failing := switchableWorker(t, name)
		stubs[name], fails[name] = ts, failing
		cfg.Workers = append(cfg.Workers, StaticWorker{Name: name, URL: ts.URL})
	}
	c, ts := newCoordinator(t, cfg)
	aag := rc16AAG(t)
	affine := affineOrder(t, c, aag)[0].name
	fails[affine].Store(true)

	// First read: affine 500s (tripping its breaker at threshold 1), the
	// retry lands on the next replica.
	resp, data := postCircuit(t, ts.URL+"/v1/map", aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first read answered %d: %s", resp.StatusCode, data)
	}
	var mr struct {
		Worker string `json:"worker"`
	}
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Worker == affine {
		t.Fatalf("500ing affine worker %q served the request", affine)
	}
	if got := c.Metrics().Hedges(); got != 0 {
		t.Fatalf("plain failover counted %d hedges, want 0", got)
	}

	// Second read: the open breaker displaces it from the affine worker
	// up front, which must hedge it across the two healthy replicas.
	resp, data = postCircuit(t, ts.URL+"/v1/map", aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged read answered %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Worker == affine {
		t.Fatalf("breaker-open worker %q served the hedged read", affine)
	}
	if got := c.Metrics().Hedges(); got != 1 {
		t.Fatalf("hedges = %d, want 1", got)
	}

	// Observability: breaker state, trip count and hedge wins all export.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("slap_fleet_breaker_state{worker=%q} 2", affine),
		"slap_fleet_breaker_opens_total 1",
		"slap_fleet_hedges_total 1",
		`slap_fleet_hedge_wins_total{arm=`,
	} {
		if !bytes.Contains(mdata, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, mdata)
		}
	}

	// In-flight slots all drained — both hedge arms settled. The loser may
	// still be unwinding, so poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for name := range stubs {
		for {
			if got := c.workerByName(t, name).inflight.Load(); got == 0 {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("worker %s inflight = %d after hedging, want 0", name, got)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// workerByName fetches a worker record (tests).
func (c *Coordinator) workerByName(t *testing.T, name string) *worker {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[name]
	if !ok {
		t.Fatalf("unknown worker %q", name)
	}
	return w
}

// errReader yields a few bytes then fails — a client whose upload dies
// midway.
type errReader struct {
	data []byte
	err  error
}

func (e *errReader) Read(p []byte) (int, error) {
	if len(e.data) == 0 {
		return 0, e.err
	}
	n := copy(p, e.data)
	e.data = e.data[n:]
	return n, nil
}

// TestBodyBufferedOnceAndReplayedWhole pins retry-safe proxying: a body
// that errors after N bytes never reaches any worker, and a retried
// request replays the complete buffered body, not a partial stream.
func TestBodyBufferedOnceAndReplayedWhole(t *testing.T) {
	var reached atomic.Int64
	bodies := make(chan []byte, 4)
	first := true
	stub := stubWorker(t, "solo", func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
		b, _ := io.ReadAll(r.Body)
		bodies <- b
		if first {
			first = false
			http.Error(w, "flaky once", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"worker":"solo"}`)
	})
	c, _ := newCoordinator(t, Config{
		Workers:     []StaticWorker{{Name: "solo", URL: stub.URL}},
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	aag := rc16AAG(t)

	// A body that dies mid-upload is rejected at the coordinator, before
	// any worker sees a byte.
	r := httptest.NewRequest(http.MethodPost, "/v1/map", &errReader{data: []byte(aag[:64]), err: errors.New("upload died")})
	rec := httptest.NewRecorder()
	c.routeProxy(rec, r)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("erroring body answered %d, want 400", rec.Code)
	}
	if got := reached.Load(); got != 0 {
		t.Fatalf("erroring body reached a worker %d time(s)", got)
	}

	// A good body that needs a retry (worker 500s once) replays whole.
	r = httptest.NewRequest(http.MethodPost, "/v1/map", strings.NewReader(aag))
	rec = httptest.NewRecorder()
	c.routeProxy(rec, r)
	if rec.Code != http.StatusOK {
		t.Fatalf("retried request answered %d: %s", rec.Code, rec.Body)
	}
	if got := reached.Load(); got != 2 {
		t.Fatalf("worker saw %d attempts, want 2", got)
	}
	for i := 0; i < 2; i++ {
		if b := <-bodies; string(b) != aag {
			t.Fatalf("attempt %d received %d bytes, want the full %d-byte body", i+1, len(b), len(aag))
		}
	}
}

// TestClientCancelPropagatesToWorker pins disconnect propagation: when
// the client gives up, the coordinator cancels the in-flight worker
// request — the worker observes context cancellation — without striking
// the worker's health or breaker.
func TestClientCancelPropagatesToWorker(t *testing.T) {
	entered := make(chan struct{}, 1)
	sawCancel := make(chan struct{})
	stub := stubWorker(t, "patient", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body first: the net/http server only watches for a
		// dropped connection (and cancels r.Context()) once the handler
		// has consumed the request — same as the real worker does.
		io.Copy(io.Discard, r.Body)
		entered <- struct{}{}
		select {
		case <-r.Context().Done():
			close(sawCancel)
		case <-time.After(10 * time.Second):
		}
	})
	c, ts := newCoordinator(t, Config{
		Workers:       []StaticWorker{{Name: "patient", URL: stub.URL}},
		ProbeInterval: time.Hour,
	})
	aag := rc16AAG(t)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/map", strings.NewReader(aag))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = errors.New("canceled request got a response")
		}
		errc <- err
	}()
	<-entered
	cancel()
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never observed the client's cancellation")
	}
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}

	// No strike for a client-side cancel, and the slot drains.
	wk := c.workerByName(t, "patient")
	deadline := time.Now().Add(2 * time.Second)
	for wk.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d after cancel, want 0", wk.inflight.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := c.stateOf(wk); st != StateUp {
		t.Errorf("worker state after client cancel = %v, want up", st)
	}
	if st := wk.brk.State(); st != BreakerClosed {
		t.Errorf("breaker after client cancel = %v, want closed", st)
	}
}

// TestDeadlineBudget pins timeout propagation: a ?timeout_ms budget caps
// the whole replica walk — a hanging worker turns into a prompt 504, not
// MaxAttempts × hang.
func TestDeadlineBudget(t *testing.T) {
	stub := stubWorker(t, "tarpit", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body) // arm disconnect detection, as above
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	})
	_, ts := newCoordinator(t, Config{
		Workers:       []StaticWorker{{Name: "tarpit", URL: stub.URL}},
		MaxAttempts:   5,
		ProbeInterval: time.Hour,
	})
	aag := rc16AAG(t)
	start := time.Now()
	resp, data := postCircuit(t, ts.URL+"/v1/map?timeout_ms=100", aag)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-capped request answered %d (%s), want 504", resp.StatusCode, data)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("100ms budget took %v — the replica walk ignored the deadline", elapsed)
	}
}

// TestFlappingWorkerNoLivelock oscillates a worker between connection
// kills and clean answers with a deterministic chaos schedule and checks
// routing neither livelocks nor leaks in-flight slots, while the health
// state machine keeps transitioning dead → up.
func TestFlappingWorkerNoLivelock(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"worker":"flap"}`)
	})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"ok"}`)
	})
	// Kill every other /v1/map connection: match 0, 2, 4, … die.
	sched := chaos.New(42, chaos.Rule{Kind: chaos.KindKill, Path: "/v1/map", Every: 2})
	mux.Handle("POST /v1/map", sched.Middleware(inner))
	flap := httptest.NewServer(mux)
	t.Cleanup(flap.Close)

	c, ts := newCoordinator(t, Config{
		Workers:          []StaticWorker{{Name: "flap", URL: flap.URL}},
		ProbeInterval: 10 * time.Millisecond,
		DeadAfter:     1,
		// One attempt per request: a retry could race the 10ms probe,
		// reach the revived worker and shift the chaos schedule's parity.
		MaxAttempts:      1,
		BackoffBase:      time.Millisecond,
		BackoffMax:       2 * time.Millisecond,
		BreakerThreshold: 100, // isolate the health state machine
	})
	aag := rc16AAG(t)
	wk := c.workerByName(t, "flap")

	waitUp := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for c.stateOf(wk) != StateUp {
			if time.Now().After(deadline) {
				t.Fatal("probe never revived the flapping worker")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	transitions := 0
	for i := 0; i < 6; i++ {
		waitUp()
		resp, data := postCircuit(t, ts.URL+"/v1/map", aag)
		if i%2 == 0 {
			// Killed connection: strike → dead (DeadAfter 1), no second
			// candidate → 502, then the probe revives it. The death is
			// recorded before the 502 is written, but the 10ms probe may
			// revive the worker before we could look at its state — so
			// assert on the monotonic death counter, not the live state.
			if resp.StatusCode != http.StatusBadGateway {
				t.Fatalf("request %d answered %d (%s), want 502", i, resp.StatusCode, data)
			}
			transitions++
			if got := c.metrics.Deaths(); got != int64(transitions) {
				t.Fatalf("request %d: deaths = %d, want %d", i, got, transitions)
			}
		} else if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d answered %d (%s), want 200", i, resp.StatusCode, data)
		}
		if got := wk.inflight.Load(); got != 0 {
			t.Fatalf("request %d leaked in-flight slots: %d", i, got)
		}
	}
	if transitions < 3 {
		t.Fatalf("observed %d dead transitions, want 3", transitions)
	}

	// The injected schedule is introspectable: exactly the kills we saw.
	if got := len(sched.Injections()); got != 3 {
		t.Errorf("chaos injected %d faults, want 3", got)
	}

	// Metrics: deaths counted, inflight gauge back to 0.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"slap_fleet_worker_deaths_total 3",
		`slap_fleet_worker_inflight{worker="flap"} 0`,
	} {
		if !bytes.Contains(mdata, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, mdata)
		}
	}
}

// TestCoordinatorCrashResumeByteIdentical is the tentpole acceptance
// test: a coordinator journaling to disk is killed mid-sweep (Close with
// shards still pending — exactly what SIGKILL leaves behind: a journal
// whose last word on the job is its submission), restarted on the same
// journal, and must re-adopt its self-registered worker, resume the job
// under the same id, reuse the shards that finished before the crash,
// and merge a dataset byte-identical to a single-process run.
func TestCoordinatorCrashResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet sweep")
	}
	_, w1 := newWorker(t, "w1")
	_, w2 := newWorker(t, "w2")
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "coordinator.journal")
	jobsDir := filepath.Join(dir, "jobs")

	// Chaos on the coordinator's outbound client: every shard execution
	// pays 150ms, guaranteeing the sweep is still mid-flight at the kill.
	slowClient := &http.Client{Transport: chaos.New(7, chaos.Rule{
		Kind: chaos.KindLatency, Path: "/v1/shards/execute", Delay: 150 * time.Millisecond,
	}).Transport(nil)}

	cfg1 := Config{
		Workers:          []StaticWorker{{Name: "w1", URL: w1.URL}},
		JournalPath:      journalPath,
		JobsDir:          jobsDir,
		ShardConcurrency: 1,
		ProbeInterval:    25 * time.Millisecond,
		Client:           slowClient,
	}
	c1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(c1.Handler())

	// w2 joins dynamically — its membership must survive the crash via
	// the journal, not the static flags.
	regBody, _ := json.Marshal(RegisterRequest{Name: "w2", URL: w2.URL})
	resp, err := http.Post(ts1.URL+"/v1/workers/register", "application/json", bytes.NewReader(regBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	req := DatasetJobRequest{
		Circuits:       []string{"rc16", "cla16"},
		MapsPerCircuit: 3,
		Shards:         6,
		Seed:           11,
	}
	body, _ := json.Marshal(req)
	resp, err = http.Post(ts1.URL+"/v1/jobs/dataset", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if submitted.ID == "" {
		t.Fatal("no job id")
	}

	// Wait for partial progress, then "crash": Close cancels the job
	// mid-flight and leaves the journal's last word as the submission.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := jobStatus(t, ts1.URL, submitted.ID)
		if st.ShardsDone >= 1 && st.State == "running" {
			break
		}
		if st.State == "done" || st.State == "failed" {
			t.Fatalf("job finished (%s) before the crash window", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("no shard progress before deadline: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ts1.Close()
	c1.Close()

	// Restart on the same journal — no static w2, no chaos.
	cfg2 := Config{
		Workers:       []StaticWorker{{Name: "w1", URL: w1.URL}},
		JournalPath:   journalPath,
		JobsDir:       jobsDir,
		ProbeInterval: 25 * time.Millisecond,
	}
	c2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(c2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		c2.Close()
	})
	if got := c2.Metrics().JournalReplays(); got < 2 {
		t.Fatalf("journal replays = %d, want >= 2 (membership + job)", got)
	}
	if c2.workerByName(t, "w2").url != strings.TrimRight(w2.URL, "/") {
		t.Fatal("self-registered worker w2 not re-adopted from the journal")
	}

	var final DatasetJobStatus
	deadline = time.Now().Add(120 * time.Second)
	for {
		final = jobStatus(t, ts2.URL, submitted.ID)
		if final.State == "done" || final.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed job never finished: %+v", final)
		}
		time.Sleep(25 * time.Millisecond)
	}
	if final.State != "done" {
		t.Fatalf("resumed job failed: %+v", final)
	}
	if final.ShardsReused < 1 {
		t.Fatalf("resumed job reused %d shards, want >= 1 (pre-crash work thrown away)", final.ShardsReused)
	}

	// Byte-identity against the single-process reference.
	_, dcfg, err := fleetSweepConfig(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	refFile := filepath.Join(dir, "reference.gob")
	if err := want.SaveFile(refFile); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(refFile)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(final.DatasetFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("resumed fleet dataset differs from single-process reference (%d vs %d bytes)", len(gotBytes), len(wantBytes))
	}

	// A second restart replays the terminal record: the job reports done
	// without re-running anything.
	c3, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	ts3 := httptest.NewServer(c3.Handler())
	t.Cleanup(func() {
		ts3.Close()
		c3.Close()
	})
	if st := jobStatus(t, ts3.URL, submitted.ID); st.State != "done" || st.DatasetFile != final.DatasetFile {
		t.Fatalf("job after second restart = %+v, want done with the same dataset", st)
	}
}

// jobStatus fetches one fleet job's status.
func jobStatus(t *testing.T, base, id string) DatasetJobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("job status answered %d: %s", resp.StatusCode, b)
	}
	var st DatasetJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
