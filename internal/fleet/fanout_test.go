package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"slap/internal/dataset"
	"slap/internal/genjob"
	"slap/internal/server"
)

// pickFanoutPlan finds a shard count where both fleet workers own at
// least two shards of the sweep, so killing either mid-sweep is
// guaranteed to strand work that must fail over. The ring is
// deterministic, so this search is too.
func pickFanoutPlan(t *testing.T, circuits, maps int) (shards int, owned map[string]int) {
	t.Helper()
	ring := NewRing([]string{"w1", "w2"}, 0)
	for _, shards := range []int{8, 10, 12, 6, 14, 16} {
		specs := genjob.Plan(circuits, maps, shards)
		owned := map[string]int{}
		for _, sp := range specs {
			owned[ring.Owner(ShardKey(sp.Shard))]++
		}
		if owned["w1"] >= 2 && owned["w2"] >= 2 {
			return shards, owned
		}
	}
	t.Fatal("no shard count split work across both workers (ring constants changed?)")
	return 0, nil
}

// TestFanoutByteIdenticalWithWorkerDeath is the distributed-sweep
// acceptance test: two workers run a sharded dataset sweep, one is killed
// after serving its first shard, and the merged dataset must still be
// byte-identical to a single-process dataset.Generate with the same seed.
func TestFanoutByteIdenticalWithWorkerDeath(t *testing.T) {
	req := DatasetJobRequest{
		MapsPerCircuit: 3,
		Seed:           42,
		MaxAttempts:    4,
	}
	names, dcfg, err := fleetSweepConfig(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("default sweep resolves %v, want rc16+cla16", names)
	}
	req.Shards, _ = pickFanoutPlan(t, len(dcfg.Circuits), req.MapsPerCircuit)

	// Reference: the single-process sweep every distributed run must match.
	want, err := dataset.Generate(dcfg)
	if err != nil {
		t.Fatal(err)
	}

	s1 := server.New(server.Config{WorkerName: "w1"})
	w1 := httptest.NewServer(s1.Handler())
	defer w1.Close()
	defer s1.Close()

	// w2 dies mid-sweep: it serves exactly one shard execution, then every
	// connection (probes included) is dropped at the TCP level — the
	// behaviour of a SIGKILLed process.
	s2 := server.New(server.Config{WorkerName: "w2"})
	defer s2.Close()
	var shardCalls atomic.Int64
	var dead atomic.Bool
	drop := func(w http.ResponseWriter) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}
	w2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			drop(w)
			return
		}
		if r.URL.Path == "/v1/shards/execute" {
			if shardCalls.Add(1) > 1 {
				dead.Store(true)
				drop(w)
				return
			}
			s2.Handler().ServeHTTP(w, r)
			dead.Store(true)
			return
		}
		s2.Handler().ServeHTTP(w, r)
	}))
	defer w2.Close()

	c, ts := newCoordinator(t, Config{
		Workers:          []StaticWorker{{Name: "w1", URL: w1.URL}, {Name: "w2", URL: w2.URL}},
		ProbeInterval:    250 * time.Millisecond,
		DeadAfter:        1,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		ShardConcurrency: 2,
		JobsDir:          t.TempDir(),
	})

	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs/dataset", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var submitted struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || submitted.ID == "" {
		t.Fatalf("job submit answered %d (%+v), want 202 with id", resp.StatusCode, submitted)
	}

	var st DatasetJobStatus
	deadline := time.Now().Add(3 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + submitted.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding job status %s: %v", data, err)
		}
		if st.State == "done" || st.State == "failed" || st.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q: %s", st.State, data)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job finished %q (error %q), want done", st.State, st.Error)
	}
	if st.ShardsDone != st.ShardsTotal {
		t.Errorf("shards done %d/%d", st.ShardsDone, st.ShardsTotal)
	}
	if st.Retries < 1 {
		t.Errorf("job retries = %d after a worker death, want >= 1", st.Retries)
	}
	if got := c.Metrics().Retries(); got < 1 {
		t.Errorf("slap_fleet_retries_total = %d, want >= 1", got)
	}
	if st.ShardWorkers["w1"] == 0 {
		t.Errorf("surviving worker executed no shards: %v", st.ShardWorkers)
	}
	if st.ShardWorkers["w2"] > 1 {
		t.Errorf("dead worker credited with %d shards, served only 1", st.ShardWorkers["w2"])
	}

	got, err := dataset.LoadFile(st.DatasetFile)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.X, want.X) || !reflect.DeepEqual(got.Y, want.Y) {
		t.Fatalf("distributed sweep dataset differs from single-process dataset.Generate (len %d vs %d)", got.Len(), want.Len())
	}

	// Byte identity, not just value identity: the merged file must equal
	// what a local save of the reference produces.
	gotBytes, err := os.ReadFile(st.DatasetFile)
	if err != nil {
		t.Fatal(err)
	}
	refFile := t.TempDir() + "/ref.gob"
	if err := want.SaveFile(refFile); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(refFile)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Errorf("merged dataset file is not byte-identical to the single-process reference (%d vs %d bytes)", len(gotBytes), len(wantBytes))
	}
}

// TestFanoutRejectsBadRequests checks job validation fails fast.
func TestFanoutRejectsBadRequests(t *testing.T) {
	stub := stubWorker(t, "w", func(w http.ResponseWriter, r *http.Request) {})
	_, ts := newCoordinator(t, Config{
		Workers: []StaticWorker{{Name: "w", URL: stub.URL}},
		JobsDir: t.TempDir(),
	})
	for _, tc := range []struct {
		name string
		body string
		want int
	}{
		{"no maps", `{}`, http.StatusBadRequest},
		{"bad circuit", `{"maps_per_circuit":2,"circuits":["nope"]}`, http.StatusBadRequest},
		{"bad metric", `{"maps_per_circuit":2,"metric":"speed"}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs/dataset", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: answered %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/fleet-9999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job answered %d, want 404", resp.StatusCode)
	}
}
