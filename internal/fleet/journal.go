package fleet

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"sync"
)

// The coordinator journal makes the control plane crash-safe. Everything
// the coordinator must not forget — fleet membership and the lifecycle
// of dataset fan-out jobs — is appended to one JSONL file before it
// takes effect, in the same append-only spirit as genjob's
// manifest.jsonl: a header line pins the format, the last record wins,
// and a torn trailing line (SIGKILL mid-append) is skipped on replay.
// Each record additionally carries a CRC-32C of its own canonical bytes,
// so a torn or bit-rotted line anywhere in the file is detected and
// dropped rather than half-applied.
//
// A SIGKILLed coordinator restarted with the same -journal path replays
// the file, re-adopts its workers (probes then refresh their health),
// and re-spawns every journaled job that never reached a terminal state
// — the per-job genjob manifest takes over from there, re-shipping only
// shards that are missing or corrupt, so the resumed sweep merges
// byte-identical to an uninterrupted run.

// journalHeaderTag pins the journal format.
const journalHeaderTag = "slap-fleet-journal/1"

// Journal record operations.
const (
	opHeader       = "header"
	opWorkerAdd    = "worker-add"
	opWorkerRemove = "worker-remove"
	opJobSubmit    = "job-submit"
	opJobDone      = "job-done"
	opJobFailed    = "job-failed"
)

// journalRecord is one journal line. Exactly the fields for its Op are
// set; Sum is the CRC-32C (hex) of the record marshalled with Sum empty.
type journalRecord struct {
	Op string `json:"op"`

	// opHeader
	Tag string `json:"tag,omitempty"`

	// opWorkerAdd / opWorkerRemove
	Name   string `json:"name,omitempty"`
	URL    string `json:"url,omitempty"`
	Static bool   `json:"static,omitempty"`

	// opJobSubmit / opJobDone / opJobFailed
	Job    string             `json:"job,omitempty"`
	OutDir string             `json:"out_dir,omitempty"`
	Req    *DatasetJobRequest `json:"req,omitempty"`
	File   string             `json:"file,omitempty"` // opJobDone: merged dataset path
	Err    string             `json:"err,omitempty"`  // opJobFailed: cause

	Sum string `json:"sum,omitempty"`
}

// crcTable is the Castagnoli polynomial, the usual choice for storage
// checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the record's CRC over its canonical (Sum-less) JSON.
func (r journalRecord) checksum() (string, error) {
	r.Sum = ""
	b, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%08x", crc32.Checksum(b, crcTable)), nil
}

// journal is the open coordinator journal. Appends serialize on mu and
// fsync before returning: a record either survives a crash whole or is
// dropped as torn on replay — never half-applied.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// replayState is what a journal replay reconstructs.
type replayState struct {
	// workers is the surviving membership, name → record.
	workers map[string]journalRecord
	// jobs is every journaled job, name → last lifecycle record; jobs
	// whose last record is opJobSubmit are unfinished and must resume.
	jobs map[string]journalRecord
	// order preserves job-submission order for deterministic resume.
	order []string
	// applied counts records accepted during replay; dropped counts
	// records rejected (torn line, checksum mismatch).
	applied, dropped int
}

// openJournal opens (or creates) the journal at path and replays it.
func openJournal(path string) (*journal, *replayState, error) {
	st := &replayState{
		workers: make(map[string]journalRecord),
		jobs:    make(map[string]journalRecord),
	}
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	fresh := len(existing) == 0
	if !fresh {
		sc := bufio.NewScanner(bytes.NewReader(existing))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		first := true
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			var r journalRecord
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				// A torn line is what a kill mid-append leaves; whatever it
				// described is simply redone (worker re-registers, job
				// resumes one step earlier).
				st.dropped++
				continue
			}
			want, err := r.checksum()
			if err != nil || r.Sum != want {
				st.dropped++
				continue
			}
			if first {
				first = false
				if r.Op != opHeader || r.Tag != journalHeaderTag {
					return nil, nil, fmt.Errorf("fleet: %s is not a coordinator journal", path)
				}
				continue
			}
			switch r.Op {
			case opWorkerAdd:
				st.workers[r.Name] = r
			case opWorkerRemove:
				delete(st.workers, r.Name)
			case opJobSubmit:
				if _, ok := st.jobs[r.Job]; !ok {
					st.order = append(st.order, r.Job)
				}
				st.jobs[r.Job] = r
			case opJobDone, opJobFailed:
				// Terminal states keep the submit's request for status
				// replay but stop the job from resuming.
				if prev, ok := st.jobs[r.Job]; ok && r.Req == nil {
					r.Req, r.OutDir = prev.Req, prev.OutDir
				}
				if _, ok := st.jobs[r.Job]; !ok {
					st.order = append(st.order, r.Job)
				}
				st.jobs[r.Job] = r
			default:
				st.dropped++
				continue
			}
			st.applied++
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &journal{f: f}
	if fresh {
		if err := j.append(journalRecord{Op: opHeader, Tag: journalHeaderTag}); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, st, nil
}

// append checksums, writes and fsyncs one record. Nil journals (no
// -journal configured) accept silently, so call sites stay branch-free.
func (j *journal) append(r journalRecord) error {
	if j == nil {
		return nil
	}
	sum, err := r.checksum()
	if err != nil {
		return err
	}
	r.Sum = sum
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// close closes the journal file; nil-safe like append.
func (j *journal) close() error {
	if j == nil {
		return nil
	}
	return j.f.Close()
}
