package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Hedged reads close ROADMAP's replica-aware read-scaling item: a read
// displaced from its affine worker (saturated or breaker-open, not dead)
// is raced across two ring replicas, first acceptable answer wins, the
// loser is cancelled and reaped off the request path. Responses stay
// byte-identical either way — both arms replay the same buffered body
// against workers that compute (or cache) the same deterministic answer.

// armResult is one hedge arm's outcome.
type armResult struct {
	pick   pickResult
	arm    string // "primary" | "hedge"
	resp   *http.Response
	err    error
	cancel context.CancelFunc
}

// raceHedge dispatches the buffered request to two workers concurrently.
// On a win it returns the winning arm with its response open and its
// cancel func pending — the caller relays, then calls cancel() and
// releases the slot. The losing arm is settled here (or by a background
// reaper if still in flight). When both arms fail it returns (nil, err)
// and everything is already settled.
func (c *Coordinator) raceHedge(ctx context.Context, r *http.Request, body []byte, primary, hedge pickResult) (*armResult, error) {
	c.metrics.AddHedge()
	armA := &armResult{pick: primary, arm: "primary"}
	armB := &armResult{pick: hedge, arm: "hedge"}
	results := make(chan *armResult, 2)
	for _, a := range []*armResult{armA, armB} {
		armCtx, cancel := context.WithCancel(ctx)
		a.cancel = cancel
		go func(a *armResult, actx context.Context) {
			a.resp, a.err = c.forward(actx, r, a.pick.wk, body)
			results <- a
		}(a, armCtx)
	}
	var lastErr error
	for i := 0; i < 2; i++ {
		res := <-results
		if res.err == nil && res.resp.StatusCode < 500 {
			c.reportProxySuccess(res.pick.wk)
			res.pick.wk.brk.Success()
			c.metrics.AddHedgeWin(res.arm)
			if i == 0 {
				// Cancel the still-running loser and reap it off the
				// request path: its slot and breaker slot come back as soon
				// as its round trip unwinds, without delaying this response.
				loser := armA
				if res == armA {
					loser = armB
				}
				loser.cancel()
				go func() {
					c.settleArm(<-results, true)
				}()
			}
			return res, nil
		}
		c.settleArm(res, false)
		if res.err != nil {
			lastErr = fmt.Errorf("worker %s: %w", res.pick.wk.name, res.err)
		} else {
			lastErr = fmt.Errorf("worker %s answered %d", res.pick.wk.name, res.resp.StatusCode)
		}
	}
	return nil, lastErr
}

// settleArm releases a non-winning arm's resources and feeds its outcome
// to health and breaker. canceled marks a hedge loser we cancelled
// ourselves: losing a race is not a worker failure, so nothing strikes.
func (c *Coordinator) settleArm(res *armResult, canceled bool) {
	if res.resp != nil {
		io.Copy(io.Discard, io.LimitReader(res.resp.Body, 1<<12))
		res.resp.Body.Close()
	}
	res.cancel()
	c.releaseSlot(res.pick.wk)
	switch {
	case res.err == nil && res.resp.StatusCode < 500:
		// The loser finished fine just after the winner: still counts as
		// proof of life.
		c.reportProxySuccess(res.pick.wk)
		res.pick.wk.brk.Success()
	case res.err != nil && (canceled || errors.Is(res.err, context.Canceled)):
		res.pick.wk.brk.Cancel(res.pick.probe)
	case res.err != nil:
		c.reportProxyFailure(res.pick.wk, res.err)
		res.pick.wk.brk.Failure()
	default: // answered 5xx: alive but failing
		c.reportProxySuccess(res.pick.wk)
		res.pick.wk.brk.Failure()
	}
}
