package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/dataset"
	"slap/internal/genjob"
	"slap/internal/library"
)

// Dataset fan-out: POST /v1/jobs/dataset plans the sweep with genjob.Plan,
// ships each shard to a worker's /v1/shards/execute (ring affinity on the
// shard id, retries on the next replica when a worker dies mid-sweep),
// verifies and persists the returned frames into an ordinary genjob
// directory, and merges centrally — byte-identical to a single-process
// dataset.Generate with the same master seed.

// shardSHAHeaderName mirrors the worker's X-Slap-Shard-SHA256 response
// header (the payload SHA of a returned shard frame).
const shardSHAHeaderName = "X-Slap-Shard-SHA256"

// DatasetJobRequest is the JSON body of POST /v1/jobs/dataset on the
// coordinator. It deliberately mirrors the worker's single-node job
// request, so clients can point the same payload at either.
type DatasetJobRequest struct {
	Circuits       []string `json:"circuits"`
	MapsPerCircuit int      `json:"maps_per_circuit"`
	Shards         int      `json:"shards"`
	Seed           int64    `json:"seed"`
	Classes        int      `json:"classes"`
	ShuffleLimit   int      `json:"shuffle_limit"`
	Metric         string   `json:"metric"`
	MaxMapFailures int      `json:"max_map_failures"`
	// MaxAttempts bounds how many workers one shard may be tried on
	// (0 = the coordinator's MaxAttempts); FailureBudget is how many
	// shards may fail permanently before the job does.
	MaxAttempts   int `json:"max_attempts"`
	FailureBudget int `json:"failure_budget"`
	// ShardTimeoutMS bounds one shard execution on the worker (0 = the
	// worker's default request timeout).
	ShardTimeoutMS int64 `json:"shard_timeout_ms"`
}

// DatasetJobStatus is the JSON answer of GET /v1/jobs/{id}, shaped like
// the worker's single-node job status.
type DatasetJobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"` // queued, running, done, failed, canceled
	CreatedAt string  `json:"created_at"`
	ElapsedS  float64 `json:"elapsed_s"`

	ShardsTotal   int   `json:"shards_total,omitempty"`
	ShardsDone    int   `json:"shards_done"`
	ShardsReused  int   `json:"shards_reused,omitempty"`
	Retries       int   `json:"retries"`
	FailedShards  []int `json:"failed_shards,omitempty"`
	FailureBudget int   `json:"failure_budget"`

	// ShardWorkers counts shards by the worker that executed them — the
	// fan-out's affinity map.
	ShardWorkers map[string]int `json:"shard_workers,omitempty"`

	Samples     int    `json:"samples,omitempty"`
	SkippedMaps int    `json:"skipped_maps,omitempty"`
	OutDir      string `json:"out_dir,omitempty"`
	DatasetFile string `json:"dataset_file,omitempty"`
	Error       string `json:"error,omitempty"`
}

// fleetJob is one coordinator-side dataset fan-out.
type fleetJob struct {
	id      string
	created time.Time
	budget  int
	outDir  string
	cancel  context.CancelFunc

	mu           sync.Mutex
	state        string
	started      time.Time
	finished     time.Time
	shardsTotal  int
	shardsDone   int
	shardsReused int
	retries      int
	failed       []int
	shardWorkers map[string]int
	samples      int
	skipped      int
	datasetFile  string
	errMsg       string
}

func (j *fleetJob) status() DatasetJobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	elapsed := time.Since(j.started).Seconds()
	if j.state == "queued" {
		elapsed = time.Since(j.created).Seconds()
	} else if !j.finished.IsZero() {
		elapsed = j.finished.Sub(j.started).Seconds()
	}
	var workers map[string]int
	if len(j.shardWorkers) > 0 {
		workers = make(map[string]int, len(j.shardWorkers))
		for k, v := range j.shardWorkers {
			workers[k] = v
		}
	}
	return DatasetJobStatus{
		ID:            j.id,
		State:         j.state,
		CreatedAt:     j.created.UTC().Format(time.RFC3339),
		ElapsedS:      elapsed,
		ShardsTotal:   j.shardsTotal,
		ShardsDone:    j.shardsDone,
		ShardsReused:  j.shardsReused,
		Retries:       j.retries,
		FailedShards:  append([]int(nil), j.failed...),
		FailureBudget: j.budget,
		ShardWorkers:  workers,
		Samples:       j.samples,
		SkippedMaps:   j.skipped,
		OutDir:        j.outDir,
		DatasetFile:   j.datasetFile,
		Error:         j.errMsg,
	}
}

func (j *fleetJob) fail(msg string) {
	j.mu.Lock()
	j.state, j.errMsg, j.finished = "failed", msg, time.Now()
	j.mu.Unlock()
}

// fleetSweepConfig resolves a job request into the normalized
// dataset.Config whose fingerprint both ends compare. It must agree with
// the worker's own resolution (same builtins, same default library) —
// that is exactly what the fingerprint cross-check enforces at runtime.
func fleetSweepConfig(req DatasetJobRequest) ([]string, dataset.Config, error) {
	names := req.Circuits
	if len(names) == 0 {
		names = []string{"rc16", "cla16"}
	}
	var graphs []*aig.AIG
	for _, n := range names {
		switch n {
		case "rc16":
			graphs = append(graphs, circuits.TrainRC16())
		case "cla16":
			graphs = append(graphs, circuits.TrainCLA16())
		default:
			return nil, dataset.Config{}, fmt.Errorf("unknown circuit %q (want rc16 or cla16)", n)
		}
	}
	var metric dataset.Metric
	switch req.Metric {
	case "", "delay":
		metric = dataset.MetricDelay
	case "area":
		metric = dataset.MetricArea
	case "adp":
		metric = dataset.MetricADP
	default:
		return nil, dataset.Config{}, fmt.Errorf("unknown metric %q (want delay, area or adp)", req.Metric)
	}
	dcfg := dataset.Config{
		Circuits:       graphs,
		Library:        library.ASAP7ish(),
		MapsPerCircuit: req.MapsPerCircuit,
		Classes:        req.Classes,
		Seed:           req.Seed,
		ShuffleLimit:   req.ShuffleLimit,
		Metric:         metric,
		MaxFailures:    req.MaxMapFailures,
		Workers:        1, // one mapping at a time per shard, same as genjob
	}
	dcfg, err := dcfg.Normalize()
	if err != nil {
		return nil, dataset.Config{}, err
	}
	dcfg.Workers = 1
	return names, dcfg, nil
}

func (c *Coordinator) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req DatasetJobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON request: %w", err))
		return
	}
	if req.MapsPerCircuit <= 0 {
		writeError(w, http.StatusBadRequest, errors.New("maps_per_circuit must be positive"))
		return
	}
	names, dcfg, err := fleetSweepConfig(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	c.mu.Lock()
	workerCount := len(c.workers)
	c.mu.Unlock()
	if workerCount == 0 {
		writeError(w, http.StatusServiceUnavailable, errors.New("fleet has no workers"))
		return
	}

	id := fmt.Sprintf("fleet-%04d", c.jobsSeq.Add(1))
	outDir := filepath.Join(c.cfg.JobsDir, id)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("creating job directory: %w", err))
		return
	}
	// Journal the submission before the job exists anywhere else: a crash
	// from here on leaves a submit record with no terminal record, which is
	// exactly what makes the restarted coordinator resume it.
	if err := c.journal.append(journalRecord{Op: opJobSubmit, Job: id, OutDir: outDir, Req: &req}); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("journaling job: %w", err))
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &fleetJob{
		id:           id,
		created:      time.Now(),
		budget:       req.FailureBudget,
		outDir:       outDir,
		cancel:       cancel,
		state:        "queued",
		shardWorkers: make(map[string]int),
	}
	c.jobs.Store(id, job)

	go c.runFleetJob(ctx, job, req, names, dcfg)

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         id,
		"status_url": "/v1/jobs/" + id,
	})
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := c.jobs.Load(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, v.(*fleetJob).status())
}

// resumeJobs re-creates journaled jobs after a restart: finished jobs
// reappear in status queries, and every job whose last journal record is
// the submission resumes — its genjob manifest re-ships only the shards
// that are missing or corrupt, so the merged dataset comes out
// byte-identical to an uninterrupted run.
func (c *Coordinator) resumeJobs(st *replayState) {
	var maxSeq int64
	for _, id := range st.order {
		var seq int64
		if _, err := fmt.Sscanf(id, "fleet-%d", &seq); err == nil && seq > maxSeq {
			maxSeq = seq
		}
	}
	c.jobsSeq.Store(maxSeq)
	for _, id := range st.order {
		rec := st.jobs[id]
		job := &fleetJob{
			id:           id,
			created:      time.Now(),
			outDir:       rec.OutDir,
			cancel:       func() {},
			state:        "queued",
			shardWorkers: make(map[string]int),
		}
		if rec.Req != nil {
			job.budget = rec.Req.FailureBudget
		}
		var start func()
		switch {
		case rec.Op == opJobDone:
			job.state = "done"
			job.started, job.finished = job.created, job.created
			job.datasetFile = rec.File
		case rec.Op == opJobFailed:
			job.state = "failed"
			job.started, job.finished = job.created, job.created
			job.errMsg = rec.Err
		case rec.Req == nil:
			job.state = "failed"
			job.started, job.finished = job.created, job.created
			job.errMsg = "journal lost the job request"
		default:
			names, dcfg, err := fleetSweepConfig(*rec.Req)
			if err != nil {
				job.state = "failed"
				job.started, job.finished = job.created, job.created
				job.errMsg = err.Error()
				break
			}
			ctx, cancel := context.WithCancel(context.Background())
			job.cancel = cancel
			req := *rec.Req
			start = func() { go c.runFleetJob(ctx, job, req, names, dcfg) }
		}
		c.jobs.Store(id, job)
		if start != nil {
			start()
		}
	}
}

// runFleetJob drives one sweep: plan, ship every shard not already
// journaled done, then merge with the stock genjob machinery.
func (c *Coordinator) runFleetJob(ctx context.Context, job *fleetJob, req DatasetJobRequest, names []string, dcfg dataset.Config) {
	defer func() {
		// Journal the terminal state once it settles (this runs after the
		// recover below). A crash or cancel before this point leaves the
		// submit record as the job's last word, so a journal-replaying
		// restart resumes it.
		switch st := job.status(); st.State {
		case "done":
			c.journal.append(journalRecord{Op: opJobDone, Job: job.id, File: st.DatasetFile})
		case "failed":
			c.journal.append(journalRecord{Op: opJobFailed, Job: job.id, Err: st.Error})
		}
	}()
	defer job.cancel()
	defer func() {
		if p := recover(); p != nil {
			job.fail(fmt.Sprintf("fleet job panicked: %v", p))
		}
	}()

	shards := req.Shards
	if shards <= 0 {
		shards = len(dcfg.Circuits)
	}
	specs := genjob.Plan(len(dcfg.Circuits), dcfg.MapsPerCircuit, shards)
	fp := genjob.Fingerprint(dcfg)

	journal, err := genjob.OpenJournal(job.outDir, fp, len(specs))
	if err != nil {
		job.fail(fmt.Sprintf("opening job manifest: %v", err))
		return
	}

	job.mu.Lock()
	job.state, job.started, job.shardsTotal = "running", time.Now(), len(specs)
	job.mu.Unlock()

	// A resumed directory re-ships only what is missing or corrupt.
	var pending []genjob.Spec
	for _, sp := range specs {
		if journal.Done(job.outDir, fp, sp) {
			job.mu.Lock()
			job.shardsDone++
			job.shardsReused++
			job.mu.Unlock()
			continue
		}
		pending = append(pending, sp)
	}

	conc := c.cfg.ShardConcurrency
	if conc <= 0 {
		c.mu.Lock()
		conc = 2 * len(c.workers)
		c.mu.Unlock()
		if conc < 1 {
			conc = 1
		}
	}
	maxAttempts := req.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = c.cfg.MaxAttempts
	}

	var (
		wg  sync.WaitGroup
		sem = make(chan struct{}, conc)
		mu  sync.Mutex // guards journal writes and the failed count
	)
	for _, sp := range pending {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(sp genjob.Spec) {
			defer func() { <-sem; wg.Done() }()
			workerName, sha, attempts, err := c.shipShard(ctx, job, req, names, fp, sp, maxAttempts)
			// Journal writes serialize on mu: the manifest file is
			// append-only but not concurrency-safe.
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				journal.RecordFailed(sp, attempts, err)
				c.metrics.AddShard("failed")
				job.mu.Lock()
				job.failed = append(job.failed, sp.Shard)
				overBudget := len(job.failed) > job.budget
				job.mu.Unlock()
				if overBudget {
					job.cancel() // sink the job: no point shipping the rest
				}
				return
			}
			journal.RecordDone(sp, sha, attempts)
			c.metrics.AddShard("done")
			job.mu.Lock()
			job.shardsDone++
			job.shardWorkers[workerName]++
			job.mu.Unlock()
		}(sp)
	}
	wg.Wait()
	journal.Close()

	job.mu.Lock()
	nFailed := len(job.failed)
	job.mu.Unlock()
	if ctx.Err() != nil && nFailed <= job.budget {
		job.mu.Lock()
		job.state, job.errMsg, job.finished = "canceled", "canceled", time.Now()
		job.mu.Unlock()
		return
	}
	if nFailed > job.budget {
		job.fail(fmt.Sprintf("%d shards failed permanently (budget %d)", nFailed, job.budget))
		return
	}

	// Merge centrally with the stock machinery: every frame on disk has
	// already passed full verification once on receipt, and Merge verifies
	// everything again before assembly.
	ds, rep, err := genjob.Merge(genjob.Config{
		Dataset:       dcfg,
		OutDir:        job.outDir,
		Shards:        req.Shards,
		FailureBudget: req.FailureBudget,
	})
	if err != nil {
		job.fail(fmt.Sprintf("merging shards: %v", err))
		return
	}
	file := filepath.Join(job.outDir, "dataset.gob")
	if err := ds.SaveFile(file); err != nil {
		job.fail(fmt.Sprintf("saving merged dataset: %v", err))
		return
	}
	job.mu.Lock()
	job.state, job.finished = "done", time.Now()
	job.samples = ds.Len()
	job.skipped = rep.SkippedMaps
	job.datasetFile = file
	job.mu.Unlock()
}

// shipShard executes one shard remotely: ring affinity on the shard id,
// walking replicas on failure under the fleet failure budget, verifying
// and persisting the returned frame. Returns the executing worker's name
// and the frame's payload SHA for the journal.
func (c *Coordinator) shipShard(ctx context.Context, job *fleetJob, req DatasetJobRequest, names []string, fp string, sp genjob.Spec, maxAttempts int) (string, string, int, error) {
	body, err := json.Marshal(map[string]any{
		"circuits":         names,
		"maps_per_circuit": req.MapsPerCircuit,
		"classes":          req.Classes,
		"seed":             req.Seed,
		"shuffle_limit":    req.ShuffleLimit,
		"metric":           req.Metric,
		"max_map_failures": req.MaxMapFailures,
		"fingerprint":      fp,
		"shard":            sp.Shard,
		"circuit":          sp.Circuit,
		"start":            sp.Start,
		"end":              sp.End,
		"timeout_ms":       req.ShardTimeoutMS,
	})
	if err != nil {
		return "", "", 0, err
	}
	key := ShardKey(sp.Shard)
	order := c.lookup(key)
	if len(order) == 0 {
		return "", "", 0, errors.New("fleet has no workers")
	}
	rng := rand.New(rand.NewSource(int64(key) ^ 0x7f4a7c15))
	var lastErr error
	idx := 0
	attempt := 0
	for attempt < maxAttempts {
		if ctx.Err() != nil {
			if lastErr == nil {
				lastErr = ctx.Err()
			}
			break
		}
		// Next live candidate in ring preference order, sharing the request
		// path's breaker-aware scan. Unlike the request path, saturation
		// does not shed — a sweep would rather wait for a slot than fail a
		// shard.
		pick := c.pickWorker(order, &idx, nil)
		attempt++
		if pick.wk == nil {
			lastErr = errors.New("no live worker with a free slot")
			c.noteShardRetry(job)
			genjob.Backoff(ctx, c.cfg.BackoffBase, c.cfg.BackoffMax, attempt, rng)
			continue
		}
		wk := pick.wk
		frame, err := c.execShardOn(ctx, wk, body)
		c.releaseSlot(wk)
		if err != nil {
			if isTransport(err) {
				c.reportProxyFailure(wk, err)
				wk.brk.Failure()
			} else {
				// The worker answered (a non-200): transport-wise it is
				// serving, so the breaker stays closed.
				wk.brk.Success()
			}
			lastErr = fmt.Errorf("worker %s: %w", wk.name, err)
			c.noteShardRetry(job)
			genjob.Backoff(ctx, c.cfg.BackoffBase, c.cfg.BackoffMax, attempt, rng)
			continue
		}
		c.reportProxySuccess(wk)
		wk.brk.Success()
		// Full verification before the frame touches disk: magic, shard id,
		// checksum, decode, spec and fingerprint agreement.
		sha, err := genjob.VerifyShardBytes(frame, wk.name, sp, fp)
		if err != nil {
			lastErr = err
			c.noteShardRetry(job)
			continue
		}
		if err := genjob.WriteShardBytes(job.outDir, sp, frame); err != nil {
			return "", "", attempt, fmt.Errorf("persisting shard %d: %w", sp.Shard, err)
		}
		return wk.name, sha, attempt, nil
	}
	return "", "", attempt, fmt.Errorf("shard %d failed after %d attempt(s): %w", sp.Shard, attempt, lastErr)
}

func (c *Coordinator) noteShardRetry(job *fleetJob) {
	c.metrics.AddRetry()
	job.mu.Lock()
	job.retries++
	job.mu.Unlock()
}

// transportError marks errors from the HTTP client itself (as opposed to
// worker-answered failures) — only these strike worker health.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

func isTransport(err error) bool {
	var te *transportError
	return errors.As(err, &te)
}

// execShardOn performs one shard execution round trip against one worker.
func (c *Coordinator) execShardOn(ctx context.Context, wk *worker, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, wk.url+"/v1/shards/execute", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, &transportError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("shard execution answered %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	frame, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &transportError{err: err}
	}
	return frame, nil
}
