package fleet

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingDeterministicAcrossRestarts pins the property warm-cache routing
// depends on: a ring built from the same membership — in any registration
// order, in a fresh process — routes every key identically.
func TestRingDeterministicAcrossRestarts(t *testing.T) {
	members := []string{"w3", "w1", "w4", "w2"}
	shuffled := []string{"w2", "w4", "w1", "w3"}
	a := NewRing(members, 0)
	b := NewRing(shuffled, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		key := rng.Uint64()
		if got, want := a.Owner(key), b.Owner(key); got != want {
			t.Fatalf("key %#x: owner %q on ring A, %q on ring B (registration order changed routing)", key, got, want)
		}
	}
}

// TestRingLookupDistinctFailoverOrder checks Lookup returns every member
// exactly once, primary first.
func TestRingLookupDistinctFailoverOrder(t *testing.T) {
	members := []string{"a", "b", "c", "d", "e"}
	r := NewRing(members, 0)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		key := rng.Uint64()
		order := r.Lookup(key, 0)
		if len(order) != len(members) {
			t.Fatalf("Lookup returned %d members, want %d", len(order), len(members))
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("member %q appears twice in failover order %v", m, order)
			}
			seen[m] = true
		}
		if order[0] != r.Owner(key) {
			t.Fatalf("Lookup[0] = %q, Owner = %q", order[0], r.Owner(key))
		}
	}
}

// TestRingKeyMovementOnJoinAndLeave pins the consistent-hashing contract:
// adding or removing one worker moves at most ~2/N of the keyspace, not
// the near-total reshuffle a modulo scheme would cause.
func TestRingKeyMovementOnJoinAndLeave(t *testing.T) {
	const keys = 10000
	base := []string{"w0", "w1", "w2", "w3"}
	before := NewRing(base, 0)

	t.Run("join", func(t *testing.T) {
		after := NewRing(append(append([]string(nil), base...), "w4"), 0)
		moved := 0
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < keys; i++ {
			key := rng.Uint64()
			if before.Owner(key) != after.Owner(key) {
				moved++
			}
		}
		// Expected movement is 1/(N+1) = 20%; allow 2/(N+1) slack.
		if limit := 2 * keys / (len(base) + 1); moved > limit {
			t.Errorf("join moved %d/%d keys, want <= %d (~2/N)", moved, keys, limit)
		}
		if moved == 0 {
			t.Error("join moved no keys: the new worker owns nothing")
		}
	})

	t.Run("leave", func(t *testing.T) {
		after := NewRing(base[:len(base)-1], 0)
		moved := 0
		rng := rand.New(rand.NewSource(4))
		for i := 0; i < keys; i++ {
			key := rng.Uint64()
			if before.Owner(key) != after.Owner(key) {
				moved++
			}
		}
		// Only keys owned by the departed worker may move: 1/N = 25%
		// expected, 2/N allowed.
		if limit := 2 * keys / len(base); moved > limit {
			t.Errorf("leave moved %d/%d keys, want <= %d (~2/N)", moved, keys, limit)
		}
	})
}

// TestRingBalance sanity-checks the vnode split: with 64 vnodes per
// worker no member should own a wildly disproportionate keyspace share.
func TestRingBalance(t *testing.T) {
	members := make([]string, 8)
	for i := range members {
		members[i] = fmt.Sprintf("worker-%d", i)
	}
	r := NewRing(members, 0)
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(5))
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(rng.Uint64())]++
	}
	mean := keys / len(members)
	for m, n := range counts {
		if n < mean/3 || n > mean*3 {
			t.Errorf("member %s owns %d/%d keys (mean %d): vnode split too uneven", m, n, keys, mean)
		}
	}
}

// TestRingFailoverSkipsToNextReplica checks the replica order is what the
// routing loop walks: for any key, removing the primary from membership
// makes the old second replica the new primary.
func TestRingFailoverSkipsToNextReplica(t *testing.T) {
	members := []string{"a", "b", "c", "d"}
	r := NewRing(members, 0)
	rng := rand.New(rand.NewSource(6))
	agree := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := rng.Uint64()
		order := r.Lookup(key, 2)
		var rest []string
		for _, m := range members {
			if m != order[0] {
				rest = append(rest, m)
			}
		}
		if NewRing(rest, 0).Owner(key) == order[1] {
			agree++
		}
	}
	// The second replica is exactly where the key lands when the primary
	// leaves (the points of the remaining members are unchanged).
	if agree != keys {
		t.Errorf("second replica matched post-departure owner for %d/%d keys, want all", agree, keys)
	}
}

// TestEmptyRing checks the degenerate cases stay nil-safe.
func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Lookup(42, 0); got != nil {
		t.Errorf("empty ring Lookup = %v, want nil", got)
	}
	if got := r.Owner(42); got != "" {
		t.Errorf("empty ring Owner = %q, want empty", got)
	}
}
