package fleet

import (
	"sync"
	"time"
)

// Circuit-breaker defaults.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second
)

// BreakerState is one circuit breaker's position.
type BreakerState int

// The per-worker circuit breaker sits under the up/degraded/dead health
// state machine and reacts faster than DeadAfter can: it watches the
// request path only, trips open after Threshold consecutive failures,
// and recovers through a half-open probe instead of waiting for the
// worker to be declared dead and revived.
//
//	closed ──(Threshold consecutive request failures)──▶ open
//	open ──(Cooldown elapses)──▶ half-open (one trial request allowed)
//	half-open ──(trial succeeds, or a /healthz probe succeeds)──▶ closed
//	half-open ──(trial fails)──▶ open (fresh cooldown)
//
// While open, routing treats the worker like a dead one (skip to the
// next ring replica, count a hedge when the skipped worker was the
// affine one); unlike dead, the breaker re-admits traffic by itself.
const (
	BreakerClosed BreakerState = iota
	BreakerHalfOpen
	BreakerOpen
)

// String names the state for metrics and health reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// breaker is one worker's circuit breaker.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock (tests)

	mu      sync.Mutex
	state   BreakerState
	fails   int       // consecutive failures while closed
	until   time.Time // while open: when half-open probing may begin
	probing bool      // half-open: the single trial slot is taken
	opened  func()    // observer for closed/half-open → open transitions
}

// newBreaker builds a closed breaker with the given trip threshold and
// open→half-open cooldown (zero values take the defaults).
func newBreaker(threshold int, cooldown time.Duration, opened func()) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, opened: opened}
}

// Allow reports whether a request may be sent. probe is true when the
// caller holds the half-open trial slot and must report the outcome via
// Success/Failure (or return the slot with Cancel).
func (b *breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Before(b.until) {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Success records a completed request (trial or regular): the worker is
// serving again, so the breaker closes from any state.
func (b *breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// ProbeSuccess is the probe-driven close: a successful /healthz probe
// stands in for the half-open trial, recovering an idle worker without
// spending a client request. It only acts once the cooldown has elapsed
// — a worker that serves /healthz while failing requests must not have
// its breaker washed closed by every probe cycle.
func (b *breaker) ProbeSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen || (b.state == BreakerOpen && !b.now().Before(b.until)) {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
	}
}

// Failure records a failed request. A failed half-open trial reopens
// with a fresh cooldown; Threshold consecutive failures trip a closed
// breaker.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	default: // already open: a straggling in-flight failure changes nothing
	}
}

// trip moves to open. Callers hold b.mu.
func (b *breaker) trip() {
	b.state = BreakerOpen
	b.fails = 0
	b.probing = false
	b.until = b.now().Add(b.cooldown)
	if b.opened != nil {
		b.opened()
	}
}

// Cancel returns an unused half-open trial slot (the caller decided not
// to send after all, e.g. no in-flight slot was free).
func (b *breaker) Cancel(probe bool) {
	if !probe {
		return
	}
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// State snapshots the breaker position, surfacing open→half-open
// eligibility so reports do not show "open" forever on an idle fleet.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && !b.now().Before(b.until) {
		return BreakerHalfOpen
	}
	return b.state
}
