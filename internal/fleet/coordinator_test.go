package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slap/internal/circuits"
	"slap/internal/server"
)

// rc16AAG renders the 16-bit ripple-carry adder as AIGER text — the test
// design whose structural hash drives affinity routing.
func rc16AAG(t *testing.T) string {
	t.Helper()
	var b bytes.Buffer
	if err := circuits.TrainRC16().WriteAAG(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// newWorker boots one real mapping worker named name.
func newWorker(t *testing.T, name string) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(server.Config{WorkerName: name, ResultCacheBytes: 16 << 20})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// newCoordinator boots a coordinator over the given fleet config with a
// fast probe cadence.
func newCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 2
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

func postCircuit(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestProxyAffinityCacheAndFailover is the fleet acceptance path: the same
// design routes to the same worker (whose result cache then answers the
// resubmission), and killing that worker fails the next resubmission over
// to the surviving replica.
func TestProxyAffinityCacheAndFailover(t *testing.T) {
	_, w1 := newWorker(t, "w1")
	_, w2 := newWorker(t, "w2")
	c, ts := newCoordinator(t, Config{
		Workers: []StaticWorker{{Name: "w1", URL: w1.URL}, {Name: "w2", URL: w2.URL}},
	})
	aag := rc16AAG(t)

	var first server.MapResponse
	resp, data := postCircuit(t, ts.URL+"/v1/map?policy=default", aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first map: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Worker != "w1" && first.Worker != "w2" {
		t.Fatalf("first map served by %q, want a fleet worker", first.Worker)
	}
	if got := resp.Header.Get("X-Slap-Worker"); got != first.Worker {
		t.Errorf("X-Slap-Worker header %q disagrees with response body worker %q", got, first.Worker)
	}
	if first.Cached {
		t.Error("first map reported cached:true on a cold fleet")
	}

	// Hash affinity: the resubmission must land on the same worker and be
	// answered from its result cache.
	var second server.MapResponse
	resp, data = postCircuit(t, ts.URL+"/v1/map?policy=default", aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if second.Worker != first.Worker {
		t.Errorf("resubmission routed to %q, first request to %q: affinity broken", second.Worker, first.Worker)
	}
	if !second.Cached {
		t.Error("resubmission on the affine worker was not served from its result cache")
	}
	if second.Area != first.Area || second.Delay != first.Delay {
		t.Errorf("cached mapping differs: area %v/%v delay %v/%v", second.Area, first.Area, second.Delay, first.Delay)
	}

	// Kill the affine worker; the same design must drain to the survivor.
	if first.Worker == "w1" {
		w1.Close()
	} else {
		w2.Close()
	}
	var third server.MapResponse
	resp, data = postCircuit(t, ts.URL+"/v1/map?policy=default", aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill map: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &third); err != nil {
		t.Fatal(err)
	}
	if third.Worker == first.Worker {
		t.Errorf("post-kill request still reports dead worker %q", third.Worker)
	}
	if third.Area != first.Area || third.Delay != first.Delay {
		t.Errorf("failover mapping differs: area %v/%v delay %v/%v", third.Area, first.Area, third.Delay, first.Delay)
	}
	if got := c.Metrics().Retries(); got < 1 {
		t.Errorf("slap_fleet_retries_total = %d after failover, want >= 1", got)
	}
}

// TestMultiRoundFleetAffinity pins the fleet contract for the multi-round
// engine: a 4-round+choices request routes by structural hash like any
// other, an equal-config resubmission is answered from the affine worker's
// result cache (cached:true, identical QoR, per-round stats intact), and a
// different round config on the same circuit is a distinct cache entry.
func TestMultiRoundFleetAffinity(t *testing.T) {
	_, w1 := newWorker(t, "w1")
	_, w2 := newWorker(t, "w2")
	_, ts := newCoordinator(t, Config{
		Workers: []StaticWorker{{Name: "w1", URL: w1.URL}, {Name: "w2", URL: w2.URL}},
	})
	aag := rc16AAG(t)
	url := ts.URL + "/v1/map?policy=default&rounds=4&choices=true"

	var first server.MapResponse
	resp, data := postCircuit(t, url, aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first multi-round map: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first multi-round map reported cached:true on a cold fleet")
	}
	if first.RoundsRun != 4 || len(first.RoundStats) != 4 {
		t.Fatalf("multi-round response lacks per-round QoR: rounds_run=%d stats=%d",
			first.RoundsRun, len(first.RoundStats))
	}

	var second server.MapResponse
	resp, data = postCircuit(t, url, aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if second.Worker != first.Worker {
		t.Errorf("equal-config resubmission routed to %q, first to %q: affinity broken", second.Worker, first.Worker)
	}
	if !second.Cached {
		t.Error("equal round-config resubmission was not served from the result cache")
	}
	if second.Area != first.Area || second.Delay != first.Delay || len(second.RoundStats) != 4 {
		t.Errorf("cached multi-round mapping differs: area %v/%v delay %v/%v stats=%d",
			second.Area, first.Area, second.Delay, first.Delay, len(second.RoundStats))
	}

	// A single-round request for the same circuit must not hit the
	// 4-round entry.
	var single server.MapResponse
	resp, data = postCircuit(t, ts.URL+"/v1/map?policy=default", aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-round map: status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &single); err != nil {
		t.Fatal(err)
	}
	if single.Cached {
		t.Error("single-round request was served the multi-round cache entry")
	}
	if single.RoundsRun != 0 || len(single.RoundStats) != 0 {
		t.Errorf("single-round response carries round stats: rounds_run=%d stats=%d",
			single.RoundsRun, len(single.RoundStats))
	}
}

// stubWorker is a minimal fake worker: healthy /healthz, scripted /v1/map.
func stubWorker(t *testing.T, name string, handler http.HandlerFunc) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"status":"ok","worker":%q}`, name)
	})
	mux.HandleFunc("POST /v1/map", handler)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestShedWhenSaturated pins the in-flight cap: with every live worker at
// its cap the fleet answers 503 instead of queueing, and the shed counter
// moves.
func TestShedWhenSaturated(t *testing.T) {
	entered := make(chan struct{}, 1)
	block := make(chan struct{})
	stub := stubWorker(t, "stub", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-block
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"worker":"stub"}`)
	})
	defer close(block)
	c, ts := newCoordinator(t, Config{
		Workers:           []StaticWorker{{Name: "stub", URL: stub.URL}},
		InflightPerWorker: 1,
		MaxAttempts:       2,
		BackoffBase:       time.Millisecond,
		BackoffMax:        2 * time.Millisecond,
	})
	aag := rc16AAG(t)

	done := make(chan struct{})
	go func() {
		defer close(done)
		postCircuit(t, ts.URL+"/v1/map", aag)
	}()
	<-entered // the only slot is now held

	resp, data := postCircuit(t, ts.URL+"/v1/map", aag)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated fleet answered %d (%s), want 503", resp.StatusCode, data)
	}
	if !bytes.Contains(data, []byte("saturated")) {
		t.Errorf("shed error %q does not mention saturation", data)
	}
	c.metrics.mu.Lock()
	shed := c.metrics.shedTotal
	c.metrics.mu.Unlock()
	if shed < 1 {
		t.Errorf("slap_fleet_shed_total = %d, want >= 1", shed)
	}
	block <- struct{}{} // release the parked request
	<-done
}

// TestRegistrationLifecycle drives the control plane: a worker joins via
// POST /v1/workers/register, receives traffic, then leaves via DELETE.
func TestRegistrationLifecycle(t *testing.T) {
	var served atomic.Int64
	stub := stubWorker(t, "joiner", func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"worker":"joiner"}`)
	})
	_, ts := newCoordinator(t, Config{})
	aag := rc16AAG(t)

	// Empty fleet: degraded health, requests shed.
	resp, data := postCircuit(t, ts.URL+"/v1/map", aag)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet answered %d (%s), want 503", resp.StatusCode, data)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hdata, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !bytes.Contains(hdata, []byte(`"degraded"`)) || !bytes.Contains(hdata, []byte("no workers registered")) {
		t.Errorf("empty-fleet healthz = %s, want degraded with no-workers reason", hdata)
	}

	// Join.
	body, _ := json.Marshal(RegisterRequest{Name: "joiner", URL: stub.URL})
	resp, err = http.Post(ts.URL+"/v1/workers/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register answered %d", resp.StatusCode)
	}
	resp, data = postCircuit(t, ts.URL+"/v1/map", aag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-join map answered %d (%s)", resp.StatusCode, data)
	}
	if served.Load() == 0 {
		t.Error("registered worker never saw the proxied request")
	}

	// Re-registering the same name is a heartbeat, not a new member.
	resp, err = http.Post(ts.URL+"/v1/workers/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reg struct {
		Joined  bool `json:"joined"`
		Workers int  `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if reg.Joined || reg.Workers != 1 {
		t.Errorf("re-register: joined=%v workers=%d, want heartbeat (false, 1)", reg.Joined, reg.Workers)
	}

	// Leave.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/joiner", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister answered %d", resp.StatusCode)
	}
	resp, data = postCircuit(t, ts.URL+"/v1/map", aag)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-leave map answered %d (%s), want 503", resp.StatusCode, data)
	}
}

// TestProbeMarksDeadAndMetrics kills a worker and waits for the probe
// state machine to declare it dead, then checks /healthz and /metrics
// surface the transition.
func TestProbeMarksDeadAndMetrics(t *testing.T) {
	stub := stubWorker(t, "mortal", func(w http.ResponseWriter, r *http.Request) {})
	_, ts := newCoordinator(t, Config{
		Workers:       []StaticWorker{{Name: "mortal", URL: stub.URL}},
		ProbeInterval: 10 * time.Millisecond,
		DeadAfter:     2,
	})
	stub.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if bytes.Contains(data, []byte(`"state": "dead"`)) || bytes.Contains(data, []byte(`"state":"dead"`)) {
			if !bytes.Contains(data, []byte(`"degraded"`)) {
				t.Errorf("healthz with a dead worker = %s, want degraded status", data)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never declared dead; healthz = %s", data)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`slap_fleet_workers{state="dead"} 1`,
		`slap_fleet_workers{state="up"} 0`,
		"slap_fleet_retries_total",
		"slap_fleet_shed_total",
		"slap_fleet_worker_deaths_total 1",
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Errorf("metrics missing %q:\n%s", want, data)
		}
	}
}

// TestRouteKeyRejectsGarbage checks malformed circuits fail fast at the
// coordinator, before touching any worker.
func TestRouteKeyRejectsGarbage(t *testing.T) {
	stub := stubWorker(t, "never", func(w http.ResponseWriter, r *http.Request) {
		t.Error("malformed request reached a worker")
	})
	_, ts := newCoordinator(t, Config{Workers: []StaticWorker{{Name: "never", URL: stub.URL}}})
	resp, _ := postCircuit(t, ts.URL+"/v1/map", "this is not a circuit")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage circuit answered %d, want 400", resp.StatusCode)
	}
	resp, _ = postCircuit(t, ts.URL+"/v1/map", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body answered %d, want 400", resp.StatusCode)
	}
}
