package lutmap

import (
	"math/rand"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
)

func mapLUT(t testing.TB, g *aig.AIG, p cuts.Policy) *Result {
	t.Helper()
	res, err := Map(g, Options{Policy: p})
	if err != nil {
		t.Fatalf("lutmap(%s): %v", g.Name, err)
	}
	return res
}

func TestLUTMapEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*aig.AIG{
		circuits.TrainRC16(),
		circuits.TrainCLA16(),
		circuits.ArrayMultiplier(6),
		circuits.BarrelShifter(16),
		circuits.ALUCompare(12),
	} {
		for _, p := range []cuts.Policy{cuts.DefaultPolicy{}, cuts.UnlimitedPolicy{}, nil} {
			res := mapLUT(t, g, p)
			if res.NumLUTs() == 0 {
				t.Fatalf("%s: empty LUT network", g.Name)
			}
			if res.Depth <= 0 {
				t.Fatalf("%s: depth %d", g.Name, res.Depth)
			}
			if err := res.EquivalentTo(g, 4, rng); err != nil {
				t.Fatalf("%s under %s: %v", g.Name, res.PolicyName, err)
			}
		}
	}
}

func TestLUTDepthBeatsAIGDepth(t *testing.T) {
	// 5-LUT covering must compress depth well below the AND-level depth.
	g := circuits.TrainRC16()
	res := mapLUT(t, g, cuts.DefaultPolicy{})
	if res.Depth >= g.MaxLevel() {
		t.Fatalf("LUT depth %d not below AIG depth %d", res.Depth, g.MaxLevel())
	}
	// K=5 LUTs cover at least two AND levels on average.
	if int32(2)*res.Depth > g.MaxLevel()+2 {
		t.Logf("note: modest depth compression %d vs %d", res.Depth, g.MaxLevel())
	}
}

func TestLUTAreaRecoveryReducesLUTs(t *testing.T) {
	g := circuits.CarryLookaheadAdder(16)
	with, err := Map(g, Options{Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Map(g, Options{Policy: cuts.DefaultPolicy{}, NoAreaRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.NumLUTs() > without.NumLUTs() {
		t.Fatalf("area recovery increased LUTs: %d -> %d", without.NumLUTs(), with.NumLUTs())
	}
	if with.Depth > without.Depth {
		t.Fatalf("area recovery increased depth: %d -> %d", without.Depth, with.Depth)
	}
	rng := rand.New(rand.NewSource(3))
	if err := with.EquivalentTo(g, 4, rng); err != nil {
		t.Fatal(err)
	}
}

func TestLUTFeasibilityRespectsK(t *testing.T) {
	g := circuits.BoothMultiplier(6)
	res := mapLUT(t, g, cuts.DefaultPolicy{})
	for _, lut := range res.LUTs {
		if len(lut.Leaves) == 0 || len(lut.Leaves) > cuts.K {
			t.Fatalf("LUT at node %d has %d inputs", lut.Root, len(lut.Leaves))
		}
	}
}

func TestLUTPrecomputedCutSets(t *testing.T) {
	// The SLAP read_cuts flow plugs into LUT mapping unchanged: filtered
	// cut sets in, LUT network out.
	g := circuits.TrainRC16()
	e := &cuts.Enumerator{G: g, Policy: cuts.DefaultPolicy{}}
	sets := e.Run()
	res, err := Map(g, Options{CutSets: sets})
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "precomputed" {
		t.Fatalf("policy name %q", res.PolicyName)
	}
	if err := res.EquivalentTo(g, 4, rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
}

func TestLUTTrivialOnlyFallback(t *testing.T) {
	g := circuits.TrainRC16()
	res, err := Map(g, Options{Policy: dropAll{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.EquivalentTo(g, 4, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
}

type dropAll struct{}

func (dropAll) Process(g *aig.AIG, n uint32, cs []cuts.Cut) []cuts.Cut { return nil }
func (dropAll) Name() string                                           { return "drop-all" }

func BenchmarkLUTMap(b *testing.B) {
	g := circuits.CarryLookaheadAdder(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, Options{Policy: cuts.DefaultPolicy{}}); err != nil {
			b.Fatal(err)
		}
	}
}
