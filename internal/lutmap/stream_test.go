package lutmap

import (
	"fmt"
	"math/rand"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
)

func requireSameLUTMapping(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if want.Depth != got.Depth {
		t.Fatalf("%s: depth %d, want %d", name, got.Depth, want.Depth)
	}
	if want.CutsConsidered != got.CutsConsidered {
		t.Fatalf("%s: cuts considered %d, want %d", name, got.CutsConsidered, want.CutsConsidered)
	}
	if len(want.LUTs) != len(got.LUTs) {
		t.Fatalf("%s: %d LUTs, want %d", name, len(got.LUTs), len(want.LUTs))
	}
	for i := range want.LUTs {
		w, g := &want.LUTs[i], &got.LUTs[i]
		if w.Root != g.Root || len(w.Leaves) != len(g.Leaves) {
			t.Fatalf("%s: LUT[%d] root %d/%v, want %d/%v", name, i, g.Root, g.Leaves, w.Root, w.Leaves)
		}
		for j := range w.Leaves {
			if w.Leaves[j] != g.Leaves[j] {
				t.Fatalf("%s: LUT[%d] leaves %v, want %v", name, i, g.Leaves, w.Leaves)
			}
		}
		if w.TT != g.TT {
			t.Fatalf("%s: LUT[%d] truth table differs", name, i)
		}
	}
}

// TestLUTStreamingMatchesTwoPhase mirrors the ASIC mapper's determinism
// matrix for the LUT flow.
func TestLUTStreamingMatchesTwoPhase(t *testing.T) {
	graphs := []*aig.AIG{
		circuits.TrainRC16(),
		circuits.CarryLookaheadAdder(16),
		circuits.BoothMultiplier(8),
		circuits.RandomAIG(3, 24, 700),
	}
	type policyCase struct {
		name string
		mk   func() cuts.Policy
	}
	policies := []policyCase{
		{"nil", func() cuts.Policy { return nil }},
		{"default8", func() cuts.Policy { return cuts.DefaultPolicy{Limit: 8} }},
		{"shuffle", func() cuts.Policy { return &cuts.ShufflePolicy{Rng: rand.New(rand.NewSource(7)), Limit: 16} }},
	}
	pool := cuts.NewPool(4)
	for _, g := range graphs {
		for _, pc := range policies {
			want, err := Map(g, Options{Policy: pc.mk(), Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s: Map: %v", g.Name, pc.name, err)
			}
			for _, workers := range []int{1, 4} {
				for _, pooled := range []bool{false, true} {
					opt := Options{Policy: pc.mk(), Workers: workers}
					if pooled {
						opt.Pool = pool
					}
					got, err := MapStream(g, opt)
					if err != nil {
						t.Fatalf("%s/%s: MapStream: %v", g.Name, pc.name, err)
					}
					name := fmt.Sprintf("%s/%s/workers=%d/pool=%v", g.Name, pc.name, workers, pooled)
					requireSameLUTMapping(t, name, want, got)
				}
			}
		}
	}
}

// TestLUTStreamingEquivalence checks the streamed LUT network still
// implements the subject AIG.
func TestLUTStreamingEquivalence(t *testing.T) {
	g := circuits.BoothMultiplier(6)
	r, err := MapStream(g, Options{Policy: cuts.DefaultPolicy{}, Workers: 2})
	if err != nil {
		t.Fatalf("MapStream: %v", err)
	}
	if err := r.EquivalentTo(g, 16, rand.New(rand.NewSource(11))); err != nil {
		t.Fatal(err)
	}
	if r.PeakCuts <= 0 || r.PeakCuts > r.CutsConsidered {
		t.Fatalf("peak cuts %d outside (0, %d]", r.PeakCuts, r.CutsConsidered)
	}
}
