// Streaming (fused) LUT mapping: the depth-optimal selection pass runs
// inside the cut-enumeration wavefront, with each level's cut storage
// retired as soon as its consumers are merged. Results are byte-identical
// to the two-phase Map (see mapper/stream.go for the ASIC analogue).
package lutmap

import (
	"slap/internal/aig"
	"slap/internal/cuts"
)

// leafChunk is the allocation granularity of the Stream's durable leaf
// storage.
const leafChunk = 4096

// Stream is an incremental LUT mapping in progress: feed each AND node's
// finalised cut list via ConsumeNode in topological order, then Finish.
type Stream struct {
	lm         *lutMapping
	noAreaRec  bool
	policyName string
	e          *cuts.Enumerator // for MakeCut fallbacks

	leafArena []uint32
	cutsSeen  int
	peakCuts  int
}

// NewStream prepares a streaming LUT mapping of g.
func NewStream(g *aig.AIG, opt Options) *Stream {
	policyName := "exhaustive"
	if opt.Policy != nil {
		policyName = opt.Policy.Name()
	}
	lm := newLutMapping(g)
	lm.sets = make([][]cuts.Cut, g.NumNodes())
	lm.configureRounds(&opt)
	lm.extras = nil // streaming extras arrive through ConsumeExtras
	return &Stream{
		lm:         lm,
		noAreaRec:  opt.NoAreaRecovery,
		policyName: policyName,
		e:          &cuts.Enumerator{G: g},
	}
}

func (st *Stream) internLeaves(ls []uint32) []uint32 {
	if len(st.leafArena)+len(ls) > cap(st.leafArena) {
		sz := leafChunk
		if len(ls) > sz {
			sz = len(ls)
		}
		st.leafArena = make([]uint32, 0, sz)
	}
	i := len(st.leafArena)
	st.leafArena = append(st.leafArena, ls...)
	return st.leafArena[i : i+len(ls) : i+len(ls)]
}

// ConsumeNode ingests the finalised (borrowed) cut list of AND node n.
// Every non-self cut is LUT-implementable and is copied into stream-owned
// storage; self-referential trivial cuts contribute nothing to any pass
// and are dropped (they are still counted, matching Map's accounting,
// which keeps them in the lists). The depth-optimal selection runs on the
// spot — every leaf sits at a strictly lower, already-final level.
func (st *Stream) ConsumeNode(n uint32, cs []cuts.Cut) {
	lm := st.lm
	st.cutsSeen += len(cs)

	kept := 0
	for i := range cs {
		if !containsLeaf(&cs[i], n) {
			kept++
		}
	}
	var list []cuts.Cut
	if kept > 0 {
		list = make([]cuts.Cut, 0, kept)
		for i := range cs {
			c := &cs[i]
			if containsLeaf(c, n) {
				continue
			}
			cc := *c
			cc.Leaves = st.internLeaves(c.Leaves)
			list = append(list, cc)
		}
	} else {
		// ensureFaninCuts' fallback: the elementary fanin cut.
		g := lm.g
		f0, f1 := g.Fanins(n)
		a, b := f0.Node(), f1.Node()
		if a > b {
			a, b = b, a
		}
		list = []cuts.Cut{st.e.MakeCut(n, []uint32{a, b})}
		st.cutsSeen++
	}
	lm.sets[n] = list
	lm.selectNode(n, nil)
}

// ConsumeExtras ingests recovery-only cuts for node n (see
// Options.ExtraCuts): non-self cuts are copied into stream-owned storage
// and join the node's list after the depth round completes. No-op unless
// Rounds > 1.
func (st *Stream) ConsumeExtras(n uint32, cs []cuts.Cut) {
	lm := st.lm
	if lm.rounds <= 1 {
		return
	}
	var list []cuts.Cut
	for i := range cs {
		c := &cs[i]
		if containsLeaf(c, n) {
			continue
		}
		cc := *c
		cc.Leaves = st.internLeaves(c.Leaves)
		list = append(list, cc)
	}
	if list == nil {
		return
	}
	if lm.extras == nil {
		lm.extras = make([][]cuts.Cut, lm.g.NumNodes())
	}
	lm.extras[n] = list
}

// SetPeakCuts records the enumerator's peak live-cut count for the Result.
func (st *Stream) SetPeakCuts(peak int) { st.peakCuts = peak }

// Finish runs area recovery and builds the LUT network.
func (st *Stream) Finish() (*Result, error) {
	return st.lm.finish(st.policyName, st.cutsSeen, st.peakCuts, st.noAreaRec)
}

// MapStream runs the fused streaming LUT-mapping flow on g, byte-identical
// to Map for every policy (stateful policies degrade to the sequential
// index-order enumeration driver). When opt.Pool is set, cut storage is
// recycled across runs of the same graph shape.
func MapStream(g *aig.AIG, opt Options) (*Result, error) {
	if opt.CutSets != nil {
		// Precomputed cut lists are already materialised; stream nothing.
		return Map(g, opt)
	}
	st := NewStream(g, opt)
	var arena *cuts.Arena
	if opt.Pool != nil {
		arena = opt.Pool.Get(g)
		defer opt.Pool.Put(arena)
	}
	e := &cuts.Enumerator{G: g, Policy: opt.Policy, MergeCap: opt.MergeCap, Workers: opt.Workers, Arena: arena, Choices: opt.Choices}
	res, err := e.RunStream(func(_ int32, nodes []uint32, sets [][]cuts.Cut) error {
		for _, n := range nodes {
			st.ConsumeNode(n, sets[n])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.SetPeakCuts(res.PeakCuts)
	return st.Finish()
}
