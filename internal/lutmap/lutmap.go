// Package lutmap implements K-LUT FPGA technology mapping over the same
// priority-cuts framework as the ASIC mapper: depth-optimal LUT covering
// with an area-flow recovery pass (the classic FlowMap/if-mapper scheme of
// the paper's refs [14], [15]).
//
// The paper argues its findings "can be extended to benefit FPGA-mapping
// ... as the nature of the problem is the same"; this package demonstrates
// exactly that: any cuts.Policy — including the SLAP ML filter via
// precomputed cut sets — plugs into LUT mapping unchanged.
package lutmap

import (
	"fmt"
	"math"
	"math/rand"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/tt"
)

// Options configures a LUT mapping run.
type Options struct {
	// Policy is the cut sorting/filtering policy; nil enumerates
	// exhaustively (subject to MergeCap).
	Policy cuts.Policy
	// MergeCap bounds per-node cut lists during enumeration (0 = default).
	MergeCap int
	// CutSets supplies precomputed (e.g. ML-filtered) cut lists, bypassing
	// enumeration.
	CutSets *cuts.Result
	// NoAreaRecovery disables the area-flow pass.
	NoAreaRecovery bool
	// Workers bounds cut-enumeration parallelism: 0 = one worker per CPU
	// core, 1 = sequential (see cuts.Enumerator.Workers).
	Workers int
	// Pool, when set, lets the streaming path (MapStream) check cut-arena
	// storage in and out across runs of the same graph shape. Ignored by
	// the two-phase Map.
	Pool *cuts.Pool
}

// LUT is one lookup table of the mapped network.
type LUT struct {
	// Root is the subject node the LUT implements.
	Root uint32
	// Leaves are the LUT input nodes.
	Leaves []uint32
	// TT is the implemented function over the leaves.
	TT tt.TT
}

// Result is a mapped LUT network.
type Result struct {
	// LUTs lists the network in topological order.
	LUTs []LUT
	// Depth is the maximum LUT depth from any PI.
	Depth int32
	// CutsConsidered counts cuts exposed to the mapper.
	CutsConsidered int
	// PeakCuts is the maximum number of simultaneously live cuts during
	// enumeration (equal to CutsConsidered on the two-phase path; the
	// streaming path reports the widest live level window).
	PeakCuts int
	// PolicyName records the policy.
	PolicyName string

	g *aig.AIG
}

// NumLUTs returns the LUT count (the FPGA area metric).
func (r *Result) NumLUTs() int { return len(r.LUTs) }

// lutChoice records the selected cut of one node.
type lutChoice struct {
	cutIdx int
	valid  bool
}

// lutMapping holds the per-node selection state shared by the two-phase
// and streaming flows.
type lutMapping struct {
	g         *aig.AIG
	sets      [][]cuts.Cut
	depth     []int32
	flow      []float64
	best      []lutChoice
	fanoutEst []float64
}

// newLutMapping builds the selection state; lm.sets is left for the caller.
func newLutMapping(g *aig.AIG) *lutMapping {
	n := g.NumNodes()
	lm := &lutMapping{
		g:         g,
		depth:     make([]int32, n),
		flow:      make([]float64, n),
		best:      make([]lutChoice, n),
		fanoutEst: make([]float64, n),
	}
	for i := uint32(0); i < uint32(n); i++ {
		fo := float64(g.Fanout(i))
		if fo < 1 {
			fo = 1
		}
		lm.fanoutEst[i] = fo
	}
	return lm
}

// evalCut returns (depth, areaFlow) of covering a node with cut c.
func (lm *lutMapping) evalCut(c *cuts.Cut) (int32, float64) {
	var d int32
	var f float64
	for _, l := range c.Leaves {
		if lm.g.IsAnd(l) {
			if lm.depth[l] > d {
				d = lm.depth[l]
			}
			f += lm.flow[l]
		}
	}
	return d + 1, f + 1
}

// selectNode picks the node's cut: depth-optimal when required is nil,
// area-flow-optimal subject to the required depth otherwise.
func (lm *lutMapping) selectNode(node uint32, required []int32) {
	sets := lm.sets
	bd, bf := int32(math.MaxInt32), math.Inf(1)
	bi := -1
	for ci := range sets[node] {
		c := &sets[node][ci]
		if containsLeaf(c, node) {
			continue
		}
		d, f := lm.evalCut(c)
		fl := f / lm.fanoutEst[node]
		ok := required == nil && (d < bd || (d == bd && fl < bf)) ||
			required != nil && d <= required[node] && (fl < bf || (fl == bf && d < bd))
		if bi == -1 && (required == nil || d <= required[node]) {
			ok = true
		}
		if ok {
			bd, bf, bi = d, fl, ci
		}
	}
	if bi == -1 {
		// No cut meets the requirement: fall back to depth-best.
		for ci := range sets[node] {
			c := &sets[node][ci]
			if containsLeaf(c, node) {
				continue
			}
			d, f := lm.evalCut(c)
			fl := f / lm.fanoutEst[node]
			if d < bd || (d == bd && fl < bf) {
				bd, bf, bi = d, fl, ci
			}
		}
	}
	if bi == -1 {
		lm.best[node] = lutChoice{}
		lm.depth[node] = math.MaxInt32 / 2
		lm.flow[node] = math.Inf(1)
		return
	}
	lm.best[node] = lutChoice{cutIdx: bi, valid: true}
	lm.depth[node] = bd
	lm.flow[node] = bf
}

// selectPass runs selectNode over all AND nodes in topological order.
func (lm *lutMapping) selectPass(required []int32) {
	for node := uint32(1); node < uint32(lm.g.NumNodes()); node++ {
		if lm.g.IsAnd(node) {
			lm.selectNode(node, required)
		}
	}
}

// finish runs the area-recovery pass (unless disabled), extracts the cover
// and builds the LUT network. The depth-optimal pass must already have run
// (Map's selectPass(nil), or incrementally in the streaming flow).
func (lm *lutMapping) finish(policyName string, cutsConsidered, peakCuts int, noAreaRecovery bool) (*Result, error) {
	g := lm.g
	n := g.NumNodes()
	sets := lm.sets
	if !noAreaRecovery {
		// Required depths from the POs.
		maxDepth := int32(0)
		for _, po := range g.POs() {
			d := nodeDepth(g, lm.depth, po.Lit.Node())
			if d > maxDepth {
				maxDepth = d
			}
		}
		required := make([]int32, n)
		for i := range required {
			required[i] = math.MaxInt32
		}
		for _, po := range g.POs() {
			if g.IsAnd(po.Lit.Node()) {
				required[po.Lit.Node()] = maxDepth
			}
		}
		// Reverse topological propagation over the current cover.
		for node := uint32(n) - 1; node >= 1; node-- {
			if !g.IsAnd(node) || !lm.best[node].valid || required[node] == math.MaxInt32 {
				continue
			}
			c := &sets[node][lm.best[node].cutIdx]
			for _, l := range c.Leaves {
				if g.IsAnd(l) && required[node]-1 < required[l] {
					required[l] = required[node] - 1
				}
			}
		}
		lm.selectPass(required)
	}

	// Cover extraction.
	needed := make([]bool, n)
	var stack []uint32
	push := func(m uint32) {
		if g.IsAnd(m) && !needed[m] {
			needed[m] = true
			stack = append(stack, m)
		}
	}
	for _, po := range g.POs() {
		push(po.Lit.Node())
	}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !lm.best[m].valid {
			return nil, fmt.Errorf("lutmap: node %d has no feasible cut", m)
		}
		c := &sets[m][lm.best[m].cutIdx]
		for _, l := range c.Leaves {
			push(l)
		}
	}

	out := &Result{
		CutsConsidered: cutsConsidered,
		PeakCuts:       peakCuts,
		PolicyName:     policyName,
		g:              g,
	}
	finalDepth := make([]int32, n)
	for node := uint32(1); node < uint32(n); node++ {
		if !needed[node] {
			continue
		}
		c := &sets[node][lm.best[node].cutIdx]
		var d int32
		for _, l := range c.Leaves {
			if g.IsAnd(l) && finalDepth[l] > d {
				d = finalDepth[l]
			}
		}
		finalDepth[node] = d + 1
		if finalDepth[node] > out.Depth {
			out.Depth = finalDepth[node]
		}
		out.LUTs = append(out.LUTs, LUT{
			Root:   node,
			Leaves: append([]uint32(nil), c.Leaves...),
			TT:     c.TT,
		})
	}
	return out, nil
}

// Map covers g with K-feasible LUTs minimising depth, then recovers area
// under depth constraints.
func Map(g *aig.AIG, opt Options) (*Result, error) {
	policyName := "exhaustive"
	var res *cuts.Result
	if opt.CutSets != nil {
		res = opt.CutSets
		policyName = "precomputed"
	} else {
		e := &cuts.Enumerator{G: g, Policy: opt.Policy, MergeCap: opt.MergeCap, Workers: opt.Workers}
		res = e.Run()
		if opt.Policy != nil {
			policyName = opt.Policy.Name()
		}
	}
	sets := res.Sets
	ensureFaninCuts(g, sets)

	lm := newLutMapping(g)
	lm.sets = sets

	// Pass 1: depth-optimal choice per node.
	lm.selectPass(nil)

	total := totalCuts(g, sets)
	peak := res.PeakCuts
	if peak == 0 {
		peak = res.TotalCuts
	}
	return lm.finish(policyName, total, peak, opt.NoAreaRecovery)
}

func nodeDepth(g *aig.AIG, depth []int32, n uint32) int32 {
	if g.IsAnd(n) {
		return depth[n]
	}
	return 0
}

func containsLeaf(c *cuts.Cut, n uint32) bool {
	for _, l := range c.Leaves {
		if l == n {
			return true
		}
	}
	return false
}

func totalCuts(g *aig.AIG, sets [][]cuts.Cut) int {
	total := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			total += len(sets[n])
		}
	}
	return total
}

// ensureFaninCuts guarantees every AND node keeps a usable non-trivial cut
// (the elementary fanin cut), mirroring the ASIC mapper's fallback.
func ensureFaninCuts(g *aig.AIG, sets [][]cuts.Cut) {
	e := &cuts.Enumerator{G: g}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		has := false
		for i := range sets[n] {
			if !containsLeaf(&sets[n][i], n) {
				has = true
				break
			}
		}
		if !has {
			f0, f1 := g.Fanins(n)
			a, b := f0.Node(), f1.Node()
			if a > b {
				a, b = b, a
			}
			sets[n] = append(sets[n], e.MakeCut(n, []uint32{a, b}))
		}
	}
}

// Simulate evaluates the LUT network on 64 packed input patterns and
// returns one word per PO — used for equivalence checking against the
// subject AIG.
func (r *Result) Simulate(piValues []uint64) []uint64 {
	g := r.g
	if len(piValues) != g.NumPIs() {
		panic(fmt.Sprintf("lutmap: Simulate needs %d PI words, got %d", g.NumPIs(), len(piValues)))
	}
	vals := make([]uint64, g.NumNodes())
	for i, pi := range g.PIs() {
		vals[pi] = piValues[i]
	}
	for _, lut := range r.LUTs {
		var out uint64
		numM := 1 << uint(len(lut.Leaves))
		for m := 0; m < numM; m++ {
			if !lut.TT.Eval(m) {
				continue
			}
			term := ^uint64(0)
			for i, l := range lut.Leaves {
				v := vals[l]
				if m>>uint(i)&1 == 0 {
					v = ^v
				}
				term &= v
			}
			out |= term
		}
		vals[lut.Root] = out
	}
	outs := make([]uint64, g.NumPOs())
	for i, po := range g.POs() {
		v := vals[po.Lit.Node()]
		if po.Lit.IsCompl() {
			v = ^v
		}
		outs[i] = v
	}
	return outs
}

// EquivalentTo checks the LUT network against the subject AIG on random
// patterns.
func (r *Result) EquivalentTo(g *aig.AIG, rounds int, rng *rand.Rand) error {
	ins := make([]uint64, g.NumPIs())
	for round := 0; round < rounds; round++ {
		for i := range ins {
			ins[i] = rng.Uint64()
		}
		want := g.Simulate(ins)
		got := r.Simulate(ins)
		for i := range want {
			if want[i] != got[i] {
				return fmt.Errorf("lutmap: PO %d differs from AIG", i)
			}
		}
	}
	return nil
}
