// Package lutmap implements K-LUT FPGA technology mapping over the same
// priority-cuts framework as the ASIC mapper: depth-optimal LUT covering
// with an area-flow recovery pass (the classic FlowMap/if-mapper scheme of
// the paper's refs [14], [15]).
//
// The paper argues its findings "can be extended to benefit FPGA-mapping
// ... as the nature of the problem is the same"; this package demonstrates
// exactly that: any cuts.Policy — including the SLAP ML filter via
// precomputed cut sets — plugs into LUT mapping unchanged.
package lutmap

import (
	"fmt"
	"math"
	"math/rand"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/tt"
)

// Options configures a LUT mapping run.
type Options struct {
	// Policy is the cut sorting/filtering policy; nil enumerates
	// exhaustively (subject to MergeCap).
	Policy cuts.Policy
	// MergeCap bounds per-node cut lists during enumeration (0 = default).
	MergeCap int
	// CutSets supplies precomputed (e.g. ML-filtered) cut lists, bypassing
	// enumeration.
	CutSets *cuts.Result
	// NoAreaRecovery disables the area-flow pass.
	NoAreaRecovery bool
	// Workers bounds cut-enumeration parallelism: 0 = one worker per CPU
	// core, 1 = sequential (see cuts.Enumerator.Workers).
	Workers int
	// Pool, when set, lets the streaming path (MapStream) check cut-arena
	// storage in and out across runs of the same graph shape. Ignored by
	// the two-phase Map.
	Pool *cuts.Pool
	// Rounds is the total number of selection rounds. Values <= 1 keep the
	// classic schedule (depth pass + one area-flow pass unless
	// NoAreaRecovery). Values > 1 run the multi-round engine: round 1 is
	// depth-optimal, rounds 2..Rounds re-select by area flow under required
	// depths frozen from the round-1 depth (scaled by DelayFactor), and the
	// final round adds an exact-area (ref/deref) refinement.
	// NoAreaRecovery forces single-round behaviour.
	Rounds int
	// DelayFactor scales the round-1 depth into the recovery rounds'
	// required-depth target; values <= 1 (including zero) pin the round-1
	// optimum.
	DelayFactor float64
	// Choices exposes functional equivalence classes to cut enumeration
	// (see cuts.ChoiceSource and internal/choice). Ignored when CutSets is
	// set.
	Choices cuts.ChoiceSource
	// ExtraCuts supplies per-node recovery-only cuts joining each node's
	// list after round 1, so the depth round stays byte-identical to a
	// single-pass run. Only consulted when Rounds > 1.
	ExtraCuts [][]cuts.Cut
}

// LUT is one lookup table of the mapped network.
type LUT struct {
	// Root is the subject node the LUT implements.
	Root uint32
	// Leaves are the LUT input nodes.
	Leaves []uint32
	// TT is the implemented function over the leaves.
	TT tt.TT
}

// Result is a mapped LUT network.
type Result struct {
	// LUTs lists the network in topological order.
	LUTs []LUT
	// Depth is the maximum LUT depth from any PI.
	Depth int32
	// CutsConsidered counts cuts exposed to the mapper.
	CutsConsidered int
	// PeakCuts is the maximum number of simultaneously live cuts during
	// enumeration (equal to CutsConsidered on the two-phase path; the
	// streaming path reports the widest live level window).
	PeakCuts int
	// PolicyName records the policy.
	PolicyName string
	// RoundStats records per-round QoR when the multi-round engine ran
	// (Options.Rounds > 1); nil for the classic schedule. Entry 0 is the
	// depth round with the single-pass counters; CutsConsidered and
	// PeakCuts above aggregate across rounds (sum and max respectively).
	RoundStats []RoundStat

	g *aig.AIG
}

// RoundStat is the per-round QoR record of one multi-round LUT pass.
type RoundStat struct {
	// Round is 1-based; round 1 is always the depth-optimal pass.
	Round int
	// Mode is "depth", "area-flow" or "area-flow+exact".
	Mode string
	// LUTs is the cover size after the round.
	LUTs int
	// Depth is the cover depth after the round.
	Depth int32
	// CutsConsidered counts cuts examined this round (enumeration total for
	// round 1, selection candidates for recovery rounds; identical across
	// the streaming and two-phase paths).
	CutsConsidered int
	// PeakCuts is the enumeration peak for round 1, the live candidate
	// count for recovery rounds.
	PeakCuts int
}

// NumLUTs returns the LUT count (the FPGA area metric).
func (r *Result) NumLUTs() int { return len(r.LUTs) }

// lutChoice records the selected cut of one node.
type lutChoice struct {
	cutIdx int
	valid  bool
}

// lutMapping holds the per-node selection state shared by the two-phase
// and streaming flows.
type lutMapping struct {
	g         *aig.AIG
	sets      [][]cuts.Cut
	depth     []int32
	flow      []float64
	best      []lutChoice
	fanoutEst []float64

	// Multi-round state (rounds <= 1 leaves all of it inert).
	rounds      int
	delayFactor float64
	extras      [][]cuts.Cut
	refs        []int32
	passCuts    int
}

// configureRounds installs the multi-round knobs from Options.
func (lm *lutMapping) configureRounds(opt *Options) {
	lm.rounds = opt.Rounds
	if opt.NoAreaRecovery {
		lm.rounds = 1
	}
	lm.delayFactor = opt.DelayFactor
	if lm.delayFactor < 1 {
		lm.delayFactor = 1
	}
	if lm.rounds > 1 {
		lm.extras = opt.ExtraCuts
	}
}

// newLutMapping builds the selection state; lm.sets is left for the caller.
func newLutMapping(g *aig.AIG) *lutMapping {
	n := g.NumNodes()
	lm := &lutMapping{
		g:         g,
		depth:     make([]int32, n),
		flow:      make([]float64, n),
		best:      make([]lutChoice, n),
		fanoutEst: make([]float64, n),
		refs:      make([]int32, n),
	}
	for i := uint32(0); i < uint32(n); i++ {
		fo := float64(g.Fanout(i))
		if fo < 1 {
			fo = 1
		}
		lm.fanoutEst[i] = fo
	}
	return lm
}

// evalCut returns (depth, areaFlow) of covering a node with cut c.
func (lm *lutMapping) evalCut(c *cuts.Cut) (int32, float64) {
	var d int32
	var f float64
	for _, l := range c.Leaves {
		if lm.g.IsAnd(l) {
			if lm.depth[l] > d {
				d = lm.depth[l]
			}
			f += lm.flow[l]
		}
	}
	return d + 1, f + 1
}

// selectNode picks the node's cut: depth-optimal when required is nil,
// area-flow-optimal subject to the required depth otherwise.
func (lm *lutMapping) selectNode(node uint32, required []int32) {
	sets := lm.sets
	bd, bf := int32(math.MaxInt32), math.Inf(1)
	bi := -1
	for ci := range sets[node] {
		c := &sets[node][ci]
		if containsLeaf(c, node) {
			continue
		}
		lm.passCuts++
		d, f := lm.evalCut(c)
		fl := f / lm.fanoutEst[node]
		ok := required == nil && (d < bd || (d == bd && fl < bf)) ||
			required != nil && d <= required[node] && (fl < bf || (fl == bf && d < bd))
		if bi == -1 && (required == nil || d <= required[node]) {
			ok = true
		}
		if ok {
			bd, bf, bi = d, fl, ci
		}
	}
	if bi == -1 {
		// No cut meets the requirement: fall back to depth-best.
		for ci := range sets[node] {
			c := &sets[node][ci]
			if containsLeaf(c, node) {
				continue
			}
			d, f := lm.evalCut(c)
			fl := f / lm.fanoutEst[node]
			if d < bd || (d == bd && fl < bf) {
				bd, bf, bi = d, fl, ci
			}
		}
	}
	if bi == -1 {
		lm.best[node] = lutChoice{}
		lm.depth[node] = math.MaxInt32 / 2
		lm.flow[node] = math.Inf(1)
		return
	}
	lm.best[node] = lutChoice{cutIdx: bi, valid: true}
	lm.depth[node] = bd
	lm.flow[node] = bf
}

// selectPass runs selectNode over all AND nodes in topological order.
func (lm *lutMapping) selectPass(required []int32) {
	for node := uint32(1); node < uint32(lm.g.NumNodes()); node++ {
		if lm.g.IsAnd(node) {
			lm.selectNode(node, required)
		}
	}
}

// finish runs the area-recovery pass (unless disabled), extracts the cover
// and builds the LUT network. The depth-optimal pass must already have run
// (Map's selectPass(nil), or incrementally in the streaming flow).
func (lm *lutMapping) finish(policyName string, cutsConsidered, peakCuts int, noAreaRecovery bool) (*Result, error) {
	g := lm.g
	n := g.NumNodes()
	sets := lm.sets
	var roundStats []RoundStat
	switch {
	case lm.rounds > 1:
		roundStats = lm.recoveryRounds(cutsConsidered, peakCuts)
		cutsConsidered = 0
		for _, rs := range roundStats {
			cutsConsidered += rs.CutsConsidered
			if rs.PeakCuts > peakCuts {
				peakCuts = rs.PeakCuts
			}
		}
	case !noAreaRecovery:
		lm.selectPass(lm.computeRequired(0))
	}

	// Cover extraction.
	needed := make([]bool, n)
	var stack []uint32
	push := func(m uint32) {
		if g.IsAnd(m) && !needed[m] {
			needed[m] = true
			stack = append(stack, m)
		}
	}
	for _, po := range g.POs() {
		push(po.Lit.Node())
	}
	for len(stack) > 0 {
		m := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !lm.best[m].valid {
			return nil, fmt.Errorf("lutmap: node %d has no feasible cut", m)
		}
		c := &sets[m][lm.best[m].cutIdx]
		for _, l := range c.Leaves {
			push(l)
		}
	}

	out := &Result{
		CutsConsidered: cutsConsidered,
		PeakCuts:       peakCuts,
		PolicyName:     policyName,
		RoundStats:     roundStats,
		g:              g,
	}
	finalDepth := make([]int32, n)
	for node := uint32(1); node < uint32(n); node++ {
		if !needed[node] {
			continue
		}
		c := &sets[node][lm.best[node].cutIdx]
		var d int32
		for _, l := range c.Leaves {
			if g.IsAnd(l) && finalDepth[l] > d {
				d = finalDepth[l]
			}
		}
		finalDepth[node] = d + 1
		if finalDepth[node] > out.Depth {
			out.Depth = finalDepth[node]
		}
		out.LUTs = append(out.LUTs, LUT{
			Root:   node,
			Leaves: append([]uint32(nil), c.Leaves...),
			TT:     c.TT,
		})
	}
	return out, nil
}

// computeRequired returns per-node required depths propagated backwards
// over the current cover, with the PO requirement set to the larger of the
// current cover depth and target (so the constraint is always feasible).
// target 0 reproduces the classic single-recovery-pass requirement.
func (lm *lutMapping) computeRequired(target int32) []int32 {
	g := lm.g
	n := g.NumNodes()
	maxDepth := int32(0)
	for _, po := range g.POs() {
		if d := nodeDepth(g, lm.depth, po.Lit.Node()); d > maxDepth {
			maxDepth = d
		}
	}
	if target > maxDepth {
		maxDepth = target
	}
	required := make([]int32, n)
	for i := range required {
		required[i] = math.MaxInt32
	}
	for _, po := range g.POs() {
		if g.IsAnd(po.Lit.Node()) {
			required[po.Lit.Node()] = maxDepth
		}
	}
	// Reverse topological propagation over the current cover.
	for node := uint32(n) - 1; node >= 1; node-- {
		if !g.IsAnd(node) || !lm.best[node].valid || required[node] == math.MaxInt32 {
			continue
		}
		c := &lm.sets[node][lm.best[node].cutIdx]
		for _, l := range c.Leaves {
			if g.IsAnd(l) && required[node]-1 < required[l] {
				required[l] = required[node] - 1
			}
		}
	}
	return required
}

// recoveryRounds runs rounds 2..lm.rounds after the depth pass: extra cuts
// join the lists, the required-depth target is frozen from the round-1
// depth scaled by the delay factor, and each round re-selects by area flow
// with load estimates refreshed from the previous cover; the final round
// adds an exact-area (ref/deref) refinement. Every pass is a sequential
// sweep, so multi-round results stay byte-identical across worker counts,
// streaming modes and arena pools.
func (lm *lutMapping) recoveryRounds(round1Cuts, enumPeak int) []RoundStat {
	stats := make([]RoundStat, 0, lm.rounds)
	luts, depth := lm.coverStats()
	stats = append(stats, RoundStat{
		Round: 1, Mode: "depth", LUTs: luts, Depth: depth,
		CutsConsidered: round1Cuts, PeakCuts: enumPeak,
	})
	lm.appendExtras()
	target := int32(float64(depth) * lm.delayFactor)
	if target < depth {
		target = depth
	}
	for r := 2; r <= lm.rounds; r++ {
		lm.updateFanoutEst()
		required := lm.computeRequired(target)
		lm.passCuts = 0
		lm.selectPass(required)
		mode := "area-flow"
		if r == lm.rounds {
			required = lm.computeRequired(target)
			lm.exactAreaPass(required)
			mode = "area-flow+exact"
		}
		luts, depth = lm.coverStats()
		stats = append(stats, RoundStat{
			Round: r, Mode: mode, LUTs: luts, Depth: depth,
			CutsConsidered: lm.passCuts, PeakCuts: lm.passCuts,
		})
	}
	return stats
}

// appendExtras merges the recovery-only cut lists into lm.sets, once.
func (lm *lutMapping) appendExtras() {
	for n, ex := range lm.extras {
		if len(ex) > 0 {
			lm.sets[n] = append(lm.sets[n], ex...)
		}
	}
	lm.extras = nil
}

// coverNodes returns the current cover's AND nodes in topological (id)
// order and refreshes lm.refs with the cover's reference counts (PO
// references included). Nodes with no valid choice are treated as leaves.
func (lm *lutMapping) coverNodes() []uint32 {
	g := lm.g
	for i := range lm.refs {
		lm.refs[i] = 0
	}
	needed := make([]bool, g.NumNodes())
	var stack []uint32
	for _, po := range g.POs() {
		n := po.Lit.Node()
		lm.refs[n]++
		if g.IsAnd(n) && !needed[n] {
			needed[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !lm.best[n].valid {
			continue
		}
		c := &lm.sets[n][lm.best[n].cutIdx]
		for _, l := range c.Leaves {
			lm.refs[l]++
			if g.IsAnd(l) && !needed[l] {
				needed[l] = true
				stack = append(stack, l)
			}
		}
	}
	var order []uint32
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if needed[n] {
			order = append(order, n)
		}
	}
	return order
}

// coverStats returns the current cover's LUT count and depth.
func (lm *lutMapping) coverStats() (int, int32) {
	g := lm.g
	cover := lm.coverNodes()
	finalDepth := make([]int32, g.NumNodes())
	var maxDepth int32
	for _, n := range cover {
		if !lm.best[n].valid {
			continue
		}
		c := &lm.sets[n][lm.best[n].cutIdx]
		var d int32
		for _, l := range c.Leaves {
			if g.IsAnd(l) && finalDepth[l] > d {
				d = finalDepth[l]
			}
		}
		finalDepth[n] = d + 1
		if finalDepth[n] > maxDepth {
			maxDepth = finalDepth[n]
		}
	}
	return len(cover), maxDepth
}

// updateFanoutEst replaces covered nodes' structural load estimates with
// the previous round's cover reference counts (the area-flow iteration);
// uncovered nodes keep their structural estimate.
func (lm *lutMapping) updateFanoutEst() {
	lm.coverNodes()
	for n := uint32(1); n < uint32(lm.g.NumNodes()); n++ {
		if lm.g.IsAnd(n) && lm.refs[n] > 0 {
			lm.fanoutEst[n] = float64(lm.refs[n])
		}
	}
}

// refCut recursively references the cone of choosing cut ci at node,
// returning the number of LUTs newly activated (the exact-area "ref").
func (lm *lutMapping) refCut(node uint32, ci int) int {
	area := 1
	c := &lm.sets[node][ci]
	for _, l := range c.Leaves {
		if !lm.g.IsAnd(l) {
			continue
		}
		lm.refs[l]++
		if lm.refs[l] == 1 && lm.best[l].valid {
			area += lm.refCut(l, lm.best[l].cutIdx)
		}
	}
	return area
}

// derefCut undoes refCut, returning the number of LUTs deactivated.
func (lm *lutMapping) derefCut(node uint32, ci int) int {
	area := 1
	c := &lm.sets[node][ci]
	for _, l := range c.Leaves {
		if !lm.g.IsAnd(l) {
			continue
		}
		lm.refs[l]--
		if lm.refs[l] == 0 && lm.best[l].valid {
			area += lm.derefCut(l, lm.best[l].cutIdx)
		}
	}
	return area
}

// exactAreaPass re-selects covered nodes minimising exact local area (the
// LUTs freed if the node's cone were removed), subject to required depths —
// the LUT analogue of the ASIC mapper's exact-area refinement.
func (lm *lutMapping) exactAreaPass(required []int32) {
	cover := lm.coverNodes()
	for _, node := range cover {
		if lm.refs[node] == 0 || !lm.best[node].valid {
			continue
		}
		cur := lm.best[node].cutIdx
		lm.derefCut(node, cur)
		bestIdx := cur
		bestArea := lm.refCut(node, cur)
		lm.derefCut(node, cur)
		bestDepth, _ := lm.evalCut(&lm.sets[node][cur])
		for ci := range lm.sets[node] {
			c := &lm.sets[node][ci]
			if containsLeaf(c, node) {
				continue
			}
			lm.passCuts++
			d, _ := lm.evalCut(c)
			if d > required[node] {
				continue
			}
			area := lm.refCut(node, ci)
			lm.derefCut(node, ci)
			if area < bestArea || (area == bestArea && d < bestDepth) {
				bestArea, bestDepth, bestIdx = area, d, ci
			}
		}
		lm.refCut(node, bestIdx)
		lm.best[node] = lutChoice{cutIdx: bestIdx, valid: true}
		lm.depth[node] = bestDepth
	}
}

// Map covers g with K-feasible LUTs minimising depth, then recovers area
// under depth constraints.
func Map(g *aig.AIG, opt Options) (*Result, error) {
	policyName := "exhaustive"
	var res *cuts.Result
	if opt.CutSets != nil {
		res = opt.CutSets
		policyName = "precomputed"
	} else {
		e := &cuts.Enumerator{G: g, Policy: opt.Policy, MergeCap: opt.MergeCap, Workers: opt.Workers, Choices: opt.Choices}
		res = e.Run()
		if opt.Policy != nil {
			policyName = opt.Policy.Name()
		}
	}
	sets := res.Sets
	ensureFaninCuts(g, sets)

	lm := newLutMapping(g)
	lm.sets = sets
	lm.configureRounds(&opt)

	// Pass 1: depth-optimal choice per node.
	lm.selectPass(nil)

	total := totalCuts(g, sets)
	peak := res.PeakCuts
	if peak == 0 {
		peak = res.TotalCuts
	}
	return lm.finish(policyName, total, peak, opt.NoAreaRecovery)
}

func nodeDepth(g *aig.AIG, depth []int32, n uint32) int32 {
	if g.IsAnd(n) {
		return depth[n]
	}
	return 0
}

func containsLeaf(c *cuts.Cut, n uint32) bool {
	for _, l := range c.Leaves {
		if l == n {
			return true
		}
	}
	return false
}

func totalCuts(g *aig.AIG, sets [][]cuts.Cut) int {
	total := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			total += len(sets[n])
		}
	}
	return total
}

// ensureFaninCuts guarantees every AND node keeps a usable non-trivial cut
// (the elementary fanin cut), mirroring the ASIC mapper's fallback.
func ensureFaninCuts(g *aig.AIG, sets [][]cuts.Cut) {
	e := &cuts.Enumerator{G: g}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		has := false
		for i := range sets[n] {
			if !containsLeaf(&sets[n][i], n) {
				has = true
				break
			}
		}
		if !has {
			f0, f1 := g.Fanins(n)
			a, b := f0.Node(), f1.Node()
			if a > b {
				a, b = b, a
			}
			sets[n] = append(sets[n], e.MakeCut(n, []uint32{a, b}))
		}
	}
}

// Simulate evaluates the LUT network on 64 packed input patterns and
// returns one word per PO — used for equivalence checking against the
// subject AIG.
func (r *Result) Simulate(piValues []uint64) []uint64 {
	g := r.g
	if len(piValues) != g.NumPIs() {
		panic(fmt.Sprintf("lutmap: Simulate needs %d PI words, got %d", g.NumPIs(), len(piValues)))
	}
	vals := make([]uint64, g.NumNodes())
	for i, pi := range g.PIs() {
		vals[pi] = piValues[i]
	}
	for _, lut := range r.LUTs {
		var out uint64
		numM := 1 << uint(len(lut.Leaves))
		for m := 0; m < numM; m++ {
			if !lut.TT.Eval(m) {
				continue
			}
			term := ^uint64(0)
			for i, l := range lut.Leaves {
				v := vals[l]
				if m>>uint(i)&1 == 0 {
					v = ^v
				}
				term &= v
			}
			out |= term
		}
		vals[lut.Root] = out
	}
	outs := make([]uint64, g.NumPOs())
	for i, po := range g.POs() {
		v := vals[po.Lit.Node()]
		if po.Lit.IsCompl() {
			v = ^v
		}
		outs[i] = v
	}
	return outs
}

// EquivalentTo checks the LUT network against the subject AIG on random
// patterns.
func (r *Result) EquivalentTo(g *aig.AIG, rounds int, rng *rand.Rand) error {
	ins := make([]uint64, g.NumPIs())
	for round := 0; round < rounds; round++ {
		for i := range ins {
			ins[i] = rng.Uint64()
		}
		want := g.Simulate(ins)
		got := r.Simulate(ins)
		for i := range want {
			if want[i] != got[i] {
				return fmt.Errorf("lutmap: PO %d differs from AIG", i)
			}
		}
	}
	return nil
}
