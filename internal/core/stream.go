// Fused SLAP mapping: enumeration, ML cut filtering and Boolean matching
// run as one streaming pipeline over the level wavefront. Each completed
// level is classified in parallel by the inference workers (per-sample or
// batched, exactly as the two-phase flow), the filtered lists feed the
// incremental mapper on the spot, and the enumerator retires the level's
// cut storage — so the full cut universe is never materialised. Filtering
// decisions are per-node deterministic, so the fused result is
// byte-identical to FilterCuts + Map.
package core

import (
	"context"
	"runtime"
	"sync"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/embed"
	"slap/internal/lutmap"
	"slap/internal/mapper"
)

// MapStream is MapContext's fused streaming equivalent over a background
// context.
func (s *SLAP) MapStream(g *aig.AIG) (*mapper.Result, error) {
	return s.MapStreamContext(context.Background(), g)
}

// MapStreamContext runs the full SLAP flow on g as a fused pipeline:
// matching consumes each level's ML-filtered cuts as the wavefront
// produces them. The Result is byte-identical to MapContext, including the
// multi-round and choice-view configurations.
func (s *SLAP) MapStreamContext(ctx context.Context, g *aig.AIG) (*mapper.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mg, ch, err := s.choiceGraph(ctx, g)
	if err != nil {
		return nil, err
	}
	st, err := mapper.NewStream(mg, mapper.Options{Library: s.Library, Rounds: s.Rounds, DelayFactor: s.DelayFactor})
	if err != nil {
		return nil, err
	}
	res, err := s.streamFiltered(ctx, mg, ch, func(n uint32, kept, extras []cuts.Cut) {
		st.ConsumeNode(n, kept)
		if extras != nil {
			st.ConsumeExtras(n, extras)
		}
	})
	if err != nil {
		return nil, err
	}
	st.SetPeakCuts(res.PeakCuts)
	r, err := st.Finish()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.PolicyName = "slap"
	return r, nil
}

// MapLUTStream is MapLUTContext's fused streaming equivalent.
func (s *SLAP) MapLUTStream(g *aig.AIG) (*lutmap.Result, error) {
	return s.MapLUTStreamContext(context.Background(), g)
}

// MapLUTStreamContext runs the SLAP flow against the K-LUT mapper as a
// fused pipeline, byte-identical to MapLUTContext.
func (s *SLAP) MapLUTStreamContext(ctx context.Context, g *aig.AIG) (*lutmap.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mg, ch, err := s.choiceGraph(ctx, g)
	if err != nil {
		return nil, err
	}
	st := lutmap.NewStream(mg, lutmap.Options{Rounds: s.Rounds, DelayFactor: s.DelayFactor})
	res, err := s.streamFiltered(ctx, mg, ch, func(n uint32, kept, extras []cuts.Cut) {
		st.ConsumeNode(n, kept)
		if extras != nil {
			st.ConsumeExtras(n, extras)
		}
	})
	if err != nil {
		return nil, err
	}
	st.SetPeakCuts(res.PeakCuts)
	r, err := st.Finish()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.PolicyName = "slap"
	return r, nil
}

// streamFiltered drives the fused enumerate→classify→consume pipeline:
// exhaustive streaming enumeration (the same UnlimitedPolicy universe as
// FilterCutsContext, optionally enriched across a choice source), per-level
// parallel ML filtering with per-worker reusable embedding buffers, and a
// sequential consume of the filtered lists in ascending node order (the
// order the two-phase mapper sees). The consumer's second list is the
// node's recovery pool — nil unless Rounds > 1 (see filterNode). When
// s.Pool is set, cut storage is checked out of the arena pool and recycled
// across runs of the same graph.
func (s *SLAP) streamFiltered(ctx context.Context, g *aig.AIG, ch cuts.ChoiceSource, consume func(uint32, []cuts.Cut, []cuts.Cut)) (*cuts.Result, error) {
	emb := embed.NewEmbedder(g)
	emb.PrecomputeAll()

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scratches := make([]*inferScratch, workers)
	for i := range scratches {
		scratches[i] = &inferScratch{}
	}
	filtered := make([][]cuts.Cut, g.NumNodes())
	var extras [][]cuts.Cut
	if s.Rounds > 1 {
		extras = make([][]cuts.Cut, g.NumNodes())
	}
	extrasOf := func(n uint32) []cuts.Cut {
		if extras == nil {
			return nil
		}
		return extras[n]
	}

	var arena *cuts.Arena
	if s.Pool != nil {
		arena = s.Pool.Get(g)
		defer s.Pool.Put(arena)
	}
	enum := &cuts.Enumerator{G: g, Policy: cuts.UnlimitedPolicy{}, MergeCap: s.MergeCap, Workers: s.Workers, Arena: arena, Choices: ch}

	sink := func(_ int32, nodes []uint32, sets [][]cuts.Cut) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if workers == 1 || len(nodes) < 2 {
			sc := scratches[0]
			for _, n := range nodes {
				out, ex, err := s.filterNode(ctx, emb, n, sets[n], sc)
				if err != nil {
					return err
				}
				filtered[n] = out
				if extras != nil {
					extras[n] = ex
				}
			}
		} else if err := s.filterLevel(ctx, emb, nodes, sets, filtered, extras, scratches); err != nil {
			return err
		}
		// The filtered lists hold durable leaves only after the consumer
		// copies them; consume before the enumerator retires the level.
		for _, n := range nodes {
			consume(n, filtered[n], extrasOf(n))
			filtered[n] = nil
			if extras != nil {
				extras[n] = nil
			}
		}
		return nil
	}
	res, err := enum.RunStream(sink)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// filterLevel classifies one level's nodes across the inference workers,
// mirroring FilterCutsContext's strided worker loop (including the
// first-error-wins cancellation of a failing batch backend).
func (s *SLAP) filterLevel(ctx context.Context, emb *embed.Embedder, nodes []uint32, sets, filtered, extras [][]cuts.Cut, scratches []*inferScratch) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	workers := len(scratches)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := scratches[w]
			for ni := w; ni < len(nodes); ni += workers {
				if cctx.Err() != nil {
					return
				}
				n := nodes[ni]
				out, ex, err := s.filterNode(cctx, emb, n, sets[n], sc)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				filtered[n] = out
				if extras != nil {
					extras[n] = ex
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
