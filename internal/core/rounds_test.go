package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapcache"
	"slap/internal/mapper"
)

// roundsModel shares one trained model across the multi-round tests —
// training dominates their runtime and every test only needs pipeline
// correctness, not a fresh model.
var roundsModel struct {
	once sync.Once
	s    *SLAP
}

func roundsSLAP(t *testing.T) *SLAP {
	t.Helper()
	roundsModel.once.Do(func() {
		s, _, err := Train(TrainOptions{
			Library:        library.ASAP7ish(),
			MapsPerCircuit: 60,
			Epochs:         10,
			Filters:        16,
			Seed:           7,
		})
		if err != nil {
			return
		}
		roundsModel.s = s
	})
	if roundsModel.s == nil {
		t.Fatal("shared training failed")
	}
	return roundsModel.s
}

// TestMultiRoundQoR pins the multi-round contract on a real circuit: four
// rounds report delay -> area-flow -> area-flow -> area-flow+exact, the
// delay estimate never drifts above the round-1 target, area ends at or
// below the single-pass cover, and the netlist still verifies — with and
// without choices.
func TestMultiRoundQoR(t *testing.T) {
	s := roundsSLAP(t)
	g := circuits.RippleCarryAdder(16)

	single, err := s.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	if single.RoundStats != nil {
		t.Fatalf("single-pass map reported round stats: %+v", single.RoundStats)
	}

	for _, choices := range []bool{false, true} {
		s4 := *s
		s4.Rounds = 4
		s4.Choices = choices
		multi, err := s4.Map(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(multi.RoundStats) != 4 {
			t.Fatalf("choices=%v: want 4 round stats, got %d", choices, len(multi.RoundStats))
		}
		wantModes := []string{"delay", "area-flow", "area-flow", "area-flow+exact"}
		for i, st := range multi.RoundStats {
			if st.Round != i+1 || st.Mode != wantModes[i] {
				t.Fatalf("choices=%v: round %d is %+v, want round=%d mode=%s", choices, i, st, i+1, wantModes[i])
			}
			if st.EstDelay > multi.RoundStats[0].EstDelay+1e-6 {
				t.Fatalf("choices=%v: round %d delay %.3f drifted above round-1 %.3f",
					choices, st.Round, st.EstDelay, multi.RoundStats[0].EstDelay)
			}
		}
		last := multi.RoundStats[3]
		if last.EstArea > multi.RoundStats[0].EstArea+1e-6 {
			t.Fatalf("choices=%v: recovery ended worse than the delay round: %.3f > %.3f",
				choices, last.EstArea, multi.RoundStats[0].EstArea)
		}
		if !choices && multi.Area > single.Area+1e-6 {
			t.Fatalf("4-round area %.3f worse than single-pass %.3f", multi.Area, single.Area)
		}
		if err := multi.Netlist.EquivalentTo(g, 6, rand.New(rand.NewSource(3))); err != nil {
			t.Fatalf("choices=%v: multi-round netlist not equivalent: %v", choices, err)
		}
	}
}

// TestMultiRoundLUTQoR is the lut-side analogue: depth-first round, then
// area recovery at never-worse depth, verified against the base graph.
func TestMultiRoundLUTQoR(t *testing.T) {
	s := roundsSLAP(t)
	g := circuits.RippleCarryAdder(16)

	single, err := s.MapLUT(g)
	if err != nil {
		t.Fatal(err)
	}
	s4 := *s
	s4.Rounds = 4
	s4.Choices = true
	multi, err := s4.MapLUT(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.RoundStats) != 4 {
		t.Fatalf("want 4 round stats, got %d", len(multi.RoundStats))
	}
	if multi.RoundStats[0].Mode != "depth" || multi.RoundStats[3].Mode != "area-flow+exact" {
		t.Fatalf("unexpected round modes: %+v", multi.RoundStats)
	}
	for _, st := range multi.RoundStats {
		if st.Depth > multi.RoundStats[0].Depth {
			t.Fatalf("round %d depth %d exceeds round-1 depth %d", st.Round, st.Depth, multi.RoundStats[0].Depth)
		}
	}
	if multi.NumLUTs() > single.NumLUTs() {
		t.Fatalf("4-round+choices LUTs %d worse than single-pass %d", multi.NumLUTs(), single.NumLUTs())
	}
	if multi.Depth > single.Depth {
		t.Fatalf("4-round+choices depth %d worse than single-pass %d", multi.Depth, single.Depth)
	}
	if err := multi.EquivalentTo(g, 6, rand.New(rand.NewSource(4))); err != nil {
		t.Fatalf("multi-round LUT network not equivalent: %v", err)
	}
}

// TestRoundCounterParity pins the satellite counter contract: round 1 of a
// multi-round run reports exactly the single-pass CutsConsidered/PeakCuts,
// and the result totals aggregate per-round counters (sum and max).
func TestRoundCounterParity(t *testing.T) {
	s := roundsSLAP(t)
	g := circuits.CarryLookaheadAdder(8)

	single, err := s.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	s4 := *s
	s4.Rounds = 3
	for _, streaming := range []bool{false, true} {
		var multi *mapper.Result
		var err error
		if streaming {
			multi, err = s4.MapStream(g)
		} else {
			multi, err = s4.Map(g)
		}
		if err != nil {
			t.Fatal(err)
		}
		r1 := multi.RoundStats[0]
		if r1.CutsConsidered != single.CutsConsidered {
			t.Fatalf("streaming=%v: round-1 cuts %d != single-pass %d", streaming, r1.CutsConsidered, single.CutsConsidered)
		}
		sum, peak := 0, 0
		for _, st := range multi.RoundStats {
			sum += st.CutsConsidered
			if st.PeakCuts > peak {
				peak = st.PeakCuts
			}
		}
		if multi.CutsConsidered != sum {
			t.Fatalf("streaming=%v: total cuts %d != per-round sum %d", streaming, multi.CutsConsidered, sum)
		}
		if multi.PeakCuts != peak {
			t.Fatalf("streaming=%v: total peak %d != per-round max %d", streaming, multi.PeakCuts, peak)
		}
	}

	// LUT side, same contract.
	lsingle, err := s.MapLUT(g)
	if err != nil {
		t.Fatal(err)
	}
	lmulti, err := s4.MapLUT(g)
	if err != nil {
		t.Fatal(err)
	}
	if lmulti.RoundStats[0].CutsConsidered != lsingle.CutsConsidered {
		t.Fatalf("LUT round-1 cuts %d != single-pass %d", lmulti.RoundStats[0].CutsConsidered, lsingle.CutsConsidered)
	}
	sum := 0
	for _, st := range lmulti.RoundStats {
		sum += st.CutsConsidered
	}
	if lmulti.CutsConsidered != sum {
		t.Fatalf("LUT total cuts %d != per-round sum %d", lmulti.CutsConsidered, sum)
	}
}

// TestConfigSigRoundsCacheMiss is the mapcache regression: the same AIG at
// rounds=1 and rounds=4 must resolve to different content addresses, so a
// cached single-round result is never served for a multi-round request —
// and the multi-round entry carries no ECO snapshot.
func TestConfigSigRoundsCacheMiss(t *testing.T) {
	s := roundsSLAP(t)
	g := circuits.RippleCarryAdder(8)
	cache := mapcache.New(64 << 20)
	ctx := context.Background()

	res1, out1, err := s.MapCached(ctx, g, cache, CachedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out1.Hit {
		t.Fatal("first submission reported a hit")
	}

	s4 := *s
	s4.Rounds = 4
	s4.DelayFactor = 1.1
	s4.Choices = true
	res4, out4, err := s4.MapCached(ctx, g, cache, CachedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out4.Hit {
		t.Fatal("multi-round request was served the single-round cached result")
	}
	if out4.Key == out1.Key {
		t.Fatalf("rounds=1 and rounds=4 share a content address: %v", out4.Key)
	}
	if len(res4.RoundStats) != 4 || res1.RoundStats != nil {
		t.Fatalf("QoR fields do not reflect the configs: single=%v multi=%v", res1.RoundStats, res4.RoundStats)
	}
	if e, ok := cache.Get(out4.Key); !ok {
		t.Fatal("multi-round result not cached")
	} else if e.Snap != nil {
		t.Fatal("multi-round entry carries an ECO snapshot")
	}
	if e, ok := cache.Get(out1.Key); !ok || e.Snap == nil {
		t.Fatal("single-round entry lost its ECO snapshot")
	}

	// Resubmitting the multi-round config is an exact hit.
	_, again, err := s4.MapCached(ctx, g, cache, CachedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Hit {
		t.Fatal("equal multi-round resubmission missed the cache")
	}
}

// TestMultiRoundDeterminismMatrix pins byte-identity of the 4-round+choices
// flow across worker counts, the streaming/two-phase split, and arena-pool
// reuse — the guarantee fleet routing and the result cache depend on.
func TestMultiRoundDeterminismMatrix(t *testing.T) {
	s := roundsSLAP(t)
	g := circuits.CarryLookaheadAdder(8)

	var ref []byte
	var refCfg string
	for _, workers := range []int{1, 2, 4, 7} {
		for _, streaming := range []bool{false, true} {
			for _, pooled := range []bool{false, true} {
				cfg := fmt.Sprintf("workers=%d streaming=%v pool=%v", workers, streaming, pooled)
				sv := *s
				sv.Workers = workers
				sv.Rounds = 4
				sv.DelayFactor = 1.05
				sv.Choices = true
				if pooled {
					sv.Pool = cuts.NewPool(0)
				}
				var res *mapper.Result
				var err error
				if streaming {
					res, err = sv.MapStream(g)
				} else {
					res, err = sv.Map(g)
				}
				if err != nil {
					t.Fatalf("%s: %v", cfg, err)
				}
				var buf bytes.Buffer
				if err := res.Netlist.WriteVerilog(&buf); err != nil {
					t.Fatalf("%s: %v", cfg, err)
				}
				if ref == nil {
					ref, refCfg = buf.Bytes(), cfg
					continue
				}
				if !bytes.Equal(ref, buf.Bytes()) {
					t.Fatalf("netlist bytes differ between %s and %s", refCfg, cfg)
				}
			}
		}
	}
}
