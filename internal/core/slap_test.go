package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/infer"
	"slap/internal/library"
	"slap/internal/lutmap"
	"slap/internal/mapper"
)

// trainSmall trains a scaled-down model quickly; the accuracy bar is modest
// because the point of these tests is pipeline correctness, not QoR.
func trainSmall(t testing.TB) (*SLAP, *TrainReport) {
	t.Helper()
	s, rep, err := Train(TrainOptions{
		Library:        library.ASAP7ish(),
		MapsPerCircuit: 60,
		Epochs:         10,
		Filters:        16,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, rep
}

func TestTrainEndToEnd(t *testing.T) {
	_, rep := trainSmall(t)
	if rep.Samples == 0 || rep.TrainSamples == 0 || rep.ValSamples == 0 {
		t.Fatalf("empty dataset: %+v", rep)
	}
	if rep.TrainSamples+rep.ValSamples != rep.Samples {
		t.Fatalf("split inconsistent")
	}
	if len(rep.History) != 10 {
		t.Fatalf("history has %d epochs", len(rep.History))
	}
	if rep.History[len(rep.History)-1].Loss >= rep.History[0].Loss {
		t.Fatalf("training loss did not decrease: %v -> %v",
			rep.History[0].Loss, rep.History[len(rep.History)-1].Loss)
	}
	// The binary keep/drop task is much easier than the 10-class task
	// (paper: 93.4% vs 34%). Even this scaled-down model must beat chance
	// comfortably and the 10-class accuracy on both.
	if rep.BinaryAccuracy < 0.6 {
		t.Fatalf("binary accuracy %.3f too low", rep.BinaryAccuracy)
	}
	if rep.BinaryAccuracy <= rep.MultiClassAccuracy {
		t.Fatalf("binary accuracy (%.3f) should exceed 10-class accuracy (%.3f)",
			rep.BinaryAccuracy, rep.MultiClassAccuracy)
	}
	sum := 0
	for _, c := range rep.ClassHistogram {
		sum += c
	}
	if sum != rep.Samples {
		t.Fatalf("class histogram inconsistent")
	}
}

func TestTrainRequiresLibrary(t *testing.T) {
	if _, _, err := Train(TrainOptions{}); err == nil {
		t.Fatalf("Train without library must fail")
	}
}

func TestFilterCutsStructure(t *testing.T) {
	s, _ := trainSmall(t)
	g := circuits.CarryLookaheadAdder(8)
	res := s.FilterCuts(g)
	unl := (&cuts.Enumerator{G: g, Policy: cuts.UnlimitedPolicy{}}).Run()
	if res.TotalCuts <= 0 {
		t.Fatalf("no cuts survived filtering")
	}
	if res.TotalCuts > unl.TotalCuts {
		t.Fatalf("filtering cannot increase cuts: %d > %d", res.TotalCuts, unl.TotalCuts)
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		if len(res.Sets[n]) == 0 {
			t.Fatalf("node %d lost all cuts", n)
		}
		// Every node keeps its trivial cut as the fallback.
		found := false
		for i := range res.Sets[n] {
			if res.Sets[n][i].IsTrivial(n) {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d lost its trivial cut", n)
		}
	}
}

func TestSLAPMapEquivalence(t *testing.T) {
	s, _ := trainSmall(t)
	for _, g := range []*aig.AIG{
		circuits.ALUCompare(8),
		circuits.ArrayMultiplier(5),
		circuits.BarrelShifter(8),
	} {
		res, err := s.Map(g)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if res.PolicyName != "slap" {
			t.Fatalf("policy name = %q", res.PolicyName)
		}
		if err := res.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(11))); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
	}
}

func TestSLAPReducesCutsVsUnlimited(t *testing.T) {
	s, _ := trainSmall(t)
	g := circuits.TrainCLA16()
	slapRes, err := s.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	unlRes, err := mapper.Map(g, mapper.Options{Library: s.Library, Policy: cuts.UnlimitedPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if slapRes.CutsConsidered >= unlRes.CutsConsidered {
		t.Fatalf("SLAP cuts %d should be below unlimited %d",
			slapRes.CutsConsidered, unlRes.CutsConsidered)
	}
}

func TestPermutationImportance(t *testing.T) {
	s, rep := trainSmall(t)
	imps := PermutationImportance(s.Model, rep.ValX, rep.ValY, 3, 13)
	if len(imps) != 29 {
		t.Fatalf("got %d importances, want 29", len(imps))
	}
	for i, imp := range imps {
		if imp.Name == "" {
			t.Fatalf("importance %d unnamed", i)
		}
		if math.IsNaN(imp.MultiClassDrop) || math.IsNaN(imp.BinaryDrop) {
			t.Fatalf("NaN importance for %s", imp.Name)
		}
		if i > 0 && imps[i-1].MultiClassDrop < imp.MultiClassDrop {
			t.Fatalf("importances not sorted")
		}
	}
	// Permuting features must matter for at least one feature.
	if imps[0].MultiClassDrop <= 0 {
		t.Fatalf("no feature has positive importance: top=%+v", imps[0])
	}
	// The input data must not have been mutated: rerunning yields the same
	// baseline ordering.
	again := PermutationImportance(s.Model, rep.ValX, rep.ValY, 3, 13)
	for i := range imps {
		if imps[i] != again[i] {
			t.Fatalf("importance run not deterministic or inputs mutated")
		}
	}
}

func TestMaxCutsPerNodeCapsLists(t *testing.T) {
	s, _ := trainSmall(t)
	g := circuits.CarryLookaheadAdder(8)
	s.MaxCutsPerNode = 3
	res := s.FilterCuts(g)
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		if len(res.Sets[n]) > 4 { // cap + trivial cut
			t.Fatalf("node %d keeps %d cuts with cap 3", n, len(res.Sets[n]))
		}
	}
	// The capped flow still maps correctly.
	out, err := s.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(19))); err != nil {
		t.Fatal(err)
	}
}

func TestExpectedClassVariant(t *testing.T) {
	s, _ := trainSmall(t)
	g := circuits.TrainRC16()
	s.UseExpectedClass = true
	res, err := s.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(23))); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdsRespected(t *testing.T) {
	s, _ := trainSmall(t)
	// With GoodMax=-1 and AvgMax=-1 every node keeps only its trivial cut;
	// the mapper must still produce a correct netlist via fanin fallbacks.
	s2 := &SLAP{Model: s.Model, Library: s.Library, GoodMax: -1, AvgMax: -1}
	g := circuits.TrainRC16()
	res, err := s2.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(17))); err != nil {
		t.Fatal(err)
	}
}

func TestSLAPMapLUT(t *testing.T) {
	s, _ := trainSmall(t)
	g := circuits.ALUCompare(10)
	res, err := s.MapLUT(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyName != "slap" || res.NumLUTs() == 0 {
		t.Fatalf("LUT flow malformed: %s %d", res.PolicyName, res.NumLUTs())
	}
	if err := res.EquivalentTo(g, 4, rand.New(rand.NewSource(29))); err != nil {
		t.Fatal(err)
	}
	// The ML filter must shrink the cut footprint vs exhaustive LUT mapping.
	unl, err := lutmap.Map(g, lutmap.Options{Policy: cuts.UnlimitedPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutsConsidered >= unl.CutsConsidered {
		t.Fatalf("SLAP LUT cuts %d >= unlimited %d", res.CutsConsidered, unl.CutsConsidered)
	}
}

// TestBatchedFilterMatchesPerSample pins the PR's headline guarantee: wiring
// a batched inference backend (bare Engine or cross-goroutine Coalescer) into
// SLAP changes throughput only — the surviving cut sets and the mapped QoR
// are identical to per-sample Predict, because the GEMM kernels keep the
// per-sample accumulation order.
func TestBatchedFilterMatchesPerSample(t *testing.T) {
	s, _ := trainSmall(t)
	g := circuits.TrainRC16()

	s.Batch = nil
	perCuts := s.FilterCuts(g)
	perRes, err := s.Map(g)
	if err != nil {
		t.Fatal(err)
	}

	eng := infer.NewEngine(s.Model, infer.Options{})
	co := infer.NewCoalescer(eng, infer.CoalescerOptions{MaxBatch: 32, MaxWait: 200 * time.Microsecond})
	defer co.Close()
	for _, tc := range []struct {
		name  string
		batch Batcher
	}{
		{"engine", eng},
		{"coalescer", co},
	} {
		s.Batch = tc.batch
		got := s.FilterCuts(g)
		if !reflect.DeepEqual(got.Sets, perCuts.Sets) {
			t.Fatalf("%s: batched filtering chose different cut sets", tc.name)
		}
		res, err := s.Map(g)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Area != perRes.Area || res.Delay != perRes.Delay {
			t.Fatalf("%s: QoR drifted: area %v vs %v, delay %v vs %v",
				tc.name, res.Area, perRes.Area, res.Delay, perRes.Delay)
		}
	}

	// The expected-class scoring variant routes through the same batched
	// probabilities and must agree with its per-sample counterpart too.
	s.UseExpectedClass = true
	s.Batch = nil
	expPer := s.FilterCuts(g)
	s.Batch = eng
	expBat := s.FilterCuts(g)
	if !reflect.DeepEqual(expPer.Sets, expBat.Sets) {
		t.Fatalf("UseExpectedClass: batched filtering chose different cut sets")
	}
}
