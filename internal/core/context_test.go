package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"slap/internal/circuits"
	"slap/internal/embed"
	"slap/internal/library"
	"slap/internal/nn"
)

// untrained returns a SLAP instance with deterministic random weights —
// enough for flow tests that do not care about QoR.
func untrained(seed int64) *SLAP {
	m := nn.NewModel(embed.Rows, embed.Cols, 4, 10, rand.New(rand.NewSource(seed)))
	return New(m, library.ASAP7ish())
}

func TestMapContextCancellation(t *testing.T) {
	s := untrained(5)
	g := circuits.TrainRC16()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.MapContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("MapContext(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := s.MapLUTContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("MapLUTContext(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := s.FilterCutsContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("FilterCutsContext(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := s.ClassifyContext(ctx, g); !errors.Is(err, context.Canceled) {
		t.Errorf("ClassifyContext(cancelled) err = %v, want context.Canceled", err)
	}
}

func TestMapContextBackgroundMatchesMap(t *testing.T) {
	s := untrained(5)
	g := circuits.TrainRC16()
	plain, err := s.Map(g)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := s.MapContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Area != viaCtx.Area || plain.Delay != viaCtx.Delay {
		t.Errorf("Map area=%v delay=%v, MapContext area=%v delay=%v",
			plain.Area, plain.Delay, viaCtx.Area, viaCtx.Delay)
	}
}

func TestClassifyContextStructure(t *testing.T) {
	s := untrained(9)
	g := circuits.TrainRC16()
	cls, err := s.ClassifyContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cls.Nodes) != g.NumAnds() {
		t.Errorf("classified %d nodes, graph has %d AND nodes", len(cls.Nodes), g.NumAnds())
	}
	sum := 0
	for _, c := range cls.Histogram {
		sum += c
	}
	if sum != cls.TotalCuts || sum == 0 {
		t.Errorf("histogram sums to %d, TotalCuts = %d", sum, cls.TotalCuts)
	}
	// Sequential and parallel classification agree (classes are per-cut
	// deterministic; only the work distribution changes).
	s.Workers = 1
	seq, err := s.ClassifyContext(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if seq.TotalCuts != cls.TotalCuts {
		t.Errorf("sequential classify found %d cuts, parallel %d", seq.TotalCuts, cls.TotalCuts)
	}
	for i := range seq.Nodes {
		if seq.Nodes[i].Node != cls.Nodes[i].Node || len(seq.Nodes[i].Classes) != len(cls.Nodes[i].Classes) {
			t.Fatalf("node %d: sequential/parallel classification diverged", seq.Nodes[i].Node)
		}
		for j := range seq.Nodes[i].Classes {
			if seq.Nodes[i].Classes[j] != cls.Nodes[i].Classes[j] {
				t.Fatalf("node %d cut %d: class %d (seq) != %d (par)",
					seq.Nodes[i].Node, j, seq.Nodes[i].Classes[j], cls.Nodes[i].Classes[j])
			}
		}
	}
}
