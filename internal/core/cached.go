package core

import (
	"context"

	"slap/internal/aig"
	"slap/internal/mapcache"
	"slap/internal/mapper"
)

// CachedOptions configures MapCached.
type CachedOptions struct {
	// Streaming selects the fused pipeline for cold (non-cached) maps.
	Streaming bool
	// ECO enables delta-remapping against the nearest cached relative when
	// the exact key misses.
	ECO bool
	// Verify, when set, is run once on every freshly mapped result (never
	// on cache hits) and its verdict is stored on the cache entry.
	Verify func(*mapper.Result) bool
}

// CacheOutcome reports how a MapCached call was served.
type CacheOutcome struct {
	// Key is the content address the request resolved to.
	Key mapcache.Key
	// Hit reports an exact-key cache hit — no mapping work at all.
	Hit bool
	// Shared reports a singleflight follower that reused a concurrent
	// identical submission's fresh result.
	Shared bool
	// ECO reports that the miss was served by delta-remapping against a
	// cached relative instead of a cold full map.
	ECO bool
	// DirtyFraction is the fraction of AND nodes re-classified on the ECO
	// path (meaningful only when ECO is true).
	DirtyFraction float64
	// Verified mirrors the cache entry's equivalence-check bit.
	Verified bool
}

// MapCached is the serving entry point of the SLAP flow: a content-
// addressed lookup (graph structure + names + configuration signature)
// answers exact repeats in O(1), a singleflight collapses concurrent
// identical submissions into one mapping, and — with ECO enabled — a miss
// first tries to delta-remap against the nearest cached relative before
// paying for a cold map. Every fresh result is cached together with its
// ECO snapshot, so edit chains keep remapping incrementally. A nil cache
// degrades to a plain map.
func (s *SLAP) MapCached(ctx context.Context, g *aig.AIG, cache *mapcache.Cache, opt CachedOptions) (*mapper.Result, *CacheOutcome, error) {
	out := &CacheOutcome{}
	if cache == nil {
		var res *mapper.Result
		var err error
		if opt.Streaming {
			res, err = s.MapStreamContext(ctx, g)
		} else {
			res, err = s.MapContext(ctx, g)
		}
		if err != nil {
			return nil, nil, err
		}
		if opt.Verify != nil {
			out.Verified = opt.Verify(res)
		}
		return res, out, nil
	}

	// ECO snapshots and delta remapping are defined for the single-round,
	// no-choice flow only: a snapshot records the keep decision's filtered
	// lists, not the recovery pools or a choice view's combined graph. The
	// multi-round configurations still get exact-key caching and
	// singleflight — their entries just carry no snapshot.
	simple := s.Rounds <= 1 && !s.Choices

	sig := s.ConfigSig()
	out.Key = mapcache.KeyOf(g, sig)
	e, shared, err := cache.Do(out.Key, func() (*mapcache.Entry, error) {
		// Leader path: the lookup happens inside the flight so a result
		// added between a miss and the flight acquisition is still found.
		if e, ok := cache.Get(out.Key); ok {
			out.Hit = true
			return e, nil
		}
		if opt.ECO && simple {
			if e, ok := s.tryDelta(ctx, g, cache, sig, opt.Verify, out); ok {
				return e, nil
			}
		}
		var res *mapper.Result
		var snap *SlapSnapshot
		var err error
		switch {
		case !simple && opt.Streaming:
			res, err = s.MapStreamContext(ctx, g)
		case !simple:
			res, err = s.MapContext(ctx, g)
		case opt.Streaming:
			res, snap, err = s.MapStreamCaptureContext(ctx, g)
		default:
			res, snap, err = s.MapCaptureContext(ctx, g)
		}
		if err != nil {
			return nil, err
		}
		e := &mapcache.Entry{Key: out.Key, Sig: sig, Result: res}
		if snap != nil {
			e.Snap = snap
		}
		if opt.Verify != nil {
			e.Verified = opt.Verify(res)
		}
		cache.Add(e)
		return e, nil
	})
	if err != nil {
		return nil, nil, err
	}
	out.Shared = shared
	out.Verified = e.Verified
	return e.Result, out, nil
}

// tryDelta attempts the ECO path: find the nearest cached relative by
// cone-hash overlap and delta-remap against its snapshot. Any
// ineligibility (no relative, foreign snapshot type, depth change,
// configuration drift) falls back to a cold map; only success caches and
// reports.
func (s *SLAP) tryDelta(ctx context.Context, g *aig.AIG, cache *mapcache.Cache, sig string, verify func(*mapper.Result) bool, out *CacheOutcome) (*mapcache.Entry, bool) {
	near := cache.Nearest(sig, g.ConeHashes())
	if near == nil {
		return nil, false
	}
	snap, ok := near.Snap.(*SlapSnapshot)
	if !ok {
		return nil, false
	}
	res, next, st, err := s.MapDeltaContext(ctx, g, snap)
	if err != nil {
		return nil, false
	}
	cache.RecordECOHit()
	out.ECO = true
	out.DirtyFraction = st.DirtyFraction
	e := &mapcache.Entry{Key: out.Key, Sig: sig, Result: res, Snap: next}
	if verify != nil {
		e.Verified = verify(res)
	}
	cache.Add(e)
	return e, true
}
