// ECO delta-remapping for the SLAP flow. The mapper-level delta
// (internal/mapper/eco.go) reuses cut lists for nodes whose fanin cone
// survived an edit; the SLAP flow needs a stricter clean predicate because
// its keep decision consults non-cone-local graph features: a cut
// embedding reads the fanout count, inverted-fanout flag and reverse level
// of the root, its fanins, the leaves and their fanins, and normalises
// every level feature by the whole graph's depth (internal/embed). A
// SlapSnapshot therefore records, alongside the baseline's ordered cone
// hashes and ML-filtered cut lists, the external feature vector of every
// node; a node is slap-clean only when its cone matched structurally, its
// own external features are unchanged, and the same holds transitively for
// its fanins — which covers every node any of its cut embeddings can read.
// Depth changes rescale all level features at once, so a depth mismatch
// makes the whole snapshot ineligible and callers fall back to a cold map.
//
// Enumeration cannot be skipped for dirty nodes (they merge from their
// fanins' unlimited lists, which the snapshot does not retain), so MapDelta
// re-runs the exhaustive enumeration; the expensive stage — per-cut CNN
// inference — runs on dirty nodes only, and clean nodes take their
// filtered lists from the snapshot through the monotone id alignment. The
// result is byte-identical to a full SLAP map of the edited graph.
package core

import (
	"context"
	"errors"
	"fmt"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/embed"
	"slap/internal/mapper"
)

// ErrSlapDeltaIneligible reports that a snapshot cannot support SLAP delta
// remapping of the given graph (nil snapshot or changed graph depth);
// callers should fall back to a full map.
var ErrSlapDeltaIneligible = errors.New("core: snapshot not usable for delta remapping")

// ErrSlapSnapshotMismatch reports that the snapshot was captured under a
// different SLAP configuration (model, library, thresholds or merge cap).
var ErrSlapSnapshotMismatch = errors.New("core: snapshot configuration mismatch")

// ecoLeafChunk sizes the snapshot's chunked leaf-arena allocations.
const ecoLeafChunk = 4096

// ConfigSig identifies everything about this SLAP instance that shapes the
// mapping result: model and library identity, the keep thresholds, the
// scoring mode, the enumeration merge cap and the multi-round/choice knobs.
// Workers, Batch and Pool are deliberately excluded — they change
// scheduling, never results (the batched kernels accumulate in per-sample
// order). Identity is by pointer, so signatures — and the cache keys built
// from them — are valid within one process only, which is exactly the
// mapcache's lifetime.
func (s *SLAP) ConfigSig() string {
	mc := s.MergeCap
	if mc == 0 {
		mc = cuts.DefaultMergeCap
	}
	rounds := s.Rounds
	if rounds < 1 {
		rounds = 1
	}
	df := s.DelayFactor
	if df < 1 {
		df = 1
	}
	ch := "off"
	if s.Choices {
		// The choice-options content signature (Workers excluded, defaults
		// folded in) — two configs that build different views must never
		// share a cached mapping result.
		ch = s.ChoiceOpts.Sig()
	}
	return fmt.Sprintf("slap/model=%p/lib=%s@%p/good=%d/avg=%d/exp=%v/max=%d/mc=%d/rounds=%d/df=%g/choices=%s",
		s.Model, s.Library.Name, s.Library, s.GoodMax, s.AvgMax,
		s.UseExpectedClass, s.MaxCutsPerNode, mc, rounds, df, ch)
}

// SlapSnapshot is a reusable record of one full SLAP mapping run: the
// baseline graph's ordered cone hashes, every AND node's ML-filtered cut
// list (deep copies), and the external features the embeddings consult.
// It is immutable after capture and safe for concurrent MapDeltaContext
// calls; it also satisfies mapcache.Snapshot.
type SlapSnapshot struct {
	sig   string
	depth int32

	hashes    []uint64
	sets      [][]cuts.Cut
	leafArena []uint32

	fanout   []int32
	invOut   []bool
	revLevel []int32

	bytes int64
}

// NewSnapshot records the structural and external-feature baseline of g
// for this SLAP configuration. Cut lists are filled in by the capture
// flows (MapCaptureContext / MapStreamCaptureContext) or by MapDeltaContext
// itself when it chains snapshots.
func (s *SLAP) NewSnapshot(g *aig.AIG) *SlapSnapshot {
	n := g.NumNodes()
	snap := &SlapSnapshot{
		sig:      s.ConfigSig(),
		depth:    g.MaxLevel(),
		hashes:   g.ConeHashes(),
		sets:     make([][]cuts.Cut, n),
		fanout:   make([]int32, n),
		invOut:   make([]bool, n),
		revLevel: make([]int32, n),
		// hashes + per-node set header + fanout + invOut + revLevel.
		bytes: int64(n) * (8 + 24 + 4 + 1 + 4),
	}
	for i := uint32(0); i < uint32(n); i++ {
		snap.fanout[i] = g.Fanout(i)
		snap.invOut[i] = g.HasInvertedFanout(i)
		snap.revLevel[i] = g.ReverseLevel(i)
	}
	return snap
}

// intern copies ls into the snapshot's chunked leaf storage.
func (sn *SlapSnapshot) intern(ls []uint32) []uint32 {
	if len(sn.leafArena)+len(ls) > cap(sn.leafArena) {
		sz := ecoLeafChunk
		if len(ls) > sz {
			sz = len(ls)
		}
		sn.leafArena = make([]uint32, 0, sz)
	}
	i := len(sn.leafArena)
	sn.leafArena = append(sn.leafArena, ls...)
	return sn.leafArena[i : i+len(ls) : i+len(ls)]
}

// capture deep-copies one node's filtered cut list into the snapshot.
// Calls arrive from a single goroutine (the flow driver).
func (sn *SlapSnapshot) capture(n uint32, cs []cuts.Cut) {
	list := make([]cuts.Cut, len(cs))
	for i := range cs {
		c := cs[i]
		c.Leaves = sn.intern(c.Leaves)
		list[i] = c
		sn.bytes += snapCutBytes + int64(len(c.Leaves))*4
	}
	sn.sets[n] = list
}

// snapCutBytes approximates the in-memory footprint of one Cut header.
const snapCutBytes = int64(64)

// NodeHashes returns the baseline graph's ordered cone hashes — the
// mapcache nearest-relative scan key.
func (sn *SlapSnapshot) NodeHashes() []uint64 { return sn.hashes }

// SnapshotBytes estimates the snapshot's memory footprint for cache
// accounting.
func (sn *SlapSnapshot) SnapshotBytes() int64 { return sn.bytes }

// MapCaptureContext runs the full two-phase SLAP flow and additionally
// records the snapshot that later MapDeltaContext calls remap against.
// The Result is identical to MapContext's for the single-round, no-choice
// configuration — the only one capture supports (see
// MapStreamCaptureContext).
func (s *SLAP) MapCaptureContext(ctx context.Context, g *aig.AIG) (*mapper.Result, *SlapSnapshot, error) {
	filtered, err := s.FilterCutsContext(ctx, g)
	if err != nil {
		return nil, nil, err
	}
	snap := s.NewSnapshot(g)
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			snap.capture(n, filtered.Sets[n])
		}
	}
	res, err := mapper.Map(g, mapper.Options{Library: s.Library, CutSets: filtered})
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	res.PolicyName = "slap"
	return res, snap, nil
}

// MapStreamCaptureContext is MapCaptureContext's fused streaming
// equivalent: the snapshot captures each level's filtered lists just
// before the incremental mapper consumes them (and before the enumerator
// retires the level's storage). Like MapCaptureContext, it always runs the
// single-round, no-choice flow: snapshots exist to feed the ECO delta
// path, which is defined for that configuration only (MapCached gates
// capture accordingly).
func (s *SLAP) MapStreamCaptureContext(ctx context.Context, g *aig.AIG) (*mapper.Result, *SlapSnapshot, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	st, err := mapper.NewStream(g, mapper.Options{Library: s.Library})
	if err != nil {
		return nil, nil, err
	}
	snap := s.NewSnapshot(g)
	res, err := s.streamFiltered(ctx, g, nil, func(n uint32, cs, _ []cuts.Cut) {
		if g.IsAnd(n) {
			snap.capture(n, cs)
		}
		st.ConsumeNode(n, cs)
	})
	if err != nil {
		return nil, nil, err
	}
	st.SetPeakCuts(res.PeakCuts)
	r, err := st.Finish()
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	r.PolicyName = "slap"
	return r, snap, nil
}

// MapDeltaContext maps g by reusing the snapshot of a structurally similar
// baseline mapped under the same SLAP configuration: slap-clean nodes take
// their ML-filtered cut lists from the snapshot through the monotone id
// alignment (skipping all inference), dirty nodes are re-classified, and
// the combined lists feed the unchanged mapper. It returns the result, a
// fresh snapshot of g (so ECO chains keep delta-remapping), and the dirty
// statistics. The Result is byte-identical to MapContext(g).
func (s *SLAP) MapDeltaContext(ctx context.Context, g *aig.AIG, snap *SlapSnapshot) (*mapper.Result, *SlapSnapshot, *mapper.DeltaStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	if snap == nil {
		return nil, nil, nil, ErrSlapDeltaIneligible
	}
	if sig := s.ConfigSig(); sig != snap.sig {
		return nil, nil, nil, fmt.Errorf("%w: have %q, want %q", ErrSlapSnapshotMismatch, snap.sig, sig)
	}
	if d := g.MaxLevel(); d != snap.depth {
		return nil, nil, nil, fmt.Errorf("%w: graph depth %d != baseline depth %d (every level feature rescales)",
			ErrSlapDeltaIneligible, d, snap.depth)
	}

	al := aig.Align(g.ConeHashes(), snap.hashes)
	clean := slapClean(g, al, snap)

	enum := &cuts.Enumerator{G: g, Policy: cuts.UnlimitedPolicy{}, MergeCap: s.MergeCap, Workers: s.Workers}
	res := enum.Run()
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}

	// Partition the AND nodes and pre-size the translated-leaf arena.
	st := &mapper.DeltaStats{}
	var dirty []uint32
	var leafNeed int
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		st.TotalAnds++
		if clean[n] {
			for i := range snap.sets[al.NewToOld[n]] {
				leafNeed += len(snap.sets[al.NewToOld[n]][i].Leaves)
			}
		} else {
			dirty = append(dirty, n)
		}
	}

	// Clean nodes: translate the snapshot's filtered lists. The alignment is
	// monotone, so list order, leaf order and therefore every downstream
	// tie-break are preserved; external-feature equality (checked by
	// slapClean transitively over the fanin cone) makes the embeddings — and
	// hence the keep decisions being reused — bit-identical.
	leaves := make([]uint32, 0, leafNeed)
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) || !clean[n] {
			continue
		}
		old := snap.sets[al.NewToOld[n]]
		list := make([]cuts.Cut, len(old))
		for i := range old {
			c := old[i]
			base := len(leaves)
			for _, l := range c.Leaves {
				leaves = append(leaves, uint32(al.OldToNew[l]))
			}
			c.Leaves = leaves[base : base+len(c.Leaves) : base+len(c.Leaves)]
			c.Sig = cuts.LeafSig(c.Leaves)
			list[i] = c
		}
		res.Sets[n] = list
		st.ReusedCuts += len(list)
	}

	// Dirty nodes: run the ML keep decision as usual.
	if len(dirty) > 0 {
		emb := embed.NewEmbedder(g)
		emb.PrecomputeAll()
		if err := s.filterSubset(ctx, emb, dirty, res.Sets, nil); err != nil {
			return nil, nil, nil, err
		}
	}
	st.DirtyAnds = len(dirty)
	if st.TotalAnds > 0 {
		st.DirtyFraction = float64(st.DirtyAnds) / float64(st.TotalAnds)
	}

	total := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			total += len(res.Sets[n])
		}
	}
	res.TotalCuts = total

	// Chain: snapshot the new graph's filtered lists before the mapper's
	// fallback pass can mutate them.
	next := s.NewSnapshot(g)
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			next.capture(n, res.Sets[n])
		}
	}

	mres, err := mapper.Map(g, mapper.Options{Library: s.Library, CutSets: res})
	if err != nil {
		return nil, nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	mres.PolicyName = "slap"
	return mres, next, st, nil
}

// slapClean computes the SLAP clean set: a node is clean when its ordered
// cone hash matched the baseline, its external features (fanout count,
// inverted-fanout flag, reverse level) are unchanged, and all its fanins
// are clean. The transitive fanin condition covers every node a cut
// embedding rooted at n can read: fanins, leaves, and leaves' fanins all
// lie in n's transitive fanin cone. Iterating ids ascending is the level
// wavefront, so one pass suffices.
func slapClean(g *aig.AIG, al *aig.Alignment, snap *SlapSnapshot) []bool {
	clean := make([]bool, g.NumNodes())
	for n := uint32(0); n < uint32(g.NumNodes()); n++ {
		old := al.NewToOld[n]
		if old < 0 {
			continue
		}
		if g.Fanout(n) != snap.fanout[old] ||
			g.HasInvertedFanout(n) != snap.invOut[old] ||
			g.ReverseLevel(n) != snap.revLevel[old] {
			continue
		}
		if g.IsAnd(n) {
			f0, f1 := g.Fanins(n)
			if !clean[f0.Node()] || !clean[f1.Node()] {
				continue
			}
		}
		clean[n] = true
	}
	return clean
}
