// Package core implements SLAP, the paper's primary contribution: a
// supervised-learning replacement for the cut sorting and filtering
// heuristics of a priority-cuts technology mapper.
//
// The flow mirrors the paper's framework (Fig. 4):
//
//  1. Training (§IV-B): random-shuffle mappings of two 16-bit adders
//     produce cut datapoints labelled with delay deciles; a small CNN
//     (internal/nn) learns to predict a cut's QoR class.
//  2. Mapping (§IV-C, prepare_map/read_cuts): all k-cuts of the subject
//     graph are enumerated, embedded and classified; per node, the
//     predicted classes drive a good/average/trivial keep decision; the
//     pruned cut lists feed the unmodified mapper.
//  3. Explainability (§V-D): permutation feature importance over the
//     validation set.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"slap/internal/aig"
	"slap/internal/choice"
	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/dataset"
	"slap/internal/embed"
	"slap/internal/library"
	"slap/internal/lutmap"
	"slap/internal/mapper"
	"slap/internal/nn"
)

// Default QoR-class thresholds (paper §IV-C): classes 0..3 are "good",
// 4..6 "average", above "bad".
const (
	DefaultGoodMax = 3
	DefaultAvgMax  = 6
)

// SLAP bundles a trained cut classifier with the filtering thresholds and
// the target library.
type SLAP struct {
	// Model is the trained cut classifier.
	Model *nn.Model
	// Library is the target standard-cell library.
	Library *library.Library
	// GoodMax and AvgMax are the class thresholds of the keep decision.
	GoodMax, AvgMax int
	// MergeCap bounds the exhaustive pre-filter enumeration (0 = default).
	MergeCap int
	// Workers bounds parallelism for both cut enumeration (the level
	// wavefront of cuts.Enumerator) and inference (0 = GOMAXPROCS,
	// 1 = fully sequential).
	Workers int
	// UseExpectedClass scores cuts by the probability-weighted expected
	// class instead of the paper's hard argmax. An evaluated-but-off-by-
	// default variant (see EXPERIMENTS.md §ablations).
	UseExpectedClass bool
	// MaxCutsPerNode, when positive, caps how many threshold-passing cuts
	// each node keeps, ranked by predicted quality. Zero or negative keeps
	// them all (the paper's literal keep-all-good rule, the default).
	MaxCutsPerNode int
	// Batch, when set, routes inference through a batched backend: each
	// worker submits a whole node's cut embeddings as one PredictBatch call
	// instead of running the per-sample Model forward pass per cut. Both
	// *infer.Engine and *infer.Coalescer satisfy it; nil keeps the
	// per-sample path. The batched kernels accumulate in the per-sample
	// order, so filtering decisions — and hence mapping QoR — are identical
	// either way.
	Batch Batcher
	// Pool, when set, lets the fused streaming flow (MapStreamContext /
	// MapLUTStreamContext) recycle cut-arena storage across runs of the
	// same graph shape. The two-phase flow ignores it.
	Pool *cuts.Pool
	// Rounds selects multi-round mapping: round 1 is the delay-optimal
	// (depth-optimal for LUTs) pass, later rounds re-select covers by area
	// flow under the round-1 required times, and the final round adds
	// exact-area refinement. Values <= 1 keep today's single-pass flow.
	// Recovery rounds draw from a wider cut pool (the average-class cuts the
	// keep decision would have dropped), scored by the same single inference
	// pass — no extra model evaluations per round.
	Rounds int
	// DelayFactor relaxes the recovery rounds' required times: the delay
	// target is round-1 delay times this factor. Values < 1 (including the
	// zero value) clamp to 1.0, i.e. no delay degradation is allowed.
	DelayFactor float64
	// Choices maps over a choice view of the subject graph instead of the
	// graph itself: functionally equivalent variants (internal/opt rewrites)
	// are grafted in and the enumerator matches the union of each
	// equivalence class's cuts (internal/choice). The view shares the base
	// graph's PIs and POs, so results verify against the original graph.
	Choices bool
	// ChoiceOpts tunes choice-view construction when Choices is set (zero
	// value = the choice package defaults). Its Workers field is a pure
	// scheduling knob; every other field changes the built view and is part
	// of ConfigSig.
	ChoiceOpts choice.Options
	// Views, when non-nil, caches built choice views content-addressed by
	// (graph, ChoiceOpts) with singleflight dedup, so repeat Choices
	// mappings of the same design skip view construction entirely. Nil
	// builds a fresh view per call.
	Views *choice.Cache
}

// inferScratch is one worker's reusable embedding storage: a single-sample
// buffer for the per-sample path and a growable slab for whole-node batch
// submissions. CutInto overwrites every position and the model never
// retains its input, so reuse across cuts and nodes is exact.
type inferScratch struct {
	x    []float64
	slab []float64
	xs   [][]float64
}

func (sc *inferScratch) sample() []float64 {
	if sc.x == nil {
		sc.x = make([]float64, embed.Size)
	}
	return sc.x
}

func (sc *inferScratch) batch(n int) ([]float64, [][]float64) {
	if cap(sc.slab) < n*embed.Size {
		sc.slab = make([]float64, n*embed.Size)
	}
	if cap(sc.xs) < n {
		sc.xs = make([][]float64, n)
	}
	return sc.slab[:n*embed.Size], sc.xs[:n]
}

// Batcher classifies batches of cut embeddings. It is satisfied by
// infer.Engine (direct batched kernels) and infer.Coalescer (cross-caller
// micro-batching); core declares the interface locally so it does not
// depend on internal/infer.
type Batcher interface {
	// PredictBatch returns one probability vector per input, or an error
	// (e.g. ctx done, backend closed) that fails the whole mapping call.
	PredictBatch(ctx context.Context, xs [][]float64) ([][]float64, error)
}

// predictScore returns the model's continuous QoR score for a cut embedding
// (lower is better): the paper's argmax class by default, or the
// probability-weighted expected class, which doubles as the ranking
// priority when MaxCutsPerNode is set.
func (s *SLAP) predictScore(x []float64) float64 {
	if !s.UseExpectedClass {
		return float64(s.Model.PredictClass(x))
	}
	return scoreFromProbs(s.Model.Predict(x), true)
}

// argmaxClass mirrors nn.Model.PredictClass exactly (first-wins on ties) so
// batched and per-sample classification agree on every input.
func argmaxClass(probs []float64) int {
	best, bi := math.Inf(-1), 0
	for c, p := range probs {
		if p > best {
			best, bi = p, c
		}
	}
	return bi
}

// scoreFromProbs converts a probability vector to the QoR score, summing in
// ascending class order like predictScore does.
func scoreFromProbs(probs []float64, expected bool) float64 {
	if !expected {
		return float64(argmaxClass(probs))
	}
	e := 0.0
	for c, p := range probs {
		e += float64(c) * p
	}
	return e
}

// New wraps a (typically deserialised) model and a library into a SLAP
// instance with the paper's default thresholds.
func New(model *nn.Model, lib *library.Library) *SLAP {
	return &SLAP{
		Model:   model,
		Library: lib,
		GoodMax: DefaultGoodMax,
		AvgMax:  DefaultAvgMax,
	}
}

// TrainOptions configures end-to-end model training.
type TrainOptions struct {
	// Library is the target cell library (required).
	Library *library.Library
	// Circuits are the training designs; nil uses the paper's two 16-bit
	// adders (ripple-carry and carry-lookahead).
	Circuits []*aig.AIG
	// MapsPerCircuit is the number of random-shuffle mappings per circuit
	// (0 = 400).
	MapsPerCircuit int
	// Epochs is the number of training epochs (0 = 50, as in the paper).
	Epochs int
	// Filters is the convolution width (0 = 128, as in the paper).
	Filters int
	// Seed drives data generation, splitting and initialisation.
	Seed int64
	// ValFraction is the held-out fraction (0 = 0.2).
	ValFraction float64
	// Metric selects the QoR metric that labels training cuts (default:
	// delay, as in the paper; area and ADP are supported per §IV-B).
	Metric dataset.Metric
	// Dataset, when set, skips data generation entirely and trains on the
	// provided samples — the hand-off point for genjob's sharded,
	// fault-tolerant sweeps (slap-train -shards / -resume).
	Dataset *dataset.Dataset
	// Verbose prints per-epoch progress.
	Verbose bool
}

// TrainReport summarises a training run (paper §V-B).
type TrainReport struct {
	// Samples is the dataset size; TrainSamples/ValSamples the split sizes.
	Samples, TrainSamples, ValSamples int
	// ClassHistogram counts samples per QoR class.
	ClassHistogram []int
	// MultiClassAccuracy is the 10-class validation accuracy (paper: ~34%).
	MultiClassAccuracy float64
	// BinaryAccuracy is the keep/drop validation accuracy with the paper's
	// threshold of class 6 (paper: 93.4%).
	BinaryAccuracy float64
	// History holds per-epoch training stats.
	History []nn.EpochStats
	// ValX and ValY retain the validation set for explainability runs.
	ValX [][]float64
	ValY []int
}

// Train generates training data, fits the classifier and returns the SLAP
// instance plus an accuracy report.
func Train(opt TrainOptions) (*SLAP, *TrainReport, error) {
	if opt.Library == nil {
		return nil, nil, fmt.Errorf("core: TrainOptions.Library is required")
	}
	circuitsList := opt.Circuits
	if circuitsList == nil {
		circuitsList = []*aig.AIG{circuits.TrainRC16(), circuits.TrainCLA16()}
	}
	maps := opt.MapsPerCircuit
	if maps == 0 {
		maps = 400
	}
	epochs := opt.Epochs
	if epochs == 0 {
		epochs = 50
	}
	filters := opt.Filters
	if filters == 0 {
		filters = 128
	}
	valFrac := opt.ValFraction
	if valFrac == 0 {
		valFrac = 0.2
	}

	ds := opt.Dataset
	if ds == nil {
		var err error
		ds, err = dataset.Generate(dataset.Config{
			Circuits:       circuitsList,
			Library:        opt.Library,
			MapsPerCircuit: maps,
			Seed:           opt.Seed,
			Metric:         opt.Metric,
		})
		if err != nil {
			return nil, nil, err
		}
	} else if ds.Len() == 0 {
		return nil, nil, fmt.Errorf("core: TrainOptions.Dataset is empty")
	}
	train, val := ds.Split(1-valFrac, opt.Seed+1)

	rng := rand.New(rand.NewSource(opt.Seed + 2))
	model := nn.NewModel(embed.Rows, embed.Cols, filters, ds.Classes, rng)
	model.FitNormalization(train.X)
	history, err := model.Train(train.X, train.Y, nn.TrainConfig{
		Epochs:  epochs,
		Seed:    opt.Seed + 3,
		Verbose: opt.Verbose,
	})
	if err != nil {
		return nil, nil, err
	}

	report := &TrainReport{
		Samples:            ds.Len(),
		TrainSamples:       train.Len(),
		ValSamples:         val.Len(),
		ClassHistogram:     ds.ClassHistogram(),
		MultiClassAccuracy: model.Accuracy(val.X, val.Y),
		BinaryAccuracy:     model.BinaryAccuracy(val.X, val.Y, DefaultAvgMax),
		History:            history,
		ValX:               val.X,
		ValY:               val.Y,
	}
	s := &SLAP{
		Model:   model,
		Library: opt.Library,
		GoodMax: DefaultGoodMax,
		AvgMax:  DefaultAvgMax,
	}
	return s, report, nil
}

// FilterCuts runs the prepare_map + inference steps: it enumerates all
// k-cuts of g (no heuristic pruning), classifies every cut, and applies the
// good/average/trivial keep decision per node. The returned cut sets are
// what read_cuts feeds to the mapper; TotalCuts is the SLAP "Cuts Used"
// metric.
func (s *SLAP) FilterCuts(g *aig.AIG) *cuts.Result {
	res, _ := s.FilterCutsContext(context.Background(), g)
	return res
}

// FilterCutsContext is FilterCuts with cooperative cancellation: the
// classification workers poll ctx between nodes and the whole call returns
// ctx.Err() as soon as the deadline passes or the caller gives up — the
// per-request timeout path of the slap-serve front end.
func (s *SLAP) FilterCutsContext(ctx context.Context, g *aig.AIG) (*cuts.Result, error) {
	res, _, err := s.filterCutsChoices(ctx, g, nil)
	return res, err
}

// filterCutsChoices is the shared two-phase filtering front end: enumerate
// (optionally across a choice source), classify, apply the keep decision.
// When Rounds > 1 it additionally returns the per-node recovery pool — the
// average-class cuts the keep decision dropped, ranked by their already-
// computed scores — for the mapper's area-recovery rounds.
func (s *SLAP) filterCutsChoices(ctx context.Context, g *aig.AIG, ch cuts.ChoiceSource) (*cuts.Result, [][]cuts.Cut, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	enum := &cuts.Enumerator{G: g, Policy: cuts.UnlimitedPolicy{}, MergeCap: s.MergeCap, Workers: s.Workers, Choices: ch}
	res := enum.Run()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	emb := embed.NewEmbedder(g)
	emb.PrecomputeAll()

	nodes := make([]uint32, 0, g.NumNodes())
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			nodes = append(nodes, n)
		}
	}
	var extras [][]cuts.Cut
	if s.Rounds > 1 {
		extras = make([][]cuts.Cut, g.NumNodes())
	}
	if err := s.filterSubset(ctx, emb, nodes, res.Sets, extras); err != nil {
		return nil, nil, err
	}

	total := 0
	for _, n := range nodes {
		total += len(res.Sets[n])
	}
	res.TotalCuts = total
	return res, extras, nil
}

// filterSubset runs the ML keep decision over the listed AND nodes,
// rewriting sets[n] in place: the strided worker loop shared by the full
// filter pass and the ECO delta path (which hands it dirty nodes only),
// with first-error-wins cancellation of the siblings — e.g. a batching
// backend closing mid-map. A non-nil extras receives each node's recovery
// pool (see filterNode).
func (s *SLAP) filterSubset(ctx context.Context, emb *embed.Embedder, nodes []uint32, sets, extras [][]cuts.Cut) error {
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &inferScratch{}
			for ni := w; ni < len(nodes); ni += workers {
				if cctx.Err() != nil {
					return
				}
				n := nodes[ni]
				out, ex, err := s.filterNode(cctx, emb, n, sets[n], sc)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				sets[n] = out
				if extras != nil {
					extras[n] = ex
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// nonTrivialIdx lists the indices of the non-trivial cuts of n within cs.
func nonTrivialIdx(n uint32, cs []cuts.Cut) []int {
	idx := make([]int, 0, len(cs))
	for i := range cs {
		if !cs[i].IsTrivial(n) {
			idx = append(idx, i)
		}
	}
	return idx
}

// batchProbs embeds the cuts selected by idx into the worker's reusable
// slab and classifies them with a single PredictBatch submission, so the
// batching backend sees a whole node's cuts at once. PredictBatch blocks
// until the batch is computed and the backend keeps no reference to the
// inputs afterwards, so the slab is free for the worker's next node.
func (s *SLAP) batchProbs(ctx context.Context, emb *embed.Embedder, n uint32, cs []cuts.Cut, idx []int, sc *inferScratch) ([][]float64, error) {
	slab, xs := sc.batch(len(idx))
	for k, i := range idx {
		x := slab[k*embed.Size : (k+1)*embed.Size]
		emb.CutInto(n, &cs[i], x)
		xs[k] = x
	}
	return s.Batch.PredictBatch(ctx, xs)
}

// scoreCuts returns the QoR score of every non-trivial cut of n: scores[k]
// belongs to cs[idx[k]]. With a Batcher set, the node's embeddings go out
// as one batch; otherwise each cut runs the per-sample forward pass.
func (s *SLAP) scoreCuts(ctx context.Context, emb *embed.Embedder, n uint32, cs []cuts.Cut, sc *inferScratch) (idx []int, scores []float64, err error) {
	idx = nonTrivialIdx(n, cs)
	if len(idx) == 0 {
		return idx, nil, nil
	}
	scores = make([]float64, len(idx))
	if s.Batch == nil {
		x := sc.sample()
		for k, i := range idx {
			emb.CutInto(n, &cs[i], x)
			scores[k] = s.predictScore(x)
		}
		return idx, scores, nil
	}
	probs, err := s.batchProbs(ctx, emb, n, cs, idx, sc)
	if err != nil {
		return nil, nil, err
	}
	for k, p := range probs {
		scores[k] = scoreFromProbs(p, s.UseExpectedClass)
	}
	return idx, scores, nil
}

// filterNode applies the paper's keep decision to one node's cut list:
// classify every cut; keep the "good" cuts (class <= GoodMax) when any
// exist, otherwise the "average" cuts (class <= AvgMax), otherwise only the
// trivial cut. Kept cuts are ordered by predicted quality and capped at
// MaxCutsPerNode — the learned priority-cuts ranking.
//
// When Rounds > 1 it also returns the node's recovery pool: the acceptable
// cuts the keep decision dropped (the average class shadowed by good cuts,
// plus any MaxCutsPerNode overflow), score-ranked. Bad-class cuts never
// enter either list, and the pool reuses the scores of the single inference
// pass above — the per-round pruning adds no model evaluations.
func (s *SLAP) filterNode(ctx context.Context, emb *embed.Embedder, n uint32, cs []cuts.Cut, sc *inferScratch) ([]cuts.Cut, []cuts.Cut, error) {
	idx, scores, err := s.scoreCuts(ctx, emb, n, cs, sc)
	if err != nil {
		return nil, nil, err
	}
	type scored struct {
		cut   cuts.Cut
		score float64
	}
	var good, avg []scored
	for k, i := range idx {
		score := scores[k]
		class := int(score + 0.5)
		switch {
		case class <= s.GoodMax:
			good = append(good, scored{cut: cs[i], score: score})
		case class <= s.AvgMax:
			avg = append(avg, scored{cut: cs[i], score: score})
		}
	}
	keep, rest := good, avg
	if len(keep) == 0 {
		keep, rest = avg, nil
	}
	if len(keep) == 0 {
		// No acceptable cut: only the trivial cut survives; the mapper's
		// elementary-fanin-cut fallback keeps the node coverable.
		return []cuts.Cut{trivialOf(n, cs)}, nil, nil
	}
	sort.SliceStable(keep, func(i, j int) bool { return keep[i].score < keep[j].score })
	var overflow []scored
	if s.MaxCutsPerNode > 0 && len(keep) > s.MaxCutsPerNode {
		overflow = keep[s.MaxCutsPerNode:]
		keep = keep[:s.MaxCutsPerNode]
	}
	out := make([]cuts.Cut, 0, len(keep)+1)
	for _, k := range keep {
		out = append(out, k.cut)
	}
	out = append(out, trivialOf(n, cs))
	var extra []cuts.Cut
	if s.Rounds > 1 && len(overflow)+len(rest) > 0 {
		pool := make([]scored, 0, len(overflow)+len(rest))
		pool = append(pool, overflow...)
		pool = append(pool, rest...)
		sort.SliceStable(pool, func(i, j int) bool { return pool[i].score < pool[j].score })
		extra = make([]cuts.Cut, len(pool))
		for i := range pool {
			extra[i] = pool[i].cut
		}
	}
	return out, extra, nil
}

func trivialOf(n uint32, cs []cuts.Cut) cuts.Cut {
	for i := range cs {
		if cs[i].IsTrivial(n) {
			return cs[i]
		}
	}
	// The enumerator always appends the trivial cut; this is unreachable
	// for enumerator-produced lists but keeps the function total.
	return cuts.Cut{Leaves: []uint32{n}}
}

// choiceGraph returns the graph to map and the choice source to enumerate
// with: the subject graph itself when Choices is off, or a choice view
// over it (which shares g's PI/PO interface, so downstream verification
// against g is unchanged) — checked out of the Views cache when one is
// configured, built fresh otherwise. Construction honours ctx: a dropped
// client or expired deadline aborts the build mid-phase instead of
// burning the full SAT budget.
func (s *SLAP) choiceGraph(ctx context.Context, g *aig.AIG) (*aig.AIG, cuts.ChoiceSource, error) {
	if !s.Choices {
		return g, nil, nil
	}
	var v *choice.View
	var err error
	if s.Views != nil {
		v, err = s.Views.Checkout(ctx, g, s.ChoiceOpts)
	} else {
		v, err = choice.BuildContext(ctx, g, s.ChoiceOpts)
	}
	if err != nil {
		return nil, nil, err
	}
	return v.G, v, nil
}

// Map runs the full SLAP flow on g: filter cuts with the model, then map
// with the unchanged mapper (Boolean matching, arrival update and cover
// selection untouched, as in the paper). With Rounds/Choices set, the flow
// becomes multi-round mapping over a choice view (see Options fields).
func (s *SLAP) Map(g *aig.AIG) (*mapper.Result, error) {
	return s.MapContext(context.Background(), g)
}

// MapContext is Map with cooperative cancellation between flow stages and
// inside the classification workers (see FilterCutsContext).
func (s *SLAP) MapContext(ctx context.Context, g *aig.AIG) (*mapper.Result, error) {
	mg, ch, err := s.choiceGraph(ctx, g)
	if err != nil {
		return nil, err
	}
	filtered, extras, err := s.filterCutsChoices(ctx, mg, ch)
	if err != nil {
		return nil, err
	}
	res, err := mapper.Map(mg, mapper.Options{
		Library: s.Library, CutSets: filtered,
		Rounds: s.Rounds, DelayFactor: s.DelayFactor, ExtraCuts: extras,
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.PolicyName = "slap"
	// Report the post-filter footprint (the fallback cuts the mapper added
	// for coverability are already included by Map).
	return res, nil
}

// MapLUT runs the SLAP flow against the K-LUT FPGA mapper instead of the
// standard-cell mapper — the extension the paper's introduction points to
// ("the findings of this work can be extended to benefit FPGA-mapping ...
// as the nature of the problem is the same"). The same ML-filtered cut
// sets feed the depth-oriented LUT coverer unchanged.
func (s *SLAP) MapLUT(g *aig.AIG) (*lutmap.Result, error) {
	return s.MapLUTContext(context.Background(), g)
}

// MapLUTContext is MapLUT with cooperative cancellation (see MapContext).
func (s *SLAP) MapLUTContext(ctx context.Context, g *aig.AIG) (*lutmap.Result, error) {
	mg, ch, err := s.choiceGraph(ctx, g)
	if err != nil {
		return nil, err
	}
	filtered, extras, err := s.filterCutsChoices(ctx, mg, ch)
	if err != nil {
		return nil, err
	}
	res, err := lutmap.Map(mg, lutmap.Options{
		CutSets: filtered,
		Rounds:  s.Rounds, DelayFactor: s.DelayFactor, ExtraCuts: extras,
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.PolicyName = "slap"
	return res, nil
}

// NodeCutClasses lists the predicted QoR class of every non-trivial cut of
// one AND node, in the enumeration order of the cut set.
type NodeCutClasses struct {
	// Node is the subject-graph node.
	Node uint32
	// Classes holds one predicted class (0..Classes-1) per non-trivial cut.
	Classes []int
}

// Classification is the result of ClassifyContext — the inference half of
// the SLAP flow without the keep decision or the mapper, served by the
// slap-serve /v1/classify endpoint.
type Classification struct {
	// Nodes lists per-node cut classes in ascending node order.
	Nodes []NodeCutClasses
	// Histogram counts classified cuts per QoR class.
	Histogram []int
	// TotalCuts is the number of classified (non-trivial) cuts.
	TotalCuts int
}

// ClassifyContext enumerates all k-cuts of g and predicts each non-trivial
// cut's QoR class, without filtering or mapping. Parallelism follows
// s.Workers; cancellation follows ctx as in FilterCutsContext.
func (s *SLAP) ClassifyContext(ctx context.Context, g *aig.AIG) (*Classification, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	enum := &cuts.Enumerator{G: g, Policy: cuts.UnlimitedPolicy{}, MergeCap: s.MergeCap, Workers: s.Workers}
	res := enum.Run()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	emb := embed.NewEmbedder(g)
	emb.PrecomputeAll()

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nodes := make([]uint32, 0, g.NumNodes())
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			nodes = append(nodes, n)
		}
	}
	perNode := make([][]int, len(nodes))
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := &inferScratch{}
			for ni := w; ni < len(nodes); ni += workers {
				if cctx.Err() != nil {
					return
				}
				n := nodes[ni]
				classes, err := s.classifyNode(cctx, emb, n, res.Sets[n], sc)
				if err != nil {
					errOnce.Do(func() { firstErr = err; cancel() })
					return
				}
				perNode[ni] = classes
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := &Classification{Histogram: make([]int, s.Model.Classes)}
	for ni, n := range nodes {
		out.Nodes = append(out.Nodes, NodeCutClasses{Node: n, Classes: perNode[ni]})
		for _, c := range perNode[ni] {
			out.Histogram[c]++
			out.TotalCuts++
		}
	}
	return out, nil
}

// classifyNode predicts the class of every non-trivial cut of n, via one
// batched submission when a Batcher is set.
func (s *SLAP) classifyNode(ctx context.Context, emb *embed.Embedder, n uint32, cs []cuts.Cut, sc *inferScratch) ([]int, error) {
	idx := nonTrivialIdx(n, cs)
	classes := make([]int, len(idx))
	if len(idx) == 0 {
		return classes, nil
	}
	if s.Batch == nil {
		x := sc.sample()
		for k, i := range idx {
			emb.CutInto(n, &cs[i], x)
			classes[k] = s.Model.PredictClass(x)
		}
		return classes, nil
	}
	probs, err := s.batchProbs(ctx, emb, n, cs, idx, sc)
	if err != nil {
		return nil, err
	}
	for k, p := range probs {
		classes[k] = argmaxClass(p)
	}
	return classes, nil
}
