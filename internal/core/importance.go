package core

import (
	"math/rand"
	"sort"

	"slap/internal/embed"
	"slap/internal/nn"
)

// Importance is one feature's permutation-importance score (paper Fig. 5):
// the accuracy degradation when the feature is randomly permuted across the
// validation samples, averaged over several rounds. Higher means the model
// leans on the feature more.
type Importance struct {
	// Name is the feature (group) name.
	Name string
	// MultiClassDrop is the mean drop in 10-class accuracy.
	MultiClassDrop float64
	// BinaryDrop is the mean drop in keep/drop (binary) accuracy.
	BinaryDrop float64
}

// PermutationImportance permutes each cut-embedding feature group for
// `rounds` rounds and measures the accuracy degradation of the model on
// (xs, ys). Results are sorted by descending multi-class drop.
func PermutationImportance(model *nn.Model, xs [][]float64, ys []int, rounds int, seed int64) []Importance {
	if rounds <= 0 {
		rounds = 10
	}
	baseMulti := model.Accuracy(xs, ys)
	baseBin := model.BinaryAccuracy(xs, ys, DefaultAvgMax)
	groups := embed.FeatureGroups()
	rng := rand.New(rand.NewSource(seed))

	// Working copy so permutations never touch the caller's data.
	work := make([][]float64, len(xs))
	for i, x := range xs {
		work[i] = append([]float64(nil), x...)
	}
	perm := make([]int, len(xs))

	out := make([]Importance, 0, len(groups))
	for _, g := range groups {
		var dMulti, dBin float64
		for r := 0; r < rounds; r++ {
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			// Swap in permuted values for this group's positions.
			for i := range work {
				src := xs[perm[i]]
				for _, p := range g.Positions {
					work[i][p] = src[p]
				}
			}
			dMulti += baseMulti - model.Accuracy(work, ys)
			dBin += baseBin - model.BinaryAccuracy(work, ys, DefaultAvgMax)
			// Restore.
			for i := range work {
				for _, p := range g.Positions {
					work[i][p] = xs[i][p]
				}
			}
		}
		out = append(out, Importance{
			Name:           g.Name,
			MultiClassDrop: dMulti / float64(rounds),
			BinaryDrop:     dBin / float64(rounds),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].MultiClassDrop > out[j].MultiClassDrop
	})
	return out
}
