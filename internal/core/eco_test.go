package core

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"slap/internal/circuits"
	"slap/internal/mapcache"
	"slap/internal/mapper"
)

func slapNetlistBytes(t *testing.T, r *mapper.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Netlist.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func requireSameSlapResult(t *testing.T, name string, full, delta *mapper.Result) {
	t.Helper()
	if fb, db := slapNetlistBytes(t, full), slapNetlistBytes(t, delta); !bytes.Equal(fb, db) {
		t.Fatalf("%s: netlist bytes differ:\n--- full ---\n%s\n--- delta ---\n%s", name, fb, db)
	}
	if full.Area != delta.Area || full.Delay != delta.Delay || full.EstimatedDelay != delta.EstimatedDelay {
		t.Fatalf("%s: QoR differs: full (%v, %v, %v), delta (%v, %v, %v)", name,
			full.Area, full.Delay, full.EstimatedDelay, delta.Area, delta.Delay, delta.EstimatedDelay)
	}
	if full.CutsConsidered != delta.CutsConsidered || full.MatchAttempts != delta.MatchAttempts {
		t.Fatalf("%s: counters differ: cuts %d/%d, attempts %d/%d", name,
			full.CutsConsidered, delta.CutsConsidered, full.MatchAttempts, delta.MatchAttempts)
	}
	if delta.PolicyName != "slap" {
		t.Fatalf("%s: policy %q, want slap", name, delta.PolicyName)
	}
}

// TestSlapMapDeltaByteIdentical pins the SLAP-level ECO: delta-remapping an
// edited design against a captured baseline reproduces the full flow's
// result byte-for-byte while re-running inference on the dirty cone only,
// for both capture flows and across worker counts.
func TestSlapMapDeltaByteIdentical(t *testing.T) {
	base := circuits.BoothMultiplier(6)
	edited := circuits.Perturb(base, 7, 0.03)
	ctx := context.Background()

	for _, streaming := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			name := "twophase"
			if streaming {
				name = "stream"
			}
			if workers > 1 {
				name += "/par"
			}
			t.Run(name, func(t *testing.T) {
				s := untrained(3)
				s.Workers = workers

				var snap *SlapSnapshot
				var err error
				if streaming {
					_, snap, err = s.MapStreamCaptureContext(ctx, base)
				} else {
					_, snap, err = s.MapCaptureContext(ctx, base)
				}
				if err != nil {
					t.Fatal(err)
				}
				if snap.SnapshotBytes() <= 0 || len(snap.NodeHashes()) != base.NumNodes() {
					t.Fatalf("snapshot malformed: %d bytes, %d hashes",
						snap.SnapshotBytes(), len(snap.NodeHashes()))
				}

				full, err := s.MapContext(ctx, edited)
				if err != nil {
					t.Fatal(err)
				}
				delta, next, st, err := s.MapDeltaContext(ctx, edited, snap)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSlapResult(t, "delta", full, delta)
				if st.DirtyAnds == 0 || st.DirtyAnds >= st.TotalAnds {
					t.Fatalf("dirty cone %d/%d ANDs: edit not detected or nothing reused",
						st.DirtyAnds, st.TotalAnds)
				}
				if st.ReusedCuts == 0 {
					t.Fatal("no cuts reused")
				}

				// The chained snapshot works too: a second edit delta-remaps
				// against the first delta's own capture.
				edited2 := circuits.Perturb(edited, 8, 0.03)
				full2, err := s.MapContext(ctx, edited2)
				if err != nil {
					t.Fatal(err)
				}
				delta2, _, st2, err := s.MapDeltaContext(ctx, edited2, next)
				if err != nil {
					t.Fatal(err)
				}
				requireSameSlapResult(t, "chained", full2, delta2)
				if st2.ReusedCuts == 0 {
					t.Fatal("chained delta reused nothing")
				}
			})
		}
	}
}

// TestSlapMapDeltaIdenticalGraph pins the degenerate ECO: resubmitting the
// baseline graph itself reuses every node.
func TestSlapMapDeltaIdenticalGraph(t *testing.T) {
	g := circuits.TrainRC16()
	s := untrained(5)
	ctx := context.Background()
	full, snap, err := s.MapCaptureContext(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	delta, _, st, err := s.MapDeltaContext(ctx, g, snap)
	if err != nil {
		t.Fatal(err)
	}
	requireSameSlapResult(t, "identical", full, delta)
	if st.DirtyAnds != 0 {
		t.Fatalf("identical graph has %d dirty ANDs, want 0", st.DirtyAnds)
	}
}

// TestSlapMapDeltaMismatch pins the refusal contract: configuration drift
// and nil snapshots are rejected so callers fall back to a cold map.
func TestSlapMapDeltaMismatch(t *testing.T) {
	g := circuits.TrainRC16()
	s := untrained(5)
	ctx := context.Background()
	_, snap, err := s.MapCaptureContext(ctx, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.MapDeltaContext(ctx, g, nil); !errors.Is(err, ErrSlapDeltaIneligible) {
		t.Fatalf("nil snapshot: err = %v", err)
	}
	drift := untrained(5)
	drift.GoodMax = s.GoodMax + 1
	drift.Model, drift.Library = s.Model, s.Library
	if _, _, _, err := drift.MapDeltaContext(ctx, g, snap); !errors.Is(err, ErrSlapSnapshotMismatch) {
		t.Fatalf("threshold drift: err = %v", err)
	}
	other := untrained(6) // different model pointer
	other.Library = s.Library
	if _, _, _, err := other.MapDeltaContext(ctx, g, snap); !errors.Is(err, ErrSlapSnapshotMismatch) {
		t.Fatalf("model drift: err = %v", err)
	}
}

// TestMapCachedFlow drives the serving entry point end to end: cold miss,
// exact O(1) repeat, and an ECO-served edit, with the verify hook running
// exactly once per fresh mapping.
func TestMapCachedFlow(t *testing.T) {
	s := untrained(3)
	cache := mapcache.New(0)
	ctx := context.Background()
	g := circuits.BoothMultiplier(6)
	verifies := 0
	opt := CachedOptions{ECO: true, Verify: func(*mapper.Result) bool { verifies++; return true }}

	cold, out, err := s.MapCached(ctx, g, cache, opt)
	if err != nil {
		t.Fatal(err)
	}
	if out.Hit || out.ECO || !out.Verified || verifies != 1 {
		t.Fatalf("cold map outcome %+v, verifies %d", out, verifies)
	}

	repeat, out, err := s.MapCached(ctx, g, cache, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Hit || out.ECO || repeat != cold || verifies != 1 {
		t.Fatalf("repeat outcome %+v (same result %v), verifies %d", out, repeat == cold, verifies)
	}

	// A localised edit near the POs (the shape real ECOs take) keeps the
	// cone overlap above the Nearest gate.
	edited := circuits.PerturbSpan(g, 7, 0.9, 1.0, 0.3)
	full, err := s.MapContext(ctx, edited)
	if err != nil {
		t.Fatal(err)
	}
	eco, out, err := s.MapCached(ctx, edited, cache, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ECO || out.Hit || out.DirtyFraction <= 0 || out.DirtyFraction >= 1 || verifies != 2 {
		t.Fatalf("eco outcome %+v, verifies %d", out, verifies)
	}
	requireSameSlapResult(t, "cached-eco", full, eco)

	st := cache.Stats()
	if st.Hits < 1 || st.ECOHits != 1 || st.Entries != 2 {
		t.Fatalf("cache stats %+v, want >=1 hit, 1 eco hit, 2 entries", st)
	}

	// The ECO result is itself cached: resubmitting the edit is an exact hit.
	if _, out, err = s.MapCached(ctx, edited, cache, opt); err != nil || !out.Hit {
		t.Fatalf("edited resubmission outcome %+v err %v", out, err)
	}

	// A nil cache degrades to a plain map.
	plain, out, err := s.MapCached(ctx, g, nil, opt)
	if err != nil || out.Hit || out.ECO || !out.Verified {
		t.Fatalf("nil-cache outcome %+v err %v", out, err)
	}
	requireSameSlapResult(t, "nil-cache", cold, plain)
}
