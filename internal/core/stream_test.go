package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/infer"
	"slap/internal/lutmap"
	"slap/internal/mapper"
)

func requireSameStreamResult(t *testing.T, name string, want, got *mapper.Result) {
	t.Helper()
	if want.Delay != got.Delay || want.Area != got.Area || want.EstimatedDelay != got.EstimatedDelay {
		t.Fatalf("%s: (delay, area, est) = (%v, %v, %v), want (%v, %v, %v)",
			name, got.Delay, got.Area, got.EstimatedDelay, want.Delay, want.Area, want.EstimatedDelay)
	}
	if want.CutsConsidered != got.CutsConsidered {
		t.Fatalf("%s: cuts considered %d, want %d", name, got.CutsConsidered, want.CutsConsidered)
	}
	if want.MatchAttempts != got.MatchAttempts {
		t.Fatalf("%s: match attempts %d, want %d", name, got.MatchAttempts, want.MatchAttempts)
	}
	if got.PolicyName != "slap" {
		t.Fatalf("%s: policy %q, want slap", name, got.PolicyName)
	}
	var wb, gb bytes.Buffer
	if err := want.Netlist.WriteBLIF(&wb); err != nil {
		t.Fatal(err)
	}
	if err := got.Netlist.WriteBLIF(&gb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("%s: netlist bytes differ", name)
	}
}

// TestMapStreamMatchesMapContext pins the fused SLAP pipeline to the
// two-phase flow: identical netlist bytes, metrics and counters, for both
// the per-sample and batched inference backends, across worker counts and
// arena pooling.
func TestMapStreamMatchesMapContext(t *testing.T) {
	graphs := []*circuitCase{
		{"rc16", circuits.TrainRC16()},
		{"booth6", circuits.BoothMultiplier(6)},
		{"rand", circuits.RandomAIG(5, 20, 500)},
	}
	for _, gc := range graphs {
		s := untrained(3)
		want, err := s.MapContext(context.Background(), gc.g)
		if err != nil {
			t.Fatalf("%s: MapContext: %v", gc.name, err)
		}
		pool := cuts.NewPool(2)
		for _, workers := range []int{1, 2, 4} {
			for _, pooled := range []bool{false, true} {
				s2 := untrained(3)
				s2.Workers = workers
				if pooled {
					s2.Pool = pool
				}
				got, err := s2.MapStreamContext(context.Background(), gc.g)
				if err != nil {
					t.Fatalf("%s: MapStreamContext: %v", gc.name, err)
				}
				requireSameStreamResult(t, fmt.Sprintf("%s/workers=%d/pool=%v", gc.name, workers, pooled), want, got)
			}
		}
	}
}

type circuitCase struct {
	name string
	g    *aig.AIG
}

// TestMapStreamBatchedBackend drives the fused pipeline through the
// batched inference engine and the coalescer — the per-level Batch hook —
// and requires byte-identity with the per-sample fused run.
func TestMapStreamBatchedBackend(t *testing.T) {
	g := circuits.BoothMultiplier(6)
	s := untrained(7)
	want, err := s.MapStreamContext(context.Background(), g)
	if err != nil {
		t.Fatalf("per-sample MapStream: %v", err)
	}

	eng := infer.NewEngine(s.Model, infer.Options{})
	sEng := untrained(7)
	sEng.Batch = eng
	sEng.Workers = 2
	got, err := sEng.MapStreamContext(context.Background(), g)
	if err != nil {
		t.Fatalf("engine MapStream: %v", err)
	}
	requireSameStreamResult(t, "engine", want, got)

	co := infer.NewCoalescer(eng, infer.CoalescerOptions{MaxBatch: 32, MaxWait: 200 * time.Microsecond})
	defer co.Close()
	sCo := untrained(7)
	sCo.Batch = co
	sCo.Workers = 2
	got, err = sCo.MapStreamContext(context.Background(), g)
	if err != nil {
		t.Fatalf("coalescer MapStream: %v", err)
	}
	requireSameStreamResult(t, "coalescer", want, got)
}

// TestMapLUTStreamMatchesTwoPhase covers the fused LUT flow.
func TestMapLUTStreamMatchesTwoPhase(t *testing.T) {
	g := circuits.BoothMultiplier(6)
	s := untrained(9)
	want, err := s.MapLUTContext(context.Background(), g)
	if err != nil {
		t.Fatalf("MapLUTContext: %v", err)
	}
	for _, workers := range []int{1, 4} {
		s2 := untrained(9)
		s2.Workers = workers
		s2.Pool = cuts.NewPool(1)
		got, err := s2.MapLUTStreamContext(context.Background(), g)
		if err != nil {
			t.Fatalf("MapLUTStreamContext: %v", err)
		}
		if want.Depth != got.Depth || want.NumLUTs() != got.NumLUTs() || want.CutsConsidered != got.CutsConsidered {
			t.Fatalf("workers=%d: (depth %d, luts %d, cuts %d), want (%d, %d, %d)",
				workers, got.Depth, got.NumLUTs(), got.CutsConsidered,
				want.Depth, want.NumLUTs(), want.CutsConsidered)
		}
		if err := equalLUTs(want, got); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func equalLUTs(a, b *lutmap.Result) error {
	for i := range a.LUTs {
		x, y := &a.LUTs[i], &b.LUTs[i]
		if x.Root != y.Root || x.TT != y.TT || len(x.Leaves) != len(y.Leaves) {
			return fmt.Errorf("LUT[%d] differs: %d/%v vs %d/%v", i, x.Root, x.Leaves, y.Root, y.Leaves)
		}
		for j := range x.Leaves {
			if x.Leaves[j] != y.Leaves[j] {
				return fmt.Errorf("LUT[%d] leaves %v vs %v", i, x.Leaves, y.Leaves)
			}
		}
	}
	return nil
}

// TestMapStreamCancellation verifies ctx cancellation propagates out of
// the fused pipeline.
func TestMapStreamCancellation(t *testing.T) {
	g := circuits.BoothMultiplier(6)
	s := untrained(11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.MapStreamContext(ctx, g); err != context.Canceled {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
}
