package genjob

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"slap/internal/dataset"
)

// Shard files are self-verifying: a fixed header carries the shard id,
// the payload length and the payload's SHA-256, so truncation, bit flips
// and cross-job mixups are all detected before a byte of payload is
// trusted. The payload is the gob-encoded shardPayload.
const (
	shardMagic      = "SLAPSHD1"
	shardHeaderSize = len(shardMagic) + 4 + 8 + sha256.Size
	// maxShardPayload bounds a single shard file so a corrupt length
	// field cannot drive an absurd allocation.
	maxShardPayload = 1 << 31
)

// shardPayload is the persisted result of one executed shard.
type shardPayload struct {
	Spec        Spec
	Fingerprint string
	Outcomes    []dataset.MapOutcome
}

// shardFileName names shard i's file within the job directory.
func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.bin", i) }

// encodeShard serialises a shard payload and returns (bytes, sha256 hex).
func encodeShard(p *shardPayload) ([]byte, string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, "", fmt.Errorf("genjob: encoding shard %d: %w", p.Spec.Shard, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return buf.Bytes(), hex.EncodeToString(sum[:]), nil
}

// frameShard prepends the self-verifying header to an encoded payload,
// producing the exact byte sequence a shard file holds. The same frame
// travels over the network in fleet mode, so a remotely executed shard is
// verifiable (and persistable) with the same code path as a local one.
func frameShard(shard int, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	buf.Grow(shardHeaderSize + len(payload))
	buf.WriteString(shardMagic)
	binary.Write(&buf, binary.BigEndian, uint32(shard))
	binary.Write(&buf, binary.BigEndian, uint64(len(payload)))
	buf.Write(sum[:])
	buf.Write(payload)
	return buf.Bytes()
}

// writeShardFile persists an encoded shard payload. The write is atomic
// (temp file + rename) so a crash mid-write leaves a stray .tmp file,
// never a plausible-looking half shard. FaultTruncate and FaultCorrupt
// are the fault-injection paths: a truncated write simulates a kill
// mid-write or torn copy, a corrupted one flips a payload byte under an
// intact header so only the SHA-256 self-check can catch it.
func writeShardFile(path string, shard int, payload []byte, fault FaultKind) error {
	framed := frameShard(shard, payload)
	switch fault {
	case FaultTruncate:
		if cut := len(payload) / 2; cut > 0 {
			return os.WriteFile(path, framed[:shardHeaderSize+cut], 0o644)
		}
	case FaultCorrupt:
		if len(payload) > 0 {
			framed[shardHeaderSize+len(payload)/3] ^= 0x40
			return os.WriteFile(path, framed, 0o644)
		}
	}
	return writeFramedShard(path, framed)
}

// writeFramedShard atomically persists already-framed shard bytes.
func writeFramedShard(path string, framed []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// parseShardBytes verifies and decodes framed shard bytes: magic, shard id,
// length, payload checksum, gob decode, and spec/fingerprint agreement.
// Any mismatch is an error — a shard that fails here is re-run, never
// merged. name labels error messages (a file path or a remote worker).
func parseShardBytes(b []byte, name string, want Spec, fingerprint string) (*shardPayload, string, error) {
	if len(b) < shardHeaderSize {
		return nil, "", fmt.Errorf("genjob: %s: truncated header (%d bytes)", name, len(b))
	}
	if string(b[:len(shardMagic)]) != shardMagic {
		return nil, "", fmt.Errorf("genjob: %s: bad magic", name)
	}
	off := len(shardMagic)
	gotShard := binary.BigEndian.Uint32(b[off:])
	off += 4
	plen := binary.BigEndian.Uint64(b[off:])
	off += 8
	wantSum := b[off : off+sha256.Size]
	off += sha256.Size
	if gotShard != uint32(want.Shard) {
		return nil, "", fmt.Errorf("genjob: %s: holds shard %d, want %d", name, gotShard, want.Shard)
	}
	if plen > maxShardPayload {
		return nil, "", fmt.Errorf("genjob: %s: absurd payload length %d", name, plen)
	}
	payload := b[off:]
	if uint64(len(payload)) != plen {
		return nil, "", fmt.Errorf("genjob: %s: payload is %d bytes, header says %d (truncated or padded)",
			name, len(payload), plen)
	}
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], wantSum) {
		return nil, "", fmt.Errorf("genjob: %s: payload checksum mismatch", name)
	}
	var p shardPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return nil, "", fmt.Errorf("genjob: %s: decoding payload: %w", name, err)
	}
	if p.Spec != want {
		return nil, "", fmt.Errorf("genjob: %s: spec %+v, want %+v", name, p.Spec, want)
	}
	if p.Fingerprint != fingerprint {
		return nil, "", fmt.Errorf("genjob: %s: config fingerprint mismatch (different job?)", name)
	}
	if n := len(p.Outcomes); n != want.End-want.Start {
		return nil, "", fmt.Errorf("genjob: %s: %d outcomes, want %d", name, n, want.End-want.Start)
	}
	return &p, hex.EncodeToString(sum[:]), nil
}

// readShardFile loads and fully verifies one shard file.
func readShardFile(path string, want Spec, fingerprint string) (*shardPayload, string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	return parseShardBytes(b, path, want, fingerprint)
}

// ---------------------------------------------------------------------------
// Manifest

// manifestName is the append-only JSON-lines journal of a job directory.
// Line 1 is the job header; every later line is a shard lifecycle entry.
// The last entry for a shard wins, so appending is the only write mode a
// crashed run ever needed to get resume right.
const manifestName = "manifest.jsonl"

// manifestHeader pins a job directory to one exact sweep configuration.
type manifestHeader struct {
	Job         string `json:"job"` // format tag, "slap-genjob/1"
	Fingerprint string `json:"fingerprint"`
	Shards      int    `json:"shards"`
}

const manifestJobTag = "slap-genjob/1"

// manifestEntry records one shard outcome.
type manifestEntry struct {
	Shard    int    `json:"shard"`
	Status   string `json:"status"` // "done" or "failed"
	File     string `json:"file,omitempty"`
	SHA      string `json:"sha256,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"err,omitempty"`
}

// manifest is the open journal plus its replayed state.
type manifest struct {
	mu      sync.Mutex
	f       *os.File
	entries map[int]manifestEntry // last entry per shard
}

// openManifest opens (or creates) the journal under dir, replays it, and
// checks it belongs to this job. resume gates reuse: without it an
// existing manifest is an error, so two different sweeps cannot silently
// interleave in one directory.
func openManifest(dir, fingerprint string, shards int, resume bool) (*manifest, error) {
	path := filepath.Join(dir, manifestName)
	existing, err := os.ReadFile(path)
	switch {
	case err == nil:
		if !resume {
			return nil, fmt.Errorf("genjob: %s already holds a run; enable resume or use a fresh directory", dir)
		}
	case os.IsNotExist(err):
		existing = nil
	default:
		return nil, err
	}

	m := &manifest{entries: make(map[int]manifestEntry)}
	if len(existing) > 0 {
		sc := bufio.NewScanner(bytes.NewReader(existing))
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		first := true
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			if first {
				first = false
				var h manifestHeader
				if err := json.Unmarshal([]byte(line), &h); err != nil || h.Job != manifestJobTag {
					return nil, fmt.Errorf("genjob: %s: not a genjob manifest", path)
				}
				if h.Fingerprint != fingerprint {
					return nil, fmt.Errorf("genjob: %s was written by a different sweep config; refusing to resume", path)
				}
				if h.Shards != shards {
					return nil, fmt.Errorf("genjob: %s plans %d shards, this run plans %d", path, h.Shards, shards)
				}
				continue
			}
			var e manifestEntry
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				// A torn final line is exactly what a SIGKILL mid-append
				// leaves behind; the shard it described simply re-runs.
				continue
			}
			m.entries[e.Shard] = e
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	m.f = f
	if len(existing) == 0 {
		if err := m.appendJSON(manifestHeader{Job: manifestJobTag, Fingerprint: fingerprint, Shards: shards}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return m, nil
}

func (m *manifest) appendJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, err := m.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return m.f.Sync()
}

// record appends a shard entry and updates the replayed state.
func (m *manifest) record(e manifestEntry) error {
	if err := m.appendJSON(e); err != nil {
		return err
	}
	m.mu.Lock()
	m.entries[e.Shard] = e
	m.mu.Unlock()
	return nil
}

// entry returns the last recorded entry for a shard.
func (m *manifest) entry(shard int) (manifestEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[shard]
	return e, ok
}

func (m *manifest) close() error { return m.f.Close() }

// fingerprintConfig canonically hashes the sweep parameters that determine
// the dataset bytes, so a resumed run cannot silently mix shards from two
// different sweeps. Workers and failure knobs are deliberately excluded:
// they change scheduling, not results.
func fingerprintConfig(cfg dataset.Config) string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d|maps=%d|classes=%d|limit=%d|metric=%s|circuits=%d",
		cfg.Seed, cfg.MapsPerCircuit, cfg.Classes, cfg.ShuffleLimit, cfg.Metric, len(cfg.Circuits))
	for _, g := range cfg.Circuits {
		fmt.Fprintf(h, "|%s/%d/%d/%d", g.Name, g.NumNodes(), g.NumPIs(), g.NumPOs())
	}
	return hex.EncodeToString(h.Sum(nil))
}
