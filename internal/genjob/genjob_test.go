package genjob

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/dataset"
	"slap/internal/library"
)

// testMaps keeps the sweep small enough for the race detector while still
// leaving several maps per shard.
const testMaps = 8

func testDatasetConfig() dataset.Config {
	return dataset.Config{
		Circuits:       []*aig.AIG{circuits.TrainRC16(), circuits.TrainCLA16()},
		Library:        library.ASAP7ish(),
		MapsPerCircuit: testMaps,
		Seed:           7,
	}
}

func testConfig(dir string, shards int) Config {
	return Config{
		Dataset:     testDatasetConfig(),
		OutDir:      dir,
		Shards:      shards,
		Workers:     4,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	}
}

// reference is the uninterrupted single-process dataset the sharded runs
// must reproduce byte for byte.
func reference(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Generate(testDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func assertIdentical(t *testing.T, got, want *dataset.Dataset) {
	t.Helper()
	if got.Classes != want.Classes {
		t.Fatalf("classes %d, want %d", got.Classes, want.Classes)
	}
	if !reflect.DeepEqual(got.Y, want.Y) {
		t.Fatalf("labels differ from single-process run")
	}
	if !reflect.DeepEqual(got.X, want.X) {
		t.Fatalf("embeddings differ from single-process run")
	}
}

func TestPlanCoversEveryMapExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ circuits, maps, shards int }{
		{1, 10, 1}, {1, 10, 3}, {2, 8, 5}, {2, 8, 1}, {3, 5, 100}, {2, 7, 7},
	} {
		specs := Plan(tc.circuits, tc.maps, tc.shards)
		covered := make([][]int, tc.circuits)
		for ci := range covered {
			covered[ci] = make([]int, tc.maps)
		}
		for i, sp := range specs {
			if sp.Shard != i {
				t.Fatalf("%+v: shard ids not sequential: %d at %d", tc, sp.Shard, i)
			}
			if sp.Maps() <= 0 {
				t.Fatalf("%+v: empty shard %+v", tc, sp)
			}
			for m := sp.Start; m < sp.End; m++ {
				covered[sp.Circuit][m]++
			}
		}
		for ci, c := range covered {
			for m, n := range c {
				if n != 1 {
					t.Fatalf("%+v: circuit %d map %d covered %d times", tc, ci, m, n)
				}
			}
		}
	}
	if got := Plan(0, 5, 3); got != nil {
		t.Fatalf("plan with no circuits: %v", got)
	}
}

func TestRunMatchesSingleProcessGenerate(t *testing.T) {
	cfg := testConfig(t.TempDir(), 5)
	ds, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shards != rep.Executed || rep.Reused != 0 {
		t.Fatalf("fresh run: %+v", rep)
	}
	if rep.SkippedMaps != 0 || len(rep.FailedShards) != 0 {
		t.Fatalf("clean run reported losses: %+v", rep)
	}
	assertIdentical(t, ds, reference(t))

	// A second run over the same directory reuses every shard.
	cfg.Resume = true
	ds2, rep2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Reused != rep.Shards || rep2.Executed != 0 {
		t.Fatalf("full resume should execute nothing: %+v", rep2)
	}
	assertIdentical(t, ds2, ds)
}

// TestFaultInjectionPanicAndTransient injects a panic into one shard and a
// transient error into another; both must retry and the merged dataset
// must still be byte-identical.
func TestFaultInjectionPanicAndTransient(t *testing.T) {
	var mu sync.Mutex
	fired := map[int]bool{}
	cfg := testConfig(t.TempDir(), 6)
	cfg.Fault = func(shard, attempt int) FaultKind {
		mu.Lock()
		defer mu.Unlock()
		if fired[shard] {
			return FaultNone
		}
		fired[shard] = true
		switch shard {
		case 1:
			return FaultPanic
		case 3:
			return FaultTransient
		}
		return FaultNone
	}
	ds, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries < 2 {
		t.Fatalf("expected at least 2 retries, got %+v", rep)
	}
	if len(rep.FailedShards) != 0 {
		t.Fatalf("recovered faults must not fail shards: %+v", rep)
	}
	assertIdentical(t, ds, reference(t))
}

// TestCrashResumeDeterminism kills a sharded run mid-sweep (context cancel
// after the first shards persist — the in-process equivalent of SIGKILL,
// plus a torn manifest line) and resumes: the merged dataset must be
// byte-identical to an uninterrupted single-process run.
func TestCrashResumeDeterminism(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir, 6)
	cfg.Workers = 1 // sequential, so the cancel point is predictable

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	done := 0
	cfg.Progress = func(e Event) {
		if e.Kind != "done" {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if done++; done == 2 {
			cancel()
		}
	}
	if _, _, err := Run(ctx, cfg); err == nil {
		t.Fatal("killed run reported success")
	}

	// A SIGKILL can also tear the last manifest append mid-line; the
	// journal replay must shrug it off.
	mf := filepath.Join(dir, manifestName)
	f, err := os.OpenFile(mf, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"shard":5,"sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg.Progress = nil
	cfg.Resume = true
	ds, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reused < 2 {
		t.Fatalf("resume reused %d shards, want >= 2", rep.Reused)
	}
	if rep.Reused+rep.Executed < rep.Shards {
		t.Fatalf("resume left shards unaccounted: %+v", rep)
	}
	assertIdentical(t, ds, reference(t))
}

// TestFlippedByteDetected corrupts one persisted shard by a single byte:
// Merge must reject it, and a resumed Run must detect it, re-run the
// shard, and still produce the exact dataset.
func TestFlippedByteDetected(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir, 5)
	ds, _, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, shardFileName(2))
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40 // flip one payload bit
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	mcfg := cfg
	mcfg.Resume = true
	if _, _, err := Merge(mcfg); err == nil {
		t.Fatal("Merge accepted a tampered shard")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}

	ds2, rep, err := Run(context.Background(), mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == 0 {
		t.Fatalf("corrupt shard not reported: %+v", rep)
	}
	if rep.Executed == 0 {
		t.Fatalf("corrupt shard not re-run: %+v", rep)
	}
	assertIdentical(t, ds2, ds)

	// After the repair, Merge verifies clean again.
	if _, _, err := Merge(mcfg); err != nil {
		t.Fatalf("Merge after repair: %v", err)
	}
}

// TestTruncatedWriteDetected injects a partial shard-file write that is
// journaled as done — the state a kill mid-write leaves — and checks the
// verify pass catches it and re-runs the shard.
func TestTruncatedWriteDetected(t *testing.T) {
	var mu sync.Mutex
	fired := false
	cfg := testConfig(t.TempDir(), 4)
	cfg.Fault = func(shard, attempt int) FaultKind {
		mu.Lock()
		defer mu.Unlock()
		if shard == 0 && !fired {
			fired = true
			return FaultTruncate
		}
		return FaultNone
	}
	ds, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == 0 {
		t.Fatalf("truncated shard was merged silently: %+v", rep)
	}
	assertIdentical(t, ds, reference(t))
}

// TestCorruptByteDetected injects a single flipped payload byte under an
// intact frame header — length and magic still look right — and checks
// the SHA-256 self-check catches it and the re-run converges on the
// reference dataset anyway.
func TestCorruptByteDetected(t *testing.T) {
	var mu sync.Mutex
	fired := false
	cfg := testConfig(t.TempDir(), 4)
	cfg.Fault = func(shard, attempt int) FaultKind {
		mu.Lock()
		defer mu.Unlock()
		if shard == 1 && !fired {
			fired = true
			return FaultCorrupt
		}
		return FaultNone
	}
	ds, rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt == 0 {
		t.Fatalf("corrupt-byte shard was merged silently: %+v", rep)
	}
	assertIdentical(t, ds, reference(t))
}

// TestFailureBudget exhausts one shard's attempts: budget 0 fails the job,
// budget 1 degrades to a dataset missing exactly that shard's mappings.
func TestFailureBudget(t *testing.T) {
	mk := func(budget int) Config {
		cfg := testConfig(t.TempDir(), 4)
		cfg.MaxAttempts = 2
		cfg.FailureBudget = budget
		cfg.Fault = func(shard, attempt int) FaultKind {
			if shard == 1 {
				return FaultTransient
			}
			return FaultNone
		}
		return cfg
	}

	if _, rep, err := Run(context.Background(), mk(0)); err == nil {
		t.Fatal("exhausted shard within budget 0 must fail the job")
	} else if len(rep.FailedShards) != 1 || rep.FailedShards[0] != 1 {
		t.Fatalf("failed shards: %+v", rep)
	}

	ds, rep, err := Run(context.Background(), mk(1))
	if err != nil {
		t.Fatalf("budget 1 should tolerate one failed shard: %v", err)
	}
	specs := Plan(2, testMaps, 4)
	if rep.SkippedMaps != specs[1].Maps() {
		t.Fatalf("skipped %d maps, want %d", rep.SkippedMaps, specs[1].Maps())
	}
	if ds.Len() == 0 || ds.Len() >= reference(t).Len() {
		t.Fatalf("degraded dataset size %d out of range", ds.Len())
	}
}

func TestResumeSafety(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir, 3)
	if _, _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Same directory without Resume: refuse, two runs must not interleave.
	if _, _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("second run without Resume accepted")
	}
	// Resume with a different sweep config: fingerprint mismatch.
	other := cfg
	other.Resume = true
	other.Dataset.Seed = 99
	if _, _, err := Run(context.Background(), other); err == nil {
		t.Fatal("resume with different seed accepted")
	} else if !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMergeRequiresCompleteRun(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir, 4)
	cfg.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg.Progress = func(e Event) {
		if e.Kind == "done" {
			once.Do(cancel)
		}
	}
	if _, _, err := Run(ctx, cfg); err == nil {
		t.Fatal("canceled run reported success")
	}
	cfg.Progress = nil
	cfg.Resume = true
	if _, _, err := Merge(cfg); err == nil {
		t.Fatal("Merge of an incomplete run accepted")
	} else if !strings.Contains(err.Error(), "missing from manifest") {
		t.Fatalf("unexpected error: %v", err)
	}
}
