package genjob

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"slap/internal/dataset"
)

// Remote shard transport. The shard frame (header + checksummed payload)
// is deliberately location-independent: the bytes a worker produces for a
// Spec are exactly the bytes writeShardFile would persist locally, so a
// coordinator can fan shards out over the network, verify each returned
// frame with the same code path Resume uses, persist them into an ordinary
// job directory, and Merge — byte-identical to a single-process sweep.

// Fingerprint returns the canonical sweep fingerprint of a dataset config.
// Both ends of a remote shard execution compare it before trusting a
// frame, so a coordinator and a worker that disagree about the sweep
// (version skew, different builtins) fail loudly instead of merging
// mismatched results. The config must be normalized first (Config.Normalize)
// so implicit and explicit defaults fingerprint identically.
func Fingerprint(cfg dataset.Config) string { return fingerprintConfig(cfg) }

// ShardFileName returns the canonical file name of shard i inside a job
// directory — shared so remotely fetched shards land under the same names
// Resume and Merge expect.
func ShardFileName(i int) string { return shardFileName(i) }

// ExecuteShardBytes runs one shard's mapping range locally and returns the
// framed, self-verifying shard bytes plus the payload's SHA-256 hex. It is
// the worker half of remote execution: the frame is what ships back to the
// coordinator. Panics inside the mappings are converted to errors exactly
// as local shard execution does.
func ExecuteShardBytes(ctx context.Context, dcfg dataset.Config, sp Spec) ([]byte, string, error) {
	dcfg, err := dcfg.Normalize()
	if err != nil {
		return nil, "", fmt.Errorf("genjob: %w", err)
	}
	outcomes, err := executeShard(ctx, dcfg, sp, FaultNone)
	if err != nil {
		return nil, "", err
	}
	payload, sha, err := encodeShard(&shardPayload{Spec: sp, Fingerprint: fingerprintConfig(dcfg), Outcomes: outcomes})
	if err != nil {
		return nil, "", err
	}
	return frameShard(sp.Shard, payload), sha, nil
}

// VerifyShardBytes fully verifies a framed shard received from elsewhere —
// magic, shard id, length, payload checksum, decode, spec and fingerprint
// agreement — and returns the payload SHA-256 hex to journal. name labels
// errors (typically the worker that produced the frame).
func VerifyShardBytes(b []byte, name string, sp Spec, fingerprint string) (string, error) {
	_, sha, err := parseShardBytes(b, name, sp, fingerprint)
	return sha, err
}

// WriteShardBytes atomically persists a framed shard into dir under its
// canonical name, making it indistinguishable from a locally executed
// shard for Resume and Merge.
func WriteShardBytes(dir string, sp Spec, framed []byte) error {
	return writeFramedShard(filepath.Join(dir, shardFileName(sp.Shard)), framed)
}

// Backoff sleeps the jittered, capped exponential delay for the given
// 1-based attempt, or returns early when ctx is done. It is the same
// schedule local shard retries use, exported so fleet-level retries (dead
// workers, failed proxies) share one failure-budget idiom.
func Backoff(ctx context.Context, base, max time.Duration, attempt int, rng *rand.Rand) error {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	return sleepBackoff(ctx, base, max, attempt, rng)
}

// Journal is the coordinator-side view of a job directory's manifest: it
// journals remotely executed shards into the same append-only JSONL file a
// local run writes, so a fleet job directory resumes and merges with the
// stock machinery.
type Journal struct {
	m *manifest
}

// OpenJournal opens (or creates) the manifest of a remote job directory.
// An existing manifest is resumed: previously journaled shards whose files
// still verify are reported by Done, so an interrupted fleet job re-ships
// only what is missing.
func OpenJournal(dir, fingerprint string, shards int) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	m, err := openManifest(dir, fingerprint, shards, true)
	if err != nil {
		return nil, err
	}
	return &Journal{m: m}, nil
}

// RecordDone journals a shard whose verified frame has been persisted.
func (j *Journal) RecordDone(sp Spec, sha string, attempts int) error {
	return j.m.record(manifestEntry{Shard: sp.Shard, Status: "done", File: shardFileName(sp.Shard), SHA: sha, Attempts: attempts})
}

// RecordFailed journals a shard that exhausted the fleet's attempts.
func (j *Journal) RecordFailed(sp Spec, attempts int, cause error) error {
	msg := ""
	if cause != nil {
		msg = cause.Error()
	}
	return j.m.record(manifestEntry{Shard: sp.Shard, Status: "failed", Attempts: attempts, Err: msg})
}

// Done reports whether a shard is journaled done with a file that still
// fully verifies on disk; anything else (missing, failed, corrupt) should
// be re-shipped.
func (j *Journal) Done(dir, fingerprint string, sp Spec) bool {
	e, ok := j.m.entry(sp.Shard)
	if !ok || e.Status != "done" {
		return false
	}
	return verifyShard(dir, sp, fingerprint, e) == nil
}

// Close closes the underlying manifest file.
func (j *Journal) Close() error { return j.m.close() }
