// Package genjob runs a dataset.Config sweep as a set of deterministic,
// seed-addressed shards with the fault tolerance a corpus-scale run needs
// (ROADMAP: "Sharded dataset generation", OpenABC-D-sized sweeps):
//
//   - each shard is a contiguous mapping range of one circuit, so its
//     results depend only on the master seed and the map indices — never
//     on worker count, shard count, or which process ran it;
//   - shards execute on a bounded worker pool, each attempt under
//     recover(), so one panicking mapping costs one retry, not the job;
//   - failed attempts retry with capped exponential backoff plus jitter,
//     giving up per-shard after MaxAttempts without sinking the job;
//   - completed shards persist as checksummed files journaled in an
//     append-only JSON-lines manifest, so a crashed or SIGKILLed run
//     resumes from disk, re-running only missing or corrupt shards;
//   - Merge re-verifies every checksum before assembly and the result is
//     byte-identical to a single-process dataset.Generate with the same
//     master seed.
package genjob

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"slap/internal/dataset"
)

// Spec addresses one shard: the mapping range [Start, End) of one circuit.
type Spec struct {
	Shard   int
	Circuit int
	Start   int
	End     int
}

// Maps returns the number of mappings the shard covers.
func (s Spec) Maps() int { return s.End - s.Start }

// Plan deterministically splits a sweep of circuits×mapsPerCircuit random
// mappings into shards. Every circuit gets at least one shard and a shard
// never spans circuits, so the realised shard count can differ from the
// request (it is len of the returned slice); ranges within a circuit are
// as even as integer division allows.
func Plan(circuits, mapsPerCircuit, shards int) []Spec {
	if circuits <= 0 || mapsPerCircuit <= 0 {
		return nil
	}
	if shards < circuits {
		shards = circuits
	}
	if max := circuits * mapsPerCircuit; shards > max {
		shards = max
	}
	base, extra := shards/circuits, shards%circuits
	specs := make([]Spec, 0, shards)
	id := 0
	for ci := 0; ci < circuits; ci++ {
		n := base
		if ci < extra {
			n++
		}
		if n > mapsPerCircuit {
			n = mapsPerCircuit
		}
		for k := 0; k < n; k++ {
			specs = append(specs, Spec{
				Shard:   id,
				Circuit: ci,
				Start:   k * mapsPerCircuit / n,
				End:     (k + 1) * mapsPerCircuit / n,
			})
			id++
		}
	}
	return specs
}

// FaultKind selects an injected fault for one (shard, attempt).
type FaultKind int

// Injected fault kinds, consumed by tests and chaos drills.
const (
	// FaultNone leaves the attempt alone.
	FaultNone FaultKind = iota
	// FaultPanic panics inside the shard worker, exercising the
	// recover-to-error path.
	FaultPanic
	// FaultTransient fails the attempt with a transient error,
	// exercising retry/backoff.
	FaultTransient
	// FaultTruncate executes the shard but persists a partial file while
	// journaling it as done — the on-disk state a kill mid-write or a
	// torn copy leaves behind. Verification must catch it and re-run.
	FaultTruncate
	// FaultCorrupt executes the shard but flips one payload byte on disk
	// without touching the frame header — the on-disk state bit rot or a
	// corrupting transport leaves behind. The length and magic still look
	// right, so only the SHA-256 self-check can catch it.
	FaultCorrupt
)

// FaultFunc is the fault-injection hook: it is consulted once per shard
// attempt and returns the fault to inject. Nil injects nothing. Attempt
// numbering restarts at 1 when verification rejects a persisted shard and
// re-runs it, so hooks that should fire once must keep their own state.
type FaultFunc func(shard, attempt int) FaultKind

// Event reports shard-runner progress to Config.Progress.
type Event struct {
	// Kind is one of "plan", "reuse", "attempt", "retry", "done",
	// "failed", "corrupt", "merge".
	Kind    string
	Shard   int
	Attempt int
	Err     error
}

// String renders the event as one log line.
func (e Event) String() string {
	switch e.Kind {
	case "plan":
		return fmt.Sprintf("planned %d shards", e.Shard)
	case "merge":
		return "verifying and merging shards"
	}
	s := fmt.Sprintf("shard %d: %s", e.Shard, e.Kind)
	if e.Attempt > 0 {
		s += fmt.Sprintf(" (attempt %d)", e.Attempt)
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Runner defaults.
const (
	DefaultMaxAttempts = 3
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffMax  = 5 * time.Second
)

// Config drives a sharded generation job.
type Config struct {
	// Dataset is the sweep being sharded. Its Workers field bounds
	// intra-shard mapping parallelism (defaulted to 1 here: the shard
	// pool is the parallelism).
	Dataset dataset.Config
	// OutDir is the job directory holding shard files and the manifest.
	OutDir string
	// Shards is the requested shard count (see Plan for how it is
	// realised; 0 = one shard per circuit).
	Shards int
	// Workers bounds concurrently executing shards (0 = GOMAXPROCS via
	// the dataset default semantics is wrong here; 0 = 4).
	Workers int
	// Resume allows reusing an OutDir that already holds a manifest;
	// completed shards are verified and kept, everything else re-runs.
	Resume bool
	// MaxAttempts bounds per-shard execution attempts (0 = 3).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (0 = 100ms / 5s); the actual delay is jittered
	// over [d/2, d].
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FailureBudget is the number of shards allowed to fail permanently
	// (after MaxAttempts each) before the job itself fails. Mappings of
	// budgeted-away shards are skipped in the merged dataset, so the
	// default of 0 is what guarantees byte-identity with Generate.
	FailureBudget int
	// Fault is the fault-injection hook (nil = none).
	Fault FaultFunc
	// Progress receives runner events (nil = silent). It may be called
	// from multiple goroutines.
	Progress func(Event)
}

// Report summarises a Run or Merge.
type Report struct {
	// Shards is the planned shard count; Reused counts shards accepted
	// from a previous run, Executed those run (or re-run) here.
	Shards, Reused, Executed int
	// Retries counts failed attempts that were retried; Corrupt counts
	// shard files rejected by verification and re-run.
	Retries, Corrupt int
	// FailedShards lists shards that exhausted MaxAttempts.
	FailedShards []int
	// SkippedMaps counts mappings absent from the merged dataset
	// (tolerated mapping failures plus budgeted-away shards).
	SkippedMaps int
	// Samples is the merged dataset size.
	Samples int
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.OutDir == "" {
		return cfg, fmt.Errorf("genjob: OutDir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = DefaultBackoffBase
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.Dataset.Workers == 0 {
		// One mapping at a time inside a shard: the shard pool supplies
		// the parallelism, and N shards × GOMAXPROCS maps would
		// oversubscribe every core.
		cfg.Dataset.Workers = 1
	}
	// Normalize up front so the plan and the config fingerprint agree with
	// every other invocation of the same sweep, resumed or not.
	dcfg, err := cfg.Dataset.Normalize()
	if err != nil {
		return cfg, fmt.Errorf("genjob: %w", err)
	}
	cfg.Dataset = dcfg
	return cfg, nil
}

func (cfg *Config) emit(e Event) {
	if cfg.Progress != nil {
		cfg.Progress(e)
	}
}

// verifyRounds bounds the execute→verify→re-run loop; a shard whose file
// never verifies (e.g. a persistently torn disk) fails the job rather
// than spinning.
const verifyRounds = 4

// Run executes (or resumes) the sharded sweep and merges the result.
// It returns the merged dataset — byte-identical to dataset.Generate with
// the same master seed when no shard was budgeted away — plus a report.
// On error the report still describes how far the run got; completed
// shards stay on disk, so a later Run with Resume set picks up from the
// manifest.
func Run(ctx context.Context, cfg Config) (*dataset.Dataset, *Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	dcfg := cfg.Dataset
	shards := cfg.Shards
	if shards <= 0 {
		shards = len(dcfg.Circuits)
	}
	specs := Plan(len(dcfg.Circuits), dcfg.MapsPerCircuit, shards)
	rep := &Report{Shards: len(specs)}
	cfg.emit(Event{Kind: "plan", Shard: len(specs)})

	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return nil, rep, err
	}
	fp := fingerprintConfig(dcfg)
	man, err := openManifest(cfg.OutDir, fp, len(specs), cfg.Resume)
	if err != nil {
		return nil, rep, err
	}
	defer man.close()

	// Decide what is already done: a manifest "done" entry only counts if
	// its file still verifies end to end (checksum, spec, fingerprint) and
	// matches the journaled SHA — anything else re-runs.
	valid := make([]bool, len(specs))
	pending := make([]Spec, 0, len(specs))
	for _, sp := range specs {
		e, ok := man.entry(sp.Shard)
		if ok && e.Status == "done" {
			if verr := verifyShard(cfg.OutDir, sp, fp, e); verr == nil {
				valid[sp.Shard] = true
				rep.Reused++
				cfg.emit(Event{Kind: "reuse", Shard: sp.Shard})
				continue
			} else {
				rep.Corrupt++
				cfg.emit(Event{Kind: "corrupt", Shard: sp.Shard, Err: verr})
			}
		}
		pending = append(pending, sp)
	}

	failed := make(map[int]error)
	for round := 0; len(pending) > 0; round++ {
		if round >= verifyRounds {
			return nil, rep, fmt.Errorf("genjob: %d shards still invalid after %d verify rounds", len(pending), round)
		}
		if err := runPool(ctx, &cfg, man, fp, pending, rep, failed); err != nil {
			return nil, rep, err
		}
		// Re-verify everything executed this round from disk before it may
		// be merged; a shard whose persisted bytes do not verify re-runs.
		next := pending[:0]
		for _, sp := range pending {
			if _, bad := failed[sp.Shard]; bad {
				continue
			}
			e, ok := man.entry(sp.Shard)
			if !ok || e.Status != "done" {
				continue // context cut the run short before this shard
			}
			if verr := verifyShard(cfg.OutDir, sp, fp, e); verr != nil {
				rep.Corrupt++
				cfg.emit(Event{Kind: "corrupt", Shard: sp.Shard, Err: verr})
				next = append(next, sp)
				continue
			}
			valid[sp.Shard] = true
		}
		pending = next
		if err := ctx.Err(); err != nil {
			return nil, rep, err
		}
	}

	for shard := range failed {
		rep.FailedShards = append(rep.FailedShards, shard)
	}
	sort.Ints(rep.FailedShards)
	if len(rep.FailedShards) > cfg.FailureBudget {
		return nil, rep, fmt.Errorf("genjob: %d shards failed permanently (budget %d), first: %w",
			len(rep.FailedShards), cfg.FailureBudget, failed[rep.FailedShards[0]])
	}

	ds, err := mergeVerified(&cfg, specs, fp, rep)
	if err != nil {
		return nil, rep, err
	}
	return ds, rep, nil
}

// Merge verifies and reassembles an existing job directory without
// executing anything: every planned shard must be journaled done and its
// file must pass full verification, except shards journaled failed, which
// are tolerated up to FailureBudget. It is the offline counterpart of the
// merge step Run ends with.
func Merge(cfg Config) (*dataset.Dataset, *Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	dcfg := cfg.Dataset
	shards := cfg.Shards
	if shards <= 0 {
		shards = len(dcfg.Circuits)
	}
	specs := Plan(len(dcfg.Circuits), dcfg.MapsPerCircuit, shards)
	rep := &Report{Shards: len(specs)}
	fp := fingerprintConfig(dcfg)
	man, err := openManifest(cfg.OutDir, fp, len(specs), true)
	if err != nil {
		return nil, rep, err
	}
	defer man.close()

	for _, sp := range specs {
		e, ok := man.entry(sp.Shard)
		if !ok {
			return nil, rep, fmt.Errorf("genjob: shard %d missing from manifest (incomplete run?)", sp.Shard)
		}
		switch e.Status {
		case "done":
			if verr := verifyShard(cfg.OutDir, sp, fp, e); verr != nil {
				rep.Corrupt++
				return nil, rep, fmt.Errorf("genjob: shard %d rejected: %w", sp.Shard, verr)
			}
			rep.Reused++
		case "failed":
			rep.FailedShards = append(rep.FailedShards, sp.Shard)
		default:
			return nil, rep, fmt.Errorf("genjob: shard %d has unknown status %q", sp.Shard, e.Status)
		}
	}
	if len(rep.FailedShards) > cfg.FailureBudget {
		return nil, rep, fmt.Errorf("genjob: %d shards failed permanently (budget %d)", len(rep.FailedShards), cfg.FailureBudget)
	}
	ds, err := mergeVerified(&cfg, specs, fp, rep)
	if err != nil {
		return nil, rep, err
	}
	return ds, rep, nil
}

// runPool executes the given shards on the bounded worker pool.
func runPool(ctx context.Context, cfg *Config, man *manifest, fp string, shards []Spec, rep *Report, failed map[int]error) error {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards rep counters, failed, firstErr
		sem  = make(chan struct{}, cfg.Workers)
		fail error
	)
	for _, sp := range shards {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(sp Spec) {
			defer func() { <-sem; wg.Done() }()
			retries, err := runShard(ctx, cfg, man, fp, sp)
			mu.Lock()
			defer mu.Unlock()
			rep.Executed++
			rep.Retries += retries
			if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				failed[sp.Shard] = err
				cfg.emit(Event{Kind: "failed", Shard: sp.Shard, Err: err})
				if rerr := man.record(manifestEntry{Shard: sp.Shard, Status: "failed", Attempts: cfg.MaxAttempts, Err: err.Error()}); rerr != nil && fail == nil {
					fail = rerr
				}
			}
		}(sp)
	}
	wg.Wait()
	if fail != nil {
		return fail
	}
	return ctx.Err()
}

// runShard attempts one shard up to MaxAttempts times with jittered
// exponential backoff between attempts, persisting and journaling the
// first success. It returns the number of retried attempts.
func runShard(ctx context.Context, cfg *Config, man *manifest, fp string, sp Spec) (retries int, err error) {
	// Jitter must not perturb dataset determinism, so it gets its own
	// seed lane derived from the master seed and shard id.
	rng := rand.New(rand.NewSource(cfg.Dataset.Seed ^ (int64(sp.Shard)+1)*0x9E3779B9))
	var lastErr error
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return retries, err
		}
		fault := FaultNone
		if cfg.Fault != nil {
			fault = cfg.Fault(sp.Shard, attempt)
		}
		cfg.emit(Event{Kind: "attempt", Shard: sp.Shard, Attempt: attempt})

		outcomes, err := executeShard(ctx, cfg.Dataset, sp, fault)
		if err == nil {
			payload, sha, encErr := encodeShard(&shardPayload{Spec: sp, Fingerprint: fp, Outcomes: outcomes})
			if encErr != nil {
				return retries, encErr
			}
			file := shardFileName(sp.Shard)
			if werr := writeShardFile(filepath.Join(cfg.OutDir, file), sp.Shard, payload, fault); werr != nil {
				err = werr
			} else if merr := man.record(manifestEntry{Shard: sp.Shard, Status: "done", File: file, SHA: sha, Attempts: attempt}); merr != nil {
				return retries, merr
			} else {
				cfg.emit(Event{Kind: "done", Shard: sp.Shard, Attempt: attempt})
				return retries, nil
			}
		}
		lastErr = err
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return retries, err
		}
		if attempt == cfg.MaxAttempts {
			break
		}
		retries++
		cfg.emit(Event{Kind: "retry", Shard: sp.Shard, Attempt: attempt, Err: err})
		if err := sleepBackoff(ctx, cfg.BackoffBase, cfg.BackoffMax, attempt, rng); err != nil {
			return retries, err
		}
	}
	return retries, fmt.Errorf("genjob: shard %d failed after %d attempts: %w", sp.Shard, cfg.MaxAttempts, lastErr)
}

// executeShard runs the shard's mapping range with panics converted to
// errors, so one poisoned mapping costs a retry instead of the process.
func executeShard(ctx context.Context, dcfg dataset.Config, sp Spec, fault FaultKind) (outcomes []dataset.MapOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			outcomes, err = nil, fmt.Errorf("genjob: shard %d panicked: %v", sp.Shard, r)
		}
	}()
	switch fault {
	case FaultPanic:
		panic("injected fault: panic")
	case FaultTransient:
		return nil, fmt.Errorf("genjob: injected transient fault")
	}
	return dataset.GenerateOutcomes(ctx, dcfg, sp.Circuit, sp.Start, sp.End)
}

// sleepBackoff waits the jittered, capped exponential delay for the given
// attempt, or returns early when ctx is done.
func sleepBackoff(ctx context.Context, base, max time.Duration, attempt int, rng *rand.Rand) error {
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	// Full-half jitter: uniformly in [d/2, d].
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// mergeVerified loads every shard file once more — full verification,
// straight from disk — and assembles the dataset exactly as a
// single-process Generate would. Mappings of budgeted-away shards become
// skipped outcomes; the dataset-level failure tolerance is widened by
// exactly that count, since the shard failure budget already authorised
// the loss explicitly.
func mergeVerified(cfg *Config, specs []Spec, fp string, rep *Report) (*dataset.Dataset, error) {
	cfg.emit(Event{Kind: "merge"})
	dcfg := cfg.Dataset
	failed := make(map[int]bool, len(rep.FailedShards))
	for _, s := range rep.FailedShards {
		failed[s] = true
	}
	all := make([][]dataset.MapOutcome, len(dcfg.Circuits))
	for ci := range all {
		all[ci] = make([]dataset.MapOutcome, dcfg.MapsPerCircuit)
	}
	budgeted := 0
	for _, sp := range specs {
		if failed[sp.Shard] {
			for i := sp.Start; i < sp.End; i++ {
				all[sp.Circuit][i] = dataset.MapOutcome{Skipped: true, Err: fmt.Sprintf("shard %d failed permanently", sp.Shard)}
			}
			budgeted += sp.Maps()
			continue
		}
		p, _, err := readShardFile(filepath.Join(cfg.OutDir, shardFileName(sp.Shard)), sp, fp)
		if err != nil {
			return nil, fmt.Errorf("genjob: merge rejected shard %d: %w", sp.Shard, err)
		}
		copy(all[sp.Circuit][sp.Start:sp.End], p.Outcomes)
	}
	mergeCfg := dcfg
	mergeCfg.MaxFailures += budgeted
	ds, err := dataset.Assemble(mergeCfg, all)
	if err != nil {
		return nil, err
	}
	for _, o := range all {
		for _, mo := range o {
			if mo.Skipped {
				rep.SkippedMaps++
			}
		}
	}
	rep.Samples = ds.Len()
	return ds, nil
}

// verifyShard checks a journaled-done shard end to end: the file must
// parse, self-verify, match the planned spec and config fingerprint, and
// carry exactly the payload checksum the manifest journaled.
func verifyShard(dir string, sp Spec, fp string, e manifestEntry) error {
	file := e.File
	if file == "" {
		file = shardFileName(sp.Shard)
	}
	_, sha, err := readShardFile(filepath.Join(dir, file), sp, fp)
	if err != nil {
		return err
	}
	if e.SHA != "" && e.SHA != sha {
		return fmt.Errorf("genjob: %s: checksum %s does not match manifest %s", file, sha[:12], e.SHA[:12])
	}
	return nil
}
