package aig

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteAAG writes the graph in the ASCII AIGER (aag) format, including a
// symbol table for the primary inputs and outputs.
//
// Because the in-memory graph is structurally hashed and created in
// topological order, the emitted file always satisfies the AIGER ordering
// rule (definitions precede uses).
func (g *AIG) WriteAAG(w io.Writer) error {
	bw := bufio.NewWriter(w)
	maxVar := len(g.nodes) - 1
	fmt.Fprintf(bw, "aag %d %d 0 %d %d\n", maxVar, len(g.pis), len(g.pos), g.NumAnds())
	for _, id := range g.pis {
		fmt.Fprintf(bw, "%d\n", MakeLit(id, false))
	}
	for _, po := range g.pos {
		fmt.Fprintf(bw, "%d\n", po.Lit)
	}
	for i := 1; i < len(g.nodes); i++ {
		nd := &g.nodes[i]
		if nd.typ != typeAnd {
			continue
		}
		fmt.Fprintf(bw, "%d %d %d\n", MakeLit(uint32(i), false), nd.f0, nd.f1)
	}
	for i := range g.pis {
		fmt.Fprintf(bw, "i%d %s\n", i, g.piName[i])
	}
	for i, po := range g.pos {
		fmt.Fprintf(bw, "o%d %s\n", i, po.Name)
	}
	if g.Name != "" {
		fmt.Fprintf(bw, "c\n%s\n", g.Name)
	}
	return bw.Flush()
}

// ReadAAG parses an ASCII AIGER (aag) combinational file into a new AIG.
// Latches are not supported. The graph is rebuilt through the structural
// hashing constructor, so the result is functionally equivalent to the file
// but may contain fewer nodes.
func ReadAAG(r io.Reader) (*AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("aiger: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 6 || header[0] != "aag" {
		return nil, fmt.Errorf("aiger: bad header %q", sc.Text())
	}
	nums := make([]int, 5)
	for i := 0; i < 5; i++ {
		v, err := strconv.Atoi(header[i+1])
		if err != nil {
			return nil, fmt.Errorf("aiger: bad header field %q: %v", header[i+1], err)
		}
		if v < 0 {
			return nil, fmt.Errorf("aiger: negative header field %d", v)
		}
		nums[i] = v
	}
	maxVar, nIn, nLatch, nOut, nAnd := nums[0], nums[1], nums[2], nums[3], nums[4]
	if nLatch != 0 {
		return nil, fmt.Errorf("aiger: latches are not supported (combinational AIGs only)")
	}
	// Sanity-check the header before sizing any allocation from it: the
	// variable count must cover all declared definitions, and absurd counts
	// (beyond any graph this toolkit handles) are rejected outright rather
	// than exhausting memory on a malformed file.
	const maxReasonable = 1 << 26
	if maxVar > maxReasonable || nOut > maxReasonable {
		return nil, fmt.Errorf("aiger: header counts too large (maxVar %d, outputs %d)", maxVar, nOut)
	}
	if nIn+nAnd > maxVar {
		return nil, fmt.Errorf("aiger: %d inputs + %d ANDs exceed maxVar %d", nIn, nAnd, maxVar)
	}

	g := New("")
	// lit2lit maps file literals (even form) to graph literals.
	lit2lit := make([]Lit, 2*(maxVar+1))
	for i := range lit2lit {
		lit2lit[i] = ^Lit(0)
	}
	lit2lit[0] = ConstFalse
	lit2lit[1] = ConstTrue
	mapLit := func(fileLit uint64) (Lit, error) {
		if int(fileLit) >= len(lit2lit) {
			return 0, fmt.Errorf("aiger: literal %d out of range", fileLit)
		}
		l := lit2lit[fileLit&^1]
		if l == ^Lit(0) {
			return 0, fmt.Errorf("aiger: literal %d used before definition", fileLit)
		}
		return l.NotIf(fileLit&1 == 1), nil
	}

	readLit := func() (uint64, error) {
		if !sc.Scan() {
			return 0, fmt.Errorf("aiger: unexpected end of file")
		}
		return strconv.ParseUint(strings.TrimSpace(sc.Text()), 10, 32)
	}
	// defSlot validates a definition literal (PI or AND output) against the
	// header's maxVar before it is used as a lit2lit index.
	defSlot := func(fileLit uint64) (uint64, error) {
		slot := fileLit &^ 1
		if slot < 2 || int(fileLit) >= len(lit2lit) {
			return 0, fmt.Errorf("aiger: definition literal %d out of range (maxVar %d)", fileLit, maxVar)
		}
		return slot, nil
	}

	type rawPO struct{ lit uint64 }
	fileIns := make([]uint64, nIn)
	for i := 0; i < nIn; i++ {
		v, err := readLit()
		if err != nil {
			return nil, err
		}
		fileIns[i] = v
		slot, err := defSlot(v)
		if err != nil {
			return nil, err
		}
		lit2lit[slot] = g.AddPI("")
	}
	filePOs := make([]rawPO, nOut)
	for i := 0; i < nOut; i++ {
		v, err := readLit()
		if err != nil {
			return nil, err
		}
		filePOs[i] = rawPO{lit: v}
	}
	for i := 0; i < nAnd; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("aiger: unexpected end of file in AND section")
		}
		f := strings.Fields(sc.Text())
		if len(f) != 3 {
			return nil, fmt.Errorf("aiger: bad AND line %q", sc.Text())
		}
		var vals [3]uint64
		for j := 0; j < 3; j++ {
			v, err := strconv.ParseUint(f[j], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("aiger: bad AND literal %q: %v", f[j], err)
			}
			vals[j] = v
		}
		a, err := mapLit(vals[1])
		if err != nil {
			return nil, err
		}
		b, err := mapLit(vals[2])
		if err != nil {
			return nil, err
		}
		slot, err := defSlot(vals[0])
		if err != nil {
			return nil, err
		}
		lit2lit[slot] = g.And(a, b).NotIf(vals[0]&1 == 1)
	}

	poNames := make(map[int]string)
	piNames := make(map[int]string)
	for sc.Scan() {
		line := sc.Text()
		if line == "c" {
			if sc.Scan() {
				g.Name = strings.TrimSpace(sc.Text())
			}
			break
		}
		if len(line) < 2 {
			continue
		}
		rest := strings.Fields(line[1:])
		if len(rest) == 0 {
			continue
		}
		idx, err := strconv.Atoi(rest[0])
		if err != nil {
			continue
		}
		name := ""
		if sp := strings.IndexByte(line, ' '); sp >= 0 {
			name = line[sp+1:]
		}
		switch line[0] {
		case 'i':
			piNames[idx] = name
		case 'o':
			poNames[idx] = name
		}
	}
	for i, name := range piNames {
		if i >= 0 && i < len(g.piName) && name != "" {
			g.piName[i] = name
		}
	}
	for i, po := range filePOs {
		l, err := mapLit(po.lit)
		if err != nil {
			return nil, err
		}
		g.AddPO(poNames[i], l)
	}
	return g, sc.Err()
}
