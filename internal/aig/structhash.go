package aig

// Structural cone hashing. Every node gets a 64-bit hash of its transitive
// fanin cone; the graph as a whole gets a content address derived from the
// PO cones. Two flavours exist because two different consumers need
// different invariances:
//
//   - ConeHashes mixes the two fanin hashes in *stored* order. Stored order
//     is exactly the order cut enumeration merges fanin lists in, so equal
//     ordered hashes certify that translated cut lists are byte-equal to
//     freshly enumerated ones. This is the ECO-alignment hash.
//
//   - CanonicalConeHashes sorts the two (hash, complement) fanin pairs
//     before mixing, making the hash invariant under node-id permutation
//     (And() normalises operands by literal value, so a permutation of ids
//     can flip the stored pair). StructuralHash combines the canonical PO
//     cone hashes commutatively, so it is also insensitive to PO
//     declaration order. This is the content-address hash.

// Domain-separation tags for the mixer.
const (
	hashTagConst uint64 = 0x9e3779b97f4a7c15
	hashTagPI    uint64 = 0xbf58476d1ce4e5b9
	hashTagAnd   uint64 = 0x94d049bb133111eb
	hashTagPO    uint64 = 0xd6e8feb86659fd93
)

// mix64 is the splitmix64 finalizer: a cheap full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// faninHash folds a fanin edge (cone hash + complement bit) into one word.
func faninHash(h uint64, compl bool) uint64 {
	if compl {
		return h ^ 0xa5a5a5a5a5a5a5a5
	}
	return h
}

// coneHashes computes per-node cone hashes in one ascending (topological)
// pass. When canonical is true the two fanin words are sorted before mixing.
func (g *AIG) coneHashes(canonical bool) []uint64 {
	hs := make([]uint64, len(g.nodes))
	hs[0] = mix64(hashTagConst)
	pi := 0
	for i := 1; i < len(g.nodes); i++ {
		nd := &g.nodes[i]
		switch nd.typ {
		case typePI:
			hs[i] = mix64(hashTagPI ^ mix64(uint64(pi)+1))
			pi++
		case typeAnd:
			a := faninHash(hs[nd.f0.Node()], nd.f0.IsCompl())
			b := faninHash(hs[nd.f1.Node()], nd.f1.IsCompl())
			if canonical && a > b {
				a, b = b, a
			}
			hs[i] = mix64(hashTagAnd ^ mix64(a) ^ mix64(mix64(b)))
		}
	}
	return hs
}

// ConeHashes returns the ordered structural cone hash of every node:
// identical hashes certify isomorphic cones including stored fanin order.
// Used to align an edited graph against a cached baseline for ECO
// delta-remapping.
func (g *AIG) ConeHashes() []uint64 { return g.coneHashes(false) }

// CanonicalConeHashes returns cone hashes that are invariant under node-id
// permutation (fanin pairs are sorted by hash before mixing).
func (g *AIG) CanonicalConeHashes() []uint64 { return g.coneHashes(true) }

// StructuralHash returns a 64-bit content address of the graph's
// PO-reachable structure. It is invariant under node-id permutation and PO
// declaration order, and ignores names and dead (PO-unreachable) nodes, so
// it is stable across AIGER and BLIF encode→decode round-trips.
func (g *AIG) StructuralHash() uint64 {
	hs := g.coneHashes(true)
	// Commutative PO combine: sum and xor over the per-PO mixed words so
	// declaration order cannot matter, then bind in the interface shape.
	var sum, xor uint64
	for _, po := range g.pos {
		w := mix64(hashTagPO ^ faninHash(hs[po.Lit.Node()], po.Lit.IsCompl()))
		sum += w
		xor ^= w
	}
	h := mix64(sum ^ mix64(xor))
	h = mix64(h ^ mix64(uint64(len(g.pis))+0x10001))
	h = mix64(h ^ mix64(uint64(len(g.pos))+0x20002))
	return h
}
