package aig

import (
	"bytes"
	"strings"
	"testing"
)

// buildTestGraph makes a small but non-trivial graph: a 4-bit ripple adder
// with a parity output, exercising shared structure and inverted edges.
func buildTestGraph() *AIG {
	g := New("sh_test")
	var a, b [4]Lit
	for i := range a {
		a[i] = g.AddPI("")
	}
	for i := range b {
		b[i] = g.AddPI("")
	}
	carry := ConstFalse
	var parity Lit = ConstFalse
	for i := 0; i < 4; i++ {
		s := g.Xor(g.Xor(a[i], b[i]), carry)
		carry = g.Maj(a[i], b[i], carry)
		g.AddPO("", s)
		parity = g.Xor(parity, s)
	}
	g.AddPO("cout", carry)
	g.AddPO("parity", parity)
	return g
}

// translate rebuilds g node by node through the strashing constructor,
// adding POs in the order given by perm (indices into g.POs()).
func translate(g *AIG, perm []int) *AIG {
	h := New(g.Name)
	lits := make([]Lit, g.NumNodes())
	lits[0] = ConstFalse
	pi := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		switch {
		case g.IsPI(n):
			lits[n] = h.AddPI(g.PIName(pi))
			pi++
		case g.IsAnd(n):
			f0, f1 := g.Fanins(n)
			lits[n] = h.And(
				lits[f0.Node()].NotIf(f0.IsCompl()),
				lits[f1.Node()].NotIf(f1.IsCompl()))
		}
	}
	for _, i := range perm {
		po := g.POs()[i]
		lits0 := lits[po.Lit.Node()].NotIf(po.Lit.IsCompl())
		h.AddPO(po.Name, lits0)
	}
	return h
}

func TestStructuralHashAAGRoundTrip(t *testing.T) {
	g := buildTestGraph()
	want := g.StructuralHash()
	var buf bytes.Buffer
	if err := g.WriteAAG(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadAAG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.StructuralHash(); got != want {
		t.Fatalf("AAG round trip changed StructuralHash: %#x != %#x", got, want)
	}
}

func TestStructuralHashBLIFRoundTrip(t *testing.T) {
	g := buildTestGraph()
	want := g.StructuralHash()
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadBLIF(&buf)
	if err != nil {
		t.Fatalf("reader rejected writer output: %v\n%s", err, buf.String())
	}
	if got := h.StructuralHash(); got != want {
		t.Fatalf("BLIF round trip changed StructuralHash: %#x != %#x", got, want)
	}
	// BLIF resolution rebuilds depth-first from the outputs, so node ids are
	// permuted relative to the original; a byte-level netlist match is not
	// expected, but the functional interface must survive.
	if h.NumPIs() != g.NumPIs() || h.NumPOs() != g.NumPOs() {
		t.Fatalf("BLIF round trip changed interface: %d/%d PIs, %d/%d POs",
			h.NumPIs(), g.NumPIs(), h.NumPOs(), g.NumPOs())
	}
}

func TestStructuralHashPOOrderInsensitive(t *testing.T) {
	g := buildTestGraph()
	want := g.StructuralHash()
	n := g.NumPOs()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - 1 - i
	}
	rev := translate(g, perm)
	if got := rev.StructuralHash(); got != want {
		t.Fatalf("PO order changed StructuralHash: %#x != %#x", got, want)
	}
	// Rotated order too.
	for i := range perm {
		perm[i] = (i + 3) % n
	}
	rot := translate(g, perm)
	if got := rot.StructuralHash(); got != want {
		t.Fatalf("PO rotation changed StructuralHash: %#x != %#x", got, want)
	}
}

func TestStructuralHashSensitivity(t *testing.T) {
	g := buildTestGraph()
	want := g.StructuralHash()

	perm := make([]int, g.NumPOs())
	for i := range perm {
		perm[i] = i
	}

	// Complementing one PO must change the hash.
	h2 := translate(g, perm)
	h2.pos[2].Lit = h2.pos[2].Lit.Not()
	if h2.StructuralHash() == want {
		t.Fatal("complementing a PO did not change StructuralHash")
	}

	// Dropping a PO must change the hash.
	h3 := translate(g, perm[:len(perm)-1])
	if h3.StructuralHash() == want {
		t.Fatal("dropping a PO did not change StructuralHash")
	}

	// Renaming everything must NOT change the hash.
	h4 := translate(g, perm)
	for i := range h4.piName {
		h4.piName[i] = "renamed_in"
	}
	for i := range h4.pos {
		h4.pos[i].Name = "renamed_out"
	}
	if h4.StructuralHash() != want {
		t.Fatal("renaming changed StructuralHash")
	}
}

func TestConeHashesDistinguishNodes(t *testing.T) {
	g := buildTestGraph()
	hs := g.ConeHashes()
	seen := make(map[uint64]uint32)
	for n := uint32(0); n < uint32(g.NumNodes()); n++ {
		if prev, dup := seen[hs[n]]; dup {
			t.Fatalf("cone hash collision between nodes %d and %d", prev, n)
		}
		seen[hs[n]] = n
	}
}

func TestAlignIdentityAndEdit(t *testing.T) {
	g := buildTestGraph()
	hs := g.ConeHashes()
	al := Align(hs, hs)
	if al.Matched != g.NumNodes() {
		t.Fatalf("self-alignment matched %d of %d nodes", al.Matched, g.NumNodes())
	}
	for n := 0; n < g.NumNodes(); n++ {
		if al.NewToOld[n] != int32(n) || al.OldToNew[n] != int32(n) {
			t.Fatalf("self-alignment not identity at node %d", n)
		}
	}

	// A structurally edited copy (one fanin complement flipped mid-graph)
	// still aligns on the untouched upstream region.
	ed := New(g.Name)
	lits := make([]Lit, g.NumNodes())
	pi, ands := 0, 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		switch {
		case g.IsPI(n):
			lits[n] = ed.AddPI(g.PIName(pi))
			pi++
		case g.IsAnd(n):
			f0, f1 := g.Fanins(n)
			a := lits[f0.Node()].NotIf(f0.IsCompl())
			b := lits[f1.Node()].NotIf(f1.IsCompl())
			ands++
			if ands == 10 {
				a = a.Not() // the edit
			}
			lits[n] = ed.And(a, b)
		}
	}
	for _, po := range g.POs() {
		ed.AddPO(po.Name, lits[po.Lit.Node()].NotIf(po.Lit.IsCompl()))
	}
	al2 := Align(ed.ConeHashes(), hs)
	if al2.Matched <= g.NumPIs()+1 || al2.Matched >= g.NumNodes() {
		t.Fatalf("edited graph matched %d of %d nodes, want a proper subset beyond the PIs",
			al2.Matched, g.NumNodes())
	}
	if f := OverlapFraction(ed.ConeHashes(), hs); f < 0.2 || f >= 1.0 {
		t.Fatalf("overlap fraction %.2f out of expected range", f)
	}
}

// FuzzStructuralHash checks that any graph the AIGER parser accepts keeps
// its structural hash across AIGER and BLIF encode→decode round trips.
func FuzzStructuralHash(f *testing.F) {
	f.Add("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 x\ni1 y\no0 and\n")
	f.Add("aag 5 2 0 2 3\n2\n4\n10\n11\n6 2 4\n8 3 5\n10 7 9\n")
	f.Add("aag 1 1 0 2 0\n2\n2\n3\n")
	f.Add("aag 0 0 0 1 0\n1\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadAAG(strings.NewReader(input))
		if err != nil {
			return
		}
		want := g.StructuralHash()

		var buf bytes.Buffer
		if err := g.WriteAAG(&buf); err != nil {
			t.Fatalf("WriteAAG failed: %v", err)
		}
		h, err := ReadAAG(&buf)
		if err != nil {
			t.Fatalf("writer output rejected: %v", err)
		}
		if got := h.StructuralHash(); got != want {
			t.Fatalf("AAG round trip changed StructuralHash: %#x != %#x", got, want)
		}

		buf.Reset()
		if g.NumPIs() == 0 && g.NumPOs() == 0 {
			return // an interface-free model is not expressible in BLIF
		}
		// Fuzzed symbol tables can produce clashing names, which WriteBLIF
		// rejects; only a successful encode is required to round-trip.
		if err := WriteBLIF(&buf, g); err == nil {
			b, err := ReadBLIF(&buf)
			if err != nil {
				t.Fatalf("BLIF reader rejected writer output: %v\n%s", err, buf.String())
			}
			if got := b.StructuralHash(); got != want {
				t.Fatalf("BLIF round trip changed StructuralHash: %#x != %#x", got, want)
			}
		}
	})
}
