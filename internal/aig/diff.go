package aig

import "sort"

// Alignment is a partial, order-preserving node correspondence between two
// AIGs, produced by Align. Matched pairs have identical ordered cone hashes
// (see ConeHashes), so the matched cones are isomorphic including stored
// fanin order; unmatched entries are -1.
type Alignment struct {
	// NewToOld maps a node id of the new graph to its counterpart in the
	// old graph, or -1.
	NewToOld []int32
	// OldToNew is the inverse map.
	OldToNew []int32
	// Matched counts matched node pairs (including the constant node).
	Matched int
}

// Align matches nodes of a new graph against an old one by ordered cone
// hash. Hash values that occur more than once in either graph are treated
// as unmatchable (genuine duplicates are impossible under structural
// hashing — only collisions — so this only discards noise). The surviving
// pairs are pruned to a longest increasing subsequence over old ids, so the
// final correspondence is strictly monotone in both directions: node
// creation order is topological order, and a monotone id map preserves
// every order-sensitive downstream artifact (cut merge order, leaf sort
// order, dedup first-occurrence).
func Align(newHashes, oldHashes []uint64) *Alignment {
	al := &Alignment{
		NewToOld: make([]int32, len(newHashes)),
		OldToNew: make([]int32, len(oldHashes)),
	}
	for i := range al.NewToOld {
		al.NewToOld[i] = -1
	}
	for i := range al.OldToNew {
		al.OldToNew[i] = -1
	}

	const ambiguous = -2
	oldByHash := make(map[uint64]int32, len(oldHashes))
	for i, h := range oldHashes {
		if _, dup := oldByHash[h]; dup {
			oldByHash[h] = ambiguous
		} else {
			oldByHash[h] = int32(i)
		}
	}
	seenNew := make(map[uint64]bool, len(newHashes))
	dupNew := make(map[uint64]bool)
	for _, h := range newHashes {
		if seenNew[h] {
			dupNew[h] = true
		}
		seenNew[h] = true
	}

	// Candidate pairs in ascending new-id order.
	type pair struct{ newID, oldID int32 }
	var pairs []pair
	for i, h := range newHashes {
		if dupNew[h] {
			continue
		}
		if o, ok := oldByHash[h]; ok && o != ambiguous {
			pairs = append(pairs, pair{int32(i), o})
		}
	}

	// Longest strictly-increasing subsequence over oldID (patience sort).
	// tails[k] = index into pairs of the smallest tail of an increasing
	// subsequence of length k+1.
	tails := make([]int, 0, len(pairs))
	prev := make([]int, len(pairs))
	for i := range pairs {
		o := pairs[i].oldID
		k := sort.Search(len(tails), func(j int) bool { return pairs[tails[j]].oldID >= o })
		if k > 0 {
			prev[i] = tails[k-1]
		} else {
			prev[i] = -1
		}
		if k == len(tails) {
			tails = append(tails, i)
		} else {
			tails[k] = i
		}
	}
	if len(tails) > 0 {
		for i := tails[len(tails)-1]; i >= 0; i = prev[i] {
			p := pairs[i]
			al.NewToOld[p.newID] = p.oldID
			al.OldToNew[p.oldID] = p.newID
			al.Matched++
		}
	}
	return al
}

// OverlapFraction estimates how much of the smaller hash multiset is shared
// between two graphs' ordered cone hashes — a cheap pre-alignment score for
// picking the nearest cached relative. Duplicated hashes count once.
func OverlapFraction(a, b []uint64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[uint64]struct{}, len(a))
	for _, h := range a {
		set[h] = struct{}{}
	}
	shared := 0
	seen := make(map[uint64]struct{}, len(b))
	for _, h := range b {
		if _, dup := seen[h]; dup {
			continue
		}
		seen[h] = struct{}{}
		if _, ok := set[h]; ok {
			shared++
		}
	}
	min := len(set)
	if len(seen) < min {
		min = len(seen)
	}
	return float64(shared) / float64(min)
}
