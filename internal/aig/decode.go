package aig

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Format names accepted by Decode.
const (
	FormatAuto = "auto"
	FormatAAG  = "aag"
	FormatBLIF = "blif"
)

// Decode parses a combinational circuit from r in the named format:
// "aag"/"aiger" (ASCII AIGER), "blif", or "auto"/"" which sniffs the format
// from the first non-comment line. This is the single decode path shared by
// the slap CLI and the slap-serve HTTP front end.
func Decode(format string, r io.Reader) (*AIG, error) {
	switch strings.ToLower(format) {
	case "", FormatAuto:
		return DecodeAuto(r)
	case FormatAAG, "aiger":
		return ReadAAG(r)
	case FormatBLIF:
		return ReadBLIF(r)
	default:
		return nil, fmt.Errorf("aig: unknown circuit format %q (want aag, blif or auto)", format)
	}
}

// FormatForPath returns the decode format implied by a file name: ".blif"
// selects BLIF, everything else ASCII AIGER (the historical CLI rule).
// The name "-" (stdin) selects auto-sniffing.
func FormatForPath(path string) string {
	switch {
	case path == "-":
		return FormatAuto
	case strings.HasSuffix(path, ".blif"):
		return FormatBLIF
	default:
		return FormatAAG
	}
}

// DecodeAuto parses a circuit whose format is sniffed from the stream: a
// first non-blank, non-'#' line starting with "aag" is ASCII AIGER; one
// starting with '.' is BLIF. The sniffer inspects at most the first 4 KiB.
func DecodeAuto(r io.Reader) (*AIG, error) {
	br := bufio.NewReaderSize(r, 4096)
	head, err := br.Peek(4096)
	if len(head) == 0 && err != nil && err != io.EOF {
		return nil, fmt.Errorf("aig: sniffing circuit format: %w", err)
	}
	for _, line := range strings.Split(string(head), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "aag"):
			return ReadAAG(br)
		case strings.HasPrefix(line, "."):
			return ReadBLIF(br)
		}
		return nil, fmt.Errorf("aig: cannot detect circuit format from line %q (want an ASCII AIGER 'aag' header or a BLIF '.' directive)", truncate(line, 40))
	}
	return nil, fmt.Errorf("aig: cannot detect circuit format: no content in the first %d bytes", len(head))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
