package aig

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// blifToken reports whether a name can be written as a single BLIF token:
// non-empty, no whitespace or continuation characters, no leading dot or
// comment marker, and not shadowing the "$n<id>" internal namespace.
func blifToken(name string) bool {
	if name == "" || strings.ContainsAny(name, " \t\\#") ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "$n") {
		return false
	}
	return true
}

// WriteBLIF encodes the AIG as a combinational BLIF model: one two-input
// .names table per AND node (cube characters 0/1 encode fanin complement
// bits) plus one buffer/inverter table per primary output. Internal signals
// are named "$n<id>" to avoid clashing with user PI/PO names. Reading the
// output back with ReadBLIF reconstructs a structurally identical graph up
// to node-id permutation and dropped dead nodes, so StructuralHash is
// preserved across the round trip.
func WriteBLIF(w io.Writer, g *AIG) error {
	names := make(map[string]bool, len(g.piName)+len(g.pos))
	for _, n := range g.piName {
		if !blifToken(n) {
			return fmt.Errorf("blif: PI name %q is not encodable", n)
		}
		if names[n] {
			return fmt.Errorf("blif: duplicate PI name %q", n)
		}
		names[n] = true
	}
	for _, po := range g.pos {
		if !blifToken(po.Name) {
			return fmt.Errorf("blif: PO name %q is not encodable", po.Name)
		}
		if names[po.Name] {
			return fmt.Errorf("blif: duplicate or PI-clashing PO name %q", po.Name)
		}
		names[po.Name] = true
	}

	bw := bufio.NewWriter(w)
	name := g.Name
	if name == "" {
		name = "aig"
	}
	fmt.Fprintf(bw, ".model %s\n", name)

	// signal returns the BLIF name of a node's positive output.
	piIdx := make(map[uint32]int, len(g.pis))
	for i, n := range g.pis {
		piIdx[n] = i
	}
	signal := func(n uint32) string {
		if g.IsPI(n) {
			return g.piName[piIdx[n]]
		}
		return fmt.Sprintf("$n%d", n)
	}

	bw.WriteString(".inputs")
	for _, n := range g.piName {
		fmt.Fprintf(bw, " %s", n)
	}
	bw.WriteString("\n.outputs")
	for _, po := range g.pos {
		fmt.Fprintf(bw, " %s", po.Name)
	}
	bw.WriteString("\n")

	cubeBit := func(l Lit) byte {
		if l.IsCompl() {
			return '0'
		}
		return '1'
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		f0, f1 := g.Fanins(n)
		fmt.Fprintf(bw, ".names %s %s %s\n%c%c 1\n",
			signal(f0.Node()), signal(f1.Node()), signal(n),
			cubeBit(f0), cubeBit(f1))
	}
	for _, po := range g.pos {
		switch po.Lit {
		case ConstFalse:
			fmt.Fprintf(bw, ".names %s\n", po.Name) // empty table = constant 0
		case ConstTrue:
			fmt.Fprintf(bw, ".names %s\n1\n", po.Name)
		default:
			fmt.Fprintf(bw, ".names %s %s\n%c 1\n",
				signal(po.Lit.Node()), po.Name, cubeBit(po.Lit))
		}
	}
	bw.WriteString(".end\n")
	return bw.Flush()
}
