package aig

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadBLIF parses a combinational BLIF model into an AIG. Each .names
// table is synthesised as a sum of products (cubes may use 0, 1 and -).
// Tables may appear in any order; dependencies are resolved recursively and
// combinational cycles are rejected. Latches and subcircuits are not
// supported.
func ReadBLIF(r io.Reader) (*AIG, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	type table struct {
		inputs []string
		output string
		cubes  []string
		onSet  bool // true when cube outputs are '1'
	}

	var (
		modelName string
		inputs    []string
		outputs   []string
		tables    []*table
		current   *table
	)

	// Lines may be continued with a trailing backslash.
	readLogical := func() (string, bool) {
		var parts []string
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if strings.HasSuffix(line, "\\") {
				parts = append(parts, strings.TrimSuffix(line, "\\"))
				continue
			}
			parts = append(parts, line)
			return strings.Join(parts, " "), true
		}
		return strings.Join(parts, " "), len(parts) > 0
	}

	for {
		line, ok := readLogical()
		if !ok {
			break
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case ".model":
			if len(fields) > 1 {
				modelName = fields[1]
			}
		case ".inputs":
			inputs = append(inputs, fields[1:]...)
			current = nil
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
			current = nil
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names without signals")
			}
			current = &table{
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
				onSet:  true,
			}
			tables = append(tables, current)
		case ".end":
			current = nil
		case ".latch", ".subckt", ".gate":
			return nil, fmt.Errorf("blif: %s is not supported (combinational .names models only)", fields[0])
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("blif: unsupported directive %s", fields[0])
			}
			if current == nil {
				return nil, fmt.Errorf("blif: cube line %q outside a .names table", line)
			}
			switch {
			case len(current.inputs) == 0 && len(fields) == 1:
				// Constant-one table: a bare "1" line.
				if fields[0] != "1" {
					return nil, fmt.Errorf("blif: bad constant table line %q", line)
				}
				current.cubes = append(current.cubes, "")
			case len(fields) == 2:
				if len(fields[0]) != len(current.inputs) {
					return nil, fmt.Errorf("blif: cube %q width %d, want %d", fields[0], len(fields[0]), len(current.inputs))
				}
				switch fields[1] {
				case "1":
					current.onSet = true
				case "0":
					current.onSet = false
				default:
					return nil, fmt.Errorf("blif: bad cube output %q", fields[1])
				}
				current.cubes = append(current.cubes, fields[0])
			default:
				return nil, fmt.Errorf("blif: malformed cube line %q", line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(inputs) == 0 && len(tables) == 0 {
		return nil, fmt.Errorf("blif: empty model")
	}

	g := New(modelName)
	sig := make(map[string]Lit, len(inputs)+len(tables))
	for _, name := range inputs {
		if _, dup := sig[name]; dup {
			return nil, fmt.Errorf("blif: duplicate input %s", name)
		}
		sig[name] = g.AddPI(name)
	}
	byOutput := make(map[string]*table, len(tables))
	for _, t := range tables {
		if _, dup := byOutput[t.output]; dup {
			return nil, fmt.Errorf("blif: signal %s defined twice", t.output)
		}
		if _, isPI := sig[t.output]; isPI {
			return nil, fmt.Errorf("blif: table drives input %s", t.output)
		}
		byOutput[t.output] = t
	}

	const inProgress = ^Lit(0) - 1
	var resolve func(name string) (Lit, error)
	resolve = func(name string) (Lit, error) {
		if l, ok := sig[name]; ok {
			if l == inProgress {
				return 0, fmt.Errorf("blif: combinational cycle through %s", name)
			}
			return l, nil
		}
		t, ok := byOutput[name]
		if !ok {
			return 0, fmt.Errorf("blif: undefined signal %s", name)
		}
		sig[name] = inProgress
		ins := make([]Lit, len(t.inputs))
		for i, in := range t.inputs {
			l, err := resolve(in)
			if err != nil {
				return 0, err
			}
			ins[i] = l
		}
		out := ConstFalse
		for _, cube := range t.cubes {
			term := ConstTrue
			for i, c := range cube {
				switch c {
				case '1':
					term = g.And(term, ins[i])
				case '0':
					term = g.And(term, ins[i].Not())
				case '-':
				default:
					return 0, fmt.Errorf("blif: bad cube character %q in table %s", string(c), name)
				}
			}
			out = g.Or(out, term)
		}
		if !t.onSet {
			out = out.Not()
		}
		sig[name] = out
		return out, nil
	}

	for _, name := range outputs {
		l, err := resolve(name)
		if err != nil {
			return nil, err
		}
		g.AddPO(name, l)
	}
	return g, nil
}
