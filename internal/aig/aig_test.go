package aig

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	l := MakeLit(7, true)
	if l.Node() != 7 || !l.IsCompl() {
		t.Fatalf("MakeLit/Node/IsCompl broken: %v", l)
	}
	if l.Not().IsCompl() {
		t.Errorf("Not must clear the complement bit")
	}
	if l.NotIf(false) != l || l.NotIf(true) != l.Not() {
		t.Errorf("NotIf broken")
	}
}

func TestAndSimplifications(t *testing.T) {
	g := New("t")
	a := g.AddPI("a")
	b := g.AddPI("b")
	if g.And(ConstFalse, a) != ConstFalse {
		t.Errorf("0 AND a must be 0")
	}
	if g.And(ConstTrue, a) != a {
		t.Errorf("1 AND a must be a")
	}
	if g.And(a, a) != a {
		t.Errorf("a AND a must be a")
	}
	if g.And(a, a.Not()) != ConstFalse {
		t.Errorf("a AND !a must be 0")
	}
	x := g.And(a, b)
	y := g.And(b, a)
	if x != y {
		t.Errorf("structural hashing must merge commuted ANDs")
	}
	if g.NumAnds() != 1 {
		t.Errorf("expected exactly one AND node, got %d", g.NumAnds())
	}
}

func TestSimulateBasicGates(t *testing.T) {
	g := New("gates")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("and", g.And(a, b))
	g.AddPO("or", g.Or(a, b))
	g.AddPO("xor", g.Xor(a, b))
	g.AddPO("nand", g.Nand(a, b))
	g.AddPO("xnor", g.Xnor(a, b))
	g.AddPO("nor", g.Nor(a, b))

	av := uint64(0b0101)
	bv := uint64(0b0011)
	out := g.Simulate([]uint64{av, bv})
	mask := uint64(0b1111)
	wants := []uint64{
		av & bv, av | bv, av ^ bv, ^(av & bv) & mask, ^(av ^ bv) & mask, ^(av | bv) & mask,
	}
	for i, want := range wants {
		if out[i]&mask != want {
			t.Errorf("PO %s: got %04b want %04b", g.POs()[i].Name, out[i]&mask, want)
		}
	}
}

func TestMuxAndMaj(t *testing.T) {
	g := New("muxmaj")
	s := g.AddPI("s")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("mux", g.Mux(s, a, b))
	g.AddPO("maj", g.Maj(s, a, b))
	for m := 0; m < 8; m++ {
		sv := uint64(m & 1)
		av := uint64(m >> 1 & 1)
		bv := uint64(m >> 2 & 1)
		out := g.Simulate([]uint64{sv, av, bv})
		wantMux := bv
		if sv == 1 {
			wantMux = av
		}
		cnt := sv + av + bv
		wantMaj := uint64(0)
		if cnt >= 2 {
			wantMaj = 1
		}
		if out[0]&1 != wantMux {
			t.Errorf("mux(%d,%d,%d) = %d want %d", sv, av, bv, out[0]&1, wantMux)
		}
		if out[1]&1 != wantMaj {
			t.Errorf("maj(%d,%d,%d) = %d want %d", sv, av, bv, out[1]&1, wantMaj)
		}
	}
}

func TestLevelsAndReverseLevels(t *testing.T) {
	g := New("lv")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	abc := g.And(ab, c)
	g.AddPO("f", abc)
	if g.Level(a.Node()) != 0 {
		t.Errorf("PI level must be 0")
	}
	if g.Level(ab.Node()) != 1 || g.Level(abc.Node()) != 2 {
		t.Errorf("levels wrong: %d %d", g.Level(ab.Node()), g.Level(abc.Node()))
	}
	if g.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d want 2", g.MaxLevel())
	}
	if g.ReverseLevel(abc.Node()) != 0 {
		t.Errorf("PO driver reverse level must be 0")
	}
	if g.ReverseLevel(ab.Node()) != 1 || g.ReverseLevel(a.Node()) != 2 {
		t.Errorf("reverse levels wrong: %d %d", g.ReverseLevel(ab.Node()), g.ReverseLevel(a.Node()))
	}
}

func TestFanoutAndInvertedFanout(t *testing.T) {
	g := New("fo")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	y := g.And(x.Not(), a)
	g.AddPO("x", x)
	g.AddPO("y", y)
	if g.Fanout(a.Node()) != 2 {
		t.Errorf("fanout(a) = %d want 2", g.Fanout(a.Node()))
	}
	if g.Fanout(x.Node()) != 2 { // one AND fanin + one PO
		t.Errorf("fanout(x) = %d want 2", g.Fanout(x.Node()))
	}
	if !g.HasInvertedFanout(x.Node()) {
		t.Errorf("x is referenced complemented by y")
	}
	if g.HasInvertedFanout(y.Node()) {
		t.Errorf("y has no complemented fanout")
	}
}

func TestConeSize(t *testing.T) {
	g := New("cone")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	bc := g.And(b, c)
	f := g.And(ab, bc)
	g.AddPO("f", f)
	if got := g.ConeSize(f.Node()); got != 3 {
		t.Errorf("ConeSize = %d want 3", got)
	}
	if got := g.ConeSize(a.Node()); got != 0 {
		t.Errorf("ConeSize of PI = %d want 0", got)
	}
}

func TestAndNOrN(t *testing.T) {
	g := New("nary")
	var ins []Lit
	for i := 0; i < 5; i++ {
		ins = append(ins, g.AddPI(""))
	}
	g.AddPO("and", g.AndN(ins))
	g.AddPO("or", g.OrN(ins))
	if g.AndN(nil) != ConstTrue || g.OrN(nil) != ConstFalse {
		t.Errorf("empty fold identities wrong")
	}
	vals := []uint64{0b1111, 0b1110, 0b1111, 0b1011, 0b1111}
	out := g.Simulate(vals)
	if out[0]&0b1111 != 0b1010 {
		t.Errorf("AndN wrong: %04b", out[0]&0b1111)
	}
	if out[1]&0b1111 != 0b1111 {
		t.Errorf("OrN wrong: %04b", out[1]&0b1111)
	}
}

// buildRandom creates a pseudo-random AIG for round-trip and property tests.
func buildRandom(rng *rand.Rand, nPIs, nAnds int) *AIG {
	g := New("rand")
	lits := make([]Lit, 0, nPIs+nAnds)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < 4; i++ {
		g.AddPO("", lits[len(lits)-1-i].NotIf(rng.Intn(2) == 1))
	}
	return g
}

func TestAAGRoundTripFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		g := buildRandom(rng, 6, 40)
		var buf bytes.Buffer
		if err := g.WriteAAG(&buf); err != nil {
			t.Fatalf("WriteAAG: %v", err)
		}
		h, err := ReadAAG(&buf)
		if err != nil {
			t.Fatalf("ReadAAG: %v", err)
		}
		if h.NumPIs() != g.NumPIs() || h.NumPOs() != g.NumPOs() {
			t.Fatalf("interface mismatch after round trip")
		}
		// Functional equivalence on random patterns.
		ins := make([]uint64, g.NumPIs())
		for i := range ins {
			ins[i] = rng.Uint64()
		}
		og := g.Simulate(ins)
		oh := h.Simulate(ins)
		for i := range og {
			if og[i] != oh[i] {
				t.Fatalf("round trip changed PO %d function", i)
			}
		}
	}
}

func TestReadAAGErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"aag 1 1 1 1 0\n2\n", // latch present
		"aag x 0 0 0 0\n",
	}
	for _, c := range cases {
		if _, err := ReadAAG(bytes.NewBufferString(c)); err == nil {
			t.Errorf("ReadAAG(%q) should fail", c)
		}
	}
}

func TestTopologicalInvariant(t *testing.T) {
	// Fanins must always have smaller node ids than the node itself.
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := buildRandom(rng, 4, 30)
		for i := uint32(1); i < uint32(g.NumNodes()); i++ {
			if !g.IsAnd(i) {
				continue
			}
			f0, f1 := g.Fanins(i)
			if f0.Node() >= i || f1.Node() >= i {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestSimulatePanicOnBadInput(t *testing.T) {
	g := New("p")
	g.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Errorf("Simulate with wrong PI count must panic")
		}
	}()
	g.Simulate(nil)
}

func BenchmarkAndStrash(b *testing.B) {
	g := New("bench")
	a := g.AddPI("")
	c := g.AddPI("")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.And(a, c)
	}
}

func BenchmarkSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g := buildRandom(rng, 16, 2000)
	ins := make([]uint64, g.NumPIs())
	for i := range ins {
		ins[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Simulate(ins)
	}
}
