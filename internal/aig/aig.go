// Package aig implements And-Inverter Graphs (AIGs), the subject-graph
// representation used by the SLAP technology-mapping flow.
//
// An AIG is a DAG whose internal nodes are two-input AND gates and whose
// edges may be complemented. Node 0 is the constant-false node; primary
// inputs have no fanins. Edges are encoded as literals in the AIGER
// convention: literal = 2*node + complement bit, so literal 0 is constant
// false and literal 1 constant true.
//
// Nodes are created in topological order (fanins always precede a node), so
// iterating node ids ascending is a valid topological traversal.
package aig

import (
	"fmt"
	"sync/atomic"
)

// Lit is an edge literal: 2*node + complement bit.
type Lit uint32

// ConstFalse and ConstTrue are the two constant literals.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// MakeLit builds a literal from a node id and a complement flag.
func MakeLit(node uint32, compl bool) Lit {
	l := Lit(node << 1)
	if compl {
		l |= 1
	}
	return l
}

// Node returns the node id the literal refers to.
func (l Lit) Node() uint32 { return uint32(l) >> 1 }

// IsCompl reports whether the literal is complemented.
func (l Lit) IsCompl() bool { return l&1 == 1 }

// Not returns the complement of the literal.
func (l Lit) Not() Lit { return l ^ 1 }

// NotIf complements the literal when c is true.
func (l Lit) NotIf(c bool) Lit {
	if c {
		return l ^ 1
	}
	return l
}

type nodeType uint8

const (
	typeConst nodeType = iota
	typePI
	typeAnd
)

type node struct {
	f0, f1 Lit
	typ    nodeType
}

// PO is a named primary output driven by a literal.
type PO struct {
	Name string
	Lit  Lit
}

// AIG is an And-Inverter Graph.
type AIG struct {
	Name string

	nodes  []node
	pis    []uint32
	piName []string
	pos    []PO

	strash map[[2]Lit]uint32

	// Lazily computed structural annotations, published atomically so
	// concurrent read-only users — e.g. parallel random mappings of one
	// shared training graph — neither race with each other nor with the
	// first computation; nil (cleared on mutation) when stale. Duplicate
	// concurrent computes are harmless: the build is deterministic, so
	// whichever publication wins carries identical contents.
	levels  atomic.Pointer[[]int32]
	rlevels atomic.Pointer[[]int32]
	fan     atomic.Pointer[fanoutAnnot]
}

// fanoutAnnot bundles the two fanout-derived annotations that are
// computed by one pass and must publish together.
type fanoutAnnot struct {
	fanouts []int32
	invOut  []bool
}

// New returns an empty AIG containing only the constant node.
func New(name string) *AIG {
	g := &AIG{
		Name:   name,
		nodes:  make([]node, 1, 1024),
		strash: make(map[[2]Lit]uint32),
	}
	g.nodes[0] = node{typ: typeConst}
	return g
}

// NumNodes returns the total node count including the constant node.
func (g *AIG) NumNodes() int { return len(g.nodes) }

// NumPIs returns the number of primary inputs.
func (g *AIG) NumPIs() int { return len(g.pis) }

// NumPOs returns the number of primary outputs.
func (g *AIG) NumPOs() int { return len(g.pos) }

// NumAnds returns the number of AND nodes.
func (g *AIG) NumAnds() int { return len(g.nodes) - 1 - len(g.pis) }

// PIs returns the node ids of the primary inputs in creation order.
func (g *AIG) PIs() []uint32 { return g.pis }

// PIName returns the name of the i-th primary input.
func (g *AIG) PIName(i int) string { return g.piName[i] }

// POs returns the primary outputs in creation order.
func (g *AIG) POs() []PO { return g.pos }

// IsPI reports whether node n is a primary input.
func (g *AIG) IsPI(n uint32) bool { return g.nodes[n].typ == typePI }

// IsAnd reports whether node n is an AND node.
func (g *AIG) IsAnd(n uint32) bool { return g.nodes[n].typ == typeAnd }

// IsConst reports whether node n is the constant node.
func (g *AIG) IsConst(n uint32) bool { return g.nodes[n].typ == typeConst }

// Fanins returns the two fanin literals of AND node n.
func (g *AIG) Fanins(n uint32) (Lit, Lit) {
	nd := &g.nodes[n]
	return nd.f0, nd.f1
}

// AddPI creates a new primary input and returns its (positive) literal.
func (g *AIG) AddPI(name string) Lit {
	id := uint32(len(g.nodes))
	g.nodes = append(g.nodes, node{typ: typePI})
	g.pis = append(g.pis, id)
	if name == "" {
		name = fmt.Sprintf("pi%d", len(g.pis)-1)
	}
	g.piName = append(g.piName, name)
	g.invalidate()
	return MakeLit(id, false)
}

// AddPO registers a primary output driven by lit.
func (g *AIG) AddPO(name string, lit Lit) {
	if name == "" {
		name = fmt.Sprintf("po%d", len(g.pos))
	}
	g.pos = append(g.pos, PO{Name: name, Lit: lit})
	g.invalidate()
}

// And returns a literal for the conjunction of a and b, reusing structurally
// identical nodes and applying constant/trivial simplifications.
func (g *AIG) And(a, b Lit) Lit {
	// Normalise operand order for structural hashing.
	if a > b {
		a, b = b, a
	}
	switch {
	case a == ConstFalse:
		return ConstFalse
	case a == ConstTrue:
		return b
	case a == b:
		return a
	case a == b.Not():
		return ConstFalse
	}
	key := [2]Lit{a, b}
	if id, ok := g.strash[key]; ok {
		return MakeLit(id, false)
	}
	id := uint32(len(g.nodes))
	g.nodes = append(g.nodes, node{f0: a, f1: b, typ: typeAnd})
	g.strash[key] = id
	g.invalidate()
	return MakeLit(id, false)
}

// Or returns the disjunction of a and b.
func (g *AIG) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns the exclusive-or of a and b.
func (g *AIG) Xor(a, b Lit) Lit {
	return g.Or(g.And(a, b.Not()), g.And(a.Not(), b))
}

// Xnor returns the complement of Xor.
func (g *AIG) Xnor(a, b Lit) Lit { return g.Xor(a, b).Not() }

// Nand returns the complement of And.
func (g *AIG) Nand(a, b Lit) Lit { return g.And(a, b).Not() }

// Nor returns the complement of Or.
func (g *AIG) Nor(a, b Lit) Lit { return g.Or(a, b).Not() }

// Mux returns sel ? t : e.
func (g *AIG) Mux(sel, t, e Lit) Lit {
	return g.Or(g.And(sel, t), g.And(sel.Not(), e))
}

// Maj returns the majority of three literals.
func (g *AIG) Maj(a, b, c Lit) Lit {
	return g.Or(g.And(a, b), g.Or(g.And(a, c), g.And(b, c)))
}

// AndN folds And over a slice of literals; it returns ConstTrue for an
// empty slice.
func (g *AIG) AndN(ls []Lit) Lit {
	out := ConstTrue
	for _, l := range ls {
		out = g.And(out, l)
	}
	return out
}

// OrN folds Or over a slice of literals; it returns ConstFalse for an
// empty slice.
func (g *AIG) OrN(ls []Lit) Lit {
	out := ConstFalse
	for _, l := range ls {
		out = g.Or(out, l)
	}
	return out
}

func (g *AIG) invalidate() {
	g.levels.Store(nil)
	g.rlevels.Store(nil)
	g.fan.Store(nil)
}

// levelSlice returns the level annotation, computing and publishing it on
// first use.
func (g *AIG) levelSlice() []int32 {
	if p := g.levels.Load(); p != nil {
		return *p
	}
	ls := g.computeLevels()
	g.levels.Store(&ls)
	return ls
}

// Level returns the longest structural path from any PI to node n,
// inclusive. PIs and the constant node have level 0.
func (g *AIG) Level(n uint32) int32 {
	return g.levelSlice()[n]
}

// MaxLevel returns the depth of the graph (largest node level).
func (g *AIG) MaxLevel() int32 {
	var m int32
	for _, l := range g.levelSlice() {
		if l > m {
			m = l
		}
	}
	return m
}

func (g *AIG) computeLevels() []int32 {
	levels := make([]int32, len(g.nodes))
	for i := 1; i < len(g.nodes); i++ {
		nd := &g.nodes[i]
		if nd.typ != typeAnd {
			continue
		}
		l0 := levels[nd.f0.Node()]
		l1 := levels[nd.f1.Node()]
		if l1 > l0 {
			l0 = l1
		}
		levels[i] = l0 + 1
	}
	return levels
}

// ReverseLevel returns the longest structural path from node n to any PO.
// A node directly driving a PO (and nothing else) has reverse level 0.
func (g *AIG) ReverseLevel(n uint32) int32 {
	if p := g.rlevels.Load(); p != nil {
		return (*p)[n]
	}
	rl := g.computeReverseLevels()
	g.rlevels.Store(&rl)
	return rl[n]
}

func (g *AIG) computeReverseLevels() []int32 {
	rlevels := make([]int32, len(g.nodes))
	// Reverse topological order: nodes are in topo order, walk backwards.
	for i := len(g.nodes) - 1; i >= 1; i-- {
		nd := &g.nodes[i]
		if nd.typ != typeAnd {
			continue
		}
		r := rlevels[i] + 1
		for _, f := range [2]Lit{nd.f0, nd.f1} {
			fn := f.Node()
			if r > rlevels[fn] {
				rlevels[fn] = r
			}
		}
	}
	return rlevels
}

// fanAnnot returns the fanout annotations, computing and publishing them
// on first use.
func (g *AIG) fanAnnot() *fanoutAnnot {
	if p := g.fan.Load(); p != nil {
		return p
	}
	fa := g.computeFanouts()
	g.fan.Store(fa)
	return fa
}

// Fanout returns the number of fanout edges of node n, counting both AND
// fanins and primary outputs.
func (g *AIG) Fanout(n uint32) int32 {
	return g.fanAnnot().fanouts[n]
}

// HasInvertedFanout reports whether some fanout edge (AND fanin or PO)
// references node n complemented. This is the inv(e0) feature of the paper's
// node embedding.
func (g *AIG) HasInvertedFanout(n uint32) bool {
	return g.fanAnnot().invOut[n]
}

func (g *AIG) computeFanouts() *fanoutAnnot {
	fa := &fanoutAnnot{
		fanouts: make([]int32, len(g.nodes)),
		invOut:  make([]bool, len(g.nodes)),
	}
	for i := 1; i < len(g.nodes); i++ {
		nd := &g.nodes[i]
		if nd.typ != typeAnd {
			continue
		}
		for _, f := range [2]Lit{nd.f0, nd.f1} {
			fa.fanouts[f.Node()]++
			if f.IsCompl() {
				fa.invOut[f.Node()] = true
			}
		}
	}
	for _, po := range g.pos {
		fa.fanouts[po.Lit.Node()]++
		if po.Lit.IsCompl() {
			fa.invOut[po.Lit.Node()] = true
		}
	}
	return fa
}

// Simulate evaluates the graph on 64 input patterns at once. piValues[i]
// holds 64 packed values for the i-th PI. It returns one packed word per PO.
func (g *AIG) Simulate(piValues []uint64) []uint64 {
	if len(piValues) != len(g.pis) {
		panic(fmt.Sprintf("aig: Simulate needs %d PI words, got %d", len(g.pis), len(piValues)))
	}
	vals := g.SimulateNodes(piValues)
	out := make([]uint64, len(g.pos))
	for i, po := range g.pos {
		v := vals[po.Lit.Node()]
		if po.Lit.IsCompl() {
			v = ^v
		}
		out[i] = v
	}
	return out
}

// SimulateNodes evaluates the graph on 64 packed input patterns and returns
// the value word of every node (indexed by node id, uncomplemented).
func (g *AIG) SimulateNodes(piValues []uint64) []uint64 {
	vals := make([]uint64, len(g.nodes))
	pi := 0
	for i := 1; i < len(g.nodes); i++ {
		nd := &g.nodes[i]
		switch nd.typ {
		case typePI:
			vals[i] = piValues[pi]
			pi++
		case typeAnd:
			a := vals[nd.f0.Node()]
			if nd.f0.IsCompl() {
				a = ^a
			}
			b := vals[nd.f1.Node()]
			if nd.f1.IsCompl() {
				b = ^b
			}
			vals[i] = a & b
		}
	}
	return vals
}

// LitValue extracts the value of a literal from a node-value slice produced
// by SimulateNodes.
func LitValue(vals []uint64, l Lit) uint64 {
	v := vals[l.Node()]
	if l.IsCompl() {
		v = ^v
	}
	return v
}

// ConeSize returns the number of AND nodes in the transitive fanin cone of
// node n, stopping at PIs.
func (g *AIG) ConeSize(n uint32) int {
	seen := make(map[uint32]bool)
	var walk func(m uint32)
	count := 0
	walk = func(m uint32) {
		if seen[m] || !g.IsAnd(m) {
			return
		}
		seen[m] = true
		count++
		nd := &g.nodes[m]
		walk(nd.f0.Node())
		walk(nd.f1.Node())
	}
	walk(n)
	return count
}

// Stats returns a one-line human-readable summary of the graph.
func (g *AIG) Stats() string {
	return fmt.Sprintf("%s: pi=%d po=%d and=%d level=%d",
		g.Name, g.NumPIs(), g.NumPOs(), g.NumAnds(), g.MaxLevel())
}
