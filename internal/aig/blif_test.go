package aig

import (
	"math/rand"
	"strings"
	"testing"
)

func TestReadBLIFBasicGates(t *testing.T) {
	src := `
.model gates
.inputs a b
.outputs and or xor notb
.names a b and
11 1
.names a b or
1- 1
-1 1
.names a b xor
10 1
01 1
.names b notb
0 1
.end
`
	g, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "gates" || g.NumPIs() != 2 || g.NumPOs() != 4 {
		t.Fatalf("interface wrong: %s", g.Stats())
	}
	av, bv := uint64(0b0101), uint64(0b0011)
	out := g.Simulate([]uint64{av, bv})
	mask := uint64(0b1111)
	wants := []uint64{av & bv, av | bv, av ^ bv, ^bv & mask}
	for i, want := range wants {
		if out[i]&mask != want {
			t.Fatalf("PO %d = %04b, want %04b", i, out[i]&mask, want)
		}
	}
}

func TestReadBLIFOffsetCover(t *testing.T) {
	// A table whose cubes describe the OFF-set ('0' outputs): f = !(a&b).
	src := `
.model offset
.inputs a b
.outputs f
.names a b f
11 0
.end
`
	g, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := g.Simulate([]uint64{0b0101, 0b0011})
	if out[0]&0b1111 != 0b1110 {
		t.Fatalf("offset cover wrong: %04b", out[0]&0b1111)
	}
}

func TestReadBLIFConstants(t *testing.T) {
	src := `
.model consts
.inputs a
.outputs zero one
.names zero
.names one
1
.end
`
	g, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	out := g.Simulate([]uint64{0xFFFF})
	if out[0] != 0 || out[1] != ^uint64(0) {
		t.Fatalf("constants wrong: %x %x", out[0], out[1])
	}
}

func TestReadBLIFOutOfOrderTables(t *testing.T) {
	// g depends on h, defined later in the file.
	src := `
.model ooo
.inputs a b
.outputs g
.names h a g
11 1
.names a b h
01 1
10 1
.end
`
	g, err := ReadBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// g = (a xor b) & a = a & !b.
	out := g.Simulate([]uint64{0b0101, 0b0011})
	if out[0]&0b1111 != 0b0100 {
		t.Fatalf("out-of-order resolution wrong: %04b", out[0]&0b1111)
	}
}

func TestReadBLIFRoundTripFromWriter(t *testing.T) {
	// AIG -> (map-free path) our own BLIF writer lives in the netlist
	// package; here we round-trip via AAG->BLIF-like construction instead:
	// generate a random AIG, dump as BLIF by hand, reread, compare.
	rng := rand.New(rand.NewSource(77))
	g := buildRandom(rng, 5, 30)
	var b strings.Builder
	b.WriteString(".model rt\n.inputs")
	for i := 0; i < g.NumPIs(); i++ {
		b.WriteString(" i" + string(rune('a'+i)))
	}
	b.WriteString("\n.outputs")
	for i := range g.POs() {
		b.WriteString(" o" + string(rune('a'+i)))
	}
	b.WriteString("\n.names n0\n") // constant-false driver for node 0
	name := func(l Lit) string {
		n := l.Node()
		for i, pi := range g.PIs() {
			if pi == n {
				return "i" + string(rune('a'+i))
			}
		}
		return "n" + itoa(int(n))
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		f0, f1 := g.Fanins(n)
		b.WriteString(".names " + name(f0) + " " + name(f1) + " n" + itoa(int(n)) + "\n")
		c0, c1 := byte('1'), byte('1')
		if f0.IsCompl() {
			c0 = '0'
		}
		if f1.IsCompl() {
			c1 = '0'
		}
		b.WriteString(string(c0) + string(c1) + " 1\n")
	}
	for i, po := range g.POs() {
		b.WriteString(".names " + name(po.Lit) + " o" + string(rune('a'+i)) + "\n")
		if po.Lit.IsCompl() {
			b.WriteString("0 1\n")
		} else {
			b.WriteString("1 1\n")
		}
	}
	b.WriteString(".end\n")

	h, err := ReadBLIF(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	ins := make([]uint64, g.NumPIs())
	for i := range ins {
		ins[i] = rng.Uint64()
	}
	want := g.Simulate(ins)
	got := h.Simulate(ins)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("BLIF round trip changed PO %d", i)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var d []byte
	for v > 0 {
		d = append([]byte{byte('0' + v%10)}, d...)
		v /= 10
	}
	return string(d)
}

func TestReadBLIFErrors(t *testing.T) {
	cases := []string{
		"",
		".model m\n.inputs a\n.outputs f\n.latch a f\n.end\n",
		".model m\n.inputs a\n.outputs f\n.names a f\n11 1\n.end\n",     // cube width
		".model m\n.inputs a\n.outputs f\n.names a f\n1 2\n.end\n",      // bad output
		".model m\n.inputs a\n.outputs f\n.end\n",                       // undefined output
		".model m\n.inputs a a\n.outputs f\n.names a f\n1 1\n.end\n",    // dup input
		".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end\n",      // cycle
		".model m\n.inputs a\n.outputs f\n1 1\n.end\n",                  // cube outside table
		".model m\n.inputs a\n.outputs a\n.names x a\n1 1\n.end\n",      // drives input
		".model m\n.inputs a\n.outputs f\n.names a f\n.names a f\n.end", // dup table
	}
	for _, c := range cases {
		if _, err := ReadBLIF(strings.NewReader(c)); err == nil {
			t.Errorf("ReadBLIF(%q) should fail", c)
		}
	}
}
