package aig

import (
	"bytes"
	"strings"
	"testing"
)

// small returns a two-input AND graph for round-tripping.
func small() *AIG {
	g := New("small")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("o", g.And(a, b))
	return g
}

func TestDecodeAutoAAG(t *testing.T) {
	var buf bytes.Buffer
	if err := small().WriteAAG(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := DecodeAuto(&buf)
	if err != nil {
		t.Fatalf("DecodeAuto(aag): %v", err)
	}
	if g.NumPIs() != 2 || g.NumPOs() != 1 {
		t.Fatalf("decoded %d PIs / %d POs, want 2/1", g.NumPIs(), g.NumPOs())
	}
}

func TestDecodeAutoBLIF(t *testing.T) {
	blif := `# a comment first
.model tiny
.inputs a b
.outputs o
.names a b o
11 1
.end
`
	g, err := Decode("auto", strings.NewReader(blif))
	if err != nil {
		t.Fatalf("Decode(auto, blif): %v", err)
	}
	if g.NumPIs() != 2 || g.NumPOs() != 1 {
		t.Fatalf("decoded %d PIs / %d POs, want 2/1", g.NumPIs(), g.NumPOs())
	}
}

func TestDecodeExplicitFormats(t *testing.T) {
	var buf bytes.Buffer
	if err := small().WriteAAG(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode("aag", bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("Decode(aag): %v", err)
	}
	if _, err := Decode("aiger", bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("Decode(aiger): %v", err)
	}
	if _, err := Decode("bogus", bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Decode(bogus): expected error")
	}
}

func TestDecodeAutoGarbage(t *testing.T) {
	if _, err := DecodeAuto(strings.NewReader("not a circuit\n")); err == nil {
		t.Error("expected sniff failure on garbage input")
	}
	if _, err := DecodeAuto(strings.NewReader("")); err == nil {
		t.Error("expected sniff failure on empty input")
	}
	if _, err := DecodeAuto(strings.NewReader("# only comments\n\n")); err == nil {
		t.Error("expected sniff failure on comment-only input")
	}
}

func TestFormatForPath(t *testing.T) {
	cases := map[string]string{
		"x.blif": FormatBLIF,
		"x.aag":  FormatAAG,
		"x":      FormatAAG,
		"-":      FormatAuto,
	}
	for path, want := range cases {
		if got := FormatForPath(path); got != want {
			t.Errorf("FormatForPath(%q) = %q, want %q", path, got, want)
		}
	}
}
