package aig

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadAAG ensures the AIGER parser never panics and that anything it
// accepts round-trips functionally through WriteAAG.
func FuzzReadAAG(f *testing.F) {
	f.Add("aag 0 0 0 0 0\n")
	f.Add("aag 1 1 0 1 0\n2\n2\ni0 a\no0 f\n")
	f.Add("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 x\ni1 y\no0 and\nc\nname\n")
	f.Add("aag 3 2 0 1 1\n2\n4\n7\n6 3 5\n")
	f.Add("aag 2 0 0 0 0\n")
	f.Add("aag x y z\n")
	f.Add("")
	f.Add("aag 1 1 1 0 0\n2\n2 3\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadAAG(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := g.WriteAAG(&buf); err != nil {
			t.Fatalf("accepted graph failed to serialise: %v", err)
		}
		h, err := ReadAAG(&buf)
		if err != nil {
			t.Fatalf("writer output rejected by reader: %v\n%s", err, buf.String())
		}
		if h.NumPIs() != g.NumPIs() || h.NumPOs() != g.NumPOs() {
			t.Fatalf("round trip changed the interface")
		}
		if g.NumPIs() > 0 && g.NumPIs() <= 16 {
			ins := make([]uint64, g.NumPIs())
			for i := range ins {
				ins[i] = 0xAAAA5555CCCC3333 * uint64(i+1)
			}
			a := g.Simulate(ins)
			b := h.Simulate(ins)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip changed PO %d", i)
				}
			}
		}
	})
}
