// Package mapcache provides a bounded, content-addressed cache of mapping
// results for the serving flow: a structural fingerprint of (graph,
// options) maps to the mapped netlist, its QoR and verification bit, with
// LRU eviction under a byte-size budget. Exact repeats are answered in
// O(1); near-misses expose the nearest cached relative (by cone-hash
// overlap) so the ECO delta-remapper can reuse its snapshot; and a
// singleflight group collapses N concurrent identical submissions into one
// mapping whose result everyone shares.
//
// Invalidation is purely content-driven: the key covers the full graph
// encoding (including PI/PO names, which surface in rendered netlists) and
// an options signature including library and model identity, so any change
// to either simply misses; stale entries age out by LRU.
package mapcache

import (
	"container/list"
	"sync"

	"slap/internal/aig"
	"slap/internal/mapper"
)

// Key is a 128-bit content address of a (graph, options) pair.
type Key struct {
	Hi, Lo uint64
}

// KeyOf fingerprints a graph plus an options-signature string. The graph
// part covers node types, fanin literals, PO literals and PI/PO names —
// byte-identical rendered output requires name identity, not just
// structural identity. Two independent FNV-1a passes with distinct offsets
// give 128 bits, making birthday collisions implausible at cache scale.
func KeyOf(g *aig.AIG, sig string) Key {
	const (
		offset1 = 0xcbf29ce484222325
		offset2 = 0x84222325cbf29ce4
		prime   = 0x100000001b3
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	mix := func(v uint64) {
		h1 = (h1 ^ v) * prime
		h2 = (h2 ^ (v ^ 0x9e3779b97f4a7c15)) * prime
	}
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			mix(uint64(s[i]))
		}
	}
	mixStr(g.Name)
	mix(uint64(g.NumNodes()))
	for n := uint32(0); n < uint32(g.NumNodes()); n++ {
		switch {
		case g.IsAnd(n):
			f0, f1 := g.Fanins(n)
			mix(3)
			mix(uint64(f0))
			mix(uint64(f1))
		case g.IsPI(n):
			mix(5)
		default:
			mix(7)
		}
	}
	for i := 0; i < g.NumPIs(); i++ {
		mixStr(g.PIName(i))
	}
	for _, po := range g.POs() {
		mix(uint64(po.Lit))
		mixStr(po.Name)
	}
	mixStr(sig)
	return Key{Hi: h1, Lo: h2}
}

// Snapshot is the ECO baseline a cache entry may carry. mapper.Snapshot and
// core's slap snapshot both implement it.
type Snapshot interface {
	// NodeHashes returns the baseline graph's ordered cone hashes.
	NodeHashes() []uint64
	// SnapshotBytes estimates the snapshot's memory footprint.
	SnapshotBytes() int64
}

// Entry is one cached mapping result.
type Entry struct {
	// Key is the content address the entry was stored under.
	Key Key
	// Sig is the options signature the result was produced under; Nearest
	// only offers entries whose signature matches the request.
	Sig string
	// Result is the complete mapping result (netlist, QoR, counters). It is
	// shared by reference: treat it as immutable.
	Result *mapper.Result
	// Verified records whether the netlist passed equivalence checking.
	Verified bool
	// Snap, when non-nil, is the ECO baseline snapshot for delta-remapping
	// structurally similar designs.
	Snap Snapshot

	bytes int64
	elem  *list.Element
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	// Hits counts exact-key lookups served from the cache (including
	// singleflight followers who shared a leader's fresh result).
	Hits int64
	// Misses counts lookups that found nothing under the exact key.
	Misses int64
	// ECOHits counts misses that were served by delta-remapping against a
	// nearest cached relative instead of a cold full map.
	ECOHits int64
	// Evictions counts entries dropped to stay inside the byte budget.
	Evictions int64
	// Bytes is the current estimated resident size.
	Bytes int64
	// Entries is the current entry count.
	Entries int
	// Snapshots is the number of resident entries carrying an ECO baseline
	// snapshot — the cache's delta-remap warmth, exported so fleet
	// coordinators can judge how much affinity-routed traffic a worker can
	// answer without a cold map.
	Snapshots int
}

// DefaultBudget is the cache byte budget when none is configured.
const DefaultBudget = 256 << 20

// nearestScan bounds how many recent snapshot-bearing entries a Nearest
// call examines; the scan is O(nodes) per candidate.
const nearestScan = 8

// minOverlap is the cone-hash overlap fraction below which a candidate is
// not worth delta-remapping (almost everything would be dirty anyway).
const minOverlap = 0.5

// Cache is a byte-budgeted LRU of mapping results with an integrated
// singleflight group. Safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *Entry
	byKey  map[Key]*list.Element

	hits, misses, ecoHits, evictions int64
	snapshots                        int

	flight map[Key]*flightCall
}

type flightCall struct {
	done  chan struct{}
	entry *Entry
	err   error
}

// New builds a cache with the given byte budget (<= 0 means DefaultBudget).
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{
		budget: budget,
		ll:     list.New(),
		byKey:  make(map[Key]*list.Element),
		flight: make(map[Key]*flightCall),
	}
}

// Get returns the entry stored under k, promoting it to most recently
// used. The hit/miss counters track every call.
func (c *Cache) Get(k Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*Entry), true
	}
	c.misses++
	return nil, false
}

// entryBytes estimates an entry's resident size: cells and their pin
// slices, POs, result bookkeeping and the optional snapshot.
func entryBytes(e *Entry) int64 {
	b := int64(256) // entry + result struct overhead
	if nl := e.Result.Netlist; nl != nil {
		b += int64(nl.NumCells()) * 96
		b += int64(nl.NumPIs()+nl.NumPOs()) * 48
	}
	b += int64(len(e.Result.Cover)) * 64
	b += int64(len(e.Sig))
	if e.Snap != nil {
		b += e.Snap.SnapshotBytes()
	}
	return b
}

// Add stores an entry under its Key, replacing any previous occupant, and
// evicts least-recently-used entries until the byte budget holds. An entry
// larger than the whole budget is not cached.
func (c *Cache) Add(e *Entry) {
	e.bytes = entryBytes(e)
	if e.bytes > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[e.Key]; ok {
		old := el.Value.(*Entry)
		c.bytes -= old.bytes
		if old.Snap != nil {
			c.snapshots--
		}
		c.ll.Remove(el)
		delete(c.byKey, e.Key)
	}
	e.elem = c.ll.PushFront(e)
	c.byKey[e.Key] = e.elem
	c.bytes += e.bytes
	if e.Snap != nil {
		c.snapshots++
	}
	for c.bytes > c.budget && c.ll.Len() > 1 {
		c.evictOldestLocked()
	}
}

func (c *Cache) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	old := el.Value.(*Entry)
	c.ll.Remove(el)
	delete(c.byKey, old.Key)
	c.bytes -= old.bytes
	if old.Snap != nil {
		c.snapshots--
	}
	c.evictions++
}

// Nearest scans the most recently used snapshot-bearing entries with a
// matching options signature and returns the one whose baseline shares the
// largest cone-hash overlap with hashes, provided it clears minOverlap.
// The returned entry's snapshot is immutable and safe to use after the
// entry is evicted.
func (c *Cache) Nearest(sig string, hashes []uint64) *Entry {
	c.mu.Lock()
	var candidates []*Entry
	scanned := 0
	for el := c.ll.Front(); el != nil && scanned < nearestScan; el = el.Next() {
		e := el.Value.(*Entry)
		if e.Snap == nil || e.Sig != sig {
			continue
		}
		candidates = append(candidates, e)
		scanned++
	}
	c.mu.Unlock()

	var best *Entry
	bestScore := minOverlap
	for _, e := range candidates {
		if score := aig.OverlapFraction(hashes, e.Snap.NodeHashes()); score >= bestScore {
			best, bestScore = e, score
		}
	}
	return best
}

// RecordECOHit counts a miss that was served by delta-remapping.
func (c *Cache) RecordECOHit() {
	c.mu.Lock()
	c.ecoHits++
	c.mu.Unlock()
}

// Stats returns current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		ECOHits:   c.ecoHits,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   c.ll.Len(),
		Snapshots: c.snapshots,
	}
}

// Do runs compute under a singleflight keyed by k: the first caller (the
// leader) executes it while concurrent callers with the same key block and
// share the leader's entry and error. shared reports whether this call
// piggybacked on another's computation; shared results are counted as
// cache hits (the work was deduplicated away). compute typically re-checks
// Get, falls back to ECO or a full map, and Adds the entry itself.
func (c *Cache) Do(k Key, compute func() (*Entry, error)) (e *Entry, shared bool, err error) {
	c.mu.Lock()
	if call, ok := c.flight[k]; ok {
		c.mu.Unlock()
		<-call.done
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
		return call.entry, true, call.err
	}
	call := &flightCall{done: make(chan struct{})}
	c.flight[k] = call
	c.mu.Unlock()

	call.entry, call.err = compute()
	c.mu.Lock()
	delete(c.flight, k)
	c.mu.Unlock()
	close(call.done)
	return call.entry, false, call.err
}
