package mapcache

import "sync"

// Flight is a standalone generic singleflight group keyed by Key, for
// deduplicating concurrent identical work that does not go through the
// result cache itself (e.g. classify bursts per model). The zero value is
// not usable; call NewFlight.
type Flight[V any] struct {
	mu sync.Mutex
	m  map[Key]*flightRes[V]
}

type flightRes[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewFlight builds an empty flight group.
func NewFlight[V any]() *Flight[V] {
	return &Flight[V]{m: make(map[Key]*flightRes[V])}
}

// Do executes fn under singleflight semantics: concurrent calls with the
// same key block on the first caller and share its value and error. shared
// reports whether this call reused another's result.
func (f *Flight[V]) Do(k Key, fn func() (V, error)) (v V, shared bool, err error) {
	f.mu.Lock()
	if r, ok := f.m[k]; ok {
		f.mu.Unlock()
		<-r.done
		return r.val, true, r.err
	}
	r := &flightRes[V]{done: make(chan struct{})}
	f.m[k] = r
	f.mu.Unlock()

	r.val, r.err = fn()
	f.mu.Lock()
	delete(f.m, k)
	f.mu.Unlock()
	close(r.done)
	return r.val, false, r.err
}
