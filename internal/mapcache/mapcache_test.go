package mapcache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slap/internal/circuits"
	"slap/internal/mapper"
	"slap/internal/netlist"
)

func testEntry(key Key, sig string, pad int) *Entry {
	return &Entry{
		Key:    key,
		Sig:    sig + string(make([]byte, pad)),
		Result: &mapper.Result{Netlist: netlist.New("t")},
	}
}

func TestKeyOfSensitivity(t *testing.T) {
	g1 := circuits.RandomAIG(1, 8, 100)
	g2 := circuits.RandomAIG(2, 8, 100)
	k1 := KeyOf(g1, "sig")
	if k1 != KeyOf(circuits.RandomAIG(1, 8, 100), "sig") {
		t.Fatal("identical graph+sig disagree on Key")
	}
	if k1 == KeyOf(g2, "sig") {
		t.Fatal("different graphs share a Key")
	}
	if k1 == KeyOf(g1, "other") {
		t.Fatal("different sigs share a Key")
	}
	// Renaming a PO must change the key: rendered netlists carry names.
	g3 := circuits.RandomAIG(1, 8, 100)
	g3.POs()[0].Name = "renamed"
	if k1 == KeyOf(g3, "sig") {
		t.Fatal("renamed PO shares a Key")
	}
}

func TestCacheHitMissAndPromotion(t *testing.T) {
	c := New(1 << 20)
	k := Key{1, 2}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Add(testEntry(k, "s", 0))
	e, ok := c.Get(k)
	if !ok || e.Key != k {
		t.Fatal("stored entry not returned")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats %+v, want 1 hit 1 miss 1 entry", st)
	}
}

func TestCacheLRUEvictionUnderByteBudget(t *testing.T) {
	// Each padded entry is ~1300 bytes; a 4000-byte budget holds three.
	pad := 1000
	probe := testEntry(Key{0, 0}, "s", pad)
	per := entryBytes(probe)
	c := New(3 * per)
	for i := uint64(1); i <= 3; i++ {
		c.Add(testEntry(Key{i, i}, "s", pad))
	}
	if st := c.Stats(); st.Evictions != 0 || st.Entries != 3 {
		t.Fatalf("stats %+v before overflow", st)
	}
	// Touch entry 1 so entry 2 is LRU, then overflow.
	if _, ok := c.Get(Key{1, 1}); !ok {
		t.Fatal("entry 1 missing")
	}
	c.Add(testEntry(Key{4, 4}, "s", pad))
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats %+v after overflow, want 1 eviction, 3 entries", st)
	}
	if _, ok := c.Get(Key{2, 2}); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := c.Get(Key{1, 1}); !ok {
		t.Fatal("recently used entry evicted")
	}
	if st := c.Stats(); st.Bytes > 3*per {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, 3*per)
	}

	// An entry bigger than the whole budget is refused outright.
	c.Add(testEntry(Key{9, 9}, "s", int(4*per)))
	if _, ok := c.Get(Key{9, 9}); ok {
		t.Fatal("over-budget entry was cached")
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New(0)
	k := Key{7, 7}
	var computes, attempted atomic.Int64

	const callers = 8
	var wg sync.WaitGroup
	shares := make([]bool, callers)
	entries := make([]*Entry, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			attempted.Add(1)
			e, shared, err := c.Do(k, func() (*Entry, error) {
				computes.Add(1)
				// Hold the flight open until every caller has at least
				// reached its Do call, so they all join this computation.
				for attempted.Load() < callers {
					runtime.Gosched()
				}
				time.Sleep(20 * time.Millisecond)
				e := testEntry(k, "s", 0)
				c.Add(e)
				return e, nil
			})
			if err != nil {
				t.Error(err)
			}
			shares[i], entries[i] = shared, e
		}(i)
	}
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computations for %d concurrent identical calls, want 1", got, callers)
	}
	leader := 0
	for i, s := range shares {
		if !s {
			leader++
		}
		if entries[i] != entries[0] {
			t.Fatal("callers did not share one entry")
		}
	}
	if leader != 1 {
		t.Fatalf("%d leaders, want 1", leader)
	}
	// Followers count as hits: the mapping work was deduplicated away.
	if st := c.Stats(); st.Hits < callers-1 {
		t.Fatalf("hits=%d, want at least %d follower hits", st.Hits, callers-1)
	}
}

func TestSingleflightErrorPropagation(t *testing.T) {
	c := New(0)
	wantErr := errors.New("mapping exploded")
	_, shared, err := c.Do(Key{5, 5}, func() (*Entry, error) { return nil, wantErr })
	if shared || !errors.Is(err, wantErr) {
		t.Fatalf("leader got shared=%v err=%v", shared, err)
	}
	// The flight is gone afterwards: a retry runs fresh.
	e, shared, err := c.Do(Key{5, 5}, func() (*Entry, error) { return testEntry(Key{5, 5}, "s", 0), nil })
	if shared || err != nil || e == nil {
		t.Fatalf("retry got shared=%v err=%v", shared, err)
	}
}

type fakeSnap struct{ hashes []uint64 }

func (f fakeSnap) NodeHashes() []uint64 { return f.hashes }
func (f fakeSnap) SnapshotBytes() int64 { return int64(len(f.hashes)) * 8 }

func TestNearestPicksBestOverlap(t *testing.T) {
	c := New(0)
	mk := func(i uint64, overlapping int) *Entry {
		hs := make([]uint64, 100)
		for j := range hs {
			if j < overlapping {
				hs[j] = uint64(j) + 1000 // shared prefix
			} else {
				hs[j] = i<<32 + uint64(j) // private
			}
		}
		e := testEntry(Key{i, i}, "sig", 0)
		e.Snap = fakeSnap{hashes: hs}
		return e
	}
	c.Add(mk(1, 60))
	c.Add(mk(2, 90))
	c.Add(mk(3, 30)) // below minOverlap
	other := testEntry(Key{4, 4}, "othersig", 0)
	other.Snap = fakeSnap{hashes: []uint64{1000, 1001}}
	c.Add(other)

	query := make([]uint64, 100)
	for j := range query {
		query[j] = uint64(j) + 1000
	}
	best := c.Nearest("sig", query)
	if best == nil || best.Key != (Key{2, 2}) {
		t.Fatalf("Nearest returned %+v, want entry 2", best)
	}
	if c.Nearest("nosuchsig", query) != nil {
		t.Fatal("Nearest matched across signatures")
	}
	if c.Nearest("sig", query[:10]) == nil {
		// A short query fully contained in a baseline still overlaps 100%.
		t.Fatal("subset query found nothing")
	}
}

func TestFlightGeneric(t *testing.T) {
	f := NewFlight[string]()
	var n, attempted atomic.Int64
	var wg sync.WaitGroup
	results := make([]string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			attempted.Add(1)
			v, _, err := f.Do(Key{1, 1}, func() (string, error) {
				n.Add(1)
				for attempted.Load() < 4 {
					runtime.Gosched()
				}
				time.Sleep(20 * time.Millisecond)
				return fmt.Sprintf("computed-%d", n.Load()), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	wg.Wait()
	if n.Load() != 1 {
		t.Fatalf("%d computations, want 1", n.Load())
	}
	for _, r := range results {
		if r != "computed-1" {
			t.Fatalf("result %q not shared", r)
		}
	}
}
