package opt

import (
	"math/rand"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
)

func equivalent(t *testing.T, a, b *aig.AIG, seed int64) {
	t.Helper()
	if a.NumPIs() != b.NumPIs() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("interface changed: %s vs %s", a.Stats(), b.Stats())
	}
	rng := rand.New(rand.NewSource(seed))
	ins := make([]uint64, a.NumPIs())
	for round := 0; round < 8; round++ {
		for i := range ins {
			ins[i] = rng.Uint64()
		}
		oa := a.Simulate(ins)
		ob := b.Simulate(ins)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("PO %d differs after optimisation", i)
			}
		}
	}
}

func TestSweepRemovesDanglingLogic(t *testing.T) {
	g := aig.New("dangling")
	a := g.AddPI("a")
	b := g.AddPI("b")
	used := g.And(a, b)
	// Dangling cone.
	d1 := g.And(a, b.Not())
	g.And(d1, used)
	g.AddPO("f", used)

	s := Sweep(g)
	if s.NumAnds() != 1 {
		t.Fatalf("sweep kept %d ANDs, want 1", s.NumAnds())
	}
	equivalent(t, g, s, 1)
}

func TestSweepKeepsUnusedPIs(t *testing.T) {
	g := aig.New("pis")
	a := g.AddPI("a")
	g.AddPI("unused")
	g.AddPO("f", a)
	s := Sweep(g)
	if s.NumPIs() != 2 {
		t.Fatalf("sweep dropped a PI")
	}
	equivalent(t, g, s, 2)
}

func TestBalanceReducesChainDepth(t *testing.T) {
	// A linear AND chain of 16 inputs has depth 15; balanced it is 4.
	g := aig.New("chain")
	acc := g.AddPI("")
	for i := 1; i < 16; i++ {
		acc = g.And(acc, g.AddPI(""))
	}
	g.AddPO("f", acc)
	if g.MaxLevel() != 15 {
		t.Fatalf("setup: depth = %d", g.MaxLevel())
	}
	b := Balance(g)
	if b.MaxLevel() != 4 {
		t.Fatalf("balanced depth = %d, want 4", b.MaxLevel())
	}
	equivalent(t, g, b, 3)
}

func TestBalancePreservesFunctionality(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomAIG(seed, 8, 120)
		b := Balance(g)
		equivalent(t, g, b, seed+100)
		s := Optimize(g)
		equivalent(t, g, s, seed+200)
	}
}

func TestBalanceOnRealCircuits(t *testing.T) {
	for _, g := range []*aig.AIG{
		circuits.TrainRC16(),
		circuits.CarryLookaheadAdder(16),
		circuits.ArrayMultiplier(6),
		circuits.ALUCompare(12),
		circuits.BarrelShifter(16),
	} {
		b := Optimize(g)
		equivalent(t, g, b, 7)
		if b.MaxLevel() > g.MaxLevel() {
			t.Errorf("%s: balancing increased depth %d -> %d", g.Name, g.MaxLevel(), b.MaxLevel())
		}
	}
}

func TestBalanceHandlesComplementedPOs(t *testing.T) {
	g := aig.New("cpo")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(g.And(a, b), c)
	g.AddPO("f", x.Not())
	g.AddPO("g", x)
	g.AddPO("const", aig.ConstTrue)
	out := Balance(g)
	equivalent(t, g, out, 11)
}

func TestOptimizeIdempotentDepth(t *testing.T) {
	g := circuits.CarryLookaheadAdder(16)
	once := Optimize(g)
	twice := Optimize(once)
	if twice.MaxLevel() > once.MaxLevel() {
		t.Fatalf("second optimisation increased depth")
	}
	equivalent(t, once, twice, 13)
}

func randomAIG(seed int64, nPIs, nAnds int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New("rand")
	lits := make([]aig.Lit, 0, nPIs+nAnds)
	for i := 0; i < nPIs; i++ {
		lits = append(lits, g.AddPI(""))
	}
	for i := 0; i < nAnds; i++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		lits = append(lits, g.And(a, b))
	}
	for i := 0; i < 3; i++ {
		g.AddPO("", lits[len(lits)-1-i].NotIf(rng.Intn(2) == 1))
	}
	return g
}
