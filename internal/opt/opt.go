// Package opt implements technology-independent AIG optimisation passes
// applied before mapping, mirroring the pre-mapping clean-up of standard
// ABC flows: dangling-node sweeping and delay-oriented AND-tree balancing.
// The paper maps unoptimised subject graphs for its main experiments, so
// these passes are optional in the flow — the ablation benchmarks measure
// their effect on mapping QoR.
package opt

import (
	"math/rand"
	"sort"

	"slap/internal/aig"
)

// Sweep rebuilds the graph keeping only logic reachable from the primary
// outputs, removing dangling nodes. The result is functionally identical;
// PI order and count are preserved (unused PIs stay).
func Sweep(g *aig.AIG) *aig.AIG {
	out := aig.New(g.Name)
	old2new := make([]aig.Lit, g.NumNodes())
	for i := range old2new {
		old2new[i] = ^aig.Lit(0)
	}
	for i, pi := range g.PIs() {
		old2new[pi] = out.AddPI(g.PIName(i))
	}

	// Mark reachable nodes.
	needed := make([]bool, g.NumNodes())
	var stack []uint32
	push := func(n uint32) {
		if g.IsAnd(n) && !needed[n] {
			needed[n] = true
			stack = append(stack, n)
		}
	}
	for _, po := range g.POs() {
		push(po.Lit.Node())
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f0, f1 := g.Fanins(n)
		push(f0.Node())
		push(f1.Node())
	}

	// Rebuild in topological (id) order.
	mapLit := func(l aig.Lit) aig.Lit {
		if l.Node() == 0 {
			return l // constants map to themselves
		}
		return old2new[l.Node()].NotIf(l.IsCompl())
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !needed[n] {
			continue
		}
		f0, f1 := g.Fanins(n)
		old2new[n] = out.And(mapLit(f0), mapLit(f1))
	}
	for _, po := range g.POs() {
		out.AddPO(po.Name, mapLit(po.Lit))
	}
	return out
}

// Balance rebuilds the graph with depth-minimised AND trees: maximal
// conjunction chains are collected and re-associated so that
// shallower-arriving operands combine last (Huffman-style pairing on
// levels), reducing the subject-graph depth that delay-oriented mapping
// starts from. The result is functionally equivalent.
func Balance(g *aig.AIG) *aig.AIG {
	return balanceWith(g, buildBalanced)
}

// BalanceSeeded is Balance with a seeded tie-break: operands at equal level
// are paired in a pseudo-random (but seed-deterministic) order instead of
// collection order. The result is functionally equivalent to Balance and
// still depth-minimal per tree, but structurally distinct for different
// seeds — exactly the diversity internal/choice wants when it grafts
// several variants into one choice view.
func BalanceSeeded(g *aig.AIG, seed int64) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	return balanceWith(g, func(out *aig.AIG, ls []aig.Lit, levelOf func(aig.Lit) int32) aig.Lit {
		if len(ls) > 1 {
			ls = append([]aig.Lit(nil), ls...)
			rng.Shuffle(len(ls), func(i, j int) { ls[i], ls[j] = ls[j], ls[i] })
		}
		return buildBalanced(out, ls, levelOf)
	})
}

func balanceWith(g *aig.AIG, build func(*aig.AIG, []aig.Lit, func(aig.Lit) int32) aig.Lit) *aig.AIG {
	out := aig.New(g.Name)
	old2new := make([]aig.Lit, g.NumNodes())
	for i := range old2new {
		old2new[i] = ^aig.Lit(0)
	}
	for i, pi := range g.PIs() {
		old2new[pi] = out.AddPI(g.PIName(i))
	}
	mapLit := func(l aig.Lit) aig.Lit {
		if l.Node() == 0 {
			return l
		}
		return old2new[l.Node()].NotIf(l.IsCompl())
	}

	// refs counts uses so that multi-fanout nodes stay shared (collecting
	// through them would duplicate logic).
	refs := make([]int32, g.NumNodes())
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		f0, f1 := g.Fanins(n)
		refs[f0.Node()]++
		refs[f1.Node()]++
	}
	for _, po := range g.POs() {
		refs[po.Lit.Node()]++
	}

	// collect gathers the leaves of the maximal single-fanout AND tree
	// rooted at n (descending only through non-complemented, single-use
	// AND fanins).
	var collect func(l aig.Lit, leaves *[]aig.Lit)
	collect = func(l aig.Lit, leaves *[]aig.Lit) {
		n := l.Node()
		if !l.IsCompl() && g.IsAnd(n) && refs[n] <= 1 {
			f0, f1 := g.Fanins(n)
			collect(f0, leaves)
			collect(f1, leaves)
			return
		}
		*leaves = append(*leaves, l)
	}

	// levelOf estimates arrival of a rebuilt literal.
	levelOf := func(l aig.Lit) int32 {
		return out.Level(l.Node())
	}

	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		if old2new[n] != ^aig.Lit(0) {
			continue
		}
		// Only balance at tree roots: nodes referenced more than once or
		// feeding a PO or used complemented get rebuilt; interior
		// single-use nodes are absorbed by collect.
		if refs[n] <= 1 && !referencedExternally(g, n) {
			// Will be collected by a parent; still rebuild defensively if
			// nothing collects it (dangling) — keep simple: rebuild below
			// when a parent maps it. Dangling nodes are dropped.
			continue
		}
		var leaves []aig.Lit
		f0, f1 := g.Fanins(n)
		collect(f0, &leaves)
		collect(f1, &leaves)
		old2new[n] = build(out, mapLeaves(leaves, mapLit, g, &old2new, out), levelOf)
	}
	for _, po := range g.POs() {
		l := po.Lit
		if g.IsAnd(l.Node()) && old2new[l.Node()] == ^aig.Lit(0) {
			// A PO-only tree root not caught above (complement polarity or
			// single use): rebuild it now.
			var leaves []aig.Lit
			f0, f1 := g.Fanins(l.Node())
			collect(f0, &leaves)
			collect(f1, &leaves)
			old2new[l.Node()] = build(out, mapLeaves(leaves, mapLit, g, &old2new, out), levelOf)
		}
		out.AddPO(po.Name, mapLit(l))
	}
	return out
}

// referencedExternally reports whether node n drives a PO or has a
// complemented fanout edge (either blocks tree absorption).
func referencedExternally(g *aig.AIG, n uint32) bool {
	if g.Fanout(n) > 1 {
		return true
	}
	if g.HasInvertedFanout(n) {
		return true
	}
	for _, po := range g.POs() {
		if po.Lit.Node() == n {
			return true
		}
	}
	return false
}

// mapLeaves maps collected leaf literals into the new graph, recursively
// rebuilding AND leaves that have not been rebuilt yet.
func mapLeaves(leaves []aig.Lit, mapLit func(aig.Lit) aig.Lit, g *aig.AIG, old2new *[]aig.Lit, out *aig.AIG) []aig.Lit {
	mapped := make([]aig.Lit, 0, len(leaves))
	for _, l := range leaves {
		n := l.Node()
		if g.IsAnd(n) && (*old2new)[n] == ^aig.Lit(0) {
			// Rebuild this subtree plainly (shared node reached before its
			// own balancing turn — preserve structure).
			(*old2new)[n] = rebuildPlain(g, n, old2new, out)
		}
		mapped = append(mapped, mapLit(l))
	}
	return mapped
}

// rebuildPlain copies the cone of n into the new graph without
// re-association.
func rebuildPlain(g *aig.AIG, n uint32, old2new *[]aig.Lit, out *aig.AIG) aig.Lit {
	f0, f1 := g.Fanins(n)
	get := func(l aig.Lit) aig.Lit {
		m := l.Node()
		if m == 0 {
			return l
		}
		if (*old2new)[m] == ^aig.Lit(0) {
			(*old2new)[m] = rebuildPlain(g, m, old2new, out)
		}
		return (*old2new)[m].NotIf(l.IsCompl())
	}
	return out.And(get(f0), get(f1))
}

// buildBalanced combines literals with a Huffman-style policy: repeatedly
// AND the two shallowest operands.
func buildBalanced(out *aig.AIG, ls []aig.Lit, levelOf func(aig.Lit) int32) aig.Lit {
	if len(ls) == 0 {
		return aig.ConstTrue
	}
	work := append([]aig.Lit(nil), ls...)
	for len(work) > 1 {
		sort.SliceStable(work, func(i, j int) bool {
			return levelOf(work[i]) < levelOf(work[j])
		})
		a, b := work[0], work[1]
		work = work[1:]
		work[0] = out.And(a, b)
	}
	return work[0]
}

// Optimize runs the standard pre-mapping pipeline: sweep then balance then
// sweep again (balancing can strand nodes).
func Optimize(g *aig.AIG) *aig.AIG {
	return Sweep(Balance(Sweep(g)))
}
