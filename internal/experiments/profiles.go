// Package experiments regenerates every table and figure of the paper's
// evaluation section (§V): the Fig. 1 design-space scatter, the §V-B model
// accuracy numbers, the Table II three-way QoR comparison, the Fig. 5
// permutation feature importances, and the §III single-attribute ablation.
//
// Each experiment runs under a Profile. The "paper" profile uses the
// original design sizes; the "fast" profile scales the largest designs down
// so the full suite regenerates in minutes on a laptop (per-design scaling
// is recorded in EXPERIMENTS.md).
package experiments

import (
	"fmt"

	"slap/internal/aig"
	"slap/internal/circuits"
)

// Profile fixes all experiment parameters.
type Profile struct {
	// Name is "fast" or "paper".
	Name string

	// Design widths (see Designs for the mapping to Table II rows).
	AdderBits   int
	BarBits     int
	C6288Bits   int
	MaxWay      int
	MaxBits     int
	RCBigBits   int
	RCSmallBits int
	SinBits     int
	ALUBits     int
	Booth1Bits  int
	Booth2Bits  int
	SquareBits  int
	AESRounds   int
	MultBits    int

	// Training parameters (§IV-B / §V-B).
	TrainMaps   int
	TrainEpochs int
	Filters     int

	// Fig. 1 sampling.
	Fig1Samples int
	// ShuffleLimit is the per-node cut budget for random-shuffle flows;
	// the budget must truncate for shuffling to disperse QoR (DESIGN.md).
	ShuffleLimit int

	// Fig. 5 permutation rounds.
	ImportanceRounds int

	// Seed makes every experiment reproducible.
	Seed int64
}

// Fast returns the scaled-down profile used by tests and benchmarks.
func Fast() Profile {
	return Profile{
		Name:      "fast",
		AdderBits: 64, BarBits: 32, C6288Bits: 12,
		MaxWay: 4, MaxBits: 32,
		RCBigBits: 128, RCSmallBits: 64,
		SinBits: 10, ALUBits: 32,
		Booth1Bits: 12, Booth2Bits: 16,
		SquareBits: 16, AESRounds: 1, MultBits: 16,
		TrainMaps: 150, TrainEpochs: 15, Filters: 32,
		Fig1Samples: 200, ShuffleLimit: 16,
		ImportanceRounds: 5,
		Seed:             1,
	}
}

// Paper returns the full-size profile matching the paper's benchmarks.
func Paper() Profile {
	return Profile{
		Name:      "paper",
		AdderBits: 128, BarBits: 128, C6288Bits: 16,
		MaxWay: 4, MaxBits: 128,
		RCBigBits: 256, RCSmallBits: 64,
		SinBits: 16, ALUBits: 32,
		Booth1Bits: 32, Booth2Bits: 64,
		SquareBits: 64, AESRounds: 10, MultBits: 64,
		TrainMaps: 1250, TrainEpochs: 50, Filters: 128,
		Fig1Samples: 10000, ShuffleLimit: 16,
		ImportanceRounds: 10,
		Seed:             1,
	}
}

// Tiny returns a minimal profile for CI and smoke tests: every design is
// scaled to run the full pipeline in seconds.
func Tiny() Profile {
	p := Fast()
	p.Name = "tiny"
	p.AdderBits, p.BarBits, p.C6288Bits = 16, 16, 6
	p.MaxWay, p.MaxBits = 2, 8
	p.RCBigBits, p.RCSmallBits = 24, 12
	p.SinBits, p.ALUBits = 8, 12
	p.Booth1Bits, p.Booth2Bits = 6, 8
	p.SquareBits, p.AESRounds, p.MultBits = 8, 1, 8
	p.TrainMaps, p.TrainEpochs, p.Filters = 40, 6, 8
	p.Fig1Samples = 24
	p.ImportanceRounds = 2
	return p
}

// ByName resolves a profile name.
func ByName(name string) (Profile, error) {
	switch name {
	case "tiny":
		return Tiny(), nil
	case "fast":
		return Fast(), nil
	case "paper":
		return Paper(), nil
	default:
		return Profile{}, fmt.Errorf("experiments: unknown profile %q (want tiny, fast or paper)", name)
	}
}

// Design is one Table II row.
type Design struct {
	// Name matches the paper's Table II circuit column.
	Name string
	// Build generates the subject graph.
	Build func() *aig.AIG
}

// Designs returns the 14 Table II designs under the profile's sizes, in the
// paper's row order.
func Designs(p Profile) []Design {
	return []Design{
		{"adder", func() *aig.AIG { return circuits.PrefixAdder(p.AdderBits) }},
		{"bar", func() *aig.AIG { return circuits.BarrelShifter(p.BarBits) }},
		{"c6288", func() *aig.AIG { return circuits.ArrayMultiplier(p.C6288Bits) }},
		{"max", func() *aig.AIG { return circuits.MaxTree(p.MaxWay, p.MaxBits) }},
		{"rc256b", func() *aig.AIG { return circuits.RippleCarryAdder(p.RCBigBits) }},
		{"rc64b", func() *aig.AIG { return circuits.RippleCarryAdder(p.RCSmallBits) }},
		{"sin", func() *aig.AIG { return circuits.SinePoly(p.SinBits) }},
		{"c7552", func() *aig.AIG { return circuits.ALUCompare(p.ALUBits) }},
		{"mul32-booth", func() *aig.AIG { return circuits.BoothMultiplier(p.Booth1Bits) }},
		{"mul64-booth", func() *aig.AIG { return circuits.BoothMultiplier(p.Booth2Bits) }},
		{"square", func() *aig.AIG { return circuits.Squarer(p.SquareBits) }},
		{"AES", func() *aig.AIG { return circuits.AES(p.AESRounds) }},
		{"64b_mult", func() *aig.AIG { return circuits.ArrayMultiplier(p.MultBits) }},
		{"Pico RISCV", circuits.RiscVCore},
	}
}
