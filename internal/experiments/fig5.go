package experiments

import (
	"fmt"
	"strings"

	"slap/internal/core"
	"slap/internal/library"
)

// TrainOutcome bundles a trained SLAP instance with its accuracy report —
// experiment §V-B.
type TrainOutcome struct {
	SLAP   *core.SLAP
	Report *core.TrainReport
}

// RunTraining trains the model under the profile (experiment §V-B) and
// returns both the SLAP instance (reused by Table II and Fig. 5) and the
// accuracy report.
func RunTraining(p Profile, lib *library.Library, progress func(string)) (*TrainOutcome, error) {
	if progress == nil {
		progress = func(string) {}
	}
	progress(fmt.Sprintf("training: %d maps/circuit, %d epochs, %d filters",
		p.TrainMaps, p.TrainEpochs, p.Filters))
	s, rep, err := core.Train(core.TrainOptions{
		Library:        lib,
		MapsPerCircuit: p.TrainMaps,
		Epochs:         p.TrainEpochs,
		Filters:        p.Filters,
		Seed:           p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &TrainOutcome{SLAP: s, Report: rep}, nil
}

// RenderAccuracy formats the §V-B accuracy numbers.
func (t *TrainOutcome) RenderAccuracy() string {
	r := t.Report
	var b strings.Builder
	fmt.Fprintf(&b, "Model accuracy (§V-B)\n")
	fmt.Fprintf(&b, "dataset: %d cut datapoints (%d train / %d val)\n",
		r.Samples, r.TrainSamples, r.ValSamples)
	fmt.Fprintf(&b, "class histogram: %v\n", r.ClassHistogram)
	fmt.Fprintf(&b, "10-class accuracy: %.1f%%  (paper: ~34%%)\n", 100*r.MultiClassAccuracy)
	fmt.Fprintf(&b, "binary keep/drop accuracy (threshold 6): %.1f%%  (paper: 93.4%%)\n",
		100*r.BinaryAccuracy)
	return b.String()
}

// Fig5 holds the permutation-importance results.
type Fig5 struct {
	Importances []core.Importance
}

// RunFig5 computes permutation feature importance over the training run's
// validation set (paper §V-D).
func RunFig5(p Profile, t *TrainOutcome, progress func(string)) *Fig5 {
	if progress == nil {
		progress = func(string) {}
	}
	progress(fmt.Sprintf("fig5: %d permutation rounds over %d validation samples",
		p.ImportanceRounds, len(t.Report.ValX)))
	imps := core.PermutationImportance(t.SLAP.Model, t.Report.ValX, t.Report.ValY,
		p.ImportanceRounds, p.Seed+17)
	return &Fig5{Importances: imps}
}

// Render draws the importances as a text bar chart sorted by impact.
func (f *Fig5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5 — permutation feature importance (accuracy drop when permuted)\n")
	maxDrop := 0.0
	for _, imp := range f.Importances {
		if imp.MultiClassDrop > maxDrop {
			maxDrop = imp.MultiClassDrop
		}
	}
	for _, imp := range f.Importances {
		bar := 0
		if maxDrop > 0 {
			bar = int(40 * imp.MultiClassDrop / maxDrop)
			if bar < 0 {
				bar = 0
			}
		}
		fmt.Fprintf(&b, "%-22s %7.4f |%s\n", imp.Name, imp.MultiClassDrop, strings.Repeat("#", bar))
	}
	return b.String()
}

// CSV renders name,multiclass_drop,binary_drop rows.
func (f *Fig5) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "feature,multiclass_drop,binary_drop")
	for _, imp := range f.Importances {
		fmt.Fprintf(&b, "%s,%.6f,%.6f\n", imp.Name, imp.MultiClassDrop, imp.BinaryDrop)
	}
	return b.String()
}
