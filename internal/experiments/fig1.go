package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

// QoRPoint is one mapping solution in the Fig. 1 scatter.
type QoRPoint struct {
	Delay float64
	Area  float64
}

// Fig1 holds the design-space exploration result of paper §III: the QoR
// distribution of random-shuffle mappings of one design, plus the default
// ABC point (the "black star").
type Fig1 struct {
	Design  string
	Points  []QoRPoint
	Default QoRPoint
	// SLAPPoint is the SLAP mapping's QoR when available (the paper
	// discusses where SLAP lands in the distribution).
	SLAPPoint *QoRPoint
}

// RunFig1 generates `p.Fig1Samples` random-shuffle mappings of the design
// and the default-policy reference point.
func RunFig1(p Profile, build func() *aig.AIG, lib *library.Library, progress func(string)) (*Fig1, error) {
	if progress == nil {
		progress = func(string) {}
	}
	g := build()
	progress(fmt.Sprintf("fig1: %s (%d ands), %d samples", g.Name, g.NumAnds(), p.Fig1Samples))

	def, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		return nil, fmt.Errorf("fig1: default map: %w", err)
	}
	out := &Fig1{
		Design:  g.Name,
		Default: QoRPoint{Delay: def.Delay, Area: def.Area},
		Points:  make([]QoRPoint, p.Fig1Samples),
	}

	workers := runtime.GOMAXPROCS(0)
	errs := make([]error, p.Fig1Samples)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < p.Fig1Samples; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			policy := &cuts.ShufflePolicy{
				Rng:   rand.New(rand.NewSource(p.Seed + int64(i))),
				Limit: p.ShuffleLimit,
			}
			res, err := mapper.Map(g, mapper.Options{Library: lib, Policy: policy})
			if err != nil {
				errs[i] = err
				return
			}
			out.Points[i] = QoRPoint{Delay: res.Delay, Area: res.Area}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fig1: shuffle map: %w", err)
		}
	}
	return out, nil
}

// Spread summarises the distribution: min/max delay and area over the
// sampled mappings.
func (f *Fig1) Spread() (minDelay, maxDelay, minArea, maxArea float64) {
	if len(f.Points) == 0 {
		return 0, 0, 0, 0
	}
	minDelay, maxDelay = f.Points[0].Delay, f.Points[0].Delay
	minArea, maxArea = f.Points[0].Area, f.Points[0].Area
	for _, pt := range f.Points {
		if pt.Delay < minDelay {
			minDelay = pt.Delay
		}
		if pt.Delay > maxDelay {
			maxDelay = pt.Delay
		}
		if pt.Area < minArea {
			minArea = pt.Area
		}
		if pt.Area > maxArea {
			maxArea = pt.Area
		}
	}
	return
}

// CSV renders the scatter as delay,area rows, with the reference points
// tagged in a third column ("sample", "abc-default", "slap").
func (f *Fig1) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "delay_ps,area_um2,kind")
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "%.2f,%.2f,sample\n", pt.Delay, pt.Area)
	}
	fmt.Fprintf(&b, "%.2f,%.2f,abc-default\n", f.Default.Delay, f.Default.Area)
	if f.SLAPPoint != nil {
		fmt.Fprintf(&b, "%.2f,%.2f,slap\n", f.SLAPPoint.Delay, f.SLAPPoint.Area)
	}
	return b.String()
}

// Render summarises the distribution as text (the figure itself is the CSV).
func (f *Fig1) Render() string {
	minD, maxD, minA, maxA := f.Spread()
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — QoR distribution of %d random-shuffle mappings of %s\n", len(f.Points), f.Design)
	fmt.Fprintf(&b, "delay range: %.1f .. %.1f ps (%.1f%% spread)\n", minD, maxD, 100*(maxD-minD)/minD)
	fmt.Fprintf(&b, "area  range: %.1f .. %.1f µm² (%.1f%% spread)\n", minA, maxA, 100*(maxA-minA)/minA)
	fmt.Fprintf(&b, "ABC default: delay=%.1f area=%.1f\n", f.Default.Delay, f.Default.Area)
	if f.SLAPPoint != nil {
		fmt.Fprintf(&b, "SLAP:        delay=%.1f area=%.1f\n", f.SLAPPoint.Delay, f.SLAPPoint.Area)
	}
	return b.String()
}
