package experiments

import (
	"strings"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/library"
)

// tiny is the exported CI profile.
func tiny() Profile { return Tiny() }

func TestProfilesResolve(t *testing.T) {
	for _, name := range []string{"tiny", "fast", "paper"} {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("profile name %q", p.Name)
		}
		if len(Designs(p)) != 14 {
			t.Fatalf("%s profile has %d designs, want 14 (Table II)", name, len(Designs(p)))
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatalf("unknown profile must fail")
	}
}

func TestDesignNamesMatchTable2(t *testing.T) {
	want := []string{"adder", "bar", "c6288", "max", "rc256b", "rc64b", "sin",
		"c7552", "mul32-booth", "mul64-booth", "square", "AES", "64b_mult", "Pico RISCV"}
	ds := Designs(Fast())
	for i, d := range ds {
		if d.Name != want[i] {
			t.Fatalf("design %d = %q, want %q", i, d.Name, want[i])
		}
		g := d.Build()
		if g.NumAnds() == 0 {
			t.Fatalf("design %s builds empty graph", d.Name)
		}
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g != 4 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if g := geomean(nil); g != 0 {
		t.Fatalf("geomean(nil) = %f", g)
	}
}

func TestEndToEndPipelineTiny(t *testing.T) {
	p := tiny()
	lib := library.ASAP7ish()

	// §V-B: training.
	tr, err := RunTraining(p, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	acc := tr.RenderAccuracy()
	if !strings.Contains(acc, "10-class accuracy") || !strings.Contains(acc, "binary") {
		t.Fatalf("accuracy report malformed:\n%s", acc)
	}

	// Table II on three designs (keep the tiny test fast).
	p2 := p
	table, err := RunTable2(p2, tr.SLAP, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 14 {
		t.Fatalf("table2 has %d rows", len(table.Rows))
	}
	for _, r := range table.Rows {
		if r.ABC.Delay <= 0 || r.Unl.Delay <= 0 || r.SLAP.Delay <= 0 {
			t.Fatalf("row %s has non-positive delay", r.Circuit)
		}
		if r.ABC.Cuts <= 0 || r.SLAP.Cuts <= 0 {
			t.Fatalf("row %s has no cuts", r.Circuit)
		}
	}
	s := table.Summarise()
	if s.UnlVsABCCuts <= 1.0 {
		t.Errorf("unlimited should consider more cuts than default: ratio %.2f", s.UnlVsABCCuts)
	}
	if s.SLAPvsUnlCuts >= 1.0 {
		t.Errorf("SLAP should consider fewer cuts than unlimited: ratio %.2f", s.SLAPvsUnlCuts)
	}
	rendered := table.Render()
	if !strings.Contains(rendered, "Geomean") || !strings.Contains(rendered, "adder") {
		t.Fatalf("table render malformed:\n%s", rendered)
	}
	if lines := strings.Count(table.CSV(), "\n"); lines != 15 { // header + 14 rows
		t.Fatalf("table CSV has %d lines", lines)
	}

	// Fig. 1 on the smallest design.
	fig1, err := RunFig1(p, func() *aig.AIG { return circuits.TrainRC16() }, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig1.Points) != p.Fig1Samples {
		t.Fatalf("fig1 has %d points", len(fig1.Points))
	}
	minD, maxD, _, _ := fig1.Spread()
	if minD <= 0 || maxD < minD {
		t.Fatalf("fig1 spread degenerate: %f..%f", minD, maxD)
	}
	if maxD == minD {
		t.Errorf("fig1 shows no QoR dispersion (shuffle budget not binding?)")
	}
	if !strings.Contains(fig1.CSV(), "abc-default") {
		t.Fatalf("fig1 CSV missing the default point")
	}
	_ = fig1.Render()

	// Fig. 5.
	fig5 := RunFig5(p, tr, nil)
	if len(fig5.Importances) != 29 {
		t.Fatalf("fig5 has %d features", len(fig5.Importances))
	}
	if !strings.Contains(fig5.CSV(), "feature,") {
		t.Fatalf("fig5 CSV malformed")
	}
	_ = fig5.Render()

	// §III ablation on the first three designs.
	abl, err := RunAblation(p, lib, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(abl.Designs) != 3 || len(abl.Policies) != 7 {
		t.Fatalf("ablation shape %dx%d", len(abl.Designs), len(abl.Policies))
	}
	_ = abl.Render()
	_ = abl.NoConsistentWinner()
}

func TestQoRADP(t *testing.T) {
	q := QoR{Area: 3, Delay: 4}
	if q.ADP() != 12 {
		t.Fatalf("ADP = %f", q.ADP())
	}
}

func TestSortRowsByName(t *testing.T) {
	tb := &Table2{Rows: []Table2Row{{Circuit: "b"}, {Circuit: "a"}}}
	tb.SortRowsByName()
	if tb.Rows[0].Circuit != "a" {
		t.Fatalf("rows not sorted")
	}
}

func TestExtendedDesigns(t *testing.T) {
	p := tiny()
	for _, d := range ExtendedDesigns(p) {
		g := d.Build()
		if g.NumAnds() == 0 {
			t.Fatalf("extended design %s empty", d.Name)
		}
	}
	if len(ExtendedDesigns(Fast())) != 4 || len(ExtendedDesigns(Paper())) != 4 {
		t.Fatalf("extended design count wrong")
	}
	// End-to-end through the flow with a tiny model.
	lib := library.ASAP7ish()
	tr, err := RunTraining(p, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := RunExtended(p, tr.SLAP, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Rows) != 4 {
		t.Fatalf("extended table has %d rows", len(ext.Rows))
	}
	if !strings.Contains(RenderExtended(ext), "div") {
		t.Fatalf("extended render malformed")
	}
}
