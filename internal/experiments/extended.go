package experiments

import (
	"fmt"
	"strings"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

// ExtendedDesigns returns the EPFL-style arithmetic blocks the paper
// explicitly skipped (§V-C: "the biggest arithmetic blocks' results are not
// present as the data-frame generation with pandas takes too long") —
// divider, square root, log2 and hypotenuse. This implementation has no
// such bottleneck, so they run as a bonus experiment.
func ExtendedDesigns(p Profile) []Design {
	divBits := 16
	sqrtBits := 32
	logBits := 32
	hypBits := 16
	if p.Name == "paper" {
		divBits, sqrtBits, logBits, hypBits = 32, 64, 32, 32
	}
	if p.Name == "tiny" || p.Name == "bench" {
		divBits, sqrtBits, logBits, hypBits = 8, 16, 16, 8
	}
	return []Design{
		{"div", func() *aig.AIG { return circuits.Divider(divBits) }},
		{"sqrt", func() *aig.AIG { return circuits.Sqrt(sqrtBits) }},
		{"log2", func() *aig.AIG { return circuits.Log2(logBits, 8) }},
		{"hypot", func() *aig.AIG { return circuits.Hypot(hypBits) }},
	}
}

// RunExtended maps the extended designs under the three flows, producing a
// Table-II-shaped result for the blocks the paper could not run.
func RunExtended(p Profile, s *core.SLAP, lib *library.Library, progress func(string)) (*Table2, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table2{ProfileName: p.Name + "-extended"}
	for _, d := range ExtendedDesigns(p) {
		g := d.Build()
		progress(fmt.Sprintf("extended: %s (%d ands)", d.Name, g.NumAnds()))
		abc, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
		if err != nil {
			return nil, fmt.Errorf("extended: %s/abc: %w", d.Name, err)
		}
		unl, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.UnlimitedPolicy{}})
		if err != nil {
			return nil, fmt.Errorf("extended: %s/unlimited: %w", d.Name, err)
		}
		sl, err := s.Map(g)
		if err != nil {
			return nil, fmt.Errorf("extended: %s/slap: %w", d.Name, err)
		}
		t.Rows = append(t.Rows, Table2Row{
			Circuit: d.Name,
			ABC:     QoR{Area: abc.Area, Delay: abc.Delay, Cuts: abc.CutsConsidered},
			Unl:     QoR{Area: unl.Area, Delay: unl.Delay, Cuts: unl.CutsConsidered},
			SLAP:    QoR{Area: sl.Area, Delay: sl.Delay, Cuts: sl.CutsConsidered},
		})
	}
	return t, nil
}

// RenderExtended labels the extended table.
func RenderExtended(t *Table2) string {
	var b strings.Builder
	b.WriteString("Extended designs (EPFL blocks the paper skipped)\n")
	b.WriteString(t.Render())
	return b.String()
}
