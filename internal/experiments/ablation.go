package experiments

import (
	"fmt"
	"strings"

	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

// AblationCell is one (design, sort-attribute) mapping outcome.
type AblationCell struct {
	Delay float64
	Area  float64
}

// Ablation reproduces the §III observation that no single-attribute cut
// sort is consistently best: it maps a subset of designs under each
// single-feature sorting policy and under the vanilla leaves sort.
type Ablation struct {
	// Designs are the evaluated design names (rows).
	Designs []string
	// Policies are the policy names (columns).
	Policies []string
	// Cells[d][p] is the outcome of design d under policy p.
	Cells [][]AblationCell
}

// ablationFeatures are the single attributes evaluated: volume, max leaf
// level, sum of leaf fanouts — each in both directions — against the
// default leaves sort.
var ablationFeatures = []struct {
	feature    int
	descending bool
}{
	{2, false}, {2, true}, // volume
	{4, false}, {4, true}, // maxLeafLevel
	{8, false}, {8, true}, // sumLeafFanout
}

// RunAblation maps the first `numDesigns` profile designs under each
// policy. A small per-node budget makes the sort order actually bind, as in
// the random-shuffle experiments.
func RunAblation(p Profile, lib *library.Library, numDesigns int, progress func(string)) (*Ablation, error) {
	if progress == nil {
		progress = func(string) {}
	}
	designs := Designs(p)
	if numDesigns > 0 && numDesigns < len(designs) {
		designs = designs[:numDesigns]
	}
	policies := []cuts.Policy{cuts.DefaultPolicy{Limit: p.ShuffleLimit}}
	for _, f := range ablationFeatures {
		policies = append(policies, cuts.SingleAttributePolicy{
			Feature:    f.feature,
			Descending: f.descending,
			Limit:      p.ShuffleLimit,
		})
	}

	out := &Ablation{}
	for _, pol := range policies {
		out.Policies = append(out.Policies, pol.Name())
	}
	for _, d := range designs {
		g := d.Build()
		progress(fmt.Sprintf("ablation: %s", d.Name))
		row := make([]AblationCell, len(policies))
		for pi, pol := range policies {
			res, err := mapper.Map(g, mapper.Options{Library: lib, Policy: pol})
			if err != nil {
				return nil, fmt.Errorf("ablation: %s/%s: %w", d.Name, pol.Name(), err)
			}
			row[pi] = AblationCell{Delay: res.Delay, Area: res.Area}
		}
		out.Designs = append(out.Designs, d.Name)
		out.Cells = append(out.Cells, row)
	}
	return out, nil
}

// BestPolicyPerDesign returns, for each design, the index of the policy
// with the lowest delay.
func (a *Ablation) BestPolicyPerDesign() []int {
	best := make([]int, len(a.Designs))
	for di := range a.Designs {
		bi, bd := 0, a.Cells[di][0].Delay
		for pi := 1; pi < len(a.Policies); pi++ {
			if a.Cells[di][pi].Delay < bd {
				bi, bd = pi, a.Cells[di][pi].Delay
			}
		}
		best[di] = bi
	}
	return best
}

// NoConsistentWinner reports whether different designs prefer different
// sorting policies — the paper's motivating observation.
func (a *Ablation) NoConsistentWinner() bool {
	best := a.BestPolicyPerDesign()
	seen := make(map[int]bool)
	for _, b := range best {
		seen[b] = true
	}
	return len(seen) > 1
}

// Render formats the delay matrix with the per-design winner marked.
func (a *Ablation) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§III ablation — delay (ps) per single-attribute sorting policy\n")
	fmt.Fprintf(&b, "%-12s", "circuit")
	for _, p := range a.Policies {
		fmt.Fprintf(&b, " %22s", p)
	}
	fmt.Fprintln(&b)
	best := a.BestPolicyPerDesign()
	for di, d := range a.Designs {
		fmt.Fprintf(&b, "%-12s", d)
		for pi := range a.Policies {
			mark := " "
			if best[di] == pi {
				mark = "*"
			}
			fmt.Fprintf(&b, " %21.1f%s", a.Cells[di][pi].Delay, mark)
		}
		fmt.Fprintln(&b)
	}
	if a.NoConsistentWinner() {
		fmt.Fprintln(&b, "-> no single attribute wins across designs (paper §III observation)")
	} else {
		fmt.Fprintln(&b, "-> one attribute won on every design in this run")
	}
	return b.String()
}
