package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

// QoR is one flow's quality-of-results on one design.
type QoR struct {
	// Area in µm², Delay in ps, Cuts exposed to the mapper.
	Area  float64
	Delay float64
	Cuts  int
}

// ADP returns the area-delay product.
func (q QoR) ADP() float64 { return q.Area * q.Delay }

// Table2Row compares the three flows on one design (one row of the paper's
// Table II).
type Table2Row struct {
	Circuit string
	ABC     QoR // vanilla ABC: sort by leaves, dominance filter, 250 cap
	Unl     QoR // Unlimited ABC: every cut
	SLAP    QoR // ML-filtered cuts
}

// Table2 is the full experiment result.
type Table2 struct {
	ProfileName string
	Rows        []Table2Row
}

// RunTable2 maps every design under the three flows. The SLAP instance must
// already be trained.
func RunTable2(p Profile, s *core.SLAP, lib *library.Library, progress func(string)) (*Table2, error) {
	if progress == nil {
		progress = func(string) {}
	}
	t := &Table2{ProfileName: p.Name}
	for _, d := range Designs(p) {
		g := d.Build()
		progress(fmt.Sprintf("table2: %s (%d ands)", d.Name, g.NumAnds()))
		abc, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
		if err != nil {
			return nil, fmt.Errorf("table2: %s/abc: %w", d.Name, err)
		}
		unl, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.UnlimitedPolicy{}})
		if err != nil {
			return nil, fmt.Errorf("table2: %s/unlimited: %w", d.Name, err)
		}
		sl, err := s.Map(g)
		if err != nil {
			return nil, fmt.Errorf("table2: %s/slap: %w", d.Name, err)
		}
		t.Rows = append(t.Rows, Table2Row{
			Circuit: d.Name,
			ABC:     QoR{Area: abc.Area, Delay: abc.Delay, Cuts: abc.CutsConsidered},
			Unl:     QoR{Area: unl.Area, Delay: unl.Delay, Cuts: unl.CutsConsidered},
			SLAP:    QoR{Area: sl.Area, Delay: sl.Delay, Cuts: sl.CutsConsidered},
		})
	}
	return t, nil
}

// geomean returns the geometric mean of xs (which must be positive).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Geomeans returns the geometric-mean QoR of each flow across all rows.
func (t *Table2) Geomeans() (abc, unl, slap QoR) {
	col := func(f func(Table2Row) QoR) QoR {
		var areas, delays, cutsCounts []float64
		for _, r := range t.Rows {
			q := f(r)
			areas = append(areas, q.Area)
			delays = append(delays, q.Delay)
			cutsCounts = append(cutsCounts, float64(q.Cuts))
		}
		return QoR{
			Area:  geomean(areas),
			Delay: geomean(delays),
			Cuts:  int(geomean(cutsCounts)),
		}
	}
	return col(func(r Table2Row) QoR { return r.ABC }),
		col(func(r Table2Row) QoR { return r.Unl }),
		col(func(r Table2Row) QoR { return r.SLAP })
}

// Summary aggregates the headline ratios the paper reports in §V-C.
type Summary struct {
	// SLAP vs vanilla ABC geomean ratios (paper: delay 0.90, area 1.02,
	// cuts 0.76, ADP 0.93).
	SLAPvsABCDelay, SLAPvsABCArea, SLAPvsABCCuts, SLAPvsABCADP float64
	// SLAP vs Unlimited ABC geomean ratios (paper: delay 0.94, area 1.03,
	// cuts 0.49).
	SLAPvsUnlDelay, SLAPvsUnlArea, SLAPvsUnlCuts float64
	// Unlimited vs vanilla ABC (paper: delay 0.96, cuts 1.56).
	UnlVsABCDelay, UnlVsABCCuts float64
	// DelayWinsVsABC counts designs where SLAP's delay beats vanilla ABC
	// (paper: 14/14); DelayWinsVsUnl likewise vs Unlimited (paper: 10/14).
	DelayWinsVsABC, DelayWinsVsUnl int
}

// Summarise computes the headline ratios.
func (t *Table2) Summarise() Summary {
	abc, unl, slap := t.Geomeans()
	s := Summary{
		SLAPvsABCDelay: slap.Delay / abc.Delay,
		SLAPvsABCArea:  slap.Area / abc.Area,
		SLAPvsABCCuts:  float64(slap.Cuts) / float64(abc.Cuts),
		SLAPvsABCADP:   slap.ADP() / abc.ADP(),
		SLAPvsUnlDelay: slap.Delay / unl.Delay,
		SLAPvsUnlArea:  slap.Area / unl.Area,
		SLAPvsUnlCuts:  float64(slap.Cuts) / float64(unl.Cuts),
		UnlVsABCDelay:  unl.Delay / abc.Delay,
		UnlVsABCCuts:   float64(unl.Cuts) / float64(abc.Cuts),
	}
	for _, r := range t.Rows {
		if r.SLAP.Delay <= r.ABC.Delay {
			s.DelayWinsVsABC++
		}
		if r.SLAP.Delay <= r.Unl.Delay {
			s.DelayWinsVsUnl++
		}
	}
	return s
}

// Render formats the table in the paper's layout: per-flow area/delay/cuts
// plus SLAP/ABC and SLAP/Unlimited ratio columns and a geomean row.
func (t *Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II (%s profile) — ABC vs Unlimited vs SLAP\n", t.ProfileName)
	head := fmt.Sprintf("%-12s | %10s %10s %9s | %10s %10s %9s | %10s %10s %9s | %5s %5s %5s | %5s %5s %5s",
		"Circuit",
		"ABC area", "delay", "cuts",
		"Unl area", "delay", "cuts",
		"SLAP area", "delay", "cuts",
		"A r", "D r", "C r",
		"A r", "D r", "C r")
	fmt.Fprintln(&b, head)
	fmt.Fprintln(&b, strings.Repeat("-", len(head)))
	rows := append([]Table2Row(nil), t.Rows...)
	ga, gu, gs := t.Geomeans()
	rows = append(rows, Table2Row{Circuit: "Geomean", ABC: ga, Unl: gu, SLAP: gs})
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s | %10.1f %10.1f %9d | %10.1f %10.1f %9d | %10.1f %10.1f %9d | %5.2f %5.2f %5.2f | %5.2f %5.2f %5.2f\n",
			r.Circuit,
			r.ABC.Area, r.ABC.Delay, r.ABC.Cuts,
			r.Unl.Area, r.Unl.Delay, r.Unl.Cuts,
			r.SLAP.Area, r.SLAP.Delay, r.SLAP.Cuts,
			r.SLAP.Area/r.ABC.Area, r.SLAP.Delay/r.ABC.Delay, float64(r.SLAP.Cuts)/float64(r.ABC.Cuts),
			r.SLAP.Area/r.Unl.Area, r.SLAP.Delay/r.Unl.Delay, float64(r.SLAP.Cuts)/float64(r.Unl.Cuts))
	}
	s := t.Summarise()
	fmt.Fprintf(&b, "\nSLAP vs ABC:       delay x%.2f  area x%.2f  ADP x%.2f  cuts x%.2f  (delay wins %d/%d)\n",
		s.SLAPvsABCDelay, s.SLAPvsABCArea, s.SLAPvsABCADP, s.SLAPvsABCCuts, s.DelayWinsVsABC, len(t.Rows))
	fmt.Fprintf(&b, "SLAP vs Unlimited: delay x%.2f  area x%.2f  cuts x%.2f  (delay wins %d/%d)\n",
		s.SLAPvsUnlDelay, s.SLAPvsUnlArea, s.SLAPvsUnlCuts, s.DelayWinsVsUnl, len(t.Rows))
	fmt.Fprintf(&b, "Unlimited vs ABC:  delay x%.2f  cuts x%.2f\n", s.UnlVsABCDelay, s.UnlVsABCCuts)
	return b.String()
}

// CSV renders the rows as comma-separated values for plotting.
func (t *Table2) CSV() string {
	var b strings.Builder
	fmt.Fprintln(&b, "circuit,abc_area,abc_delay,abc_cuts,unl_area,unl_delay,unl_cuts,slap_area,slap_delay,slap_cuts")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%s,%.2f,%.2f,%d,%.2f,%.2f,%d,%.2f,%.2f,%d\n",
			r.Circuit, r.ABC.Area, r.ABC.Delay, r.ABC.Cuts,
			r.Unl.Area, r.Unl.Delay, r.Unl.Cuts,
			r.SLAP.Area, r.SLAP.Delay, r.SLAP.Cuts)
	}
	return b.String()
}

// SortRowsByName orders rows alphabetically (useful for diffing runs).
func (t *Table2) SortRowsByName() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].Circuit < t.Rows[j].Circuit })
}
