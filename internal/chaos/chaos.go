// Package chaos injects reproducible faults into the fleet's HTTP paths.
// A Schedule is a deterministic, seeded plan of worker faults — kill,
// hang, latency, synthetic error, corrupt byte — consulted once per
// matching request. The same seed and rule set always injects the same
// faults at the same request indices, so every failure mode the fleet
// claims to survive is driven by a reproducible test matrix instead of a
// hand-rolled one-off: tests (and operators, via slap-serve -chaos) dial
// in a schedule, run traffic, and assert the invariants held.
//
// Two injection points cover both sides of the wire:
//
//   - Schedule.Transport wraps an http.RoundTripper, faulting outbound
//     requests — the hook the fleet coordinator's proxy and genjob's
//     remote shard transport share via fleet.Config.Client;
//   - Schedule.Middleware wraps an http.Handler, faulting inbound
//     requests — how a test (or slap-serve -chaos) makes a worker flaky
//     without killing the process.
package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind is one injected fault.
type Kind int

const (
	// KindNone injects nothing.
	KindNone Kind = iota
	// KindKill drops the exchange at the transport level: an outbound
	// round trip fails with a connection-style error before any bytes
	// move; an inbound request's connection is hijacked and closed — the
	// observable behaviour of a SIGKILLed peer.
	KindKill
	// KindHang blocks until the request context is cancelled, modelling a
	// stuck-but-alive peer. It never returns on its own: a caller without
	// a deadline hangs, which is exactly the failure mode deadline
	// propagation exists to bound.
	KindHang
	// KindLatency delays the exchange by the rule's Delay, then proceeds
	// normally.
	KindLatency
	// KindError answers a synthetic HTTP 500 without doing the real work.
	KindError
	// KindCorrupt performs the real exchange, then flips one byte of the
	// response body — bit rot in flight. Checksummed payloads must detect
	// it; anything that trusts the bytes is a bug this fault exists to
	// find.
	KindCorrupt
)

// String names the kind for logs, metrics and the Parse format.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindKill:
		return "kill"
	case KindHang:
		return "hang"
	case KindLatency:
		return "latency"
	case KindError:
		return "error"
	case KindCorrupt:
		return "corrupt"
	default:
		return "unknown"
	}
}

// parseKind inverts String for the Parse flag format.
func parseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindNone, KindKill, KindHang, KindLatency, KindError, KindCorrupt} {
		if k.String() == s {
			return k, nil
		}
	}
	return KindNone, fmt.Errorf("chaos: unknown fault kind %q (want kill, hang, latency, error or corrupt)", s)
}

// Rule selects which requests a fault hits. A request matches when its
// URL path contains Path (empty matches everything); among matching
// requests, After/Every/Count gate by match index and Prob gates
// probabilistically — but deterministically, from the schedule seed and
// the match index, never from wall time or a shared RNG stream.
type Rule struct {
	// Kind is the fault to inject.
	Kind Kind
	// Path substring-matches the request path ("" = every request).
	Path string
	// Delay is the injected latency for KindLatency.
	Delay time.Duration
	// After skips the first After matching requests.
	After int
	// Every fires on every Every-th matching request past After
	// (0 or 1 = every one).
	Every int
	// Count stops injecting after Count faults (0 = unlimited).
	Count int
	// Prob additionally gates each selected request with a deterministic
	// pseudo-random draw in [0,1) derived from (seed, rule, match index);
	// 0 means no probabilistic gate.
	Prob float64
}

// Injection records one injected fault, for test assertions.
type Injection struct {
	// Seq is the schedule-wide request sequence number (0-based, counted
	// across all requests the schedule saw, matching or not).
	Seq int
	// Path is the request path the fault hit.
	Path string
	// Kind is what was injected.
	Kind Kind
}

// ruleState pairs a rule with its per-rule match and injection counters.
type ruleState struct {
	Rule
	matches int
	fired   int
}

// Schedule is a deterministic fault plan: rules plus a seed. Safe for
// concurrent use; the decision for the n-th match of a rule is a pure
// function of (seed, rule index, n).
type Schedule struct {
	seed int64

	mu    sync.Mutex
	rules []ruleState
	seq   int
	log   []Injection
}

// New builds a schedule from a seed and rules. Rules are consulted in
// order; the first that fires wins.
func New(seed int64, rules ...Rule) *Schedule {
	s := &Schedule{seed: seed, rules: make([]ruleState, len(rules))}
	for i, r := range rules {
		s.rules[i] = ruleState{Rule: r}
	}
	return s
}

// splitmix64 is the avalanche mixer the ring and structural hashing use;
// here it turns (seed, rule, match) into the deterministic draw for Prob.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Decision is the outcome of consulting the schedule for one request.
type Decision struct {
	Kind  Kind
	Delay time.Duration
}

// Decide consults the schedule for a request to path and returns the
// fault to inject (KindNone for a clean pass). Each call advances the
// schedule's request sequence.
func (s *Schedule) Decide(path string) Decision {
	if s == nil {
		return Decision{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seq
	s.seq++
	for i := range s.rules {
		r := &s.rules[i]
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		n := r.matches
		r.matches++
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if n < r.After {
			continue
		}
		if every := r.Every; every > 1 && (n-r.After)%every != 0 {
			continue
		}
		if r.Prob > 0 {
			draw := splitmix64(uint64(s.seed) ^ uint64(i)<<32 ^ uint64(n))
			if float64(draw>>11)/(1<<53) >= r.Prob {
				continue
			}
		}
		r.fired++
		s.log = append(s.log, Injection{Seq: seq, Path: path, Kind: r.Kind})
		return Decision{Kind: r.Kind, Delay: r.Delay}
	}
	return Decision{}
}

// Injections snapshots every fault injected so far, in order.
func (s *Schedule) Injections() []Injection {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Injection(nil), s.log...)
}

// Requests reports how many requests the schedule has been consulted for.
func (s *Schedule) Requests() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// corruptIndex picks the byte a KindCorrupt fault flips in an n-byte
// body, deterministically from the schedule seed and the injection
// ordinal, skewed away from byte 0 so framing magics are not the only
// thing ever corrupted.
func (s *Schedule) corruptIndex(ordinal, n int) int {
	if n <= 0 {
		return 0
	}
	return int(splitmix64(uint64(s.seed)^0xc0de^uint64(ordinal)) % uint64(n))
}

// Parse decodes the CLI rule format: semicolon-separated rules of
// comma-separated key=value pairs, e.g.
//
//	kind=latency,path=/v1/map,delay=50ms,every=2;kind=kill,after=3,count=1
//
// Keys: kind (required), path, delay, after, every, count, prob.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		var r Rule
		seenKind := false
		for _, kv := range strings.Split(rs, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("chaos: malformed rule field %q (want key=value)", kv)
			}
			var err error
			switch k {
			case "kind":
				r.Kind, err = parseKind(v)
				seenKind = err == nil
			case "path":
				r.Path = v
			case "delay":
				r.Delay, err = time.ParseDuration(v)
			case "after":
				r.After, err = strconv.Atoi(v)
			case "every":
				r.Every, err = strconv.Atoi(v)
			case "count":
				r.Count, err = strconv.Atoi(v)
			case "prob":
				r.Prob, err = strconv.ParseFloat(v, 64)
			default:
				return nil, fmt.Errorf("chaos: unknown rule key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("chaos: bad %s value %q: %w", k, v, err)
			}
		}
		if !seenKind {
			return nil, fmt.Errorf("chaos: rule %q is missing kind=", rs)
		}
		if r.Kind == KindLatency && r.Delay <= 0 {
			return nil, fmt.Errorf("chaos: latency rule %q needs delay=", rs)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("chaos: empty rule spec")
	}
	return rules, nil
}
