package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// ErrInjectedKill is the transport error a KindKill fault fails with; it
// is indistinguishable in shape from a dropped connection, which is the
// point, but unwraps to this sentinel so tests can tell injected death
// from the real thing.
var ErrInjectedKill = errors.New("chaos: injected connection kill")

// transport is the outbound injection point.
type transport struct {
	s    *Schedule
	base http.RoundTripper
}

// Transport wraps base (nil = http.DefaultTransport) so every outbound
// request consults the schedule first. Install it on the fleet
// coordinator's client (fleet.Config.Client) to fault both the request
// proxy and the remote shard transport with one hook.
func (s *Schedule) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{s: s, base: base}
}

func (t *transport) RoundTrip(r *http.Request) (*http.Response, error) {
	d := t.s.Decide(r.URL.Path)
	switch d.Kind {
	case KindKill:
		return nil, ErrInjectedKill
	case KindHang:
		<-r.Context().Done()
		return nil, r.Context().Err()
	case KindLatency:
		tm := time.NewTimer(d.Delay)
		defer tm.Stop()
		select {
		case <-tm.C:
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	case KindError:
		return syntheticError(r), nil
	case KindCorrupt:
		resp, err := t.base.RoundTrip(r)
		if err != nil {
			return nil, err
		}
		return t.s.corruptResponse(resp)
	}
	return t.base.RoundTrip(r)
}

// syntheticError fabricates the 500 a KindError fault answers with.
func syntheticError(r *http.Request) *http.Response {
	body := `{"error":"chaos: injected worker error"}`
	return &http.Response{
		Status:        "500 Internal Server Error",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       r,
	}
}

// corruptResponse buffers a response body and flips one deterministic
// byte, leaving status and headers alone (Content-Length stays true: one
// byte changes value, not length).
func (s *Schedule) corruptResponse(resp *http.Response) (*http.Response, error) {
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	ordinal := len(s.log)
	s.mu.Unlock()
	if len(b) > 0 {
		b[s.corruptIndex(ordinal, len(b))] ^= 0x40
	}
	resp.Body = io.NopCloser(bytes.NewReader(b))
	resp.ContentLength = int64(len(b))
	return resp, nil
}

// Middleware wraps next so every inbound request consults the schedule:
// the server-side injection point, exposed by slap-serve -chaos to make
// a live worker flaky without killing its process.
func (s *Schedule) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := s.Decide(r.URL.Path)
		switch d.Kind {
		case KindKill:
			// Drop the connection with no response bytes — what a peer of
			// a SIGKILLed process observes. Fall back to a plain panic
			// abort when the writer cannot hijack (e.g. HTTP/2).
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		case KindHang:
			<-r.Context().Done()
			return
		case KindLatency:
			tm := time.NewTimer(d.Delay)
			defer tm.Stop()
			select {
			case <-tm.C:
			case <-r.Context().Done():
				return
			}
		case KindError:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"chaos: injected worker error"}`)
			return
		case KindCorrupt:
			cw := &corruptWriter{ResponseWriter: w}
			next.ServeHTTP(cw, r)
			s.mu.Lock()
			ordinal := len(s.log)
			s.mu.Unlock()
			b := cw.buf.Bytes()
			if len(b) > 0 {
				b[s.corruptIndex(ordinal, len(b))] ^= 0x40
			}
			w.Write(b)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// corruptWriter buffers the response body so the middleware can flip a
// byte before anything reaches the wire. Status and headers pass through
// unchanged.
type corruptWriter struct {
	http.ResponseWriter
	buf bytes.Buffer
}

func (c *corruptWriter) Write(b []byte) (int, error) { return c.buf.Write(b) }
