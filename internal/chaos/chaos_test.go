package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// drive runs the same request paths through a schedule and returns the
// kinds decided, so determinism is assertable across fresh schedules.
func drive(s *Schedule, paths []string) []Kind {
	out := make([]Kind, len(paths))
	for i, p := range paths {
		out[i] = s.Decide(p).Kind
	}
	return out
}

// TestScheduleDeterministic pins the core contract: the same seed and
// rules over the same request sequence inject the same faults, and a
// different seed (with a probabilistic rule) injects a different set.
func TestScheduleDeterministic(t *testing.T) {
	paths := make([]string, 64)
	for i := range paths {
		if i%3 == 0 {
			paths[i] = "/v1/classify"
		} else {
			paths[i] = "/v1/map"
		}
	}
	rules := []Rule{
		{Kind: KindError, Path: "/v1/map", Prob: 0.3},
		{Kind: KindLatency, Path: "/v1/classify", Delay: time.Millisecond, Every: 2},
	}
	a := drive(New(7, rules...), paths)
	b := drive(New(7, rules...), paths)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	injected := 0
	for _, k := range a {
		if k != KindNone {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("schedule injected nothing over 64 requests at prob 0.3")
	}
	c := drive(New(8, rules...), paths)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical probabilistic schedules")
	}
}

// TestScheduleGating pins After/Every/Count arithmetic.
func TestScheduleGating(t *testing.T) {
	s := New(1, Rule{Kind: KindKill, After: 2, Every: 3, Count: 2})
	var fired []int
	for i := 0; i < 12; i++ {
		if s.Decide("/x").Kind == KindKill {
			fired = append(fired, i)
		}
	}
	// Matches 0,1 skipped (After), then every 3rd match fires: 2, 5 — and
	// Count stops it there.
	if want := []int{2, 5}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	if got := s.Requests(); got != 12 {
		t.Errorf("Requests() = %d, want 12", got)
	}
	inj := s.Injections()
	if len(inj) != 2 || inj[0].Kind != KindKill || inj[0].Seq != 2 {
		t.Errorf("injection log %+v, want two kills starting at seq 2", inj)
	}
}

// TestRuleOrderFirstWins checks overlapping rules resolve in order.
func TestRuleOrderFirstWins(t *testing.T) {
	s := New(1, Rule{Kind: KindError}, Rule{Kind: KindKill})
	if got := s.Decide("/x").Kind; got != KindError {
		t.Fatalf("first matching rule = %v, want error", got)
	}
}

// TestTransportFaults drives each fault kind through the RoundTripper
// wrapper against a live backend.
func TestTransportFaults(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "payload-bytes")
	}))
	defer backend.Close()

	t.Run("kill", func(t *testing.T) {
		client := &http.Client{Transport: New(1, Rule{Kind: KindKill}).Transport(nil)}
		_, err := client.Get(backend.URL + "/v1/map")
		if !errors.Is(err, ErrInjectedKill) {
			t.Fatalf("killed round trip error = %v, want ErrInjectedKill", err)
		}
	})

	t.Run("hang-respects-context", func(t *testing.T) {
		client := &http.Client{Transport: New(1, Rule{Kind: KindHang}).Transport(nil)}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, backend.URL+"/v1/map", nil)
		start := time.Now()
		_, err := client.Do(req)
		if err == nil {
			t.Fatal("hung round trip returned without error")
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("hang error = %v, want deadline exceeded", err)
		}
		if time.Since(start) > 2*time.Second {
			t.Fatal("hang ignored the context deadline")
		}
	})

	t.Run("latency", func(t *testing.T) {
		client := &http.Client{Transport: New(1, Rule{Kind: KindLatency, Delay: 40 * time.Millisecond}).Transport(nil)}
		start := time.Now()
		resp, err := client.Get(backend.URL + "/v1/map")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 40*time.Millisecond {
			t.Fatalf("latency fault delayed only %v, want >= 40ms", d)
		}
	})

	t.Run("error", func(t *testing.T) {
		client := &http.Client{Transport: New(1, Rule{Kind: KindError}).Transport(nil)}
		resp, err := client.Get(backend.URL + "/v1/map")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("error fault answered %d, want 500", resp.StatusCode)
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		client := &http.Client{Transport: New(1, Rule{Kind: KindCorrupt}).Transport(nil)}
		resp, err := client.Get(backend.URL + "/v1/map")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) == "payload-bytes" {
			t.Fatal("corrupt fault left the body intact")
		}
		if len(b) != len("payload-bytes") {
			t.Fatalf("corrupt fault changed the length: %d vs %d", len(b), len("payload-bytes"))
		}
	})
}

// TestMiddlewareFaults drives the server-side injection point.
func TestMiddlewareFaults(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "payload-bytes")
	})

	t.Run("error-then-clean", func(t *testing.T) {
		ts := httptest.NewServer(New(1, Rule{Kind: KindError, Count: 1}).Middleware(inner))
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/v1/map")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("first request answered %d, want injected 500", resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + "/v1/map")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(b) != "payload-bytes" {
			t.Fatalf("post-Count request = %d %q, want clean 200", resp.StatusCode, b)
		}
	})

	t.Run("kill-drops-connection", func(t *testing.T) {
		ts := httptest.NewServer(New(1, Rule{Kind: KindKill}).Middleware(inner))
		defer ts.Close()
		if _, err := http.Get(ts.URL + "/v1/map"); err == nil {
			t.Fatal("killed connection produced a response")
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		ts := httptest.NewServer(New(1, Rule{Kind: KindCorrupt}).Middleware(inner))
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/v1/map")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(b) == "payload-bytes" || len(b) != len("payload-bytes") {
			t.Fatalf("corrupted body = %q", b)
		}
	})
}

// TestParse round-trips the CLI rule format and rejects malformed specs.
func TestParse(t *testing.T) {
	rules, err := Parse("kind=latency,path=/v1/map,delay=50ms,every=2; kind=kill,after=3,count=1,prob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Kind: KindLatency, Path: "/v1/map", Delay: 50 * time.Millisecond, Every: 2},
		{Kind: KindKill, After: 3, Count: 1, Prob: 0.5},
	}
	if !reflect.DeepEqual(rules, want) {
		t.Fatalf("Parse = %+v, want %+v", rules, want)
	}
	for _, bad := range []string{
		"", "kind=explode", "path=/x", "kind=latency", "kind=kill,delay", "kind=kill,after=x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
	if !strings.Contains(KindCorrupt.String(), "corrupt") {
		t.Error("Kind.String broken")
	}
}
