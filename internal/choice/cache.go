package choice

import (
	"container/list"
	"context"
	"sync"

	"slap/internal/aig"
	"slap/internal/mapcache"
)

// DefaultCacheBudget is the view-cache byte budget when none is configured.
// Views are small next to mapping results (a combined graph plus member
// lists), so the default is deliberately modest.
const DefaultCacheBudget = 64 << 20

// CacheStats is a point-in-time counter snapshot of a view cache.
type CacheStats struct {
	// Hits counts checkouts served from the cache, including singleflight
	// followers who shared a leader's freshly built view.
	Hits int64
	// Misses counts checkouts that had to build (singleflight leaders).
	Misses int64
	// Evictions counts views dropped to stay inside the byte budget.
	Evictions int64
	// Bytes is the current estimated resident size of all cached views.
	Bytes int64
	// Views is the current number of resident views — the worker's choice
	// warmth, exported so fleet coordinators can see which workers hold warm
	// views for affinity-routed repeats.
	Views int
}

// Cache is a content-addressed, byte-budgeted LRU of built choice views
// with singleflight deduplication: concurrent checkouts of the same
// (base graph, options) pair collapse into one Build whose view everyone
// shares. Keys cover the base graph's full structural encoding (via
// mapcache.KeyOf) plus the Options content signature, so any change to
// either simply misses; Workers is excluded from the signature because the
// built view is byte-identical across worker counts — one cached view
// serves requests with different parallelism settings. Views are immutable
// after Build, which is what makes concurrent checkout of a shared view
// safe. Safe for concurrent use.
type Cache struct {
	// OnBuild, when set, is invoked once per fresh (singleflight-leader)
	// build with the just-built view — cached and shared checkouts do not
	// re-fire it — so observers can aggregate per-phase build timings and
	// proof outcomes without double counting. Set before first use; called
	// without any cache lock held.
	OnBuild func(*View)

	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	byKey  map[mapcache.Key]*list.Element

	hits, misses, evictions int64

	flight *mapcache.Flight[*View]
}

type cacheEntry struct {
	key   mapcache.Key
	view  *View
	bytes int64
}

// NewCache builds a view cache with the given byte budget (<= 0 means
// DefaultCacheBudget).
func NewCache(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultCacheBudget
	}
	return &Cache{
		budget: budget,
		ll:     list.New(),
		byKey:  make(map[mapcache.Key]*list.Element),
		flight: mapcache.NewFlight[*View](),
	}
}

// CacheKey returns the content address a (base, options) pair is cached
// under. Exposed so servers can correlate requests with cache entries.
func CacheKey(base *aig.AIG, o Options) mapcache.Key {
	return mapcache.KeyOf(base, "choice/"+o.Sig())
}

// Checkout returns the view for (base, o), building it at most once: an
// exact-key hit is O(1), concurrent misses with the same key collapse into
// a single BuildContext via singleflight, and the built view is stored
// under the byte budget with LRU eviction. The returned view is shared and
// immutable — callers must not mutate it. The only possible error is the
// building context's ctx.Err(); followers of a cancelled leader see that
// leader's error and are not counted as hits.
func (c *Cache) Checkout(ctx context.Context, base *aig.AIG, o Options) (*View, error) {
	k := CacheKey(base, o)
	if v, ok := c.lookup(k); ok {
		return v, nil
	}
	v, shared, err := c.flight.Do(k, func() (*View, error) {
		// Re-check under the flight: a prior leader may have finished
		// between our lookup miss and the flight claim.
		if v, ok := c.lookup(k); ok {
			return v, nil
		}
		v, err := BuildContext(ctx, base, o)
		if err != nil {
			return nil, err
		}
		if c.OnBuild != nil {
			c.OnBuild(v)
		}
		c.add(k, v)
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		return v, nil
	})
	if err != nil {
		return nil, err
	}
	if shared {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}
	return v, nil
}

// lookup is the O(1) exact-key hit path, promoting on hit.
func (c *Cache) lookup(k mapcache.Key) (*View, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).view, true
	}
	return nil, false
}

// add stores a built view, evicting least-recently-used views until the
// byte budget holds. A view larger than the whole budget is not cached.
func (c *Cache) add(k mapcache.Key, v *View) {
	sz := v.SizeBytes()
	if sz > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes -= old.bytes
		c.ll.Remove(el)
		delete(c.byKey, k)
	}
	e := &cacheEntry{key: k, view: v, bytes: sz}
	c.byKey[k] = c.ll.PushFront(e)
	c.bytes += sz
	for c.bytes > c.budget && c.ll.Len() > 1 {
		el := c.ll.Back()
		old := el.Value.(*cacheEntry)
		c.ll.Remove(el)
		delete(c.byKey, old.key)
		c.bytes -= old.bytes
		c.evictions++
	}
}

// Stats returns current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Views:     c.ll.Len(),
	}
}
