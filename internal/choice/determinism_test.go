package choice

import (
	"bytes"
	"testing"

	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

// TestChoiceWorkersDeterminismMatrix is the parallel-build determinism
// contract: for every Workers count the built view must be identical —
// same classes, same member lists, same proof outcome tallies — and a
// mapping over it must render byte-identical Verilog. Proving runs on
// per-class cone solvers scheduled as a level wavefront with
// barrier-frozen fact snapshots, so no verdict can depend on which worker
// ran which class or in what order.
func TestChoiceWorkersDeterminismMatrix(t *testing.T) {
	g := circuits.BoothMultiplier(8) // past the exhaustive bound: the SAT prover runs
	workerCounts := []int{1, 2, 4, 7}

	type built struct {
		v       *View
		verilog []byte
	}
	render := func(v *View) []byte {
		res, err := mapper.Map(v.G, mapper.Options{
			Library: library.ASAP7ish(), Policy: cuts.DefaultPolicy{},
			Rounds: 2, Choices: v,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Netlist.WriteVerilog(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var ref built
	for i, workers := range workerCounts {
		v := Build(g, Options{Workers: workers})
		if v.Exhaustive() {
			t.Fatal("booth-8 unexpectedly simulated exhaustively; the matrix exercised no proving")
		}
		cur := built{v: v, verilog: render(v)}
		if i == 0 {
			ref = cur
			if v.Classes() == 0 || v.ProvedMembers() == 0 {
				t.Fatalf("reference build found no work: classes=%d proved=%d", v.Classes(), v.ProvedMembers())
			}
			continue
		}
		if v.Classes() != ref.v.Classes() || v.MemberRefs() != ref.v.MemberRefs() {
			t.Fatalf("workers=%d: classes/refs %d/%d, want %d/%d",
				workers, v.Classes(), v.MemberRefs(), ref.v.Classes(), ref.v.MemberRefs())
		}
		if v.ProvedMembers() != ref.v.ProvedMembers() ||
			v.DroppedDiffer() != ref.v.DroppedDiffer() ||
			v.DroppedBudget() != ref.v.DroppedBudget() {
			t.Fatalf("workers=%d: outcomes proved=%d differ=%d budget=%d, want %d/%d/%d",
				workers, v.ProvedMembers(), v.DroppedDiffer(), v.DroppedBudget(),
				ref.v.ProvedMembers(), ref.v.DroppedDiffer(), ref.v.DroppedBudget())
		}
		if v.G.NumNodes() != ref.v.G.NumNodes() {
			t.Fatalf("workers=%d: combined graph has %d nodes, want %d", workers, v.G.NumNodes(), ref.v.G.NumNodes())
		}
		for n := uint32(1); n < uint32(v.G.NumNodes()); n++ {
			ma, mb := ref.v.MembersOf(n), v.MembersOf(n)
			if len(ma) != len(mb) {
				t.Fatalf("workers=%d: node %d member count %d, want %d", workers, n, len(mb), len(ma))
			}
			for j := range ma {
				if ma[j] != mb[j] {
					t.Fatalf("workers=%d: node %d member %d = %+v, want %+v", workers, n, j, mb[j], ma[j])
				}
			}
		}
		if !bytes.Equal(cur.verilog, ref.verilog) {
			t.Fatalf("workers=%d: mapped Verilog differs from workers=%d", workers, workerCounts[0])
		}
	}
}
