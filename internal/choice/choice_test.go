package choice

import (
	"math/rand"
	"testing"

	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/lutmap"
)

// TestChoiceClassSoundness fuzzes the class construction: views built from
// random opt-rewrite variants of random AIGs must (a) satisfy the strict
// id/level eligibility rule every enumeration driver relies on and (b) hold
// only functionally equivalent members — checked by direct simulation of
// the combined graph, independently of the signature machinery that built
// the classes.
func TestChoiceClassSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	totalClasses := 0
	for trial := 0; trial < 12; trial++ {
		g := circuits.RandomAIG(int64(trial+1), 4+trial%5, 80+15*trial)
		v := Build(g, Options{})
		totalClasses += v.Classes()

		for rep := 0; rep < 8; rep++ {
			words := make([]uint64, v.G.NumPIs())
			for i := range words {
				words[i] = rng.Uint64()
			}
			vals := v.G.SimulateNodes(words)
			for n := uint32(1); n < uint32(v.G.NumNodes()); n++ {
				for _, m := range v.MembersOf(n) {
					if m.Node >= n {
						t.Fatalf("trial %d: member %d of node %d violates id order", trial, m.Node, n)
					}
					if v.G.Level(m.Node) >= v.G.Level(n) {
						t.Fatalf("trial %d: member %d (level %d) of node %d (level %d) violates level order",
							trial, m.Node, v.G.Level(m.Node), n, v.G.Level(n))
					}
					want := vals[m.Node]
					if m.Compl {
						want = ^want
					}
					if vals[n] != want {
						t.Fatalf("trial %d: member %d (compl=%v) disagrees with node %d", trial, m.Node, m.Compl, n)
					}
				}
			}
		}

		// The view must keep the base interface: mapped netlists verify
		// against the original graph, not the combined one.
		if v.G.NumPIs() != g.NumPIs() || v.G.NumPOs() != g.NumPOs() {
			t.Fatalf("trial %d: view changed the PI/PO interface", trial)
		}
	}
	if totalClasses == 0 {
		t.Fatal("no equivalence classes found across any trial; the fuzz exercised nothing")
	}
}

// TestChoiceMultiRoundNetlistVerifies maps choice views with the
// multi-round engine and verifies the mapped network against the original
// graph — member cuts must never leak a functionally wrong cover.
func TestChoiceMultiRoundNetlistVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		g := circuits.RandomAIG(int64(100+trial), 5+trial%4, 150+20*trial)
		v := Build(g, Options{})
		res, err := lutmap.Map(v.G, lutmap.Options{
			Policy:  cuts.DefaultPolicy{},
			Workers: 1,
			Rounds:  3,
			Choices: v,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.EquivalentTo(g, 4, rng); err != nil {
			t.Fatalf("trial %d: mapped netlist not equivalent to base: %v", trial, err)
		}
	}
}

// TestChoiceViewDeterminism pins that building the same view twice yields
// identical classes — the fleet's byte-identity guarantee starts here.
func TestChoiceViewDeterminism(t *testing.T) {
	g := circuits.CarryLookaheadAdder(8)
	a := Build(g, Options{})
	b := Build(g, Options{})
	if a.Classes() != b.Classes() || a.MemberRefs() != b.MemberRefs() {
		t.Fatalf("view construction not deterministic: %d/%d classes, %d/%d member refs",
			a.Classes(), b.Classes(), a.MemberRefs(), b.MemberRefs())
	}
	if a.G.NumNodes() != b.G.NumNodes() {
		t.Fatalf("combined graphs differ: %d vs %d nodes", a.G.NumNodes(), b.G.NumNodes())
	}
	for n := uint32(1); n < uint32(a.G.NumNodes()); n++ {
		ma, mb := a.MembersOf(n), b.MembersOf(n)
		if len(ma) != len(mb) {
			t.Fatalf("node %d: member count differs", n)
		}
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("node %d: member %d differs: %+v vs %+v", n, i, ma[i], mb[i])
			}
		}
	}
}

// TestChoiceProofDropsRareDifferences is the regression for the bug the SAT
// prover exists to prevent: on a deep Booth multiplier (24 PIs, so
// signatures are random, not exhaustive) there are node pairs that agree on
// every uniform-random pattern yet differ on rare inputs — unproven, they
// produced functionally wrong netlists. The proven view must survive biased
// simulation (heavy-ones and heavy-zeros patterns reach the rare corners),
// and the prover must actually have dropped candidates on this circuit.
func TestChoiceProofDropsRareDifferences(t *testing.T) {
	g := circuits.BoothMultiplier(12)
	v := Build(g, Options{})
	if v.Exhaustive() {
		t.Fatal("booth-12 should be past the exhaustive-simulation bound")
	}
	if v.DroppedMembers() == 0 {
		t.Fatal("expected the prover to drop unproven candidates on booth-12; the regression exercised nothing")
	}

	rng := rand.New(rand.NewSource(999))
	pis := make([]uint64, v.G.NumPIs())
	for pass := 0; pass < 120; pass++ {
		for i := range pis {
			switch pass % 3 {
			case 0:
				pis[i] = rng.Uint64()
			case 1: // heavy ones: long carry propagation
				pis[i] = rng.Uint64() | rng.Uint64() | rng.Uint64()
			case 2: // heavy zeros: near-constant guards
				pis[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
			}
		}
		vals := v.G.SimulateNodes(pis)
		for n := uint32(1); n < uint32(v.G.NumNodes()); n++ {
			for _, m := range v.MembersOf(n) {
				want := vals[m.Node]
				if m.Compl {
					want = ^want
				}
				if vals[n] != want {
					t.Fatalf("pass %d: proven member %d (compl=%v) disagrees with node %d", pass, m.Node, m.Compl, n)
				}
			}
		}
	}
}

// TestSatSolverBasics sanity-checks the mini CDCL solver on hand-built
// instances independent of any AIG.
func TestSatSolverBasics(t *testing.T) {
	// (a | b) & (!a | b) & (a | !b) & (!a | !b) — classic UNSAT square.
	s := newSatSolver(2)
	a, b := mkLit(0, false), mkLit(1, false)
	ok := s.addClause(a, b) && s.addClause(a.not(), b) && s.addClause(a, b.not())
	if !ok {
		t.Fatal("setup clauses inconsistent too early")
	}
	if s.addClause(a.not(), b.not()) && s.solve(nil, 1000) != satFalse {
		t.Fatal("unsat square not refuted")
	}

	// Satisfiable chain with assumptions driving it both ways.
	s = newSatSolver(3)
	x, y, z := mkLit(0, false), mkLit(1, false), mkLit(2, false)
	if !s.addClause(x.not(), y) || !s.addClause(y.not(), z) {
		t.Fatal("chain setup failed")
	}
	if got := s.solve([]slit{x, z.not()}, 1000); got != satFalse {
		t.Fatalf("x & !z should be unsat under x->y->z, got %v", got)
	}
	if got := s.solve([]slit{x}, 1000); got != satTrue {
		t.Fatalf("x alone should be satisfiable, got %v", got)
	}
	if got := s.solve([]slit{x.not(), z.not()}, 1000); got != satTrue {
		t.Fatalf("!x & !z should be satisfiable, got %v", got)
	}
}

// TestProverAgreesWithExhaustiveSim cross-checks the SAT prover against
// ground truth on small graphs: for every candidate pair proposed by
// exhaustive signatures the prover must answer "equivalent", and for
// perturbed (wrong-polarity) pairs it must answer "not equivalent".
func TestProverAgreesWithExhaustiveSim(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := circuits.RandomAIG(int64(200+trial), 4+trial%3, 60+10*trial)
		v := Build(g, Options{})
		if !v.Exhaustive() {
			t.Fatalf("trial %d: expected exhaustive simulation on %d PIs", trial, g.NumPIs())
		}
		pr := newConeProver(v.G)
		checked := 0
		for n := uint32(1); n < uint32(v.G.NumNodes()) && checked < 40; n++ {
			for _, m := range v.MembersOf(n) {
				pr.load([]uint32{n, m.Node})
				if ok, _ := pr.equivalent(n, m.Node, m.Compl, 100000); !ok {
					t.Fatalf("trial %d: prover rejects exhaustively-proven pair (%d, %d, compl=%v)",
						trial, n, m.Node, m.Compl)
				}
				if ok, _ := pr.equivalent(n, m.Node, !m.Compl, 100000); ok {
					t.Fatalf("trial %d: prover accepts wrong-polarity pair (%d, %d)", trial, n, m.Node)
				}
				checked++
			}
		}
	}
}
