package choice

import (
	"context"
	"testing"

	"slap/internal/circuits"
)

// BenchmarkChoiceBuild splits view construction into its three phases on
// ArrayMultiplier(8) — the BenchmarkMultiRoundMap/rounds4choices circuit,
// so phase numbers compose directly with the end-to-end mapping numbers in
// results/. The prove phase is the historical bottleneck: per-class
// cone-scoped solvers scheduled as a level wavefront with fact injection
// replaced one whole-graph solver proving pairs sequentially.
func BenchmarkChoiceBuild(b *testing.B) {
	base := circuits.ArrayMultiplier(8)
	var o Options
	o.fill()

	b.Run("graft", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			combine(base, o)
		}
	})
	b.Run("simulate", func(b *testing.B) {
		b.ReportAllocs()
		v := combine(base, o)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := v.propose(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prove", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			v := combine(base, o) // prove materialises into the view: fresh one per iteration
			prop, err := v.propose(context.Background(), o)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := v.prove(context.Background(), prop, o); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "full/workers1", 4: "full/workers4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Build(base, Options{Workers: workers})
			}
		})
	}
}

// BenchmarkChoiceViewCache pins the warm-checkout payoff: a cold checkout
// pays one full Build, a warm repeat is an O(1) content-address lookup.
func BenchmarkChoiceViewCache(b *testing.B) {
	base := circuits.ArrayMultiplier(8)
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := NewCache(0)
			if _, err := c.Checkout(ctx, base, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		c := NewCache(0)
		if _, err := c.Checkout(ctx, base, Options{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Checkout(ctx, base, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
