// Mini CDCL SAT solver used to prove candidate choice members before the
// mapper may substitute them. Simulation signatures only *propose*
// equivalence classes; two nodes of a deep circuit can agree on thousands of
// random patterns and still differ on a rare one (a long carry chain, a
// near-constant guard), and a false choice silently corrupts the mapped
// netlist. So, like ABC's fraiging, every (node, member) pair is discharged
// by two incremental SAT calls over the combined graph's Tseitin encoding —
// UNSAT(n=1, m'=0) and UNSAT(n=0, m'=1) — under a conflict budget; anything
// SAT (truly different) or out of budget (unproven) is dropped. Dropping is
// always sound: the view just offers fewer alternatives.
//
// The solver is deliberately small: two-watched-literal propagation,
// first-UIP clause learning, phase saving, an activity-bumped decision
// heuristic and Luby-style restarts. Each equivalence class gets its own
// solver over the Tseitin encoding of the class's union transitive-fanin
// cone (see coneProver): learned clauses persist across the per-pair calls
// within one class, which is what makes class proving cheap — members come
// from rebalanced variants of the same logic, so the cones share almost
// everything — while cone scoping keeps the instance (watch lists, branch
// scan, clause DB) orders of magnitude smaller than the combined graph.
package choice

import (
	"sort"

	"slap/internal/aig"
)

type satResult int8

const (
	satUnknown satResult = iota // conflict budget exhausted
	satTrue                     // satisfiable: nodes differ
	satFalse                    // unsatisfiable
)

// Literal encoding: variable v yields literals v<<1 (positive) and v<<1|1
// (negated). Variable i is combined-graph node i; node 0 is constant false.
type slit uint32

func mkLit(v uint32, neg bool) slit {
	l := slit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

func (l slit) not() slit     { return l ^ 1 }
func (l slit) variable() int { return int(l >> 1) }
func (l slit) sign() bool    { return l&1 != 0 }

const litUndef = ^slit(0)

type sclause struct {
	lits    []slit
	learned bool
}

type satSolver struct {
	nVars   int
	clauses []*sclause
	watches [][]*sclause // literal -> clauses watching it (lits[0] or lits[1])

	// Slab arenas for clause records and their literal arrays: a cone-scoped
	// build creates one solver per equivalence class, so per-clause heap
	// allocations dominate without batching. Chunked slabs keep previously
	// handed-out pointers valid when a new chunk is carved.
	clauseSlab []sclause
	litSlab    []slit

	assign   []int8 // per var: 0 undef, +1 true, -1 false
	level    []int32
	reason   []*sclause
	phase    []bool // saved phase per var
	activity []float64
	varInc   float64

	trail    []slit
	trailLim []int
	qhead    int

	seen      []bool // scratch for analyze
	conflicts int64
}

func newSatSolver(nVars int) *satSolver {
	s := &satSolver{
		nVars:    nVars,
		watches:  make([][]*sclause, nVars*2),
		assign:   make([]int8, nVars),
		level:    make([]int32, nVars),
		reason:   make([]*sclause, nVars),
		phase:    make([]bool, nVars),
		activity: make([]float64, nVars),
		seen:     make([]bool, nVars),
		varInc:   1,
	}
	return s
}

func (s *satSolver) value(l slit) int8 {
	v := s.assign[l.variable()]
	if l.sign() {
		return -v
	}
	return v
}

// addClause installs a problem clause. Empty clause or a root-level
// conflict is reported by returning false. Must be called at level 0.
func (s *satSolver) addClause(lits ...slit) bool {
	// Root-level simplification: drop false lits, succeed on true ones.
	out := lits[:0]
	for _, l := range lits {
		switch s.value(l) {
		case 1:
			return true
		case 0:
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		return false
	case 1:
		return s.enqueue(out[0], nil) && s.propagate() == nil
	}
	c := s.allocClause(out, false)
	s.attach(c)
	s.clauses = append(s.clauses, c)
	return true
}

// allocClause carves a clause from the slab arenas, copying lits.
func (s *satSolver) allocClause(lits []slit, learned bool) *sclause {
	if len(s.clauseSlab) == 0 {
		s.clauseSlab = make([]sclause, 512)
	}
	c := &s.clauseSlab[0]
	s.clauseSlab = s.clauseSlab[1:]
	if cap(s.litSlab)-len(s.litSlab) < len(lits) {
		n := 4096
		if len(lits) > n {
			n = len(lits)
		}
		s.litSlab = make([]slit, 0, n)
	}
	start := len(s.litSlab)
	s.litSlab = append(s.litSlab, lits...)
	c.lits = s.litSlab[start:len(s.litSlab):len(s.litSlab)]
	c.learned = learned
	return c
}

func (s *satSolver) attach(c *sclause) {
	s.watches[c.lits[0].not()] = append(s.watches[c.lits[0].not()], c)
	s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
}

func (s *satSolver) enqueue(l slit, from *sclause) bool {
	switch s.value(l) {
	case 1:
		return true
	case -1:
		return false
	}
	v := l.variable()
	if l.sign() {
		s.assign[v] = -1
	} else {
		s.assign[v] = 1
	}
	s.phase[v] = !l.sign()
	s.level[v] = int32(len(s.trailLim))
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

// propagate runs unit propagation; it returns the conflicting clause or nil.
func (s *satSolver) propagate() *sclause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is true
		s.qhead++
		ws := s.watches[p]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			// Ensure the falsified watch is lits[1].
			if c.lits[0].not() == p {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == 1 {
				kept = append(kept, c)
				continue
			}
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != -1 {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].not()] = append(s.watches[c.lits[1].not()], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				kept = append(kept, ws[wi+1:]...)
				s.watches[p] = kept
				return c
			}
		}
		s.watches[p] = kept
	}
	return nil
}

func (s *satSolver) decisionLevel() int { return len(s.trailLim) }

func (s *satSolver) newDecisionLevel() { s.trailLim = append(s.trailLim, len(s.trail)) }

func (s *satSolver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		v := s.trail[i].variable()
		s.assign[v] = 0
		s.reason[v] = nil
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.trailLim = s.trailLim[:lvl]
	s.qhead = len(s.trail)
}

func (s *satSolver) bump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze derives the first-UIP learned clause from a conflict; it returns
// the clause (asserting literal first) and the backjump level.
func (s *satSolver) analyze(confl *sclause) ([]slit, int) {
	learnt := []slit{litUndef} // slot 0 = asserting literal
	counter := 0
	idx := len(s.trail) - 1
	var p slit = litUndef

	for {
		for _, q := range confl.lits {
			if p != litUndef && q == p {
				continue
			}
			v := q.variable()
			if s.seen[v] || s.level[v] == 0 {
				continue
			}
			s.seen[v] = true
			s.bump(v)
			if int(s.level[v]) == s.decisionLevel() {
				counter++
			} else {
				learnt = append(learnt, q)
			}
		}
		for !s.seen[s.trail[idx].variable()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		s.seen[p.variable()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.variable()]
	}
	learnt[0] = p.not()

	btLevel := 0
	if len(learnt) > 1 {
		// Move the highest-level non-asserting literal to slot 1.
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].variable()] > s.level[learnt[maxI].variable()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].variable()])
	}
	for _, l := range learnt {
		s.seen[l.variable()] = false
	}
	s.varInc /= 0.95
	return learnt, btLevel
}

func (s *satSolver) pickBranch() slit {
	best, bestAct := -1, -1.0
	for v := 0; v < s.nVars; v++ {
		if s.assign[v] == 0 && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	if best < 0 {
		return litUndef
	}
	return mkLit(uint32(best), !s.phase[best])
}

// solve decides satisfiability under the given assumptions with a conflict
// budget. Learned clauses and variable activity persist across calls.
func (s *satSolver) solve(assumps []slit, budget int64) satResult {
	s.cancelUntil(0)
	limit := s.conflicts + budget
	restartUnit := int64(64)
	nextRestart := s.conflicts + restartUnit

	for {
		confl := s.propagate()
		if confl != nil {
			s.conflicts++
			if s.decisionLevel() <= len(assumps) {
				// Conflict forced by the assumptions themselves.
				s.cancelUntil(0)
				return satFalse
			}
			learnt, bt := s.analyze(confl)
			if bt < len(assumps) {
				bt = len(assumps)
			}
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				if !s.enqueue(learnt[0], nil) {
					return satFalse
				}
			} else {
				c := s.allocClause(learnt, true)
				s.attach(c)
				s.clauses = append(s.clauses, c)
				if !s.enqueue(learnt[0], c) {
					return satFalse
				}
			}
			if s.conflicts >= limit {
				s.cancelUntil(0)
				return satUnknown
			}
			if s.conflicts >= nextRestart {
				restartUnit += restartUnit / 2
				nextRestart = s.conflicts + restartUnit
				s.cancelUntil(len(assumps))
			}
			continue
		}
		// Re-establish assumptions as the first decision levels after any
		// backjump below them.
		if lvl := s.decisionLevel(); lvl < len(assumps) {
			a := assumps[lvl]
			switch s.value(a) {
			case 1:
				s.newDecisionLevel() // already implied: placeholder level
			case -1:
				s.cancelUntil(0)
				return satFalse
			default:
				s.newDecisionLevel()
				s.enqueue(a, nil)
			}
			continue
		}
		next := s.pickBranch()
		if next == litUndef {
			s.cancelUntil(0)
			return satTrue
		}
		s.newDecisionLevel()
		s.enqueue(next, nil)
	}
}

// coneProver proves pairs of one equivalence class at a time over a Tseitin
// encoding scoped to the class's union transitive-fanin cone. One instance
// is private to a build worker and reused across the classes that worker
// claims: the node→var map and DFS stack are retained scratch (reset via the
// previous cone's node list, not a full sweep), while each class gets a
// fresh satSolver sized to its cone. Scoping the solver to the class — not
// the worker — is what keeps parallel builds byte-identical to sequential:
// a budget-limited solve outcome depends on the solver's accumulated learned
// clauses, so every class's verdicts must be a pure function of (graph,
// class, options), independent of which worker proves it after which other
// classes. Within a class, learned clauses and activity still carry over
// across the pair calls via assumption-based solving.
type coneProver struct {
	g        *aig.AIG
	node2var []int32  // node id -> dense solver var, -1 outside current cone
	cone     []uint32 // current class's cone nodes, ascending id
	stack    []uint32 // DFS scratch
	s        *satSolver
	ok       bool // encoding consistent (always true for a well-formed AIG)
}

func newConeProver(g *aig.AIG) *coneProver {
	n2v := make([]int32, g.NumNodes())
	for i := range n2v {
		n2v[i] = -1
	}
	return &coneProver{g: g, node2var: n2v}
}

// load prepares the prover for one class: collect the union transitive-fanin
// cone of all class nodes, assign dense variables in ascending node-id order
// (so the clause database is deterministic regardless of DFS order), and
// encode the cone's AND structure. Var 0 is the constant-false node 0; PIs
// inside the cone become free variables.
func (p *coneProver) load(class []uint32) {
	for _, n := range p.cone {
		p.node2var[n] = -1
	}
	p.cone = p.cone[:0]
	stack := p.stack[:0]
	visit := func(n uint32) {
		if n != 0 && p.node2var[n] < 0 {
			p.node2var[n] = 0 // mark visited; real var assigned below
			p.cone = append(p.cone, n)
			stack = append(stack, n)
		}
	}
	for _, n := range class {
		visit(n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if p.g.IsAnd(n) {
			f0, f1 := p.g.Fanins(n)
			visit(f0.Node())
			visit(f1.Node())
		}
	}
	p.stack = stack
	sort.Slice(p.cone, func(i, j int) bool { return p.cone[i] < p.cone[j] })
	for i, n := range p.cone {
		p.node2var[n] = int32(i + 1)
	}

	s := newSatSolver(len(p.cone) + 1)
	ok := s.addClause(mkLit(0, true)) // var 0 is constant false
	lit := func(l aig.Lit) slit {
		if l.Node() == 0 {
			return mkLit(0, l.IsCompl())
		}
		return mkLit(uint32(p.node2var[l.Node()]), l.IsCompl())
	}
	for _, n := range p.cone {
		if !p.g.IsAnd(n) {
			continue
		}
		f0, f1 := p.g.Fanins(n)
		o, a, b := mkLit(uint32(p.node2var[n]), false), lit(f0), lit(f1)
		ok = ok && s.addClause(o.not(), a)
		ok = ok && s.addClause(o.not(), b)
		ok = ok && s.addClause(o, a.not(), b.not())
	}
	p.s, p.ok = s, ok
}

// addFact installs a proven equivalence n == m (complemented when compl) as
// hard constraint clauses. Both nodes must be inside the loaded cone. Facts
// are true statements about the cone's functions — every model of the
// Tseitin encoding is a PI assignment extended by simulation, under which a
// certified equivalence holds — so they exclude no genuine counterexample
// and only speed up refutations: a deep pair whose fanin classes are
// already certified propagates to equality instead of being re-derived by
// search. This is what replaces the old whole-graph solver's accumulated
// learned clauses, without its cross-class scheduling dependence.
func (p *coneProver) addFact(n, m uint32, compl bool) {
	a := mkLit(uint32(p.node2var[n]), false)
	b := mkLit(uint32(p.node2var[m]), compl)
	p.ok = p.ok && p.s.addClause(a.not(), b)
	p.ok = p.ok && p.s.addClause(a, b.not())
}

// equivalent proves n == m (complemented when compl) by refuting both
// difference phases. Only satFalse on both calls counts as proven; exhausted
// reports that the conflict budget ran out before an answer (as opposed to a
// genuine counterexample). Both nodes must be inside the loaded cone.
func (p *coneProver) equivalent(n, m uint32, compl bool, budget int64) (proved, exhausted bool) {
	if !p.ok {
		return false, false
	}
	vn, vm := uint32(p.node2var[n]), uint32(p.node2var[m])
	nPos, nNeg := mkLit(vn, false), mkLit(vn, true)
	mPos, mNeg := mkLit(vm, compl), mkLit(vm, !compl)
	if r := p.s.solve([]slit{nPos, mNeg}, budget); r != satFalse {
		return false, r == satUnknown
	}
	if r := p.s.solve([]slit{nNeg, mPos}, budget); r != satFalse {
		return false, r == satUnknown
	}
	return true, false
}
