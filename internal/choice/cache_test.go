package choice

import (
	"context"
	"sync"
	"testing"

	"slap/internal/circuits"
)

// TestCacheWarmRepeatSkipsBuild pins the cache contract: a repeat checkout
// with the same (base, options) returns the same view pointer without
// rebuilding, and a different Workers setting still hits — Workers is a
// scheduling knob excluded from the content signature.
func TestCacheWarmRepeatSkipsBuild(t *testing.T) {
	c := NewCache(0)
	g := circuits.CarryLookaheadAdder(8)
	ctx := context.Background()

	v1, err := c.Checkout(ctx, g, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := c.Checkout(ctx, g, Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("warm repeat rebuilt the view instead of sharing the cached one")
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Views != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 view", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("cached view accounted %d bytes", st.Bytes)
	}

	// A different content knob must key separately.
	v3, err := c.Checkout(ctx, g, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("different options shared a cached view")
	}
	if st := c.Stats(); st.Misses != 2 || st.Views != 2 {
		t.Fatalf("stats = %+v, want 2 misses, 2 views", st)
	}
}

// TestCacheConcurrentCheckout races many goroutines checking out the same
// key plus a rotating set of distinct keys; run under -race this is the
// stress test for concurrent cached-view checkout. The shared key must
// build exactly once (singleflight) and every caller must observe the same
// immutable view.
func TestCacheConcurrentCheckout(t *testing.T) {
	c := NewCache(0)
	shared := circuits.CarryLookaheadAdder(6)
	ctx := context.Background()

	const goroutines = 16
	views := make([]*View, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Checkout(ctx, shared, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			// Exercise concurrent reads of the shared view.
			for n := uint32(1); n < uint32(v.G.NumNodes()); n++ {
				_ = v.MembersOf(n)
			}
			views[i] = v

			// Interleave distinct keys to race Add/evict against lookups.
			own := circuits.RandomAIG(int64(i+1), 5, 60)
			if _, err := c.Checkout(ctx, own, Options{}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	for i := 1; i < goroutines; i++ {
		if views[i] != views[0] {
			t.Fatalf("goroutine %d got a different view for the shared key", i)
		}
	}
	st := c.Stats()
	if st.Misses != goroutines+1 { // 16 distinct graphs + 1 shared build
		t.Fatalf("misses = %d, want %d", st.Misses, goroutines+1)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, goroutines-1)
	}
}

// TestCacheEviction forces the byte budget and checks LRU order: the least
// recently used view goes first and the counters record it.
func TestCacheEviction(t *testing.T) {
	g1 := circuits.RandomAIG(1, 5, 80)
	g2 := circuits.RandomAIG(2, 5, 80)
	ctx := context.Background()

	probe := NewCache(0)
	v1, err := probe.Checkout(ctx, g1, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Budget fits one view but not two.
	c := NewCache(v1.SizeBytes() + v1.SizeBytes()/2)
	if _, err := c.Checkout(ctx, g1, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkout(ctx, g2, Options{}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Views != 1 {
		t.Fatalf("stats = %+v, want 1 eviction, 1 resident view", st)
	}
	// g1 was evicted: checking it out again must rebuild (miss).
	if _, err := c.Checkout(ctx, g1, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (g1 rebuilt after eviction)", st.Misses)
	}
}

// TestCacheCancelledBuild checks that a cancelled context surfaces the
// context error and caches nothing.
func TestCacheCancelledBuild(t *testing.T) {
	c := NewCache(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Checkout(ctx, circuits.CarryLookaheadAdder(8), Options{}); err == nil {
		t.Fatal("cancelled checkout returned no error")
	}
	if st := c.Stats(); st.Views != 0 {
		t.Fatalf("cancelled build left %d resident views", st.Views)
	}
}
