// Package choice builds choice views over AIGs: several structurally
// distinct but functionally equivalent variants of a subject graph (produced
// by internal/opt rewrites) are grafted into one combined AIG, functional
// equivalence classes are proposed by packed-pattern simulation signatures
// and proven by an embedded CDCL SAT check (see sat.go), and the result is
// exposed as a cuts.ChoiceSource so the enumerator can match the union of
// every class member's cuts — the "choice network" of ABC's &if -C and
// also's choice_lut_mapper.
//
// The combined graph shares the base graph's PIs (same count, order and
// names) and takes its POs from the base image, so a netlist mapped over the
// view verifies directly against the original graph. The base is grafted
// last: structural hashing dedupes shared logic, and any node of a variant
// that is structurally distinct from its base equivalent keeps a smaller id
// and (for balance-style variants) a no-greater level — which is what makes
// it eligible as a choice member under the enumerator's id/level rule.
//
// Construction runs in three phases — graft, simulate, prove — the latter
// two parallel across Options.Workers yet byte-identical to sequential for
// any worker count: simulation patterns are pre-generated in a fixed order
// and only the per-word evaluation fans out, and proving is parallel at
// equivalence-class granularity with a class-local cone-scoped solver, so
// every class's verdicts are a pure function of (graph, class, options).
package choice

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/opt"
)

// Options tunes view construction. The zero value picks the defaults.
type Options struct {
	// Variants is the number of seeded balance variants grafted in addition
	// to the deterministic Optimize variant. Default 2.
	Variants int
	// Seed drives the seeded rewrites and the random simulation patterns.
	// Default 1.
	Seed int64
	// MaxMembers caps the member list attached to any single node. Default 8.
	MaxMembers int
	// SimWords is the number of 64-pattern words per signature pass when the
	// graph has too many PIs for exhaustive simulation. Two independent
	// passes are always run. Default 16 (2048 random patterns).
	SimWords int
	// ProofConflicts is the per-call SAT conflict budget used to prove each
	// candidate member when simulation is not exhaustive. Members whose
	// proof does not finish inside the budget are dropped (sound: the view
	// just offers fewer alternatives). Default 4000.
	ProofConflicts int64
	// Workers bounds the goroutines used for simulation and class proving.
	// Scheduling only: the built view is byte-identical for any value, so
	// Workers is excluded from Sig. Default GOMAXPROCS.
	Workers int
}

// exhaustiveMaxPIs bounds exhaustive signature simulation: up to 11 PIs the
// signature covers all 2^n patterns (<= 32 words) and class membership is a
// proof, not a probabilistic check.
const exhaustiveMaxPIs = 11

func (o *Options) fill() {
	if o.Variants <= 0 {
		o.Variants = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxMembers <= 0 {
		o.MaxMembers = 8
	}
	if o.SimWords <= 0 {
		o.SimWords = 16
	}
	if o.ProofConflicts <= 0 {
		o.ProofConflicts = 4000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Sig returns the content signature of the options: every knob that can
// change the built view, with defaults folded in so an explicit default and
// the zero value key identically. Workers is deliberately excluded — it is
// a scheduling knob and the view is byte-identical across worker counts —
// which is what lets one cached view serve requests with different
// parallelism settings.
func (o Options) Sig() string {
	c := o
	c.fill()
	return fmt.Sprintf("variants=%d/seed=%d/mm=%d/sw=%d/pc=%d",
		c.Variants, c.Seed, c.MaxMembers, c.SimWords, c.ProofConflicts)
}

// PhaseTimings records wall time spent in each build phase.
type PhaseTimings struct {
	Graft    time.Duration
	Simulate time.Duration
	Prove    time.Duration
}

// View is a built choice view. It implements cuts.ChoiceSource over G.
// A View is immutable after Build returns and safe to share across
// goroutines — this is what makes cached views checkoutable concurrently.
type View struct {
	// G is the combined graph to enumerate and map; its PIs and POs are the
	// base graph's (same order, names and semantics).
	G *aig.AIG
	// Base is the original subject graph the view was built from.
	Base *aig.AIG

	members    [][]cuts.ChoiceMember
	classes    int
	memberRefs int
	exhaustive bool

	proved        int // node certificates discharged by the SAT prover
	droppedDiffer int // candidates refuted by a SAT counterexample
	droppedBudget int // candidates whose proof exhausted the conflict budget

	phases PhaseTimings
}

// MembersOf returns node n's equivalence-class members, each satisfying
// id(m) < n, level(m) < level(n). It implements cuts.ChoiceSource.
func (v *View) MembersOf(n uint32) []cuts.ChoiceMember {
	if int(n) >= len(v.members) {
		return nil
	}
	return v.members[n]
}

// Classes returns the number of non-trivial equivalence classes found.
func (v *View) Classes() int { return v.classes }

// MemberRefs returns the total number of (node, member) enrichment edges.
func (v *View) MemberRefs() int { return v.memberRefs }

// DroppedMembers returns the number of candidate class nodes discarded
// because their equivalence certificate against the class representative
// failed or exceeded the conflict budget.
func (v *View) DroppedMembers() int { return v.droppedDiffer + v.droppedBudget }

// ProvedMembers returns the number of node certificates the SAT prover
// discharged. Zero when simulation was exhaustive (signatures are proofs).
func (v *View) ProvedMembers() int { return v.proved }

// DroppedDiffer returns the candidates refuted by a SAT counterexample —
// signature collisions that were genuinely different functions.
func (v *View) DroppedDiffer() int { return v.droppedDiffer }

// DroppedBudget returns the candidates dropped because their proof did not
// finish inside the per-pair conflict budget.
func (v *View) DroppedBudget() int { return v.droppedBudget }

// Exhaustive reports whether class membership was proven by exhaustive
// simulation (true iff the base has <= 11 PIs).
func (v *View) Exhaustive() bool { return v.exhaustive }

// Phases returns the wall time spent in each build phase.
func (v *View) Phases() PhaseTimings { return v.phases }

// SizeBytes estimates the resident size of the view (combined graph plus
// member lists) for cache byte accounting. The base graph is caller-owned
// and not counted.
func (v *View) SizeBytes() int64 {
	const nodeBytes = 32 // id-indexed node record + level/fanout annotations
	sz := int64(v.G.NumNodes()) * nodeBytes
	sz += int64(len(v.members)) * 24 // slice headers
	sz += int64(v.memberRefs) * 8    // cuts.ChoiceMember entries
	return sz
}

// Build constructs a choice view of base: rewrite variants, graft them and
// the base into a combined strashed graph, and class the combined nodes by
// simulation signature. Construction is deterministic for a given (base,
// Options) pair — for any Workers count — which keeps multi-round mapping
// byte-identical across workers and cache keys stable.
func Build(base *aig.AIG, o Options) *View {
	v, _ := BuildContext(context.Background(), base, o)
	return v
}

// BuildContext is Build with cancellation: simulation stops between pattern
// words and proving stops between classes when ctx is done, so a dropped
// /v1/map client or an expired deadline does not keep burning SAT budget.
// The only possible error is ctx.Err().
func BuildContext(ctx context.Context, base *aig.AIG, o Options) (*View, error) {
	o.fill()

	t := time.Now()
	v := combine(base, o)
	v.phases.Graft = time.Since(t)

	t = time.Now()
	prop, err := v.propose(ctx, o)
	if err != nil {
		return nil, err
	}
	v.phases.Simulate = time.Since(t)

	t = time.Now()
	if err := v.prove(ctx, prop, o); err != nil {
		return nil, err
	}
	v.phases.Prove = time.Since(t)
	return v, nil
}

// combine is the graft phase: rewrite variants of base and strash them plus
// the base itself into one combined graph sharing the base's PI/PO
// interface.
func combine(base *aig.AIG, o Options) *View {
	swept := opt.Sweep(base)
	variants := make([]*aig.AIG, 0, 1+o.Variants)
	variants = append(variants, opt.Sweep(opt.Balance(swept)))
	for i := 0; i < o.Variants; i++ {
		variants = append(variants, opt.Sweep(opt.BalanceSeeded(swept, o.Seed+int64(i)*0x9e3779b9)))
	}

	comb := aig.New(base.Name)
	piLits := make([]aig.Lit, base.NumPIs())
	for i := range piLits {
		piLits[i] = comb.AddPI(base.PIName(i))
	}
	for _, v := range variants {
		graft(comb, piLits, v)
	}
	baseMap := graft(comb, piLits, base)
	mapLit := func(l aig.Lit) aig.Lit {
		if l.Node() == 0 {
			return l
		}
		return baseMap[l.Node()].NotIf(l.IsCompl())
	}
	for _, po := range base.POs() {
		comb.AddPO(po.Name, mapLit(po.Lit))
	}

	return &View{G: comb, Base: base, members: make([][]cuts.ChoiceMember, comb.NumNodes())}
}

// graft copies the PO-reachable logic of v into comb, mapping v's PIs to
// piLits positionally, and returns v's old->new literal map. Structural
// hashing inside comb.And dedupes any logic already grafted.
func graft(comb *aig.AIG, piLits []aig.Lit, v *aig.AIG) []aig.Lit {
	old2new := make([]aig.Lit, v.NumNodes())
	for i := range old2new {
		old2new[i] = ^aig.Lit(0)
	}
	for i, pi := range v.PIs() {
		old2new[pi] = piLits[i]
	}

	needed := make([]bool, v.NumNodes())
	var stack []uint32
	push := func(n uint32) {
		if v.IsAnd(n) && !needed[n] {
			needed[n] = true
			stack = append(stack, n)
		}
	}
	for _, po := range v.POs() {
		push(po.Lit.Node())
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f0, f1 := v.Fanins(n)
		push(f0.Node())
		push(f1.Node())
	}

	mapLit := func(l aig.Lit) aig.Lit {
		if l.Node() == 0 {
			return l
		}
		return old2new[l.Node()].NotIf(l.IsCompl())
	}
	for n := uint32(1); n < uint32(v.NumNodes()); n++ {
		if needed[n] {
			f0, f1 := v.Fanins(n)
			old2new[n] = comb.And(mapLit(f0), mapLit(f1))
		}
	}
	return old2new
}

// proposal is the simulate phase's output: candidate equivalence classes in
// their canonical proving order plus each node's polarity relative to its
// class's canonical phase.
type proposal struct {
	classes [][]uint32
	pol     []bool
}

// propose is the simulate phase: compute per-node signatures of the combined
// graph under pre-generated patterns (parallel across words), canonicalise
// polarity, and group equal signatures into candidate classes sorted by
// their first node id.
func (v *View) propose(ctx context.Context, o Options) (*proposal, error) {
	g := v.G
	numNodes := g.NumNodes()
	if numNodes <= 1 {
		return &proposal{}, nil
	}

	var words int
	exhaustive := g.NumPIs() <= exhaustiveMaxPIs
	if exhaustive {
		words = 1
		if g.NumPIs() > 6 {
			words = 1 << (g.NumPIs() - 6)
		}
	} else {
		// Two independent random passes, concatenated: a collision must
		// survive both to create a false class.
		words = 2 * o.SimWords
	}
	v.exhaustive = exhaustive

	// Pre-generate every pattern word in the fixed sequential order the rng
	// defines; only the (pure) per-word graph evaluation fans out below, so
	// the signatures are identical for any worker count.
	patterns := make([][]uint64, words)
	rng := rand.New(rand.NewSource(o.Seed ^ 0x5deece66d))
	for w := 0; w < words; w++ {
		piVals := make([]uint64, g.NumPIs())
		for i := range piVals {
			if exhaustive {
				piVals[i] = exhaustiveWord(i, w)
			} else {
				piVals[i] = rng.Uint64()
			}
		}
		patterns[w] = piVals
	}

	sigs := make([]uint64, numNodes*words)
	simWorkers := o.Workers
	if simWorkers > words {
		simWorkers = words
	}
	if simWorkers <= 1 {
		for w := 0; w < words; w++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			vals := g.SimulateNodes(patterns[w])
			for n := 0; n < numNodes; n++ {
				sigs[n*words+w] = vals[n]
			}
		}
	} else {
		var next atomic.Int64
		var stop atomic.Bool
		var wg sync.WaitGroup
		for i := 0; i < simWorkers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					w := int(next.Add(1)) - 1
					if w >= words {
						return
					}
					if ctx.Err() != nil {
						stop.Store(true)
						return
					}
					vals := g.SimulateNodes(patterns[w])
					for n := 0; n < numNodes; n++ {
						sigs[n*words+w] = vals[n]
					}
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Canonicalise polarity: a node whose pattern-0 value is 1 is stored
	// complemented, so n and NOT(n) land in the same class with pol
	// recording which phase each is in.
	pol := make([]bool, numNodes)
	mask := ^uint64(0)
	if exhaustive && g.NumPIs() < 6 {
		mask = (1 << (1 << g.NumPIs())) - 1
	}
	for n := 0; n < numNodes; n++ {
		s := sigs[n*words : (n+1)*words]
		if s[0]&1 != 0 {
			pol[n] = true
			for i := range s {
				s[i] = ^s[i]
			}
		}
		for i := range s {
			s[i] &= mask
		}
	}

	// Group by signature hash, confirming equality inside each bucket.
	type bucket struct{ nodes []uint32 }
	byHash := make(map[uint64]*bucket, numNodes)
	hashSig := func(s []uint64) uint64 {
		h := uint64(0xcbf29ce484222325)
		for _, w := range s {
			h = (h ^ w) * 0x100000001b3
		}
		return h
	}
	sigOf := func(n uint32) []uint64 { return sigs[int(n)*words : (int(n)+1)*words] }
	sigEq := func(a, b []uint64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	isConstSig := func(s []uint64) bool {
		for _, w := range s {
			if w != 0 {
				return false
			}
		}
		return true
	}
	for n := uint32(1); n < uint32(numNodes); n++ {
		if !g.IsAnd(n) && !g.IsPI(n) {
			continue
		}
		if isConstSig(sigOf(n)) {
			continue // constant-valued under the patterns: never a useful choice
		}
		h := hashSig(sigOf(n))
		b := byHash[h]
		if b == nil {
			b = &bucket{}
			byHash[h] = b
		}
		b.nodes = append(b.nodes, n)
	}

	var classes [][]uint32
	for _, b := range byHash {
		// Nodes arrive in ascending id (the fill loop runs in id order). A
		// hash bucket can mix several true classes on collision: peel them
		// off front to back.
		nodes := b.nodes
		for len(nodes) > 1 {
			ref := sigOf(nodes[0])
			var class, rest []uint32
			class = append(class, nodes[0])
			for _, m := range nodes[1:] {
				if sigEq(ref, sigOf(m)) {
					class = append(class, m)
				} else {
					rest = append(rest, m)
				}
			}
			if len(class) > 1 {
				classes = append(classes, class)
			}
			nodes = rest
		}
	}
	// Classes from distinct buckets are disjoint, but the map iteration
	// above is unordered — fix a canonical order so class indices (and the
	// applied results) are deterministic.
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })
	return &proposal{classes: classes, pol: pol}, nil
}

// classResult holds one class's proof state plus its outcome tallies,
// computed by whichever worker claimed the class. certified lists the class
// nodes whose equivalence certificate succeeded (ascending id) — classes in
// later level groups install those equivalences as solver facts.
type classResult struct {
	proven    []bool
	certified []uint32

	proved, droppedDiffer, droppedBudget int
}

// prove is the prove phase: discharge every candidate class and materialise
// the eligible member lists. Classes are the parallel work units — each is
// proven on a solver scoped to its transitive-fanin cone (see coneProver),
// so no solver state is shared between classes or workers — scheduled as a
// level wavefront: classes are grouped by the level of their deepest node
// and the groups run in ascending order with a barrier between them, each
// class installing the certified equivalences of all earlier groups
// (restricted to its cone) as hard clauses before solving. The wavefront
// order makes certification inductive, exactly like sequential fraiging: a
// class's fact sources — classes with at least two nodes inside its cone —
// consist entirely of strictly lower-level nodes (a cone's only
// maximum-level nodes are the class's own), so every fact a proof could use
// exists before the proof is attempted and a deep pair propagates to
// equality instead of being re-derived by search. Each group's fact base is
// frozen at its barrier (workers replace a class's certified slice, never
// mutate it), so every verdict is a pure function of (graph, proposal,
// options) — never of scheduling — and the assembled view is
// byte-identical for any Workers count. When simulation was exhaustive the
// signatures are truth tables and membership is already proven; only the
// eligibility filtering runs, in a single group.
func (v *View) prove(ctx context.Context, prop *proposal, o Options) error {
	classes := prop.classes
	if len(classes) == 0 {
		return ctx.Err()
	}
	g := v.G
	g.Level(0) // force the lazy level annotation once, before workers share g

	results := make([]classResult, len(classes))

	// Group class indices by max node level, groups in ascending level
	// order. Exhaustive views need no facts, hence a single group.
	var groups [][]int32
	if v.exhaustive {
		all := make([]int32, len(classes))
		for i := range all {
			all[i] = int32(i)
		}
		groups = [][]int32{all}
	} else {
		byLevel := make(map[int32][]int32)
		var levels []int32
		for i, class := range classes {
			maxLvl := int32(0)
			for _, n := range class {
				if l := g.Level(n); l > maxLvl {
					maxLvl = l
				}
			}
			if _, ok := byLevel[maxLvl]; !ok {
				levels = append(levels, maxLvl)
			}
			byLevel[maxLvl] = append(byLevel[maxLvl], int32(i))
		}
		sort.Slice(levels, func(a, b int) bool { return levels[a] < levels[b] })
		for _, l := range levels {
			groups = append(groups, byLevel[l])
		}
	}

	snap := make([][]uint32, len(classes))
	for _, group := range groups {
		err := v.forEachClass(ctx, len(group), o, func(k int, pr *coneProver) {
			i := group[k]
			results[i] = proveClass(g, classes[i], prop.pol, pr, snap, o)
		})
		if err != nil {
			return err
		}
		for _, i := range group {
			snap[i] = results[i].certified
		}
	}

	for i := range results {
		r := &results[i]
		v.classes++
		nodes, members := buildMembers(g, classes[i], prop.pol, r.proven, o)
		for j, n := range nodes {
			v.members[n] = members[j]
			v.memberRefs += len(members[j])
		}
		v.proved += r.proved
		v.droppedDiffer += r.droppedDiffer
		v.droppedBudget += r.droppedBudget
	}
	return nil
}

// forEachClass runs fn over n work items on a Workers-bounded pool, each
// worker holding one reusable coneProver (nil when simulation was
// exhaustive). Work distribution is an atomic counter: any assignment of
// items to workers yields the same results because fn's output for an item
// never depends on the other items' scheduling.
func (v *View) forEachClass(ctx context.Context, n int, o Options, fn func(i int, pr *coneProver)) error {
	workers := o.Workers
	if workers > n {
		workers = n
	}
	newProver := func() *coneProver {
		if v.exhaustive {
			return nil
		}
		return newConeProver(v.G)
	}
	if workers <= 1 {
		pr := newProver()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i, pr)
		}
		return nil
	}
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pr := newProver()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				fn(i, pr)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// proveClass discharges one equivalence class: unless simulation was
// exhaustive (pr == nil), every node must be SAT-certified on the class's
// cone-scoped solver. Before solving, the certified equivalences of every
// already-proven class with at least two nodes in this class's cone (snap,
// frozen at the level-group barrier) are installed — chained pairwise in
// ascending class then node order — as hard solver facts: true
// equivalences exclude no model, so both SAT and UNSAT answers stay sound,
// and a deep miter whose fanin classes are certified propagates to
// equality instead of re-deriving their equivalence by search.
// Certification itself is a chain: each node proves equivalence to its
// nearest previously-certified classmate (the highest certified id below
// it). Strash assigns nearby ids to nearby structure, so the chain miter
// between two adjacent variants of the same logic is small and the proof
// cheap, while certified pairs follow by transitivity — n == p and m == p
// imply n == m — so the full member lists need |class|-1 solver calls
// instead of one per (node, member) pair. A certificate refuted by a
// counterexample or out of budget is dropped for good (sound: the view
// just offers fewer alternatives).
func proveClass(g *aig.AIG, class []uint32, pol []bool, pr *coneProver, snap [][]uint32, o Options) classResult {
	var r classResult
	r.proven = make([]bool, len(class))
	r.proven[0] = true
	if pr == nil {
		for i := range r.proven {
			r.proven[i] = true
		}
		return r
	}
	pr.load(class)
	for _, certified := range snap {
		prev := int32(-1)
		for _, c := range certified {
			if pr.node2var[c] < 0 {
				continue
			}
			if prev >= 0 {
				pr.addFact(uint32(prev), c, pol[prev] != pol[c])
			}
			prev = int32(c)
		}
	}
	anchor := class[0]
	for i := 1; i < len(class); i++ {
		n := class[i]
		ok, exhausted := pr.equivalent(n, anchor, pol[n] != pol[anchor], o.ProofConflicts)
		r.proven[i] = ok
		switch {
		case ok:
			r.proved++
			anchor = n
		case exhausted:
			r.droppedBudget++
		default:
			r.droppedDiffer++
		}
	}
	r.certified = certifiedNodes(class, r.proven)
	return r
}

// certifiedNodes lists the class nodes whose certificate succeeded,
// ascending; classes with fewer than two carry no usable equivalence.
func certifiedNodes(class []uint32, proven []bool) []uint32 {
	var cs []uint32
	for i, n := range class {
		if proven[i] {
			cs = append(cs, n)
		}
	}
	if len(cs) < 2 {
		return nil
	}
	return cs
}

// buildMembers materialises the eligible member list of every certified AND
// node in one class: members must themselves be certified and have strictly
// smaller id and strictly smaller level than the node they enrich (see
// cuts.ChoiceSource). An uncertified node neither offers nor receives
// members, which is sound — the view just offers fewer alternatives.
func buildMembers(g *aig.AIG, class []uint32, pol []bool, proven []bool, o Options) (nodes []uint32, members [][]cuts.ChoiceMember) {
	for i, n := range class {
		if !proven[i] || !g.IsAnd(n) {
			continue
		}
		ln := g.Level(n)
		var ms []cuts.ChoiceMember
		for j, m := range class[:i] {
			if !proven[j] || g.Level(m) >= ln {
				continue
			}
			ms = append(ms, cuts.ChoiceMember{Node: m, Compl: pol[m] != pol[n]})
			if len(ms) >= o.MaxMembers {
				break
			}
		}
		if len(ms) > 0 {
			nodes = append(nodes, n)
			members = append(members, ms)
		}
	}
	return nodes, members
}

// exhaustiveWord returns the packed value word of PI i for exhaustive
// pattern word w: the first six PIs cycle inside a word with the canonical
// truth-table variable masks, higher PIs select on bits of w.
func exhaustiveWord(i, w int) uint64 {
	var varMask = [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	if i < 6 {
		return varMask[i]
	}
	if (w>>(i-6))&1 != 0 {
		return ^uint64(0)
	}
	return 0
}
