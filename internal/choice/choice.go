// Package choice builds choice views over AIGs: several structurally
// distinct but functionally equivalent variants of a subject graph (produced
// by internal/opt rewrites) are grafted into one combined AIG, functional
// equivalence classes are proposed by packed-pattern simulation signatures
// and proven by an embedded CDCL SAT check (see sat.go), and the result is
// exposed as a cuts.ChoiceSource so the enumerator can match the union of
// every class member's cuts — the "choice network" of ABC's &if -C and
// also's choice_lut_mapper.
//
// The combined graph shares the base graph's PIs (same count, order and
// names) and takes its POs from the base image, so a netlist mapped over the
// view verifies directly against the original graph. The base is grafted
// last: structural hashing dedupes shared logic, and any node of a variant
// that is structurally distinct from its base equivalent keeps a smaller id
// and (for balance-style variants) a no-greater level — which is what makes
// it eligible as a choice member under the enumerator's id/level rule.
package choice

import (
	"math/rand"
	"sort"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/opt"
)

// Options tunes view construction. The zero value picks the defaults.
type Options struct {
	// Variants is the number of seeded balance variants grafted in addition
	// to the deterministic Optimize variant. Default 2.
	Variants int
	// Seed drives the seeded rewrites and the random simulation patterns.
	// Default 1.
	Seed int64
	// MaxMembers caps the member list attached to any single node. Default 8.
	MaxMembers int
	// SimWords is the number of 64-pattern words per signature pass when the
	// graph has too many PIs for exhaustive simulation. Two independent
	// passes are always run. Default 16 (2048 random patterns).
	SimWords int
	// ProofConflicts is the per-call SAT conflict budget used to prove each
	// candidate member when simulation is not exhaustive. Members whose
	// proof does not finish inside the budget are dropped (sound: the view
	// just offers fewer alternatives). Default 4000.
	ProofConflicts int64
}

// exhaustiveMaxPIs bounds exhaustive signature simulation: up to 11 PIs the
// signature covers all 2^n patterns (<= 32 words) and class membership is a
// proof, not a probabilistic check.
const exhaustiveMaxPIs = 11

func (o *Options) fill() {
	if o.Variants <= 0 {
		o.Variants = 2
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxMembers <= 0 {
		o.MaxMembers = 8
	}
	if o.SimWords <= 0 {
		o.SimWords = 16
	}
	if o.ProofConflicts <= 0 {
		o.ProofConflicts = 4000
	}
}

// View is a built choice view. It implements cuts.ChoiceSource over G.
type View struct {
	// G is the combined graph to enumerate and map; its PIs and POs are the
	// base graph's (same order, names and semantics).
	G *aig.AIG
	// Base is the original subject graph the view was built from.
	Base *aig.AIG

	members    [][]cuts.ChoiceMember
	classes    int
	memberRefs int
	dropped    int
	exhaustive bool
}

// MembersOf returns node n's equivalence-class members, each satisfying
// id(m) < n, level(m) < level(n). It implements cuts.ChoiceSource.
func (v *View) MembersOf(n uint32) []cuts.ChoiceMember {
	if int(n) >= len(v.members) {
		return nil
	}
	return v.members[n]
}

// Classes returns the number of non-trivial equivalence classes found.
func (v *View) Classes() int { return v.classes }

// MemberRefs returns the total number of (node, member) enrichment edges.
func (v *View) MemberRefs() int { return v.memberRefs }

// DroppedMembers returns the number of candidate members discarded because
// their SAT proof failed or exceeded the conflict budget.
func (v *View) DroppedMembers() int { return v.dropped }

// Exhaustive reports whether class membership was proven by exhaustive
// simulation (true iff the base has <= 11 PIs).
func (v *View) Exhaustive() bool { return v.exhaustive }

// Build constructs a choice view of base: rewrite variants, graft them and
// the base into a combined strashed graph, and class the combined nodes by
// simulation signature. Construction is deterministic for a given (base,
// Options) pair, which keeps multi-round mapping byte-identical across
// workers and cache keys stable.
func Build(base *aig.AIG, o Options) *View {
	o.fill()

	swept := opt.Sweep(base)
	variants := make([]*aig.AIG, 0, 1+o.Variants)
	variants = append(variants, opt.Sweep(opt.Balance(swept)))
	for i := 0; i < o.Variants; i++ {
		variants = append(variants, opt.Sweep(opt.BalanceSeeded(swept, o.Seed+int64(i)*0x9e3779b9)))
	}

	comb := aig.New(base.Name)
	piLits := make([]aig.Lit, base.NumPIs())
	for i := range piLits {
		piLits[i] = comb.AddPI(base.PIName(i))
	}
	for _, v := range variants {
		graft(comb, piLits, v)
	}
	baseMap := graft(comb, piLits, base)
	mapLit := func(l aig.Lit) aig.Lit {
		if l.Node() == 0 {
			return l
		}
		return baseMap[l.Node()].NotIf(l.IsCompl())
	}
	for _, po := range base.POs() {
		comb.AddPO(po.Name, mapLit(po.Lit))
	}

	view := &View{G: comb, Base: base, members: make([][]cuts.ChoiceMember, comb.NumNodes())}
	view.buildClasses(o)
	return view
}

// graft copies the PO-reachable logic of v into comb, mapping v's PIs to
// piLits positionally, and returns v's old->new literal map. Structural
// hashing inside comb.And dedupes any logic already grafted.
func graft(comb *aig.AIG, piLits []aig.Lit, v *aig.AIG) []aig.Lit {
	old2new := make([]aig.Lit, v.NumNodes())
	for i := range old2new {
		old2new[i] = ^aig.Lit(0)
	}
	for i, pi := range v.PIs() {
		old2new[pi] = piLits[i]
	}

	needed := make([]bool, v.NumNodes())
	var stack []uint32
	push := func(n uint32) {
		if v.IsAnd(n) && !needed[n] {
			needed[n] = true
			stack = append(stack, n)
		}
	}
	for _, po := range v.POs() {
		push(po.Lit.Node())
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f0, f1 := v.Fanins(n)
		push(f0.Node())
		push(f1.Node())
	}

	mapLit := func(l aig.Lit) aig.Lit {
		if l.Node() == 0 {
			return l
		}
		return old2new[l.Node()].NotIf(l.IsCompl())
	}
	for n := uint32(1); n < uint32(v.NumNodes()); n++ {
		if needed[n] {
			f0, f1 := v.Fanins(n)
			old2new[n] = comb.And(mapLit(f0), mapLit(f1))
		}
	}
	return old2new
}

// buildClasses computes per-node simulation signatures of the combined
// graph, groups equal canonical signatures (polarity folded out) into
// classes, and materialises each AND node's eligible member list.
func (v *View) buildClasses(o Options) {
	g := v.G
	numNodes := g.NumNodes()
	if numNodes <= 1 {
		return
	}

	var words int
	exhaustive := g.NumPIs() <= exhaustiveMaxPIs
	if exhaustive {
		words = 1
		if g.NumPIs() > 6 {
			words = 1 << (g.NumPIs() - 6)
		}
	} else {
		// Two independent random passes, concatenated: a collision must
		// survive both to create a false class.
		words = 2 * o.SimWords
	}
	v.exhaustive = exhaustive

	sigs := make([]uint64, numNodes*words)
	rng := rand.New(rand.NewSource(o.Seed ^ 0x5deece66d))
	piVals := make([]uint64, g.NumPIs())
	for w := 0; w < words; w++ {
		for i := range piVals {
			if exhaustive {
				piVals[i] = exhaustiveWord(i, w)
			} else {
				piVals[i] = rng.Uint64()
			}
		}
		vals := g.SimulateNodes(piVals)
		for n := 0; n < numNodes; n++ {
			sigs[n*words+w] = vals[n]
		}
	}

	// Canonicalise polarity: a node whose pattern-0 value is 1 is stored
	// complemented, so n and NOT(n) land in the same class with pol
	// recording which phase each is in.
	pol := make([]bool, numNodes)
	mask := ^uint64(0)
	if exhaustive && g.NumPIs() < 6 {
		mask = (1 << (1 << g.NumPIs())) - 1
	}
	for n := 0; n < numNodes; n++ {
		s := sigs[n*words : (n+1)*words]
		if s[0]&1 != 0 {
			pol[n] = true
			for i := range s {
				s[i] = ^s[i]
			}
		}
		for i := range s {
			s[i] &= mask
		}
	}

	// Group by signature hash, confirming equality inside each bucket.
	type bucket struct{ nodes []uint32 }
	byHash := make(map[uint64]*bucket, numNodes)
	hashSig := func(s []uint64) uint64 {
		h := uint64(0xcbf29ce484222325)
		for _, w := range s {
			h = (h ^ w) * 0x100000001b3
		}
		return h
	}
	sigOf := func(n uint32) []uint64 { return sigs[int(n)*words : (int(n)+1)*words] }
	sigEq := func(a, b []uint64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	isConstSig := func(s []uint64) bool {
		for _, w := range s {
			if w != 0 {
				return false
			}
		}
		return true
	}
	for n := uint32(1); n < uint32(numNodes); n++ {
		if !g.IsAnd(n) && !g.IsPI(n) {
			continue
		}
		if isConstSig(sigOf(n)) {
			continue // constant-valued under the patterns: never a useful choice
		}
		h := hashSig(sigOf(n))
		b := byHash[h]
		if b == nil {
			b = &bucket{}
			byHash[h] = b
		}
		b.nodes = append(b.nodes, n)
	}

	var classes [][]uint32
	for _, b := range byHash {
		// Nodes arrive in ascending id (the fill loop runs in id order). A
		// hash bucket can mix several true classes on collision: peel them
		// off front to back.
		nodes := b.nodes
		for len(nodes) > 1 {
			ref := sigOf(nodes[0])
			var class, rest []uint32
			class = append(class, nodes[0])
			for _, m := range nodes[1:] {
				if sigEq(ref, sigOf(m)) {
					class = append(class, m)
				} else {
					rest = append(rest, m)
				}
			}
			if len(class) > 1 {
				classes = append(classes, class)
			}
			nodes = rest
		}
	}
	// Classes from distinct buckets are disjoint, but the map iteration
	// above is unordered and budget-limited SAT proofs below depend on the
	// solver's accumulated learned clauses — prove in a fixed order so the
	// view (and therefore mapping) stays deterministic.
	sort.Slice(classes, func(i, j int) bool { return classes[i][0] < classes[j][0] })

	// When simulation is exhaustive the signatures are truth tables and
	// class membership is already a proof. Otherwise a matching signature is
	// only a proposal — deep circuits have node pairs that agree on every
	// random pattern yet differ on a rare one — so every candidate member is
	// discharged by an incremental SAT proof before the mapper may use it.
	var pr *prover
	if !exhaustive {
		pr = newProver(g)
	}
	for _, class := range classes {
		v.addClass(class, pol, pr, o)
	}
}

// addClass records the eligible member list of every AND node in one
// equivalence class: members must have strictly smaller id and strictly
// smaller level than the node they enrich (see cuts.ChoiceSource), and —
// unless simulation was exhaustive — each (node, member) pair must be
// SAT-proven equivalent. Unproven candidates count into dropped.
func (v *View) addClass(class []uint32, pol []bool, pr *prover, o Options) {
	g := v.G
	v.classes++
	for i, n := range class {
		if !g.IsAnd(n) {
			continue
		}
		ln := g.Level(n)
		var ms []cuts.ChoiceMember
		for _, m := range class[:i] {
			if g.Level(m) >= ln {
				continue
			}
			compl := pol[m] != pol[n]
			if pr != nil && !pr.equivalent(n, m, compl, o.ProofConflicts) {
				v.dropped++
				continue
			}
			ms = append(ms, cuts.ChoiceMember{Node: m, Compl: compl})
			if len(ms) >= o.MaxMembers {
				break
			}
		}
		if len(ms) > 0 {
			v.members[n] = ms
			v.memberRefs += len(ms)
		}
	}
}

// exhaustiveWord returns the packed value word of PI i for exhaustive
// pattern word w: the first six PIs cycle inside a word with the canonical
// truth-table variable masks, higher PIs select on bits of w.
func exhaustiveWord(i, w int) uint64 {
	var varMask = [6]uint64{
		0xAAAAAAAAAAAAAAAA, 0xCCCCCCCCCCCCCCCC, 0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00, 0xFFFF0000FFFF0000, 0xFFFFFFFF00000000,
	}
	if i < 6 {
		return varMask[i]
	}
	if (w>>(i-6))&1 != 0 {
		return ^uint64(0)
	}
	return 0
}
