package embed

import (
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
)

// paperFigure2Graph rebuilds the AIG of the paper's Fig. 2 closely enough
// to check the embedding layout conventions.
func testGraph() (*aig.AIG, aig.Lit, aig.Lit, aig.Lit) {
	g := aig.New("fig2")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	x := g.And(a, b)       // level 1
	y := g.And(b.Not(), c) // level 1
	z := g.And(x.Not(), y) // level 2
	g.AddPO("f", z.Not())
	return g, x, y, z
}

func TestNodeEmbeddingLayout(t *testing.T) {
	g, x, y, z := testGraph()
	e := NewEmbedder(g)
	ez := e.Node(z.Node())
	// z: has inverted fanout (PO is complemented), level 2 (graph depth 2,
	// so normalised to 1), fanout 1 (log2(2)=1), reverse level 0; c1 = x
	// inverted at level 1 (0.5), fanout 1; c2 = y plain at level 1 (0.5),
	// fanout 1.
	want := [NodeDim]float64{1, 1, 1, 0, 1, 0.5, 1, 0, 0.5, 1}
	if ez != want {
		t.Fatalf("z embedding = %v, want %v", ez, want)
	}
	ex := e.Node(x.Node())
	// x: referenced complemented by z -> invOut 1, level 1 of depth 2
	// (0.5), reverse level 1 (0.5).
	if ex[0] != 1 || ex[1] != 0.5 || ex[3] != 0.5 {
		t.Fatalf("x embedding head = %v", ex[:4])
	}
	ey := e.Node(y.Node())
	// y: c1 = b complemented.
	if ey[4] != 1 {
		t.Fatalf("y child-1 inversion flag = %v", ey[4])
	}
}

func TestPIEmbeddingChildrenZero(t *testing.T) {
	g, _, _, _ := testGraph()
	e := NewEmbedder(g)
	pi := e.Node(g.PIs()[0])
	for i := 4; i < NodeDim; i++ {
		if pi[i] != 0 {
			t.Fatalf("PI embedding child features must be zero: %v", pi)
		}
	}
}

func TestEmbedderCaches(t *testing.T) {
	g, _, _, z := testGraph()
	e := NewEmbedder(g)
	a := e.Node(z.Node())
	b := e.Node(z.Node())
	if a != b {
		t.Fatalf("cache returned different embeddings")
	}
	if !e.done[z.Node()] {
		t.Fatalf("cache not populated")
	}
}

func TestCutEmbeddingShapeAndPadding(t *testing.T) {
	g, x, y, z := testGraph()
	e := NewEmbedder(g)
	enum := &cuts.Enumerator{G: g}
	c := enum.MakeCut(z.Node(), orderedPair(x.Node(), y.Node()))
	m := e.Cut(z.Node(), &c)
	if len(m) != Rows*Cols {
		t.Fatalf("embedding length = %d, want %d", len(m), Rows*Cols)
	}
	// Row 0 is the root embedding.
	root := e.Node(z.Node())
	for j := 0; j < Cols; j++ {
		if m[j] != root[j] {
			t.Fatalf("row 0 is not the root embedding")
		}
	}
	// Rows 1..2 are the two leaves, rows 3..5 are zero padding.
	for i := 3; i <= 5; i++ {
		for j := 0; j < Cols; j++ {
			if m[i*Cols+j] != 0 {
				t.Fatalf("padding row %d not zero", i)
			}
		}
	}
	// Rows 6..14 broadcast the nine (scale-adjusted) cut features: each row
	// must be constant and the raw-valued features must match Features.
	feats := c.Features(g, z.Node())
	for fi := 0; fi < 9; fi++ {
		for j := 1; j < Cols; j++ {
			if m[(6+fi)*Cols+j] != m[(6+fi)*Cols] {
				t.Fatalf("cut feature row %d not broadcast", fi)
			}
		}
	}
	// Raw features (rootInverted, numLeaves, volume) are unscaled.
	for _, fi := range []int{0, 1, 2} {
		if m[(6+fi)*Cols] != feats[fi] {
			t.Fatalf("raw cut feature %d altered: %f vs %f", fi, m[(6+fi)*Cols], feats[fi])
		}
	}
	// Level features are normalised by graph depth (2).
	if m[(6+3)*Cols] != feats[3]/2 || m[(6+4)*Cols] != feats[4]/2 {
		t.Fatalf("level features not depth-normalised")
	}
}

func orderedPair(a, b uint32) []uint32 {
	if a < b {
		return []uint32{a, b}
	}
	return []uint32{b, a}
}

func TestFeatureGroupsCoverAllPositionsOnce(t *testing.T) {
	groups := FeatureGroups()
	if len(groups) != 10+10+9 {
		t.Fatalf("got %d feature groups, want 29", len(groups))
	}
	seen := make(map[int]string)
	for _, g := range groups {
		if g.Name == "" || len(g.Positions) == 0 {
			t.Fatalf("malformed group %+v", g)
		}
		for _, p := range g.Positions {
			if p < 0 || p >= Rows*Cols {
				t.Fatalf("group %s position %d out of range", g.Name, p)
			}
			if prev, dup := seen[p]; dup {
				t.Fatalf("position %d claimed by both %s and %s", p, prev, g.Name)
			}
			seen[p] = g.Name
		}
	}
	if len(seen) != Rows*Cols {
		t.Fatalf("groups cover %d positions, want %d", len(seen), Rows*Cols)
	}
}

func TestCutEmbeddingOnRealCircuit(t *testing.T) {
	g := circuits.TrainRC16()
	e := NewEmbedder(g)
	enum := &cuts.Enumerator{G: g, Policy: cuts.DefaultPolicy{}}
	res := enum.Run()
	count := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		for i := range res.Sets[n] {
			m := e.Cut(n, &res.Sets[n][i])
			if len(m) != Rows*Cols {
				t.Fatalf("bad embedding size")
			}
			count++
		}
	}
	if count == 0 {
		t.Fatalf("no cut embeddings produced")
	}
}

// TestCutIntoReusedBuffer checks the allocation-free variant fully overwrites
// a dirty destination — including the zero rows for absent leaves — and
// rejects wrong-sized buffers.
func TestCutIntoReusedBuffer(t *testing.T) {
	g, x, y, z := testGraph()
	e := NewEmbedder(g)
	enum := &cuts.Enumerator{G: g}
	c := enum.MakeCut(z.Node(), orderedPair(x.Node(), y.Node()))
	want := e.Cut(z.Node(), &c)

	dst := make([]float64, Size)
	for i := range dst {
		dst[i] = 99.5 // poison: any skipped position shows through
	}
	e.CutInto(z.Node(), &c, dst)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("position %d: CutInto wrote %v, Cut wrote %v", i, dst[i], want[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("CutInto accepted a wrong-sized buffer")
		}
	}()
	e.CutInto(z.Node(), &c, make([]float64, Size-1))
}
