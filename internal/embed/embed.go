// Package embed computes the node and cut embeddings of paper §IV-A.
//
// A node embedding is a 10-feature vector (Table I): the node's
// inverted-fanout flag, level, fanout count and reverse level, followed by
// the inverted-edge flag, level and fanout of each of its two children.
//
// A cut embedding is a 15×10 matrix: row 0 is the root node embedding, rows
// 1–5 the (zero-padded) leaf node embeddings, and rows 6–14 hold the nine
// scalar cut features broadcast across all ten columns, so that a 15×1
// convolution filter sliding over columns always sees the full cut context.
// (The paper's Fig. 2 prose is internally inconsistent about the layout;
// this is the only arrangement consistent with i=15, j=10 and nine cut
// features — see DESIGN.md.)
package embed

import (
	"math"

	"slap/internal/aig"
	"slap/internal/cuts"
)

// Feature scaling: the paper trains on two 16-bit adders and infers on
// designs whose depth is an order of magnitude larger. Raw level features
// would then sit far outside the training distribution, so all level-type
// features are normalised by the graph depth (placing them in [0,1]
// regardless of design size) and fanout-type features are log2-compressed.
// This scale-awareness is a reproduction adaptation recorded in DESIGN.md;
// the feature *set* is exactly Table I + §IV-A.

func logFanout(fo int32) float64 { return math.Log2(1 + float64(fo)) }

// NodeDim is the width of a node embedding (Table I).
const NodeDim = 10

// Rows and Cols give the cut-embedding matrix shape.
const (
	Rows = 15
	Cols = NodeDim
)

// Size is the flat length of a cut embedding (Rows·Cols), the stride batch
// consumers use when packing many embeddings into one buffer.
const Size = Rows * Cols

// NodeFeatureNames labels the node embedding entries.
var NodeFeatureNames = [NodeDim]string{
	"invOut", "level", "fanout", "revLevel",
	"c1.inv", "c1.level", "c1.fanout",
	"c2.inv", "c2.level", "c2.fanout",
}

// Embedder computes and caches node embeddings for one AIG (the paper's
// hash table keyed by node id). Lazy lookups are not safe for concurrent
// use; call PrecomputeAll first to share an Embedder across goroutines.
type Embedder struct {
	G     *aig.AIG
	depth float64
	cache [][NodeDim]float64
	done  []bool
}

// NewEmbedder returns an Embedder for g.
func NewEmbedder(g *aig.AIG) *Embedder {
	d := float64(g.MaxLevel())
	if d < 1 {
		d = 1
	}
	return &Embedder{
		G:     g,
		depth: d,
		cache: make([][NodeDim]float64, g.NumNodes()),
		done:  make([]bool, g.NumNodes()),
	}
}

// PrecomputeAll fills the cache for every node, after which concurrent
// reads through Node and Cut are safe.
func (e *Embedder) PrecomputeAll() {
	for n := uint32(0); n < uint32(e.G.NumNodes()); n++ {
		e.Node(n)
	}
}

// Node returns the 10-feature embedding of node n, cached after the first
// computation.
func (e *Embedder) Node(n uint32) [NodeDim]float64 {
	if e.done[n] {
		return e.cache[n]
	}
	g := e.G
	var f [NodeDim]float64
	if g.HasInvertedFanout(n) {
		f[0] = 1
	}
	f[1] = float64(g.Level(n)) / e.depth
	f[2] = logFanout(g.Fanout(n))
	f[3] = float64(g.ReverseLevel(n)) / e.depth
	if g.IsAnd(n) {
		c1, c2 := g.Fanins(n)
		if c1.IsCompl() {
			f[4] = 1
		}
		f[5] = float64(g.Level(c1.Node())) / e.depth
		f[6] = logFanout(g.Fanout(c1.Node()))
		if c2.IsCompl() {
			f[7] = 1
		}
		f[8] = float64(g.Level(c2.Node())) / e.depth
		f[9] = logFanout(g.Fanout(c2.Node()))
	}
	e.cache[n] = f
	e.done[n] = true
	return f
}

// Cut builds the 15×10 embedding matrix of a cut rooted at root, returned
// as a flat row-major slice of length Size.
func (e *Embedder) Cut(root uint32, c *cuts.Cut) []float64 {
	m := make([]float64, Size)
	e.CutInto(root, c, m)
	return m
}

// CutInto writes the cut embedding into dst, which must have length Size.
// Every position is overwritten, so dst may be a dirty reused buffer — batch
// consumers pack one node's cuts into a single slab with stride Size instead
// of allocating per cut.
func (e *Embedder) CutInto(root uint32, c *cuts.Cut, dst []float64) {
	if len(dst) != Size {
		panic("embed: CutInto dst has wrong length")
	}
	re := e.Node(root)
	copy(dst[0:Cols], re[:])
	for i := 0; i < cuts.K; i++ {
		row := dst[(1+i)*Cols : (2+i)*Cols]
		if i < len(c.Leaves) {
			le := e.Node(c.Leaves[i])
			copy(row, le[:])
		} else {
			// Missing leaves are zero-padded, dissolving the effect of the
			// nonexistent connections (paper §IV-A).
			for j := range row {
				row[j] = 0
			}
		}
	}
	feats := c.Features(e.G, root)
	// Scale-awareness (see the package comment): level features relative to
	// the graph depth, fanout features log-compressed.
	feats[3] /= e.depth
	feats[4] /= e.depth
	feats[5] /= float64(cuts.K) * e.depth
	feats[6] = math.Log2(1 + feats[6])
	feats[7] = math.Log2(1 + feats[7])
	feats[8] = math.Log2(1 + feats[8])
	for fi := 0; fi < len(feats); fi++ {
		row := (6 + fi) * Cols
		for j := 0; j < Cols; j++ {
			dst[row+j] = feats[fi]
		}
	}
}

// FeatureGroup identifies one permutable feature of the cut embedding for
// the Fig. 5 permutation-importance experiment: a set of matrix positions
// that are permuted together across dataset samples.
type FeatureGroup struct {
	// Name labels the feature in reports.
	Name string
	// Positions are flat indices into the Rows*Cols embedding.
	Positions []int
}

// FeatureGroups enumerates the permutable features: the ten root-embedding
// entries, the ten leaf-embedding entries (grouped across the five leaf
// rows), and the nine broadcast cut features.
func FeatureGroups() []FeatureGroup {
	var groups []FeatureGroup
	for j := 0; j < NodeDim; j++ {
		groups = append(groups, FeatureGroup{
			Name:      "root." + NodeFeatureNames[j],
			Positions: []int{j},
		})
	}
	for j := 0; j < NodeDim; j++ {
		pos := make([]int, 0, cuts.K)
		for i := 0; i < cuts.K; i++ {
			pos = append(pos, (1+i)*Cols+j)
		}
		groups = append(groups, FeatureGroup{
			Name:      "leaves." + NodeFeatureNames[j],
			Positions: pos,
		})
	}
	for fi, name := range cuts.FeatureNames {
		pos := make([]int, 0, Cols)
		for j := 0; j < Cols; j++ {
			pos = append(pos, (6+fi)*Cols+j)
		}
		groups = append(groups, FeatureGroup{Name: name, Positions: pos})
	}
	return groups
}
