// Package tt implements truth tables over up to five variables, together
// with the permutation/negation algebra and NPN canonicalisation needed for
// Boolean matching during technology mapping.
//
// A truth table is stored as a 32-bit word: bit m holds the function value
// for the input minterm m, where bit i of m is the value of variable i.
// Functions of fewer than five variables are stored in their natural
// "replicated" form (the word is independent of the unused variables), so a
// two-input AND and its five-variable extension share the same word.
package tt

import "math/bits"

// MaxVars is the largest supported cut/gate input count.
const MaxVars = 5

// NumMinterms is the number of rows of a five-variable truth table.
const NumMinterms = 1 << MaxVars

// TT is a truth table over up to five variables.
type TT uint32

// Const0 and Const1 are the two constant functions.
const (
	Const0 TT = 0
	Const1 TT = 0xFFFFFFFF
)

// varMasks[i] has bit m set iff bit i of minterm m is set.
var varMasks = [MaxVars]TT{
	0xAAAAAAAA,
	0xCCCCCCCC,
	0xF0F0F0F0,
	0xFF00FF00,
	0xFFFF0000,
}

// Var returns the projection function of variable i.
func Var(i int) TT {
	return varMasks[i]
}

// Not returns the complement of t.
func (t TT) Not() TT { return ^t }

// And returns the conjunction of t and u.
func (t TT) And(u TT) TT { return t & u }

// Or returns the disjunction of t and u.
func (t TT) Or(u TT) TT { return t | u }

// Xor returns the exclusive-or of t and u.
func (t TT) Xor(u TT) TT { return t ^ u }

// Eval returns the value of t on minterm m.
func (t TT) Eval(m int) bool { return t>>(uint(m)&31)&1 == 1 }

// Ones returns the number of satisfying minterms of t.
func (t TT) Ones() int { return bits.OnesCount32(uint32(t)) }

// DependsOn reports whether t depends on variable i, that is, whether the
// positive and negative cofactors with respect to i differ.
func (t TT) DependsOn(i int) bool {
	m := varMasks[i]
	shift := uint(1) << uint(i)
	pos := t & m
	neg := (t &^ m) << shift & TT(m)
	return pos != neg
}

// Support returns a bitmask of the variables t depends on.
func (t TT) Support() uint8 {
	var s uint8
	for i := 0; i < MaxVars; i++ {
		if t.DependsOn(i) {
			s |= 1 << uint(i)
		}
	}
	return s
}

// SupportSize returns the number of variables t depends on.
func (t TT) SupportSize() int {
	return bits.OnesCount8(t.Support())
}

// FlipVar returns t with variable i complemented.
func (t TT) FlipVar(i int) TT {
	m := varMasks[i]
	shift := uint(1) << uint(i)
	return (t&m)>>shift | (t&^m)<<shift
}

// Cofactor returns the cofactor of t with respect to variable i set to v.
// The result is independent of variable i.
func (t TT) Cofactor(i int, v bool) TT {
	m := varMasks[i]
	shift := uint(1) << uint(i)
	if v {
		hi := t & m
		return hi | hi>>shift
	}
	lo := t &^ m
	return lo | lo<<shift
}

// Permute returns the truth table obtained by renaming variables according
// to perm: variable i of t becomes variable perm[i] of the result. perm must
// be a permutation of 0..4.
func (t TT) Permute(perm [MaxVars]uint8) TT {
	var r TT
	for m := 0; m < NumMinterms; m++ {
		if t>>uint(m)&1 == 0 {
			continue
		}
		var mm int
		for i := 0; i < MaxVars; i++ {
			if m>>uint(i)&1 == 1 {
				mm |= 1 << uint(perm[i])
			}
		}
		r |= 1 << uint(mm)
	}
	return r
}

// Transform is an NPN transform: an input permutation, an input negation
// mask and an output negation flag.
//
// Apply(f, T) is the function g with g(x0..x4) = f(y0..y4) ^ out, where
// input i of f is driven by y_i = x_{Perm[i]} ^ bit(Phase, i). In circuit
// terms: pin i of f connects to variable Perm[i] of g, inverted when bit i
// of Phase is set, and the output is inverted when Out is true.
type Transform struct {
	Perm  [MaxVars]uint8
	Phase uint8
	Out   bool
}

// Identity is the neutral transform.
var Identity = Transform{Perm: [MaxVars]uint8{0, 1, 2, 3, 4}}

// Apply applies the transform to f as described on Transform.
func Apply(f TT, t Transform) TT {
	var r TT
	for m := 0; m < NumMinterms; m++ {
		// Build the minterm seen by f when the result's inputs are m.
		var fm int
		for i := 0; i < MaxVars; i++ {
			v := m >> uint(t.Perm[i]) & 1
			v ^= int(t.Phase >> uint(i) & 1)
			fm |= v << uint(i)
		}
		v := int(f >> uint(fm) & 1)
		if t.Out {
			v ^= 1
		}
		r |= TT(v) << uint(m)
	}
	return r
}

// Compose returns the transform equivalent to applying a first and then b:
// Apply(Apply(f, a), b) == Apply(f, Compose(a, b)).
func Compose(a, b Transform) Transform {
	var c Transform
	for i := 0; i < MaxVars; i++ {
		// Input i of f reads variable a.Perm[i] of g=Apply(f,a); that
		// variable of g reads variable b.Perm[a.Perm[i]] of the result.
		c.Perm[i] = b.Perm[a.Perm[i]]
		ph := a.Phase>>uint(i)&1 ^ b.Phase>>uint(a.Perm[i])&1
		c.Phase |= ph << uint(i)
	}
	c.Out = a.Out != b.Out
	return c
}

// Invert returns the transform that undoes t:
// Apply(Apply(f, t), Invert(t)) == f.
func Invert(t Transform) Transform {
	var inv Transform
	for i := 0; i < MaxVars; i++ {
		inv.Perm[t.Perm[i]] = uint8(i)
	}
	for i := 0; i < MaxVars; i++ {
		ph := t.Phase >> uint(inv.Perm[i]) & 1
		inv.Phase |= ph << uint(i)
	}
	inv.Out = t.Out
	return inv
}

// perms5 holds all 120 permutations of five elements.
var perms5 = genPerms()

func genPerms() [][MaxVars]uint8 {
	var out [][MaxVars]uint8
	var rec func(cur []uint8, used uint8)
	rec = func(cur []uint8, used uint8) {
		if len(cur) == MaxVars {
			var p [MaxVars]uint8
			copy(p[:], cur)
			out = append(out, p)
			return
		}
		for v := uint8(0); v < MaxVars; v++ {
			if used&(1<<v) == 0 {
				rec(append(cur, v), used|1<<v)
			}
		}
	}
	rec(make([]uint8, 0, MaxVars), 0)
	return out
}

// Canon holds the NPN-canonical form of a function together with the
// transform that produced it: Canon.F == Apply(f, Canon.T).
type Canon struct {
	F TT
	T Transform
}

// permTables[p][m] is the source minterm of f that lands at result minterm m
// when permutation perms5[p] is applied with zero phase.
var permTables = genPermTables()

func genPermTables() [][NumMinterms]uint8 {
	tables := make([][NumMinterms]uint8, len(perms5))
	for pi, p := range perms5 {
		for m := 0; m < NumMinterms; m++ {
			var fm int
			for i := 0; i < MaxVars; i++ {
				fm |= (m >> uint(p[i]) & 1) << uint(i)
			}
			tables[pi][m] = uint8(fm)
		}
	}
	return tables
}

func applyPermTable(f TT, tbl *[NumMinterms]uint8) TT {
	var r TT
	for m := 0; m < NumMinterms; m++ {
		r |= (f >> uint(tbl[m]) & 1) << uint(m)
	}
	return r
}

// Canonicalize computes the NPN-canonical representative of f by exhaustive
// search over all input permutations, input negations and output negations,
// choosing the numerically smallest truth table. The returned transform t
// satisfies Apply(f, t) == canonical word.
//
// The search walks phases in Gray-code order so each step costs one
// variable flip instead of a full transform application.
func Canonicalize(f TT) Canon {
	best := Canon{F: Const1, T: Identity}
	first := true
	consider := func(g TT, p [MaxVars]uint8, phase uint8, out bool) {
		if first || g < best.F {
			best = Canon{F: g, T: Transform{Perm: p, Phase: phase, Out: out}}
			first = false
		}
	}
	for pi, p := range perms5 {
		g := applyPermTable(f, &permTables[pi])
		phase := uint8(0)
		for i := 0; ; i++ {
			consider(g, p, phase, false)
			consider(g.Not(), p, phase, true)
			if i == NumMinterms-1 {
				break
			}
			// Gray-code step: flip the variable whose bit changes between
			// gray(i) and gray(i+1).
			gray := uint8(i ^ (i >> 1))
			nextGray := uint8((i + 1) ^ ((i + 1) >> 1))
			bit := gray ^ nextGray
			v := 0
			for bit>>1 != 0 {
				bit >>= 1
				v++
			}
			// Phase bit v is a negation on PIN v; on the permuted function
			// that corresponds to flipping variable p[v].
			g = g.FlipVar(int(p[v]))
			phase = nextGray
		}
	}
	return best
}

// Canonicalizer memoises Canonicalize. It is not safe for concurrent use.
type Canonicalizer struct {
	cache map[TT]Canon
}

// NewCanonicalizer returns an empty memoising canonicaliser.
func NewCanonicalizer() *Canonicalizer {
	return &Canonicalizer{cache: make(map[TT]Canon)}
}

// Canon returns the memoised NPN-canonical form of f.
func (c *Canonicalizer) Canon(f TT) Canon {
	if r, ok := c.cache[f]; ok {
		return r
	}
	r := Canonicalize(f)
	c.cache[f] = r
	return r
}

// Size returns the number of distinct functions canonicalised so far.
func (c *Canonicalizer) Size() int { return len(c.cache) }
