package tt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVarProjection(t *testing.T) {
	for i := 0; i < MaxVars; i++ {
		v := Var(i)
		for m := 0; m < NumMinterms; m++ {
			want := m>>uint(i)&1 == 1
			if v.Eval(m) != want {
				t.Fatalf("Var(%d).Eval(%d) = %v, want %v", i, m, v.Eval(m), want)
			}
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a, b := Var(0), Var(1)
	and := a.And(b)
	or := a.Or(b)
	xor := a.Xor(b)
	for m := 0; m < NumMinterms; m++ {
		x, y := a.Eval(m), b.Eval(m)
		if and.Eval(m) != (x && y) {
			t.Errorf("AND wrong at minterm %d", m)
		}
		if or.Eval(m) != (x || y) {
			t.Errorf("OR wrong at minterm %d", m)
		}
		if xor.Eval(m) != (x != y) {
			t.Errorf("XOR wrong at minterm %d", m)
		}
	}
	if Const0.Not() != Const1 {
		t.Errorf("NOT of Const0 should be Const1")
	}
}

func TestDependsOn(t *testing.T) {
	f := Var(0).And(Var(2))
	wants := [MaxVars]bool{true, false, true, false, false}
	for i, want := range wants {
		if f.DependsOn(i) != want {
			t.Errorf("DependsOn(%d) = %v, want %v", i, f.DependsOn(i), want)
		}
	}
	if Const1.Support() != 0 {
		t.Errorf("constant function should have empty support")
	}
	if got := f.Support(); got != 0b00101 {
		t.Errorf("Support = %05b, want 00101", got)
	}
	if f.SupportSize() != 2 {
		t.Errorf("SupportSize = %d, want 2", f.SupportSize())
	}
}

func TestFlipVar(t *testing.T) {
	f := Var(1)
	if f.FlipVar(1) != f.Not() {
		t.Errorf("flipping the only support variable of a projection should complement it")
	}
	if f.FlipVar(0) != f {
		t.Errorf("flipping a non-support variable should not change the function")
	}
	err := quick.Check(func(w uint32, i8 uint8) bool {
		f := TT(w)
		i := int(i8) % MaxVars
		return f.FlipVar(i).FlipVar(i) == f
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestCofactor(t *testing.T) {
	err := quick.Check(func(w uint32, i8 uint8) bool {
		f := TT(w)
		i := int(i8) % MaxVars
		pos := f.Cofactor(i, true)
		neg := f.Cofactor(i, false)
		if pos.DependsOn(i) || neg.DependsOn(i) {
			return false
		}
		// Shannon expansion must rebuild f.
		rebuilt := Var(i).And(pos).Or(Var(i).Not().And(neg))
		return rebuilt == f
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	err := quick.Check(func(w uint32, pidx uint16) bool {
		f := TT(w)
		p := perms5[int(pidx)%len(perms5)]
		var inv [MaxVars]uint8
		for i, v := range p {
			inv[v] = uint8(i)
		}
		return f.Permute(p).Permute(inv) == f
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestApplyIdentity(t *testing.T) {
	err := quick.Check(func(w uint32) bool {
		f := TT(w)
		return Apply(f, Identity) == f
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestApplySemantics(t *testing.T) {
	// f = x0 AND x1. Transform connecting pin 0 to variable 3 and pin 1 to
	// variable 2 with pin 1 inverted: g(x) = x3 AND NOT x2.
	f := Var(0).And(Var(1))
	tr := Transform{Perm: [MaxVars]uint8{3, 2, 0, 1, 4}, Phase: 0b00010}
	g := Apply(f, tr)
	want := Var(3).And(Var(2).Not())
	if g != want {
		t.Fatalf("Apply semantics wrong: got %08x want %08x", g, want)
	}
}

func TestComposeMatchesSequentialApply(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		f := TT(rng.Uint32())
		a := randTransform(rng)
		b := randTransform(rng)
		seq := Apply(Apply(f, a), b)
		one := Apply(f, Compose(a, b))
		if seq != one {
			t.Fatalf("Compose mismatch: f=%08x a=%+v b=%+v", f, a, b)
		}
	}
}

func TestInvertUndoesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		f := TT(rng.Uint32())
		tr := randTransform(rng)
		if Apply(Apply(f, tr), Invert(tr)) != f {
			t.Fatalf("Invert failed for f=%08x t=%+v", f, tr)
		}
	}
}

func randTransform(rng *rand.Rand) Transform {
	return Transform{
		Perm:  perms5[rng.Intn(len(perms5))],
		Phase: uint8(rng.Intn(1 << MaxVars)),
		Out:   rng.Intn(2) == 1,
	}
}

func TestCanonicalizeInvariance(t *testing.T) {
	// NPN-equivalent functions must share a canonical word, and the stored
	// transform must reproduce it.
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 50; iter++ {
		f := TT(rng.Uint32())
		cf := Canonicalize(f)
		if Apply(f, cf.T) != cf.F {
			t.Fatalf("canonical transform does not reproduce canonical word for %08x", f)
		}
		g := Apply(f, randTransform(rng))
		cg := Canonicalize(g)
		if cf.F != cg.F {
			t.Fatalf("NPN-equivalent functions canonicalise differently: %08x vs %08x", cf.F, cg.F)
		}
	}
}

func TestCanonicalizeKnownClasses(t *testing.T) {
	// AND2 and NOR2 are in the same NPN class; XOR2 is in a different one.
	and2 := Var(0).And(Var(1))
	nor2 := Var(0).Or(Var(1)).Not()
	xor2 := Var(0).Xor(Var(1))
	if Canonicalize(and2).F != Canonicalize(nor2).F {
		t.Errorf("AND2 and NOR2 must share an NPN class")
	}
	if Canonicalize(and2).F == Canonicalize(xor2).F {
		t.Errorf("AND2 and XOR2 must not share an NPN class")
	}
}

func TestCanonicalizerMemo(t *testing.T) {
	c := NewCanonicalizer()
	f := Var(0).And(Var(1)).Or(Var(2))
	r1 := c.Canon(f)
	r2 := c.Canon(f)
	if r1 != r2 {
		t.Errorf("memoised results differ")
	}
	if c.Size() != 1 {
		t.Errorf("cache size = %d, want 1", c.Size())
	}
	if r1 != Canonicalize(f) {
		t.Errorf("memoised result differs from direct computation")
	}
}

func TestOnes(t *testing.T) {
	if Const0.Ones() != 0 || Const1.Ones() != 32 {
		t.Errorf("Ones of constants wrong")
	}
	if Var(4).Ones() != 16 {
		t.Errorf("projection must have 16 ones, got %d", Var(4).Ones())
	}
}

func BenchmarkCanonicalize(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	fs := make([]TT, 64)
	for i := range fs {
		fs[i] = TT(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Canonicalize(fs[i%len(fs)])
	}
}

func BenchmarkApply(b *testing.B) {
	f := Var(0).And(Var(1)).Xor(Var(2))
	tr := Transform{Perm: [MaxVars]uint8{4, 3, 2, 1, 0}, Phase: 0b10101, Out: true}
	for i := 0; i < b.N; i++ {
		f = Apply(f, tr)
	}
	_ = f
}
