// Package dataset generates labelled training data for the SLAP cut
// classifier following paper §IV-B: many random-shuffle mappings of the
// training circuits are produced, each mapping's delay is measured by STA,
// and every cut used in the final cover becomes one datapoint whose label
// is the mapping's delay decile (class 0 = fastest mappings, class 9 =
// slowest).
//
// The sweep is shard-granular: GenerateOutcomes runs any contiguous range
// of one circuit's mappings and Assemble reassembles per-circuit outcome
// slices into the final dataset. Generate is the single-process
// composition of the two; internal/genjob composes them into a
// fault-tolerant, resumable multi-shard runner. Because labelling
// normalises over a circuit's full QoR distribution, the split is
// deterministic: the same master seed always yields the same dataset no
// matter how the sweep was sharded.
package dataset

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/embed"
	"slap/internal/library"
	"slap/internal/mapper"
)

// Dataset is a labelled set of cut embeddings.
type Dataset struct {
	// X holds flat 15×10 cut embeddings.
	X [][]float64
	// Y holds QoR class labels in [0, Classes).
	Y []int
	// Classes is the number of QoR classes (10 in the paper).
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// ClassHistogram counts samples per class.
func (d *Dataset) ClassHistogram() []int {
	h := make([]int, d.Classes)
	for _, y := range d.Y {
		h[y]++
	}
	return h
}

// Save serialises the dataset with encoding/gob.
func (d *Dataset) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(d)
}

// Load deserialises a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := gob.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	if len(d.X) != len(d.Y) {
		return nil, fmt.Errorf("dataset: %d inputs but %d labels", len(d.X), len(d.Y))
	}
	for _, y := range d.Y {
		if y < 0 || y >= d.Classes {
			return nil, fmt.Errorf("dataset: label %d out of range [0,%d)", y, d.Classes)
		}
	}
	return &d, nil
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := d.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: open %s: %w", path, err)
	}
	defer f.Close()
	d, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("dataset: load %s: %w", path, err)
	}
	return d, nil
}

// Balanced returns a class-balanced resampling of the dataset: every class
// with at least one sample is up-sampled (with replacement) to the size of
// the largest class. Training on delay-decile labels is heavily
// prior-dominated otherwise — see DESIGN.md.
func (d *Dataset) Balanced(seed int64) *Dataset {
	byClass := make([][]int, d.Classes)
	maxN := 0
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
		if len(byClass[y]) > maxN {
			maxN = len(byClass[y])
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Classes: d.Classes}
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		for k := 0; k < maxN; k++ {
			i := idx[k%len(idx)]
			if k >= len(idx) {
				i = idx[rng.Intn(len(idx))]
			}
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
	}
	rng.Shuffle(out.Len(), func(i, j int) {
		out.X[i], out.X[j] = out.X[j], out.X[i]
		out.Y[i], out.Y[j] = out.Y[j], out.Y[i]
	})
	return out
}

// Split partitions the dataset into train/validation subsets after a
// seeded shuffle. frac is the training fraction (e.g. 0.8); it is clamped
// to [0, 1], so frac 0 yields an empty training set and frac 1 an empty
// validation set.
func (d *Dataset) Split(frac float64, seed int64) (train, val *Dataset) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	cut := int(frac * float64(len(order)))
	mk := func(idx []int) *Dataset {
		out := &Dataset{Classes: d.Classes}
		for _, i := range idx {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
		return out
	}
	return mk(order[:cut]), mk(order[cut:])
}

// Config drives training-data generation.
type Config struct {
	// Circuits are the training designs (the paper uses two 16-bit adder
	// architectures).
	Circuits []*aig.AIG
	// Library is the target cell library.
	Library *library.Library
	// MapsPerCircuit is the number of random-shuffle mappings per circuit.
	MapsPerCircuit int
	// Classes is the number of QoR classes (0 = 10).
	Classes int
	// Seed drives the shuffle policies.
	Seed int64
	// ShuffleLimit is the per-node cut budget of the shuffle policy
	// (0 = DefaultShuffleLimit). QoR diversity under shuffling requires the
	// budget to actually truncate: the paper's 250-cut ABC budget binds on
	// its full-size designs, but on the 16-bit training adders every list
	// fits, so a tighter budget is needed to reproduce the same dispersion
	// mechanism (see DESIGN.md).
	ShuffleLimit int
	// Workers bounds mapping parallelism (0 = GOMAXPROCS).
	Workers int
	// Metric selects the label metric (default MetricDelay).
	Metric Metric
	// MaxFailures is the number of failed mappings tolerated across the
	// whole sweep. Failed mappings become Skipped outcomes: they contribute
	// no samples and are excluded from label normalisation. Assemble aborts
	// once more than MaxFailures mappings were skipped, so the default of 0
	// preserves the historical fail-on-first-error behaviour.
	MaxFailures int
}

// DefaultShuffleLimit is the per-node cut budget used for random-shuffle
// data generation when Config.ShuffleLimit is zero.
const DefaultShuffleLimit = 16

// Metric selects which QoR figure labels the training cuts. The paper
// optimises delay; §IV-B notes that area or ADP "could equally be used".
type Metric int

// Supported labelling metrics.
const (
	MetricDelay Metric = iota
	MetricArea
	MetricADP
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricArea:
		return "area"
	case MetricADP:
		return "adp"
	default:
		return "delay"
	}
}

// MapOutcome is one random mapping's harvest: the QoR figure that will
// label its cuts and the embeddings of the cuts used in its cover. A
// Skipped outcome records a tolerated mapping failure (Err keeps the
// message); it carries no samples and does not enter label normalisation.
type MapOutcome struct {
	QoR     float64
	Samples [][]float64
	Skipped bool
	Err     string
}

// Normalize validates the config and returns a copy with every zero-value
// default filled in. Shard runners normalize before planning so that a
// resumed run agrees with the original about Classes and ShuffleLimit no
// matter which were spelled explicitly.
func (cfg Config) Normalize() (Config, error) { return cfg.withDefaults() }

// withDefaults validates cfg and fills the zero-value defaults in place.
func (cfg Config) withDefaults() (Config, error) {
	if len(cfg.Circuits) == 0 {
		return cfg, fmt.Errorf("dataset: no training circuits")
	}
	if cfg.Library == nil {
		return cfg, fmt.Errorf("dataset: library is required")
	}
	if cfg.MapsPerCircuit <= 0 {
		return cfg, fmt.Errorf("dataset: MapsPerCircuit must be positive")
	}
	if cfg.Classes == 0 {
		cfg.Classes = 10
	}
	if cfg.Classes < 0 {
		return cfg, fmt.Errorf("dataset: Classes must be positive")
	}
	if cfg.ShuffleLimit == 0 {
		cfg.ShuffleLimit = DefaultShuffleLimit
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return cfg, nil
}

// circuitSeed derives the per-circuit seed base from the master seed. The
// per-mapping policy seed is circuitSeed + map index, which is what makes
// any contiguous mapping range reproducible in isolation.
func circuitSeed(master int64, circuit int) int64 {
	return master + int64(circuit)*1_000_003
}

// Generate runs the random mappings and returns the labelled dataset.
func Generate(cfg Config) (*Dataset, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	all := make([][]MapOutcome, len(cfg.Circuits))
	for ci, g := range cfg.Circuits {
		outcomes, err := GenerateOutcomes(context.Background(), cfg, ci, 0, cfg.MapsPerCircuit)
		if err != nil {
			return nil, fmt.Errorf("dataset: circuit %s: %w", g.Name, err)
		}
		all[ci] = outcomes
	}
	return Assemble(cfg, all)
}

// GenerateOutcomes runs the mappings [start, end) of one circuit's
// random-shuffle sweep and returns their outcomes in map-index order. A
// mapping failure does not abort the range: it is recorded as a Skipped
// outcome and accounted against Config.MaxFailures later, at Assemble.
// The result depends only on (cfg.Seed, circuit, map index), never on
// start/end or Workers, so a sweep may be cut into shards freely.
func GenerateOutcomes(ctx context.Context, cfg Config, circuit, start, end int) ([]MapOutcome, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if circuit < 0 || circuit >= len(cfg.Circuits) {
		return nil, fmt.Errorf("dataset: circuit index %d out of range [0,%d)", circuit, len(cfg.Circuits))
	}
	if start < 0 || end > cfg.MapsPerCircuit || start >= end {
		return nil, fmt.Errorf("dataset: map range [%d,%d) invalid for %d maps", start, end, cfg.MapsPerCircuit)
	}
	g := cfg.Circuits[circuit]
	seed := circuitSeed(cfg.Seed, circuit)

	// Every mapping in the sweep re-maps the same graph, so a shared arena
	// pool lets all but the first few checkouts reuse cut storage outright;
	// one spare arena keeps a full complement available while a finished
	// mapping's arena is in flight back to the pool.
	pool := cuts.NewPool(cfg.Workers + 1)
	outcomes := make([]MapOutcome, end-start)
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i := start; i < end; i++ {
		if err := ctx.Err(); err != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			outcomes[i-start] = runOneMap(g, cfg, pool, seed+int64(i))
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return outcomes, nil
}

// runOneMap executes one random-shuffle mapping and harvests its cuts.
func runOneMap(g *aig.AIG, cfg Config, pool *cuts.Pool, policySeed int64) MapOutcome {
	policy := &cuts.ShufflePolicy{
		Rng:   rand.New(rand.NewSource(policySeed)),
		Limit: cfg.ShuffleLimit,
	}
	// Workers: 1 — the mappings themselves already saturate the worker
	// pool, and the shuffle policy's RNG sequence requires sequential
	// enumeration anyway. The streaming pipeline is byte-identical to
	// two-phase Map, so labels depend only on (seed, circuit, index) as
	// before.
	res, err := mapper.MapStream(g, mapper.Options{Library: cfg.Library, Policy: policy, Workers: 1, Pool: pool})
	if err != nil {
		return MapOutcome{Skipped: true, Err: err.Error()}
	}
	emb := embed.NewEmbedder(g)
	samples := make([][]float64, 0, len(res.Cover))
	for _, ce := range res.Cover {
		samples = append(samples, emb.Cut(ce.Node, &ce.Cut))
	}
	var qor float64
	switch cfg.Metric {
	case MetricArea:
		qor = res.Area
	case MetricADP:
		qor = res.ADP()
	default:
		qor = res.Delay
	}
	return MapOutcome{QoR: qor, Samples: samples}
}

// Assemble labels per-circuit outcome slices and concatenates them into
// the final dataset, producing exactly what a single-process Generate
// with the same Config would have. outcomes must hold one complete
// MapsPerCircuit-long slice per circuit, in circuit order: labelling
// normalises over each circuit's full QoR distribution, so it can only
// run once every outcome of that circuit is present. More than
// cfg.MaxFailures skipped outcomes abort the assembly.
func Assemble(cfg Config, outcomes [][]MapOutcome) (*Dataset, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(outcomes) != len(cfg.Circuits) {
		return nil, fmt.Errorf("dataset: %d outcome slices for %d circuits", len(outcomes), len(cfg.Circuits))
	}
	skipped, firstErr := 0, ""
	for ci, o := range outcomes {
		if len(o) != cfg.MapsPerCircuit {
			return nil, fmt.Errorf("dataset: circuit %d has %d outcomes, want %d", ci, len(o), cfg.MapsPerCircuit)
		}
		for _, mo := range o {
			if mo.Skipped {
				skipped++
				if firstErr == "" {
					firstErr = mo.Err
				}
			}
		}
	}
	if skipped > cfg.MaxFailures {
		if firstErr == "" {
			firstErr = "unknown"
		}
		return nil, fmt.Errorf("dataset: %d mappings failed (tolerance %d), first: %s",
			skipped, cfg.MaxFailures, firstErr)
	}
	ds := &Dataset{Classes: cfg.Classes}
	for _, o := range outcomes {
		labelOutcomes(ds, o, cfg.Classes)
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("dataset: no samples generated")
	}
	return ds, nil
}

// labelOutcomes converts mapping QoR values to class labels. The paper
// normalises each cut's label by the circuit's delay distribution; we use
// min-max normalisation into `classes` deciles so all classes are populated
// (pure max-normalisation would collapse everything into the top deciles —
// see DESIGN.md). Skipped outcomes are excluded from both the
// normalisation span and the output.
func labelOutcomes(ds *Dataset, outcomes []MapOutcome, classes int) {
	first := true
	var minQ, maxQ float64
	for _, o := range outcomes {
		if o.Skipped {
			continue
		}
		if first {
			minQ, maxQ = o.QoR, o.QoR
			first = false
		}
		if o.QoR < minQ {
			minQ = o.QoR
		}
		if o.QoR > maxQ {
			maxQ = o.QoR
		}
	}
	if first {
		return // every mapping of this circuit was skipped
	}
	span := maxQ - minQ
	for _, o := range outcomes {
		if o.Skipped {
			continue
		}
		label := 0
		if span > 0 {
			label = int(float64(classes) * (o.QoR - minQ) / span)
			if label >= classes {
				label = classes - 1
			}
		}
		for _, x := range o.Samples {
			ds.X = append(ds.X, x)
			ds.Y = append(ds.Y, label)
		}
	}
}
