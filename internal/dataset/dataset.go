// Package dataset generates labelled training data for the SLAP cut
// classifier following paper §IV-B: many random-shuffle mappings of the
// training circuits are produced, each mapping's delay is measured by STA,
// and every cut used in the final cover becomes one datapoint whose label
// is the mapping's delay decile (class 0 = fastest mappings, class 9 =
// slowest).
package dataset

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/embed"
	"slap/internal/library"
	"slap/internal/mapper"
)

// Dataset is a labelled set of cut embeddings.
type Dataset struct {
	// X holds flat 15×10 cut embeddings.
	X [][]float64
	// Y holds QoR class labels in [0, Classes).
	Y []int
	// Classes is the number of QoR classes (10 in the paper).
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// ClassHistogram counts samples per class.
func (d *Dataset) ClassHistogram() []int {
	h := make([]int, d.Classes)
	for _, y := range d.Y {
		h[y]++
	}
	return h
}

// Balanced returns a class-balanced resampling of the dataset: every class
// with at least one sample is up-sampled (with replacement) to the size of
// the largest class. Training on delay-decile labels is heavily
// prior-dominated otherwise — see DESIGN.md.
func (d *Dataset) Balanced(seed int64) *Dataset {
	byClass := make([][]int, d.Classes)
	maxN := 0
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
		if len(byClass[y]) > maxN {
			maxN = len(byClass[y])
		}
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Classes: d.Classes}
	for _, idx := range byClass {
		if len(idx) == 0 {
			continue
		}
		for k := 0; k < maxN; k++ {
			i := idx[k%len(idx)]
			if k >= len(idx) {
				i = idx[rng.Intn(len(idx))]
			}
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
	}
	rng.Shuffle(out.Len(), func(i, j int) {
		out.X[i], out.X[j] = out.X[j], out.X[i]
		out.Y[i], out.Y[j] = out.Y[j], out.Y[i]
	})
	return out
}

// Split partitions the dataset into train/validation subsets after a
// seeded shuffle. frac is the training fraction (e.g. 0.8).
func (d *Dataset) Split(frac float64, seed int64) (train, val *Dataset) {
	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	cut := int(frac * float64(len(order)))
	mk := func(idx []int) *Dataset {
		out := &Dataset{Classes: d.Classes}
		for _, i := range idx {
			out.X = append(out.X, d.X[i])
			out.Y = append(out.Y, d.Y[i])
		}
		return out
	}
	return mk(order[:cut]), mk(order[cut:])
}

// Config drives training-data generation.
type Config struct {
	// Circuits are the training designs (the paper uses two 16-bit adder
	// architectures).
	Circuits []*aig.AIG
	// Library is the target cell library.
	Library *library.Library
	// MapsPerCircuit is the number of random-shuffle mappings per circuit.
	MapsPerCircuit int
	// Classes is the number of QoR classes (0 = 10).
	Classes int
	// Seed drives the shuffle policies.
	Seed int64
	// ShuffleLimit is the per-node cut budget of the shuffle policy
	// (0 = DefaultShuffleLimit). QoR diversity under shuffling requires the
	// budget to actually truncate: the paper's 250-cut ABC budget binds on
	// its full-size designs, but on the 16-bit training adders every list
	// fits, so a tighter budget is needed to reproduce the same dispersion
	// mechanism (see DESIGN.md).
	ShuffleLimit int
	// Workers bounds mapping parallelism (0 = GOMAXPROCS).
	Workers int
	// Metric selects the label metric (default MetricDelay).
	Metric Metric
}

// DefaultShuffleLimit is the per-node cut budget used for random-shuffle
// data generation when Config.ShuffleLimit is zero.
const DefaultShuffleLimit = 16

// Metric selects which QoR figure labels the training cuts. The paper
// optimises delay; §IV-B notes that area or ADP "could equally be used".
type Metric int

// Supported labelling metrics.
const (
	MetricDelay Metric = iota
	MetricArea
	MetricADP
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricArea:
		return "area"
	case MetricADP:
		return "adp"
	default:
		return "delay"
	}
}

// mapOutcome is one random mapping's harvest.
type mapOutcome struct {
	qor     float64
	samples [][]float64
}

// Generate runs the random mappings and returns the labelled dataset.
func Generate(cfg Config) (*Dataset, error) {
	if len(cfg.Circuits) == 0 {
		return nil, fmt.Errorf("dataset: no training circuits")
	}
	if cfg.Library == nil {
		return nil, fmt.Errorf("dataset: library is required")
	}
	if cfg.MapsPerCircuit <= 0 {
		return nil, fmt.Errorf("dataset: MapsPerCircuit must be positive")
	}
	classes := cfg.Classes
	if classes == 0 {
		classes = 10
	}
	if cfg.ShuffleLimit == 0 {
		cfg.ShuffleLimit = DefaultShuffleLimit
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ds := &Dataset{Classes: classes}
	for ci, g := range cfg.Circuits {
		outcomes, err := runRandomMaps(g, cfg, workers, cfg.Seed+int64(ci)*1_000_003)
		if err != nil {
			return nil, fmt.Errorf("dataset: circuit %s: %w", g.Name, err)
		}
		labelOutcomes(ds, outcomes, classes)
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("dataset: no samples generated")
	}
	return ds, nil
}

func runRandomMaps(g *aig.AIG, cfg Config, workers int, seed int64) ([]mapOutcome, error) {
	outcomes := make([]mapOutcome, cfg.MapsPerCircuit)
	errs := make([]error, cfg.MapsPerCircuit)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < cfg.MapsPerCircuit; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			policy := &cuts.ShufflePolicy{
				Rng:   rand.New(rand.NewSource(seed + int64(i))),
				Limit: cfg.ShuffleLimit,
			}
			// Workers: 1 — the mappings themselves already saturate the
			// worker pool, and the shuffle policy's RNG sequence requires
			// sequential enumeration anyway.
			res, err := mapper.Map(g, mapper.Options{Library: cfg.Library, Policy: policy, Workers: 1})
			if err != nil {
				errs[i] = err
				return
			}
			emb := embed.NewEmbedder(g)
			samples := make([][]float64, 0, len(res.Cover))
			for _, ce := range res.Cover {
				samples = append(samples, emb.Cut(ce.Node, &ce.Cut))
			}
			var qor float64
			switch cfg.Metric {
			case MetricArea:
				qor = res.Area
			case MetricADP:
				qor = res.ADP()
			default:
				qor = res.Delay
			}
			outcomes[i] = mapOutcome{qor: qor, samples: samples}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return outcomes, nil
}

// labelOutcomes converts mapping QoR values to class labels. The paper
// normalises each cut's label by the circuit's delay distribution; we use
// min-max normalisation into `classes` deciles so all classes are populated
// (pure max-normalisation would collapse everything into the top deciles —
// see DESIGN.md).
func labelOutcomes(ds *Dataset, outcomes []mapOutcome, classes int) {
	minQ, maxQ := outcomes[0].qor, outcomes[0].qor
	for _, o := range outcomes {
		if o.qor < minQ {
			minQ = o.qor
		}
		if o.qor > maxQ {
			maxQ = o.qor
		}
	}
	span := maxQ - minQ
	for _, o := range outcomes {
		label := 0
		if span > 0 {
			label = int(float64(classes) * (o.qor - minQ) / span)
			if label >= classes {
				label = classes - 1
			}
		}
		for _, x := range o.samples {
			ds.X = append(ds.X, x)
			ds.Y = append(ds.Y, label)
		}
	}
}
