package dataset

import (
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/embed"
	"slap/internal/library"
)

func genSmall(t testing.TB, maps int) *Dataset {
	t.Helper()
	ds, err := Generate(Config{
		Circuits:       []*aig.AIG{circuits.TrainRC16()},
		Library:        library.ASAP7ish(),
		MapsPerCircuit: maps,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateBasic(t *testing.T) {
	ds := genSmall(t, 20)
	if ds.Len() == 0 {
		t.Fatalf("no samples")
	}
	if ds.Classes != 10 {
		t.Fatalf("classes = %d", ds.Classes)
	}
	for i, x := range ds.X {
		if len(x) != embed.Rows*embed.Cols {
			t.Fatalf("sample %d has %d features", i, len(x))
		}
		if ds.Y[i] < 0 || ds.Y[i] >= 10 {
			t.Fatalf("label %d out of range", ds.Y[i])
		}
	}
	// With min-max labelling both extreme classes must appear.
	h := ds.ClassHistogram()
	if h[0] == 0 {
		t.Fatalf("class 0 empty: %v", h)
	}
	if h[9] == 0 {
		t.Fatalf("class 9 empty: %v", h)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 8)
	b := genSmall(t, 8)
	if a.Len() != b.Len() {
		t.Fatalf("sample counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatalf("labels differ at %d", i)
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatalf("features differ at %d/%d", i, j)
			}
		}
	}
}

func TestSplit(t *testing.T) {
	ds := genSmall(t, 12)
	train, val := ds.Split(0.75, 99)
	if train.Len()+val.Len() != ds.Len() {
		t.Fatalf("split loses samples: %d + %d != %d", train.Len(), val.Len(), ds.Len())
	}
	want := int(0.75 * float64(ds.Len()))
	if train.Len() != want {
		t.Fatalf("train size = %d, want %d", train.Len(), want)
	}
	// Same seed, same split.
	t2, _ := ds.Split(0.75, 99)
	for i := range train.Y {
		if train.Y[i] != t2.Y[i] {
			t.Fatalf("split not deterministic")
		}
	}
}

func TestClassHistogramSums(t *testing.T) {
	ds := genSmall(t, 10)
	h := ds.ClassHistogram()
	sum := 0
	for _, c := range h {
		sum += c
	}
	if sum != ds.Len() {
		t.Fatalf("histogram sums to %d, want %d", sum, ds.Len())
	}
}

func TestGenerateConfigValidation(t *testing.T) {
	lib := library.ASAP7ish()
	if _, err := Generate(Config{Library: lib, MapsPerCircuit: 1}); err == nil {
		t.Errorf("missing circuits must fail")
	}
	if _, err := Generate(Config{Circuits: []*aig.AIG{circuits.TrainRC16()}, MapsPerCircuit: 1}); err == nil {
		t.Errorf("missing library must fail")
	}
	if _, err := Generate(Config{Circuits: []*aig.AIG{circuits.TrainRC16()}, Library: lib}); err == nil {
		t.Errorf("zero maps must fail")
	}
}

func TestTwoCircuitGeneration(t *testing.T) {
	ds, err := Generate(Config{
		Circuits:       []*aig.AIG{circuits.TrainRC16(), circuits.TrainCLA16()},
		Library:        library.ASAP7ish(),
		MapsPerCircuit: 6,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	single := genSmall(t, 6)
	if ds.Len() <= single.Len() {
		t.Fatalf("two circuits should yield more samples: %d vs %d", ds.Len(), single.Len())
	}
}

func TestBalanced(t *testing.T) {
	ds := genSmall(t, 20)
	bal := ds.Balanced(5)
	h := bal.ClassHistogram()
	// Every non-empty class is brought to the same count.
	max := 0
	for _, c := range ds.ClassHistogram() {
		if c > max {
			max = c
		}
	}
	for cls, c := range h {
		if c != 0 && c != max {
			t.Fatalf("class %d has %d samples after balancing, want %d", cls, c, max)
		}
	}
	if bal.Len() <= ds.Len() {
		t.Fatalf("balancing should upsample: %d <= %d", bal.Len(), ds.Len())
	}
	// Deterministic per seed.
	b2 := ds.Balanced(5)
	for i := range bal.Y {
		if bal.Y[i] != b2.Y[i] {
			t.Fatalf("balanced resampling not deterministic")
		}
	}
}

func TestMetricLabelling(t *testing.T) {
	gen := func(m Metric) *Dataset {
		ds, err := Generate(Config{
			Circuits:       []*aig.AIG{circuits.TrainRC16()},
			Library:        library.ASAP7ish(),
			MapsPerCircuit: 15,
			Seed:           9,
			Metric:         m,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	delay := gen(MetricDelay)
	area := gen(MetricArea)
	adp := gen(MetricADP)
	if delay.Len() != area.Len() || delay.Len() != adp.Len() {
		t.Fatalf("metric choice changed sample counts")
	}
	// Labels must differ between metrics for at least one sample
	// (delay-optimal and area-optimal maps differ).
	diff := false
	for i := range delay.Y {
		if delay.Y[i] != area.Y[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("area labels identical to delay labels (suspicious)")
	}
	if MetricDelay.String() != "delay" || MetricArea.String() != "area" || MetricADP.String() != "adp" {
		t.Fatalf("metric names wrong")
	}
}
