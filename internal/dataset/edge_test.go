package dataset

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/library"
)

func sampleDataset(n, classes int) *Dataset {
	d := &Dataset{Classes: classes}
	for i := 0; i < n; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%classes)
	}
	return d
}

func TestSplitEdgeCases(t *testing.T) {
	d := sampleDataset(10, 3)

	t.Run("frac 0", func(t *testing.T) {
		train, val := d.Split(0, 1)
		if train.Len() != 0 || val.Len() != 10 {
			t.Errorf("frac 0: train %d val %d, want 0/10", train.Len(), val.Len())
		}
	})
	t.Run("frac 1", func(t *testing.T) {
		train, val := d.Split(1, 1)
		if train.Len() != 10 || val.Len() != 0 {
			t.Errorf("frac 1: train %d val %d, want 10/0", train.Len(), val.Len())
		}
	})
	t.Run("frac out of range clamps", func(t *testing.T) {
		train, val := d.Split(-0.5, 1)
		if train.Len() != 0 || val.Len() != 10 {
			t.Errorf("frac -0.5: train %d val %d, want 0/10", train.Len(), val.Len())
		}
		train, val = d.Split(1.5, 1)
		if train.Len() != 10 || val.Len() != 0 {
			t.Errorf("frac 1.5: train %d val %d, want 10/0", train.Len(), val.Len())
		}
	})
	t.Run("empty dataset", func(t *testing.T) {
		empty := &Dataset{Classes: 3}
		train, val := empty.Split(0.8, 1)
		if train.Len() != 0 || val.Len() != 0 {
			t.Errorf("empty split: train %d val %d", train.Len(), val.Len())
		}
	})
	t.Run("no sample lost or duplicated", func(t *testing.T) {
		train, val := d.Split(0.7, 5)
		if train.Len()+val.Len() != d.Len() {
			t.Fatalf("split sizes %d+%d != %d", train.Len(), val.Len(), d.Len())
		}
		seen := map[float64]bool{}
		for _, ds := range []*Dataset{train, val} {
			for _, x := range ds.X {
				if seen[x[0]] {
					t.Fatalf("sample %v appears twice", x[0])
				}
				seen[x[0]] = true
			}
		}
	})
}

func TestBalancedEdgeCases(t *testing.T) {
	t.Run("empty dataset", func(t *testing.T) {
		empty := &Dataset{Classes: 5}
		b := empty.Balanced(1)
		if b.Len() != 0 {
			t.Errorf("balanced empty dataset has %d samples", b.Len())
		}
	})
	t.Run("single class", func(t *testing.T) {
		d := &Dataset{Classes: 4}
		for i := 0; i < 6; i++ {
			d.X = append(d.X, []float64{float64(i)})
			d.Y = append(d.Y, 2)
		}
		b := d.Balanced(1)
		if b.Len() != 6 {
			t.Errorf("single-class balance: %d samples, want 6", b.Len())
		}
		for _, y := range b.Y {
			if y != 2 {
				t.Fatalf("balance invented class %d", y)
			}
		}
	})
	t.Run("upsamples minority", func(t *testing.T) {
		d := &Dataset{Classes: 2}
		for i := 0; i < 9; i++ {
			d.X = append(d.X, []float64{float64(i)})
			d.Y = append(d.Y, 0)
		}
		d.X = append(d.X, []float64{99})
		d.Y = append(d.Y, 1)
		b := d.Balanced(1)
		hist := b.ClassHistogram()
		if hist[0] != 9 || hist[1] != 9 {
			t.Errorf("balanced histogram %v, want [9 9]", hist)
		}
	})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := sampleDataset(7, 3)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Error("round-trip changed the dataset")
	}
}

func TestLoadRejectsBadLabels(t *testing.T) {
	d := sampleDataset(4, 3)
	d.Y[2] = 7 // out of [0, Classes) range
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("Load accepted a label outside the class range")
	}
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("Load accepted garbage bytes")
	}
}

// TestGenerateOutcomesRangeComposition checks the shard-granular API: two
// half-ranges of one circuit compose to the same outcomes as the full
// range in one call, and Assemble over them reproduces Generate.
func TestGenerateOutcomesRangeComposition(t *testing.T) {
	cfg := Config{
		Circuits:       []*aig.AIG{circuits.RippleCarryAdder(8)},
		Library:        library.ASAP7ish(),
		MapsPerCircuit: 6,
		Seed:           3,
		Workers:        2,
	}
	ctx := context.Background()
	full, err := GenerateOutcomes(ctx, cfg, 0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := GenerateOutcomes(ctx, cfg, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := GenerateOutcomes(ctx, cfg, 0, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	composed := append(append([]MapOutcome{}, lo...), hi...)
	if !reflect.DeepEqual(full, composed) {
		t.Fatal("half-range outcomes differ from the full range")
	}

	want, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Assemble(cfg, [][]MapOutcome{composed})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("Assemble over composed ranges differs from Generate")
	}

	t.Run("range validation", func(t *testing.T) {
		if _, err := GenerateOutcomes(ctx, cfg, 2, 0, 6); err == nil {
			t.Error("out-of-range circuit accepted")
		}
		if _, err := GenerateOutcomes(ctx, cfg, 0, 4, 2); err == nil {
			t.Error("inverted map range accepted")
		}
	})
}

// TestAssembleFailureTolerance exercises MaxFailures: skipped outcomes
// under the threshold still assemble; over it, Assemble reports the
// underlying error.
func TestAssembleFailureTolerance(t *testing.T) {
	cfg := Config{
		Circuits:       []*aig.AIG{circuits.RippleCarryAdder(8)},
		Library:        library.ASAP7ish(),
		MapsPerCircuit: 6,
		Seed:           3,
		Workers:        1,
	}
	outcomes, err := GenerateOutcomes(context.Background(), cfg, 0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]MapOutcome{}, outcomes...)
	damaged[2] = MapOutcome{Skipped: true, Err: "injected mapping failure"}

	if _, err := Assemble(cfg, [][]MapOutcome{damaged}); err == nil {
		t.Error("Assemble with MaxFailures 0 accepted a skipped mapping")
	}

	tol := cfg
	tol.MaxFailures = 1
	ds, err := Assemble(tol, [][]MapOutcome{damaged})
	if err != nil {
		t.Fatalf("Assemble within MaxFailures: %v", err)
	}
	if ds.Len() == 0 {
		t.Error("tolerant assembly produced no samples")
	}

	allSkipped := make([]MapOutcome, 6)
	for i := range allSkipped {
		allSkipped[i] = MapOutcome{Skipped: true, Err: "gone"}
	}
	tol.MaxFailures = 6
	if _, err := Assemble(tol, [][]MapOutcome{allSkipped}); err == nil {
		t.Error("Assemble with every mapping skipped produced a dataset")
	}
}
