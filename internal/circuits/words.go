// Package circuits provides structural generators for the benchmark designs
// used in the SLAP evaluation (Table II of the paper) and the two 16-bit
// adder architectures used to train the model.
//
// All generators build And-Inverter Graphs through the word-level Builder
// helpers in this file. Every generator is parameterised by width so the
// experiment harness can run a scaled-down "fast" profile or the full
// paper-sized designs.
package circuits

import (
	"fmt"

	"slap/internal/aig"
)

// Word is a little-endian vector of literals (index 0 is the LSB).
type Word []aig.Lit

// Builder wraps an AIG with word-level construction helpers.
type Builder struct {
	G *aig.AIG
}

// NewBuilder returns a Builder over a fresh AIG with the given name.
func NewBuilder(name string) Builder {
	return Builder{G: aig.New(name)}
}

// Input creates an n-bit input word named name[0..n-1].
func (b Builder) Input(name string, n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = b.G.AddPI(fmt.Sprintf("%s[%d]", name, i))
	}
	return w
}

// Output registers each bit of w as a primary output named name[i].
func (b Builder) Output(name string, w Word) {
	for i, l := range w {
		b.G.AddPO(fmt.Sprintf("%s[%d]", name, i), l)
	}
}

// Const returns an n-bit constant word holding val.
func (b Builder) Const(val uint64, n int) Word {
	w := make(Word, n)
	for i := range w {
		if val>>uint(i)&1 == 1 {
			w[i] = aig.ConstTrue
		} else {
			w[i] = aig.ConstFalse
		}
	}
	return w
}

// Not complements every bit of w.
func (b Builder) Not(w Word) Word {
	r := make(Word, len(w))
	for i, l := range w {
		r[i] = l.Not()
	}
	return r
}

// AndW, OrW and XorW apply a bitwise operation to equal-width words.
func (b Builder) AndW(x, y Word) Word { return b.bitwise(x, y, b.G.And) }

// OrW is the bitwise OR of two equal-width words.
func (b Builder) OrW(x, y Word) Word { return b.bitwise(x, y, b.G.Or) }

// XorW is the bitwise XOR of two equal-width words.
func (b Builder) XorW(x, y Word) Word { return b.bitwise(x, y, b.G.Xor) }

func (b Builder) bitwise(x, y Word, op func(aig.Lit, aig.Lit) aig.Lit) Word {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuits: width mismatch %d vs %d", len(x), len(y)))
	}
	r := make(Word, len(x))
	for i := range x {
		r[i] = op(x[i], y[i])
	}
	return r
}

// MuxW returns sel ? t : e bitwise.
func (b Builder) MuxW(sel aig.Lit, t, e Word) Word {
	if len(t) != len(e) {
		panic(fmt.Sprintf("circuits: mux width mismatch %d vs %d", len(t), len(e)))
	}
	r := make(Word, len(t))
	for i := range t {
		r[i] = b.G.Mux(sel, t[i], e[i])
	}
	return r
}

// Extend sign- or zero-extends w to n bits.
func (b Builder) Extend(w Word, n int, signed bool) Word {
	r := make(Word, n)
	fill := aig.ConstFalse
	if signed && len(w) > 0 {
		fill = w[len(w)-1]
	}
	for i := 0; i < n; i++ {
		if i < len(w) {
			r[i] = w[i]
		} else {
			r[i] = fill
		}
	}
	return r
}

// ShiftLeftConst shifts w left by k bits, keeping the width.
func (b Builder) ShiftLeftConst(w Word, k int) Word {
	r := make(Word, len(w))
	for i := range r {
		if i >= k {
			r[i] = w[i-k]
		} else {
			r[i] = aig.ConstFalse
		}
	}
	return r
}

// fullAdder returns (sum, carry) of three literals.
func (b Builder) fullAdder(x, y, c aig.Lit) (aig.Lit, aig.Lit) {
	s := b.G.Xor(b.G.Xor(x, y), c)
	co := b.G.Maj(x, y, c)
	return s, co
}

// RippleAdd adds two equal-width words with a ripple-carry chain and returns
// the sum and the carry-out.
func (b Builder) RippleAdd(x, y Word, cin aig.Lit) (Word, aig.Lit) {
	if len(x) != len(y) {
		panic("circuits: RippleAdd width mismatch")
	}
	sum := make(Word, len(x))
	c := cin
	for i := range x {
		sum[i], c = b.fullAdder(x[i], y[i], c)
	}
	return sum, c
}

// Sub returns x - y (two's complement) and a "no borrow" flag (1 when x>=y
// for unsigned operands).
func (b Builder) Sub(x, y Word) (Word, aig.Lit) {
	return b.RippleAdd(x, b.Not(y), aig.ConstTrue)
}

// CLAAdd adds two equal-width words using 4-bit carry-lookahead blocks.
// This is the second adder architecture used for training data generation.
func (b Builder) CLAAdd(x, y Word, cin aig.Lit) (Word, aig.Lit) {
	if len(x) != len(y) {
		panic("circuits: CLAAdd width mismatch")
	}
	n := len(x)
	sum := make(Word, n)
	c := cin
	for blk := 0; blk < n; blk += 4 {
		hi := blk + 4
		if hi > n {
			hi = n
		}
		// Generate/propagate for the block.
		carries := make([]aig.Lit, hi-blk+1)
		carries[0] = c
		for i := blk; i < hi; i++ {
			gi := b.G.And(x[i], y[i])
			pi := b.G.Xor(x[i], y[i])
			// c_{i+1} = g_i + p_i * c_i, expanded per stage from the block
			// carry-in (lookahead form, all terms from carries[0]).
			term := gi
			acc := pi
			for j := i - 1; j >= blk; j-- {
				gj := b.G.And(x[j], y[j])
				pj := b.G.Xor(x[j], y[j])
				term = b.G.Or(term, b.G.And(acc, gj))
				acc = b.G.And(acc, pj)
			}
			carries[i-blk+1] = b.G.Or(term, b.G.And(acc, carries[0]))
		}
		for i := blk; i < hi; i++ {
			pi := b.G.Xor(x[i], y[i])
			sum[i] = b.G.Xor(pi, carries[i-blk])
		}
		c = carries[hi-blk]
	}
	return sum, c
}

// KoggeStoneAdd adds two equal-width words with a Kogge-Stone parallel
// prefix network. This stands in for the EPFL "adder" benchmark.
func (b Builder) KoggeStoneAdd(x, y Word, cin aig.Lit) (Word, aig.Lit) {
	if len(x) != len(y) {
		panic("circuits: KoggeStoneAdd width mismatch")
	}
	n := len(x)
	gen := make([]aig.Lit, n)
	prop := make([]aig.Lit, n)
	for i := 0; i < n; i++ {
		gen[i] = b.G.And(x[i], y[i])
		prop[i] = b.G.Xor(x[i], y[i])
	}
	// Fold the carry-in into bit 0 as an extra generate term.
	g := make([]aig.Lit, n)
	p := make([]aig.Lit, n)
	copy(g, gen)
	copy(p, prop)
	g[0] = b.G.Or(gen[0], b.G.And(prop[0], cin))
	for d := 1; d < n; d <<= 1 {
		ng := make([]aig.Lit, n)
		np := make([]aig.Lit, n)
		for i := 0; i < n; i++ {
			if i >= d {
				ng[i] = b.G.Or(g[i], b.G.And(p[i], g[i-d]))
				np[i] = b.G.And(p[i], p[i-d])
			} else {
				ng[i] = g[i]
				np[i] = p[i]
			}
		}
		g, p = ng, np
	}
	sum := make(Word, n)
	sum[0] = b.G.Xor(prop[0], cin)
	for i := 1; i < n; i++ {
		sum[i] = b.G.Xor(prop[i], g[i-1])
	}
	return sum, g[n-1]
}

// MulArray returns the 2n-bit unsigned product of two n-bit words using an
// AND-matrix with ripple-carry accumulation rows (a classic array
// multiplier, the architecture of ISCAS c6288).
func (b Builder) MulArray(x, y Word) Word {
	n, m := len(x), len(y)
	acc := b.Const(0, n+m)
	for j := 0; j < m; j++ {
		pp := make(Word, n+m)
		for i := range pp {
			pp[i] = aig.ConstFalse
		}
		for i := 0; i < n; i++ {
			pp[i+j] = b.G.And(x[i], y[j])
		}
		acc, _ = b.RippleAdd(acc, pp, aig.ConstFalse)
	}
	return acc
}

// MulBooth returns the 2n-bit product of two n-bit signed (two's
// complement) words using radix-4 Booth encoding with a carry-save
// accumulation tree and a final ripple adder.
func (b Builder) MulBooth(x, y Word) Word {
	n := len(x)
	if len(y) != n {
		panic("circuits: MulBooth width mismatch")
	}
	w := 2 * n
	xe := b.Extend(x, w, true)
	var pps []Word
	// y bits with an implicit y[-1] = 0, consumed two at a time.
	yBit := func(i int) aig.Lit {
		if i < 0 {
			return aig.ConstFalse
		}
		if i >= n {
			return y[n-1] // sign extension of the multiplier
		}
		return y[i]
	}
	for j := 0; j < n; j += 2 {
		b0 := yBit(j - 1)
		b1 := yBit(j)
		b2 := yBit(j + 1)
		one := b.G.Xor(b0, b1)                            // |digit| == 1
		two := b.G.And(b.G.Xor(b2, b1), b.G.Xnor(b0, b1)) // |digit| == 2
		neg := b2
		// Magnitude: (one ? x : 0) | (two ? 2x : 0), then conditional
		// negation via XOR with neg plus a +neg LSB correction term.
		x2 := b.ShiftLeftConst(xe, 1)
		mag := make(Word, w)
		for i := 0; i < w; i++ {
			mag[i] = b.G.Or(b.G.And(one, xe[i]), b.G.And(two, x2[i]))
		}
		ppBits := make(Word, w)
		for i := 0; i < w; i++ {
			ppBits[i] = b.G.Xor(mag[i], neg)
		}
		pp := b.ShiftLeftConst(ppBits, j)
		// For a left-shifted inverted value the vacated low bits must stay
		// zero, and the two's-complement +1 lands at position j.
		for i := 0; i < j; i++ {
			pp[i] = aig.ConstFalse
		}
		corr := make(Word, w)
		for i := range corr {
			corr[i] = aig.ConstFalse
		}
		if j < w {
			corr[j] = neg
		}
		pps = append(pps, pp, corr)
	}
	return b.reduceCSA(pps, w)
}

// reduceCSA sums the partial products with 3:2 carry-save compressors and a
// final ripple-carry adder, returning a w-bit result (mod 2^w).
func (b Builder) reduceCSA(pps []Word, w int) Word {
	for len(pps) > 2 {
		var next []Word
		i := 0
		for ; i+2 < len(pps); i += 3 {
			s := make(Word, w)
			c := make(Word, w)
			c[0] = aig.ConstFalse
			for k := 0; k < w; k++ {
				sk, ck := b.fullAdder(pps[i][k], pps[i+1][k], pps[i+2][k])
				s[k] = sk
				if k+1 < w {
					c[k+1] = ck
				}
			}
			next = append(next, s, c)
		}
		next = append(next, pps[i:]...)
		pps = next
	}
	if len(pps) == 1 {
		return pps[0]
	}
	sum, _ := b.RippleAdd(pps[0], pps[1], aig.ConstFalse)
	return sum
}

// Square returns the 2n-bit unsigned square of x, exploiting partial-product
// symmetry (x_i·x_j appears twice for i≠j, shifted once).
func (b Builder) Square(x Word) Word {
	n := len(x)
	w := 2 * n
	var pps []Word
	// Diagonal terms x_i·x_i = x_i at position 2i.
	diag := b.Const(0, w)
	for i := 0; i < n; i++ {
		diag[2*i] = x[i]
	}
	pps = append(pps, diag)
	// Off-diagonal pairs contribute x_i·x_j at position i+j+1.
	for i := 0; i < n; i++ {
		row := b.Const(0, w)
		nonzero := false
		for j := i + 1; j < n; j++ {
			if i+j+1 < w {
				row[i+j+1] = b.G.And(x[i], x[j])
				nonzero = true
			}
		}
		if nonzero {
			pps = append(pps, row)
		}
	}
	return b.reduceCSA(pps, w)
}

// LessUnsigned returns the literal x < y for unsigned words.
func (b Builder) LessUnsigned(x, y Word) aig.Lit {
	_, noBorrow := b.Sub(x, y)
	return noBorrow.Not()
}

// Equal returns the literal x == y.
func (b Builder) Equal(x, y Word) aig.Lit {
	if len(x) != len(y) {
		panic("circuits: Equal width mismatch")
	}
	eq := aig.ConstTrue
	for i := range x {
		eq = b.G.And(eq, b.G.Xnor(x[i], y[i]))
	}
	return eq
}

// RotateLeft rotates w left by the unsigned amount encoded in sh (a
// logarithmic barrel of mux stages). len(w) must be a power of two and
// len(sh) == log2(len(w)).
func (b Builder) RotateLeft(w Word, sh Word) Word {
	cur := w
	for s := 0; s < len(sh); s++ {
		k := 1 << uint(s)
		rot := make(Word, len(cur))
		for i := range cur {
			rot[i] = cur[(i-k+len(cur))%len(cur)]
		}
		cur = b.MuxW(sh[s], rot, cur)
	}
	return cur
}

// ShiftRightLogic shifts w right by sh with zero (or sign, when arith) fill.
func (b Builder) ShiftRightLogic(w Word, sh Word, arith bool) Word {
	cur := w
	fill := aig.ConstFalse
	if arith && len(w) > 0 {
		fill = w[len(w)-1]
	}
	for s := 0; s < len(sh); s++ {
		k := 1 << uint(s)
		shifted := make(Word, len(cur))
		for i := range cur {
			if i+k < len(cur) {
				shifted[i] = cur[i+k]
			} else {
				shifted[i] = fill
			}
		}
		cur = b.MuxW(sh[s], shifted, cur)
	}
	return cur
}

// ShiftLeftVar shifts w left by sh with zero fill.
func (b Builder) ShiftLeftVar(w Word, sh Word) Word {
	cur := w
	for s := 0; s < len(sh); s++ {
		k := 1 << uint(s)
		shifted := make(Word, len(cur))
		for i := range cur {
			if i-k >= 0 {
				shifted[i] = cur[i-k]
			} else {
				shifted[i] = aig.ConstFalse
			}
		}
		cur = b.MuxW(sh[s], shifted, cur)
	}
	return cur
}

// MulConst multiplies w by an unsigned constant using shift-and-add,
// returning a word of the same width (mod 2^len(w)).
func (b Builder) MulConst(w Word, c uint64) Word {
	acc := b.Const(0, len(w))
	for i := 0; i < len(w); i++ {
		if c>>uint(i)&1 == 1 {
			acc, _ = b.RippleAdd(acc, b.ShiftLeftConst(w, i), aig.ConstFalse)
		}
	}
	return acc
}
