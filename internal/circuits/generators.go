package circuits

import (
	"fmt"
	"math/rand"

	"slap/internal/aig"
)

// TrainRC16 returns the 16-bit ripple-carry adder used to generate training
// data (paper §V-A).
func TrainRC16() *aig.AIG { return RippleCarryAdder(16) }

// TrainCLA16 returns the 16-bit carry-lookahead adder used to generate
// training data (paper §V-A).
func TrainCLA16() *aig.AIG { return CarryLookaheadAdder(16) }

// RippleCarryAdder builds an n-bit ripple-carry adder ("rc64b"/"rc256b" in
// Table II, via the ABC gen command in the paper).
func RippleCarryAdder(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("rc%db", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	sum, cout := b.RippleAdd(x, y, aig.ConstFalse)
	b.Output("s", sum)
	b.G.AddPO("cout", cout)
	return b.G
}

// CarryLookaheadAdder builds an n-bit adder from 4-bit lookahead blocks.
func CarryLookaheadAdder(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("cla%db", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	sum, cout := b.CLAAdd(x, y, aig.ConstFalse)
	b.Output("s", sum)
	b.G.AddPO("cout", cout)
	return b.G
}

// PrefixAdder builds an n-bit Kogge-Stone adder (the EPFL "adder"
// benchmark stand-in).
func PrefixAdder(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("adder%d", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	sum, cout := b.KoggeStoneAdd(x, y, aig.ConstFalse)
	b.Output("s", sum)
	b.G.AddPO("cout", cout)
	return b.G
}

// BarrelShifter builds a w-bit rotate-left barrel shifter with log2(w)
// control bits (the EPFL "bar" benchmark stand-in). w must be a power of
// two.
func BarrelShifter(w int) *aig.AIG {
	if w&(w-1) != 0 || w == 0 {
		panic("circuits: BarrelShifter width must be a power of two")
	}
	log := 0
	for 1<<uint(log) < w {
		log++
	}
	b := NewBuilder(fmt.Sprintf("bar%d", w))
	data := b.Input("d", w)
	sh := b.Input("sh", log)
	b.Output("q", b.RotateLeft(data, sh))
	return b.G
}

// ArrayMultiplier builds an n x n unsigned array multiplier with a 2n-bit
// product. With n = 16 this is the architecture of ISCAS c6288; the
// "64b_mult" row of Table II uses the same generator at a larger width.
func ArrayMultiplier(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("mul%d_array", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	b.Output("p", b.MulArray(x, y))
	return b.G
}

// C6288 builds the 16x16 array multiplier corresponding to ISCAS c6288.
func C6288() *aig.AIG {
	g := ArrayMultiplier(16)
	g.Name = "c6288"
	return g
}

// BoothMultiplier builds an n x n signed radix-4 Booth multiplier with a
// carry-save reduction tree ("mul32-booth" / "mul64-booth" in Table II).
func BoothMultiplier(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("mul%d-booth", n))
	x := b.Input("a", n)
	y := b.Input("b", n)
	b.Output("p", b.MulBooth(x, y))
	return b.G
}

// Squarer builds an n-bit unsigned squarer with a 2n-bit result (the EPFL
// "square" benchmark stand-in).
func Squarer(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("square%d", n))
	x := b.Input("a", n)
	b.Output("p", b.Square(x))
	return b.G
}

// MaxTree builds a k-way w-bit unsigned maximum (the EPFL "max" benchmark
// computes the max of four 128-bit words; this generator is parameterised).
func MaxTree(k, w int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("max%dx%d", k, w))
	words := make([]Word, k)
	for i := range words {
		words[i] = b.Input(fmt.Sprintf("x%d", i), w)
	}
	for len(words) > 1 {
		var next []Word
		for i := 0; i+1 < len(words); i += 2 {
			lt := b.LessUnsigned(words[i], words[i+1])
			next = append(next, b.MuxW(lt, words[i+1], words[i]))
		}
		if len(words)%2 == 1 {
			next = append(next, words[len(words)-1])
		}
		words = next
	}
	b.Output("max", words[0])
	return b.G
}

// ALUCompare builds a w-bit adder/magnitude-comparator/parity block, the
// arithmetic-dominated profile of ISCAS c7552.
func ALUCompare(w int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("c7552ish%d", w))
	x := b.Input("a", w)
	y := b.Input("b", w)
	sum, cout := b.RippleAdd(x, y, aig.ConstFalse)
	b.Output("s", sum)
	b.G.AddPO("cout", cout)
	lt := b.LessUnsigned(x, y)
	eq := b.Equal(x, y)
	b.G.AddPO("lt", lt)
	b.G.AddPO("eq", eq)
	b.G.AddPO("gt", b.G.Nor(lt, eq))
	// Parity trees over each operand and the sum.
	parity := func(wd Word) aig.Lit {
		p := aig.ConstFalse
		for _, l := range wd {
			p = b.G.Xor(p, l)
		}
		return p
	}
	b.G.AddPO("pa", parity(x))
	b.G.AddPO("pb", parity(y))
	b.G.AddPO("ps", parity(sum))
	return b.G
}

// C7552 builds the 32-bit ALUCompare instance standing in for ISCAS c7552.
func C7552() *aig.AIG {
	g := ALUCompare(32)
	g.Name = "c7552"
	return g
}

// SinePoly builds an n-bit fixed-point evaluator of sin(x) for x in [0,1)
// radians using the Taylor expansion x - x^3/6 + x^5/120 (the EPFL "sin"
// benchmark stand-in; multiplier-dominated like the original).
func SinePoly(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("sin%d", n))
	x := b.Input("x", n)

	// hiHalf keeps the top n bits of a 2n-bit fixed-point product.
	hiHalf := func(p Word) Word { return Word(p[n:]) }
	mulFrac := func(a, c Word) Word { return hiHalf(b.MulArray(a, c)) }

	x2 := mulFrac(x, x)
	x3 := mulFrac(x2, x)
	x5 := mulFrac(x3, x2)

	scale := float64(uint64(1) << uint(n))
	c3 := b.Const(uint64(scale/6.0), n)
	c5 := b.Const(uint64(scale/120.0), n)
	t3 := mulFrac(x3, c3)
	t5 := mulFrac(x5, c5)

	acc, _ := b.Sub(x, t3)
	acc, _ = b.RippleAdd(acc, t5, aig.ConstFalse)
	b.Output("sin", acc)
	return b.G
}

// RiscVCore builds a PicoRV32-like single-cycle combinational datapath:
// instruction decode, immediate generation, a full RV32I ALU (add/sub,
// shifts, comparisons, logic ops), branch resolution and next-PC selection.
func RiscVCore() *aig.AIG {
	b := NewBuilder("pico_riscv")
	instr := b.Input("instr", 32)
	rs1 := b.Input("rs1", 32)
	rs2 := b.Input("rs2", 32)
	pc := b.Input("pc", 32)

	opcode := Word(instr[0:7])
	funct3 := Word(instr[12:15])
	funct7b5 := instr[30]

	isOpcode := func(bits uint64) aig.Lit {
		return b.Equal(opcode, b.Const(bits, 7))
	}
	opReg := isOpcode(0b0110011)    // R-type ALU
	opImm := isOpcode(0b0010011)    // I-type ALU
	opLoad := isOpcode(0b0000011)   // loads
	opStore := isOpcode(0b0100011)  // stores
	opBranch := isOpcode(0b1100011) // branches
	opJal := isOpcode(0b1101111)
	opJalr := isOpcode(0b1100111)
	opLui := isOpcode(0b0110111)
	opAuipc := isOpcode(0b0010111)

	// Immediate generation.
	sign := instr[31]
	rep := func(l aig.Lit, k int) Word {
		w := make(Word, k)
		for i := range w {
			w[i] = l
		}
		return w
	}
	immI := append(append(Word{}, instr[20:32]...), rep(sign, 20)...)
	immS := append(append(append(Word{}, instr[7:12]...), instr[25:32]...), rep(sign, 20)...)
	immB := append(append(append(append(append(Word{aig.ConstFalse}, instr[8:12]...),
		instr[25:31]...), instr[7]), sign), rep(sign, 19)...)
	immU := append(append(Word{}, rep(aig.ConstFalse, 12)...), instr[12:32]...)
	immJ := append(append(append(append(append(Word{aig.ConstFalse}, instr[21:31]...),
		instr[20]), instr[12:20]...), sign), rep(sign, 11)...)

	// ALU operand selection.
	useImm := b.G.Or(opImm, b.G.Or(opLoad, b.G.Or(opStore, opJalr)))
	immSel := b.MuxW(opStore, immS, immI)
	opB := b.MuxW(useImm, immSel, rs2)

	// ALU operations.
	f3Is := func(bits uint64) aig.Lit { return b.Equal(funct3, b.Const(bits, 3)) }
	doSub := b.G.And(opReg, funct7b5)
	addSub := b.MuxW(doSub,
		func() Word { d, _ := b.Sub(rs1, opB); return d }(),
		func() Word { s, _ := b.RippleAdd(rs1, opB, aig.ConstFalse); return s }())
	shamt := Word(opB[0:5])
	sll := b.ShiftLeftVar(rs1, shamt)
	srl := b.ShiftRightLogic(rs1, shamt, false)
	sra := b.ShiftRightLogic(rs1, shamt, true)
	srlSra := b.MuxW(funct7b5, sra, srl)
	ltSigned := func(x, y Word) aig.Lit {
		d, _ := b.Sub(x, y)
		// signed less-than: sign(x)!=sign(y) ? sign(x) : sign(diff)
		diffSign := d[len(d)-1]
		xs, ys := x[len(x)-1], y[len(y)-1]
		return b.G.Mux(b.G.Xor(xs, ys), xs, diffSign)
	}
	slt := b.Extend(Word{ltSigned(rs1, opB)}, 32, false)
	sltu := b.Extend(Word{b.LessUnsigned(rs1, opB)}, 32, false)
	xorW := b.XorW(rs1, opB)
	orW := b.OrW(rs1, opB)
	andW := b.AndW(rs1, opB)

	alu := addSub
	type aluCase struct {
		f3  uint64
		val Word
	}
	for _, c := range []aluCase{
		{0b001, sll}, {0b010, slt}, {0b011, sltu}, {0b100, xorW},
		{0b101, srlSra}, {0b110, orW}, {0b111, andW},
	} {
		alu = b.MuxW(f3Is(c.f3), c.val, alu)
	}

	// Branch resolution.
	eq := b.Equal(rs1, rs2)
	lts := ltSigned(rs1, rs2)
	ltu := b.LessUnsigned(rs1, rs2)
	takeBr := b.G.And(opBranch, b.G.Mux(funct3[2],
		// blt/bge/bltu/bgeu select on funct3[1], invert on funct3[0]
		b.G.Xor(b.G.Mux(funct3[1], ltu, lts), funct3[0]),
		b.G.Xor(eq, funct3[0])))

	pc4, _ := b.RippleAdd(pc, b.Const(4, 32), aig.ConstFalse)
	pcBr, _ := b.RippleAdd(pc, immB, aig.ConstFalse)
	pcJal, _ := b.RippleAdd(pc, immJ, aig.ConstFalse)
	pcJalr, _ := b.RippleAdd(rs1, immI, aig.ConstFalse)
	pcJalr[0] = aig.ConstFalse
	nextPC := b.MuxW(takeBr, pcBr, pc4)
	nextPC = b.MuxW(opJal, pcJal, nextPC)
	nextPC = b.MuxW(opJalr, pcJalr, nextPC)

	// Writeback value.
	pcImm, _ := b.RippleAdd(pc, immU, aig.ConstFalse)
	wb := alu
	wb = b.MuxW(opLui, immU, wb)
	wb = b.MuxW(opAuipc, pcImm, wb)
	wb = b.MuxW(b.G.Or(opJal, opJalr), pc4, wb)

	memAddr, _ := b.RippleAdd(rs1, immSel, aig.ConstFalse)

	b.Output("wb", wb)
	b.Output("next_pc", nextPC)
	b.Output("mem_addr", memAddr)
	b.G.AddPO("take_branch", takeBr)
	return b.G
}

// RandomAIG builds a seeded pseudo-random DAG with `pis` inputs and up to
// `ands` AND nodes: each new node conjoins two uniformly chosen existing
// literals with random polarities. Every sink node becomes a PO so the whole
// graph stays observable. Used by property tests that need structurally
// diverse graphs beyond the arithmetic generators.
func RandomAIG(seed int64, pis, ands int) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	g := aig.New(fmt.Sprintf("rand%d", seed))
	lits := make([]aig.Lit, 0, pis+ands)
	for i := 0; i < pis; i++ {
		lits = append(lits, g.AddPI(fmt.Sprintf("x%d", i)))
	}
	// Structural hashing may fold some attempts, so bound the loop by
	// attempts rather than spinning until the exact node count is reached.
	for tries := 0; tries < 16*ands && g.NumAnds() < ands; tries++ {
		a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
		o := g.And(a, b)
		if o.Node() != a.Node() && o.Node() != b.Node() {
			lits = append(lits, o)
		}
	}
	var sinks []uint32
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) && g.Fanout(n) == 0 {
			sinks = append(sinks, n)
		}
	}
	for i, n := range sinks {
		g.AddPO(fmt.Sprintf("y%d", i), aig.MakeLit(n, false))
	}
	return g
}
