package circuits

import (
	"fmt"

	"slap/internal/aig"
)

// This file provides the remaining EPFL-style arithmetic blocks — divider,
// square root, log2 and hypotenuse — which the paper explicitly skipped
// ("the biggest arithmetic blocks' results are not present as the
// data-frame generation with pandas takes too long", §V-C). This Go
// implementation has no such bottleneck, so the generators are included
// both for completeness and as additional stress tests for the mapper.

// Divider builds an n-bit unsigned restoring divider producing quotient and
// remainder. Division by zero yields quotient all-ones and remainder x (the
// natural result of the restoring recurrence with d = 0).
func Divider(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("div%d", n))
	x := b.Input("x", n)
	d := b.Input("d", n)
	// Remainder register is one bit wider than the divisor so the trial
	// subtraction never overflows.
	w := n + 1
	dw := b.Extend(d, w, false)
	rem := b.Const(0, w)
	q := make(Word, n)
	for i := n - 1; i >= 0; i-- {
		// rem = (rem << 1) | x[i]
		shifted := b.ShiftLeftConst(rem, 1)
		shifted[0] = x[i]
		diff, noBorrow := b.Sub(shifted, dw)
		q[i] = noBorrow
		rem = b.MuxW(noBorrow, diff, shifted)
	}
	b.Output("q", q)
	b.Output("r", Word(rem[:n]))
	return b.G
}

// Sqrt builds an n-bit unsigned integer square root (n even) using the
// digit-by-digit (non-restoring radix-2) recurrence. The output has n/2
// bits: floor(sqrt(x)).
func Sqrt(n int) *aig.AIG {
	if n%2 != 0 {
		panic("circuits: Sqrt width must be even")
	}
	b := NewBuilder(fmt.Sprintf("sqrt%d", n))
	x := b.Input("x", n)
	half := n / 2
	w := half + 2 // remainder width: rem < 2*root + 4
	rem := b.Const(0, w)
	root := b.Const(0, half)
	for i := half - 1; i >= 0; i-- {
		// rem = (rem << 2) | next two input bits.
		shifted := b.ShiftLeftConst(rem, 2)
		shifted[1] = x[2*i+1]
		shifted[0] = x[2*i]
		// trial = (root << 2) | 1, truncated to w bits.
		trial := b.Const(0, w)
		for j := 0; j < half && j+2 < w; j++ {
			trial[j+2] = root[j]
		}
		trial[0] = aig.ConstTrue
		diff, noBorrow := b.Sub(shifted, trial)
		rem = b.MuxW(noBorrow, diff, shifted)
		// root = (root << 1) | bit.
		root = b.ShiftLeftConst(root, 1)
		root[0] = noBorrow
	}
	b.Output("root", root)
	return b.G
}

// Log2 builds an n-bit fixed-point log2 approximation: the integer part is
// the leading-one position (priority encoder) and the fraction is the
// linearised normalised mantissa — log2(x) ~= p + (x/2^p - 1) for
// 2^p <= x < 2^(p+1). Output: ilog[log2(n) bits] integer part, frac[fracBits]
// fraction, plus a zero flag (log2(0) is undefined).
func Log2(n, fracBits int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("log2_%d", n))
	x := b.Input("x", n)

	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	// Priority encoder: position of the most significant set bit.
	pos := b.Const(0, logN)
	found := aig.ConstFalse
	for i := n - 1; i >= 0; i-- {
		isLead := b.G.And(x[i], found.Not())
		for j := 0; j < logN; j++ {
			if i>>uint(j)&1 == 1 {
				pos[j] = b.G.Or(pos[j], isLead)
			}
		}
		found = b.G.Or(found, x[i])
	}
	// Normalised mantissa: shift x left so the leading one lands at the
	// top, then take the bits below it as the fraction.
	shiftAmt := make(Word, logN)
	nm1 := b.Const(uint64(n-1), logN)
	shiftAmt, _ = b.Sub(nm1, pos)
	norm := b.ShiftLeftVar(x, shiftAmt)
	frac := make(Word, fracBits)
	for i := 0; i < fracBits; i++ {
		src := n - 2 - i // bits right below the (shifted) leading one
		if src >= 0 {
			frac[fracBits-1-i] = norm[src]
		} else {
			frac[fracBits-1-i] = aig.ConstFalse
		}
	}
	b.Output("ilog", pos)
	b.Output("frac", frac)
	b.G.AddPO("is_zero", found.Not())
	return b.G
}

// Hypot builds floor(sqrt(x^2 + y^2)) for n-bit unsigned inputs (the EPFL
// "hypotenuse" block): two squarers, an adder and a digit-recurrence square
// root composed into one datapath.
func Hypot(n int) *aig.AIG {
	b := NewBuilder(fmt.Sprintf("hypot%d", n))
	x := b.Input("x", n)
	y := b.Input("y", n)
	x2 := b.Square(x)
	y2 := b.Square(y)
	sum, carry := b.RippleAdd(x2, y2, aig.ConstFalse)
	// Widen to 2n+2 bits (even) so the sum always fits.
	s := make(Word, 2*n+2)
	copy(s, sum)
	s[2*n] = carry
	s[2*n+1] = aig.ConstFalse

	// Inline digit-by-digit square root over the sum.
	half := (2*n + 2) / 2
	w := half + 2
	rem := b.Const(0, w)
	root := b.Const(0, half)
	for i := half - 1; i >= 0; i-- {
		shifted := b.ShiftLeftConst(rem, 2)
		shifted[1] = s[2*i+1]
		shifted[0] = s[2*i]
		trial := b.Const(0, w)
		for j := 0; j < half && j+2 < w; j++ {
			trial[j+2] = root[j]
		}
		trial[0] = aig.ConstTrue
		diff, noBorrow := b.Sub(shifted, trial)
		rem = b.MuxW(noBorrow, diff, shifted)
		root = b.ShiftLeftConst(root, 1)
		root[0] = noBorrow
	}
	b.Output("h", root)
	return b.G
}
