package circuits

import (
	"math"
	"math/rand"
	"testing"
)

func TestDivider(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range []int{4, 8, 12} {
		g := Divider(n)
		x := randVals(rng, 64, n)
		d := randVals(rng, 64, n)
		// Corner cases: divide by 1, equal operands, zero dividend.
		d[0] = 1
		x[1], d[1] = 37%uint64(1<<uint(n)), 37%uint64(1<<uint(n))
		x[2] = 0
		for l := range d {
			if d[l] == 0 {
				d[l] = 1 // division by zero checked separately
			}
		}
		pos := g.Simulate(packWords([]int{n, n}, [][]uint64{x, d}))
		q := unpackWord(pos, 0, n, 64)
		r := unpackWord(pos, n, n, 64)
		for l := 0; l < 64; l++ {
			if q[l] != x[l]/d[l] || r[l] != x[l]%d[l] {
				t.Fatalf("div%d lane %d: %d/%d = (%d,%d), want (%d,%d)",
					n, l, x[l], d[l], q[l], r[l], x[l]/d[l], x[l]%d[l])
			}
		}
	}
}

func TestDividerByZero(t *testing.T) {
	const n = 8
	g := Divider(n)
	pos := g.Simulate(packWords([]int{n, n}, [][]uint64{{200}, {0}}))
	q := unpackWord(pos, 0, n, 1)
	r := unpackWord(pos, n, n, 1)
	if q[0] != 0xFF || r[0] != 200 {
		t.Fatalf("div by zero: q=%d r=%d, want 255, 200", q[0], r[0])
	}
}

func TestSqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, n := range []int{8, 16, 24} {
		g := Sqrt(n)
		x := randVals(rng, 64, n)
		x[0] = 0
		x[1] = uint64(1)<<uint(n) - 1
		x[2] = 1
		pos := g.Simulate(packWords([]int{n}, [][]uint64{x}))
		root := unpackWord(pos, 0, n/2, 64)
		for l := 0; l < 64; l++ {
			want := uint64(math.Sqrt(float64(x[l])))
			// Guard against float rounding at perfect-square boundaries.
			for want*want > x[l] {
				want--
			}
			for (want+1)*(want+1) <= x[l] {
				want++
			}
			if root[l] != want {
				t.Fatalf("sqrt%d lane %d: sqrt(%d) = %d, want %d", n, l, x[l], root[l], want)
			}
		}
	}
}

func TestSqrtOddWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("odd width must panic")
		}
	}()
	Sqrt(7)
}

func TestLog2(t *testing.T) {
	const n, fracBits = 16, 6
	g := Log2(n, fracBits)
	rng := rand.New(rand.NewSource(53))
	x := randVals(rng, 64, n)
	x[0] = 0
	x[1] = 1
	x[2] = 1 << (n - 1)
	pos := g.Simulate(packWords([]int{n}, [][]uint64{x}))
	ilog := unpackWord(pos, 0, 4, 64)
	frac := unpackWord(pos, 4, fracBits, 64)
	isZero := unpackWord(pos, 4+fracBits, 1, 64)
	for l := 0; l < 64; l++ {
		if x[l] == 0 {
			if isZero[l] != 1 {
				t.Fatalf("zero flag missing for x=0")
			}
			continue
		}
		wantI := uint64(0)
		for p := uint64(x[l]); p > 1; p >>= 1 {
			wantI++
		}
		if ilog[l] != wantI {
			t.Fatalf("ilog(%d) = %d, want %d", x[l], ilog[l], wantI)
		}
		// Linear fraction: (x/2^p - 1) in fracBits bits.
		wantF := (x[l]<<uint(fracBits)>>wantI - 1<<fracBits) & (1<<fracBits - 1)
		if frac[l] != wantF {
			t.Fatalf("frac(%d) = %#x, want %#x", x[l], frac[l], wantF)
		}
		// The approximation itself must be within 0.1 of true log2.
		approx := float64(wantI) + float64(frac[l])/float64(uint64(1)<<fracBits)
		if diff := math.Abs(approx - math.Log2(float64(x[l]))); diff > 0.1 {
			t.Fatalf("log2(%d) approx %.3f off by %.3f", x[l], approx, diff)
		}
	}
}

func TestHypot(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, n := range []int{6, 10} {
		g := Hypot(n)
		x := randVals(rng, 64, n)
		y := randVals(rng, 64, n)
		x[0], y[0] = 3, 4 // hypot = 5
		x[1], y[1] = 0, 0
		mx := uint64(1)<<uint(n) - 1
		x[2], y[2] = mx, mx
		half := (2*n + 2) / 2
		pos := g.Simulate(packWords([]int{n, n}, [][]uint64{x, y}))
		h := unpackWord(pos, 0, half, 64)
		for l := 0; l < 64; l++ {
			sum := x[l]*x[l] + y[l]*y[l]
			want := uint64(math.Sqrt(float64(sum)))
			for want*want > sum {
				want--
			}
			for (want+1)*(want+1) <= sum {
				want++
			}
			if h[l] != want {
				t.Fatalf("hypot%d lane %d: hypot(%d,%d) = %d, want %d", n, l, x[l], y[l], h[l], want)
			}
		}
	}
}
