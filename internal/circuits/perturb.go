package circuits

import (
	"math/rand"

	"slap/internal/aig"
)

// Perturb returns a structurally edited copy of g: each AND node's first
// fanin has its complement bit flipped with the given probability, which
// dirties that node's entire transitive fanout cone while leaving the rest
// of the graph byte-identical. This models an ECO edit for the
// delta-remapping flow; determinism follows from the seed. Flipped nodes
// can fold away in the strashing constructor (e.g. AND(a, !a) = 0), so the
// copy may be slightly smaller than the original.
func Perturb(g *aig.AIG, seed int64, fraction float64) *aig.AIG {
	return PerturbSpan(g, seed, 0, 1, fraction)
}

// PerturbSpan is Perturb restricted to the AND nodes whose id falls in the
// [start, end) fraction of the node-id range — a *localised* edit, the
// shape real ECOs take: a late span (close to the POs) leaves most of the
// design's fanin cones untouched, while start=0, end=1 recovers the
// uniform Perturb.
func PerturbSpan(g *aig.AIG, seed int64, start, end, fraction float64) *aig.AIG {
	rng := rand.New(rand.NewSource(seed))
	lo := uint32(start * float64(g.NumNodes()))
	hi := uint32(end * float64(g.NumNodes()))
	h := aig.New(g.Name)
	lits := make([]aig.Lit, g.NumNodes())
	pi := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		switch {
		case g.IsPI(n):
			lits[n] = h.AddPI(g.PIName(pi))
			pi++
		case g.IsAnd(n):
			f0, f1 := g.Fanins(n)
			a := lits[f0.Node()].NotIf(f0.IsCompl())
			b := lits[f1.Node()].NotIf(f1.IsCompl())
			if n >= lo && n < hi && rng.Float64() < fraction {
				a = a.Not()
			}
			lits[n] = h.And(a, b)
		}
	}
	for _, po := range g.POs() {
		h.AddPO(po.Name, lits[po.Lit.Node()].NotIf(po.Lit.IsCompl()))
	}
	return h
}
