package circuits

import (
	"fmt"

	"slap/internal/aig"
)

// This file builds a combinational AES-128 encryption core, the largest
// benchmark of the paper's Table II. The S-box is synthesised into AIG logic
// from its truth table with a memoised Shannon (ROBDD-style) decomposition,
// which yields a compact multiplexer network with heavy sharing across the
// eight output bits. The number of rounds is a parameter so the experiment
// harness can use a scaled-down profile.

// sboxTable computes the AES S-box at runtime from first principles:
// multiplicative inverse in GF(2^8) (polynomial x^8+x^4+x^3+x+1) followed by
// the affine transform b ^ rotl(b,1..4) ^ 0x63.
func sboxTable() [256]byte {
	gfMul := func(a, b byte) byte {
		var p byte
		for i := 0; i < 8; i++ {
			if b&1 == 1 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1b
			}
			b >>= 1
		}
		return p
	}
	inv := func(a byte) byte {
		if a == 0 {
			return 0
		}
		// a^254 is the inverse in GF(2^8).
		r := byte(1)
		base := a
		for e := 254; e > 0; e >>= 1 {
			if e&1 == 1 {
				r = gfMul(r, base)
			}
			base = gfMul(base, base)
		}
		return r
	}
	rotl := func(b byte, k uint) byte { return b<<k | b>>(8-k) }
	var tbl [256]byte
	for x := 0; x < 256; x++ {
		b := inv(byte(x))
		tbl[x] = b ^ rotl(b, 1) ^ rotl(b, 2) ^ rotl(b, 3) ^ rotl(b, 4) ^ 0x63
	}
	return tbl
}

// SBoxTable exposes the runtime-computed AES S-box for tests.
func SBoxTable() [256]byte { return sboxTable() }

// fn256 is a 256-row truth table for an 8-input boolean function.
type fn256 [4]uint64

func (f fn256) bit(i int) bool { return f[i>>6]>>(uint(i)&63)&1 == 1 }

func (f fn256) isConst() (bool, bool) {
	all0 := f[0] == 0 && f[1] == 0 && f[2] == 0 && f[3] == 0
	m := ^uint64(0)
	all1 := f[0] == m && f[1] == m && f[2] == m && f[3] == m
	return all0 || all1, all1
}

// cofactor8 returns the cofactor of f with variable v fixed to val,
// replicated so the result is independent of v.
func cofactor8(f fn256, v int, val bool) fn256 {
	var r fn256
	for m := 0; m < 256; m++ {
		src := m&^(1<<uint(v)) | boolBit(val)<<uint(v)
		if f.bit(src) {
			r[m>>6] |= 1 << (uint(m) & 63)
		}
	}
	return r
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// synth8 synthesises an 8-input boolean function into the AIG with a
// memoised Shannon decomposition over variables high-to-low. The memo is
// shared across calls so the eight S-box output bits reuse common
// subfunctions (ROBDD-style sharing).
func synth8(b Builder, in Word, f fn256, memo map[fn256]aig.Lit) aig.Lit {
	if l, ok := memo[f]; ok {
		return l
	}
	if c, v := f.isConst(); c {
		l := aig.ConstFalse
		if v {
			l = aig.ConstTrue
		}
		memo[f] = l
		return l
	}
	// Find the highest variable the function depends on.
	v := -1
	var lo, hi fn256
	for i := 7; i >= 0; i-- {
		lo = cofactor8(f, i, false)
		hi = cofactor8(f, i, true)
		if lo != hi {
			v = i
			break
		}
	}
	l := b.G.Mux(in[v], synth8(b, in, hi, memo), synth8(b, in, lo, memo))
	memo[f] = l
	return l
}

// sboxLogic maps an 8-bit word through the AES S-box as synthesised logic.
// The Shannon memo is local to one S-box instance — it is keyed by function
// only, so it must never be shared between instances with different input
// words. Sharing across instances happens structurally via the AIG hash.
func sboxLogic(b Builder, in Word, tbl *[256]byte) Word {
	memo := make(map[fn256]aig.Lit)
	out := make(Word, 8)
	for bitPos := 0; bitPos < 8; bitPos++ {
		var f fn256
		for x := 0; x < 256; x++ {
			if tbl[x]>>uint(bitPos)&1 == 1 {
				f[x>>6] |= 1 << (uint(x) & 63)
			}
		}
		// Remap: the function's variable i is in[i].
		out[bitPos] = synth8(b, in, f, memo)
	}
	return out
}

// xtimeLogic multiplies a GF(2^8) byte by x (the AES "xtime" operation).
func xtimeLogic(b Builder, a Word) Word {
	r := make(Word, 8)
	r[0] = a[7]
	r[1] = b.G.Xor(a[0], a[7])
	r[2] = a[1]
	r[3] = b.G.Xor(a[2], a[7])
	r[4] = b.G.Xor(a[3], a[7])
	r[5] = a[4]
	r[6] = a[5]
	r[7] = a[6]
	return r
}

// AES builds a combinational AES-128 encryption datapath with the given
// number of rounds (1..10). With rounds == 10 this is full AES-128
// (verified against crypto/aes in the tests); smaller values give the
// scaled-down fast profile. The key schedule is synthesised into logic as
// well, as in the OpenCores AES core the paper maps.
func AES(rounds int) *aig.AIG {
	if rounds < 1 || rounds > 10 {
		panic("circuits: AES rounds must be in 1..10")
	}
	b := NewBuilder(fmt.Sprintf("aes_r%d", rounds))
	tbl := sboxTable()

	// State and key are 16 bytes, AES column-major order: byte index
	// r + 4c holds state[r][c].
	plain := make([]Word, 16)
	key := make([]Word, 16)
	for i := 0; i < 16; i++ {
		plain[i] = b.Input(fmt.Sprintf("pt%d", i), 8)
	}
	for i := 0; i < 16; i++ {
		key[i] = b.Input(fmt.Sprintf("key%d", i), 8)
	}

	xorBytes := func(x, y Word) Word { return b.XorW(x, y) }

	// Key schedule: 4-byte words w[0..4*(rounds+1)-1].
	type kw [4]Word
	w := make([]kw, 4*(rounds+1))
	for i := 0; i < 4; i++ {
		w[i] = kw{key[4*i], key[4*i+1], key[4*i+2], key[4*i+3]}
	}
	rcon := byte(1)
	gfDouble := func(x byte) byte {
		h := x & 0x80
		x <<= 1
		if h != 0 {
			x ^= 0x1b
		}
		return x
	}
	for i := 4; i < len(w); i++ {
		prev := w[i-1]
		if i%4 == 0 {
			// RotWord + SubWord + Rcon.
			var t kw
			t[0] = sboxLogic(b, prev[1], &tbl)
			t[1] = sboxLogic(b, prev[2], &tbl)
			t[2] = sboxLogic(b, prev[3], &tbl)
			t[3] = sboxLogic(b, prev[0], &tbl)
			t[0] = xorBytes(t[0], b.Const(uint64(rcon), 8))
			rcon = gfDouble(rcon)
			prev = t
		}
		for j := 0; j < 4; j++ {
			w[i][j] = xorBytes(w[i-4][j], prev[j])
		}
	}
	roundKey := func(r int) []Word {
		rk := make([]Word, 16)
		for c := 0; c < 4; c++ {
			for rr := 0; rr < 4; rr++ {
				rk[rr+4*c] = w[4*r+c][rr]
			}
		}
		return rk
	}

	// Initial AddRoundKey.
	state := make([]Word, 16)
	rk0 := roundKey(0)
	for i := range state {
		state[i] = xorBytes(plain[i], rk0[i])
	}

	for r := 1; r <= rounds; r++ {
		// SubBytes.
		for i := range state {
			state[i] = sboxLogic(b, state[i], &tbl)
		}
		// ShiftRows: new[r][c] = old[r][(c+r)%4].
		shifted := make([]Word, 16)
		for row := 0; row < 4; row++ {
			for c := 0; c < 4; c++ {
				shifted[row+4*c] = state[row+4*((c+row)%4)]
			}
		}
		state = shifted
		// MixColumns on every round except the last when running the full
		// 10 rounds (AES spec); scaled-down profiles keep it in all rounds
		// except their final one too, matching the spec shape.
		if r != rounds {
			mixed := make([]Word, 16)
			for c := 0; c < 4; c++ {
				a0, a1, a2, a3 := state[4*c], state[1+4*c], state[2+4*c], state[3+4*c]
				x0, x1, x2, x3 := xtimeLogic(b, a0), xtimeLogic(b, a1), xtimeLogic(b, a2), xtimeLogic(b, a3)
				// 2a0 ^ 3a1 ^ a2 ^ a3, etc.
				mixed[4*c] = xorBytes(xorBytes(x0, xorBytes(x1, a1)), xorBytes(a2, a3))
				mixed[1+4*c] = xorBytes(xorBytes(a0, x1), xorBytes(xorBytes(x2, a2), a3))
				mixed[2+4*c] = xorBytes(xorBytes(a0, a1), xorBytes(x2, xorBytes(x3, a3)))
				mixed[3+4*c] = xorBytes(xorBytes(xorBytes(x0, a0), a1), xorBytes(a2, x3))
			}
			state = mixed
		}
		rk := roundKey(r)
		for i := range state {
			state[i] = xorBytes(state[i], rk[i])
		}
	}

	for i := range state {
		b.Output(fmt.Sprintf("ct%d", i), state[i])
	}
	return b.G
}
