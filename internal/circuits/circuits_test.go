package circuits

import (
	"crypto/aes"
	"math"
	"math/rand"
	"testing"

	"slap/internal/aig"
)

// packWords packs per-lane integer values into the bit-sliced PI words the
// simulator expects. widths[i] is the bit width of input word i; vals[i][l]
// is the value of word i in lane l (up to 64 lanes).
func packWords(widths []int, vals [][]uint64) []uint64 {
	total := 0
	for _, w := range widths {
		total += w
	}
	out := make([]uint64, total)
	off := 0
	for wi, w := range widths {
		for bit := 0; bit < w; bit++ {
			var packed uint64
			for lane, v := range vals[wi] {
				packed |= (v >> uint(bit) & 1) << uint(lane)
			}
			out[off+bit] = packed
		}
		off += w
	}
	return out
}

// unpackWord extracts the lane values of an output word spanning POs
// [off, off+width).
func unpackWord(poVals []uint64, off, width, lanes int) []uint64 {
	out := make([]uint64, lanes)
	for bit := 0; bit < width; bit++ {
		pv := poVals[off+bit]
		for lane := 0; lane < lanes; lane++ {
			out[lane] |= (pv >> uint(lane) & 1) << uint(bit)
		}
	}
	return out
}

func randVals(rng *rand.Rand, n int, bits int) []uint64 {
	out := make([]uint64, n)
	mask := ^uint64(0)
	if bits < 64 {
		mask = (1 << uint(bits)) - 1
	}
	for i := range out {
		out[i] = rng.Uint64() & mask
	}
	return out
}

func TestAdderArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
		gen  func(int) *aig.AIG
	}{
		{"ripple", RippleCarryAdder},
		{"cla", CarryLookaheadAdder},
		{"koggestone", PrefixAdder},
	} {
		for _, n := range []int{8, 16, 33} {
			if tc.name == "koggestone" && n == 33 {
				continue // power-of-two friendly widths only in this test
			}
			g := tc.gen(n)
			a := randVals(rng, 64, n)
			b := randVals(rng, 64, n)
			pis := packWords([]int{n, n}, [][]uint64{a, b})
			pos := g.Simulate(pis)
			sums := unpackWord(pos, 0, n, 64)
			couts := unpackWord(pos, n, 1, 64)
			mask := uint64(1)<<uint(n) - 1
			for l := 0; l < 64; l++ {
				full := a[l] + b[l]
				if sums[l] != full&mask {
					t.Fatalf("%s/%d lane %d: %d+%d = %d, want %d", tc.name, n, l, a[l], b[l], sums[l], full&mask)
				}
				if couts[l] != full>>uint(n)&1 {
					t.Fatalf("%s/%d lane %d: carry wrong", tc.name, n, l)
				}
			}
		}
	}
}

func TestSubAndComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 16
	b := NewBuilder("cmp")
	x := b.Input("x", n)
	y := b.Input("y", n)
	diff, noBorrow := b.Sub(x, y)
	b.Output("d", diff)
	b.G.AddPO("nb", noBorrow)
	b.G.AddPO("lt", b.LessUnsigned(x, y))
	b.G.AddPO("eq", b.Equal(x, y))
	xv := randVals(rng, 64, n)
	yv := randVals(rng, 64, n)
	xv[0], yv[0] = 5, 5 // force an equal pair
	pos := b.G.Simulate(packWords([]int{n, n}, [][]uint64{xv, yv}))
	d := unpackWord(pos, 0, n, 64)
	nb := unpackWord(pos, n, 1, 64)
	lt := unpackWord(pos, n+1, 1, 64)
	eq := unpackWord(pos, n+2, 1, 64)
	mask := uint64(1)<<n - 1
	for l := 0; l < 64; l++ {
		if d[l] != (xv[l]-yv[l])&mask {
			t.Fatalf("sub lane %d wrong", l)
		}
		if (nb[l] == 1) != (xv[l] >= yv[l]) {
			t.Fatalf("noBorrow lane %d wrong", l)
		}
		if (lt[l] == 1) != (xv[l] < yv[l]) {
			t.Fatalf("less lane %d wrong", l)
		}
		if (eq[l] == 1) != (xv[l] == yv[l]) {
			t.Fatalf("equal lane %d wrong", l)
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{4, 8, 12} {
		g := ArrayMultiplier(n)
		a := randVals(rng, 64, n)
		b := randVals(rng, 64, n)
		pos := g.Simulate(packWords([]int{n, n}, [][]uint64{a, b}))
		p := unpackWord(pos, 0, 2*n, 64)
		for l := 0; l < 64; l++ {
			if p[l] != a[l]*b[l] {
				t.Fatalf("mul%d lane %d: %d*%d = %d, want %d", n, l, a[l], b[l], p[l], a[l]*b[l])
			}
		}
	}
}

func TestBoothMultiplierSigned(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{4, 8, 16} {
		g := BoothMultiplier(n)
		a := randVals(rng, 64, n)
		b := randVals(rng, 64, n)
		// Include corner cases.
		a[0], b[0] = uint64(1)<<uint(n-1), uint64(1)<<uint(n-1) // most negative
		a[1], b[1] = 0, uint64(1)<<uint(n)-1
		pos := g.Simulate(packWords([]int{n, n}, [][]uint64{a, b}))
		p := unpackWord(pos, 0, 2*n, 64)
		signExt := func(v uint64) int64 {
			shift := uint(64 - n)
			return int64(v<<shift) >> shift
		}
		mask := uint64(1)<<uint(2*n) - 1
		for l := 0; l < 64; l++ {
			want := uint64(signExt(a[l])*signExt(b[l])) & mask
			if p[l] != want {
				t.Fatalf("booth%d lane %d: %d*%d = %#x, want %#x", n, l, signExt(a[l]), signExt(b[l]), p[l], want)
			}
		}
	}
}

func TestSquarer(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{4, 8, 16} {
		g := Squarer(n)
		a := randVals(rng, 64, n)
		a[0] = uint64(1)<<uint(n) - 1
		pos := g.Simulate(packWords([]int{n}, [][]uint64{a}))
		p := unpackWord(pos, 0, 2*n, 64)
		for l := 0; l < 64; l++ {
			if p[l] != a[l]*a[l] {
				t.Fatalf("square%d lane %d: %d^2 = %d, want %d", n, l, a[l], p[l], a[l]*a[l])
			}
		}
	}
}

func TestBarrelShifter(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	const w = 32
	g := BarrelShifter(w)
	d := randVals(rng, 64, w)
	sh := randVals(rng, 64, 5)
	pos := g.Simulate(packWords([]int{w, 5}, [][]uint64{d, sh}))
	q := unpackWord(pos, 0, w, 64)
	mask := uint64(1)<<w - 1
	for l := 0; l < 64; l++ {
		k := sh[l] % w
		want := (d[l]<<k | d[l]>>(w-k)) & mask
		if k == 0 {
			want = d[l]
		}
		if q[l] != want {
			t.Fatalf("rotl lane %d: rot(%#x,%d) = %#x, want %#x", l, d[l], k, q[l], want)
		}
	}
}

func TestVariableShifts(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const w = 32
	b := NewBuilder("sh")
	x := b.Input("x", w)
	sh := b.Input("sh", 5)
	b.Output("sll", b.ShiftLeftVar(x, sh))
	b.Output("srl", b.ShiftRightLogic(x, sh, false))
	b.Output("sra", b.ShiftRightLogic(x, sh, true))
	xv := randVals(rng, 64, w)
	sv := randVals(rng, 64, 5)
	pos := b.G.Simulate(packWords([]int{w, 5}, [][]uint64{xv, sv}))
	sll := unpackWord(pos, 0, w, 64)
	srl := unpackWord(pos, w, w, 64)
	sra := unpackWord(pos, 2*w, w, 64)
	mask := uint64(1)<<w - 1
	for l := 0; l < 64; l++ {
		k := uint(sv[l] % 32)
		if sll[l] != xv[l]<<k&mask {
			t.Fatalf("sll lane %d wrong", l)
		}
		if srl[l] != xv[l]>>k {
			t.Fatalf("srl lane %d wrong", l)
		}
		wantSra := uint64(int32(uint32(xv[l]))>>k) & mask
		if sra[l] != wantSra {
			t.Fatalf("sra lane %d: %#x >> %d = %#x, want %#x", l, xv[l], k, sra[l], wantSra)
		}
	}
}

func TestMulConst(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	const n = 24
	for _, c := range []uint64{0, 1, 3, 10, 0x55, 12345} {
		b := NewBuilder("mc")
		x := b.Input("x", n)
		b.Output("p", b.MulConst(x, c))
		xv := randVals(rng, 64, n)
		pos := b.G.Simulate(packWords([]int{n}, [][]uint64{xv}))
		p := unpackWord(pos, 0, n, 64)
		mask := uint64(1)<<n - 1
		for l := 0; l < 64; l++ {
			if p[l] != xv[l]*c&mask {
				t.Fatalf("mulconst %d lane %d wrong", c, l)
			}
		}
	}
}

func TestMaxTree(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	const k, w = 4, 16
	g := MaxTree(k, w)
	vals := make([][]uint64, k)
	for i := range vals {
		vals[i] = randVals(rng, 64, w)
	}
	widths := []int{w, w, w, w}
	pos := g.Simulate(packWords(widths, vals))
	m := unpackWord(pos, 0, w, 64)
	for l := 0; l < 64; l++ {
		want := uint64(0)
		for i := 0; i < k; i++ {
			if vals[i][l] > want {
				want = vals[i][l]
			}
		}
		if m[l] != want {
			t.Fatalf("max lane %d: got %d want %d", l, m[l], want)
		}
	}
}

func TestALUCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	const w = 16
	g := ALUCompare(w)
	a := randVals(rng, 64, w)
	b := randVals(rng, 64, w)
	a[0], b[0] = 9, 9
	pos := g.Simulate(packWords([]int{w, w}, [][]uint64{a, b}))
	sum := unpackWord(pos, 0, w, 64)
	lt := unpackWord(pos, w+1, 1, 64)
	eq := unpackWord(pos, w+2, 1, 64)
	gt := unpackWord(pos, w+3, 1, 64)
	pa := unpackWord(pos, w+4, 1, 64)
	mask := uint64(1)<<w - 1
	parity := func(v uint64) uint64 {
		var p uint64
		for v != 0 {
			p ^= v & 1
			v >>= 1
		}
		return p
	}
	for l := 0; l < 64; l++ {
		if sum[l] != (a[l]+b[l])&mask {
			t.Fatalf("sum lane %d wrong", l)
		}
		if (lt[l] == 1) != (a[l] < b[l]) || (eq[l] == 1) != (a[l] == b[l]) || (gt[l] == 1) != (a[l] > b[l]) {
			t.Fatalf("comparison lane %d wrong", l)
		}
		if pa[l] != parity(a[l]) {
			t.Fatalf("parity lane %d wrong", l)
		}
	}
}

func TestSinePoly(t *testing.T) {
	const n = 12
	g := SinePoly(n)
	rng := rand.New(rand.NewSource(21))
	x := randVals(rng, 64, n)
	pos := g.Simulate(packWords([]int{n}, [][]uint64{x}))
	s := unpackWord(pos, 0, n, 64)
	scale := float64(uint64(1) << n)
	for l := 0; l < 64; l++ {
		xf := float64(x[l]) / scale
		want := math.Sin(xf)
		got := float64(s[l]) / scale
		// Fixed-point truncation and the 2-term-truncated Taylor series
		// bound the error; 2% absolute is ample for x in [0,1).
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("sin(%f) = %f, want ~%f", xf, got, want)
		}
	}
}

func TestSBoxLogicMatchesTable(t *testing.T) {
	tbl := SBoxTable()
	// Sanity-check a few known AES S-box values first.
	known := map[int]byte{0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16}
	for in, want := range known {
		if tbl[in] != want {
			t.Fatalf("sbox[%#x] = %#x, want %#x (table generation wrong)", in, tbl[in], want)
		}
	}
	b := NewBuilder("sbox")
	in := b.Input("x", 8)
	b.Output("y", sboxLogic(b, in, &tbl))
	// Exhaustive check over all 256 inputs, 64 lanes at a time.
	for base := 0; base < 256; base += 64 {
		vals := make([]uint64, 64)
		for l := range vals {
			vals[l] = uint64(base + l)
		}
		pos := b.G.Simulate(packWords([]int{8}, [][]uint64{vals}))
		out := unpackWord(pos, 0, 8, 64)
		for l := 0; l < 64; l++ {
			if byte(out[l]) != tbl[base+l] {
				t.Fatalf("sbox logic wrong at %#x: got %#x want %#x", base+l, out[l], tbl[base+l])
			}
		}
	}
}

func TestAESFullMatchesCryptoAES(t *testing.T) {
	g := AES(10)
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 4; trial++ {
		var pt, key [16]byte
		rng.Read(pt[:])
		rng.Read(key[:])
		// One lane only: replicate scalar bits.
		piVals := make([][]uint64, 32)
		widths := make([]int, 32)
		for i := 0; i < 16; i++ {
			widths[i] = 8
			piVals[i] = []uint64{uint64(pt[i])}
		}
		for i := 0; i < 16; i++ {
			widths[16+i] = 8
			piVals[16+i] = []uint64{uint64(key[i])}
		}
		pos := g.Simulate(packWords(widths, piVals))
		var got [16]byte
		for i := 0; i < 16; i++ {
			got[i] = byte(unpackWord(pos, 8*i, 8, 1)[0])
		}
		block, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		var want [16]byte
		block.Encrypt(want[:], pt[:])
		if got != want {
			t.Fatalf("AES mismatch:\n got %x\nwant %x", got, want)
		}
	}
}

func TestAESScaledRoundsBuild(t *testing.T) {
	for _, r := range []int{1, 2} {
		g := AES(r)
		if g.NumAnds() == 0 || g.NumPIs() != 256 || g.NumPOs() != 128 {
			t.Fatalf("AES(%d) malformed: %s", r, g.Stats())
		}
	}
}

func TestRiscVCore(t *testing.T) {
	g := RiscVCore()
	run := func(instr, rs1, rs2, pc uint32) (wb, nextPC, memAddr uint32, takeBr bool) {
		pis := packWords([]int{32, 32, 32, 32},
			[][]uint64{{uint64(instr)}, {uint64(rs1)}, {uint64(rs2)}, {uint64(pc)}})
		pos := g.Simulate(pis)
		wb = uint32(unpackWord(pos, 0, 32, 1)[0])
		nextPC = uint32(unpackWord(pos, 32, 32, 1)[0])
		memAddr = uint32(unpackWord(pos, 64, 32, 1)[0])
		takeBr = unpackWord(pos, 96, 1, 1)[0] == 1
		return
	}
	// add x?, rs1, rs2 : R-type opcode 0110011 funct3 000 funct7 0000000
	enc := func(funct7, rs2f, rs1f, funct3, rd, opcode uint32) uint32 {
		return funct7<<25 | rs2f<<20 | rs1f<<15 | funct3<<12 | rd<<5>>5<<7 | opcode
	}
	if wb, _, _, _ := run(enc(0, 2, 1, 0b000, 3, 0b0110011), 100, 23, 0); wb != 123 {
		t.Errorf("ADD: wb = %d, want 123", wb)
	}
	if wb, _, _, _ := run(enc(0b0100000, 2, 1, 0b000, 3, 0b0110011), 100, 23, 0); wb != 77 {
		t.Errorf("SUB: wb = %d, want 77", wb)
	}
	if wb, _, _, _ := run(enc(0, 2, 1, 0b100, 3, 0b0110011), 0xF0F0, 0x0FF0, 0); wb != 0xFF00 {
		t.Errorf("XOR: wb = %#x, want 0xFF00", wb)
	}
	if wb, _, _, _ := run(enc(0, 2, 1, 0b001, 3, 0b0110011), 1, 4, 0); wb != 16 {
		t.Errorf("SLL: wb = %d, want 16", wb)
	}
	if wb, _, _, _ := run(enc(0b0100000, 2, 1, 0b101, 3, 0b0110011), 0x80000000, 4, 0); wb != 0xF8000000 {
		t.Errorf("SRA: wb = %#x, want 0xF8000000", wb)
	}
	// addi x3, x1, -5 : imm=0xFFB opcode 0010011
	addi := uint32(0xFFB)<<20 | 1<<15 | 0b000<<12 | 3<<7 | 0b0010011
	if wb, _, _, _ := run(addi, 100, 0, 0); wb != 95 {
		t.Errorf("ADDI: wb = %d, want 95", wb)
	}
	// beq taken: opcode 1100011 funct3 000, offset +8 (imm[3:1]=100 -> instr[11:8]=0100)
	beq := uint32(0b0100<<8 | 0b000<<12 | 0b1100011)
	if _, nextPC, _, br := run(beq, 7, 7, 0x1000); !br || nextPC != 0x1008 {
		t.Errorf("BEQ taken: br=%v nextPC=%#x, want true 0x1008", br, nextPC)
	}
	if _, nextPC, _, br := run(beq, 7, 8, 0x1000); br || nextPC != 0x1004 {
		t.Errorf("BEQ not taken: br=%v nextPC=%#x, want false 0x1004", br, nextPC)
	}
	// lui x3, 0xABCDE
	lui := uint32(0xABCDE)<<12 | 3<<7 | 0b0110111
	if wb, _, _, _ := run(lui, 0, 0, 0); wb != 0xABCDE000 {
		t.Errorf("LUI: wb = %#x, want 0xABCDE000", wb)
	}
	// lw x3, 12(x1): mem_addr = rs1 + 12
	lw := uint32(12)<<20 | 1<<15 | 0b010<<12 | 3<<7 | 0b0000011
	if _, _, addr, _ := run(lw, 0x2000, 0, 0); addr != 0x200C {
		t.Errorf("LW addr = %#x, want 0x200C", addr)
	}
	// slt: 5 < -3 signed is false; sltu: 5 < 0xFFFFFFFD is true
	if wb, _, _, _ := run(enc(0, 2, 1, 0b010, 3, 0b0110011), 5, 0xFFFFFFFD, 0); wb != 0 {
		t.Errorf("SLT signed: wb = %d, want 0", wb)
	}
	if wb, _, _, _ := run(enc(0, 2, 1, 0b011, 3, 0b0110011), 5, 0xFFFFFFFD, 0); wb != 1 {
		t.Errorf("SLTU: wb = %d, want 1", wb)
	}
	// jal x1, +16
	jal := uint32(16>>1)<<21 | 1<<7 | 0b1101111
	if wb, nextPC, _, _ := run(jal, 0, 0, 0x4000); nextPC != 0x4010 || wb != 0x4004 {
		t.Errorf("JAL: nextPC=%#x wb=%#x, want 0x4010 0x4004", nextPC, wb)
	}
}

func TestGeneratorStats(t *testing.T) {
	// Smoke-test that the Table II generators build non-trivial graphs.
	cases := []struct {
		g       *aig.AIG
		minAnds int
	}{
		{TrainRC16(), 50},
		{TrainCLA16(), 50},
		{PrefixAdder(64), 300},
		{BarrelShifter(64), 300},
		{C6288(), 1500},
		{MaxTree(4, 32), 300},
		{RippleCarryAdder(64), 300},
		{C7552(), 300},
		{BoothMultiplier(16), 1000},
		{Squarer(16), 500},
		{SinePoly(12), 500},
		{RiscVCore(), 1500},
		{AES(1), 3000},
	}
	for _, c := range cases {
		if c.g.NumAnds() < c.minAnds {
			t.Errorf("%s: only %d ANDs, expected at least %d", c.g.Name, c.g.NumAnds(), c.minAnds)
		}
	}
}
