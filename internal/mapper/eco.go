// ECO delta-remapping: when an incoming graph is a small edit of a
// previously mapped baseline, re-enumerating every node's cuts is almost
// entirely wasted work — cut lists are a pure function of a node's fanin
// cone (for cone-local policies), so every node whose cone survived the
// edit would get back exactly the list it had. MapDelta aligns the new
// graph against a Snapshot of the baseline by ordered cone hash, walks the
// dirty frontier (an edited node dirties its entire fanout cone, exactly
// the propagation the level-retirement wavefront bounds), reuses the
// snapshot's cut lists for clean nodes, re-runs the merge/policy pipeline
// only on dirty ones, and then performs the unchanged selection, area
// recovery, buffering and STA finish. The result is byte-identical to a
// full map of the edited graph.
package mapper

import (
	"errors"
	"fmt"
	"unsafe"

	"slap/internal/aig"
	"slap/internal/cuts"
)

// ErrDeltaIneligible reports that the mapping options cannot support delta
// remapping (stateful or non-cone-local policy, or precomputed cut sets);
// callers should fall back to a full map.
var ErrDeltaIneligible = errors.New("mapper: options not eligible for delta remapping")

// ErrSnapshotMismatch reports that the snapshot was captured under a
// different enumeration configuration than the one requested.
var ErrSnapshotMismatch = errors.New("mapper: snapshot enumeration signature mismatch")

// ECOPolicySig returns a signature identifying the enumeration behaviour of
// an ECO-eligible policy, or "" when the policy cannot be delta-remapped.
// Eligible policies are pure per-node functions of the cone under monotone
// id maps: the nil (exhaustive) policy, UnlimitedPolicy and DefaultPolicy
// (length/volume/lexicographic sort + dominance filter + truncation).
// ShufflePolicy carries RNG state across nodes and SingleAttributePolicy
// scores with non-cone-local fanout features, so both are ineligible.
func ECOPolicySig(p cuts.Policy) string {
	switch q := p.(type) {
	case nil:
		return "exhaustive"
	case cuts.UnlimitedPolicy:
		return "unlimited"
	case cuts.DefaultPolicy:
		limit := q.Limit
		if limit == 0 {
			limit = cuts.DefaultCutLimit
		}
		return fmt.Sprintf("abc-default/%d", limit)
	}
	return ""
}

// enumSig extends the policy signature with every knob that changes the
// enumerated lists.
func enumSig(policy cuts.Policy, mergeCap int) string {
	ps := ECOPolicySig(policy)
	if ps == "" {
		return ""
	}
	if mergeCap == 0 {
		mergeCap = cuts.DefaultMergeCap
	}
	return fmt.Sprintf("%s/mc=%d", ps, mergeCap)
}

// cutBytes approximates the in-memory footprint of one Cut.
const cutBytes = int64(unsafe.Sizeof(cuts.Cut{}))

// Snapshot is a reusable record of one full mapping run: the baseline
// graph's ordered cone hashes plus a deep copy of every AND node's
// post-policy cut list (captured via Options.CaptureCuts before the
// mapper's fallback pass mutates them). It is immutable after the run and
// safe for concurrent MapDelta calls.
type Snapshot struct {
	// EnumSig identifies the policy/merge-cap configuration the lists were
	// enumerated under; MapDelta refuses mismatched options.
	EnumSig string

	hashes    []uint64
	sets      [][]cuts.Cut
	leafArena []uint32
	bytes     int64
}

// NewSnapshot prepares a snapshot of g for the given options. Install its
// Capture method as Options.CaptureCuts on the full mapping run that
// produces the baseline result. Returns nil when the options are not
// ECO-eligible (callers may still map, they just cannot delta-remap later).
func NewSnapshot(g *aig.AIG, opt Options) *Snapshot {
	if opt.CutSets != nil {
		return nil
	}
	sig := enumSig(opt.Policy, opt.MergeCap)
	if sig == "" {
		return nil
	}
	hashes := g.ConeHashes()
	return &Snapshot{
		EnumSig: sig,
		hashes:  hashes,
		sets:    make([][]cuts.Cut, g.NumNodes()),
		bytes:   int64(len(hashes))*8 + int64(g.NumNodes())*24,
	}
}

// intern copies ls into the snapshot's chunked leaf storage.
func (s *Snapshot) intern(ls []uint32) []uint32 {
	if len(s.leafArena)+len(ls) > cap(s.leafArena) {
		sz := leafChunk
		if len(ls) > sz {
			sz = len(ls)
		}
		s.leafArena = make([]uint32, 0, sz)
	}
	i := len(s.leafArena)
	s.leafArena = append(s.leafArena, ls...)
	return s.leafArena[i : i+len(ls) : i+len(ls)]
}

// Capture deep-copies one node's post-policy cut list into the snapshot.
// It matches the Options.CaptureCuts hook signature. Calls arrive from a
// single goroutine (the enumeration driver), never concurrently.
func (s *Snapshot) Capture(n uint32, cs []cuts.Cut) {
	list := make([]cuts.Cut, len(cs))
	for i := range cs {
		c := cs[i]
		c.Leaves = s.intern(c.Leaves)
		list[i] = c
		s.bytes += cutBytes + int64(len(c.Leaves))*4
	}
	s.sets[n] = list
}

// NodeHashes returns the baseline graph's ordered cone hashes (the
// mapcache nearest-relative scan key).
func (s *Snapshot) NodeHashes() []uint64 { return s.hashes }

// SnapshotBytes estimates the snapshot's memory footprint for cache
// accounting.
func (s *Snapshot) SnapshotBytes() int64 { return s.bytes }

// DeltaStats reports how much work a MapDelta call skipped.
type DeltaStats struct {
	// TotalAnds is the AND-node count of the edited graph.
	TotalAnds int
	// DirtyAnds is the number of AND nodes whose cut lists were recomputed.
	DirtyAnds int
	// ReusedCuts counts cuts translated from the snapshot instead of merged.
	ReusedCuts int
	// DirtyFraction is DirtyAnds / TotalAnds (0 when the graph has no ANDs).
	DirtyFraction float64
}

// MapDelta maps g by reusing the snapshot of a structurally similar
// baseline: clean nodes (cone hash matched, all fanins clean) take their
// cut lists from the snapshot via the alignment's id translation, dirty
// nodes re-run the merge/policy pipeline, and the combined lists feed the
// standard selection/area-recovery/buffer/STA finish. The Result is
// byte-identical to Map(g, opt) — same netlist, QoR and counters — except
// PeakCuts, which always reports the two-phase (fully materialised) value.
func MapDelta(g *aig.AIG, opt Options, snap *Snapshot) (*Result, *DeltaStats, error) {
	if opt.Library == nil {
		return nil, nil, fmt.Errorf("mapper: Options.Library is required")
	}
	if snap == nil || opt.CutSets != nil {
		return nil, nil, ErrDeltaIneligible
	}
	sig := enumSig(opt.Policy, opt.MergeCap)
	if sig == "" {
		return nil, nil, ErrDeltaIneligible
	}
	if sig != snap.EnumSig {
		return nil, nil, fmt.Errorf("%w: have %q, want %q", ErrSnapshotMismatch, snap.EnumSig, sig)
	}

	al := aig.Align(g.ConeHashes(), snap.hashes)
	clean := cleanNodes(g, al)

	// Translate the snapshot's lists for clean nodes through the (monotone)
	// alignment. Leaves live in one contiguous arena sized exactly.
	st := &DeltaStats{}
	var leafNeed int
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		st.TotalAnds++
		if clean[n] {
			for i := range snap.sets[al.NewToOld[n]] {
				leafNeed += len(snap.sets[al.NewToOld[n]][i].Leaves)
			}
		}
	}
	leaves := make([]uint32, 0, leafNeed)
	reuseList := func(n uint32) []cuts.Cut {
		if !clean[n] {
			return nil
		}
		old := snap.sets[al.NewToOld[n]]
		list := make([]cuts.Cut, len(old))
		for i := range old {
			c := old[i]
			base := len(leaves)
			for _, l := range c.Leaves {
				leaves = append(leaves, uint32(al.OldToNew[l]))
			}
			c.Leaves = leaves[base : base+len(c.Leaves) : base+len(c.Leaves)]
			c.Sig = cuts.LeafSig(c.Leaves)
			list[i] = c
		}
		st.ReusedCuts += len(list)
		return list
	}

	e := &cuts.Enumerator{G: g, Policy: opt.Policy, MergeCap: opt.MergeCap}
	res := e.RunWithReuse(reuseList)
	st.DirtyAnds = countDirty(g, clean)
	if st.TotalAnds > 0 {
		st.DirtyFraction = float64(st.DirtyAnds) / float64(st.TotalAnds)
	}

	mopt := opt
	mopt.CutSets = res
	mopt.CaptureCuts = nil
	mres, err := Map(g, mopt)
	if err != nil {
		return nil, nil, err
	}
	// Map reports "precomputed" for supplied cut sets; a delta remap is
	// semantically the original policy's run.
	if opt.Policy != nil {
		mres.PolicyName = opt.Policy.Name()
	} else {
		mres.PolicyName = "exhaustive"
	}
	return mres, st, nil
}

// cleanNodes computes the clean set: a node is clean when its ordered cone
// hash matched the baseline (monotonically) and all its fanins are clean.
// Iterating ids ascending is exactly the level wavefront: an edit dirties
// its whole transitive fanout frontier and nothing else.
func cleanNodes(g *aig.AIG, al *aig.Alignment) []bool {
	clean := make([]bool, g.NumNodes())
	for n := uint32(0); n < uint32(g.NumNodes()); n++ {
		if al.NewToOld[n] < 0 {
			continue
		}
		if g.IsAnd(n) {
			f0, f1 := g.Fanins(n)
			if !clean[f0.Node()] || !clean[f1.Node()] {
				continue
			}
		}
		clean[n] = true
	}
	return clean
}

func countDirty(g *aig.AIG, clean []bool) int {
	dirty := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) && !clean[n] {
			dirty++
		}
	}
	return dirty
}
