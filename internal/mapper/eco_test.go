package mapper

import (
	"bytes"
	"math/rand"
	"testing"

	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/library"
)

// netlistBytes renders a result's netlist to BLIF for byte comparison.
func netlistBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.Netlist.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// requireSameResult pins byte identity between a delta remap and a full
// map: netlist bytes, QoR and all counters except PeakCuts (the streaming
// baseline reports a live-window peak the two-phase delta path cannot).
func requireSameResult(t *testing.T, full, delta *Result) {
	t.Helper()
	if fb, db := netlistBytes(t, full), netlistBytes(t, delta); !bytes.Equal(fb, db) {
		t.Fatalf("netlist bytes differ:\n--- full ---\n%s\n--- delta ---\n%s", fb, db)
	}
	if full.Area != delta.Area || full.Delay != delta.Delay || full.EstimatedDelay != delta.EstimatedDelay {
		t.Fatalf("QoR differs: full area=%v delay=%v est=%v, delta area=%v delay=%v est=%v",
			full.Area, full.Delay, full.EstimatedDelay, delta.Area, delta.Delay, delta.EstimatedDelay)
	}
	if full.CutsConsidered != delta.CutsConsidered || full.MatchAttempts != delta.MatchAttempts {
		t.Fatalf("counters differ: cuts %d/%d, attempts %d/%d",
			full.CutsConsidered, delta.CutsConsidered, full.MatchAttempts, delta.MatchAttempts)
	}
	if full.PolicyName != delta.PolicyName {
		t.Fatalf("policy name differs: %q vs %q", full.PolicyName, delta.PolicyName)
	}
	if len(full.Cover) != len(delta.Cover) {
		t.Fatalf("cover size differs: %d vs %d", len(full.Cover), len(delta.Cover))
	}
	for i := range full.Cover {
		fc, dc := full.Cover[i], delta.Cover[i]
		if fc.Node != dc.Node || fc.Cut.TT != dc.Cut.TT || len(fc.Cut.Leaves) != len(dc.Cut.Leaves) {
			t.Fatalf("cover entry %d differs: %+v vs %+v", i, fc, dc)
		}
		for j := range fc.Cut.Leaves {
			if fc.Cut.Leaves[j] != dc.Cut.Leaves[j] {
				t.Fatalf("cover entry %d leaf %d differs", i, j)
			}
		}
	}
}

// TestMapDeltaByteIdentical is the tentpole pin: across policies × workers
// × streaming on/off, delta-remapping a 5%-edited design yields exactly
// the result of a cold full map, while actually skipping work.
func TestMapDeltaByteIdentical(t *testing.T) {
	lib := library.ASAP7ish()
	base := circuits.ArrayMultiplier(8)
	edited := circuits.Perturb(base, 42, 0.05)

	policies := []struct {
		name string
		p    cuts.Policy
	}{
		{"abc-default", cuts.DefaultPolicy{}},
		{"unlimited", cuts.UnlimitedPolicy{}},
		{"exhaustive-nil", nil},
	}
	for _, pol := range policies {
		for _, workers := range []int{1, 4} {
			for _, streaming := range []bool{false, true} {
				name := pol.name
				if streaming {
					name += "/stream"
				} else {
					name += "/twophase"
				}
				if workers > 1 {
					name += "/par"
				}
				t.Run(name, func(t *testing.T) {
					opt := Options{Library: lib, Policy: pol.p, Workers: workers}
					snap := NewSnapshot(base, opt)
					if snap == nil {
						t.Fatal("options unexpectedly ECO-ineligible")
					}
					capOpt := opt
					capOpt.CaptureCuts = snap.Capture

					var baseRes *Result
					var err error
					if streaming {
						baseRes, err = MapStream(base, capOpt)
					} else {
						baseRes, err = Map(base, capOpt)
					}
					if err != nil {
						t.Fatal(err)
					}
					if baseRes.Netlist == nil {
						t.Fatal("baseline produced no netlist")
					}
					if snap.SnapshotBytes() <= 0 {
						t.Fatal("snapshot captured nothing")
					}

					full, err := Map(edited, opt)
					if err != nil {
						t.Fatal(err)
					}
					delta, st, err := MapDelta(edited, opt, snap)
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, full, delta)
					if delta.PeakCuts != full.PeakCuts {
						t.Fatalf("two-phase peak differs: %d vs %d", delta.PeakCuts, full.PeakCuts)
					}
					if st.DirtyAnds == 0 || st.DirtyAnds >= st.TotalAnds {
						t.Fatalf("dirty cone %d/%d ANDs: edit not detected or nothing reused",
							st.DirtyAnds, st.TotalAnds)
					}
					if st.DirtyFraction > 0.9 {
						t.Fatalf("dirty fraction %.2f too high for a 5%% edit", st.DirtyFraction)
					}
					if st.ReusedCuts == 0 {
						t.Fatal("no cuts reused")
					}
				})
			}
		}
	}
}

// TestMapDeltaIdenticalGraph pins the degenerate ECO: resubmitting the
// unmodified baseline reuses every node and still reproduces the result.
func TestMapDeltaIdenticalGraph(t *testing.T) {
	lib := library.ASAP7ish()
	g := circuits.CarryLookaheadAdder(16)
	opt := Options{Library: lib, Policy: cuts.DefaultPolicy{}}
	snap := NewSnapshot(g, opt)
	capOpt := opt
	capOpt.CaptureCuts = snap.Capture
	full, err := Map(g, capOpt)
	if err != nil {
		t.Fatal(err)
	}
	delta, st, err := MapDelta(g, opt, snap)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, full, delta)
	if st.DirtyAnds != 0 {
		t.Fatalf("identical graph has %d dirty ANDs, want 0", st.DirtyAnds)
	}
}

// TestMapDeltaIneligiblePolicies pins the fallback contract for stateful
// and non-cone-local policies.
func TestMapDeltaIneligiblePolicies(t *testing.T) {
	lib := library.ASAP7ish()
	g := circuits.CarryLookaheadAdder(8)
	for _, p := range []cuts.Policy{
		&cuts.ShufflePolicy{Rng: rand.New(rand.NewSource(1))},
		cuts.SingleAttributePolicy{},
	} {
		opt := Options{Library: lib, Policy: p}
		if snap := NewSnapshot(g, opt); snap != nil {
			t.Fatalf("%T unexpectedly eligible for snapshots", p)
		}
		good := NewSnapshot(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}})
		if _, _, err := MapDelta(g, opt, good); err == nil {
			t.Fatalf("%T delta-remap did not error", p)
		}
	}
	// Mismatched enumeration signatures must be refused too.
	snapA := NewSnapshot(g, Options{Library: lib, Policy: cuts.DefaultPolicy{Limit: 10}})
	if _, _, err := MapDelta(g, Options{Library: lib, Policy: cuts.DefaultPolicy{Limit: 20}}, snapA); err == nil {
		t.Fatal("mismatched cut limits did not error")
	}
}
