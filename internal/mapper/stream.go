// Streaming (fused) mapping: Boolean matching runs inside the cut
// enumeration wavefront instead of after it. A Stream consumes each node's
// finalised cut list the moment its level completes, keeps durable copies
// of only the cuts that can ever matter to the mapper (matchable ones, plus
// the elementary fanin fallback), and runs the delay-optimal selection pass
// incrementally. The enumerator is then free to retire the level's cut
// storage, so peak cut memory is the widest live window rather than the
// whole graph — with results byte-identical to the two-phase Map.
package mapper

import (
	"fmt"
	"math"

	"slap/internal/aig"
	"slap/internal/cuts"
)

// leafChunk is the allocation granularity of the Stream's durable leaf
// storage (uint32 leaves, so 16 KiB per chunk).
const leafChunk = 4096

// Stream is an incremental mapping in progress. Feed it each node's cut
// list via ConsumeNode (in topological order — the streaming enumerator's
// level order guarantees this), then call Finish.
type Stream struct {
	m          *mapping
	noAreaRec  bool
	policyName string

	leafArena []uint32

	// seen counts every cut handed to ConsumeNode plus one per fallback,
	// reproducing Map's CutsConsidered accounting (which counts the
	// post-fallback lists and the fallbacks themselves).
	seen      int
	fallbacks int
	peakCuts  int
}

// NewStream prepares a streaming mapping of g.
func NewStream(g *aig.AIG, opt Options) (*Stream, error) {
	if opt.Library == nil {
		return nil, fmt.Errorf("mapper: Options.Library is required")
	}
	policyName := "exhaustive"
	if opt.Policy != nil {
		policyName = opt.Policy.Name()
	}
	m := newMapping(g, opt.Library, opt.MaxFanout)
	m.sets = make([][]cuts.Cut, g.NumNodes())
	m.configureRounds(&opt)
	m.extras = nil // streaming extras arrive through ConsumeExtras
	return &Stream{m: m, noAreaRec: opt.NoAreaRecovery, policyName: policyName}, nil
}

// internLeaves copies ls into the stream's chunked leaf storage.
func (st *Stream) internLeaves(ls []uint32) []uint32 {
	if len(st.leafArena)+len(ls) > cap(st.leafArena) {
		sz := leafChunk
		if len(ls) > sz {
			sz = len(ls)
		}
		st.leafArena = make([]uint32, 0, sz)
	}
	i := len(st.leafArena)
	st.leafArena = append(st.leafArena, ls...)
	return st.leafArena[i : i+len(ls) : i+len(ls)]
}

// ConsumeNode ingests the finalised cut list of AND node n. The cuts are
// only borrowed (the enumerator may recycle them once this returns):
// matchable ones are copied into stream-owned storage. Retaining only
// matchable cuts is exact — unmatchable and self-referential cuts
// contribute zero match candidates to every selection pass of Map and can
// never be chosen — and the fanin-cut fallback mirrors ensureMappable.
// The delay-optimal selection (Map's pass 1) runs on the spot: every leaf
// of every cut sits at a strictly lower level, so its arrival and flow are
// already final.
func (st *Stream) ConsumeNode(n uint32, cs []cuts.Cut) {
	m := st.m
	st.seen += len(cs)

	kept := 0
	for i := range cs {
		c := &cs[i]
		if containsLeaf(c, n) {
			continue
		}
		if len(m.lib.Matches(c.TT)) > 0 {
			kept++
		}
	}
	var list []cuts.Cut
	if kept > 0 {
		list = make([]cuts.Cut, 0, kept)
		for i := range cs {
			c := &cs[i]
			if containsLeaf(c, n) || len(m.lib.Matches(c.TT)) == 0 {
				continue
			}
			cc := *c
			cc.Leaves = st.internLeaves(c.Leaves)
			list = append(list, cc)
		}
	} else {
		// ensureMappable's fallback: keep the elementary fanin cut so the
		// node stays coverable (it is counted as both an added cut and a
		// member of the final list, as in the two-phase flow).
		list = []cuts.Cut{m.faninCut(n)}
		st.fallbacks++
		st.seen++
	}
	m.sets[n] = list

	// Map's pass 1 (selectDelay) for this node, candidate order preserved.
	bestC := chosen{}
	for ci := range list {
		c := &list[ci]
		for _, match := range m.lib.Matches(c.TT) {
			m.matchAttempts++
			arr, flw := m.evalMatch(n, c, &match)
			cand := chosen{cutIdx: ci, match: match, valid: true, arrival: arr, flow: flw}
			if !bestC.valid || better(selectDelay, &cand, &bestC, m.required[n]) {
				bestC = cand
			}
		}
	}
	if !bestC.valid {
		bestC = chosen{arrival: math.Inf(1), flow: math.Inf(1)}
	}
	m.best[n] = bestC
	m.arrival[n] = bestC.arrival
	m.flow[n] = bestC.flow
}

// ConsumeExtras ingests recovery-only cuts for node n (the multi-round
// engine's wider pool — see Options.ExtraCuts). The cuts are borrowed like
// ConsumeNode's: matchable ones are copied into stream-owned storage and
// join the node's list only after round 1 completes, so the delay round
// stays byte-identical to a single-pass run. No-op unless Rounds > 1.
func (st *Stream) ConsumeExtras(n uint32, cs []cuts.Cut) {
	m := st.m
	if m.rounds <= 1 {
		return
	}
	var list []cuts.Cut
	for i := range cs {
		c := &cs[i]
		if containsLeaf(c, n) || len(m.lib.Matches(c.TT)) == 0 {
			continue
		}
		cc := *c
		cc.Leaves = st.internLeaves(c.Leaves)
		list = append(list, cc)
	}
	if list == nil {
		return
	}
	if m.extras == nil {
		m.extras = make([][]cuts.Cut, m.g.NumNodes())
	}
	m.extras[n] = list
}

// SetPeakCuts records the enumerator's peak live-cut count for the Result.
func (st *Stream) SetPeakCuts(peak int) { st.peakCuts = peak }

// Finish runs area recovery and netlist construction over the retained
// cuts and returns the final Result.
func (st *Stream) Finish() (*Result, error) {
	return st.m.finish(st.noAreaRec, st.policyName, st.fallbacks+st.seen, st.peakCuts)
}

// MapStream runs the fused streaming mapping flow on g: cut enumeration
// and Boolean matching pipelined per wavefront level, with per-level cut
// storage retired as soon as its consumers are merged. The Result — delay,
// area, counters, cover, netlist — is byte-identical to Map for every
// policy (stateful policies degrade to the sequential index-order driver,
// see cuts.Enumerator.RunStream). When opt.Pool is set, cut storage is
// checked out of the arena pool and recycled across runs of the same
// graph.
func MapStream(g *aig.AIG, opt Options) (*Result, error) {
	if opt.CutSets != nil {
		// Precomputed cut lists are already materialised; stream nothing.
		return Map(g, opt)
	}
	st, err := NewStream(g, opt)
	if err != nil {
		return nil, err
	}
	var arena *cuts.Arena
	if opt.Pool != nil {
		arena = opt.Pool.Get(g)
		defer opt.Pool.Put(arena)
	}
	e := &cuts.Enumerator{G: g, Policy: opt.Policy, MergeCap: opt.MergeCap, Workers: opt.Workers, Arena: arena, Choices: opt.Choices}
	res, err := e.RunStream(func(_ int32, nodes []uint32, sets [][]cuts.Cut) error {
		for _, n := range nodes {
			if opt.CaptureCuts != nil {
				opt.CaptureCuts(n, sets[n])
			}
			st.ConsumeNode(n, sets[n])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.SetPeakCuts(res.PeakCuts)
	return st.Finish()
}
