package mapper

import (
	"math/rand"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/library"
)

func mapCircuit(t testing.TB, g *aig.AIG, p cuts.Policy) *Result {
	t.Helper()
	res, err := Map(g, Options{Library: library.ASAP7ish(), Policy: p})
	if err != nil {
		t.Fatalf("Map(%s, %v): %v", g.Name, p, err)
	}
	return res
}

func TestMapTinyAnd(t *testing.T) {
	g := aig.New("and")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("f", g.And(a, b))
	res := mapCircuit(t, g, cuts.DefaultPolicy{})
	if res.Netlist.NumCells() == 0 {
		t.Fatalf("no cells mapped")
	}
	if err := res.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	if res.Delay <= 0 || res.Area <= 0 {
		t.Fatalf("degenerate QoR: %+v", res)
	}
}

func TestMapComplementedPOs(t *testing.T) {
	g := aig.New("cpo")
	a := g.AddPI("a")
	b := g.AddPI("b")
	x := g.And(a, b)
	g.AddPO("f", x.Not())
	g.AddPO("g", x)
	g.AddPO("const0", aig.ConstFalse)
	g.AddPO("const1", aig.ConstTrue)
	g.AddPO("pi", a)
	g.AddPO("piN", b.Not())
	res := mapCircuit(t, g, cuts.DefaultPolicy{})
	if err := res.Netlist.EquivalentTo(g, 8, rand.New(rand.NewSource(2))); err != nil {
		t.Fatal(err)
	}
}

// TestMapEquivalenceAcrossPoliciesAndCircuits is the central integration
// test: every circuit mapped under every policy must remain functionally
// equivalent to its subject graph.
func TestMapEquivalenceAcrossPoliciesAndCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gs := []*aig.AIG{
		circuits.TrainRC16(),
		circuits.TrainCLA16(),
		circuits.ArrayMultiplier(6),
		circuits.BarrelShifter(16),
		circuits.MaxTree(2, 8),
		circuits.ALUCompare(8),
		circuits.BoothMultiplier(6),
	}
	policies := []cuts.Policy{
		cuts.DefaultPolicy{},
		cuts.UnlimitedPolicy{},
		&cuts.ShufflePolicy{Rng: rand.New(rand.NewSource(7))},
		cuts.SingleAttributePolicy{Feature: 2, Descending: true},
		nil, // exhaustive
	}
	for _, g := range gs {
		for _, p := range policies {
			res := mapCircuit(t, g, p)
			if err := res.Netlist.EquivalentTo(g, 4, rng); err != nil {
				t.Fatalf("%s under %s: %v", g.Name, res.PolicyName, err)
			}
			if res.CutsConsidered <= 0 {
				t.Fatalf("%s under %s: no cuts considered", g.Name, res.PolicyName)
			}
		}
	}
}

func TestAreaRecoveryReducesArea(t *testing.T) {
	g := circuits.TrainCLA16()
	lib := library.ASAP7ish()
	noRec, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}, NoAreaRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Area > noRec.Area+1e-9 {
		t.Fatalf("area recovery increased area: %.2f -> %.2f", noRec.Area, rec.Area)
	}
	// Equivalence must hold for both.
	if err := rec.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(4))); err != nil {
		t.Fatal(err)
	}
	if err := noRec.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(5))); err != nil {
		t.Fatal(err)
	}
}

func TestUnlimitedConsidersMoreCutsThanDefault(t *testing.T) {
	g := circuits.TrainCLA16()
	lib := library.ASAP7ish()
	def, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	unl, err := Map(g, Options{Library: lib, Policy: cuts.UnlimitedPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if unl.CutsConsidered <= def.CutsConsidered {
		t.Fatalf("unlimited cuts %d <= default cuts %d", unl.CutsConsidered, def.CutsConsidered)
	}
}

func TestShuffleSeedsProduceQoRSpread(t *testing.T) {
	g := circuits.TrainRC16()
	lib := library.ASAP7ish()
	delays := make(map[int64]float64)
	distinct := map[float64]bool{}
	for seed := int64(0); seed < 8; seed++ {
		res, err := Map(g, Options{
			Library: lib,
			Policy:  &cuts.ShufflePolicy{Rng: rand.New(rand.NewSource(seed)), Limit: 4},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Netlist.EquivalentTo(g, 2, rand.New(rand.NewSource(seed+100))); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		delays[seed] = res.Delay
		distinct[res.Delay] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("random shuffling produced no QoR spread: %v", delays)
	}
}

func TestPrecomputedCutSets(t *testing.T) {
	g := circuits.TrainRC16()
	lib := library.ASAP7ish()
	e := &cuts.Enumerator{G: g, Policy: cuts.DefaultPolicy{}}
	res := e.Run()
	out, err := Map(g, Options{Library: lib, CutSets: res})
	if err != nil {
		t.Fatal(err)
	}
	if out.PolicyName != "precomputed" {
		t.Fatalf("PolicyName = %q", out.PolicyName)
	}
	if err := out.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(6))); err != nil {
		t.Fatal(err)
	}
}

func TestTrivialOnlyCutSetsStillMappable(t *testing.T) {
	// A policy that keeps only the trivial cut forces the mapper's
	// elementary-fanin-cut fallback on every node.
	g := circuits.TrainRC16()
	out, err := Map(g, Options{Library: library.ASAP7ish(), Policy: trivialOnlyPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
}

type trivialOnlyPolicy struct{}

func (trivialOnlyPolicy) Process(g *aig.AIG, n uint32, cs []cuts.Cut) []cuts.Cut {
	return nil
}
func (trivialOnlyPolicy) Name() string { return "trivial-only" }

func TestMaxFanoutBuffering(t *testing.T) {
	lib := library.ASAP7ish()
	// The S-box-style BDD logic of AES creates very high-fanout nets.
	g := circuits.ArrayMultiplier(10)
	buffered, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := buffered.Netlist.MaxFanout(); got > DefaultMaxFanout {
		t.Fatalf("default flow left fanout %d > %d", got, DefaultMaxFanout)
	}
	unbuffered, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}, MaxFanout: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := buffered.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(31))); err != nil {
		t.Fatal(err)
	}
	if err := unbuffered.Netlist.EquivalentTo(g, 4, rand.New(rand.NewSource(32))); err != nil {
		t.Fatal(err)
	}
	// Buffering adds cells but must never be disastrous for area.
	if buffered.Netlist.NumCells() < unbuffered.Netlist.NumCells() {
		t.Fatalf("buffered netlist has fewer cells than unbuffered")
	}
}

func TestEstimatedDelayTracksSTA(t *testing.T) {
	lib := library.ASAP7ish()
	g := circuits.CarryLookaheadAdder(24)
	res, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstimatedDelay <= 0 {
		t.Fatalf("no delay estimate recorded")
	}
	// The estimate ignores buffer insertion, so STA may exceed it, but the
	// two must stay within a small factor on a buffer-light design.
	if res.Delay > 2.5*res.EstimatedDelay || res.EstimatedDelay > 2.5*res.Delay {
		t.Fatalf("estimate %.1f and STA %.1f diverge wildly", res.EstimatedDelay, res.Delay)
	}
}

func TestMissingLibraryRejected(t *testing.T) {
	g := circuits.TrainRC16()
	if _, err := Map(g, Options{}); err == nil {
		t.Fatalf("Map without a library must fail")
	}
}

func TestADP(t *testing.T) {
	r := &Result{Area: 10, Delay: 5}
	if r.ADP() != 50 {
		t.Fatalf("ADP = %f", r.ADP())
	}
}

func TestDelayDominatedByCriticalPath(t *testing.T) {
	// The mapped delay of a ripple adder must grow with width.
	lib := library.ASAP7ish()
	d8, err := Map(circuits.RippleCarryAdder(8), Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	d32, err := Map(circuits.RippleCarryAdder(32), Options{Library: lib, Policy: cuts.DefaultPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if d32.Delay <= d8.Delay {
		t.Fatalf("rc32 delay %.1f should exceed rc8 delay %.1f", d32.Delay, d8.Delay)
	}
}

func BenchmarkMapDefault(b *testing.B) {
	g := circuits.TrainCLA16()
	lib := library.ASAP7ish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMapUnlimited(b *testing.B) {
	g := circuits.TrainCLA16()
	lib := library.ASAP7ish()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(g, Options{Library: lib, Policy: cuts.UnlimitedPolicy{}}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMapRandomAIGsProperty maps pseudo-random AIGs under the default flow
// and checks the core guarantees: functional equivalence, bounded fanout,
// positive QoR.
func TestMapRandomAIGsProperty(t *testing.T) {
	lib := library.ASAP7ish()
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := aig.New("rand")
		lits := []aig.Lit{}
		for i := 0; i < 6; i++ {
			lits = append(lits, g.AddPI(""))
		}
		for i := 0; i < 80; i++ {
			a := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			b := lits[rng.Intn(len(lits))].NotIf(rng.Intn(2) == 1)
			lits = append(lits, g.And(a, b))
		}
		nPOs := 0
		for i := 0; i < 5; i++ {
			l := lits[len(lits)-1-rng.Intn(10)].NotIf(rng.Intn(2) == 1)
			g.AddPO("", l)
			nPOs++
		}
		res, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.Netlist.EquivalentTo(g, 4, rng); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Netlist.MaxFanout() > DefaultMaxFanout {
			t.Fatalf("seed %d: fanout bound violated", seed)
		}
		if g.NumAnds() > 0 && (res.Delay <= 0 || res.Area <= 0) {
			t.Fatalf("seed %d: degenerate QoR", seed)
		}
	}
}
