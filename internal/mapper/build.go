package mapper

import (
	"fmt"

	"slap/internal/aig"
	"slap/internal/netlist"
)

// buildNetlist materialises the selected cover as a gate-level netlist.
// Polarity is handled with shared inverters: each subject node has at most
// one positive and one negative net, created lazily, so a signal consumed
// in both polarities pays for a single inverter.
func (m *mapping) buildNetlist() (*netlist.Netlist, error) {
	g := m.g
	nl := netlist.New(g.Name)

	posNet := make([]netlist.Net, g.NumNodes())
	negNet := make([]netlist.Net, g.NumNodes())
	for i := range posNet {
		posNet[i] = -1
		negNet[i] = -1
	}
	for i, pi := range g.PIs() {
		posNet[pi] = nl.AddPI(g.PIName(i))
	}

	// getNet returns the net of a node in the requested polarity, adding a
	// shared inverter when only the opposite polarity exists.
	getNet := func(node uint32, compl bool) (netlist.Net, error) {
		if g.IsConst(node) {
			if compl {
				return netlist.Const1, nil
			}
			return netlist.Const0, nil
		}
		if compl {
			if negNet[node] >= 0 {
				return negNet[node], nil
			}
			if posNet[node] < 0 {
				return -1, fmt.Errorf("mapper: node %d used before mapping", node)
			}
			negNet[node] = nl.AddCell(m.lib.Inv, []netlist.Net{posNet[node]})
			return negNet[node], nil
		}
		if posNet[node] >= 0 {
			return posNet[node], nil
		}
		if negNet[node] < 0 {
			return -1, fmt.Errorf("mapper: node %d used before mapping", node)
		}
		posNet[node] = nl.AddCell(m.lib.Inv, []netlist.Net{negNet[node]})
		return posNet[node], nil
	}

	cover := m.coverNodes()
	for _, n := range cover {
		b := &m.best[n]
		if !b.valid {
			return nil, fmt.Errorf("mapper: covered node %d has no match (policy removed all matchable cuts)", n)
		}
		c := &m.sets[n][b.cutIdx]
		gate := b.match.Gate
		pins := make([]netlist.Net, gate.NumPins)
		for i := 0; i < gate.NumPins; i++ {
			leaf := c.Leaves[b.match.Perm[i]]
			compl := b.match.Phase>>uint(i)&1 == 1
			net, err := getNet(leaf, compl)
			if err != nil {
				return nil, err
			}
			pins[i] = net
		}
		out := nl.AddCell(gate, pins)
		if b.match.OutNeg {
			negNet[n] = out
		} else {
			posNet[n] = out
		}
	}

	for _, po := range g.POs() {
		net, err := poNet(g, po.Lit, getNet)
		if err != nil {
			return nil, err
		}
		nl.AddPO(po.Name, net)
	}
	return nl, nil
}

func poNet(g *aig.AIG, lit aig.Lit, getNet func(uint32, bool) (netlist.Net, error)) (netlist.Net, error) {
	return getNet(lit.Node(), lit.IsCompl())
}
