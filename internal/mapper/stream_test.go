package mapper

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/cuts"
	"slap/internal/library"
)

// requireSameMapping asserts two mapping results are byte-identical:
// metrics, counters, the chosen cover, and the emitted netlist.
func requireSameMapping(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if want.Delay != got.Delay || want.Area != got.Area {
		t.Fatalf("%s: delay/area (%v, %v), want (%v, %v)", name, got.Delay, got.Area, want.Delay, want.Area)
	}
	if want.EstimatedDelay != got.EstimatedDelay {
		t.Fatalf("%s: estimated delay %v, want %v", name, got.EstimatedDelay, want.EstimatedDelay)
	}
	if want.CutsConsidered != got.CutsConsidered {
		t.Fatalf("%s: cuts considered %d, want %d", name, got.CutsConsidered, want.CutsConsidered)
	}
	if want.MatchAttempts != got.MatchAttempts {
		t.Fatalf("%s: match attempts %d, want %d", name, got.MatchAttempts, want.MatchAttempts)
	}
	if len(want.Cover) != len(got.Cover) {
		t.Fatalf("%s: cover size %d, want %d", name, len(got.Cover), len(want.Cover))
	}
	for i := range want.Cover {
		w, g := &want.Cover[i], &got.Cover[i]
		if w.Node != g.Node || w.Cut.Sig != g.Cut.Sig || len(w.Cut.Leaves) != len(g.Cut.Leaves) {
			t.Fatalf("%s: cover[%d] = node %d cut %v, want node %d cut %v",
				name, i, g.Node, g.Cut.Leaves, w.Node, w.Cut.Leaves)
		}
		for j := range w.Cut.Leaves {
			if w.Cut.Leaves[j] != g.Cut.Leaves[j] {
				t.Fatalf("%s: cover[%d] leaves %v, want %v", name, i, g.Cut.Leaves, w.Cut.Leaves)
			}
		}
	}
	var wb, gb bytes.Buffer
	if err := want.Netlist.WriteBLIF(&wb); err != nil {
		t.Fatalf("%s: WriteBLIF(want): %v", name, err)
	}
	if err := got.Netlist.WriteBLIF(&gb); err != nil {
		t.Fatalf("%s: WriteBLIF(got): %v", name, err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatalf("%s: netlist BLIF bytes differ (%d vs %d bytes)", name, gb.Len(), wb.Len())
	}
}

// TestStreamingMatchesTwoPhase is the fused-pipeline determinism matrix:
// streaming MapStream must reproduce two-phase Map byte for byte across
// graphs, policies (including the stateful ShufflePolicy, which exercises
// the sequential degradation gate), worker counts, and arena pooling.
func TestStreamingMatchesTwoPhase(t *testing.T) {
	lib := library.ASAP7ish()
	graphs := []*aig.AIG{
		circuits.TrainRC16(),
		circuits.CarryLookaheadAdder(16),
		circuits.BoothMultiplier(8),
	}
	for seed := int64(1); seed <= 2; seed++ {
		graphs = append(graphs, circuits.RandomAIG(seed, 24, 700))
	}
	type policyCase struct {
		name string
		mk   func() cuts.Policy
	}
	policies := []policyCase{
		{"nil", func() cuts.Policy { return nil }},
		{"default", func() cuts.Policy { return cuts.DefaultPolicy{} }},
		{"default8", func() cuts.Policy { return cuts.DefaultPolicy{Limit: 8} }},
		{"single-attr", func() cuts.Policy { return cuts.SingleAttributePolicy{Feature: 2, Descending: true} }},
		{"shuffle", func() cuts.Policy { return &cuts.ShufflePolicy{Rng: rand.New(rand.NewSource(7)), Limit: 16} }},
	}
	pool := cuts.NewPool(4)
	for _, g := range graphs {
		for _, pc := range policies {
			want, err := Map(g, Options{Library: lib, Policy: pc.mk(), Workers: 1})
			if err != nil {
				t.Fatalf("%s/%s: Map: %v", g.Name, pc.name, err)
			}
			for _, workers := range []int{1, 2, 4, 7} {
				for _, pooled := range []bool{false, true} {
					opt := Options{Library: lib, Policy: pc.mk(), Workers: workers}
					if pooled {
						opt.Pool = pool
					}
					got, err := MapStream(g, opt)
					if err != nil {
						t.Fatalf("%s/%s: MapStream: %v", g.Name, pc.name, err)
					}
					name := fmt.Sprintf("%s/%s/workers=%d/pool=%v", g.Name, pc.name, workers, pooled)
					requireSameMapping(t, name, want, got)
					if got.PeakCuts <= 0 {
						t.Fatalf("%s: PeakCuts=%d not populated", name, got.PeakCuts)
					}
				}
			}
		}
	}
}

// TestStreamingNoAreaRecovery covers the delay-only flow (area passes off).
func TestStreamingNoAreaRecovery(t *testing.T) {
	lib := library.ASAP7ish()
	g := circuits.BoothMultiplier(8)
	want, err := Map(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}, NoAreaRecovery: true, Workers: 1})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	got, err := MapStream(g, Options{Library: lib, Policy: cuts.DefaultPolicy{}, NoAreaRecovery: true, Workers: 2})
	if err != nil {
		t.Fatalf("MapStream: %v", err)
	}
	requireSameMapping(t, "no-area-recovery", want, got)
}

// TestStreamingPeakBelowTotal documents the point of the fused pipeline: on
// a deep circuit the live cut window stays well under the full universe.
func TestStreamingPeakBelowTotal(t *testing.T) {
	lib := library.ASAP7ish()
	g := circuits.BoothMultiplier(8)
	r, err := MapStream(g, Options{Library: lib, Workers: 1})
	if err != nil {
		t.Fatalf("MapStream: %v", err)
	}
	two, err := Map(g, Options{Library: lib, Workers: 1})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if r.PeakCuts >= two.PeakCuts {
		t.Fatalf("streaming peak %d not below two-phase peak %d", r.PeakCuts, two.PeakCuts)
	}
	if math.IsInf(r.Delay, 0) || r.Delay <= 0 {
		t.Fatalf("bad delay %v", r.Delay)
	}
}
