// Package mapper implements an ABC-style standard-cell technology mapper
// over AIG subject graphs: priority-cuts enumeration (delegated to the cuts
// package and its pluggable policy), NPN Boolean matching against a cell
// library, delay-optimal cover selection, and two area-recovery passes
// (global area flow and exact local area), mirroring the mapper of
// Chatterjee et al. that the paper modifies.
//
// The cut sorting/filtering policy is the only lever the SLAP experiments
// move; everything downstream of the cut lists (matching, arrival-time
// computation, cover selection, area recovery) is identical across flows,
// exactly as in the paper's framework.
package mapper

import (
	"fmt"
	"math"

	"slap/internal/aig"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/netlist"
)

// Options configures a mapping run.
type Options struct {
	// Library is the target standard-cell library (required).
	Library *library.Library
	// Policy is the cut sorting/filtering policy used during enumeration;
	// nil enumerates exhaustively (subject to MergeCap).
	Policy cuts.Policy
	// MergeCap bounds per-node cut lists during enumeration (0 = default).
	MergeCap int
	// CutSets supplies precomputed (e.g. ML-filtered) cut lists, bypassing
	// enumeration — the paper's read_cuts flow. When set, Policy and
	// MergeCap are ignored.
	CutSets *cuts.Result
	// NoAreaRecovery disables the area-flow and exact-area passes,
	// producing the pure delay-optimal cover.
	NoAreaRecovery bool
	// MaxFanout bounds net fanout in the final netlist: higher-fanout nets
	// are split with balanced buffer trees (the standard post-mapping
	// buffering step), and the mapper's load estimates are capped to match.
	// Zero means DefaultMaxFanout; negative disables buffering.
	MaxFanout int
	// Workers bounds cut-enumeration parallelism: 0 = one worker per CPU
	// core, 1 = sequential. Parallel and sequential enumeration produce
	// identical cut sets (see cuts.Enumerator.Workers).
	Workers int
	// Pool, when set, lets the streaming path (MapStream) check cut-arena
	// storage in and out across runs of the same graph shape. Ignored by the
	// two-phase Map.
	Pool *cuts.Pool
	// CaptureCuts, when set, observes every AND node's finalised
	// post-policy cut list exactly once, before the mapper's fallback pass
	// can mutate it and (on the streaming path) before the enumerator
	// retires its storage — the hook must copy anything it keeps. Invoked
	// from a single goroutine. Ignored when CutSets is supplied. Snapshot.
	// Capture fits this hook to record an ECO baseline.
	CaptureCuts func(n uint32, cs []cuts.Cut)
	// Rounds is the total number of selection rounds. Values <= 1 keep the
	// classic schedule (delay pass + the two recovery passes unless
	// NoAreaRecovery). Values > 1 run the multi-round engine: round 1 is
	// the delay-optimal pass, rounds 2..Rounds re-select the cover by area
	// flow under required times frozen from the round-1 delay (scaled by
	// DelayFactor), with an exact-area refinement on the final round.
	// NoAreaRecovery forces single-round behaviour.
	Rounds int
	// DelayFactor scales the round-1 delay into the required-time target of
	// the recovery rounds: 1.0 (and anything below, including the zero
	// value) pins the round-1 optimum, larger values trade slack for area.
	DelayFactor float64
	// Choices exposes functional equivalence classes to cut enumeration so
	// matching sees the union of each class's structural variants (see
	// cuts.ChoiceSource and internal/choice). Ignored when CutSets is set.
	Choices cuts.ChoiceSource
	// ExtraCuts supplies per-node recovery-only cuts (indexed by node id):
	// they join the node's list after round 1 completes, so the delay round
	// stays byte-identical to a single-pass run while later rounds select
	// from a wider, still model-vetted pool. Only consulted when Rounds > 1.
	ExtraCuts [][]cuts.Cut
}

// DefaultMaxFanout is the post-mapping fanout bound.
const DefaultMaxFanout = 16

// Result is the outcome of a mapping run.
type Result struct {
	// Netlist is the mapped gate-level netlist.
	Netlist *netlist.Netlist
	// Area is the netlist area in µm².
	Area float64
	// Delay is the STA circuit delay in ps.
	Delay float64
	// CutsConsidered counts the cuts exposed to Boolean matching — the
	// paper's "Cuts Used" memory-footprint metric.
	CutsConsidered int
	// PeakCuts is the maximum number of simultaneously live cuts during
	// enumeration. Equal to CutsConsidered for the two-phase path (which
	// materialises everything); the streaming path reports the widest live
	// level window.
	PeakCuts int
	// MatchAttempts counts (cut, gate) pairs evaluated.
	MatchAttempts int
	// PolicyName records which policy produced the cut lists.
	PolicyName string
	// EstimatedDelay is the mapper's internal arrival-time estimate of the
	// chosen cover (computed with subject-graph fanout loads); Delay is the
	// realised STA value on the final netlist.
	EstimatedDelay float64
	// Cover lists the chosen (node, cut) pairs of the final cover — the
	// "cuts used to deliver the mapping" that become training datapoints in
	// the SLAP data-generation flow.
	Cover []CoverEntry
	// RoundStats records per-round QoR when the multi-round engine ran
	// (Options.Rounds > 1); nil for the classic schedule. Entry 0 is the
	// delay round, whose CutsConsidered/PeakCuts equal the single-pass
	// numbers; CutsConsidered and PeakCuts above aggregate across rounds
	// (sum and max respectively).
	RoundStats []RoundStat
}

// RoundStat is the per-round QoR and cost record of one multi-round pass.
type RoundStat struct {
	// Round is 1-based; round 1 is always the delay-optimal pass.
	Round int
	// Mode names the selection goal: "delay", "area-flow" or
	// "area-flow+exact" (final round).
	Mode string
	// EstArea is the summed cell area of the round's cover (polarity
	// inverters included, PO buffering excluded).
	EstArea float64
	// EstDelay is the mapper's arrival-time estimate after the round.
	EstDelay float64
	// CutsConsidered counts cuts exposed to matching this round: the full
	// enumeration total for round 1, matchable candidates examined for
	// recovery rounds. Identical across the streaming and two-phase paths.
	CutsConsidered int
	// PeakCuts is the enumeration peak for round 1 and the live matchable
	// candidate count for recovery rounds.
	PeakCuts int
	// MatchAttempts counts (cut, gate) pairs evaluated this round.
	MatchAttempts int
}

// CoverEntry is one selected cut of the final cover.
type CoverEntry struct {
	// Node is the subject-graph root node.
	Node uint32
	// Cut is the selected cut of that node.
	Cut cuts.Cut
}

// ADP returns the area-delay product.
func (r *Result) ADP() float64 { return r.Area * r.Delay }

// chosen captures the selected match of one node.
type chosen struct {
	cutIdx  int
	match   library.Match
	valid   bool
	arrival float64
	flow    float64
}

type mapping struct {
	g    *aig.AIG
	lib  *library.Library
	sets [][]cuts.Cut

	best      []chosen
	arrival   []float64
	flow      []float64
	required  []float64
	refs      []int32
	fanoutEst []float64

	maxFanout     int
	matchAttempts int

	// Multi-round state (rounds <= 1 leaves all of it inert).
	rounds      int
	delayFactor float64
	extras      [][]cuts.Cut
	passCuts    int
	// flowRef, when non-nil, overrides fanoutEst as the area-flow divisor:
	// the recovery rounds refresh it from the previous cover's reference
	// counts. The delay model (gate loads in evalMatch/computeRequiredAt)
	// always keeps the structural fanoutEst, so round-1 required times stay
	// valid across every recovery round.
	flowRef []float64
}

// configureRounds installs the multi-round knobs from Options.
func (m *mapping) configureRounds(opt *Options) {
	m.rounds = opt.Rounds
	if opt.NoAreaRecovery {
		m.rounds = 1
	}
	m.delayFactor = opt.DelayFactor
	if m.delayFactor < 1 {
		m.delayFactor = 1
	}
	if m.rounds > 1 {
		m.extras = opt.ExtraCuts
	}
}

// newMapping builds the per-node selection state shared by the two-phase
// and streaming flows. m.sets is left for the caller to install.
func newMapping(g *aig.AIG, lib *library.Library, maxFanout int) *mapping {
	if maxFanout == 0 {
		maxFanout = DefaultMaxFanout
	}
	m := &mapping{g: g, lib: lib, maxFanout: maxFanout}
	n := g.NumNodes()
	m.best = make([]chosen, n)
	m.arrival = make([]float64, n)
	m.flow = make([]float64, n)
	m.required = make([]float64, n)
	m.refs = make([]int32, n)
	m.fanoutEst = make([]float64, n)
	for i := uint32(0); i < uint32(n); i++ {
		fo := float64(g.Fanout(i))
		if fo < 1 {
			fo = 1
		}
		// Loads beyond the fanout bound will be buffered away, so the
		// arrival estimates saturate there too.
		if maxFanout > 0 && fo > float64(maxFanout) {
			fo = float64(maxFanout)
		}
		m.fanoutEst[i] = fo
	}
	return m
}

// Map runs the full mapping flow on g.
func Map(g *aig.AIG, opt Options) (*Result, error) {
	if opt.Library == nil {
		return nil, fmt.Errorf("mapper: Options.Library is required")
	}
	policyName := "exhaustive"
	var res *cuts.Result
	if opt.CutSets != nil {
		res = opt.CutSets
		policyName = "precomputed"
	} else {
		e := &cuts.Enumerator{G: g, Policy: opt.Policy, MergeCap: opt.MergeCap, Workers: opt.Workers, Choices: opt.Choices}
		res = e.Run()
		if opt.Policy != nil {
			policyName = opt.Policy.Name()
		}
	}

	if opt.CaptureCuts != nil && opt.CutSets == nil {
		for n := uint32(1); n < uint32(g.NumNodes()); n++ {
			if g.IsAnd(n) {
				opt.CaptureCuts(n, res.Sets[n])
			}
		}
	}

	m := newMapping(g, opt.Library, opt.MaxFanout)
	m.sets = res.Sets
	m.configureRounds(&opt)

	cutsConsidered := m.ensureMappable()
	cutsConsidered += totalCuts(g, res)

	// Pass 1: delay-optimal mapping.
	m.selectAll(selectDelay)
	peak := res.PeakCuts
	if peak == 0 {
		peak = res.TotalCuts
	}
	return m.finish(opt.NoAreaRecovery, policyName, cutsConsidered, peak)
}

// finish runs everything downstream of the delay pass — area recovery,
// netlist construction, buffering, cover extraction and STA — and is shared
// by Map and the streaming Stream.Finish (whose delay pass happened
// incrementally inside the wavefront).
func (m *mapping) finish(noAreaRecovery bool, policyName string, cutsConsidered, peakCuts int) (*Result, error) {
	var roundStats []RoundStat
	switch {
	case m.rounds > 1:
		roundStats = m.recoveryRounds(cutsConsidered, peakCuts)
		cutsConsidered = 0
		for _, rs := range roundStats {
			cutsConsidered += rs.CutsConsidered
			if rs.PeakCuts > peakCuts {
				peakCuts = rs.PeakCuts
			}
		}
	case !noAreaRecovery:
		// Classic schedule: one area-flow pass and one exact-area pass
		// under required times from the delay-optimal cover.
		m.computeRequired()
		m.selectAll(selectAreaFlow)
		m.computeRequired()
		m.exactAreaPass()
	}

	nl, err := m.buildNetlist()
	if err != nil {
		return nil, err
	}
	if m.maxFanout > 0 {
		if buf := netlist.BufferCell(m.lib); buf != nil {
			nl = nl.InsertBuffers(buf, m.maxFanout)
		}
	}
	var cover []CoverEntry
	for _, n := range m.coverNodes() {
		if b := &m.best[n]; b.valid {
			cover = append(cover, CoverEntry{Node: n, Cut: m.sets[n][b.cutIdx]})
		}
	}
	t := nl.STA()
	return &Result{
		Netlist:        nl,
		Area:           nl.Area(),
		Delay:          t.Delay,
		CutsConsidered: cutsConsidered,
		MatchAttempts:  m.matchAttempts,
		PolicyName:     policyName,
		EstimatedDelay: m.globalDelay(),
		PeakCuts:       peakCuts,
		Cover:          cover,
		RoundStats:     roundStats,
	}, nil
}

// recoveryRounds runs rounds 2..m.rounds after the delay pass: recovery-only
// extra cuts join the lists, required times are frozen from the round-1
// delay scaled by the delay factor, and each round re-selects the cover by
// area flow with load estimates refreshed from the previous round's cover —
// the final round adds an exact-area refinement. Every pass is a sequential
// sweep over the retained cut lists, so results are byte-identical for any
// worker count, streaming mode or arena pool: parallelism only ever touched
// enumeration, which is already finished.
func (m *mapping) recoveryRounds(round1Cuts, enumPeak int) []RoundStat {
	stats := make([]RoundStat, 0, m.rounds)
	stats = append(stats, RoundStat{
		Round: 1, Mode: "delay",
		EstArea: m.coverArea(), EstDelay: m.globalDelay(),
		CutsConsidered: round1Cuts, PeakCuts: enumPeak,
		MatchAttempts: m.matchAttempts,
	})
	m.appendExtras()
	target := m.globalDelay() * m.delayFactor
	for r := 2; r <= m.rounds; r++ {
		m.updateFlowRefs()
		m.computeRequiredAt(target)
		m.passCuts = 0
		prevAttempts := m.matchAttempts
		m.selectAll(selectAreaFlow)
		mode := "area-flow"
		if r == m.rounds {
			m.computeRequiredAt(target)
			m.exactAreaPass()
			mode = "area-flow+exact"
		}
		stats = append(stats, RoundStat{
			Round: r, Mode: mode,
			EstArea: m.coverArea(), EstDelay: m.globalDelay(),
			CutsConsidered: m.passCuts, PeakCuts: m.passCuts,
			MatchAttempts: m.matchAttempts - prevAttempts,
		})
	}
	return stats
}

// coverArea sums the matched cell area of the current cover (polarity
// inverters included; PO buffering happens later and is excluded).
func (m *mapping) coverArea() float64 {
	area := 0.0
	for _, n := range m.coverNodes() {
		if b := &m.best[n]; b.valid {
			area += m.matchArea(&b.match)
		}
	}
	return area
}

// appendExtras merges the recovery-only cut lists into m.sets, once.
func (m *mapping) appendExtras() {
	for n, ex := range m.extras {
		if len(ex) > 0 {
			m.sets[n] = append(m.sets[n], ex...)
		}
	}
	m.extras = nil
}

// updateFlowRefs refreshes the area-flow divisors from the previous
// round's cover reference counts — the standard area-flow iteration: flow
// divisors converge toward the sharing the cover actually realises.
// Uncovered nodes keep their structural estimate. Only the flow divisor
// moves; gate loads (and with them every arrival and required time) keep
// the structural fanoutEst, so the round-1 delay target stays enforceable.
func (m *mapping) updateFlowRefs() {
	m.coverNodes() // refreshes m.refs
	if m.flowRef == nil {
		m.flowRef = make([]float64, m.g.NumNodes())
		copy(m.flowRef, m.fanoutEst)
	}
	for n := uint32(1); n < uint32(m.g.NumNodes()); n++ {
		if !m.g.IsAnd(n) {
			continue
		}
		if r := m.refs[n]; r > 0 {
			m.flowRef[n] = float64(r)
		}
	}
}

func totalCuts(g *aig.AIG, res *cuts.Result) int {
	total := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			total += len(res.Sets[n])
		}
	}
	return total
}

// ensureMappable guarantees every AND node has at least one matchable
// non-trivial cut by appending the elementary fanin cut when a policy
// filtered everything else away (ABC always keeps this cut; SLAP's
// "trivial cut only" nodes still need it to be coverable as leaves of
// larger cuts, and as roots when nothing else covers them). Returns the
// number of fallback cuts added.
func (m *mapping) ensureMappable() int {
	added := 0
	for n := uint32(1); n < uint32(m.g.NumNodes()); n++ {
		if !m.g.IsAnd(n) {
			continue
		}
		if m.hasMatchableCut(n) {
			continue
		}
		m.sets[n] = append(m.sets[n], m.faninCut(n))
		added++
	}
	return added
}

func (m *mapping) hasMatchableCut(n uint32) bool {
	for i := range m.sets[n] {
		c := &m.sets[n][i]
		if containsLeaf(c, n) {
			continue // trivial/self-referential cut cannot be matched
		}
		if len(m.lib.Matches(c.TT)) > 0 {
			return true
		}
	}
	return false
}

// faninCut builds the elementary cut {fanin0, fanin1} of an AND node.
func (m *mapping) faninCut(n uint32) cuts.Cut {
	f0, f1 := m.g.Fanins(n)
	e := &cuts.Enumerator{G: m.g}
	return e.MakeCut(n, orderedPair(f0.Node(), f1.Node()))
}

func orderedPair(a, b uint32) []uint32 {
	if a < b {
		return []uint32{a, b}
	}
	return []uint32{b, a}
}

func containsLeaf(c *cuts.Cut, n uint32) bool {
	for _, l := range c.Leaves {
		if l == n {
			return true
		}
	}
	return false
}

// selectMode distinguishes the optimisation goal of a selection pass.
type selectMode int

const (
	selectDelay selectMode = iota
	selectAreaFlow
)

// selectAll visits every AND node in topological order and picks the best
// match for the pass's goal. Delay passes minimise (arrival, flow); area
// passes minimise (flow, arrival) subject to the required time.
func (m *mapping) selectAll(mode selectMode) {
	g := m.g
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		bestC := chosen{}
		for ci := range m.sets[n] {
			c := &m.sets[n][ci]
			if containsLeaf(c, n) {
				continue
			}
			matches := m.lib.Matches(c.TT)
			if len(matches) > 0 {
				m.passCuts++
			}
			for _, match := range matches {
				m.matchAttempts++
				arr, flw := m.evalMatch(n, c, &match)
				cand := chosen{cutIdx: ci, match: match, valid: true, arrival: arr, flow: flw}
				if !bestC.valid || better(mode, &cand, &bestC, m.required[n]) {
					bestC = cand
				}
			}
		}
		if !bestC.valid {
			// No cut of this node matches the library at all; it can only
			// appear inside larger cuts. Give it an effectively infinite
			// cost so no cover roots here.
			bestC = chosen{arrival: math.Inf(1), flow: math.Inf(1)}
		}
		m.best[n] = bestC
		m.arrival[n] = bestC.arrival
		m.flow[n] = bestC.flow
	}
}

// better reports whether a should replace b for the given mode.
func better(mode selectMode, a, b *chosen, required float64) bool {
	const eps = 1e-9
	switch mode {
	case selectDelay:
		if a.arrival < b.arrival-eps {
			return true
		}
		if a.arrival > b.arrival+eps {
			return false
		}
		return a.flow < b.flow-eps
	default: // selectAreaFlow
		aOK := a.arrival <= required+eps
		bOK := b.arrival <= required+eps
		if aOK != bOK {
			return aOK
		}
		if !aOK {
			// Neither meets timing: fall back to delay minimisation.
			return a.arrival < b.arrival-eps
		}
		if a.flow < b.flow-eps {
			return true
		}
		if a.flow > b.flow+eps {
			return false
		}
		return a.arrival < b.arrival-eps
	}
}

// evalMatch computes the arrival time and area flow of binding `match` to
// cut c at node n, charging inverters for negated pins/outputs.
func (m *mapping) evalMatch(n uint32, c *cuts.Cut, match *library.Match) (float64, float64) {
	g := match.Gate
	invD := m.lib.Inv.PinDelay(1)
	load := int32(m.fanoutEst[n])
	gateLoad := load
	if match.OutNeg {
		gateLoad = 1 // the gate drives only the output inverter
	}
	d := g.PinDelay(gateLoad)
	arr := 0.0
	area := g.Area
	flowSum := 0.0
	for i := 0; i < g.NumPins; i++ {
		leaf := c.Leaves[match.Perm[i]]
		a := m.leafArrival(leaf)
		f := m.leafFlow(leaf)
		if match.Phase>>uint(i)&1 == 1 {
			a += invD
			area += m.lib.Inv.Area
		}
		if a+d > arr {
			arr = a + d
		}
		flowSum += f
	}
	if match.OutNeg {
		arr += m.lib.Inv.PinDelay(load)
		area += m.lib.Inv.Area
	}
	flow := (area + flowSum) / m.flowDiv(n)
	return arr, flow
}

// flowDiv is the area-flow divisor of n: the structural fanout estimate,
// or the recovery rounds' cover-derived reference count once installed.
func (m *mapping) flowDiv(n uint32) float64 {
	if m.flowRef != nil {
		return m.flowRef[n]
	}
	return m.fanoutEst[n]
}

func (m *mapping) leafArrival(leaf uint32) float64 {
	if m.g.IsAnd(leaf) {
		return m.arrival[leaf]
	}
	return 0 // PIs and constants arrive at time zero
}

func (m *mapping) leafFlow(leaf uint32) float64 {
	if m.g.IsAnd(leaf) {
		return m.flow[leaf]
	}
	return 0
}

// globalDelay returns the worst PO arrival, charging PO polarity inverters.
func (m *mapping) globalDelay() float64 {
	invD := m.lib.Inv.PinDelay(1)
	worst := 0.0
	for _, po := range m.g.POs() {
		n := po.Lit.Node()
		a := m.leafArrival(n)
		if po.Lit.IsCompl() && !m.g.IsConst(n) {
			a += invD
		}
		if a > worst {
			worst = a
		}
	}
	return worst
}

// computeRequired propagates required times backwards over the current
// cover with the current global delay as the PO requirement.
func (m *mapping) computeRequired() {
	m.computeRequiredAt(m.globalDelay())
}

// computeRequiredAt is computeRequired with an explicit PO requirement
// (the multi-round engine freezes it from the round-1 delay). The current
// global delay still floors the target so the constraint stays feasible.
// Nodes outside the cover get +inf (unconstrained).
func (m *mapping) computeRequiredAt(target float64) {
	g := m.g
	invD := m.lib.Inv.PinDelay(1)
	d := target
	if gd := m.globalDelay(); gd > d {
		d = gd
	}
	for i := range m.required {
		m.required[i] = math.Inf(1)
	}
	inCover := m.coverNodes()
	for _, po := range g.POs() {
		n := po.Lit.Node()
		r := d
		if po.Lit.IsCompl() && !g.IsConst(n) {
			r -= invD
		}
		if r < m.required[n] {
			m.required[n] = r
		}
	}
	// Reverse topological order.
	for idx := len(inCover) - 1; idx >= 0; idx-- {
		n := inCover[idx]
		b := &m.best[n]
		if !b.valid {
			continue
		}
		c := &m.sets[n][b.cutIdx]
		gate := b.match.Gate
		load := int32(m.fanoutEst[n])
		gateLoad := load
		if b.match.OutNeg {
			gateLoad = 1
		}
		pd := gate.PinDelay(gateLoad)
		req := m.required[n]
		if b.match.OutNeg {
			req -= m.lib.Inv.PinDelay(load)
		}
		for i := 0; i < gate.NumPins; i++ {
			leaf := c.Leaves[b.match.Perm[i]]
			r := req - pd
			if b.match.Phase>>uint(i)&1 == 1 {
				r -= invD
			}
			if r < m.required[leaf] {
				m.required[leaf] = r
			}
		}
	}
}

// coverNodes returns the AND nodes of the current cover in topological
// order, and refreshes m.refs to the cover's reference counts.
func (m *mapping) coverNodes() []uint32 {
	g := m.g
	for i := range m.refs {
		m.refs[i] = 0
	}
	needed := make([]bool, g.NumNodes())
	var stack []uint32
	for _, po := range g.POs() {
		n := po.Lit.Node()
		m.refs[n]++
		if g.IsAnd(n) && !needed[n] {
			needed[n] = true
			stack = append(stack, n)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := &m.best[n]
		if !b.valid {
			continue
		}
		c := &m.sets[n][b.cutIdx]
		gate := b.match.Gate
		for i := 0; i < gate.NumPins; i++ {
			leaf := c.Leaves[b.match.Perm[i]]
			m.refs[leaf]++
			if g.IsAnd(leaf) && !needed[leaf] {
				needed[leaf] = true
				stack = append(stack, leaf)
			}
		}
	}
	var order []uint32
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if needed[n] {
			order = append(order, n)
		}
	}
	return order
}

// matchArea returns the cell area of a match including polarity inverters.
func (m *mapping) matchArea(match *library.Match) float64 {
	a := match.Gate.Area
	for i := 0; i < match.Gate.NumPins; i++ {
		if match.Phase>>uint(i)&1 == 1 {
			a += m.lib.Inv.Area
		}
	}
	if match.OutNeg {
		a += m.lib.Inv.Area
	}
	return a
}

// refMatch recursively references the cone of a match, returning the area
// newly activated (the exact-area "ref" operation).
func (m *mapping) refMatch(n uint32, b *chosen) float64 {
	c := &m.sets[n][b.cutIdx]
	area := m.matchArea(&b.match)
	gate := b.match.Gate
	for i := 0; i < gate.NumPins; i++ {
		leaf := c.Leaves[b.match.Perm[i]]
		m.refs[leaf]++
		if m.refs[leaf] == 1 && m.g.IsAnd(leaf) && m.best[leaf].valid {
			area += m.refMatch(leaf, &m.best[leaf])
		}
	}
	return area
}

// derefMatch undoes refMatch, returning the area deactivated.
func (m *mapping) derefMatch(n uint32, b *chosen) float64 {
	c := &m.sets[n][b.cutIdx]
	area := m.matchArea(&b.match)
	gate := b.match.Gate
	for i := 0; i < gate.NumPins; i++ {
		leaf := c.Leaves[b.match.Perm[i]]
		m.refs[leaf]--
		if m.refs[leaf] == 0 && m.g.IsAnd(leaf) && m.best[leaf].valid {
			area += m.derefMatch(leaf, &m.best[leaf])
		}
	}
	return area
}

// exactAreaPass re-selects matches for covered nodes minimising the exact
// local area (the area that would be freed if the node's cone were
// removed), subject to required times.
func (m *mapping) exactAreaPass() {
	const eps = 1e-9
	cover := m.coverNodes()
	for _, n := range cover {
		if m.refs[n] == 0 || !m.best[n].valid {
			continue
		}
		cur := m.best[n]
		m.derefMatch(n, &cur)
		bestC := cur
		bestArea := m.refMatch(n, &cur)
		m.derefMatch(n, &cur)
		for ci := range m.sets[n] {
			c := &m.sets[n][ci]
			if containsLeaf(c, n) {
				continue
			}
			matches := m.lib.Matches(c.TT)
			if len(matches) > 0 {
				m.passCuts++
			}
			for _, match := range matches {
				arr, flw := m.evalMatch(n, c, &match)
				if arr > m.required[n]+eps {
					continue
				}
				cand := chosen{cutIdx: ci, match: match, valid: true, arrival: arr, flow: flw}
				area := m.refMatch(n, &cand)
				m.derefMatch(n, &cand)
				if area < bestArea-eps || (area < bestArea+eps && arr < bestC.arrival-eps) {
					bestArea = area
					bestC = cand
				}
			}
		}
		m.refMatch(n, &bestC)
		m.best[n] = bestC
		m.arrival[n] = bestC.arrival
		m.flow[n] = bestC.flow
	}
}
