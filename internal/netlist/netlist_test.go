package netlist

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"slap/internal/aig"
	"slap/internal/library"
)

func lib(t testing.TB) *library.Library {
	t.Helper()
	return library.ASAP7ish()
}

func TestBuildAndArea(t *testing.T) {
	l := lib(t)
	n := New("t")
	a := n.AddPI("a")
	b := n.AddPI("b")
	nand2 := l.Gate("nand2")
	inv := l.Gate("inv")
	x := n.AddCell(nand2, []Net{a, b})
	y := n.AddCell(inv, []Net{x})
	n.AddPO("f", y)
	if n.NumCells() != 2 || n.NumPIs() != 2 || n.NumPOs() != 1 {
		t.Fatalf("counts wrong: %s", n.Stats())
	}
	want := nand2.Area + inv.Area
	if math.Abs(n.Area()-want) > 1e-9 {
		t.Fatalf("area = %f, want %f", n.Area(), want)
	}
	counts := n.CellCounts()
	if counts["nand2"] != 1 || counts["inv"] != 1 {
		t.Fatalf("cell histogram wrong: %v", counts)
	}
}

func TestFanouts(t *testing.T) {
	l := lib(t)
	n := New("t")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddCell(l.Gate("nand2"), []Net{a, b})
	y := n.AddCell(l.Gate("inv"), []Net{x})
	z := n.AddCell(l.Gate("inv"), []Net{x})
	n.AddPO("y", y)
	n.AddPO("z", z)
	fo := n.Fanouts()
	if fo[a] != 1 || fo[x] != 2 || fo[y] != 1 || fo[z] != 1 {
		t.Fatalf("fanouts wrong: a=%d x=%d y=%d z=%d", fo[a], fo[x], fo[y], fo[z])
	}
}

func TestSTAChain(t *testing.T) {
	l := lib(t)
	inv := l.Gate("inv")
	n := New("chain")
	cur := n.AddPI("a")
	const depth = 5
	for i := 0; i < depth; i++ {
		cur = n.AddCell(inv, []Net{cur})
	}
	n.AddPO("f", cur)
	tm := n.STA()
	want := float64(depth) * inv.PinDelay(1)
	if math.Abs(tm.Delay-want) > 1e-9 {
		t.Fatalf("chain delay = %f, want %f", tm.Delay, want)
	}
	if len(tm.CriticalPath) != depth {
		t.Fatalf("critical path length = %d, want %d", len(tm.CriticalPath), depth)
	}
	// On a pure chain every net has zero slack.
	for _, ci := range tm.CriticalPath {
		c := n.Cells()[ci]
		if s := tm.Slack(c.Out); math.Abs(s) > 1e-9 {
			t.Fatalf("slack on critical path = %f, want 0", s)
		}
	}
}

func TestSTALoadDependence(t *testing.T) {
	l := lib(t)
	inv := l.Gate("inv")
	// One inverter driving k loads must be slower than driving one.
	delayWithLoads := func(k int) float64 {
		n := New("load")
		a := n.AddPI("a")
		x := n.AddCell(inv, []Net{a})
		for i := 0; i < k; i++ {
			y := n.AddCell(inv, []Net{x})
			n.AddPO("", y)
		}
		// Only the first stage matters for comparison; sink inverters see
		// load 1 each.
		return n.STA().Delay
	}
	if delayWithLoads(4) <= delayWithLoads(1) {
		t.Fatalf("higher load must increase delay")
	}
}

func TestSTARequiredMonotone(t *testing.T) {
	l := lib(t)
	n := New("t")
	a := n.AddPI("a")
	b := n.AddPI("b")
	x := n.AddCell(l.Gate("nand2"), []Net{a, b})
	y := n.AddCell(l.Gate("inv"), []Net{x})
	n.AddPO("f", y)
	tm := n.STA()
	for _, net := range []Net{a, b, x, y} {
		if tm.Slack(net) < -1e9 {
			t.Fatalf("net %d slack unreasonable: %f", net, tm.Slack(net))
		}
		if tm.Required[net]+1e-9 < tm.Arrival[net] {
			t.Fatalf("net %d has negative slack in a fresh STA", net)
		}
	}
}

func TestSimulateGates(t *testing.T) {
	l := lib(t)
	rng := rand.New(rand.NewSource(41))
	for _, name := range []string{"nand2", "nor2", "xor2", "aoi21", "mux2", "maj3", "xor3", "aoi221"} {
		g := l.Gate(name)
		if g == nil {
			t.Fatalf("gate %s missing", name)
		}
		n := New(name)
		pins := make([]Net, g.NumPins)
		vals := make([]uint64, g.NumPins)
		for i := range pins {
			pins[i] = n.AddPI("")
			vals[i] = rng.Uint64()
		}
		out := n.AddCell(g, pins)
		n.AddPO("f", out)
		got := n.Simulate(vals)[0]
		// Reference: evaluate the truth table lane by lane.
		for lane := 0; lane < 64; lane++ {
			m := 0
			for i := range vals {
				m |= int(vals[i]>>uint(lane)&1) << uint(i)
			}
			want := uint64(0)
			if g.Function.Eval(m) {
				want = 1
			}
			if got>>uint(lane)&1 != want {
				t.Fatalf("gate %s lane %d wrong", name, lane)
			}
		}
	}
}

func TestSimulateConstants(t *testing.T) {
	l := lib(t)
	n := New("const")
	a := n.AddPI("a")
	x := n.AddCell(l.Gate("and2"), []Net{a, Const1})
	y := n.AddCell(l.Gate("or2"), []Net{a, Const0})
	n.AddPO("x", x)
	n.AddPO("y", y)
	v := uint64(0xDEADBEEF)
	out := n.Simulate([]uint64{v})
	if out[0] != v || out[1] != v {
		t.Fatalf("constant nets wrong: %x %x", out[0], out[1])
	}
}

func TestEquivalentTo(t *testing.T) {
	l := lib(t)
	// AIG: f = a AND b; netlist: nand2 + inv.
	g := aig.New("eq")
	a := g.AddPI("a")
	b := g.AddPI("b")
	g.AddPO("f", g.And(a, b))

	n := New("eq")
	na := n.AddPI("a")
	nb := n.AddPI("b")
	x := n.AddCell(l.Gate("nand2"), []Net{na, nb})
	y := n.AddCell(l.Gate("inv"), []Net{x})
	n.AddPO("f", y)
	if err := n.EquivalentTo(g, 8, rand.New(rand.NewSource(1))); err != nil {
		t.Fatalf("equivalence check failed: %v", err)
	}

	// A wrong netlist must be detected.
	bad := New("bad")
	ba := bad.AddPI("a")
	bb := bad.AddPI("b")
	bx := bad.AddCell(l.Gate("nor2"), []Net{ba, bb})
	bad.AddPO("f", bx)
	if err := bad.EquivalentTo(g, 8, rand.New(rand.NewSource(2))); err == nil {
		t.Fatalf("inequivalent netlist not detected")
	}

	// Interface mismatch must be detected.
	if err := New("empty").EquivalentTo(g, 1, rand.New(rand.NewSource(3))); err == nil {
		t.Fatalf("interface mismatch not detected")
	}
}

func TestPanicsOnMalformedBuild(t *testing.T) {
	l := lib(t)
	n := New("p")
	a := n.AddPI("a")
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("wrong pin count", func() { n.AddCell(l.Gate("nand2"), []Net{a}) })
	mustPanic("undefined pin net", func() { n.AddCell(l.Gate("inv"), []Net{999}) })
	mustPanic("undefined PO net", func() { n.AddPO("f", 999) })
	mustPanic("wrong sim inputs", func() { n.Simulate(nil) })
}

func BenchmarkSTA(b *testing.B) {
	l := lib(b)
	rng := rand.New(rand.NewSource(5))
	n := New("bench")
	nets := []Net{n.AddPI(""), n.AddPI(""), n.AddPI(""), n.AddPI("")}
	gates := []*library.Gate{l.Gate("nand2"), l.Gate("nor2"), l.Gate("xor2"), l.Gate("aoi21")}
	for i := 0; i < 3000; i++ {
		g := gates[rng.Intn(len(gates))]
		pins := make([]Net, g.NumPins)
		for j := range pins {
			pins[j] = nets[rng.Intn(len(nets))]
		}
		nets = append(nets, n.AddCell(g, pins))
	}
	n.AddPO("f", nets[len(nets)-1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.STA()
	}
}

func mustParse(t testing.TB, text string) *library.Library {
	t.Helper()
	l, err := library.Parse("test", strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestSTAPropertyAgainstRecursiveLongestPath cross-checks the iterative STA
// against an independent recursive longest-path computation on random
// netlists.
func TestSTAPropertyAgainstRecursiveLongestPath(t *testing.T) {
	l := lib(t)
	gates := []*library.Gate{l.Gate("inv"), l.Gate("nand2"), l.Gate("xor2"), l.Gate("aoi21"), l.Gate("maj3")}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := New("prop")
		nets := []Net{n.AddPI(""), n.AddPI(""), n.AddPI("")}
		cellOf := map[Net]int{}
		for i := 0; i < 40; i++ {
			g := gates[rng.Intn(len(gates))]
			pins := make([]Net, g.NumPins)
			for j := range pins {
				pins[j] = nets[rng.Intn(len(nets))]
			}
			out := n.AddCell(g, pins)
			cellOf[out] = i
			nets = append(nets, out)
		}
		for i := 0; i < 4; i++ {
			n.AddPO("", nets[len(nets)-1-rng.Intn(5)])
		}
		fo := n.Fanouts()
		var arrival func(net Net) float64
		arrival = func(net Net) float64 {
			ci, ok := cellOf[net]
			if !ok {
				return 0
			}
			c := n.Cells()[ci]
			d := c.Gate.PinDelay(fo[c.Out])
			worst := 0.0
			for _, p := range c.Pins {
				if a := arrival(p) + d; a > worst {
					worst = a
				}
			}
			return worst
		}
		tm := n.STA()
		wantDelay := 0.0
		for _, po := range n.POs() {
			if a := arrival(po.Net); a > wantDelay {
				wantDelay = a
			}
		}
		if math.Abs(tm.Delay-wantDelay) > 1e-9 {
			t.Fatalf("seed %d: STA delay %f, recursive %f", seed, tm.Delay, wantDelay)
		}
		for _, po := range n.POs() {
			if math.Abs(tm.Arrival[po.Net]-arrival(po.Net)) > 1e-9 {
				t.Fatalf("seed %d: PO arrival mismatch", seed)
			}
		}
	}
}
