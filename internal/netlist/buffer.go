package netlist

import (
	"slap/internal/library"
	"slap/internal/tt"
)

// InsertBuffers returns a copy of the netlist in which every net driving
// more than maxLoad sinks is split by a balanced tree of buffer cells, so
// no net (including buffer outputs) exceeds maxLoad. This is the standard
// post-mapping fanout-buffering step; without it the linear load-delay
// model punishes high-fanout nets unrealistically (real flows always
// buffer them).
//
// buf must be a single-input identity cell from the same library. The
// returned netlist is functionally identical to the input.
func (n *Netlist) InsertBuffers(buf *library.Gate, maxLoad int) *Netlist {
	if maxLoad < 2 {
		maxLoad = 2
	}
	out := New(n.Name)

	// Count sinks per net: cell pins plus PO references.
	sinks := make([]int, n.numNets)
	for ci := range n.cells {
		for _, p := range n.cells[ci].Pins {
			sinks[p]++
		}
	}
	for _, po := range n.pos {
		sinks[po.Net]++
	}

	// feeds[old] is the list of new nets to hand out, one per sink, in
	// sink-visit order; next[old] is the cursor.
	feeds := make([][]Net, n.numNets)
	next := make([]int, n.numNets)

	// assign builds the buffer tree for one driver and fills feeds.
	assign := func(oldNet, newNet Net) {
		k := sinks[oldNet]
		if k == 0 {
			return
		}
		feeds[oldNet] = distributeLoad(out, buf, newNet, k, maxLoad)
	}

	take := func(oldNet Net) Net {
		switch oldNet {
		case Const0:
			return Const0
		case Const1:
			return Const1
		}
		f := feeds[oldNet]
		i := next[oldNet]
		next[oldNet]++
		return f[i]
	}

	for i, pi := range n.piNets {
		newPI := out.AddPI(n.piNames[i])
		assign(pi, newPI)
	}
	for ci := range n.cells {
		c := &n.cells[ci]
		pins := make([]Net, len(c.Pins))
		for pi, p := range c.Pins {
			pins[pi] = take(p)
		}
		newOut := out.AddCell(c.Gate, pins)
		assign(c.Out, newOut)
	}
	for _, po := range n.pos {
		out.AddPO(po.Name, take(po.Net))
	}
	return out
}

// distributeLoad returns k nets, one per sink, such that src and every
// created buffer output drive at most maxLoad sinks.
func distributeLoad(out *Netlist, buf *library.Gate, src Net, k, maxLoad int) []Net {
	if k <= maxLoad {
		nets := make([]Net, k)
		for i := range nets {
			nets[i] = src
		}
		return nets
	}
	// One buffer level: nb buffers, each serving up to maxLoad sinks. The
	// buffers themselves are sinks of the level above (recursively bounded).
	nb := (k + maxLoad - 1) / maxLoad
	upper := distributeLoad(out, buf, src, nb, maxLoad)
	nets := make([]Net, 0, k)
	remaining := k
	for i := 0; i < nb; i++ {
		bo := out.AddCell(buf, []Net{upper[i]})
		take := maxLoad
		if take > remaining {
			take = remaining
		}
		for j := 0; j < take; j++ {
			nets = append(nets, bo)
		}
		remaining -= take
	}
	return nets
}

// BufferCell returns the smallest identity (buffer) cell of the library, or
// nil when the library has none.
func BufferCell(lib *library.Library) *library.Gate {
	var best *library.Gate
	for _, g := range lib.Gates {
		if g.Function == tt.Var(0) && (best == nil || g.Area < best.Area) {
			best = g
		}
	}
	return best
}

// MaxFanout returns the largest sink count over all nets.
func (n *Netlist) MaxFanout() int32 {
	var m int32
	for _, f := range n.Fanouts() {
		if f > m {
			m = f
		}
	}
	return m
}
