package netlist

import (
	"math/rand"
	"testing"
)

func TestInsertBuffersBoundsFanout(t *testing.T) {
	l := lib(t)
	buf := BufferCell(l)
	if buf == nil {
		t.Fatalf("asap7ish must have a buffer cell")
	}
	// One inverter driving 50 sinks.
	n := New("hot")
	a := n.AddPI("a")
	x := n.AddCell(l.Gate("inv"), []Net{a})
	for i := 0; i < 50; i++ {
		y := n.AddCell(l.Gate("inv"), []Net{x})
		n.AddPO("", y)
	}
	if n.MaxFanout() != 50 {
		t.Fatalf("setup: max fanout = %d", n.MaxFanout())
	}
	const maxLoad = 8
	b := n.InsertBuffers(buf, maxLoad)
	if got := b.MaxFanout(); got > maxLoad {
		t.Fatalf("after buffering max fanout = %d > %d", got, maxLoad)
	}
	if b.NumCells() <= n.NumCells() {
		t.Fatalf("buffering added no cells")
	}
	if b.NumPIs() != n.NumPIs() || b.NumPOs() != n.NumPOs() {
		t.Fatalf("buffering changed the interface")
	}
	// Functionality preserved on random patterns.
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 4; round++ {
		in := []uint64{rng.Uint64()}
		want := n.Simulate(in)
		got := b.Simulate(in)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("buffering changed PO %d", i)
			}
		}
	}
}

func TestInsertBuffersDeepTree(t *testing.T) {
	l := lib(t)
	buf := BufferCell(l)
	// Fanout 300 with maxLoad 4 needs a multi-level tree.
	n := New("deep")
	a := n.AddPI("a")
	x := n.AddCell(l.Gate("inv"), []Net{a})
	for i := 0; i < 300; i++ {
		n.AddPO("", x)
	}
	b := n.InsertBuffers(buf, 4)
	if got := b.MaxFanout(); got > 4 {
		t.Fatalf("max fanout %d > 4 after deep buffering", got)
	}
	in := []uint64{0xAAAA5555AAAA5555}
	want := n.Simulate(in)
	got := b.Simulate(in)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("deep buffering changed PO %d", i)
		}
	}
}

func TestInsertBuffersNoopOnLowFanout(t *testing.T) {
	l := lib(t)
	buf := BufferCell(l)
	n := New("cool")
	a := n.AddPI("a")
	b2 := n.AddPI("b")
	x := n.AddCell(l.Gate("nand2"), []Net{a, b2})
	n.AddPO("f", x)
	out := n.InsertBuffers(buf, 8)
	if out.NumCells() != n.NumCells() {
		t.Fatalf("buffering a low-fanout netlist added cells")
	}
}

func TestInsertBuffersConstantsUntouched(t *testing.T) {
	l := lib(t)
	buf := BufferCell(l)
	n := New("const")
	a := n.AddPI("a")
	// Constants fan out widely but need no buffering (tie cells).
	for i := 0; i < 40; i++ {
		x := n.AddCell(l.Gate("and2"), []Net{a, Const1})
		n.AddPO("", x)
	}
	out := n.InsertBuffers(buf, 8)
	in := []uint64{0x123456789ABCDEF0}
	want := n.Simulate(in)
	got := out.Simulate(in)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("constant handling broken at PO %d", i)
		}
	}
}

func TestBufferCellMissing(t *testing.T) {
	// A library without an identity cell yields nil.
	l := mustParse(t, "GATE inv 1 O=!a DELAY 5 SLOPE 1")
	if BufferCell(l) != nil {
		t.Fatalf("inverter-only library should have no buffer cell")
	}
}
