// Package netlist represents technology-mapped gate-level netlists and
// provides static timing analysis (arrival/required/slack, critical path),
// area accounting, and bit-parallel simulation for equivalence checking
// against the source AIG.
package netlist

import (
	"fmt"
	"math"
	"math/rand"

	"slap/internal/aig"
	"slap/internal/library"
)

// Net identifies a signal. Nets 0 and 1 are the constant-false and
// constant-true nets; primary inputs and cell outputs get fresh ids.
type Net int32

// Constant nets.
const (
	Const0 Net = 0
	Const1 Net = 1
)

// Cell is one placed gate instance.
type Cell struct {
	// Gate is the library cell.
	Gate *library.Gate
	// Pins holds the driving net of each input pin (len == Gate.NumPins).
	Pins []Net
	// Out is the output net.
	Out Net
}

// PO is a named primary output.
type PO struct {
	Name string
	Net  Net
}

// Netlist is a combinational mapped netlist. Cells are stored in
// topological order (pin nets are always defined before use).
type Netlist struct {
	Name string

	piNames []string
	piNets  []Net
	cells   []Cell
	pos     []PO
	numNets Net
}

// New creates an empty netlist.
func New(name string) *Netlist {
	return &Netlist{Name: name, numNets: 2}
}

// AddPI creates a primary input net.
func (n *Netlist) AddPI(name string) Net {
	net := n.numNets
	n.numNets++
	if name == "" {
		name = fmt.Sprintf("pi%d", len(n.piNames))
	}
	n.piNames = append(n.piNames, name)
	n.piNets = append(n.piNets, net)
	return net
}

// AddCell instantiates a gate driven by the given pin nets and returns its
// output net. Pin nets must already exist.
func (n *Netlist) AddCell(g *library.Gate, pins []Net) Net {
	if len(pins) != g.NumPins {
		panic(fmt.Sprintf("netlist: gate %s needs %d pins, got %d", g.Name, g.NumPins, len(pins)))
	}
	for _, p := range pins {
		if p >= n.numNets {
			panic(fmt.Sprintf("netlist: pin net %d used before definition", p))
		}
	}
	out := n.numNets
	n.numNets++
	n.cells = append(n.cells, Cell{Gate: g, Pins: append([]Net(nil), pins...), Out: out})
	return out
}

// AddPO registers a primary output.
func (n *Netlist) AddPO(name string, net Net) {
	if net >= n.numNets {
		panic(fmt.Sprintf("netlist: PO net %d used before definition", net))
	}
	n.pos = append(n.pos, PO{Name: name, Net: net})
}

// NumCells returns the number of placed gates.
func (n *Netlist) NumCells() int { return len(n.cells) }

// NumPIs returns the number of primary inputs.
func (n *Netlist) NumPIs() int { return len(n.piNets) }

// NumPOs returns the number of primary outputs.
func (n *Netlist) NumPOs() int { return len(n.pos) }

// Cells returns the placed cells in topological order.
func (n *Netlist) Cells() []Cell { return n.cells }

// POs returns the primary outputs.
func (n *Netlist) POs() []PO { return n.pos }

// Area returns the summed cell area in µm².
func (n *Netlist) Area() float64 {
	var a float64
	for i := range n.cells {
		a += n.cells[i].Gate.Area
	}
	return a
}

// CellCounts returns a histogram of cell names.
func (n *Netlist) CellCounts() map[string]int {
	h := make(map[string]int)
	for i := range n.cells {
		h[n.cells[i].Gate.Name]++
	}
	return h
}

// Fanouts returns the fanout count of every net (pin references plus PO
// references).
func (n *Netlist) Fanouts() []int32 {
	fo := make([]int32, n.numNets)
	for i := range n.cells {
		for _, p := range n.cells[i].Pins {
			fo[p]++
		}
	}
	for _, po := range n.pos {
		fo[po.Net]++
	}
	return fo
}

// Timing is the result of static timing analysis.
type Timing struct {
	// Arrival[net] is the latest signal arrival time in ps.
	Arrival []float64
	// Required[net] is the latest permissible arrival given the circuit
	// delay as the deadline.
	Required []float64
	// Delay is the circuit delay in ps (max PO arrival).
	Delay float64
	// CriticalPath lists the cell indices along one worst path, from the
	// cell driving the worst PO back towards the inputs.
	CriticalPath []int
}

// Slack returns required minus arrival for a net.
func (t *Timing) Slack(net Net) float64 { return t.Required[net] - t.Arrival[net] }

// STA runs static timing analysis with the library's linear fanout-load
// delay model.
func (n *Netlist) STA() *Timing {
	fo := n.Fanouts()
	arr := make([]float64, n.numNets)
	driver := make([]int, n.numNets) // cell index driving each net, -1 otherwise
	for i := range driver {
		driver[i] = -1
	}
	for ci := range n.cells {
		c := &n.cells[ci]
		worst := 0.0
		d := c.Gate.PinDelay(fo[c.Out])
		for _, p := range c.Pins {
			if a := arr[p] + d; a > worst {
				worst = a
			}
		}
		arr[c.Out] = worst
		driver[c.Out] = ci
	}
	delay := 0.0
	worstPO := Net(-1)
	for _, po := range n.pos {
		if arr[po.Net] >= delay {
			delay = arr[po.Net]
			worstPO = po.Net
		}
	}
	req := make([]float64, n.numNets)
	for i := range req {
		req[i] = math.Inf(1)
	}
	for _, po := range n.pos {
		if delay < req[po.Net] {
			req[po.Net] = delay
		}
	}
	for ci := len(n.cells) - 1; ci >= 0; ci-- {
		c := &n.cells[ci]
		d := c.Gate.PinDelay(fo[c.Out])
		for _, p := range c.Pins {
			if r := req[c.Out] - d; r < req[p] {
				req[p] = r
			}
		}
	}
	// Trace one critical path from the worst PO.
	var path []int
	cur := worstPO
	for cur >= 0 && driver[cur] >= 0 {
		ci := driver[cur]
		path = append(path, ci)
		c := &n.cells[ci]
		d := c.Gate.PinDelay(fo[c.Out])
		next := Net(-1)
		for _, p := range c.Pins {
			if arr[p]+d == arr[c.Out] {
				next = p
				break
			}
		}
		cur = next
	}
	return &Timing{Arrival: arr, Required: req, Delay: delay, CriticalPath: path}
}

// Simulate evaluates the netlist on 64 packed input patterns (one word per
// PI, in PI creation order) and returns one packed word per PO.
func (n *Netlist) Simulate(piValues []uint64) []uint64 {
	if len(piValues) != len(n.piNets) {
		panic(fmt.Sprintf("netlist: Simulate needs %d PI words, got %d", len(n.piNets), len(piValues)))
	}
	vals := make([]uint64, n.numNets)
	vals[Const1] = ^uint64(0)
	for i, net := range n.piNets {
		vals[net] = piValues[i]
	}
	for ci := range n.cells {
		c := &n.cells[ci]
		vals[c.Out] = evalGate(c.Gate, c.Pins, vals)
	}
	out := make([]uint64, len(n.pos))
	for i, po := range n.pos {
		out[i] = vals[po.Net]
	}
	return out
}

// evalGate evaluates a gate's truth table on packed pin values by summing
// the satisfied minterms.
func evalGate(g *library.Gate, pins []Net, vals []uint64) uint64 {
	var out uint64
	numM := 1 << uint(g.NumPins)
	for m := 0; m < numM; m++ {
		if !g.Function.Eval(m) {
			continue
		}
		term := ^uint64(0)
		for i := 0; i < g.NumPins; i++ {
			v := vals[pins[i]]
			if m>>uint(i)&1 == 0 {
				v = ^v
			}
			term &= v
		}
		out |= term
	}
	return out
}

// EquivalentTo checks functional equivalence against the source AIG on
// `rounds` batches of 64 random patterns. PO order must correspond.
func (n *Netlist) EquivalentTo(g *aig.AIG, rounds int, rng *rand.Rand) error {
	if n.NumPIs() != g.NumPIs() || n.NumPOs() != g.NumPOs() {
		return fmt.Errorf("netlist: interface mismatch: %d/%d PIs, %d/%d POs",
			n.NumPIs(), g.NumPIs(), n.NumPOs(), g.NumPOs())
	}
	ins := make([]uint64, g.NumPIs())
	for r := 0; r < rounds; r++ {
		for i := range ins {
			ins[i] = rng.Uint64()
		}
		want := g.Simulate(ins)
		got := n.Simulate(ins)
		for i := range want {
			if want[i] != got[i] {
				return fmt.Errorf("netlist: PO %d (%s) differs from AIG on round %d",
					i, n.pos[i].Name, r)
			}
		}
	}
	return nil
}

// Stats returns a one-line summary: cells, area, delay.
func (n *Netlist) Stats() string {
	t := n.STA()
	return fmt.Sprintf("%s: cells=%d area=%.2fµm² delay=%.2fps",
		n.Name, n.NumCells(), n.Area(), t.Delay)
}
