package netlist

import (
	"bytes"
	"strings"
	"testing"
)

func buildSmall(t *testing.T) *Netlist {
	t.Helper()
	l := lib(t)
	n := New("demo-1")
	a := n.AddPI("a")
	b := n.AddPI("in[3]")
	x := n.AddCell(l.Gate("nand2"), []Net{a, b})
	y := n.AddCell(l.Gate("inv"), []Net{x})
	z := n.AddCell(l.Gate("and2"), []Net{y, Const1})
	n.AddPO("out", z)
	n.AddPO("tied", Const0)
	return n
}

func TestWriteVerilog(t *testing.T) {
	n := buildSmall(t)
	var buf bytes.Buffer
	if err := n.WriteVerilog(&buf); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	for _, want := range []string{
		"module demo_1(",
		"input a;",
		"input in_3_;",
		"output out;",
		"nand2 g0 (.a(a), .b(in_3_), .o(",
		"inv g1 (",
		"and2 g2 (",
		"1'b1",
		"assign tied = 1'b0;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
	// One instantiation per cell.
	if got := strings.Count(v, " g"); got < n.NumCells() {
		t.Fatalf("expected %d instances, saw %d ' g' markers", n.NumCells(), got)
	}
}

func TestWriteBLIF(t *testing.T) {
	n := buildSmall(t)
	var buf bytes.Buffer
	if err := n.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	blif := buf.String()
	for _, want := range []string{
		".model demo_1",
		".inputs a in_3_",
		".outputs out tied",
		".names const0",
		".names const1",
		".end",
	} {
		if !strings.Contains(blif, want) {
			t.Fatalf("blif missing %q:\n%s", want, blif)
		}
	}
	// The NAND2 table must contain the three ON-set cubes of !(a&b).
	for _, cube := range []string{"00 1", "01 1", "10 1"} {
		if !strings.Contains(blif, cube) {
			t.Fatalf("blif missing NAND2 cube %q:\n%s", cube, blif)
		}
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"abc":     "abc",
		"a[3]":    "a_3_",
		"3x":      "_3x",
		"":        "_",
		"ok_name": "ok_name",
		"s/p.q":   "s_p_q",
	}
	for in, want := range cases {
		if got := sanitizeID(in); got != want {
			t.Errorf("sanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTimingReport(t *testing.T) {
	l := lib(t)
	n := New("chain")
	cur := n.AddPI("a")
	for i := 0; i < 3; i++ {
		cur = n.AddCell(l.Gate("inv"), []Net{cur})
	}
	n.AddPO("f", cur)
	tm := n.STA()
	rep := n.TimingReport(tm)
	if !strings.Contains(rep, "circuit delay") || strings.Count(rep, "inv") != 3 {
		t.Fatalf("timing report malformed:\n%s", rep)
	}
}
