package infer

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// FlushReason labels why a batch was flushed to the backend.
type FlushReason string

// Flush reasons: the batch filled up, the oldest request hit the deadline,
// or the coalescer drained on Close.
const (
	FlushSize     FlushReason = "size"
	FlushDeadline FlushReason = "deadline"
	FlushDrain    FlushReason = "drain"
)

// FlushStats describes one flushed batch for observability hooks.
type FlushStats struct {
	// Size is the number of samples in the flushed batch.
	Size int
	// Reason is why the flush happened.
	Reason FlushReason
	// QueueWait is how long the oldest sample in the batch waited between
	// submission and flush.
	QueueWait time.Duration
}

// Collector receives flush statistics; the server's Metrics implements it
// to export the batch-size histogram and queue-wait gauges.
type Collector interface {
	ObserveFlush(FlushStats)
}

// CoalescerOptions configures a Coalescer.
type CoalescerOptions struct {
	// MaxBatch flushes a batch as soon as this many samples are pending
	// (0 = DefaultMaxBatch). Oversized submissions are split across
	// flushes.
	MaxBatch int
	// MaxWait flushes whatever is pending once the oldest submission has
	// waited this long (0 = DefaultMaxWait). This bounds the latency a
	// lone request pays for batching.
	MaxWait time.Duration
	// QueueCap bounds the submission queue (0 = DefaultQueueCap); beyond
	// it, submitters block — the backpressure that keeps a burst from
	// buffering unboundedly ahead of the backend.
	QueueCap int
	// AdaptiveWait derives the flush deadline from an EWMA of the observed
	// inter-arrival time instead of always waiting the full MaxWait: the
	// deadline becomes the expected time for the batch to fill, clamped to
	// MaxWait. Under fast traffic a lone straggler flushes almost
	// immediately; under slow traffic the behaviour degrades to the fixed
	// MaxWait deadline.
	AdaptiveWait bool
	// Collector, when set, observes every flush.
	Collector Collector
}

// Coalescer defaults.
const (
	DefaultMaxBatch = 64
	DefaultMaxWait  = time.Millisecond
	DefaultQueueCap = 256
)

// Coalescer merges Predict/PredictBatch calls from many goroutines into
// batches for a Backend, flushing on size or deadline. One dispatcher
// goroutine owns all batching state, so the only synchronisation points are
// the submission channel and each request's done channel.
type Coalescer struct {
	backend Backend
	opt     CoalescerOptions

	submit chan *batchReq
	quit   chan struct{} // closed by Close: stop accepting
	done   chan struct{} // closed when the dispatcher has drained and exited

	// curWait is the deadline the dispatcher armed most recently, for
	// observability (/metrics). With AdaptiveWait off it stays at MaxWait.
	curWait atomic.Int64

	closeOnce sync.Once
}

// batchReq is one submission: xs samples that may be served across several
// flushes. out/err are written only by the dispatcher and read by the
// submitter only after done is closed.
type batchReq struct {
	ctx    context.Context
	xs     [][]float64
	out    [][]float64
	served int
	err    error
	done   chan struct{}
	enq    time.Time
}

// NewCoalescer starts a coalescer over backend. Call Close to stop its
// dispatcher and drain pending work.
func NewCoalescer(backend Backend, opt CoalescerOptions) *Coalescer {
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = DefaultMaxBatch
	}
	if opt.MaxWait <= 0 {
		opt.MaxWait = DefaultMaxWait
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = DefaultQueueCap
	}
	c := &Coalescer{
		backend: backend,
		opt:     opt,
		submit:  make(chan *batchReq, opt.QueueCap),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	c.curWait.Store(int64(opt.MaxWait))
	go c.dispatch()
	return c
}

// CurrentWait reports the flush deadline most recently armed by the
// dispatcher. Without AdaptiveWait it is always the configured MaxWait; with
// it, the value tracks the EWMA-derived expected batch fill time.
func (c *Coalescer) CurrentWait() time.Duration {
	return time.Duration(c.curWait.Load())
}

// Close stops accepting submissions, flushes everything already queued, and
// waits for the dispatcher to exit. Safe to call more than once.
func (c *Coalescer) Close() {
	c.closeOnce.Do(func() { close(c.quit) })
	<-c.done
}

// Predict classifies one input through the shared batch stream.
func (c *Coalescer) Predict(ctx context.Context, x []float64) ([]float64, error) {
	out, err := c.PredictBatch(ctx, [][]float64{x})
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// PredictBatch submits xs as one unit — a mapping worker hands over a whole
// node's cut embeddings in one call — and blocks until every sample is
// classified, ctx is done, or the coalescer closes. The samples may be
// merged with other callers' into shared forward passes.
func (c *Coalescer) PredictBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	if len(xs) == 0 {
		return nil, nil
	}
	req := &batchReq{
		ctx:  ctx,
		xs:   xs,
		out:  make([][]float64, len(xs)),
		done: make(chan struct{}),
		enq:  time.Now(),
	}
	select {
	case c.submit <- req:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.quit:
		return nil, ErrClosed
	}
	select {
	case <-req.done:
		if req.err != nil {
			return nil, req.err
		}
		return req.out, nil
	case <-ctx.Done():
		// The dispatcher may still classify the samples; the results are
		// simply dropped with the request.
		return nil, ctx.Err()
	case <-c.done:
		// Dispatcher exited; the request may have been served in the final
		// drain just before.
		select {
		case <-req.done:
			if req.err != nil {
				return nil, req.err
			}
			return req.out, nil
		default:
			return nil, ErrClosed
		}
	}
}

// pendingReq tracks how much of a submission is still unserved.
type pendingReq struct {
	req *batchReq
	off int
}

// dispatch is the single-owner batching loop.
func (c *Coalescer) dispatch() {
	defer close(c.done)

	var pending []pendingReq
	samples := 0

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	armed := false

	// Adaptive-wait state, dispatcher-local: an EWMA (alpha = 1/5) of the
	// inter-arrival time between admitted submissions, seeded by the first
	// observed gap. The deadline for a freshly non-empty queue is the
	// expected time for the remaining batch slots to fill at that rate,
	// clamped to MaxWait — fast traffic flushes stragglers in microseconds
	// instead of parking them for the full fixed deadline.
	var (
		ewma     time.Duration
		haveRate bool
		lastEnq  time.Time
		deadline time.Time // absolute flush deadline, valid while armed
	)
	nextWait := func() time.Duration {
		wait := c.opt.MaxWait
		if c.opt.AdaptiveWait && haveRate {
			if fill := ewma * time.Duration(c.opt.MaxBatch-samples); fill < wait {
				wait = fill
			}
		}
		c.curWait.Store(int64(wait))
		return wait
	}

	admit := func(req *batchReq) {
		if c.opt.AdaptiveWait {
			if !lastEnq.IsZero() {
				d := req.enq.Sub(lastEnq)
				if d < 0 {
					d = 0
				}
				if !haveRate {
					ewma, haveRate = d, true
				} else {
					ewma = (d + 4*ewma) / 5
				}
			}
			lastEnq = req.enq
		}
		if err := req.ctx.Err(); err != nil {
			req.err = err
			close(req.done)
			return
		}
		pending = append(pending, pendingReq{req: req})
		samples += len(req.xs)
		wait := nextWait()
		if !armed {
			timer.Reset(wait)
			armed = true
			deadline = req.enq.Add(wait)
		} else if c.opt.AdaptiveWait {
			// Size flushes leave the timer armed at a deadline computed
			// for an earlier era of traffic; if the rate now says the
			// batch should flush sooner, tighten it so a straggler never
			// pays a stale (possibly full-MaxWait) wait.
			if d := req.enq.Add(wait); d.Before(deadline) {
				timer.Reset(wait)
				deadline = d
			}
		}
		for samples >= c.opt.MaxBatch {
			c.flush(&pending, &samples, c.opt.MaxBatch, FlushSize)
		}
	}

	for {
		var timerC <-chan time.Time
		if armed {
			timerC = timer.C
		}
		select {
		case req := <-c.submit:
			admit(req)
		case <-timerC:
			armed = false
			if samples > 0 {
				c.flush(&pending, &samples, samples, FlushDeadline)
			}
		case <-c.quit:
			// Serve whatever snuck into the buffered queue before Close,
			// then flush the lot. Submitters that lose the race see c.done
			// close and fall back to ErrClosed.
			for {
				select {
				case req := <-c.submit:
					admit(req)
					continue
				default:
				}
				break
			}
			for samples > 0 {
				c.flush(&pending, &samples, min(samples, c.opt.MaxBatch), FlushDrain)
			}
			return
		}
	}
}

// flush classifies up to take samples from the front of the pending queue
// and distributes the results. Requests whose context died while queued are
// dropped without spending backend time on them — the mid-batch
// cancellation path.
func (c *Coalescer) flush(pending *[]pendingReq, samples *int, take int, reason FlushReason) {
	type span struct {
		req  *batchReq
		off  int
		n    int
		base int // offset of the span inside the flushed batch
	}
	var (
		xs     [][]float64
		spans  []span
		oldest time.Time
	)
	q := *pending
	for take > 0 && len(q) > 0 {
		p := &q[0]
		if err := p.req.ctx.Err(); err != nil {
			// Canceled while queued: fail it now, compute nothing for it.
			*samples -= len(p.req.xs) - p.off
			p.req.err = err
			close(p.req.done)
			q = q[1:]
			continue
		}
		n := len(p.req.xs) - p.off
		if n > take {
			n = take
		}
		if oldest.IsZero() || p.req.enq.Before(oldest) {
			oldest = p.req.enq
		}
		spans = append(spans, span{req: p.req, off: p.off, n: n, base: len(xs)})
		xs = append(xs, p.req.xs[p.off:p.off+n]...)
		p.off += n
		take -= n
		*samples -= n
		if p.off == len(p.req.xs) {
			q = q[1:]
		}
	}
	if len(q) == 0 {
		q = nil // let the backing array go once the queue empties
	}
	*pending = q
	if len(xs) == 0 {
		return
	}

	wait := time.Duration(0)
	if !oldest.IsZero() {
		wait = time.Since(oldest)
	}
	out, err := c.backend.ForwardBatch(xs)
	if c.opt.Collector != nil {
		c.opt.Collector.ObserveFlush(FlushStats{Size: len(xs), Reason: reason, QueueWait: wait})
	}
	if err != nil {
		for _, sp := range spans {
			sp.req.err = err
			close(sp.req.done)
		}
		// A split request may still hold its unserved tail at the queue
		// head; its done channel is closed now, so the tail must go too or
		// a later flush would close it twice.
		if last := spans[len(spans)-1].req; len(q) > 0 && q[0].req == last {
			*samples -= len(last.xs) - q[0].off
			q = q[1:]
			if len(q) == 0 {
				q = nil
			}
			*pending = q
		}
		return
	}
	for _, sp := range spans {
		copy(sp.req.out[sp.off:sp.off+sp.n], out[sp.base:sp.base+sp.n])
		sp.req.served += sp.n
		if sp.req.served == len(sp.req.xs) {
			close(sp.req.done)
		}
	}
}
