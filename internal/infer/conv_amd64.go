//go:build amd64

package infer

// hasAVX gates the vector conv micro-kernel. Detected once at startup via
// CPUID/XGETBV (AVX instructions present and the OS saves YMM state).
var hasAVX = cpuHasAVX()

// cpuHasAVX reports whether the CPU and OS support AVX. Implemented in
// conv_amd64.s.
func cpuHasAVX() bool

// convFilterAVX computes one conv filter over width columns (width must be a
// multiple of 8): out[c] = relu(bias + Σ_i w[i]·xn[i·cb+c]) for c in
// [0,width). Each SIMD lane carries one output column through the same
// round-product-then-round-sum sequence in the same ascending-i order as the
// scalar path — VMULPD/VADDPD, never FMA — so every lane is bit-identical to
// nn.Model's forward. The ReLU is VMAXPD(acc, 0), which matches the scalar
// "v > 0 ? v : 0" for every input including NaN (→0) and -0 (→+0).
// Implemented in conv_amd64.s.
//
//go:noescape
func convFilterAVX(xn, w, out *float64, rows, cb, width int, bias float64)
