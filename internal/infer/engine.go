package infer

import (
	"context"
	"fmt"
	"math"
	"sync"

	"slap/internal/nn"
)

// Options configures an Engine.
type Options struct {
	// Workers parallelises the GEMM tile loops across goroutines (0 or 1 =
	// single-threaded). Tiles write disjoint output ranges and each output
	// element keeps its sequential accumulation order, so results are
	// identical for any worker count. Parallel tiles only engage at batch
	// sizes where the fan-out pays for itself.
	Workers int
}

// minParallelBatch is the batch size below which the tile loops stay
// sequential even with Workers > 1: a goroutine hand-off costs more than a
// small batch's whole GEMM.
const minParallelBatch = 64

// Engine runs the cut classifier as blocked, cache-tiled GEMMs over a batch
// of embeddings. It reads the model weights only (never mutates them), so
// one Engine may be shared across goroutines; scratch matrices are pooled
// per call. See the package comment for the matrix layout.
type Engine struct {
	m       *nn.Model
	workers int
	scratch sync.Pool // *scratch

	// denseWT is the dense weight matrix transposed to class-major rows
	// (denseWT[k*Classes+c] = DenseW[c*flat+k]), built once when the AVX
	// dense kernel is available so its 8 class lanes load contiguously.
	denseWT []float64
}

// scratch holds the per-call working matrices, pooled across ForwardBatch
// calls and grown to the largest batch seen.
type scratch struct {
	xn     []float64 // Rows × (Cols·B): normalised inputs; column b·Cols+j
	conv   []float64 // Filters × (Cols·B): post-ReLU conv activations
	act    []float64 // B × (Filters·Cols): sample-major repack for the dense GEMM
	logits []float64 // B × Classes
}

// NewEngine returns a batched GEMM backend over m.
func NewEngine(m *nn.Model, opt Options) *Engine {
	w := opt.Workers
	if w < 1 {
		w = 1
	}
	e := &Engine{m: m, workers: w}
	if hasAVX && m.Classes >= 8 {
		flat := m.Filters * m.Cols
		wT := make([]float64, flat*m.Classes)
		for c := 0; c < m.Classes; c++ {
			for k := 0; k < flat; k++ {
				wT[k*m.Classes+c] = m.DenseW[c*flat+k]
			}
		}
		e.denseWT = wT
	}
	return e
}

// Classes implements Backend.
func (e *Engine) Classes() int { return e.m.Classes }

// InputLen implements Backend.
func (e *Engine) InputLen() int { return e.m.Rows * e.m.Cols }

// PredictBatch runs the whole slice as one batch, checking ctx once up
// front. It satisfies core.SLAP's Batcher hook for callers that want
// batching without cross-goroutine coalescing.
func (e *Engine) PredictBatch(ctx context.Context, xs [][]float64) ([][]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.ForwardBatch(xs)
}

// ForwardBatch implements Backend: probabilities for every input, computed
// as three blocked matrix stages (pack+normalise, conv GEMM, dense GEMM +
// softmax) with a repack between the two GEMMs.
func (e *Engine) ForwardBatch(xs [][]float64) ([][]float64, error) {
	m := e.m
	bsz := len(xs)
	if bsz == 0 {
		return nil, nil
	}
	in := m.Rows * m.Cols
	for i, x := range xs {
		if len(x) != in {
			return nil, fmt.Errorf("infer: input %d has length %d, want %d", i, len(x), in)
		}
	}
	cb := m.Cols * bsz
	flat := m.Filters * m.Cols

	sc := e.getScratch(bsz)
	defer e.scratch.Put(sc)

	// The output slab is handed to callers and so cannot be pooled.
	slab := make([]float64, bsz*m.Classes)
	out := make([][]float64, bsz)
	for b := range out {
		out[b] = slab[b*m.Classes : (b+1)*m.Classes]
	}

	workers := e.workers
	if bsz < minParallelBatch {
		workers = 1
	}
	parallelFor(workers, bsz, func(lo, hi int) { e.pack(xs, sc, cb, lo, hi) })
	parallelFor(workers, m.Filters, func(lo, hi int) { e.convTile(sc, cb, lo, hi) })
	parallelFor(workers, bsz, func(lo, hi int) {
		e.repack(sc, cb, flat, lo, hi)
		e.denseTile(sc, flat, lo, hi)
		for b := lo; b < hi; b++ {
			softmax(sc.logits[b*m.Classes:(b+1)*m.Classes], out[b])
		}
	})
	return out, nil
}

func (e *Engine) getScratch(bsz int) *scratch {
	m := e.m
	sc, _ := e.scratch.Get().(*scratch)
	if sc == nil {
		sc = &scratch{}
	}
	sc.xn = grow(sc.xn, m.Rows*m.Cols*bsz)
	sc.conv = grow(sc.conv, m.Filters*m.Cols*bsz)
	sc.act = grow(sc.act, m.Filters*m.Cols*bsz)
	sc.logits = grow(sc.logits, m.Classes*bsz)
	return sc
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// parallelFor splits [0,n) into contiguous chunks across workers; one
// worker runs inline. Chunks are disjoint, so f must only write within its
// range.
func parallelFor(workers, n int, f func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// pack normalises samples [lo,hi) into the conv-ready layout: element
// (i, b·Cols+j) of a Rows × (Cols·B) matrix.
func (e *Engine) pack(xs [][]float64, sc *scratch, cb, lo, hi int) {
	m := e.m
	for b := lo; b < hi; b++ {
		x := xs[b]
		for i := 0; i < m.Rows; i++ {
			src := x[i*m.Cols : (i+1)*m.Cols]
			mean := m.Mean[i*m.Cols : (i+1)*m.Cols]
			std := m.Std[i*m.Cols : (i+1)*m.Cols]
			dst := sc.xn[i*cb+b*m.Cols : i*cb+(b+1)*m.Cols]
			for j := range dst {
				dst[j] = (src[j] - mean[j]) / std[j]
			}
		}
	}
}

// convColTile is the column-tile width of the conv GEMM: every filter
// re-reads all Rows packed-input rows, so the tile is sized to keep a full
// Rows × convColTile block (≈23 KB at 15 rows) L1-resident while the whole
// filter bank streams over it. Without the tiling, the row stride grows
// with the batch and every weight step takes an L1 miss.
const convColTile = 192

// convTile computes filters [lo,hi) of the conv GEMM — ConvW (Filters×Rows)
// times the packed inputs (Rows×(Cols·B)) — with ReLU fused into the store.
// The micro-kernel covers two filters by four columns: eight independent
// accumulator chains sharing every input load, the same register-exact shape
// as densePair (8 accumulators + 2 weights + 4 inputs + 1 product temp fills
// the 15 usable XMM registers without spilling). Each accumulator still
// starts from the bias and adds in ascending row order, exactly like
// nn.Model's forward.
func (e *Engine) convTile(sc *scratch, cb, lo, hi int) {
	m := e.m
	if hasAVX {
		e.convTileAVX(sc, cb, lo, hi)
		return
	}
	for t0 := 0; t0 < cb; t0 += convColTile {
		t1 := min(t0+convColTile, cb)
		f := lo
		for ; f+1 < hi; f += 2 {
			w0 := m.ConvW[f*m.Rows : (f+1)*m.Rows]
			w1 := m.ConvW[(f+1)*m.Rows : (f+2)*m.Rows]
			b0, b1 := m.ConvB[f], m.ConvB[f+1]
			row0 := sc.conv[f*cb : (f+1)*cb]
			row1 := sc.conv[(f+1)*cb : (f+2)*cb]
			col := t0
			for ; col+4 <= t1; col += 4 {
				a00, a01, a02, a03 := b0, b0, b0, b0
				a10, a11, a12, a13 := b1, b1, b1, b1
				off := col
				for i := 0; i < m.Rows; i++ {
					x := sc.xn[off : off+4 : off+4]
					w0v, w1v := w0[i], w1[i]
					a00 += w0v * x[0]
					a01 += w0v * x[1]
					a02 += w0v * x[2]
					a03 += w0v * x[3]
					a10 += w1v * x[0]
					a11 += w1v * x[1]
					a12 += w1v * x[2]
					a13 += w1v * x[3]
					off += cb
				}
				row0[col+0] = relu(a00)
				row0[col+1] = relu(a01)
				row0[col+2] = relu(a02)
				row0[col+3] = relu(a03)
				row1[col+0] = relu(a10)
				row1[col+1] = relu(a11)
				row1[col+2] = relu(a12)
				row1[col+3] = relu(a13)
			}
			for ; col < t1; col++ {
				a0, a1 := b0, b1
				off := col
				for i := 0; i < m.Rows; i++ {
					xv := sc.xn[off]
					a0 += w0[i] * xv
					a1 += w1[i] * xv
					off += cb
				}
				row0[col] = relu(a0)
				row1[col] = relu(a1)
			}
		}
		if f < hi {
			w := m.ConvW[f*m.Rows : (f+1)*m.Rows]
			bias := m.ConvB[f]
			row := sc.conv[f*cb : (f+1)*cb]
			col := t0
			for ; col+4 <= t1; col += 4 {
				a0, a1, a2, a3 := bias, bias, bias, bias
				off := col
				for i := 0; i < m.Rows; i++ {
					x := sc.xn[off : off+4 : off+4]
					wv := w[i]
					a0 += wv * x[0]
					a1 += wv * x[1]
					a2 += wv * x[2]
					a3 += wv * x[3]
					off += cb
				}
				row[col+0] = relu(a0)
				row[col+1] = relu(a1)
				row[col+2] = relu(a2)
				row[col+3] = relu(a3)
			}
			for ; col < t1; col++ {
				a := bias
				off := col
				for i := 0; i < m.Rows; i++ {
					a += w[i] * sc.xn[off]
					off += cb
				}
				row[col] = relu(a)
			}
		}
	}
}

// convTileAVX is the amd64 fast path of convTile: the vector micro-kernel
// handles 8 columns per step and the sub-8 tile remainder falls back to the
// scalar loop. Both produce bit-identical results (see convFilterAVX), so
// tails and the portable path never diverge from the fast path.
func (e *Engine) convTileAVX(sc *scratch, cb, lo, hi int) {
	m := e.m
	for t0 := 0; t0 < cb; t0 += convColTile {
		t1 := min(t0+convColTile, cb)
		n := (t1 - t0) &^ 7
		for f := lo; f < hi; f++ {
			w := m.ConvW[f*m.Rows : (f+1)*m.Rows]
			bias := m.ConvB[f]
			row := sc.conv[f*cb : (f+1)*cb]
			if n > 0 {
				convFilterAVX(&sc.xn[t0], &w[0], &row[t0], m.Rows, cb, n, bias)
			}
			for col := t0 + n; col < t1; col++ {
				a := bias
				off := col
				for i := 0; i < m.Rows; i++ {
					a += w[i] * sc.xn[off]
					off += cb
				}
				row[col] = relu(a)
			}
		}
	}
}

func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// repack transposes samples [lo,hi) of the conv output from filter-major
// (Filters × Cols·B) to the sample-major layout (B × Filters·Cols) the
// dense GEMM streams, matching the flat index f·Cols+j of the per-sample
// activation vector.
func (e *Engine) repack(sc *scratch, cb, flat, lo, hi int) {
	m := e.m
	for b := lo; b < hi; b++ {
		for f := 0; f < m.Filters; f++ {
			copy(sc.act[b*flat+f*m.Cols:b*flat+(f+1)*m.Cols],
				sc.conv[f*cb+b*m.Cols:f*cb+(b+1)*m.Cols])
		}
	}
}

// denseTile computes logits for samples [lo,hi): DenseW (Classes×flat)
// times the activations (flat×B). The micro-kernel covers two samples by
// four classes — eight independent accumulator chains sharing every weight
// and activation load — so the 1280-long dot products run near one
// multiply-add per cycle instead of one per FP-add latency. Accumulation
// order per output element is bias-first ascending-k, as in the per-sample
// path.
func (e *Engine) denseTile(sc *scratch, flat, lo, hi int) {
	if hasAVX && e.denseWT != nil {
		e.denseTileAVX(sc, flat, lo, hi)
		return
	}
	b := lo
	for ; b+1 < hi; b += 2 {
		e.densePair(sc, flat, b)
	}
	if b < hi {
		e.denseOne(sc, flat, b)
	}
}

// denseTileAVX is the amd64 fast path of denseTile: the vector micro-kernel
// covers 8 classes per step over the transposed weights and the sub-8 class
// remainder falls back to the scalar loop. Both produce bit-identical
// results (see denseLogitsAVX), so tails and the portable path never
// diverge from the fast path.
func (e *Engine) denseTileAVX(sc *scratch, flat, lo, hi int) {
	m := e.m
	w8 := m.Classes &^ 7
	for b := lo; b < hi; b++ {
		x := sc.act[b*flat : (b+1)*flat]
		l := sc.logits[b*m.Classes : (b+1)*m.Classes]
		if w8 > 0 && flat > 0 {
			denseLogitsAVX(&x[0], &e.denseWT[0], &m.DenseB[0], &l[0], flat, m.Classes, w8)
		}
		for c := w8; c < m.Classes; c++ {
			w := m.DenseW[c*flat : (c+1)*flat]
			a := m.DenseB[c]
			for k := 0; k < flat; k++ {
				a += w[k] * x[k]
			}
			l[c] = a
		}
	}
}

func (e *Engine) densePair(sc *scratch, flat, b int) {
	m := e.m
	x0 := sc.act[b*flat : (b+1)*flat]
	x1 := sc.act[(b+1)*flat : (b+2)*flat]
	l0 := sc.logits[b*m.Classes : (b+1)*m.Classes]
	l1 := sc.logits[(b+1)*m.Classes : (b+2)*m.Classes]
	c := 0
	for ; c+4 <= m.Classes; c += 4 {
		w0 := m.DenseW[(c+0)*flat : (c+1)*flat]
		w1 := m.DenseW[(c+1)*flat : (c+2)*flat]
		w2 := m.DenseW[(c+2)*flat : (c+3)*flat]
		w3 := m.DenseW[(c+3)*flat : (c+4)*flat]
		a00, a01 := m.DenseB[c+0], m.DenseB[c+0]
		a10, a11 := m.DenseB[c+1], m.DenseB[c+1]
		a20, a21 := m.DenseB[c+2], m.DenseB[c+2]
		a30, a31 := m.DenseB[c+3], m.DenseB[c+3]
		for k := 0; k < flat; k++ {
			x0v, x1v := x0[k], x1[k]
			a00 += w0[k] * x0v
			a01 += w0[k] * x1v
			a10 += w1[k] * x0v
			a11 += w1[k] * x1v
			a20 += w2[k] * x0v
			a21 += w2[k] * x1v
			a30 += w3[k] * x0v
			a31 += w3[k] * x1v
		}
		l0[c+0], l1[c+0] = a00, a01
		l0[c+1], l1[c+1] = a10, a11
		l0[c+2], l1[c+2] = a20, a21
		l0[c+3], l1[c+3] = a30, a31
	}
	for ; c < m.Classes; c++ {
		w := m.DenseW[c*flat : (c+1)*flat]
		a0, a1 := m.DenseB[c], m.DenseB[c]
		for k := 0; k < flat; k++ {
			wv := w[k]
			a0 += wv * x0[k]
			a1 += wv * x1[k]
		}
		l0[c], l1[c] = a0, a1
	}
}

func (e *Engine) denseOne(sc *scratch, flat, b int) {
	m := e.m
	x := sc.act[b*flat : (b+1)*flat]
	l := sc.logits[b*m.Classes : (b+1)*m.Classes]
	c := 0
	for ; c+4 <= m.Classes; c += 4 {
		w0 := m.DenseW[(c+0)*flat : (c+1)*flat]
		w1 := m.DenseW[(c+1)*flat : (c+2)*flat]
		w2 := m.DenseW[(c+2)*flat : (c+3)*flat]
		w3 := m.DenseW[(c+3)*flat : (c+4)*flat]
		a0, a1, a2, a3 := m.DenseB[c+0], m.DenseB[c+1], m.DenseB[c+2], m.DenseB[c+3]
		for k := 0; k < flat; k++ {
			xv := x[k]
			a0 += w0[k] * xv
			a1 += w1[k] * xv
			a2 += w2[k] * xv
			a3 += w3[k] * xv
		}
		l[c+0], l[c+1], l[c+2], l[c+3] = a0, a1, a2, a3
	}
	for ; c < m.Classes; c++ {
		w := m.DenseW[c*flat : (c+1)*flat]
		a := m.DenseB[c]
		for k := 0; k < flat; k++ {
			a += w[k] * x[k]
		}
		l[c] = a
	}
}

// softmax fills out with the stable softmax of logits, using the same
// max-subtract / exp / normalise operation order as the per-sample path.
func softmax(logits, out []float64) {
	maxv := math.Inf(-1)
	for _, v := range logits {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for c, v := range logits {
		out[c] = math.Exp(v - maxv)
		sum += out[c]
	}
	for c := range out {
		out[c] /= sum
	}
}
