//go:build amd64

#include "textflag.h"

// func cpuHasAVX() bool
//
// CPUID leaf 1: ECX bit 28 = AVX, bit 27 = OSXSAVE. When both are set,
// XGETBV(0) bits 1-2 confirm the OS saves XMM+YMM state on context switch.
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	CPUID
	MOVL	CX, BX
	ANDL	$(1<<27 | 1<<28), BX
	CMPL	BX, $(1<<27 | 1<<28)
	JNE	noavx
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func convFilterAVX(xn, w, out *float64, rows, cb, width int, bias float64)
//
// For col in [0,width) step 8:
//	Y0,Y1 = broadcast(bias)
//	for i in [0,rows): Y0,Y1 += broadcast(w[i]) * xn[i*cb+col .. +8]
//	out[col..+8] = VMAXPD(Y0|Y1, 0)
//
// VMULPD then VADDPD keeps scalar rounding per lane (no FMA), and the
// accumulation order is bias-first ascending-i — bit-identical to the
// per-sample forward pass. VMAXPD operand order matters: acc must be src1 so
// NaN and -0 resolve to src2 (+0), matching the scalar relu branch.
TEXT ·convFilterAVX(SB), NOSPLIT, $0-56
	MOVQ	xn+0(FP), SI
	MOVQ	w+8(FP), DX
	MOVQ	out+16(FP), DI
	MOVQ	rows+24(FP), R8
	MOVQ	cb+32(FP), R9
	MOVQ	width+40(FP), R10
	VBROADCASTSD	bias+48(FP), Y6
	VXORPS	Y5, Y5, Y5
	SHLQ	$3, R9          // cb in bytes
	XORQ	CX, CX          // col
colloop:
	LEAQ	8(CX), AX
	CMPQ	AX, R10
	JGT	done
	VMOVAPD	Y6, Y0
	VMOVAPD	Y6, Y1
	LEAQ	(SI)(CX*8), BX  // &xn[col]
	MOVQ	DX, R11         // &w[0]
	MOVQ	R8, R12         // rows countdown
rowloop:
	VBROADCASTSD	(R11), Y2
	VMOVUPD	(BX), Y3
	VMOVUPD	32(BX), Y4
	VMULPD	Y3, Y2, Y3
	VADDPD	Y3, Y0, Y0
	VMULPD	Y4, Y2, Y4
	VADDPD	Y4, Y1, Y1
	ADDQ	$8, R11
	ADDQ	R9, BX
	DECQ	R12
	JNZ	rowloop
	VMAXPD	Y5, Y0, Y0      // Intel order (Y0, Y0, Y5): src1=acc, src2=0
	VMAXPD	Y5, Y1, Y1
	VMOVUPD	Y0, (DI)(CX*8)
	VMOVUPD	Y1, 32(DI)(CX*8)
	MOVQ	AX, CX
	JMP	colloop
done:
	VZEROUPPER
	RET
