package infer

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingBackend wraps a Backend and records every flush it sees.
type countingBackend struct {
	inner   Backend
	mu      sync.Mutex
	batches []int
	fail    atomic.Bool
}

var errBackend = errors.New("backend exploded")

func (c *countingBackend) Classes() int  { return c.inner.Classes() }
func (c *countingBackend) InputLen() int { return c.inner.InputLen() }

func (c *countingBackend) ForwardBatch(xs [][]float64) ([][]float64, error) {
	c.mu.Lock()
	c.batches = append(c.batches, len(xs))
	c.mu.Unlock()
	if c.fail.Load() {
		return nil, errBackend
	}
	return c.inner.ForwardBatch(xs)
}

func (c *countingBackend) sizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.batches...)
}

// statsCollector records flush stats for assertions.
type statsCollector struct {
	mu    sync.Mutex
	stats []FlushStats
}

func (s *statsCollector) ObserveFlush(fs FlushStats) {
	s.mu.Lock()
	s.stats = append(s.stats, fs)
	s.mu.Unlock()
}

func (s *statsCollector) all() []FlushStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]FlushStats(nil), s.stats...)
}

func newTestCoalescer(t *testing.T, opt CoalescerOptions) (*Coalescer, *countingBackend, Reference) {
	t.Helper()
	m := randomModel(5, 4, 8, 6, 77)
	ref := Reference{M: m}
	cb := &countingBackend{inner: NewEngine(m, Options{})}
	c := NewCoalescer(cb, opt)
	t.Cleanup(c.Close)
	return c, cb, ref
}

// TestCoalescerMatchesReference drives many producers through one coalescer
// and checks every caller gets exactly its own results, regardless of how
// submissions were merged or split across flushes.
func TestCoalescerMatchesReference(t *testing.T) {
	c, _, ref := newTestCoalescer(t, CoalescerOptions{MaxBatch: 16, MaxWait: 200 * time.Microsecond})
	const producers = 8
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for iter := 0; iter < 30; iter++ {
				n := 1 + rng.Intn(40) // often larger than MaxBatch/producer share
				xs := randomBatch(ref.M, n, int64(p*1000+iter))
				got, err := c.PredictBatch(context.Background(), xs)
				if err != nil {
					errs <- err
					return
				}
				want, _ := ref.ForwardBatch(xs)
				for i := range xs {
					for cl := range want[i] {
						if got[i][cl] != want[i][cl] {
							errs <- fmt.Errorf("producer %d iter %d sample %d: results mixed up", p, iter, i)
							return
						}
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCoalescerFlushReasons checks the size and deadline triggers and that
// the Collector sees them labelled correctly.
func TestCoalescerFlushReasons(t *testing.T) {
	col := &statsCollector{}
	c, cb, ref := newTestCoalescer(t, CoalescerOptions{MaxBatch: 8, MaxWait: time.Hour, Collector: col})

	// 16 samples in one submission: two size-triggered flushes, no waiting
	// on the one-hour deadline.
	if _, err := c.PredictBatch(context.Background(), randomBatch(ref.M, 16, 1)); err != nil {
		t.Fatal(err)
	}
	for _, fs := range col.all() {
		if fs.Reason != FlushSize || fs.Size != 8 {
			t.Fatalf("flush %+v, want size-triggered batches of 8", fs)
		}
	}
	if got := cb.sizes(); len(got) != 2 {
		t.Fatalf("backend saw %v, want two batches", got)
	}

	// A lone under-sized submission must go out on the deadline.
	col2 := &statsCollector{}
	c2, _, _ := newTestCoalescer(t, CoalescerOptions{MaxBatch: 64, MaxWait: time.Millisecond, Collector: col2})
	t0 := time.Now()
	if _, err := c2.Predict(context.Background(), randomBatch(ref.M, 1, 2)[0]); err != nil {
		t.Fatal(err)
	}
	if waited := time.Since(t0); waited > time.Second {
		t.Fatalf("lone sample waited %v, deadline flush broken", waited)
	}
	stats := col2.all()
	if len(stats) != 1 || stats[0].Reason != FlushDeadline || stats[0].Size != 1 {
		t.Fatalf("stats %+v, want one deadline flush of 1", stats)
	}
	if stats[0].QueueWait <= 0 {
		t.Fatalf("deadline flush reported no queue wait")
	}
}

// TestCoalescerStress is the -race workhorse: many producers, small batches,
// mid-flight cancellations, and a Close racing the tail of the traffic.
func TestCoalescerStress(t *testing.T) {
	m := randomModel(5, 4, 8, 6, 78)
	cb := &countingBackend{inner: NewEngine(m, Options{})}
	c := NewCoalescer(cb, CoalescerOptions{MaxBatch: 8, MaxWait: 100 * time.Microsecond, QueueCap: 16})

	const producers = 12
	var wg sync.WaitGroup
	var served, canceled, closed atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p)))
			for iter := 0; iter < 50; iter++ {
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(3) == 0 {
					// A third of requests carry a deadline short enough to
					// fire while queued or mid-batch.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				xs := randomBatch(m, 1+rng.Intn(20), int64(iter))
				_, err := c.PredictBatch(ctx, xs)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					canceled.Add(1)
				case errors.Is(err, ErrClosed):
					closed.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
					return
				}
			}
		}(p)
	}
	// Close while traffic is still in flight on some runs.
	time.Sleep(2 * time.Millisecond)
	c.Close()
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("no request was ever served")
	}
	t.Logf("served=%d canceled=%d closed=%d flushes=%d",
		served.Load(), canceled.Load(), closed.Load(), len(cb.sizes()))
}

// TestCoalescerBackendError checks an erroring backend fails every caller in
// the flushed batch — including a request split across flushes — without
// double-closing or hanging anyone.
func TestCoalescerBackendError(t *testing.T) {
	c, cb, ref := newTestCoalescer(t, CoalescerOptions{MaxBatch: 8, MaxWait: time.Millisecond})
	cb.fail.Store(true)
	// 20 samples split across three flushes; every wait must resolve to the
	// backend error.
	if _, err := c.PredictBatch(context.Background(), randomBatch(ref.M, 20, 3)); !errors.Is(err, errBackend) {
		t.Fatalf("err = %v, want backend error", err)
	}
	// The coalescer must keep serving after a backend error clears.
	cb.fail.Store(false)
	if _, err := c.PredictBatch(context.Background(), randomBatch(ref.M, 4, 4)); err != nil {
		t.Fatalf("coalescer did not recover after backend error: %v", err)
	}
}

func TestCoalescerClose(t *testing.T) {
	m := randomModel(5, 4, 8, 6, 79)
	c := NewCoalescer(NewEngine(m, Options{}), CoalescerOptions{MaxBatch: 64, MaxWait: time.Hour})
	c.Close()
	c.Close() // idempotent
	if _, err := c.PredictBatch(context.Background(), randomBatch(m, 2, 5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrClosed", err)
	}
	if _, err := c.Predict(context.Background(), randomBatch(m, 1, 6)[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close: err = %v, want ErrClosed", err)
	}
}

// TestCoalescerDrainOnClose submits with a one-hour deadline, closes, and
// expects the pending batch to be served by the drain rather than dropped.
// A submission can legitimately lose the race against Close (ErrClosed), so
// the test retries until it observes an actual drain.
func TestCoalescerDrainOnClose(t *testing.T) {
	m := randomModel(5, 4, 8, 6, 80)
	for attempt := 0; attempt < 50; attempt++ {
		col := &statsCollector{}
		c := NewCoalescer(NewEngine(m, Options{}), CoalescerOptions{MaxBatch: 64, MaxWait: time.Hour, Collector: col})
		done := make(chan error, 1)
		go func() {
			_, err := c.PredictBatch(context.Background(), randomBatch(m, 3, 7))
			done <- err
		}()
		time.Sleep(time.Millisecond)
		c.Close()
		err := <-done
		if errors.Is(err, ErrClosed) {
			continue
		}
		if err != nil {
			t.Fatalf("drained request failed: %v", err)
		}
		stats := col.all()
		if len(stats) != 1 || stats[0].Reason != FlushDrain {
			t.Fatalf("stats %+v, want one drain flush", stats)
		}
		return
	}
	t.Fatal("never observed a drain flush in 50 attempts")
}

// TestCoalescerAdaptiveWait checks that under fast concurrent traffic the
// EWMA-derived deadline drops far below the configured MaxWait (here an
// hour, so any deadline-dependent straggler would hang without adaptation),
// while every caller still receives its own correct results.
func TestCoalescerAdaptiveWait(t *testing.T) {
	c, _, ref := newTestCoalescer(t, CoalescerOptions{MaxBatch: 4, MaxWait: time.Hour, AdaptiveWait: true})
	if got := c.CurrentWait(); got != time.Hour {
		t.Fatalf("initial CurrentWait = %v, want the configured MaxWait", got)
	}
	const producers = 4
	var wg sync.WaitGroup
	errs := make(chan error, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			xs := randomBatch(ref.M, 12, int64(500+p))
			for i, x := range xs {
				got, err := c.Predict(context.Background(), x)
				if err != nil {
					errs <- err
					return
				}
				want := ref.M.Predict(x)
				for cl := range want {
					if got[cl] != want[cl] {
						errs <- fmt.Errorf("producer %d sample %d: wrong result", p, i)
						return
					}
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := c.CurrentWait(); got >= time.Hour {
		t.Fatalf("CurrentWait = %v after fast traffic, want below the configured MaxWait", got)
	}
}
