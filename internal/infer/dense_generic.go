//go:build !amd64

package infer

// denseLogitsAVX is never called when hasAVX is false.
func denseLogitsAVX(x, wT, bias, out *float64, flat, stride, width int) {
	panic("infer: denseLogitsAVX without AVX support")
}
