// Package infer is the batched inference engine of the SLAP flow: where
// internal/nn runs one 15×10 cut embedding at a time through triple-nested
// loops, this package packs B embeddings into matrices and runs the whole
// classifier — conv → ReLU → dense → softmax — as blocked GEMMs (Engine),
// and coalesces Predict calls from many goroutines into shared forward
// passes flushed on size or deadline (Coalescer).
//
// The conv layer's 15×1 filters span all input rows, so the convolution over
// a batch is a single 128×15 by 15×(10·B) matmul; the dense layer is a
// 10×1280 by 1280×B matmul. Both kernels accumulate each output element in
// exactly the order the per-sample nn.Model forward pass does (bias first,
// then ascending k), so batched probabilities match the per-sample path to
// the last bit on every platform with consistent FP contraction — the
// golden-equivalence suite pins this against the Reference backend.
package infer

import (
	"errors"
	"fmt"

	"slap/internal/nn"
)

// ErrClosed is returned by Coalescer submissions after Close.
var ErrClosed = errors.New("infer: coalescer closed")

// Backend computes class probabilities for a batch of inputs. Engine is the
// production implementation; Reference delegates to the per-sample model
// forward pass and exists to prove batched backends equivalent.
//
// Backends must be safe for concurrent ForwardBatch calls: the Coalescer
// serialises its own flushes, but nothing stops several coalescers or
// direct callers from sharing one backend.
type Backend interface {
	// Classes returns the output probability-vector length.
	Classes() int
	// InputLen returns the required flat input length (Rows·Cols).
	InputLen() int
	// ForwardBatch returns one probability vector per input. The returned
	// slices are freshly allocated and owned by the caller.
	ForwardBatch(xs [][]float64) ([][]float64, error)
}

// Reference is the golden Backend: every sample goes through the original
// per-sample nn.Model forward pass. Slow, obviously correct, and the
// equivalence baseline for every batched backend.
type Reference struct {
	M *nn.Model
}

// Classes implements Backend.
func (r Reference) Classes() int { return r.M.Classes }

// InputLen implements Backend.
func (r Reference) InputLen() int { return r.M.Rows * r.M.Cols }

// ForwardBatch implements Backend by calling Predict per sample.
func (r Reference) ForwardBatch(xs [][]float64) ([][]float64, error) {
	in := r.InputLen()
	out := make([][]float64, len(xs))
	for i, x := range xs {
		if len(x) != in {
			return nil, fmt.Errorf("infer: input %d has length %d, want %d", i, len(x), in)
		}
		out[i] = r.M.Predict(x)
	}
	return out, nil
}
