//go:build amd64

package infer

// denseLogitsAVX computes one sample's logits over width classes (width
// must be a multiple of 8, flat >= 1): out[c] = bias[c] + Σ_k
// x[k]·wT[k·stride+c] for c in [0,width). Each SIMD lane carries one class
// through the same round-product-then-round-sum sequence in the same
// ascending-k order as the scalar path — VMULPD/VADDPD, never FMA — so
// every lane is bit-identical to nn.Model's forward. Implemented in
// dense_amd64.s.
//
//go:noescape
func denseLogitsAVX(x, wT, bias, out *float64, flat, stride, width int)
