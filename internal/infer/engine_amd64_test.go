//go:build amd64

package infer

import "testing"

// TestEngineScalarFallback forces the portable conv path on AVX hosts so the
// non-amd64 code keeps its bit-identity guarantee under test. hasAVX is a
// package var only on amd64, hence the build tag.
func TestEngineScalarFallback(t *testing.T) {
	if !hasAVX {
		t.Skip("already running the scalar path")
	}
	hasAVX = false
	defer func() { hasAVX = true }()

	m := randomModel(15, 10, 128, 10, 43)
	eng := NewEngine(m, Options{})
	for _, bsz := range []int{1, 7, 64} {
		xs := randomBatch(m, bsz, int64(200+bsz))
		got, err := eng.ForwardBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			want := m.Predict(x)
			for c := range want {
				if got[i][c] != want[c] {
					t.Fatalf("batch %d sample %d class %d: scalar path diverged", bsz, i, c)
				}
			}
		}
	}
}
