//go:build amd64

package infer

import "testing"

// TestEngineScalarFallback forces the portable conv path on AVX hosts so the
// non-amd64 code keeps its bit-identity guarantee under test. hasAVX is a
// package var only on amd64, hence the build tag.
// TestDenseScalarFallback pins the AVX dense GEMM kernel to the per-sample
// forward pass bit for bit — including the scalar class tail (10 classes =
// one 8-wide vector step + 2 scalar) and a narrow model whose class count
// never reaches the vector width — and then forces the scalar dense path
// for the same comparison.
func TestDenseScalarFallback(t *testing.T) {
	if !hasAVX {
		t.Skip("no AVX: dense kernel not in play")
	}
	for _, classes := range []int{10, 6} {
		m := randomModel(15, 10, 64, classes, 47)
		eng := NewEngine(m, Options{})
		if classes >= 8 && eng.denseWT == nil {
			t.Fatalf("classes=%d: transposed dense weights not built", classes)
		}
		if classes < 8 && eng.denseWT != nil {
			t.Fatalf("classes=%d: unexpected transposed weights for sub-vector width", classes)
		}
		xs := randomBatch(m, 9, int64(300+classes))
		got, err := eng.ForwardBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			want := m.Predict(x)
			for c := range want {
				if got[i][c] != want[c] {
					t.Fatalf("classes=%d sample %d class %d: AVX dense path diverged", classes, i, c)
				}
			}
		}
	}

	// Forced fallback: denseWT present but the AVX gate off must route
	// through densePair/denseOne and still match exactly.
	m := randomModel(15, 10, 64, 10, 48)
	eng := NewEngine(m, Options{})
	hasAVX = false
	defer func() { hasAVX = true }()
	xs := randomBatch(m, 5, 301)
	got, err := eng.ForwardBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := m.Predict(x)
		for c := range want {
			if got[i][c] != want[c] {
				t.Fatalf("sample %d class %d: forced scalar dense path diverged", i, c)
			}
		}
	}
}

func TestEngineScalarFallback(t *testing.T) {
	if !hasAVX {
		t.Skip("already running the scalar path")
	}
	hasAVX = false
	defer func() { hasAVX = true }()

	m := randomModel(15, 10, 128, 10, 43)
	eng := NewEngine(m, Options{})
	for _, bsz := range []int{1, 7, 64} {
		xs := randomBatch(m, bsz, int64(200+bsz))
		got, err := eng.ForwardBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range xs {
			want := m.Predict(x)
			for c := range want {
				if got[i][c] != want[c] {
					t.Fatalf("batch %d sample %d class %d: scalar path diverged", bsz, i, c)
				}
			}
		}
	}
}
