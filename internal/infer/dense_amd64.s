//go:build amd64

#include "textflag.h"

// func denseLogitsAVX(x, wT, bias, out *float64, flat, stride, width int)
//
// For c in [0,width) step 8:
//	Y0,Y1 = bias[c..c+7]
//	for k in [0,flat): Y0,Y1 += broadcast(x[k]) * wT[k*stride+c .. +8]
//	out[c..c+8] = Y0|Y1
//
// wT is the dense weight matrix transposed to class-major rows
// (wT[k*stride+c] = DenseW[c*flat+k]) so the 8 class lanes of one k-step
// load contiguously. VMULPD then VADDPD keeps scalar rounding per lane (no
// FMA) and the accumulation order is bias-first ascending-k — bit-identical
// to the per-sample forward pass and the portable denseOne/densePair loops.
TEXT ·denseLogitsAVX(SB), NOSPLIT, $0-56
	MOVQ	x+0(FP), SI
	MOVQ	wT+8(FP), DX
	MOVQ	bias+16(FP), BX
	MOVQ	out+24(FP), DI
	MOVQ	flat+32(FP), R8
	MOVQ	stride+40(FP), R9
	MOVQ	width+48(FP), R10
	SHLQ	$3, R9          // stride in bytes
	XORQ	CX, CX          // c
cloop:
	LEAQ	8(CX), AX
	CMPQ	AX, R10
	JGT	done
	VMOVUPD	(BX)(CX*8), Y0
	VMOVUPD	32(BX)(CX*8), Y1
	MOVQ	SI, R11         // &x[0]
	LEAQ	(DX)(CX*8), R13 // &wT[c]
	MOVQ	R8, R12         // flat countdown
kloop:
	VBROADCASTSD	(R11), Y2
	VMOVUPD	(R13), Y3
	VMOVUPD	32(R13), Y4
	VMULPD	Y3, Y2, Y3
	VADDPD	Y3, Y0, Y0
	VMULPD	Y4, Y2, Y4
	VADDPD	Y4, Y1, Y1
	ADDQ	$8, R11
	ADDQ	R9, R13
	DECQ	R12
	JNZ	kloop
	VMOVUPD	Y0, (DI)(CX*8)
	VMOVUPD	Y1, 32(DI)(CX*8)
	MOVQ	AX, CX
	JMP	cloop
done:
	VZEROUPPER
	RET
