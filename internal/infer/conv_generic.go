//go:build !amd64

package infer

// hasAVX is false off amd64; convTile always takes the portable scalar path.
const hasAVX = false

// convFilterAVX is never called when hasAVX is false.
func convFilterAVX(xn, w, out *float64, rows, cb, width int, bias float64) {
	panic("infer: convFilterAVX without AVX support")
}
