package infer

import (
	"fmt"
	"testing"
)

// BenchmarkBatchForward measures batched GEMM throughput at several batch
// sizes against the per-sample baseline below; the ns/sample metric is the
// comparable number. The PR's acceptance bar is >= 3x single-thread
// throughput over BenchmarkPerSamplePredict at batch >= 64.
func BenchmarkBatchForward(b *testing.B) {
	m := randomModel(15, 10, 128, 10, 91)
	for _, bsz := range []int{1, 7, 64, 256, 1000} {
		xs := randomBatch(m, bsz, int64(bsz))
		b.Run(fmt.Sprintf("batch=%d", bsz), func(b *testing.B) {
			eng := NewEngine(m, Options{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.ForwardBatch(xs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*bsz), "ns/sample")
		})
	}
	b.Run("batch=1000/workers=4", func(b *testing.B) {
		xs := randomBatch(m, 1000, 1000)
		eng := NewEngine(m, Options{Workers: 4})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.ForwardBatch(xs); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*1000), "ns/sample")
	})
}

// BenchmarkPerSamplePredict is the single-thread per-sample baseline the
// batched numbers are compared against.
func BenchmarkPerSamplePredict(b *testing.B) {
	m := randomModel(15, 10, 128, 10, 91)
	xs := randomBatch(m, 64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(xs[i%len(xs)])
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/sample")
}
