package infer

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"slap/internal/nn"
)

// randomModel builds a seeded model with non-trivial normalisation so the
// pack stage is exercised, not just identity-passed.
func randomModel(rows, cols, filters, classes int, seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	m := nn.NewModel(rows, cols, filters, classes, rng)
	for i := range m.Mean {
		m.Mean[i] = rng.NormFloat64()
		m.Std[i] = 0.5 + rng.Float64()
	}
	return m
}

func randomBatch(m *nn.Model, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, m.Rows*m.Cols)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xs[i] = x
	}
	return xs
}

func argmax(p []float64) int {
	best, bi := math.Inf(-1), 0
	for c, v := range p {
		if v > best {
			best, bi = v, c
		}
	}
	return bi
}

// TestEngineMatchesReference is the golden-equivalence suite: across seeded
// random models (the paper's 128-filter architecture plus odd shapes that
// stress the micro-kernel tails) and batch sizes {1, 7, 64, 1000}, the
// batched engine must produce the identical argmax class and probabilities
// within 1e-9 of the per-sample path. The kernels share the per-sample
// accumulation order, so the drift observed in practice is exactly zero;
// the 1e-9 bound is the acceptance criterion's ceiling, not the target.
func TestEngineMatchesReference(t *testing.T) {
	configs := []struct {
		name                     string
		rows, cols, filters, cls int
		workers                  int
	}{
		{"paper-128f", 15, 10, 128, 10, 1},
		{"paper-128f-parallel", 15, 10, 128, 10, 4},
		{"odd-7f-3c", 15, 10, 7, 3, 1},
		{"small-5x4-32f-6c", 5, 4, 32, 6, 2},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			m := randomModel(cfg.rows, cfg.cols, cfg.filters, cfg.cls, 41)
			eng := NewEngine(m, Options{Workers: cfg.workers})
			ref := Reference{M: m}
			for _, bsz := range []int{1, 7, 64, 1000} {
				xs := randomBatch(m, bsz, int64(bsz))
				got, err := eng.ForwardBatch(xs)
				if err != nil {
					t.Fatalf("batch %d: %v", bsz, err)
				}
				want, err := ref.ForwardBatch(xs)
				if err != nil {
					t.Fatalf("batch %d reference: %v", bsz, err)
				}
				for i := range xs {
					if ga, wa := argmax(got[i]), argmax(want[i]); ga != wa {
						t.Fatalf("batch %d sample %d: argmax %d, reference %d", bsz, i, ga, wa)
					}
					for c := range got[i] {
						if d := math.Abs(got[i][c] - want[i][c]); d > 1e-9 {
							t.Fatalf("batch %d sample %d class %d: |%g - %g| = %g > 1e-9",
								bsz, i, c, got[i][c], want[i][c], d)
						}
					}
				}
			}
		})
	}
}

// TestEngineBitIdentical pins the stronger property the kernels are built
// for: not just 1e-9-close but bit-for-bit equal to nn.Model.Predict, which
// is what makes batched mapping QoR byte-identical.
func TestEngineBitIdentical(t *testing.T) {
	m := randomModel(15, 10, 128, 10, 43)
	eng := NewEngine(m, Options{})
	xs := randomBatch(m, 129, 44)
	got, err := eng.ForwardBatch(xs)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		want := m.Predict(x)
		for c := range want {
			if got[i][c] != want[c] {
				t.Fatalf("sample %d class %d: batched %x, per-sample %x",
					i, c, math.Float64bits(got[i][c]), math.Float64bits(want[c]))
			}
		}
	}
}

func TestEngineValidatesInput(t *testing.T) {
	m := randomModel(15, 10, 8, 10, 45)
	eng := NewEngine(m, Options{})
	if _, err := eng.ForwardBatch([][]float64{make([]float64, 149)}); err == nil {
		t.Fatal("short input accepted")
	}
	if out, err := eng.ForwardBatch(nil); err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v, want nil/nil", out, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.PredictBatch(ctx, randomBatch(m, 1, 1)); err == nil {
		t.Fatal("canceled context accepted")
	}
}

// TestEngineScratchReuse runs mixed batch sizes through one engine so the
// pooled scratch is exercised shrinking and growing; stale scratch contents
// must never leak into results.
func TestEngineScratchReuse(t *testing.T) {
	m := randomModel(15, 10, 16, 10, 46)
	eng := NewEngine(m, Options{})
	ref := Reference{M: m}
	for _, bsz := range []int{64, 3, 200, 1, 64} {
		xs := randomBatch(m, bsz, int64(100+bsz))
		got, err := eng.ForwardBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := ref.ForwardBatch(xs)
		for i := range xs {
			for c := range got[i] {
				if got[i][c] != want[i][c] {
					t.Fatalf("batch %d sample %d: scratch reuse corrupted results", bsz, i)
				}
			}
		}
	}
}
