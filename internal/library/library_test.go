package library

import (
	"math/rand"
	"strings"
	"testing"

	"slap/internal/tt"
)

func TestParseExprBasics(t *testing.T) {
	cases := []struct {
		expr string
		want tt.TT
		pins int
	}{
		{"a", tt.Var(0), 1},
		{"!a", tt.Var(0).Not(), 1},
		{"a&b", tt.Var(0).And(tt.Var(1)), 2},
		{"a|b", tt.Var(0).Or(tt.Var(1)), 2},
		{"a^b", tt.Var(0).Xor(tt.Var(1)), 2},
		{"!(a&b)", tt.Var(0).And(tt.Var(1)).Not(), 2},
		{"(a&b)|c", tt.Var(0).And(tt.Var(1)).Or(tt.Var(2)), 3},
		{"a&b&c&d&e", tt.Var(0).And(tt.Var(1)).And(tt.Var(2)).And(tt.Var(3)).And(tt.Var(4)), 5},
		{"a ^ b ^ c", tt.Var(0).Xor(tt.Var(1)).Xor(tt.Var(2)), 3},
		{"!!a", tt.Var(0), 1},
		{"a&(b|!c)", tt.Var(0).And(tt.Var(1).Or(tt.Var(2).Not())), 3},
	}
	for _, c := range cases {
		f, pins, err := ParseExpr(c.expr)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", c.expr, err)
		}
		if f != c.want {
			t.Errorf("ParseExpr(%q) = %08x, want %08x", c.expr, uint32(f), uint32(c.want))
		}
		if pins != c.pins {
			t.Errorf("ParseExpr(%q) pins = %d, want %d", c.expr, pins, c.pins)
		}
	}
}

func TestParseExprPrecedence(t *testing.T) {
	// & binds tighter than ^, which binds tighter than |.
	f, _, err := ParseExpr("a|b&c")
	if err != nil {
		t.Fatal(err)
	}
	want := tt.Var(0).Or(tt.Var(1).And(tt.Var(2)))
	if f != want {
		t.Errorf("a|b&c parsed with wrong precedence")
	}
	f, _, err = ParseExpr("a^b&c")
	if err != nil {
		t.Fatal(err)
	}
	want = tt.Var(0).Xor(tt.Var(1).And(tt.Var(2)))
	if f != want {
		t.Errorf("a^b&c parsed with wrong precedence")
	}
}

func TestParseExprErrors(t *testing.T) {
	for _, expr := range []string{"", "a&", "(a", "a)", "f", "a$b", "!"} {
		if _, _, err := ParseExpr(expr); err == nil {
			t.Errorf("ParseExpr(%q) should fail", expr)
		}
	}
}

func TestParseGateLine(t *testing.T) {
	l, err := Parse("t", strings.NewReader(`
# comment
GATE inv 0.5 O=!a DELAY 4 SLOPE 1.5
GATE nand2 0.7 O=!(a&b) DELAY 8 SLOPE 2
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Gates) != 2 {
		t.Fatalf("parsed %d gates, want 2", len(l.Gates))
	}
	inv := l.Gate("inv")
	if inv == nil || inv.Area != 0.5 || inv.Delay != 4 || inv.Slope != 1.5 || inv.NumPins != 1 {
		t.Fatalf("inv parsed wrong: %+v", inv)
	}
	if l.Inv != inv {
		t.Errorf("designated inverter not found")
	}
	if l.Gate("nope") != nil {
		t.Errorf("Gate on unknown name should return nil")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"GATE only3fields O=!a",
		"GATE g bad_area O=!a",
		"GATE g 1.0 X=!a",
		"GATE g 1.0 O=!a DELAY x",
		"GATE g 1.0 O=!a WEIGHT 3",
		"GATE g 1.0 O=!f",
	}
	for _, c := range cases {
		if _, err := Parse("t", strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
	// Library without an inverter must be rejected.
	if _, err := Parse("t", strings.NewReader("GATE and2 1 O=a&b")); err == nil {
		t.Errorf("library without inverter should fail")
	}
	// Duplicate names must be rejected.
	if _, err := Parse("t", strings.NewReader("GATE inv 1 O=!a\nGATE inv 1 O=!a")); err == nil {
		t.Errorf("duplicate gate names should fail")
	}
}

func TestASAP7ishLoads(t *testing.T) {
	l := ASAP7ish()
	if len(l.Gates) < 30 {
		t.Fatalf("asap7ish has only %d gates", len(l.Gates))
	}
	if l.Inv == nil || l.Inv.Name != "inv" {
		t.Fatalf("designated inverter = %v", l.Inv)
	}
	for _, g := range l.Gates {
		if g.Area <= 0 || g.Delay <= 0 {
			t.Errorf("gate %s has non-positive area/delay", g.Name)
		}
		if g.Slope > 0 && g.PinDelay(4) <= g.PinDelay(0) {
			t.Errorf("gate %s load model inconsistent", g.Name)
		}
	}
}

func TestMatchSemantics(t *testing.T) {
	l := ASAP7ish()
	// Direct hits: every gate function must match, with at least one match
	// evaluating back to the exact function.
	for _, g := range l.Gates {
		ms := l.Matches(g.Function)
		if len(ms) == 0 {
			t.Fatalf("gate %s function has no matches", g.Name)
		}
		found := false
		for _, m := range ms {
			tr := tt.Transform{Perm: m.Perm, Phase: m.Phase, Out: m.OutNeg}
			if tt.Apply(m.Gate.Function, tr) != g.Function {
				t.Fatalf("match for %s does not realise the target function", g.Name)
			}
			if m.Gate == g {
				found = true
			}
		}
		if !found {
			t.Errorf("gate %s does not match its own function", g.Name)
		}
	}
}

func TestMatchUnderRandomNPNTransforms(t *testing.T) {
	l := ASAP7ish()
	rng := rand.New(rand.NewSource(31))
	perms := allPerms()
	for iter := 0; iter < 300; iter++ {
		g := l.Gates[rng.Intn(len(l.Gates))]
		tr := tt.Transform{
			Perm:  perms[rng.Intn(len(perms))],
			Phase: uint8(rng.Intn(32)),
			Out:   rng.Intn(2) == 1,
		}
		f := tt.Apply(g.Function, tr)
		ms := l.Matches(f)
		if len(ms) == 0 {
			t.Fatalf("transformed %s function has no matches", g.Name)
		}
		for _, m := range ms {
			mt := tt.Transform{Perm: m.Perm, Phase: m.Phase, Out: m.OutNeg}
			if tt.Apply(m.Gate.Function, mt) != f {
				t.Fatalf("match %s does not realise transformed %s", m.Gate.Name, g.Name)
			}
		}
	}
}

func allPerms() [][tt.MaxVars]uint8 {
	var out [][tt.MaxVars]uint8
	var rec func(cur []uint8, used uint8)
	rec = func(cur []uint8, used uint8) {
		if len(cur) == tt.MaxVars {
			var p [tt.MaxVars]uint8
			copy(p[:], cur)
			out = append(out, p)
			return
		}
		for v := uint8(0); v < tt.MaxVars; v++ {
			if used&(1<<v) == 0 {
				rec(append(cur, v), used|1<<v)
			}
		}
	}
	rec(nil, 0)
	return out
}

func TestMatchMemoised(t *testing.T) {
	l := ASAP7ish()
	f := tt.Var(0).And(tt.Var(1))
	a := l.Matches(f)
	b := l.Matches(f)
	if len(a) != len(b) {
		t.Fatalf("memoised matches differ")
	}
	if len(a) == 0 {
		t.Fatalf("AND2 must match")
	}
}

func TestNoMatchForUnmappableFunction(t *testing.T) {
	// A library of just inverters cannot match XOR2.
	l, err := Parse("t", strings.NewReader("GATE inv 1 O=!a DELAY 1 SLOPE 1"))
	if err != nil {
		t.Fatal(err)
	}
	if ms := l.Matches(tt.Var(0).Xor(tt.Var(1))); len(ms) != 0 {
		t.Fatalf("XOR2 should not match an inverter-only library")
	}
}

func BenchmarkMatches(b *testing.B) {
	l := ASAP7ish()
	rng := rand.New(rand.NewSource(32))
	fs := make([]tt.TT, 256)
	for i := range fs {
		g := l.Gates[rng.Intn(len(l.Gates))]
		fs[i] = tt.Apply(g.Function, tt.Transform{
			Perm:  [tt.MaxVars]uint8{1, 0, 3, 2, 4},
			Phase: uint8(rng.Intn(32)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Matches(fs[i%len(fs)])
	}
}
