package library

import (
	"strings"
	"testing"

	"slap/internal/tt"
)

// FuzzParseExpr ensures the Boolean expression parser never panics, and
// that accepted expressions produce functions whose support is within the
// reported pin count.
func FuzzParseExpr(f *testing.F) {
	f.Add("a")
	f.Add("!a")
	f.Add("a&b|c^d&e")
	f.Add("!(a&(b|!c))^d")
	f.Add("((((a))))")
	f.Add("a&&b")
	f.Add("()")
	f.Add("0|1&a")
	f.Add("!!!!!e")
	f.Fuzz(func(t *testing.T, expr string) {
		fn, pins, err := ParseExpr(expr)
		if err != nil {
			return
		}
		if pins < 0 || pins > tt.MaxVars {
			t.Fatalf("pin count %d out of range for %q", pins, expr)
		}
		for v := pins; v < tt.MaxVars; v++ {
			if fn.DependsOn(v) {
				t.Fatalf("function of %q depends on variable %d beyond pins %d", expr, v, pins)
			}
		}
	})
}

// FuzzParseLibrary ensures the genlib-like parser never panics and that
// accepted libraries are internally consistent.
func FuzzParseLibrary(f *testing.F) {
	f.Add("GATE inv 1 O=!a DELAY 5 SLOPE 1")
	f.Add("GATE inv 1 O=!a\nGATE and2 2 O=a&b DELAY 3 SLOPE 0.5")
	f.Add("# only a comment")
	f.Add("GATE bad")
	f.Add("GATE g 1 O=a&f")
	f.Fuzz(func(t *testing.T, text string) {
		l, err := Parse("fuzz", strings.NewReader(text))
		if err != nil {
			return
		}
		if l.Inv == nil {
			t.Fatalf("accepted library without inverter")
		}
		for _, g := range l.Gates {
			if g.NumPins < 1 || g.NumPins > tt.MaxVars {
				t.Fatalf("gate %s has %d pins", g.Name, g.NumPins)
			}
			if len(l.Matches(g.Function)) == 0 {
				t.Fatalf("gate %s does not match its own function", g.Name)
			}
		}
	})
}
