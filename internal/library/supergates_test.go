package library

import (
	"strings"
	"testing"

	"slap/internal/tt"
)

func TestComposeFunctions(t *testing.T) {
	nand2 := &Gate{Name: "nand2", NumPins: 2, Function: tt.Var(0).And(tt.Var(1)).Not()}
	inv := &Gate{Name: "inv", NumPins: 1, Function: tt.Var(0).Not()}

	// inv into pin 0 of nand2: f(x0, x1) = !( !x1 & x0 )? Careful with the
	// layout: outer's remaining pin (pin 1) becomes variable 0, inner's pin
	// becomes variable 1. So f = !(!x1 & x0) evaluated as
	// outer(pin0=inner(x1), pin1=x0) = !(inner(x1) & x0) = !(!x1 & x0).
	got := composeFunctions(nand2, 0, inv)
	want := tt.Var(1).Not().And(tt.Var(0)).Not()
	if got != want {
		t.Fatalf("compose = %08x, want %08x", uint32(got), uint32(want))
	}

	// nand2 into pin 1 of nand2 gives an AND-OF-NAND structure over three
	// variables: !(x0 & !(x1 & x2)).
	got = composeFunctions(nand2, 1, nand2)
	want = tt.Var(0).And(tt.Var(1).And(tt.Var(2)).Not()).Not()
	if got != want {
		t.Fatalf("nand-nand compose = %08x, want %08x", uint32(got), uint32(want))
	}
}

func TestComposeReplicatedForm(t *testing.T) {
	// The composed word must be independent of unused variables.
	and2 := &Gate{Name: "and2", NumPins: 2, Function: tt.Var(0).And(tt.Var(1))}
	inv := &Gate{Name: "inv", NumPins: 1, Function: tt.Var(0).Not()}
	f := composeFunctions(and2, 0, inv)
	for v := 2; v < tt.MaxVars; v++ {
		if f.DependsOn(v) {
			t.Fatalf("composed function depends on unused variable %d", v)
		}
	}
}

func TestWithSupergates(t *testing.T) {
	base := ASAP7ish()
	sg, err := base.WithSupergates(64)
	if err != nil {
		t.Fatal(err)
	}
	added := len(sg.Gates) - len(base.Gates)
	if added <= 0 || added > 64 {
		t.Fatalf("added %d supergates, want 1..64", added)
	}
	if !strings.HasSuffix(sg.Name, "+sg") {
		t.Fatalf("library name = %q", sg.Name)
	}
	// No duplicated functions with native gates, full support, sane costs.
	native := make(map[tt.TT]bool)
	for _, g := range base.Gates {
		native[g.Function] = true
	}
	for _, g := range sg.Gates[len(base.Gates):] {
		if native[g.Function] {
			t.Errorf("supergate %s duplicates a native function", g.Name)
		}
		if g.Function.SupportSize() != g.NumPins {
			t.Errorf("supergate %s support %d != pins %d", g.Name, g.Function.SupportSize(), g.NumPins)
		}
		if g.Area <= 0 || g.Delay <= 0 {
			t.Errorf("supergate %s has bad costs", g.Name)
		}
	}
	// The extended library must still match everything the base matched.
	for _, g := range base.Gates {
		if len(sg.Matches(g.Function)) == 0 {
			t.Errorf("extended library lost match for %s", g.Name)
		}
	}
}

func TestWithSupergatesMatchesNewFunctions(t *testing.T) {
	base := ASAP7ish()
	sg, err := base.WithSupergates(0) // default count
	if err != nil {
		t.Fatal(err)
	}
	// Count NPN classes covered before and after.
	classes := func(l *Library) int {
		seen := make(map[tt.TT]bool)
		c := tt.NewCanonicalizer()
		for _, g := range l.Gates {
			seen[c.Canon(g.Function).F] = true
		}
		return len(seen)
	}
	if classes(sg) <= classes(base) {
		t.Fatalf("supergates did not widen NPN class coverage: %d vs %d", classes(sg), classes(base))
	}
	// Every supergate match must evaluate correctly (reuses the transform
	// verification of the matcher).
	for _, g := range sg.Gates[len(base.Gates):] {
		for _, m := range sg.Matches(g.Function) {
			tr := tt.Transform{Perm: m.Perm, Phase: m.Phase, Out: m.OutNeg}
			if tt.Apply(m.Gate.Function, tr) != g.Function {
				t.Fatalf("match for supergate %s does not realise it", g.Name)
			}
		}
	}
}
