// Package library models a standard-cell library for ASIC technology
// mapping: cells with Boolean functions (up to five inputs), area, and a
// linear fanout-load delay model, plus an NPN-indexed Boolean matcher that
// binds cut functions to cells.
//
// Cells are described in a small genlib-like text format:
//
//	GATE <name> <area> O=<expr> DELAY <intrinsic-ps> SLOPE <ps-per-fanout>
//
// where <expr> is a Boolean expression over pins a..e using ! & | ^ and
// parentheses. Pin i of the cell is variable i of the function (a=0 ... e=4).
package library

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"slap/internal/tt"
)

// Gate is one standard cell.
type Gate struct {
	// Name is the cell name, unique within a library.
	Name string
	// NumPins is the number of input pins (1..5).
	NumPins int
	// Function is the output function over pins (pin i = variable i).
	Function tt.TT
	// Area is the cell area in µm².
	Area float64
	// Delay is the intrinsic pin-to-output delay in ps (applied to every
	// pin).
	Delay float64
	// Slope is the additional delay in ps per unit of output fanout.
	Slope float64
}

// PinDelay returns the pin-to-output delay under the given output load
// (fanout count).
func (g *Gate) PinDelay(load int32) float64 {
	return g.Delay + g.Slope*float64(load)
}

// Library is a set of gates indexed for NPN Boolean matching.
type Library struct {
	// Name identifies the library.
	Name string
	// Gates lists all cells.
	Gates []*Gate
	// Inv is the designated inverter cell (required).
	Inv *Gate

	// mu guards canon and matchMemo: the gate set is immutable after New,
	// but Boolean matching memoises per cut function, and a library shared
	// read-only across concurrent mapping requests (the slap-serve registry)
	// hits that memo from many goroutines.
	mu        sync.RWMutex
	canon     *tt.Canonicalizer
	byClass   map[tt.TT][]gateEntry
	matchMemo map[tt.TT][]Match
}

type gateEntry struct {
	gate *Gate
	// t satisfies Apply(gate.Function, t) == canonical word.
	t tt.Transform
}

// Match binds a gate to a cut function f: pin i of the gate is driven by
// cut leaf variable Perm[i], complemented when bit i of Phase is set; the
// gate output realises f when OutNeg is false, and NOT f when true (an
// inverter is then required).
type Match struct {
	Gate   *Gate
	Perm   [tt.MaxVars]uint8
	Phase  uint8
	OutNeg bool
}

// New assembles a library from gates, verifying an inverter is present.
func New(name string, gates []*Gate) (*Library, error) {
	l := &Library{
		Name:      name,
		Gates:     gates,
		canon:     tt.NewCanonicalizer(),
		byClass:   make(map[tt.TT][]gateEntry),
		matchMemo: make(map[tt.TT][]Match),
	}
	invTT := tt.Var(0).Not()
	seen := make(map[string]bool)
	for _, g := range gates {
		if g.NumPins < 1 || g.NumPins > tt.MaxVars {
			return nil, fmt.Errorf("library: gate %s has %d pins", g.Name, g.NumPins)
		}
		if seen[g.Name] {
			return nil, fmt.Errorf("library: duplicate gate name %s", g.Name)
		}
		seen[g.Name] = true
		c := l.canon.Canon(g.Function)
		l.byClass[c.F] = append(l.byClass[c.F], gateEntry{gate: g, t: c.T})
		if g.Function == invTT && (l.Inv == nil || g.Area < l.Inv.Area) {
			l.Inv = g
		}
	}
	if l.Inv == nil {
		return nil, fmt.Errorf("library: no inverter cell found")
	}
	return l, nil
}

// Matches returns every gate binding that realises the cut function f (or
// its complement, flagged by OutNeg). Results are memoised per function.
// The returned slice must not be modified. Matches is safe for concurrent
// use: the memo and the underlying canonicaliser are lock-protected, so one
// Library may serve many mapping goroutines.
func (l *Library) Matches(f tt.TT) []Match {
	l.mu.RLock()
	m, ok := l.matchMemo[f]
	l.mu.RUnlock()
	if ok {
		return m
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if m, ok := l.matchMemo[f]; ok {
		return m
	}
	cf := l.canon.Canon(f)
	entries := l.byClass[cf.F]
	matches := make([]Match, 0, len(entries))
	for _, e := range entries {
		// f == Apply(gate.Function, Compose(e.t, Invert(cf.T))):
		// Apply(fg, e.t) == C == Apply(f, cf.T), so applying Invert(cf.T)
		// to both sides yields f.
		m := tt.Compose(e.t, tt.Invert(cf.T))
		matches = append(matches, Match{
			Gate:   e.gate,
			Perm:   m.Perm,
			Phase:  m.Phase,
			OutNeg: m.Out,
		})
	}
	l.matchMemo[f] = matches
	return matches
}

// Gate returns the gate with the given name, or nil.
func (l *Library) Gate(name string) *Gate {
	for _, g := range l.Gates {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// LoadFile parses a genlib-like library file, naming the library after the
// file's base name. Errors — open failures and parse failures alike — carry
// the path, so a bad -lib flag or registry entry names the offending file.
func LoadFile(path string) (*Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("library: open %s: %w", path, err)
	}
	defer f.Close()
	l, err := Parse(filepath.Base(path), f)
	if err != nil {
		return nil, fmt.Errorf("library: load %s: %w", path, err)
	}
	return l, nil
}

// Parse reads a library in the genlib-like text format. Lines starting with
// '#' and blank lines are ignored.
func Parse(name string, r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	var gates []*Gate
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		g, err := parseGateLine(line)
		if err != nil {
			return nil, fmt.Errorf("library: line %d: %v", lineNo, err)
		}
		gates = append(gates, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(name, gates)
}

func parseGateLine(line string) (*Gate, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[0] != "GATE" {
		return nil, fmt.Errorf("expected 'GATE <name> <area> O=<expr> ...', got %q", line)
	}
	g := &Gate{Name: fields[1]}
	area, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return nil, fmt.Errorf("bad area %q: %v", fields[2], err)
	}
	g.Area = area
	if !strings.HasPrefix(fields[3], "O=") {
		return nil, fmt.Errorf("expected O=<expr>, got %q", fields[3])
	}
	f, numPins, err := ParseExpr(strings.TrimPrefix(fields[3], "O="))
	if err != nil {
		return nil, err
	}
	g.Function = f
	g.NumPins = numPins
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i+1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s value %q: %v", fields[i], fields[i+1], err)
		}
		switch fields[i] {
		case "DELAY":
			g.Delay = v
		case "SLOPE":
			g.Slope = v
		default:
			return nil, fmt.Errorf("unknown attribute %q", fields[i])
		}
	}
	return g, nil
}

// ParseExpr parses a Boolean expression over pins a..e and returns its
// truth table together with the pin count (highest pin used + 1).
// Grammar:  or := xor ('|' xor)* ; xor := and ('^' and)* ;
// and := unary ('&' unary)* ; unary := '!' unary | '(' or ')' | pin | 0 | 1.
func ParseExpr(s string) (tt.TT, int, error) {
	p := &exprParser{in: strings.ReplaceAll(s, " ", ""), maxPin: -1}
	f, err := p.parseOr()
	if err != nil {
		return 0, 0, err
	}
	if p.pos != len(p.in) {
		return 0, 0, fmt.Errorf("trailing input %q in expression %q", p.in[p.pos:], s)
	}
	return f, p.maxPin + 1, nil
}

type exprParser struct {
	in     string
	pos    int
	maxPin int
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *exprParser) parseOr() (tt.TT, error) {
	f, err := p.parseXor()
	if err != nil {
		return 0, err
	}
	for p.peek() == '|' {
		p.pos++
		g, err := p.parseXor()
		if err != nil {
			return 0, err
		}
		f = f.Or(g)
	}
	return f, nil
}

func (p *exprParser) parseXor() (tt.TT, error) {
	f, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for p.peek() == '^' {
		p.pos++
		g, err := p.parseAnd()
		if err != nil {
			return 0, err
		}
		f = f.Xor(g)
	}
	return f, nil
}

func (p *exprParser) parseAnd() (tt.TT, error) {
	f, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for p.peek() == '&' {
		p.pos++
		g, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		f = f.And(g)
	}
	return f, nil
}

func (p *exprParser) parseUnary() (tt.TT, error) {
	switch c := p.peek(); {
	case c == '!':
		p.pos++
		f, err := p.parseUnary()
		if err != nil {
			return 0, err
		}
		return f.Not(), nil
	case c == '(':
		p.pos++
		f, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')' at position %d in %q", p.pos, p.in)
		}
		p.pos++
		return f, nil
	case c >= 'a' && c <= 'e':
		p.pos++
		pin := int(c - 'a')
		if pin > p.maxPin {
			p.maxPin = pin
		}
		return tt.Var(pin), nil
	case c == '0':
		p.pos++
		return tt.Const0, nil
	case c == '1':
		p.pos++
		return tt.Const1, nil
	default:
		return 0, fmt.Errorf("unexpected character %q at position %d in %q", string(c), p.pos, p.in)
	}
}
