package library

import "strings"

// asap7ishText is the built-in synthetic standard-cell library. It stands in
// for the ASAP 7nm PDK used by the paper: the cell set, area ratios and
// delay ranges follow the shape of a real 7nm library (inverters/NANDs
// cheapest and fastest, XORs and wide complex gates larger and slower,
// delays in the picosecond range, areas in µm²), so the mapper faces the
// same trade-offs even though absolute numbers are synthetic.
const asap7ishText = `
# name        area   function                       intrinsic  load-slope
GATE inv      0.47   O=!a                           DELAY 4.5  SLOPE 1.6
GATE buf      0.70   O=a                            DELAY 7.0  SLOPE 1.2
GATE nand2    0.70   O=!(a&b)                       DELAY 7.5  SLOPE 2.0
GATE nor2     0.70   O=!(a|b)                       DELAY 8.5  SLOPE 2.4
GATE and2     0.94   O=a&b                          DELAY 10.5 SLOPE 1.8
GATE or2      0.94   O=a|b                          DELAY 11.0 SLOPE 1.8
GATE nand3    0.94   O=!(a&b&c)                     DELAY 9.5  SLOPE 2.3
GATE nor3     0.94   O=!(a|b|c)                     DELAY 11.5 SLOPE 2.8
GATE and3     1.17   O=a&b&c                        DELAY 12.0 SLOPE 1.9
GATE or3      1.17   O=a|b|c                        DELAY 13.0 SLOPE 1.9
GATE nand4    1.17   O=!(a&b&c&d)                   DELAY 11.5 SLOPE 2.6
GATE nor4     1.17   O=!(a|b|c|d)                   DELAY 14.5 SLOPE 3.1
GATE and4     1.40   O=a&b&c&d                      DELAY 13.5 SLOPE 2.0
GATE or4      1.40   O=a|b|c|d                      DELAY 15.0 SLOPE 2.0
GATE nand5    1.40   O=!(a&b&c&d&e)                 DELAY 13.5 SLOPE 2.9
GATE nor5     1.40   O=!(a|b|c|d|e)                 DELAY 17.0 SLOPE 3.4
GATE xor2     1.40   O=a^b                          DELAY 12.5 SLOPE 2.2
GATE xnor2    1.40   O=!(a^b)                       DELAY 12.5 SLOPE 2.2
GATE xor3     2.10   O=a^b^c                        DELAY 17.5 SLOPE 2.6
GATE xnor3    2.10   O=!(a^b^c)                     DELAY 17.5 SLOPE 2.6
GATE aoi21    0.94   O=!((a&b)|c)                   DELAY 9.0  SLOPE 2.5
GATE oai21    0.94   O=!((a|b)&c)                   DELAY 9.0  SLOPE 2.5
GATE aoi22    1.17   O=!((a&b)|(c&d))               DELAY 10.5 SLOPE 2.7
GATE oai22    1.17   O=!((a|b)&(c|d))               DELAY 10.5 SLOPE 2.7
GATE ao21     1.17   O=(a&b)|c                      DELAY 12.0 SLOPE 1.9
GATE oa21     1.17   O=(a|b)&c                      DELAY 12.0 SLOPE 1.9
GATE ao22     1.40   O=(a&b)|(c&d)                  DELAY 13.0 SLOPE 2.0
GATE oa22     1.40   O=(a|b)&(c|d)                  DELAY 13.0 SLOPE 2.0
GATE aoi211   1.17   O=!((a&b)|c|d)                 DELAY 11.0 SLOPE 2.8
GATE oai211   1.17   O=!((a|b)&c&d)                 DELAY 11.0 SLOPE 2.8
GATE aoi221   1.40   O=!((a&b)|(c&d)|e)             DELAY 12.5 SLOPE 3.0
GATE oai221   1.40   O=!((a|b)&(c|d)&e)             DELAY 12.5 SLOPE 3.0
GATE mux2     1.40   O=(a&b)|(!a&c)                 DELAY 13.5 SLOPE 2.1
GATE muxi2    1.17   O=!((a&b)|(!a&c))              DELAY 11.5 SLOPE 2.4
GATE maj3     1.64   O=(a&b)|(a&c)|(b&c)            DELAY 14.5 SLOPE 2.3
GATE majI3    1.40   O=!((a&b)|(a&c)|(b&c))         DELAY 12.5 SLOPE 2.6
GATE fax      2.34   O=a^b^c                        DELAY 16.0 SLOPE 2.4
GATE aoai211  1.40   O=!((((a&b)|c)&d))             DELAY 12.0 SLOPE 2.9
GATE oaoi211  1.40   O=!((((a|b)&c)|d))             DELAY 12.0 SLOPE 2.9
GATE and5     1.64   O=a&b&c&d&e                    DELAY 15.5 SLOPE 2.1
GATE or5      1.64   O=a|b|c|d|e                    DELAY 17.0 SLOPE 2.1
GATE ao222    1.87   O=(a&b)|(c&d)|(e&a)            DELAY 15.0 SLOPE 2.2
GATE xorand   1.64   O=(a^b)&c                      DELAY 14.5 SLOPE 2.3
GATE xoror    1.64   O=(a^b)|c                      DELAY 15.0 SLOPE 2.3
GATE nand2x2  1.17   O=!(a&b)                       DELAY 6.5  SLOPE 1.2
GATE invx2    0.70   O=!a                           DELAY 3.8  SLOPE 0.9
GATE invx4    1.17   O=!a                           DELAY 3.2  SLOPE 0.5
`

// ASAP7ish returns the built-in synthetic 7nm-flavoured library used by all
// experiments. It is parsed from the embedded genlib-like text, so the same
// code path covers user-supplied libraries.
func ASAP7ish() *Library {
	l, err := Parse("asap7ish", strings.NewReader(asap7ishText))
	if err != nil {
		panic("library: built-in asap7ish is invalid: " + err.Error())
	}
	return l
}
