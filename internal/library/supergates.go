package library

import (
	"fmt"
	"sort"

	"slap/internal/tt"
)

// WithSupergates returns a new library extended with composite cells built
// by feeding one gate's output into one input pin of another (single-level
// supergates, after Chatterjee et al., "Reducing structural bias in
// technology mapping", which the paper builds on). The mapper sees
// supergates as regular cells, widening the set of cut functions that match
// a single library entry.
//
// Only compositions with at most tt.MaxVars total inputs are kept, and for
// each new function class only the cheapest-area composition survives.
// Functions already realised by a native cell are skipped. maxCount bounds
// the number of added supergates (0 = DefaultSupergateCount), chosen
// smallest-area first.
func (l *Library) WithSupergates(maxCount int) (*Library, error) {
	if maxCount == 0 {
		maxCount = DefaultSupergateCount
	}
	native := make(map[tt.TT]bool)
	for _, g := range l.Gates {
		native[g.Function] = true
	}

	type cand struct {
		g    *Gate
		area float64
	}
	best := make(map[tt.TT]cand)

	for _, outer := range l.Gates {
		for pin := 0; pin < outer.NumPins; pin++ {
			for _, inner := range l.Gates {
				totalPins := outer.NumPins - 1 + inner.NumPins
				if totalPins > tt.MaxVars || totalPins < 1 {
					continue
				}
				f := composeFunctions(outer, pin, inner)
				if native[f] || f == tt.Const0 || f == tt.Const1 {
					continue
				}
				// Degenerate compositions that no longer depend on every
				// input are redundant with smaller cells.
				if f.SupportSize() != totalPins {
					continue
				}
				area := outer.Area + inner.Area
				if prev, ok := best[f]; ok && prev.area <= area {
					continue
				}
				best[f] = cand{
					g: &Gate{
						Name:     fmt.Sprintf("sg_%s_%d_%s", outer.Name, pin, inner.Name),
						NumPins:  totalPins,
						Function: f,
						Area:     area,
						// The worst pin-to-output path goes through both
						// cells; the inner cell drives a single load.
						Delay: outer.Delay + inner.PinDelay(1),
						Slope: outer.Slope,
					},
					area: area,
				}
			}
		}
	}

	cands := make([]cand, 0, len(best))
	for _, c := range best {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].area != cands[j].area {
			return cands[i].area < cands[j].area
		}
		return cands[i].g.Name < cands[j].g.Name
	})
	if len(cands) > maxCount {
		cands = cands[:maxCount]
	}

	gates := make([]*Gate, 0, len(l.Gates)+len(cands))
	gates = append(gates, l.Gates...)
	for _, c := range cands {
		gates = append(gates, c.g)
	}
	return New(l.Name+"+sg", gates)
}

// DefaultSupergateCount bounds how many supergates WithSupergates adds.
const DefaultSupergateCount = 256

// composeFunctions substitutes inner's function into pin `pin` of outer.
// Input variable layout of the result: outer's remaining pins keep their
// relative order in variables 0..outer.NumPins-2, followed by inner's pins.
func composeFunctions(outer *Gate, pin int, inner *Gate) tt.TT {
	outerRest := outer.NumPins - 1
	var r tt.TT
	total := outerRest + inner.NumPins
	for m := 0; m < 1<<uint(total); m++ {
		// Evaluate inner on its slice of the input vector.
		innerM := m >> uint(outerRest)
		innerV := 0
		if inner.Function.Eval(innerM) {
			innerV = 1
		}
		// Assemble outer's input vector.
		outerM := 0
		rest := m & (1<<uint(outerRest) - 1)
		ri := 0
		for p := 0; p < outer.NumPins; p++ {
			var bit int
			if p == pin {
				bit = innerV
			} else {
				bit = rest >> uint(ri) & 1
				ri++
			}
			outerM |= bit << uint(p)
		}
		if outer.Function.Eval(outerM) {
			// Replicate across unused high variables so the word stays in
			// the canonical replicated form.
			for rep := m; rep < tt.NumMinterms; rep += 1 << uint(total) {
				r |= 1 << uint(rep)
			}
		}
	}
	return r
}
