package library

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"slap/internal/tt"
)

// TestMatchesConcurrent hammers the match memo from many goroutines over an
// overlapping set of functions — the access pattern of concurrent mapping
// requests sharing one registry library. Run under -race in CI; also checks
// concurrent answers equal sequential ones.
func TestMatchesConcurrent(t *testing.T) {
	lib := ASAP7ish()
	rng := rand.New(rand.NewSource(31))
	const funcs = 128
	fs := make([]tt.TT, funcs)
	want := make([]int, funcs)
	for i := range fs {
		fs[i] = tt.TT(rng.Uint64())
		want[i] = len(lib.Matches(fs[i]))
	}
	// Fresh library so the memo is cold when the goroutines race to fill it.
	lib2 := ASAP7ish()
	const goroutines = 8
	var wg sync.WaitGroup
	var bad sync.Map
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < funcs; k++ {
				i := (k + g*13) % funcs
				if got := len(lib2.Matches(fs[i])); got != want[i] {
					bad.Store(i, got)
				}
			}
		}(g)
	}
	wg.Wait()
	bad.Range(func(key, val any) bool {
		t.Errorf("function %d: concurrent Matches found %d matches, want %d", key, val, want[key.(int)])
		return true
	})
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "mini.lib")
	text := "GATE inv 1 O=!a DELAY 5 SLOPE 1\nGATE nand2 1.5 O=!(a&b) DELAY 9 SLOPE 2\n"
	if err := os.WriteFile(good, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	lib, err := LoadFile(good)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if lib.Name != "mini.lib" {
		t.Errorf("library named %q, want mini.lib", lib.Name)
	}
	if len(lib.Gates) != 2 || lib.Inv == nil {
		t.Errorf("loaded %d gates (inv %v), want 2 with an inverter", len(lib.Gates), lib.Inv)
	}
}

// TestLoadFileErrorsNamePath checks the error-wrapping contract: a missing
// or malformed library file surfaces its path in the failure message.
func TestLoadFileErrorsNamePath(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "nope.lib")
	if _, err := LoadFile(missing); err == nil {
		t.Fatal("expected error for missing library file")
	} else if !strings.Contains(err.Error(), "nope.lib") {
		t.Errorf("missing-file error does not name the path: %v", err)
	}

	bad := filepath.Join(dir, "bad.lib")
	if err := os.WriteFile(bad, []byte("GATE broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Fatal("expected error for malformed library file")
	} else if !strings.Contains(err.Error(), "bad.lib") {
		t.Errorf("parse error does not name the path: %v", err)
	}
}
