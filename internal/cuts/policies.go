package cuts

import (
	"fmt"
	"math/rand"

	"slap/internal/aig"
)

// DefaultCutLimit is the per-node cut budget of the vanilla ABC mapper (the
// paper: "Each node stores up to 250 cuts").
const DefaultCutLimit = 250

// DefaultPolicy reproduces the vanilla ABC heuristic: sort cuts by their
// number of leaves, filter dominated cuts, and keep the best Limit cuts.
type DefaultPolicy struct {
	// Limit is the per-node cut budget; zero means DefaultCutLimit.
	Limit int
}

// Process sorts by leaf count, removes dominated cuts and truncates.
func (p DefaultPolicy) Process(g *aig.AIG, n uint32, cs []Cut) []Cut {
	SortByLeaves(cs)
	cs = FilterDominatedFor(n, cs)
	limit := p.Limit
	if limit == 0 {
		limit = DefaultCutLimit
	}
	if len(cs) > limit {
		cs = cs[:limit]
	}
	return cs
}

// Name implements Policy.
func (p DefaultPolicy) Name() string { return "abc-default" }

// ParallelSafe implements the ParallelSafe extension: Process is a pure
// per-node function.
func (p DefaultPolicy) ParallelSafe() bool { return true }

// UnlimitedPolicy keeps every enumerated cut, modelling the paper's
// "Unlimited ABC" which disables sorting, dominance filtering and the
// per-node budget. Enumeration is still bounded by the Enumerator MergeCap
// to stay tractable on the largest designs.
type UnlimitedPolicy struct{}

// Process returns the list unchanged.
func (UnlimitedPolicy) Process(g *aig.AIG, n uint32, cs []Cut) []Cut { return cs }

// Name implements Policy.
func (UnlimitedPolicy) Name() string { return "abc-unlimited" }

// ParallelSafe implements the ParallelSafe extension.
func (UnlimitedPolicy) ParallelSafe() bool { return true }

// ShufflePolicy randomly permutes each node's cut list and keeps the first
// Limit cuts without dominance filtering — the design-space exploration
// strategy of paper §III used both for Fig. 1 and to generate training
// mappings of diverse QoR.
//
// The policy is deliberately NOT ParallelSafe: its RNG sequence depends on
// the node visit order, so the enumerator always runs it on the sequential
// path, keeping shuffled mappings reproducible per seed.
type ShufflePolicy struct {
	Rng *rand.Rand
	// Limit is the per-node cut budget; zero means DefaultCutLimit.
	Limit int
}

// Process shuffles and truncates the cut list.
func (p *ShufflePolicy) Process(g *aig.AIG, n uint32, cs []Cut) []Cut {
	p.Rng.Shuffle(len(cs), func(i, j int) { cs[i], cs[j] = cs[j], cs[i] })
	limit := p.Limit
	if limit == 0 {
		limit = DefaultCutLimit
	}
	if len(cs) > limit {
		cs = cs[:limit]
	}
	return cs
}

// Name implements Policy.
func (p *ShufflePolicy) Name() string { return "random-shuffle" }

// SingleAttributePolicy sorts cuts by one structural feature (ascending or
// descending) — the single-attribute heuristics the paper evaluated in §III
// and found inconsistent across designs. Feature indexes follow
// FeatureNames.
type SingleAttributePolicy struct {
	Feature    int
	Descending bool
	// Limit is the per-node cut budget; zero means DefaultCutLimit.
	Limit int
}

// Process sorts by the configured attribute, filters dominated cuts and
// truncates, mirroring the vanilla pipeline with a different sort key.
func (p SingleAttributePolicy) Process(g *aig.AIG, n uint32, cs []Cut) []Cut {
	keys := make([]float64, len(cs))
	for i := range cs {
		keys[i] = cs[i].Features(g, n)[p.Feature]
	}
	// Insertion sort keyed by the precomputed feature (stable, small lists).
	for i := 1; i < len(cs); i++ {
		c, k := cs[i], keys[i]
		j := i - 1
		for j >= 0 && ((p.Descending && keys[j] < k) || (!p.Descending && keys[j] > k)) {
			cs[j+1], keys[j+1] = cs[j], keys[j]
			j--
		}
		cs[j+1], keys[j+1] = c, k
	}
	cs = FilterDominatedFor(n, cs)
	limit := p.Limit
	if limit == 0 {
		limit = DefaultCutLimit
	}
	if len(cs) > limit {
		cs = cs[:limit]
	}
	return cs
}

// ParallelSafe implements the ParallelSafe extension: the sort key depends
// only on precomputed graph attributes.
func (p SingleAttributePolicy) ParallelSafe() bool { return true }

// Name implements Policy.
func (p SingleAttributePolicy) Name() string {
	dir := "asc"
	if p.Descending {
		dir = "desc"
	}
	return fmt.Sprintf("sort-%s-%s", FeatureNames[p.Feature], dir)
}
