package cuts

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
)

// snapshotStream runs streaming enumeration and deep-copies every level at
// sink time — the only moment the cut lists are guaranteed alive — so the
// snapshot can be compared against a two-phase Run afterwards. Any
// premature level retirement would corrupt later merges and fail the
// comparison.
func snapshotStream(t *testing.T, e *Enumerator) *Result {
	t.Helper()
	g := e.G
	snap := &Result{Sets: make([][]Cut, g.NumNodes())}
	res, err := e.RunStream(func(level int32, nodes []uint32, sets [][]Cut) error {
		for _, n := range nodes {
			if g.Level(n) != level {
				t.Fatalf("node %d delivered at level %d, has level %d", n, level, g.Level(n))
			}
			cs := sets[n]
			cp := make([]Cut, len(cs))
			for i := range cs {
				cp[i] = cs[i]
				cp[i].Leaves = append([]uint32(nil), cs[i].Leaves...)
			}
			snap.Sets[n] = cp
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	snap.TotalCuts = res.TotalCuts
	snap.PeakCuts = res.PeakCuts
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsPI(n) {
			snap.Sets[n] = []Cut{trivialCut(n)}
		}
	}
	return snap
}

// TestRunStreamMatchesRun is the streaming determinism property test: for
// every graph, parallel-safe policy, worker count and arena mode, the
// per-level streamed cut sets must be byte-identical to a two-phase Run.
func TestRunStreamMatchesRun(t *testing.T) {
	graphs := []*aig.AIG{
		circuits.TrainRC16(),
		circuits.CarryLookaheadAdder(16),
		circuits.BoothMultiplier(8),
	}
	for seed := int64(1); seed <= 2; seed++ {
		graphs = append(graphs, circuits.RandomAIG(seed, 24, 700))
	}
	policies := []Policy{
		nil,
		DefaultPolicy{},
		DefaultPolicy{Limit: 8},
		UnlimitedPolicy{},
		SingleAttributePolicy{Feature: 2, Descending: true},
	}
	for _, g := range graphs {
		for _, p := range policies {
			pname := "nil"
			if p != nil {
				pname = p.Name()
			}
			want := (&Enumerator{G: g, Policy: p, Workers: 1}).Run()
			for _, workers := range []int{1, 2, 4, 7} {
				for _, pooled := range []bool{false, true} {
					var arena *Arena
					if pooled {
						arena = NewArena(g)
					}
					e := &Enumerator{G: g, Policy: p, Workers: workers, Arena: arena}
					got := snapshotStream(t, e)
					name := fmt.Sprintf("%s/%s/workers=%d/arena=%v", g.Name, pname, workers, pooled)
					requireIdenticalResults(t, name, want, got)
					if got.PeakCuts > got.TotalCuts {
						t.Fatalf("%s: PeakCuts %d > TotalCuts %d", name, got.PeakCuts, got.TotalCuts)
					}
				}
			}
		}
	}
}

// TestRunStreamShuffleMatchesSequential pins the stateful-policy contract:
// streaming under ShufflePolicy must take the index-order driver and
// reproduce the sequential Run for the same seed, byte for byte.
func TestRunStreamShuffleMatchesSequential(t *testing.T) {
	g := circuits.BoothMultiplier(8)
	want := (&Enumerator{
		G:       g,
		Policy:  &ShufflePolicy{Rng: rand.New(rand.NewSource(7)), Limit: 16},
		Workers: 1,
	}).Run()
	for _, workers := range []int{1, 8} {
		for _, pooled := range []bool{false, true} {
			var arena *Arena
			if pooled {
				arena = NewArena(g)
			}
			e := &Enumerator{
				G:       g,
				Policy:  &ShufflePolicy{Rng: rand.New(rand.NewSource(7)), Limit: 16},
				Workers: workers,
				Arena:   arena,
			}
			got := snapshotStream(t, e)
			requireIdenticalResults(t, fmt.Sprintf("shuffle/workers=%d/arena=%v", workers, pooled), want, got)
		}
	}
}

// TestRunStreamRetiresLevels checks the level-retirement rule end state:
// every AND node's cut list is released by the time RunStream returns, and
// on a deep graph the live window stays well below the total.
func TestRunStreamRetiresLevels(t *testing.T) {
	g := circuits.BoothMultiplier(8)
	e := &Enumerator{G: g, Policy: UnlimitedPolicy{}, Workers: 1, Arena: NewArena(g)}
	res, err := e.RunStream(nil)
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) && res.Sets[n] != nil {
			t.Fatalf("AND node %d still holds %d cuts after streaming", n, len(res.Sets[n]))
		}
		if g.IsPI(n) && len(res.Sets[n]) != 1 {
			t.Fatalf("PI %d lost its trivial cut", n)
		}
	}
	if res.PeakCuts <= 0 || res.TotalCuts <= 0 {
		t.Fatalf("counters not populated: peak=%d total=%d", res.PeakCuts, res.TotalCuts)
	}
	if res.PeakCuts >= res.TotalCuts {
		t.Fatalf("no retirement observed: peak=%d total=%d", res.PeakCuts, res.TotalCuts)
	}
}

// TestRunStreamSinkError verifies a sink error aborts the run.
func TestRunStreamSinkError(t *testing.T) {
	g := circuits.TrainRC16()
	wantErr := fmt.Errorf("sink says no")
	e := &Enumerator{G: g, Policy: UnlimitedPolicy{}, Workers: 1}
	if _, err := e.RunStream(func(int32, []uint32, [][]Cut) error { return wantErr }); err != wantErr {
		t.Fatalf("got err %v, want %v", err, wantErr)
	}
}

// TestArenaPoolZeroSteadyStateAllocs is the acceptance test for cross-run
// pooling: once an arena has served a graph shape, further streaming runs
// of the same graph perform zero cut allocations.
func TestArenaPoolZeroSteadyStateAllocs(t *testing.T) {
	g := circuits.BoothMultiplier(8)
	pool := NewPool(2)
	sink := LevelSink(func(level int32, nodes []uint32, sets [][]Cut) error { return nil })
	e := &Enumerator{G: g, Policy: UnlimitedPolicy{}, Workers: 1}
	run := func() {
		a := pool.Get(g)
		e.Arena = a
		if _, err := e.RunStream(sink); err != nil {
			panic(err)
		}
		pool.Put(a)
	}
	run() // builds the arena
	run() // lets the free lists reach their steady footprint
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("steady-state streaming run allocated %.1f objects, want 0", allocs)
	}
	st := pool.Stats()
	if st.Misses != 1 || st.Hits < 7 {
		t.Fatalf("pool stats hits=%d misses=%d, want 1 miss and the rest hits", st.Hits, st.Misses)
	}
}

// TestPoolKeyingAndEviction checks structural keying (distinct graphs get
// distinct arenas) and the capacity-bounded eviction.
func TestPoolKeyingAndEviction(t *testing.T) {
	g1 := circuits.RandomAIG(1, 16, 300)
	g2 := circuits.RandomAIG(2, 16, 300)
	if KeyOf(g1) == KeyOf(g2) {
		t.Fatal("structurally different graphs share a GraphKey")
	}
	// The same structure rebuilt from scratch must hit the cached arena.
	g1b := circuits.RandomAIG(1, 16, 300)
	if KeyOf(g1) != KeyOf(g1b) {
		t.Fatal("identical structures disagree on GraphKey")
	}
	pool := NewPool(1)
	a1 := pool.Get(g1)
	pool.Put(a1)
	if got := pool.Get(g1b); got != a1 {
		t.Fatal("rebuilt graph of the same shape did not reuse the cached arena")
	}
	pool.Put(a1)
	a2 := pool.Get(g2)
	pool.Put(a2) // capacity 1: a1 must be evicted
	if st := pool.Stats(); st.Cached != 1 {
		t.Fatalf("cached=%d after eviction, want 1", st.Cached)
	}
	if got := pool.Get(g1); got == a1 {
		t.Fatal("evicted arena came back")
	}
}

// referenceFilterDominated is a deliberately naive reimplementation of the
// dominance filter over an immutable snapshot, used as the oracle for the
// regression test below.
func referenceFilterDominated(root uint32, cs []Cut) []Cut {
	src := append([]Cut(nil), cs...)
	var out []Cut
	for i := range src {
		dominated := false
		for j := range src {
			if i == j {
				continue
			}
			cj := &src[j]
			if cj.IsTrivial(root) || len(cj.Leaves) > len(src[i].Leaves) {
				continue
			}
			if subsetOf(cj, &src[i]) {
				if len(cj.Leaves) == len(src[i].Leaves) && j > i {
					continue
				}
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, src[i])
		}
	}
	return out
}

// TestFilterDominatedMatchesReference is the satellite regression test: the
// production filter must decide dominance against the pristine input (no
// transient reordering mid-pass) and preserve order, matching a naive
// snapshot-based oracle on randomized lists with heavy subset/duplicate
// structure, including lists past the 256-cut stack-bitset fast path.
func TestFilterDominatedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	mk := func(leaves ...uint32) Cut {
		sort.Slice(leaves, func(i, j int) bool { return leaves[i] < leaves[j] })
		return Cut{Leaves: leaves, Sig: leafSig(leaves)}
	}
	random := func(n, universe int) []Cut {
		cs := make([]Cut, n)
		for i := range cs {
			k := 1 + rng.Intn(K)
			set := map[uint32]bool{}
			for len(set) < k {
				set[uint32(1+rng.Intn(universe))] = true
			}
			var leaves []uint32
			for l := range set {
				leaves = append(leaves, l)
			}
			cs[i] = mk(leaves...)
		}
		return cs
	}
	cases := [][]Cut{
		{mk(1, 2), mk(1, 2, 3), mk(1, 2), mk(4), mk(4, 5), mk(1, 3)},
		{mk(7), mk(1, 2), mk(2, 3), mk(1, 2, 3), mk(1, 2, 3, 4), mk(3)},
	}
	for trial := 0; trial < 50; trial++ {
		cases = append(cases, random(3+rng.Intn(40), 8))
	}
	cases = append(cases, random(300, 10)) // exceeds the 256-bit stack bitset
	for ci, cs := range cases {
		for _, root := range []uint32{^uint32(0), 7} {
			want := referenceFilterDominated(root, cs)
			got := filterDominated(root, append([]Cut(nil), cs...))
			if len(want) != len(got) {
				t.Fatalf("case %d root %d: kept %d cuts, want %d", ci, root, len(got), len(want))
			}
			for i := range want {
				if !leavesEqual(want[i].Leaves, got[i].Leaves) {
					t.Fatalf("case %d root %d cut %d: %v, want %v", ci, root, i, got[i].Leaves, want[i].Leaves)
				}
			}
		}
	}
	// Canonical ordering is preserved: a SortByLeaves-sorted list stays
	// sorted through the filter.
	cs := random(60, 9)
	SortByLeaves(cs)
	got := filterDominated(^uint32(0), cs)
	sorted := sort.SliceIsSorted(got, func(i, j int) bool {
		a, b := &got[i], &got[j]
		if len(a.Leaves) != len(b.Leaves) {
			return len(a.Leaves) < len(b.Leaves)
		}
		return false
	})
	if !sorted {
		t.Fatal("filterDominated broke the canonical leaf-count ordering")
	}
}
