// Arena-pooled cut storage: a streaming enumeration run carves its cut
// lists and leaf slices out of an Arena instead of the heap, and a Pool
// keyed by graph identity hands the same Arena back to repeated mappings of
// the same design — the dominant slap-serve pattern and every dataset
// shuffle sweep — so the steady state allocates nothing.
package cuts

import (
	"math/bits"
	"sync"

	"slap/internal/aig"
	"slap/internal/tt"
)

// GraphKey identifies an AIG structurally: node count, PO count and a hash
// over every node's type and fanin literals plus the PO literals. Two graphs
// with equal keys have identical node numbering and connectivity, so an
// Arena sized for one fits the other exactly.
type GraphKey struct {
	Nodes int
	POs   int
	Hash  uint64
}

// KeyOf fingerprints g for arena pooling. It is O(nodes) and allocation-free.
func KeyOf(g *aig.AIG) GraphKey {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for n := uint32(0); n < uint32(g.NumNodes()); n++ {
		switch {
		case g.IsAnd(n):
			f0, f1 := g.Fanins(n)
			h = (h ^ 3) * prime
			h = (h ^ uint64(f0)) * prime
			h = (h ^ uint64(f1)) * prime
		case g.IsPI(n):
			h = (h ^ 5) * prime
		default:
			h = (h ^ 7) * prime
		}
	}
	for _, po := range g.POs() {
		h = (h ^ uint64(po.Lit)) * prime
	}
	return GraphKey{Nodes: g.NumNodes(), POs: g.NumPOs(), Hash: h}
}

// maxSizeClass bounds the power-of-two free lists; class c holds blocks of
// capacity 1<<c.
const maxSizeClass = 32

// sizeClass returns the smallest c with 1<<c >= n (n >= 1).
func sizeClass(n int) int { return bits.Len(uint(n - 1)) }

// Arena owns the storage of streaming enumeration runs over one graph
// shape: power-of-two cut blocks, fixed-size leaf chunks, per-worker
// scratches and the level bookkeeping of the streaming driver. An Arena is
// bound to one run at a time; Pool.Get/Put recycle it across runs with zero
// steady-state allocation.
type Arena struct {
	key GraphKey
	g   *aig.AIG

	// mu guards the free lists: workers of one run check blocks and chunks
	// in and out concurrently (a handful of operations per node, against a
	// merge costing tens of microseconds).
	mu       sync.Mutex
	freeCuts [maxSizeClass + 1][][]Cut
	freeLeaf [][]uint32

	// Per-run storage reused across runs (same key ⇒ same sizes).
	res       Result
	sets      [][]Cut
	blocks    [][]Cut // blocks[n] = the arena block backing sets[n], for retirement
	scratches []*scratch

	// Trivial-cut slab for the PIs, built once per arena.
	piCuts   []Cut
	piLeaves []uint32
	piDone   bool

	// Streaming-driver level bookkeeping (see stream.go).
	levelNodes  []uint32
	levelOff    []int32
	levelCuts   []int32
	retireAfter []int32
	retireLv    []int32
	retireOff   []int32
	cursor      []int32

	stamp int64 // pool recency stamp for eviction
}

// NewArena builds a standalone arena for g (no pool). Most callers should
// use a Pool instead.
func NewArena(g *aig.AIG) *Arena {
	a := &Arena{key: KeyOf(g)}
	a.attach(g)
	return a
}

// attach (re)binds the arena storage to a concrete graph instance of its
// shape. Allocation-free when the arena has served a graph of this shape
// before.
func (a *Arena) attach(g *aig.AIG) {
	a.g = g
	n := g.NumNodes()
	if cap(a.sets) < n {
		a.sets = make([][]Cut, n)
		a.blocks = make([][]Cut, n)
	}
	a.sets = a.sets[:n]
	a.blocks = a.blocks[:n]
	for _, s := range a.scratches {
		s.g = g
	}
}

// bindPIs installs the pooled trivial-cut slab for every PI of the bound
// graph into res.Sets.
func (a *Arena) bindPIs(res *Result) {
	g := a.g
	if !a.piDone {
		num := g.NumPIs()
		a.piLeaves = make([]uint32, 0, num)
		a.piCuts = make([]Cut, 0, num)
		for _, pi := range g.PIs() {
			i := len(a.piLeaves)
			a.piLeaves = append(a.piLeaves, pi)
			lv := a.piLeaves[i : i+1 : i+1]
			a.piCuts = append(a.piCuts, Cut{Leaves: lv, Sig: leafSig(lv), TT: tt.Var(0)})
		}
		a.piDone = true
	}
	for i, pi := range g.PIs() {
		res.Sets[pi] = a.piCuts[i : i+1 : i+1]
	}
}

// scratchFor returns worker i's scratch bound to the current graph, growing
// the set on first use.
func (a *Arena) scratchFor(i int, maxLevel int32) *scratch {
	for len(a.scratches) <= i {
		a.scratches = append(a.scratches, newScratch(a.g))
	}
	s := a.scratches[i]
	s.g = a.g
	s.a = a
	s.curLevel = -1
	nLv := int(maxLevel) + 1
	if cap(s.chunksByLevel) < nLv {
		grown := make([][][]uint32, nLv)
		copy(grown, s.chunksByLevel)
		s.chunksByLevel = grown
	}
	s.chunksByLevel = s.chunksByLevel[:nLv]
	return s
}

// getCutBlock checks a []Cut block of capacity >= n out of the free lists.
func (a *Arena) getCutBlock(n int) []Cut {
	if n < 1 {
		n = 1
	}
	c := sizeClass(n)
	a.mu.Lock()
	if l := a.freeCuts[c]; len(l) > 0 {
		b := l[len(l)-1]
		a.freeCuts[c] = l[:len(l)-1]
		a.mu.Unlock()
		return b
	}
	a.mu.Unlock()
	return make([]Cut, 0, 1<<c)
}

// putCutBlock returns a block to its size-class free list. Blocks whose
// capacity is not an exact power of two (a policy substituted its own
// array, or a mid-slice) are left to the garbage collector.
func (a *Arena) putCutBlock(b []Cut) {
	n := cap(b)
	if n == 0 {
		return
	}
	c := sizeClass(n)
	if 1<<c != n {
		return
	}
	b = b[:0]
	a.mu.Lock()
	a.freeCuts[c] = append(a.freeCuts[c], b)
	a.mu.Unlock()
}

// getLeafChunk checks a fixed-size leaf chunk out of the free list.
func (a *Arena) getLeafChunk() []uint32 {
	a.mu.Lock()
	if n := len(a.freeLeaf); n > 0 {
		ch := a.freeLeaf[n-1]
		a.freeLeaf = a.freeLeaf[:n-1]
		a.mu.Unlock()
		return ch
	}
	a.mu.Unlock()
	return make([]uint32, 0, arenaChunk)
}

func (a *Arena) putLeafChunk(ch []uint32) {
	if cap(ch) == 0 {
		return
	}
	ch = ch[:0]
	a.mu.Lock()
	a.freeLeaf = append(a.freeLeaf, ch)
	a.mu.Unlock()
}

// reclaim returns every still-live block and chunk of the last run to the
// free lists and clears the per-run views. The Result of that run must not
// be used afterwards: its cut storage is recycled.
func (a *Arena) reclaim() {
	for n := range a.blocks {
		if b := a.blocks[n]; b != nil {
			a.putCutBlock(b)
			a.blocks[n] = nil
		}
		a.sets[n] = nil
	}
	for _, s := range a.scratches {
		s.reclaimChunks()
	}
}

// PoolStats reports arena reuse counters.
type PoolStats struct {
	// Hits counts Pool.Get calls served by a cached arena.
	Hits int64
	// Misses counts Pool.Get calls that built a fresh arena.
	Misses int64
	// Cached is the number of arenas currently parked in the pool.
	Cached int
	// Graphs is the number of distinct graph identities with at least one
	// parked arena — the pool's warmth: how many designs this process can
	// re-map with zero steady-state cut allocations right now. Fleet
	// coordinators read it off /healthz to judge routing quality.
	Graphs int
	// Evictions counts arenas dropped because the pool exceeded its cap.
	Evictions int64
}

// DefaultPoolArenas is the default Pool capacity.
const DefaultPoolArenas = 8

// Pool caches Arenas keyed by graph identity so repeated mappings of the
// same design reuse cut storage across runs. Safe for concurrent use; each
// checked-out Arena serves exactly one run at a time.
type Pool struct {
	mu        sync.Mutex
	arenas    map[GraphKey][]*Arena
	max       int
	gen       int64
	hits      int64
	misses    int64
	cached    int
	evictions int64
}

// NewPool builds a pool holding at most max arenas (0 or negative means
// DefaultPoolArenas). The oldest arena is evicted when the cap is exceeded.
func NewPool(max int) *Pool {
	if max <= 0 {
		max = DefaultPoolArenas
	}
	return &Pool{arenas: make(map[GraphKey][]*Arena), max: max}
}

// Get checks out an arena for g, reusing a cached one when the pool has
// seen this graph shape before. The caller must return it with Put.
func (p *Pool) Get(g *aig.AIG) *Arena {
	key := KeyOf(g)
	p.mu.Lock()
	if l := p.arenas[key]; len(l) > 0 {
		a := l[len(l)-1]
		l[len(l)-1] = nil
		p.arenas[key] = l[:len(l)-1]
		p.cached--
		p.hits++
		p.mu.Unlock()
		a.attach(g)
		return a
	}
	p.misses++
	p.mu.Unlock()
	a := &Arena{key: key}
	a.attach(g)
	return a
}

// Put reclaims the arena's run storage and parks it for reuse. Any Result
// produced from the arena is invalidated.
func (p *Pool) Put(a *Arena) {
	if a == nil {
		return
	}
	a.reclaim()
	p.mu.Lock()
	p.gen++
	a.stamp = p.gen
	p.arenas[a.key] = append(p.arenas[a.key], a)
	p.cached++
	for p.cached > p.max {
		p.evictOldestLocked()
	}
	p.mu.Unlock()
}

func (p *Pool) evictOldestLocked() {
	var oldKey GraphKey
	oldIdx := -1
	var oldStamp int64
	for k, l := range p.arenas {
		for i, a := range l {
			if oldIdx == -1 || a.stamp < oldStamp {
				oldKey, oldIdx, oldStamp = k, i, a.stamp
			}
		}
	}
	if oldIdx < 0 {
		return
	}
	l := p.arenas[oldKey]
	l = append(l[:oldIdx], l[oldIdx+1:]...)
	if len(l) == 0 {
		delete(p.arenas, oldKey)
	} else {
		p.arenas[oldKey] = l
	}
	p.cached--
	p.evictions++
}

// Stats returns reuse counters for metrics.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Emptied slices linger in the map so a checked-out arena's Put can
	// append without reallocating; count only keys that are warm right now.
	graphs := 0
	for _, l := range p.arenas {
		if len(l) > 0 {
			graphs++
		}
	}
	return PoolStats{Hits: p.hits, Misses: p.misses, Cached: p.cached, Graphs: graphs, Evictions: p.evictions}
}
