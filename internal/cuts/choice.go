// Choice-aware enumeration: a ChoiceSource tells the enumerator which other
// nodes compute the same function as a node being merged (up to polarity),
// and the enumerator appends those members' final cut lists to the node's
// own merged list. Mapping then matches the union of the structural variants
// — the "choice network" idea of ABC's &if -C / also's choice_lut_mapper —
// without the mapper or any policy knowing choices exist.
//
// Correctness rests on one eligibility rule the source must guarantee (and
// internal/choice does): every member m of node n satisfies id(m) < id(n)
// AND level(m) < level(n), both strict. Index-order drivers then see m's
// final list before visiting n, level-order drivers finish m's level before
// n's level starts (no same-level races), and streaming consumers observe
// member-cut leaves at levels strictly below n's, so arrivals are final when
// n's level is sunk. The retirement plan keeps member lists alive until
// their choice consumers are merged (see buildLevelPlan).
package cuts

// ChoiceMember identifies one alternative implementation of a node: Node
// computes the same function (complemented when Compl is set). Members must
// satisfy the id/level eligibility rule above.
type ChoiceMember struct {
	Node  uint32
	Compl bool
}

// ChoiceSource exposes a node's equivalence-class members to the
// enumerator. MembersOf must be safe for concurrent calls and return a
// deterministic, id-sorted slice (or nil) that the caller will not mutate.
type ChoiceSource interface {
	MembersOf(n uint32) []ChoiceMember
}

// enrichChoices appends translated copies of each class member's cut list
// to n's merged list: leaves are interned into this node's storage (member
// storage may retire first under streaming), the function is complemented
// when the member's polarity differs, and duplicates against cuts already
// in the list are rejected through the scratch dedupe table (still seeded
// from mergeNode for this node). A member's trivial cut {m} becomes a legal
// single-leaf cut of n — the buffer/inverter choice.
func (s *scratch) enrichChoices(e *Enumerator, res *Result, n uint32, out []Cut, capN int) []Cut {
	for _, mem := range e.Choices.MembersOf(n) {
		for i := range res.Sets[mem.Node] {
			if len(out) >= capN {
				return out
			}
			c := &res.Sets[mem.Node][i]
			if s.seen(c.Leaves, out) {
				continue
			}
			f := c.TT
			if mem.Compl {
				f = f.Not()
			}
			if s.a != nil && len(out) == cap(out) {
				out = s.growCutList(out)
			}
			out = append(out, Cut{
				Leaves: s.internLeaves(c.Leaves),
				Sig:    c.Sig,
				TT:     f,
				Volume: c.Volume,
				Choice: true,
			})
		}
	}
	return out
}
