package cuts

import (
	"testing"

	"slap/internal/circuits"
)

// TestPoolLRUEvictionOrder pins the pool's eviction discipline: the
// least-recently-returned arena is dropped first, a re-touched arena is
// promoted ahead of older ones, and every drop is counted.
func TestPoolLRUEvictionOrder(t *testing.T) {
	g1 := circuits.RandomAIG(11, 16, 200)
	g2 := circuits.RandomAIG(22, 16, 200)
	g3 := circuits.RandomAIG(33, 16, 200)

	pool := NewPool(2)
	a1 := pool.Get(g1)
	pool.Put(a1)
	a2 := pool.Get(g2)
	pool.Put(a2)

	// Touch g1 so g2 becomes the least recently used arena.
	if got := pool.Get(g1); got != a1 {
		t.Fatal("expected cached arena for g1")
	}
	pool.Put(a1)

	if st := pool.Stats(); st.Evictions != 0 {
		t.Fatalf("evictions=%d before overflow, want 0", st.Evictions)
	}

	a3 := pool.Get(g3)
	pool.Put(a3) // capacity 2: must evict a2, the LRU, not the re-touched a1

	st := pool.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions=%d after overflow, want 1", st.Evictions)
	}
	if st.Cached != 2 {
		t.Fatalf("cached=%d after overflow, want 2", st.Cached)
	}
	if got := pool.Get(g1); got != a1 {
		t.Fatal("recently-touched arena was evicted instead of the LRU one")
	}
	pool.Put(a1)
	if got := pool.Get(g2); got == a2 {
		t.Fatal("LRU arena survived eviction")
	}

	// A second overflow evicts again and keeps counting.
	pool.Put(pool.Get(g2))
	if st := pool.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions=%d after second overflow, want 2", st.Evictions)
	}
}

// TestRunWithReuse checks both reuse modes: an always-miss hook reproduces
// Run exactly, and installing a prior run's lists verbatim yields the same
// Result without reprocessing those nodes.
func TestRunWithReuse(t *testing.T) {
	g := circuits.RandomAIG(7, 12, 400)
	for _, pol := range []Policy{nil, UnlimitedPolicy{}, DefaultPolicy{}} {
		base := (&Enumerator{G: g, Policy: pol, Workers: 1}).Run()

		miss := (&Enumerator{G: g, Policy: pol, Workers: 1}).RunWithReuse(
			func(n uint32) []Cut { return nil })
		compareResults(t, g, base, miss)

		reused := 0
		hit := (&Enumerator{G: g, Policy: pol, Workers: 1}).RunWithReuse(func(n uint32) []Cut {
			if n%2 == 0 {
				reused++
				return base.Sets[n]
			}
			return nil
		})
		if reused == 0 {
			t.Fatal("reuse hook never fired")
		}
		compareResults(t, g, base, hit)
	}
}

func compareResults(t *testing.T, g interface{ NumNodes() int }, a, b *Result) {
	t.Helper()
	if a.TotalCuts != b.TotalCuts {
		t.Fatalf("TotalCuts %d != %d", a.TotalCuts, b.TotalCuts)
	}
	for n := 0; n < g.NumNodes(); n++ {
		ca, cb := a.Sets[n], b.Sets[n]
		if len(ca) != len(cb) {
			t.Fatalf("node %d: %d cuts != %d cuts", n, len(ca), len(cb))
		}
		for i := range ca {
			if !leavesEqual(ca[i].Leaves, cb[i].Leaves) || ca[i].TT != cb[i].TT ||
				ca[i].Volume != cb[i].Volume || ca[i].Sig != cb[i].Sig {
				t.Fatalf("node %d cut %d differs: %v vs %v", n, i, ca[i], cb[i])
			}
		}
	}
}
