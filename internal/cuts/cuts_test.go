package cuts

import (
	"math/rand"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/tt"
)

// evalCone evaluates the function of root in terms of the cut leaves by
// traversing the cone symbolically with truth tables. It returns ok=false
// when some path from a PI to the root does not pass through a leaf (i.e.
// the leaf set is not actually a cut).
func evalCone(g *aig.AIG, root uint32, leaves []uint32) (tt.TT, bool) {
	idx := make(map[uint32]int, len(leaves))
	for i, l := range leaves {
		idx[l] = i
	}
	memo := make(map[uint32]tt.TT)
	ok := true
	var eval func(n uint32) tt.TT
	eval = func(n uint32) tt.TT {
		if i, isLeaf := idx[n]; isLeaf {
			return tt.Var(i)
		}
		if v, seen := memo[n]; seen {
			return v
		}
		if !g.IsAnd(n) {
			ok = false // hit a PI or constant that is not a leaf
			return tt.Const0
		}
		f0, f1 := g.Fanins(n)
		v0 := eval(f0.Node())
		if f0.IsCompl() {
			v0 = v0.Not()
		}
		v1 := eval(f1.Node())
		if f1.IsCompl() {
			v1 = v1.Not()
		}
		v := v0.And(v1)
		memo[n] = v
		return v
	}
	v := eval(root)
	return v, ok
}

func enumerate(g *aig.AIG, p Policy) *Result {
	e := &Enumerator{G: g, Policy: p}
	return e.Run()
}

func TestEnumerationInvariants(t *testing.T) {
	for _, g := range []*aig.AIG{
		circuits.TrainRC16(),
		circuits.CarryLookaheadAdder(8),
		circuits.ArrayMultiplier(4),
	} {
		res := enumerate(g, nil)
		checked := 0
		for n := uint32(1); n < uint32(g.NumNodes()); n++ {
			if !g.IsAnd(n) {
				continue
			}
			if len(res.Sets[n]) == 0 {
				t.Fatalf("%s: node %d has no cuts", g.Name, n)
			}
			for i := range res.Sets[n] {
				c := &res.Sets[n][i]
				if len(c.Leaves) == 0 || len(c.Leaves) > K {
					t.Fatalf("%s: node %d cut %v is not %d-feasible", g.Name, n, c.Leaves, K)
				}
				for j := 1; j < len(c.Leaves); j++ {
					if c.Leaves[j-1] >= c.Leaves[j] {
						t.Fatalf("%s: node %d cut %v leaves not strictly sorted", g.Name, n, c.Leaves)
					}
				}
				if c.Sig != leafSig(c.Leaves) {
					t.Fatalf("%s: node %d cut %v signature wrong", g.Name, n, c.Leaves)
				}
				want, isCut := evalCone(g, n, c.Leaves)
				if !isCut {
					t.Fatalf("%s: node %d leaf set %v is not a cut", g.Name, n, c.Leaves)
				}
				if want != c.TT {
					t.Fatalf("%s: node %d cut %v truth table %08x, want %08x",
						g.Name, n, c.Leaves, uint32(c.TT), uint32(want))
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no cuts verified", g.Name)
		}
	}
}

func TestTrivialCutAlwaysPresent(t *testing.T) {
	g := circuits.TrainRC16()
	res := enumerate(g, DefaultPolicy{Limit: 2})
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		found := false
		for i := range res.Sets[n] {
			if res.Sets[n][i].IsTrivial(n) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("node %d lost its trivial cut", n)
		}
	}
}

func TestVolumeMatchesConeCount(t *testing.T) {
	g := circuits.CarryLookaheadAdder(8)
	res := enumerate(g, nil)
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		for i := range res.Sets[n] {
			c := &res.Sets[n][i]
			// Recount with an independent traversal.
			leafSet := make(map[uint32]bool)
			for _, l := range c.Leaves {
				leafSet[l] = true
			}
			seen := make(map[uint32]bool)
			var count func(m uint32) int32
			count = func(m uint32) int32 {
				if seen[m] || leafSet[m] || !g.IsAnd(m) {
					return 0
				}
				seen[m] = true
				f0, f1 := g.Fanins(m)
				return 1 + count(f0.Node()) + count(f1.Node())
			}
			if got := count(n); got != c.Volume {
				t.Fatalf("node %d cut %v volume %d, want %d", n, c.Leaves, c.Volume, got)
			}
		}
	}
}

func TestFilterDominated(t *testing.T) {
	mk := func(leaves ...uint32) Cut {
		return Cut{Leaves: leaves, Sig: leafSig(leaves)}
	}
	cs := []Cut{mk(1, 2, 3), mk(1, 2), mk(4, 5), mk(1, 2, 3, 4), mk(6)}
	out := FilterDominated(cs)
	wantKept := [][]uint32{{1, 2}, {4, 5}, {6}}
	if len(out) != len(wantKept) {
		t.Fatalf("FilterDominated kept %d cuts, want %d: %v", len(out), len(wantKept), out)
	}
	for i, w := range wantKept {
		if len(out[i].Leaves) != len(w) {
			t.Fatalf("kept cut %d = %v, want %v", i, out[i].Leaves, w)
		}
		for j := range w {
			if out[i].Leaves[j] != w[j] {
				t.Fatalf("kept cut %d = %v, want %v", i, out[i].Leaves, w)
			}
		}
	}
	// Duplicate leaf sets: exactly one survives.
	dup := []Cut{mk(1, 2), mk(1, 2)}
	if got := FilterDominated(dup); len(got) != 1 {
		t.Fatalf("duplicate sets: kept %d, want 1", len(got))
	}
}

func TestSubsetOf(t *testing.T) {
	a := Cut{Leaves: []uint32{1, 3}, Sig: leafSig([]uint32{1, 3})}
	b := Cut{Leaves: []uint32{1, 2, 3}, Sig: leafSig([]uint32{1, 2, 3})}
	if !subsetOf(&a, &b) {
		t.Errorf("{1,3} is a subset of {1,2,3}")
	}
	if subsetOf(&b, &a) {
		t.Errorf("{1,2,3} is not a subset of {1,3}")
	}
	if !subsetOf(&a, &a) {
		t.Errorf("a set is a subset of itself")
	}
}

func TestExpandTT(t *testing.T) {
	// f(x0,x1) = x0 AND x1 over leaves [10, 20], expanded to [5, 10, 20]:
	// must become x1 AND x2.
	f := tt.Var(0).And(tt.Var(1))
	got := expandTT(f, []uint32{10, 20}, []uint32{5, 10, 20})
	want := tt.Var(1).And(tt.Var(2))
	if got != want {
		t.Fatalf("expandTT = %08x, want %08x", uint32(got), uint32(want))
	}
	// Identity expansion.
	if expandTT(f, []uint32{1, 2}, []uint32{1, 2}) != f {
		t.Errorf("identity expansion changed the function")
	}
}

func TestDefaultPolicyOrdering(t *testing.T) {
	g := circuits.CarryLookaheadAdder(8)
	res := enumerate(g, DefaultPolicy{})
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		cs := res.Sets[n]
		if len(cs) == 0 {
			continue
		}
		// Non-decreasing leaf count except for the appended trivial cut.
		for i := 1; i < len(cs); i++ {
			if cs[i].IsTrivial(n) {
				continue
			}
			if len(cs[i-1].Leaves) > len(cs[i].Leaves) {
				t.Fatalf("node %d cuts not sorted by leaves: %v then %v", n, cs[i-1].Leaves, cs[i].Leaves)
			}
		}
		// No dominated pairs.
		for i := range cs {
			for j := range cs {
				if i != j && !cs[i].IsTrivial(n) && !cs[j].IsTrivial(n) &&
					len(cs[i].Leaves) < len(cs[j].Leaves) && subsetOf(&cs[i], &cs[j]) {
					t.Fatalf("node %d kept dominated cut %v under %v", n, cs[j].Leaves, cs[i].Leaves)
				}
			}
		}
	}
}

func TestDefaultPolicyLimit(t *testing.T) {
	g := circuits.ArrayMultiplier(6)
	res := enumerate(g, DefaultPolicy{Limit: 5})
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if len(res.Sets[n]) > 6 { // limit + possibly re-appended trivial cut
			t.Fatalf("node %d has %d cuts, limit 5", n, len(res.Sets[n]))
		}
	}
}

func TestUnlimitedSeesMoreCuts(t *testing.T) {
	g := circuits.CarryLookaheadAdder(16)
	def := enumerate(g, DefaultPolicy{})
	unl := enumerate(g, UnlimitedPolicy{})
	if unl.TotalCuts <= def.TotalCuts {
		t.Fatalf("unlimited (%d cuts) should expose more cuts than default (%d)",
			unl.TotalCuts, def.TotalCuts)
	}
}

func TestShuffleDeterministicPerSeed(t *testing.T) {
	g := circuits.TrainRC16()
	run := func(seed int64) []int {
		res := enumerate(g, &ShufflePolicy{Rng: rand.New(rand.NewSource(seed))})
		var shape []int
		for n := uint32(1); n < uint32(g.NumNodes()); n++ {
			for i := range res.Sets[n] {
				shape = append(shape, len(res.Sets[n][i].Leaves))
			}
		}
		return shape
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed produced different cut counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different cut lists at %d", i)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Logf("warning: different seeds produced identical shapes (possible but unlikely)")
	}
}

func TestSingleAttributePolicySorts(t *testing.T) {
	g := circuits.CarryLookaheadAdder(8)
	for _, desc := range []bool{false, true} {
		res := enumerate(g, SingleAttributePolicy{Feature: 2, Descending: desc}) // volume
		for n := uint32(1); n < uint32(g.NumNodes()); n++ {
			cs := res.Sets[n]
			var prev float64
			first := true
			for i := range cs {
				if cs[i].IsTrivial(n) {
					continue
				}
				v := cs[i].Features(g, n)[2]
				if !first {
					if desc && v > prev || !desc && v < prev {
						t.Fatalf("node %d not sorted (desc=%v): %f after %f", n, desc, v, prev)
					}
				}
				prev, first = v, false
			}
		}
	}
}

func TestCutFeatures(t *testing.T) {
	g := aig.New("f")
	a := g.AddPI("a")
	b := g.AddPI("b")
	c := g.AddPI("c")
	ab := g.And(a, b)
	f := g.And(ab, c)
	g.AddPO("f", f.Not()) // root has an inverted fanout

	cut := Cut{Leaves: []uint32{a.Node(), b.Node(), c.Node()}}
	cut.Sig = leafSig(cut.Leaves)
	cut.Volume = 2
	feat := cut.Features(g, f.Node())
	if feat[0] != 1 {
		t.Errorf("rootInverted = %f, want 1", feat[0])
	}
	if feat[1] != 3 {
		t.Errorf("numLeaves = %f, want 3", feat[1])
	}
	if feat[2] != 2 {
		t.Errorf("volume = %f, want 2", feat[2])
	}
	if feat[3] != 0 || feat[4] != 0 || feat[5] != 0 {
		t.Errorf("leaf levels of PIs must be 0: %v", feat[3:6])
	}
	// a and b feed one AND each; fanouts: a=1, b=1, c=1.
	if feat[6] != 1 || feat[7] != 1 || feat[8] != 3 {
		t.Errorf("fanout features wrong: %v", feat[6:9])
	}
}

func TestTotalCutsCountsAndNodesOnly(t *testing.T) {
	g := circuits.TrainRC16()
	res := enumerate(g, DefaultPolicy{})
	sum := 0
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			sum += len(res.Sets[n])
		}
	}
	if res.TotalCuts != sum {
		t.Fatalf("TotalCuts = %d, want %d", res.TotalCuts, sum)
	}
}

func BenchmarkEnumerateDefault(b *testing.B) {
	g := circuits.BoothMultiplier(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enumerate(g, DefaultPolicy{})
	}
}

func BenchmarkEnumerateUnlimited(b *testing.B) {
	g := circuits.BoothMultiplier(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enumerate(g, UnlimitedPolicy{})
	}
}

// benchMergeInputs builds realistic fanin cut lists for the merge benchmark:
// the two fanins of the highest-level AND node of a multiplier, enumerated
// under the default policy.
func benchMergeInputs(b *testing.B) (*Enumerator, uint32, aig.Lit, aig.Lit, []Cut, []Cut) {
	b.Helper()
	g := circuits.BoothMultiplier(8)
	e := &Enumerator{G: g, Policy: DefaultPolicy{}}
	res := e.Run()
	var best uint32
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) && g.Level(n) > g.Level(best) {
			best = n
		}
	}
	f0, f1 := g.Fanins(best)
	return e, best, f0, f1, res.Sets[f0.Node()], res.Sets[f1.Node()]
}

// BenchmarkMergeNode isolates the per-node merge step (leaf union, dedupe,
// cone evaluation) — the enumeration hot path.
func BenchmarkMergeNode(b *testing.B) {
	e, n, _, _, cs0, cs1 := benchMergeInputs(b)
	s := e.scratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := s.mergeNode(n, cs0, cs1, DefaultMergeCap)
		if len(out) == 0 {
			b.Fatal("merge produced no cuts")
		}
	}
}

// BenchmarkCutEnumeration measures whole-graph enumeration under the default
// policy (the mapper's first stage).
func BenchmarkCutEnumeration(b *testing.B) {
	g := circuits.BoothMultiplier(10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &Enumerator{G: g, Policy: DefaultPolicy{}}
		if res := e.Run(); res.TotalCuts == 0 {
			b.Fatal("no cuts")
		}
	}
}
