package cuts

import (
	"fmt"
	"math/rand"
	"testing"

	"slap/internal/aig"
	"slap/internal/circuits"
)

// requireIdenticalResults asserts that two enumeration results are
// byte-identical: same cut lists per node, same leaves, signatures, truth
// tables, volumes and ordering.
func requireIdenticalResults(t *testing.T, name string, want, got *Result) {
	t.Helper()
	if want.TotalCuts != got.TotalCuts {
		t.Fatalf("%s: TotalCuts %d != %d", name, got.TotalCuts, want.TotalCuts)
	}
	if len(want.Sets) != len(got.Sets) {
		t.Fatalf("%s: Sets length %d != %d", name, len(got.Sets), len(want.Sets))
	}
	for n := range want.Sets {
		w, g := want.Sets[n], got.Sets[n]
		if len(w) != len(g) {
			t.Fatalf("%s: node %d has %d cuts, want %d", name, n, len(g), len(w))
		}
		for i := range w {
			wc, gc := &w[i], &g[i]
			if !leavesEqual(wc.Leaves, gc.Leaves) {
				t.Fatalf("%s: node %d cut %d leaves %v, want %v", name, n, i, gc.Leaves, wc.Leaves)
			}
			if wc.Sig != gc.Sig || wc.TT != gc.TT || wc.Volume != gc.Volume {
				t.Fatalf("%s: node %d cut %d (sig=%x tt=%x vol=%d), want (sig=%x tt=%x vol=%d)",
					name, n, i, gc.Sig, uint32(gc.TT), gc.Volume, wc.Sig, uint32(wc.TT), wc.Volume)
			}
		}
	}
}

// TestParallelMatchesSequential is the wavefront determinism property test:
// for every test graph and parallel-safe policy, enumeration with a worker
// pool must produce byte-identical cut sets to the sequential Workers=1 run.
func TestParallelMatchesSequential(t *testing.T) {
	graphs := []*aig.AIG{
		circuits.TrainRC16(),
		circuits.CarryLookaheadAdder(16),
		circuits.BoothMultiplier(8),
	}
	for seed := int64(1); seed <= 4; seed++ {
		graphs = append(graphs, circuits.RandomAIG(seed, 24, 700))
	}
	policies := []Policy{
		nil,
		DefaultPolicy{},
		DefaultPolicy{Limit: 8},
		UnlimitedPolicy{},
		SingleAttributePolicy{Feature: 2, Descending: true},
	}
	for _, g := range graphs {
		if g.NumAnds() < minParallelAnds {
			t.Fatalf("%s: only %d AND nodes, below the parallel gate — not exercising the wavefront", g.Name, g.NumAnds())
		}
		for _, p := range policies {
			pname := "nil"
			if p != nil {
				pname = p.Name()
			}
			name := fmt.Sprintf("%s/%s", g.Name, pname)
			seq := (&Enumerator{G: g, Policy: p, Workers: 1}).Run()
			for _, workers := range []int{2, 4, 7} {
				par := (&Enumerator{G: g, Policy: p, Workers: workers}).Run()
				requireIdenticalResults(t, fmt.Sprintf("%s/workers=%d", name, workers), seq, par)
			}
		}
	}
}

// TestShufflePolicyDegradesToSequential proves the parallel-safety gate: a
// stateful policy requested with many workers must still reproduce the
// sequential per-seed result exactly.
func TestShufflePolicyDegradesToSequential(t *testing.T) {
	g := circuits.BoothMultiplier(8)
	mk := func(workers int) *Result {
		p := &ShufflePolicy{Rng: rand.New(rand.NewSource(7)), Limit: 16}
		return (&Enumerator{G: g, Policy: p, Workers: workers}).Run()
	}
	requireIdenticalResults(t, "shuffle", mk(1), mk(8))
}

// TestSortByLeavesTieBreak is the regression test for the lexicographic
// tie-break: equal leaf count and equal volume must order by leaves, making
// the sort independent of the input permutation.
func TestSortByLeavesTieBreak(t *testing.T) {
	mk := func(vol int32, leaves ...uint32) Cut {
		return Cut{Leaves: leaves, Sig: leafSig(leaves), Volume: vol}
	}
	cs := []Cut{
		mk(1, 2, 9),
		mk(1, 2, 3),
		mk(2, 5, 6),
		mk(1, 4),
		mk(3, 7),
	}
	SortByLeaves(cs)
	want := [][]uint32{
		{7},    // 1 leaf
		{4},    // 1 leaf (volume 1 < 3)
		{5, 6}, // 2 leaves, volume 2
		{2, 3}, // 2 leaves, volume 1, lexicographically before {2,9}
		{2, 9}, // 2 leaves, volume 1
	}
	for i := range want {
		if !leavesEqual(cs[i].Leaves, want[i]) {
			t.Fatalf("position %d: got %v, want %v (full order %v)", i, cs[i].Leaves, want[i], cs)
		}
	}
	// Permutation independence: any input order yields the same result.
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 10; round++ {
		perm := append([]Cut(nil), cs...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		SortByLeaves(perm)
		for i := range cs {
			if !leavesEqual(perm[i].Leaves, cs[i].Leaves) {
				t.Fatalf("round %d: order depends on input permutation at %d: %v vs %v",
					round, i, perm[i].Leaves, cs[i].Leaves)
			}
		}
	}
}

// TestFilterDominatedForSkipsTrivial checks the root-aware fast path: the
// trivial cut is never treated as a dominator, while genuine one-leaf cuts
// of other nodes still dominate.
func TestFilterDominatedForSkipsTrivial(t *testing.T) {
	mk := func(leaves ...uint32) Cut {
		return Cut{Leaves: leaves, Sig: leafSig(leaves)}
	}
	const root = 7
	cs := []Cut{mk(root), mk(1, 2), mk(1, 2, 3), mk(3), mk(3, 4)}
	out := FilterDominatedFor(root, cs)
	want := [][]uint32{{root}, {1, 2}, {3}}
	if len(out) != len(want) {
		t.Fatalf("kept %d cuts %v, want %d", len(out), out, len(want))
	}
	for i := range want {
		if !leavesEqual(out[i].Leaves, want[i]) {
			t.Fatalf("kept cut %d = %v, want %v", i, out[i].Leaves, want[i])
		}
	}
}

// TestRandomAIGDeterministic pins the seeded generator: same seed, same
// graph shape; different seed, different shape.
func TestRandomAIGDeterministic(t *testing.T) {
	a := circuits.RandomAIG(5, 16, 400)
	b := circuits.RandomAIG(5, 16, 400)
	if a.NumNodes() != b.NumNodes() || a.NumPOs() != b.NumPOs() {
		t.Fatalf("same seed produced different graphs: %d/%d nodes, %d/%d POs",
			a.NumNodes(), b.NumNodes(), a.NumPOs(), b.NumPOs())
	}
	if a.NumAnds() < minParallelAnds {
		t.Fatalf("random graph too small for wavefront tests: %d ANDs", a.NumAnds())
	}
}
