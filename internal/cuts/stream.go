// Streaming enumeration: RunStream hands each completed wavefront level to
// a sink (the fused mapper) and releases a level's cut storage as soon as
// every consumer of that level has been merged — the level-retirement rule.
// Peak cut memory drops from the whole graph to the widest live window, and
// with an Arena attached the released blocks are recycled in place.
package cuts

import (
	"fmt"
	"sync"
)

// LevelSink consumes the finalised cut sets of one wavefront level. It is
// called on the driver goroutine with levels in ascending order; nodes is
// the level's AND nodes in ascending index order and sets is the full
// Sets view (only entries of still-live levels are valid). The cut lists
// handed to the sink are only guaranteed to stay alive until the sink
// returns: consumers must copy whatever they keep. A non-nil error aborts
// the run.
type LevelSink func(level int32, nodes []uint32, sets [][]Cut) error

// streamState is the per-run bookkeeping of RunStream. It lives on the
// driver's stack; all backing slices come from the Arena when one is
// attached.
type streamState struct {
	res      *Result
	a        *Arena
	sink     LevelSink
	maxLevel int32

	levelNodes []uint32 // AND nodes grouped by level, ascending within each
	levelOff   []int32  // level L = levelNodes[levelOff[L]:levelOff[L+1]]
	levelCuts  []int32  // cuts retained per completed level (live accounting)
	retireLv   []int32  // levels ordered by retirement time
	retireOff  []int32  // retireLv segment to retire once level M completes

	scratches []*scratch

	live  int
	peak  int
	total int
}

// RunStream enumerates cuts for all nodes, invoking sink after each level's
// cut sets are final and retiring each level's storage once all of its
// consumers (AND fanouts) have been merged. Cut sets and consume order are
// identical to Run for any policy: parallel-safe policies stream the level
// wavefront, stateful ones (e.g. ShufflePolicy) degrade to the sequential
// index-order walk that preserves their visit-order-dependent state, with
// sinks still fired per completed level prefix.
//
// After RunStream returns, AND entries of Result.Sets have been released;
// only TotalCuts and PeakCuts remain meaningful.
func (e *Enumerator) RunStream(sink LevelSink) (*Result, error) {
	g := e.G
	capN := e.MergeCap
	if capN == 0 {
		capN = DefaultMergeCap
	}

	// Force the AIG's lazily-memoised caches before any fan-out (see
	// runWavefront).
	maxLevel := g.MaxLevel()
	g.Fanout(0)
	g.HasInvertedFanout(0)

	a := e.Arena
	var res *Result
	if a != nil {
		if a.g != g && a.key != KeyOf(g) {
			return nil, fmt.Errorf("cuts: arena is keyed to a different graph")
		}
		a.attach(g)
		res = &a.res
		*res = Result{Sets: a.sets}
		a.bindPIs(res)
	} else {
		res = &Result{Sets: make([][]Cut, g.NumNodes())}
		for n := uint32(1); n < uint32(g.NumNodes()); n++ {
			if g.IsPI(n) {
				res.Sets[n] = []Cut{trivialCut(n)}
			}
		}
	}

	st := streamState{res: res, a: a, sink: sink, maxLevel: maxLevel}
	e.buildLevelPlan(&st)

	var err error
	if PolicyParallelSafe(e.Policy) {
		err = e.streamLevels(&st, capN)
	} else {
		err = e.streamIndexOrder(&st, capN)
	}
	if err != nil {
		return nil, err
	}
	res.TotalCuts = st.total
	res.PeakCuts = st.peak
	return res, nil
}

// buildLevelPlan groups the AND nodes by level and precomputes the
// retirement schedule: level L may be retired once all levels up to
// retireAfter[L] — the maximum level of any AND fanout of an L-level node —
// have been fully merged (fanouts sit at strictly higher levels than their
// fanins, so the rule is well-formed for both drivers).
func (e *Enumerator) buildLevelPlan(st *streamState) {
	g := e.G
	nLv := int(st.maxLevel) + 1
	numAnds := g.NumAnds()

	var retireAfter, cursor []int32
	if a := st.a; a != nil {
		st.levelNodes = growUint32(&a.levelNodes, numAnds)
		st.levelOff = growInt32(&a.levelOff, nLv+1)
		st.levelCuts = growInt32(&a.levelCuts, nLv)
		st.retireLv = growInt32(&a.retireLv, nLv)
		st.retireOff = growInt32(&a.retireOff, nLv+1)
		retireAfter = growInt32(&a.retireAfter, nLv)
		cursor = growInt32(&a.cursor, nLv+1)
	} else {
		st.levelNodes = make([]uint32, numAnds)
		st.levelOff = make([]int32, nLv+1)
		st.levelCuts = make([]int32, nLv)
		st.retireLv = make([]int32, nLv)
		st.retireOff = make([]int32, nLv+1)
		retireAfter = make([]int32, nLv)
		cursor = make([]int32, nLv+1)
	}

	// Counting sort of the AND nodes by level, ascending index within each.
	for i := range st.levelOff {
		st.levelOff[i] = 0
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			st.levelOff[g.Level(n)+1]++
		}
	}
	for l := 1; l <= nLv; l++ {
		st.levelOff[l] += st.levelOff[l-1]
	}
	copy(cursor, st.levelOff[:nLv])
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			l := g.Level(n)
			st.levelNodes[cursor[l]] = n
			cursor[l]++
		}
	}

	// retireAfter[L] = max level of any AND consumer of an L-level node.
	for l := int32(0); l < int32(nLv); l++ {
		retireAfter[l] = l
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		ln := g.Level(n)
		f0, f1 := g.Fanins(n)
		for _, f := range [2]uint32{f0.Node(), f1.Node()} {
			if g.IsAnd(f) {
				if lf := g.Level(f); ln > retireAfter[lf] {
					retireAfter[lf] = ln
				}
			}
		}
		// Choice members are extra consumers: a member's list must survive
		// until every node it enriches has been merged.
		if e.Choices != nil {
			for _, mem := range e.Choices.MembersOf(n) {
				if g.IsAnd(mem.Node) {
					if lm := g.Level(mem.Node); ln > retireAfter[lm] {
						retireAfter[lm] = ln
					}
				}
			}
		}
	}

	// Counting sort of the levels by retirement time.
	for i := range st.retireOff {
		st.retireOff[i] = 0
	}
	for l := 0; l < nLv; l++ {
		st.retireOff[retireAfter[l]+1]++
	}
	for m := 1; m <= nLv; m++ {
		st.retireOff[m] += st.retireOff[m-1]
	}
	copy(cursor, st.retireOff[:nLv])
	for l := int32(0); l < int32(nLv); l++ {
		m := retireAfter[l]
		st.retireLv[cursor[m]] = l
		cursor[m]++
	}
}

func growInt32(p *[]int32, n int) []int32 {
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return *p
}

func growUint32(p *[]uint32, n int) []uint32 {
	if cap(*p) < n {
		*p = make([]uint32, n)
	}
	*p = (*p)[:n]
	return *p
}

// streamWorkers resolves the Workers knob for the level-order driver (the
// policy is already known to be parallel-safe).
func (e *Enumerator) streamWorkers() int {
	w := e.effectiveWorkers()
	if w < 1 {
		w = 1
	}
	return w
}

// streamLevels is the level-order driver: each level is merged (inline or
// across the worker pool), handed to the sink, and then every level whose
// consumers are all complete is retired.
func (e *Enumerator) streamLevels(st *streamState, capN int) error {
	workers := e.streamWorkers()
	if st.a != nil {
		for i := 0; i < workers; i++ {
			st.a.scratchFor(i, st.maxLevel)
		}
		st.scratches = st.a.scratches[:workers]
	} else {
		st.scratches = make([]*scratch, workers)
		st.scratches[0] = e.scratch()
		for i := 1; i < workers; i++ {
			st.scratches[i] = newScratch(e.G)
		}
	}
	for L := int32(0); L <= st.maxLevel; L++ {
		nodes := st.levelNodes[st.levelOff[L]:st.levelOff[L+1]]
		if len(nodes) > 0 {
			if st.a != nil {
				for _, s := range st.scratches {
					s.beginLevel(L)
				}
			}
			if workers == 1 || len(nodes) < 2*workers {
				// Narrow levels run inline, as in runWavefront.
				for _, n := range nodes {
					e.processNode(st.scratches[0], st.res, n, capN)
				}
			} else {
				e.runLevelChunks(st.res, st.scratches, nodes, workers, capN)
			}
			if err := st.completeLevel(L, nodes); err != nil {
				return err
			}
		}
		st.retireThrough(L)
	}
	return nil
}

// runLevelChunks fans one wide level out across the worker scratches. It is
// a separate method so its goroutine closures capture only locals: inlined
// into streamLevels they would force streamState (and the WaitGroup) to the
// heap on every run, including the sequential path that never launches a
// goroutine.
func (e *Enumerator) runLevelChunks(res *Result, scratches []*scratch, nodes []uint32, workers, capN int) {
	chunk := (len(nodes) + workers - 1) / workers
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		lo := k * chunk
		hi := lo + chunk
		if hi > len(nodes) {
			hi = len(nodes)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s *scratch, ns []uint32) {
			defer wg.Done()
			for _, n := range ns {
				e.processNode(s, res, n, capN)
			}
		}(scratches[k], nodes[lo:hi])
	}
	wg.Wait()
}

// streamIndexOrder is the sequential driver for stateful policies: nodes are
// visited in topological index order exactly as Run's sequential path (so
// e.g. a ShufflePolicy consumes its RNG in the same sequence), and the sink
// fires for each level as soon as the completed prefix covers it.
func (e *Enumerator) streamIndexOrder(st *streamState, capN int) error {
	g := e.G
	var s *scratch
	if st.a != nil {
		s = st.a.scratchFor(0, st.maxLevel)
		st.scratches = st.a.scratches[:1]
	} else {
		s = e.scratch()
		st.scratches = []*scratch{s}
	}
	nLv := int(st.maxLevel) + 1
	var remaining []int32
	if st.a != nil {
		remaining = growInt32(&st.a.cursor, nLv)
	} else {
		remaining = make([]int32, nLv)
	}
	for l := 0; l < nLv; l++ {
		remaining[l] = st.levelOff[l+1] - st.levelOff[l]
	}
	sinkLv := int32(0)
	advance := func() error {
		for sinkLv <= st.maxLevel && remaining[sinkLv] == 0 {
			nodes := st.levelNodes[st.levelOff[sinkLv]:st.levelOff[sinkLv+1]]
			if len(nodes) > 0 {
				if err := st.completeLevel(sinkLv, nodes); err != nil {
					return err
				}
			}
			st.retireThrough(sinkLv)
			sinkLv++
		}
		return nil
	}
	if err := advance(); err != nil {
		return err
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if !g.IsAnd(n) {
			continue
		}
		e.processNode(s, st.res, n, capN)
		remaining[g.Level(n)]--
		if err := advance(); err != nil {
			return err
		}
	}
	return nil
}

// completeLevel tallies the finished level and hands it to the sink.
func (st *streamState) completeLevel(L int32, nodes []uint32) error {
	cnt := 0
	for _, n := range nodes {
		cnt += len(st.res.Sets[n])
	}
	st.levelCuts[L] = int32(cnt)
	st.total += cnt
	st.live += cnt
	if st.live > st.peak {
		st.peak = st.live
	}
	if st.sink != nil {
		return st.sink(L, nodes, st.res.Sets)
	}
	return nil
}

// retireThrough releases every level whose retirement time is M: all their
// consumers sit at levels <= M, which are complete.
func (st *streamState) retireThrough(M int32) {
	for _, L := range st.retireLv[st.retireOff[M]:st.retireOff[M+1]] {
		st.retireLevel(L)
	}
}

func (st *streamState) retireLevel(L int32) {
	nodes := st.levelNodes[st.levelOff[L]:st.levelOff[L+1]]
	for _, n := range nodes {
		if st.a != nil {
			if b := st.a.blocks[n]; b != nil {
				st.a.putCutBlock(b)
				st.a.blocks[n] = nil
			}
		}
		st.res.Sets[n] = nil
	}
	st.live -= int(st.levelCuts[L])
	for _, s := range st.scratches {
		s.releaseLevelChunks(L)
	}
}
