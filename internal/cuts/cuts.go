// Package cuts implements k-feasible cut enumeration over AIGs with the
// priority-cuts scheme: each node keeps a bounded, policy-ordered list of
// cuts, and the merge step (Eq. 1 of the paper) works on the already-pruned
// fanin lists. The cut sorting/filtering policy is therefore the lever that
// shapes the whole mapping search space — exactly the lever SLAP replaces
// with a learned model.
//
// Enumeration runs as a topological level wavefront: a node's cut set
// depends only on its fanins, which sit at strictly lower levels, so all
// nodes of one level can be merged concurrently once the previous levels are
// done. Each worker owns private scratch state (epoch-stamped visited/value
// arrays, the dedupe hash table, a leaf arena), so the hot path takes no
// locks and performs no steady-state allocations. See DESIGN.md
// §"Concurrency architecture".
package cuts

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"slap/internal/aig"
	"slap/internal/tt"
)

// K is the cut leaf limit used throughout the paper (5-input cuts, matching
// the standard-cell matching width).
const K = 5

// Cut is a k-feasible cut: a set of leaves, the function of the root in
// terms of those leaves, and structural attributes.
type Cut struct {
	// Leaves are the cut leaf node ids in ascending order.
	Leaves []uint32
	// Sig is a 64-bit Bloom signature of the leaf set, used for fast
	// dominance rejection.
	Sig uint64
	// TT is the root function over the leaves (variable i = Leaves[i]).
	TT tt.TT
	// Volume is the number of AND nodes covered by the cut (root included,
	// leaves excluded).
	Volume int32
	// Choice marks a cut imported from a functional equivalence-class
	// member (see ChoiceSource): it computes the root's function but its
	// leaves cut the member's cone, not the root's. Choice cuts feed
	// Boolean matching like any other cut but are excluded from upward
	// merging, whose symbolic cone evaluation requires structural cuts.
	Choice bool
}

// IsTrivial reports whether the cut is the trivial cut {n} of its root.
func (c *Cut) IsTrivial(root uint32) bool {
	return len(c.Leaves) == 1 && c.Leaves[0] == root
}

// LeafSig recomputes a cut's Bloom signature from its leaves — needed when
// leaves are rewritten in place (e.g. translated through an ECO alignment).
func LeafSig(leaves []uint32) uint64 { return leafSig(leaves) }

func leafSig(leaves []uint32) uint64 {
	var s uint64
	for _, l := range leaves {
		s |= 1 << (l % 64)
	}
	return s
}

// hashLeaves mixes a sorted leaf list into a 64-bit dedupe key. Unlike the
// Bloom Sig it is a proper hash: distinct leaf sets collide only by chance,
// so the merge dedupe needs a full leaf comparison only on hash collision.
func hashLeaves(leaves []uint32) uint64 {
	h := uint64(0x9e3779b97f4a7c15) ^ uint64(len(leaves))
	for _, l := range leaves {
		h ^= uint64(l)
		h *= 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	return h
}

func leavesEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subsetOf reports whether a's leaves are a subset of b's.
func subsetOf(a, b *Cut) bool {
	if len(a.Leaves) > len(b.Leaves) || a.Sig&^b.Sig != 0 {
		return false
	}
	i, j := 0, 0
	for i < len(a.Leaves) && j < len(b.Leaves) {
		switch {
		case a.Leaves[i] == b.Leaves[j]:
			i++
			j++
		case a.Leaves[i] > b.Leaves[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a.Leaves)
}

// mergeLeavesInto unions two sorted leaf lists into buf, failing when the
// union exceeds K. It returns the union length.
func mergeLeavesInto(buf *[K]uint32, a, b []uint32) (int, bool) {
	n := 0
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v uint32
		switch {
		case i == len(a):
			v = b[j]
			j++
		case j == len(b):
			v = a[i]
			i++
		case a[i] == b[j]:
			v = a[i]
			i++
			j++
		case a[i] < b[j]:
			v = a[i]
			i++
		default:
			v = b[j]
			j++
		}
		if n == K {
			return 0, false
		}
		buf[n] = v
		n++
	}
	return n, true
}

// expandTT re-expresses a cut function given over the variable ordering
// `from` in the ordering `to` (from must be a subsequence of to).
func expandTT(f tt.TT, from, to []uint32) tt.TT {
	var perm [tt.MaxVars]uint8
	used := uint8(0)
	j := 0
	for i, leaf := range from {
		for to[j] != leaf {
			j++
		}
		perm[i] = uint8(j)
		used |= 1 << uint(j)
	}
	// Fill the remaining permutation slots with unused positions.
	next := 0
	for i := len(from); i < tt.MaxVars; i++ {
		for used&(1<<uint(next)) != 0 {
			next++
		}
		perm[i] = uint8(next)
		used |= 1 << uint(next)
	}
	return f.Permute(perm)
}

// Policy orders and prunes the candidate cut list of one node. The returned
// slice is what downstream merging and Boolean matching will see.
type Policy interface {
	// Process may reorder, filter and truncate cs. It must keep the trivial
	// cut reachable for mapping (the enumerator re-appends it if dropped).
	Process(g *aig.AIG, n uint32, cs []Cut) []Cut
	// Name identifies the policy in reports.
	Name() string
}

// ParallelSafe is an optional Policy extension: a policy whose Process is a
// pure function of (g, n, cs) — no mutable state shared across calls —
// returns true to opt into concurrent Process calls during wavefront
// enumeration. Stateful policies (e.g. ShufflePolicy, whose RNG sequence
// depends on node visit order) simply do not implement it and the enumerator
// falls back to the sequential path automatically.
type ParallelSafe interface{ ParallelSafe() bool }

// PolicyParallelSafe reports whether p may be invoked concurrently. The nil
// (exhaustive) policy is safe by definition.
func PolicyParallelSafe(p Policy) bool {
	if p == nil {
		return true
	}
	ps, ok := p.(ParallelSafe)
	return ok && ps.ParallelSafe()
}

// Result holds the outcome of cut enumeration.
type Result struct {
	// Sets[n] is the cut list of node n (nil for PIs/constant except for
	// their trivial cut).
	Sets [][]Cut
	// TotalCuts is the number of cuts exposed to the mapper, the paper's
	// "Cuts Used" memory-footprint metric.
	TotalCuts int
	// PeakCuts is the maximum number of cuts simultaneously retained during
	// enumeration. Run holds every cut until the end, so it equals
	// TotalCuts; RunStream retires levels as their consumers complete and
	// reports the widest live window.
	PeakCuts int
}

// Enumerator computes k-feasible cuts for every node of an AIG under a
// given priority policy.
type Enumerator struct {
	G *aig.AIG
	// Policy orders/prunes each node's cut list; nil means keep everything
	// (exhaustive enumeration subject only to MergeCap).
	Policy Policy
	// MergeCap bounds the per-node list length before the policy runs, to
	// keep exhaustive enumeration tractable on large designs. Zero means
	// DefaultMergeCap.
	MergeCap int
	// Workers bounds level-wavefront parallelism: 0 means one worker per
	// CPU core, 1 forces the sequential path, N > 1 uses N workers. The
	// parallel and sequential paths produce identical Results; parallel
	// runs additionally require a parallel-safe policy (see ParallelSafe)
	// and degrade to sequential otherwise.
	Workers int
	// Arena, when non-nil, provides pooled cut storage for RunStream so a
	// repeated mapping of the same graph shape allocates nothing in steady
	// state (see Pool). Run ignores it.
	Arena *Arena
	// Choices, when non-nil, exposes functional equivalence classes: each
	// node's merged list is enriched with its class members' cuts before the
	// policy runs, so mapping matches across structural variants. See
	// choice.go for the eligibility rule sources must uphold.
	Choices ChoiceSource

	// s is the sequential/owner scratch, shared with worker 0.
	s *scratch
}

// DefaultMergeCap bounds per-node cut lists during enumeration.
const DefaultMergeCap = 2000

// minParallelAnds gates the wavefront path: below this graph size the
// per-level barriers cost more than the merges they spread.
const minParallelAnds = 128

func (e *Enumerator) scratch() *scratch {
	if e.s == nil {
		e.s = newScratch(e.G)
	}
	return e.s
}

// effectiveWorkers resolves the Workers knob against the policy and graph.
func (e *Enumerator) effectiveWorkers() int {
	w := e.Workers
	if w == 0 {
		w = runtime.NumCPU()
	}
	if w <= 1 || !PolicyParallelSafe(e.Policy) || e.G.NumAnds() < minParallelAnds {
		return 1
	}
	return w
}

// Run enumerates cuts for all nodes. The sequential path visits nodes in
// topological index order; the parallel path sweeps a level wavefront. Both
// produce identical cut sets: a node's merge depends only on its fanin
// lists, which are complete before the node is visited on either path, and
// the per-node merge/policy pipeline is deterministic.
func (e *Enumerator) Run() *Result {
	g := e.G
	capN := e.MergeCap
	if capN == 0 {
		capN = DefaultMergeCap
	}
	res := &Result{Sets: make([][]Cut, g.NumNodes())}
	if workers := e.effectiveWorkers(); workers > 1 {
		e.runWavefront(res, capN, workers)
	} else {
		e.runSequential(res, capN)
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			res.TotalCuts += len(res.Sets[n])
		}
	}
	res.PeakCuts = res.TotalCuts
	return res
}

// RunWithReuse enumerates like the sequential Run path, but consults
// reuse(n) before processing each AND node: a non-nil list is installed
// verbatim and the node's merge/policy pipeline is skipped, while a nil
// return falls through to normal processing. The supplied list must be a
// complete post-policy cut list (including the trivial cut) whose leaves
// are valid node ids of e.G — in the ECO flow it is a cached baseline list
// translated through a monotone node alignment, which makes it byte-equal
// to what fresh enumeration would produce, so downstream nodes merging it
// see exactly the fresh-run inputs.
func (e *Enumerator) RunWithReuse(reuse func(n uint32) []Cut) *Result {
	g := e.G
	capN := e.MergeCap
	if capN == 0 {
		capN = DefaultMergeCap
	}
	res := &Result{Sets: make([][]Cut, g.NumNodes())}
	s := e.scratch()
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		switch {
		case g.IsPI(n):
			res.Sets[n] = []Cut{trivialCut(n)}
		case g.IsAnd(n):
			if cs := reuse(n); cs != nil {
				res.Sets[n] = cs
				continue
			}
			e.processNode(s, res, n, capN)
		}
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			res.TotalCuts += len(res.Sets[n])
		}
	}
	res.PeakCuts = res.TotalCuts
	return res
}

func (e *Enumerator) runSequential(res *Result, capN int) {
	g := e.G
	s := e.scratch()
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsPI(n) {
			res.Sets[n] = []Cut{trivialCut(n)}
			continue
		}
		if g.IsAnd(n) {
			e.processNode(s, res, n, capN)
		}
	}
}

// runWavefront processes the AND nodes level by level, fanning each level
// out across the worker pool. Workers write disjoint res.Sets entries and
// own all their scratch state, so the level barrier is the only
// synchronisation.
func (e *Enumerator) runWavefront(res *Result, capN, workers int) {
	g := e.G
	// Force the AIG's lazily-memoised caches (levels, fanouts, inverted
	// fanout flags) before fanning out: policies read them through
	// Cut.Features and the first computation must not be raced.
	maxLevel := g.MaxLevel()
	g.Fanout(0)
	g.HasInvertedFanout(0)

	buckets := make([][]uint32, maxLevel+1)
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		switch {
		case g.IsPI(n):
			res.Sets[n] = []Cut{trivialCut(n)}
		case g.IsAnd(n):
			l := g.Level(n)
			buckets[l] = append(buckets[l], n)
		}
	}

	scratches := make([]*scratch, workers)
	scratches[0] = e.scratch()
	for i := 1; i < workers; i++ {
		scratches[i] = newScratch(g)
	}

	var wg sync.WaitGroup
	for _, nodes := range buckets {
		if len(nodes) == 0 {
			continue
		}
		// Narrow levels run inline: a goroutine handoff per node costs more
		// than the merge it would parallelise.
		if len(nodes) < 2*workers {
			for _, n := range nodes {
				e.processNode(scratches[0], res, n, capN)
			}
			continue
		}
		chunk := (len(nodes) + workers - 1) / workers
		for k := 0; k < workers; k++ {
			lo := k * chunk
			hi := lo + chunk
			if hi > len(nodes) {
				hi = len(nodes)
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(s *scratch, ns []uint32) {
				defer wg.Done()
				for _, n := range ns {
					e.processNode(s, res, n, capN)
				}
			}(scratches[k], nodes[lo:hi])
		}
		wg.Wait()
	}
}

// processNode computes one AND node's final cut list.
func (e *Enumerator) processNode(s *scratch, res *Result, n uint32, capN int) {
	f0, f1 := e.G.Fanins(n)
	cs := s.mergeNode(n, res.Sets[f0.Node()], res.Sets[f1.Node()], capN)
	if e.Choices != nil {
		cs = s.enrichChoices(e, res, n, cs, capN)
	}
	if e.Policy != nil {
		cs = e.Policy.Process(e.G, n, cs)
	}
	cs = s.ensureTrivialCut(n, cs)
	if s.a != nil {
		// Record the block backing this node's list so level retirement can
		// recycle it. Policies keep the merge array (sort/filter/truncate in
		// place), so cs still views the checked-out block; if a policy ever
		// substituted its own array, putCutBlock's power-of-two check drops
		// it to the garbage collector instead.
		s.a.blocks[n] = cs
	}
	res.Sets[n] = cs
}

func trivialCut(n uint32) Cut {
	return Cut{
		Leaves: []uint32{n},
		Sig:    leafSig([]uint32{n}),
		TT:     tt.Var(0),
		Volume: 0,
	}
}

func ensureTrivial(n uint32, cs []Cut) []Cut {
	for i := range cs {
		if cs[i].IsTrivial(n) {
			return cs
		}
	}
	return append(cs, trivialCut(n))
}

// ensureTrivialCut is ensureTrivial with arena-backed storage: the appended
// trivial cut's leaf slice is interned and the cut block is grown through
// the arena instead of the heap.
func (s *scratch) ensureTrivialCut(n uint32, cs []Cut) []Cut {
	if s.a == nil {
		return ensureTrivial(n, cs)
	}
	for i := range cs {
		if cs[i].IsTrivial(n) {
			return cs
		}
	}
	if len(cs) == cap(cs) {
		cs = s.growCutList(cs)
	}
	one := [1]uint32{n}
	return append(cs, Cut{
		Leaves: s.internLeaves(one[:]),
		Sig:    leafSig(one[:]),
		TT:     tt.Var(0),
		Volume: 0,
	})
}

// growCutList moves cs into a larger arena block, recycling the old one.
// Only the merge pipeline of the current node references cs, so the old
// block is safe to hand back immediately.
func (s *scratch) growCutList(cs []Cut) []Cut {
	want := 2 * cap(cs)
	if want == 0 {
		want = 1
	}
	nb := s.a.getCutBlock(want)
	nb = nb[:len(cs)]
	copy(nb, cs)
	s.a.putCutBlock(cs)
	return nb
}

// beginLevel scopes subsequently filled leaf chunks to level l (level-order
// streaming): the partial chunk in flight still belongs to the previous
// scope and is flushed there first.
func (s *scratch) beginLevel(l int32) {
	s.flushChunk()
	s.curLevel = l
}

// flushChunk registers the current partial leaf chunk under the active
// scope so it can be recycled, and detaches it. Without an arena the chunk
// is simply dropped to the garbage collector (pre-arena behaviour).
func (s *scratch) flushChunk() {
	if cap(s.arena) == 0 {
		s.arena = nil
		return
	}
	if s.a != nil {
		if s.curLevel >= 0 {
			s.chunksByLevel[s.curLevel] = append(s.chunksByLevel[s.curLevel], s.arena)
		} else {
			s.runChunks = append(s.runChunks, s.arena)
		}
	}
	s.arena = nil
}

// releaseLevelChunks recycles the leaf chunks scoped to a retired level.
func (s *scratch) releaseLevelChunks(l int32) {
	if s.a == nil || int(l) >= len(s.chunksByLevel) {
		return
	}
	if s.curLevel == l {
		s.flushChunk()
	}
	for _, ch := range s.chunksByLevel[l] {
		s.a.putLeafChunk(ch)
	}
	s.chunksByLevel[l] = s.chunksByLevel[l][:0]
}

// reclaimChunks returns every outstanding leaf chunk to the arena (end of a
// run, or Arena reclaim after an aborted one).
func (s *scratch) reclaimChunks() {
	if s.a == nil {
		return
	}
	s.flushChunk()
	for i, ch := range s.runChunks {
		s.a.putLeafChunk(ch)
		s.runChunks[i] = nil
	}
	s.runChunks = s.runChunks[:0]
	for l := range s.chunksByLevel {
		for i, ch := range s.chunksByLevel[l] {
			s.a.putLeafChunk(ch)
			s.chunksByLevel[l][i] = nil
		}
		s.chunksByLevel[l] = s.chunksByLevel[l][:0]
	}
	s.curLevel = -1
}

// scratch is the per-worker mutable state of enumeration. Everything is
// epoch-stamped or arena-chunked so the merge hot path allocates nothing in
// steady state and no two workers ever share a scratch.
type scratch struct {
	g *aig.AIG

	// Cone-evaluation state: visited is epoch-stamped so clearing between
	// cuts is one counter increment.
	visited []uint32
	val     []tt.TT
	epoch   uint32
	vol     int32

	// Dedupe table: open addressing, power-of-two sized, epoch-stamped so
	// clearing between nodes is one counter increment. tabIdx points into
	// the node's accumulating cut list.
	tabEpoch []uint32
	tabHash  []uint64
	tabIdx   []int32
	tabCur   uint32
	tabCount int

	// arena provides leaf-slice storage for accepted cuts in chunked
	// bulk allocations.
	arena []uint32

	// a, when non-nil, supplies pooled blocks and chunks (streaming runs).
	// curLevel scopes filled leaf chunks: >= 0 registers them per level in
	// chunksByLevel so retirement can recycle them; -1 (index-order driver
	// and MakeCut) accumulates them in runChunks until Arena reclaim.
	a             *Arena
	curLevel      int32
	chunksByLevel [][][]uint32
	runChunks     [][]uint32
}

const arenaChunk = 4096

func newScratch(g *aig.AIG) *scratch {
	return &scratch{
		g:       g,
		visited: make([]uint32, g.NumNodes()),
		val:     make([]tt.TT, g.NumNodes()),
	}
}

// mergeNode computes the cut set of AND node n from its fanin cut sets. The
// hot loop is allocation-free in steady state: leaf unions go into a stack
// buffer, duplicates are rejected by the epoch-stamped hash table keyed on a
// 64-bit leaf hash (full leaf comparison only on collision), accepted leaf
// slices are carved from the arena, and cone evaluation reuses the
// epoch-stamped visited/value arrays.
func (s *scratch) mergeNode(n uint32, cs0, cs1 []Cut, capN int) []Cut {
	// Pre-size from the fanin list lengths: the union count is close to the
	// sum for typical priority-cut lists.
	est := len(cs0) + len(cs1)
	if est > capN {
		est = capN
	}
	var out []Cut
	if s.a != nil {
		out = s.a.getCutBlock(est + 1)
	} else {
		out = make([]Cut, 0, est+1)
	}
	s.resetTable(est)
	var buf [K]uint32
	for i := range cs0 {
		if cs0[i].Choice {
			continue // choice cuts are not structural cuts of the fanin
		}
		for j := range cs1 {
			u, v := &cs0[i], &cs1[j]
			if v.Choice {
				continue
			}
			if bits.OnesCount64(u.Sig|v.Sig) > K {
				continue // cannot be k-feasible
			}
			nl, ok := mergeLeavesInto(&buf, u.Leaves, v.Leaves)
			if !ok {
				continue
			}
			leaves := buf[:nl]
			if s.seen(leaves, out) {
				continue
			}
			// The truth table is computed by symbolic cone evaluation rather
			// than by composing the fanin cut functions: when a leaf of one
			// fanin cut is the other fanin node itself, composition would
			// wrongly substitute that leaf's own function for the free leaf
			// variable. Cone evaluation also yields the volume in the same
			// traversal.
			f, vol := s.coneTT(n, leaves)
			if s.a != nil && len(out) == cap(out) {
				out = s.growCutList(out)
			}
			out = append(out, Cut{
				Leaves: s.internLeaves(leaves),
				Sig:    leafSig(leaves),
				TT:     f,
				Volume: vol,
			})
			if len(out) >= capN {
				return out
			}
		}
	}
	return out
}

// resetTable prepares the dedupe table for a node expecting about `expect`
// distinct cuts.
func (s *scratch) resetTable(expect int) {
	need := 4 * expect
	if need < 64 {
		need = 64
	}
	size := len(s.tabHash)
	if size < need {
		size = 64
		for size < need {
			size <<= 1
		}
		s.tabHash = make([]uint64, size)
		s.tabIdx = make([]int32, size)
		s.tabEpoch = make([]uint32, size)
		s.tabCur = 0
	}
	s.tabCur++
	if s.tabCur == 0 { // epoch counter wrapped: stale stamps become valid
		for i := range s.tabEpoch {
			s.tabEpoch[i] = 0
		}
		s.tabCur = 1
	}
	s.tabCount = 0
}

// seen reports whether leaves already occur in out; otherwise it records
// them under the next out index and returns false.
func (s *scratch) seen(leaves []uint32, out []Cut) bool {
	if 2*(s.tabCount+1) > len(s.tabHash) {
		s.growTable(out)
	}
	h := hashLeaves(leaves)
	mask := uint64(len(s.tabHash) - 1)
	slot := h & mask
	for {
		if s.tabEpoch[slot] != s.tabCur {
			s.tabEpoch[slot] = s.tabCur
			s.tabHash[slot] = h
			s.tabIdx[slot] = int32(len(out))
			s.tabCount++
			return false
		}
		if s.tabHash[slot] == h && leavesEqual(out[s.tabIdx[slot]].Leaves, leaves) {
			return true
		}
		slot = (slot + 1) & mask
	}
}

// growTable doubles the dedupe table and reinserts the node's accepted cuts
// (the table entries correspond exactly to out's indices).
func (s *scratch) growTable(out []Cut) {
	size := 2 * len(s.tabHash)
	s.tabHash = make([]uint64, size)
	s.tabIdx = make([]int32, size)
	s.tabEpoch = make([]uint32, size)
	s.tabCur = 1
	s.tabCount = len(out)
	mask := uint64(size - 1)
	for i := range out {
		h := hashLeaves(out[i].Leaves)
		slot := h & mask
		for s.tabEpoch[slot] == s.tabCur {
			slot = (slot + 1) & mask
		}
		s.tabEpoch[slot] = s.tabCur
		s.tabHash[slot] = h
		s.tabIdx[slot] = int32(i)
	}
}

// internLeaves copies an accepted leaf union into the arena, so the merge
// loop allocates one chunk per ~arenaChunk leaves instead of one slice per
// cut.
func (s *scratch) internLeaves(src []uint32) []uint32 {
	if cap(s.arena)-len(s.arena) < len(src) {
		if s.a != nil {
			s.flushChunk()
			s.arena = s.a.getLeafChunk()
		} else {
			s.arena = make([]uint32, 0, arenaChunk)
		}
	}
	i := len(s.arena)
	s.arena = append(s.arena, src...)
	return s.arena[i:len(s.arena):len(s.arena)]
}

// MakeCut constructs a cut of root over the given sorted leaves, computing
// its truth table and volume by cone evaluation. The leaf set must be a
// valid cut of root (every PI-to-root path passes through a leaf).
func (e *Enumerator) MakeCut(root uint32, leaves []uint32) Cut {
	f, vol := e.scratch().coneTT(root, leaves)
	return Cut{
		Leaves: append([]uint32(nil), leaves...),
		Sig:    leafSig(leaves),
		TT:     f,
		Volume: vol,
	}
}

// coneTT symbolically evaluates the function of n over the cut leaves
// (variable i = leaves[i]) and counts the AND nodes covered.
func (s *scratch) coneTT(n uint32, leaves []uint32) (tt.TT, int32) {
	s.epoch++
	if s.epoch == 0 { // wrapped: stale visited stamps become valid
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	s.vol = 0
	return s.coneEval(n, leaves), s.vol
}

func (s *scratch) coneEval(m uint32, leaves []uint32) tt.TT {
	for i, l := range leaves {
		if l == m {
			return tt.Var(i)
		}
	}
	if s.visited[m] == s.epoch {
		return s.val[m]
	}
	if !s.g.IsAnd(m) {
		// Only reachable if the leaf set is not a cut; the enumerator
		// never constructs such sets, so this is an internal error.
		panic("cuts: cone evaluation escaped the cut leaves")
	}
	s.vol++
	f0, f1 := s.g.Fanins(m)
	v0 := s.coneEval(f0.Node(), leaves)
	if f0.IsCompl() {
		v0 = v0.Not()
	}
	v1 := s.coneEval(f1.Node(), leaves)
	if f1.IsCompl() {
		v1 = v1.Not()
	}
	v := v0.And(v1)
	s.visited[m] = s.epoch
	s.val[m] = v
	return v
}

// FilterDominated removes cuts whose leaf set is a superset of another
// cut's leaf set (the dominated cuts), preserving order. Callers that know
// the root should prefer FilterDominatedFor, which can skip the trivial-cut
// row.
func FilterDominated(cs []Cut) []Cut {
	return filterDominated(^uint32(0), cs)
}

// FilterDominatedFor is FilterDominated with the root known: the trivial cut
// {root} is skipped as a dominator (no enumerated cut of root contains root
// as a leaf, so it can never dominate anything).
func FilterDominatedFor(root uint32, cs []Cut) []Cut {
	return filterDominated(root, cs)
}

// filterDominated decides every dominance relation against the pristine
// input before compacting. The compaction loop must not start while
// comparisons are still running: compacting in place shifts kept cuts into
// slots the inner loop has yet to read, so a later iteration — including
// one observed concurrently by a streaming consumer — could compare against
// a transiently reordered list. Order is preserved, so a list canonical
// under SortByLeaves stays canonical.
func filterDominated(root uint32, cs []Cut) []Cut {
	n := len(cs)
	if n < 2 {
		return cs
	}
	var stack [4]uint64
	var drop []uint64
	if n <= 256 {
		drop = stack[:]
	} else {
		drop = make([]uint64, (n+63)/64)
	}
	for i := range cs {
		ci := &cs[i]
		for j := range cs {
			if i == j {
				continue
			}
			cj := &cs[j]
			// Cheap rejections before the O(len) leaf walk: a longer list
			// can never be a subset, and any leaf bit missing from ci's
			// Bloom signature proves non-subset. The trivial cut dominates
			// nothing.
			if len(cj.Leaves) > len(ci.Leaves) || cj.Sig&^ci.Sig != 0 || cj.IsTrivial(root) {
				continue
			}
			if subsetOf(cj, ci) {
				// Equal leaf sets: keep the earlier one.
				if len(cj.Leaves) == len(ci.Leaves) && j > i {
					continue
				}
				drop[i>>6] |= 1 << (uint(i) & 63)
				break
			}
		}
	}
	out := cs[:0]
	for i := range cs {
		if drop[i>>6]&(1<<(uint(i)&63)) == 0 {
			out = append(out, cs[i])
		}
	}
	return out
}

// Features computes the nine structural cut features of paper §IV-A:
// root-inverted flag, leaf count, volume, min/max/sum leaf level and
// min/max/sum leaf fanout.
func (c *Cut) Features(g *aig.AIG, root uint32) [9]float64 {
	var f [9]float64
	if g.HasInvertedFanout(root) {
		f[0] = 1
	}
	f[1] = float64(len(c.Leaves))
	f[2] = float64(c.Volume)
	minLvl, maxLvl, sumLvl := int32(1<<30), int32(-1), int32(0)
	minFO, maxFO, sumFO := int32(1<<30), int32(-1), int32(0)
	for _, l := range c.Leaves {
		lv := g.Level(l)
		fo := g.Fanout(l)
		if lv < minLvl {
			minLvl = lv
		}
		if lv > maxLvl {
			maxLvl = lv
		}
		sumLvl += lv
		if fo < minFO {
			minFO = fo
		}
		if fo > maxFO {
			maxFO = fo
		}
		sumFO += fo
	}
	f[3] = float64(minLvl)
	f[4] = float64(maxLvl)
	f[5] = float64(sumLvl)
	f[6] = float64(minFO)
	f[7] = float64(maxFO)
	f[8] = float64(sumFO)
	return f
}

// FeatureNames labels the entries of Features for reports and the
// permutation-importance experiment.
var FeatureNames = [9]string{
	"rootInverted", "numLeaves", "volume",
	"minLeafLevel", "maxLeafLevel", "sumLeafLevel",
	"minLeafFanout", "maxLeafFanout", "sumLeafFanout",
}

// SortByLeaves orders cuts by ascending leaf count, breaking ties by larger
// volume (more logic absorbed) then lexicographic leaves — the vanilla ABC
// ordering the paper describes. The full tie-break chain makes the ordering
// (and therefore mapping results) independent of the input permutation.
func SortByLeaves(cs []Cut) {
	sort.SliceStable(cs, func(i, j int) bool {
		a, b := &cs[i], &cs[j]
		if len(a.Leaves) != len(b.Leaves) {
			return len(a.Leaves) < len(b.Leaves)
		}
		if a.Volume != b.Volume {
			return a.Volume > b.Volume
		}
		for k := range a.Leaves {
			if a.Leaves[k] != b.Leaves[k] {
				return a.Leaves[k] < b.Leaves[k]
			}
		}
		return false
	})
}

// String renders the cut for debugging.
func (c *Cut) String() string {
	return fmt.Sprintf("cut%v vol=%d tt=%08x", c.Leaves, c.Volume, uint32(c.TT))
}
