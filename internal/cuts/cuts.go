// Package cuts implements k-feasible cut enumeration over AIGs with the
// priority-cuts scheme: each node keeps a bounded, policy-ordered list of
// cuts, and the merge step (Eq. 1 of the paper) works on the already-pruned
// fanin lists. The cut sorting/filtering policy is therefore the lever that
// shapes the whole mapping search space — exactly the lever SLAP replaces
// with a learned model.
package cuts

import (
	"fmt"
	"math/bits"
	"sort"

	"slap/internal/aig"
	"slap/internal/tt"
)

// K is the cut leaf limit used throughout the paper (5-input cuts, matching
// the standard-cell matching width).
const K = 5

// Cut is a k-feasible cut: a set of leaves, the function of the root in
// terms of those leaves, and structural attributes.
type Cut struct {
	// Leaves are the cut leaf node ids in ascending order.
	Leaves []uint32
	// Sig is a 64-bit Bloom signature of the leaf set, used for fast
	// dominance rejection.
	Sig uint64
	// TT is the root function over the leaves (variable i = Leaves[i]).
	TT tt.TT
	// Volume is the number of AND nodes covered by the cut (root included,
	// leaves excluded).
	Volume int32
}

// IsTrivial reports whether the cut is the trivial cut {n} of its root.
func (c *Cut) IsTrivial(root uint32) bool {
	return len(c.Leaves) == 1 && c.Leaves[0] == root
}

func leafSig(leaves []uint32) uint64 {
	var s uint64
	for _, l := range leaves {
		s |= 1 << (l % 64)
	}
	return s
}

// subsetOf reports whether a's leaves are a subset of b's.
func subsetOf(a, b *Cut) bool {
	if len(a.Leaves) > len(b.Leaves) || a.Sig&^b.Sig != 0 {
		return false
	}
	i, j := 0, 0
	for i < len(a.Leaves) && j < len(b.Leaves) {
		switch {
		case a.Leaves[i] == b.Leaves[j]:
			i++
			j++
		case a.Leaves[i] > b.Leaves[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a.Leaves)
}

// mergeLeaves unions two sorted leaf lists, failing when the union exceeds K.
func mergeLeaves(a, b []uint32) ([]uint32, bool) {
	out := make([]uint32, 0, K)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v uint32
		switch {
		case i == len(a):
			v = b[j]
			j++
		case j == len(b):
			v = a[i]
			i++
		case a[i] == b[j]:
			v = a[i]
			i++
			j++
		case a[i] < b[j]:
			v = a[i]
			i++
		default:
			v = b[j]
			j++
		}
		if len(out) == K {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

// expandTT re-expresses a cut function given over the variable ordering
// `from` in the ordering `to` (from must be a subsequence of to).
func expandTT(f tt.TT, from, to []uint32) tt.TT {
	var perm [tt.MaxVars]uint8
	used := uint8(0)
	j := 0
	for i, leaf := range from {
		for to[j] != leaf {
			j++
		}
		perm[i] = uint8(j)
		used |= 1 << uint(j)
	}
	// Fill the remaining permutation slots with unused positions.
	next := 0
	for i := len(from); i < tt.MaxVars; i++ {
		for used&(1<<uint(next)) != 0 {
			next++
		}
		perm[i] = uint8(next)
		used |= 1 << uint(next)
	}
	return f.Permute(perm)
}

// Policy orders and prunes the candidate cut list of one node. The returned
// slice is what downstream merging and Boolean matching will see.
type Policy interface {
	// Process may reorder, filter and truncate cs. It must keep the trivial
	// cut reachable for mapping (the enumerator re-appends it if dropped).
	Process(g *aig.AIG, n uint32, cs []Cut) []Cut
	// Name identifies the policy in reports.
	Name() string
}

// Result holds the outcome of cut enumeration.
type Result struct {
	// Sets[n] is the cut list of node n (nil for PIs/constant except for
	// their trivial cut).
	Sets [][]Cut
	// TotalCuts is the number of cuts exposed to the mapper, the paper's
	// "Cuts Used" memory-footprint metric.
	TotalCuts int
}

// Enumerator computes k-feasible cuts for every node of an AIG under a
// given priority policy.
type Enumerator struct {
	G *aig.AIG
	// Policy orders/prunes each node's cut list; nil means keep everything
	// (exhaustive enumeration subject only to MergeCap).
	Policy Policy
	// MergeCap bounds the per-node list length before the policy runs, to
	// keep exhaustive enumeration tractable on large designs. Zero means
	// DefaultMergeCap.
	MergeCap int

	// DFS scratch state for cone evaluation (epoch-stamped visited set,
	// reused across cuts to avoid per-cut allocation).
	visited []uint32
	val     []tt.TT
	epoch   uint32
}

// DefaultMergeCap bounds per-node cut lists during enumeration.
const DefaultMergeCap = 2000

// Run enumerates cuts for all nodes in topological order.
func (e *Enumerator) Run() *Result {
	g := e.G
	capN := e.MergeCap
	if capN == 0 {
		capN = DefaultMergeCap
	}
	res := &Result{Sets: make([][]Cut, g.NumNodes())}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsPI(n) {
			res.Sets[n] = []Cut{trivialCut(n)}
			continue
		}
		if !g.IsAnd(n) {
			continue
		}
		f0, f1 := g.Fanins(n)
		cs := e.mergeNode(n, f0, f1, res.Sets[f0.Node()], res.Sets[f1.Node()], capN)
		if e.Policy != nil {
			cs = e.Policy.Process(g, n, cs)
		}
		cs = ensureTrivial(n, cs)
		res.Sets[n] = cs
	}
	for n := uint32(1); n < uint32(g.NumNodes()); n++ {
		if g.IsAnd(n) {
			res.TotalCuts += len(res.Sets[n])
		}
	}
	return res
}

func trivialCut(n uint32) Cut {
	return Cut{
		Leaves: []uint32{n},
		Sig:    leafSig([]uint32{n}),
		TT:     tt.Var(0),
		Volume: 0,
	}
}

func ensureTrivial(n uint32, cs []Cut) []Cut {
	for i := range cs {
		if cs[i].IsTrivial(n) {
			return cs
		}
	}
	return append(cs, trivialCut(n))
}

// mergeNode computes the cut set of AND node n from its fanin cut sets.
func (e *Enumerator) mergeNode(n uint32, f0, f1 aig.Lit, cs0, cs1 []Cut, capN int) []Cut {
	seen := make(map[string]bool, len(cs0)*2)
	var out []Cut
	keyBuf := make([]byte, 0, K*4)
	key := func(leaves []uint32) string {
		keyBuf = keyBuf[:0]
		for _, l := range leaves {
			keyBuf = append(keyBuf, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
		}
		return string(keyBuf)
	}
	for i := range cs0 {
		for j := range cs1 {
			u, v := &cs0[i], &cs1[j]
			if bits.OnesCount64(u.Sig|v.Sig) > K {
				continue // cannot be k-feasible
			}
			leaves, ok := mergeLeaves(u.Leaves, v.Leaves)
			if !ok {
				continue
			}
			k := key(leaves)
			if seen[k] {
				continue
			}
			seen[k] = true
			// The truth table is computed by symbolic cone evaluation rather
			// than by composing the fanin cut functions: when a leaf of one
			// fanin cut is the other fanin node itself, composition would
			// wrongly substitute that leaf's own function for the free leaf
			// variable. Cone evaluation also yields the volume in the same
			// traversal.
			f, vol := e.coneTT(n, leaves)
			out = append(out, Cut{
				Leaves: leaves,
				Sig:    leafSig(leaves),
				TT:     f,
				Volume: vol,
			})
			if len(out) >= capN {
				return out
			}
		}
	}
	return out
}

// MakeCut constructs a cut of root over the given sorted leaves, computing
// its truth table and volume by cone evaluation. The leaf set must be a
// valid cut of root (every PI-to-root path passes through a leaf).
func (e *Enumerator) MakeCut(root uint32, leaves []uint32) Cut {
	f, vol := e.coneTT(root, leaves)
	return Cut{
		Leaves: append([]uint32(nil), leaves...),
		Sig:    leafSig(leaves),
		TT:     f,
		Volume: vol,
	}
}

// coneTT symbolically evaluates the function of n over the cut leaves
// (variable i = leaves[i]) and counts the AND nodes covered. The visited
// array is epoch-stamped and reused across cuts to avoid allocation.
func (e *Enumerator) coneTT(n uint32, leaves []uint32) (tt.TT, int32) {
	if e.visited == nil {
		e.visited = make([]uint32, e.G.NumNodes())
		e.val = make([]tt.TT, e.G.NumNodes())
	}
	e.epoch++
	var vol int32
	var eval func(m uint32) tt.TT
	eval = func(m uint32) tt.TT {
		for i, l := range leaves {
			if l == m {
				return tt.Var(i)
			}
		}
		if e.visited[m] == e.epoch {
			return e.val[m]
		}
		if !e.G.IsAnd(m) {
			// Only reachable if the leaf set is not a cut; the enumerator
			// never constructs such sets, so this is an internal error.
			panic("cuts: cone evaluation escaped the cut leaves")
		}
		vol++
		f0, f1 := e.G.Fanins(m)
		v0 := eval(f0.Node())
		if f0.IsCompl() {
			v0 = v0.Not()
		}
		v1 := eval(f1.Node())
		if f1.IsCompl() {
			v1 = v1.Not()
		}
		v := v0.And(v1)
		e.visited[m] = e.epoch
		e.val[m] = v
		return v
	}
	return eval(n), vol
}

// FilterDominated removes cuts whose leaf set is a superset of another
// cut's leaf set (the dominated cuts), preserving order. The trivial cut of
// root dominates nothing and is kept.
func FilterDominated(cs []Cut) []Cut {
	out := cs[:0]
	for i := range cs {
		dominated := false
		for j := range cs {
			if i == j {
				continue
			}
			if subsetOf(&cs[j], &cs[i]) {
				// Equal leaf sets: keep the earlier one.
				if len(cs[j].Leaves) == len(cs[i].Leaves) && j > i {
					continue
				}
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, cs[i])
		}
	}
	return out
}

// Features computes the nine structural cut features of paper §IV-A:
// root-inverted flag, leaf count, volume, min/max/sum leaf level and
// min/max/sum leaf fanout.
func (c *Cut) Features(g *aig.AIG, root uint32) [9]float64 {
	var f [9]float64
	if g.HasInvertedFanout(root) {
		f[0] = 1
	}
	f[1] = float64(len(c.Leaves))
	f[2] = float64(c.Volume)
	minLvl, maxLvl, sumLvl := int32(1<<30), int32(-1), int32(0)
	minFO, maxFO, sumFO := int32(1<<30), int32(-1), int32(0)
	for _, l := range c.Leaves {
		lv := g.Level(l)
		fo := g.Fanout(l)
		if lv < minLvl {
			minLvl = lv
		}
		if lv > maxLvl {
			maxLvl = lv
		}
		sumLvl += lv
		if fo < minFO {
			minFO = fo
		}
		if fo > maxFO {
			maxFO = fo
		}
		sumFO += fo
	}
	f[3] = float64(minLvl)
	f[4] = float64(maxLvl)
	f[5] = float64(sumLvl)
	f[6] = float64(minFO)
	f[7] = float64(maxFO)
	f[8] = float64(sumFO)
	return f
}

// FeatureNames labels the entries of Features for reports and the
// permutation-importance experiment.
var FeatureNames = [9]string{
	"rootInverted", "numLeaves", "volume",
	"minLeafLevel", "maxLeafLevel", "sumLeafLevel",
	"minLeafFanout", "maxLeafFanout", "sumLeafFanout",
}

// SortByLeaves orders cuts by ascending leaf count, breaking ties by larger
// volume (more logic absorbed) then lexicographic leaves — the vanilla ABC
// ordering the paper describes.
func SortByLeaves(cs []Cut) {
	sort.SliceStable(cs, func(i, j int) bool {
		if len(cs[i].Leaves) != len(cs[j].Leaves) {
			return len(cs[i].Leaves) < len(cs[j].Leaves)
		}
		return cs[i].Volume > cs[j].Volume
	})
}

// String renders the cut for debugging.
func (c *Cut) String() string {
	return fmt.Sprintf("cut%v vol=%d tt=%08x", c.Leaves, c.Volume, uint32(c.TT))
}
