package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/genjob"
)

// Dataset-generation jobs run server-side so a multi-hour sweep survives
// client disconnects: POST /v1/jobs/dataset answers 202 immediately and
// the job keeps running under the scheduler's worker budget; GET
// /v1/jobs/{id} polls progress. Shard files and the manifest persist
// under Config.JobsDir, so even a server crash loses at most the shards
// in flight (the directory resumes offline with internal/genjob).

// DatasetJobRequest is the JSON body of POST /v1/jobs/dataset.
type DatasetJobRequest struct {
	// Circuits names built-in training designs (rc16, cla16); empty means
	// both, the paper's training set.
	Circuits []string `json:"circuits"`
	// MapsPerCircuit is the number of random-shuffle mappings per circuit.
	MapsPerCircuit int `json:"maps_per_circuit"`
	// Shards is the requested shard count (0 = one per circuit).
	Shards int `json:"shards"`
	// Seed is the master seed; the merged dataset is byte-identical to a
	// single-process dataset.Generate with it.
	Seed int64 `json:"seed"`
	// Classes, ShuffleLimit and Metric mirror dataset.Config.
	Classes      int    `json:"classes"`
	ShuffleLimit int    `json:"shuffle_limit"`
	Metric       string `json:"metric"`
	// Workers is the shard-pool width; the scheduler clamps it to the
	// global budget (0 = whole budget).
	Workers int `json:"workers"`
	// MaxAttempts, FailureBudget and MaxMapFailures are the fault knobs
	// (see genjob.Config and dataset.Config.MaxFailures).
	MaxAttempts    int `json:"max_attempts"`
	FailureBudget  int `json:"failure_budget"`
	MaxMapFailures int `json:"max_map_failures"`
}

// DatasetJobStatus is the JSON answer of GET /v1/jobs/{id}.
type DatasetJobStatus struct {
	ID        string  `json:"id"`
	State     string  `json:"state"` // queued, running, done, failed, canceled
	CreatedAt string  `json:"created_at"`
	ElapsedS  float64 `json:"elapsed_s"`
	Workers   int     `json:"workers,omitempty"`

	ShardsTotal   int   `json:"shards_total,omitempty"`
	ShardsDone    int   `json:"shards_done"`
	Retries       int   `json:"retries"`
	CorruptShards int   `json:"corrupt_shards"`
	FailedShards  []int `json:"failed_shards,omitempty"`
	FailureBudget int   `json:"failure_budget"`

	Samples     int    `json:"samples,omitempty"`
	SkippedMaps int    `json:"skipped_maps,omitempty"`
	OutDir      string `json:"out_dir,omitempty"`
	DatasetFile string `json:"dataset_file,omitempty"`
	Error       string `json:"error,omitempty"`
}

// datasetJob is one server-side generation job.
type datasetJob struct {
	id      string
	created time.Time
	budget  int
	workers int
	outDir  string
	cancel  context.CancelFunc

	mu          sync.Mutex
	gcTimer     *time.Timer
	state       string
	started     time.Time
	finished    time.Time
	shardsTotal int
	shardsDone  int
	retries     int
	corrupt     int
	failed      []int
	samples     int
	skipped     int
	datasetFile string
	errMsg      string
}

func (j *datasetJob) status() DatasetJobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	elapsed := time.Since(j.started).Seconds()
	if j.state == "queued" {
		elapsed = time.Since(j.created).Seconds()
	} else if !j.finished.IsZero() {
		elapsed = j.finished.Sub(j.started).Seconds()
	}
	return DatasetJobStatus{
		ID:            j.id,
		State:         j.state,
		CreatedAt:     j.created.UTC().Format(time.RFC3339),
		ElapsedS:      elapsed,
		Workers:       j.workers,
		ShardsTotal:   j.shardsTotal,
		ShardsDone:    j.shardsDone,
		Retries:       j.retries,
		CorruptShards: j.corrupt,
		FailedShards:  append([]int(nil), j.failed...),
		FailureBudget: j.budget,
		Samples:       j.samples,
		SkippedMaps:   j.skipped,
		OutDir:        j.outDir,
		DatasetFile:   j.datasetFile,
		Error:         j.errMsg,
	}
}

// budgetExceeded reports whether the job failed because more shards
// failed permanently than its budget allowed — the condition /healthz
// flags as degraded.
func (j *datasetJob) budgetExceeded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == "failed" && len(j.failed) > j.budget
}

// terminal reports whether the job has finished (done, failed or canceled)
// — the states in which its directory may be garbage-collected.
func (j *datasetJob) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == "done" || j.state == "failed" || j.state == "canceled"
}

// scheduleJobGC arms the retention timer once a job reaches a terminal
// state, after which the job record and its on-disk shard directory are
// removed. Negative retention keeps finished jobs forever.
func (s *Server) scheduleJobGC(job *datasetJob) {
	retention := s.cfg.JobRetention
	if retention < 0 {
		return
	}
	if retention == 0 {
		retention = DefaultJobRetention
	}
	t := time.AfterFunc(retention, func() { s.removeJob(job) })
	job.mu.Lock()
	job.gcTimer = t
	job.mu.Unlock()
}

// removeJob deletes a terminal job: the registry entry goes first so no new
// status reads resolve it, then the shard directory. Running jobs are left
// untouched. Reports whether the job was removed.
func (s *Server) removeJob(job *datasetJob) bool {
	if !job.terminal() {
		return false
	}
	s.jobs.Delete(job.id)
	job.mu.Lock()
	if job.gcTimer != nil {
		job.gcTimer.Stop()
		job.gcTimer = nil
	}
	job.mu.Unlock()
	os.RemoveAll(job.outDir)
	return true
}

// builtinCircuit resolves a named training design.
func builtinCircuit(name string) (*aig.AIG, error) {
	switch name {
	case "rc16":
		return circuits.TrainRC16(), nil
	case "cla16":
		return circuits.TrainCLA16(), nil
	default:
		return nil, fmt.Errorf("unknown circuit %q (want rc16 or cla16)", name)
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<16)
	var req DatasetJobRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON request: %w", err))
		return
	}
	if req.MapsPerCircuit <= 0 {
		writeError(w, http.StatusBadRequest, errors.New("maps_per_circuit must be positive"))
		return
	}
	dcfg, err := s.datasetSweepConfig(req.Circuits, req.MapsPerCircuit, req.Classes, req.Seed, req.ShuffleLimit, req.Metric, req.MaxMapFailures)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dcfg.Workers = 0 // local shard pool decides (genjob defaults it to 1)

	id := fmt.Sprintf("job-%04d", s.jobsSeq.Add(1))
	outDir := filepath.Join(s.cfg.JobsDir, id)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("creating job directory: %w", err))
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	job := &datasetJob{
		id:      id,
		created: time.Now(),
		budget:  req.FailureBudget,
		workers: req.Workers,
		outDir:  outDir,
		cancel:  cancel,
		state:   "queued",
	}
	s.jobs.Store(id, job)

	gcfg := genjob.Config{
		Dataset:       dcfg,
		OutDir:        outDir,
		Shards:        req.Shards,
		MaxAttempts:   req.MaxAttempts,
		FailureBudget: req.FailureBudget,
	}
	go s.runDatasetJob(ctx, job, gcfg)

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         id,
		"status_url": "/v1/jobs/" + id,
	})
}

// runDatasetJob executes one job under the global worker budget. It owns
// the job's state transitions; everything inside genjob.Run is already
// panic-isolated per shard, and the outer recover keeps even a runner bug
// from taking the server down.
func (s *Server) runDatasetJob(ctx context.Context, job *datasetJob, gcfg genjob.Config) {
	// Registered first so it runs last: the retention clock starts only
	// after the job has settled into its terminal state (including the
	// panic path below).
	defer s.scheduleJobGC(job)
	defer job.cancel()
	defer func() {
		if p := recover(); p != nil {
			s.metrics.AddPanic()
			job.mu.Lock()
			job.state, job.errMsg, job.finished = "failed", fmt.Sprintf("job panicked: %v", p), time.Now()
			job.mu.Unlock()
		}
	}()

	// Borrow worker tokens for the job's whole lifetime: corpus sweeps
	// compete with interactive mappings under the same budget, so N
	// concurrent shards can never oversubscribe the machine.
	granted, release, err := s.sched.Acquire(ctx, job.workers)
	if err != nil {
		job.mu.Lock()
		job.state, job.errMsg, job.started, job.finished = "failed", err.Error(), time.Now(), time.Now()
		job.mu.Unlock()
		return
	}
	defer release()

	gcfg.Workers = granted
	gcfg.Progress = func(e genjob.Event) {
		job.mu.Lock()
		defer job.mu.Unlock()
		switch e.Kind {
		case "plan":
			job.shardsTotal = e.Shard
		case "reuse", "done":
			job.shardsDone++
		case "retry":
			job.retries++
		case "corrupt":
			job.corrupt++
			job.shardsDone-- // it will be re-run
		}
	}

	job.mu.Lock()
	job.state, job.started, job.workers = "running", time.Now(), granted
	job.mu.Unlock()

	ds, rep, err := genjob.Run(ctx, gcfg)

	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	if rep != nil {
		job.shardsTotal = rep.Shards
		job.retries = rep.Retries
		job.corrupt = rep.Corrupt
		job.failed = rep.FailedShards
		job.skipped = rep.SkippedMaps
	}
	switch {
	case errors.Is(err, context.Canceled):
		job.state, job.errMsg = "canceled", "canceled by client"
	case err != nil:
		job.state, job.errMsg = "failed", err.Error()
	default:
		job.samples = ds.Len()
		file := filepath.Join(job.outDir, "dataset.gob")
		if werr := ds.SaveFile(file); werr != nil {
			job.state, job.errMsg = "failed", fmt.Sprintf("saving merged dataset: %v", werr)
			return
		}
		job.datasetFile = file
		job.state = "done"
	}
}

func (s *Server) jobByID(w http.ResponseWriter, r *http.Request) (*datasetJob, bool) {
	id := r.PathValue("id")
	v, ok := s.jobs.Load(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return nil, false
	}
	return v.(*datasetJob), true
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.status())
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	var out []DatasetJobStatus
	s.jobs.Range(func(_, v any) bool {
		out = append(out, v.(*datasetJob).status())
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// handleJobCancel serves DELETE /v1/jobs/{id}: a running (or queued) job is
// canceled and keeps its directory until it settles and retention expires; a
// terminal job is removed immediately, shard directory included.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobByID(w, r)
	if !ok {
		return
	}
	if s.removeJob(job) {
		writeJSON(w, http.StatusOK, map[string]any{
			"id":      job.id,
			"deleted": true,
		})
		return
	}
	job.cancel()
	writeJSON(w, http.StatusOK, job.status())
}
