package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"slap/internal/aig"
	"slap/internal/circuits"
	"slap/internal/dataset"
	"slap/internal/library"
)

// TestPanicRecoveryMiddleware is the bulkhead regression test: a handler
// that panics mid-mapping must answer 500, count into panics_total, and —
// critically — release its scheduler tokens so the inflight budget stays
// honest for subsequent requests.
func TestPanicRecoveryMiddleware(t *testing.T) {
	srv, ts := newTestServer(t, Config{WorkerBudget: 2})
	srv.faultHook = func(endpoint string) {
		panic("injected fault in " + endpoint)
	}

	for _, ep := range []string{"/v1/map?policy=default", "/v1/classify?model=toy"} {
		resp, data := postRaw(t, ts.URL+ep, rc16Text(t))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("%s with panicking worker: status %d, want 500 (%s)", ep, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), "panic") {
			t.Errorf("%s error body does not mention the panic: %s", ep, data)
		}
	}
	if got := srv.Metrics().Panics(); got < 2 {
		t.Errorf("panics_total = %d, want >= 2", got)
	}
	if got := srv.Scheduler().InFlight(); got != 0 {
		t.Fatalf("inflight workers = %d after panics, want 0 (token leak)", got)
	}

	// The budget really is intact: with the fault cleared, a full-width
	// mapping still gets tokens and succeeds.
	srv.faultHook = nil
	resp, data := postRaw(t, ts.URL+"/v1/map?policy=default&workers=2", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mapping after recovered panics: status %d (%s)", resp.StatusCode, data)
	}
}

// getJSON fetches url and decodes the JSON body into out (nil skips
// decoding); it returns the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode
}

// TestDatasetJobOverHTTP submits a sharded sweep, polls its status from
// several goroutines while the shard workers run (the -race coverage the
// job API promises), and checks the merged dataset is byte-identical to a
// single-process dataset.Generate with the same seed.
func TestDatasetJobOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{WorkerBudget: 4, JobsDir: t.TempDir()})

	resp, data := postJSON(t, ts.URL+"/v1/jobs/dataset", map[string]any{
		"circuits":         []string{"rc16", "cla16"},
		"maps_per_circuit": 6,
		"shards":           4,
		"seed":             7,
		"workers":          2,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202 (%s)", resp.StatusCode, data)
	}
	var sub struct {
		ID        string `json:"id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit answer: %s", data)
	}

	// Concurrent pollers race the shard workers on the job's state.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var st DatasetJobStatus
				if code := getJSON(t, ts.URL+sub.StatusURL, &st); code != http.StatusOK {
					t.Errorf("poll: status %d", code)
					return
				}
				var list struct {
					Jobs []DatasetJobStatus `json:"jobs"`
				}
				getJSON(t, ts.URL+"/v1/jobs", &list)
				time.Sleep(time.Millisecond)
			}
		}()
	}

	var final DatasetJobStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, ts.URL+sub.StatusURL, &final)
		if final.State == "done" || final.State == "failed" || final.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", final)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if final.State != "done" {
		t.Fatalf("job state %q, error %q", final.State, final.Error)
	}
	if final.ShardsDone != final.ShardsTotal || final.ShardsTotal != 4 {
		t.Errorf("shards done %d / total %d, want 4/4", final.ShardsDone, final.ShardsTotal)
	}

	got, err := dataset.LoadFile(final.DatasetFile)
	if err != nil {
		t.Fatalf("loading job dataset: %v", err)
	}
	want, err := dataset.Generate(dataset.Config{
		Circuits:       []*aig.AIG{circuits.TrainRC16(), circuits.TrainCLA16()},
		Library:        library.ASAP7ish(),
		MapsPerCircuit: 6,
		Seed:           7,
		Workers:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("job dataset differs from single-process Generate with the same seed")
	}

	// Unknown job id answers 404.
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
}

// TestHealthzDegraded injects a registry hot-load failure and checks that
// /healthz keeps answering 200 but flags the condition, and that the
// slap_degraded gauge goes nonzero.
func TestHealthzDegraded(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var healthy struct {
		Status string `json:"status"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &healthy); code != http.StatusOK || healthy.Status != "ok" {
		t.Fatalf("pre-fault healthz: code %d status %q", code, healthy.Status)
	}

	// A bad artifact path fails the hot-load; the registry keeps serving
	// its existing entries but the operator should see the failure.
	resp, _ := postJSON(t, ts.URL+"/v1/registry/models", map[string]any{"path": "/nonexistent/broken.gob"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad hot-add: status %d, want 400", resp.StatusCode)
	}

	var h struct {
		Status   string   `json:"status"`
		Degraded []string `json:"degraded"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("degraded healthz must still answer 200, got %d", code)
	}
	if h.Status != "degraded" || len(h.Degraded) == 0 {
		t.Errorf("healthz after load failure: status %q degraded %v", h.Status, h.Degraded)
	}
	if !strings.Contains(strings.Join(h.Degraded, " "), "broken.gob") {
		t.Errorf("degraded reason does not name the artifact: %v", h.Degraded)
	}

	respM, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(respM.Body)
	respM.Body.Close()
	if v := metricsGauge(t, string(data), "slap_degraded"); v < 1 {
		t.Errorf("slap_degraded = %v, want >= 1", v)
	}

	// Mapping still works while degraded.
	respOK, body := postRaw(t, ts.URL+"/v1/map?policy=default", rc16Text(t))
	if respOK.StatusCode != http.StatusOK {
		t.Errorf("map while degraded: status %d (%s)", respOK.StatusCode, body)
	}
}

// TestJobSubmitValidation covers the request-validation edges of the job
// endpoint.
func TestJobSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{JobsDir: t.TempDir()})
	cases := []struct {
		name string
		body map[string]any
	}{
		{"missing maps", map[string]any{"circuits": []string{"rc16"}}},
		{"unknown circuit", map[string]any{"maps_per_circuit": 2, "circuits": []string{"zzz"}}},
		{"unknown metric", map[string]any{"maps_per_circuit": 2, "metric": "zzz"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, ts.URL+"/v1/jobs/dataset", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%s)", resp.StatusCode, data)
			}
		})
	}
}

// submitTinyJob submits a minimal dataset job and waits for it to finish.
func submitTinyJob(t *testing.T, ts *httptest.Server) DatasetJobStatus {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/jobs/dataset", map[string]any{
		"circuits":         []string{"rc16"},
		"maps_per_circuit": 2,
		"shards":           2,
		"seed":             3,
		"workers":          1,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", resp.StatusCode, data)
	}
	var sub struct {
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	var st DatasetJobStatus
	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, ts.URL+sub.StatusURL, &st)
		if st.State == "done" || st.State == "failed" || st.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != "done" {
		t.Fatalf("job state %q, error %q", st.State, st.Error)
	}
	return st
}

// TestJobDeleteRemovesDirectory checks DELETE on a finished job removes both
// the registry entry and the on-disk shard directory immediately.
func TestJobDeleteRemovesDirectory(t *testing.T) {
	// Negative retention: only the explicit DELETE may remove anything.
	_, ts := newTestServer(t, Config{WorkerBudget: 2, JobsDir: t.TempDir(), JobRetention: -1})
	st := submitTinyJob(t, ts)
	if _, err := os.Stat(st.OutDir); err != nil {
		t.Fatalf("job directory missing before delete: %v", err)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var del struct {
		Deleted bool `json:"deleted"`
	}
	if err := json.Unmarshal(data, &del); err != nil || resp.StatusCode != http.StatusOK || !del.Deleted {
		t.Fatalf("delete answered %d %s, want 200 with deleted:true", resp.StatusCode, data)
	}
	if _, err := os.Stat(st.OutDir); !os.IsNotExist(err) {
		t.Errorf("job directory still present after delete: %v", err)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, nil); code != http.StatusNotFound {
		t.Errorf("deleted job still resolves: status %d, want 404", code)
	}
}

// TestJobRetentionGC checks a finished job is garbage-collected — registry
// entry and shard directory — once the configured retention expires, with no
// client involvement.
func TestJobRetentionGC(t *testing.T) {
	_, ts := newTestServer(t, Config{WorkerBudget: 2, JobsDir: t.TempDir(), JobRetention: 50 * time.Millisecond})
	st := submitTinyJob(t, ts)

	deadline := time.Now().Add(10 * time.Second)
	for {
		code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID, nil)
		_, statErr := os.Stat(st.OutDir)
		if code == http.StatusNotFound && os.IsNotExist(statErr) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not collected after retention: status %d, dir err %v", code, statErr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
