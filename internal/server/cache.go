package server

import (
	"context"
	"fmt"
	"math/rand"

	"slap/internal/aig"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapcache"
	"slap/internal/mapper"
	"slap/internal/nn"
)

// asicServed is how the asic mapping path answered one request: the result
// plus how it was obtained, for the response envelope and metrics.
type asicServed struct {
	res *mapper.Result
	// verified mirrors the cache entry's equivalence bit; false means the
	// handler must run (or re-run) the check itself when the client asked.
	verified bool
	// cached reports an exact-key hit or a shared singleflight result.
	cached bool
	// eco reports that a miss was served by delta-remapping; dirty is the
	// fraction of AND nodes re-processed.
	eco   bool
	dirty float64
}

// cachedMapASIC serves an asic mapping through the result cache: an exact
// content-address hit skips mapping entirely, concurrent identical
// submissions collapse into one run, and — with cfg.ECO — a miss first
// tries to delta-remap against the nearest cached relative. Every fresh
// result is cached with its ECO snapshot so edit chains keep remapping
// incrementally.
func (s *Server) cachedMapASIC(ctx context.Context, req *MapRequest, g *aig.AIG, lib *library.Library, model *nn.Model, workers int, policy string, cutPolicy cuts.Policy, streaming bool) (*asicServed, error) {
	if policy == "slap" {
		sl := core.New(model, lib)
		sl.Workers = workers
		sl.Batch = s.batcherFor(model)
		sl.Rounds = req.Rounds
		sl.DelayFactor = req.DelayFactor
		sl.Choices = req.Choices
		sl.ChoiceOpts = s.cfg.ChoiceOptions
		sl.Views = s.views
		if streaming {
			sl.Pool = s.pool
		}
		var verify func(*mapper.Result) bool
		if req.Verify {
			verify = func(r *mapper.Result) bool {
				return r.Netlist.EquivalentTo(g, 8, rand.New(rand.NewSource(99))) == nil
			}
		}
		res, out, err := sl.MapCached(ctx, g, s.cache, core.CachedOptions{
			Streaming: streaming,
			ECO:       s.cfg.ECO,
			Verify:    verify,
		})
		if err != nil {
			return nil, err
		}
		if out.ECO {
			s.metrics.ObserveDirtyFraction(out.DirtyFraction)
		}
		return &asicServed{
			res:      res,
			verified: out.Verified,
			cached:   out.Hit || out.Shared,
			eco:      out.ECO,
			dirty:    out.DirtyFraction,
		}, nil
	}

	// Non-slap policies cache at the mapper level. The signature pins every
	// option that shapes the result; scheduling knobs (workers, streaming)
	// stay out because they cannot change the output bytes.
	limit := req.Limit
	seed := int64(0)
	switch policy {
	case "unlimited":
		limit = 0
	case "shuffle":
		seed = req.Seed
	}
	rounds := req.Rounds
	if rounds < 1 {
		rounds = 1
	}
	df := req.DelayFactor
	if df < 1 {
		df = 1
	}
	// The choice-options content signature joins the key when choices are
	// on: two server configs that build different views must never share a
	// cached mapping result.
	cSig := "off"
	if req.Choices {
		cSig = s.cfg.ChoiceOptions.Sig()
	}
	sig := fmt.Sprintf("asic/policy=%s/limit=%d/seed=%d/lib=%s@%p/rounds=%d/df=%g/choices=%s",
		policy, limit, seed, lib.Name, lib, rounds, df, cSig)
	key := mapcache.KeyOf(g, sig)
	// ECO snapshots and delta remapping are defined for the single-round,
	// no-choice flow only; multi-round configurations still get exact-key
	// caching and singleflight, their entries just carry no snapshot.
	simple := rounds <= 1 && !req.Choices
	mg, ch, err := s.requestChoiceView(ctx, g, req.Choices)
	if err != nil {
		return nil, err
	}
	opt := mapper.Options{
		Library: lib, Policy: cutPolicy, Workers: workers,
		Rounds: req.Rounds, DelayFactor: req.DelayFactor, Choices: ch,
	}
	verify := func(r *mapper.Result) bool {
		return r.Netlist.EquivalentTo(g, 8, rand.New(rand.NewSource(99))) == nil
	}

	served := &asicServed{}
	e, shared, err := s.cache.Do(key, func() (*mapcache.Entry, error) {
		// Leader path: the lookup happens inside the flight so a result
		// added between a miss and the flight acquisition is still found.
		if e, ok := s.cache.Get(key); ok {
			served.cached = true
			return e, nil
		}
		if s.cfg.ECO && simple {
			if e, ok := s.tryMapperDelta(g, sig, key, opt, req.Verify, verify, served); ok {
				return e, nil
			}
		}
		var snap *mapper.Snapshot
		if simple {
			snap = mapper.NewSnapshot(g, opt) // nil for non-ECO-eligible policies (shuffle)
		}
		capOpt := opt
		if snap != nil {
			capOpt.CaptureCuts = snap.Capture
		}
		var res *mapper.Result
		var err error
		if streaming {
			capOpt.Pool = s.pool
			res, err = mapper.MapStream(mg, capOpt)
		} else {
			res, err = mapper.Map(mg, capOpt)
		}
		if err != nil {
			return nil, err
		}
		e := &mapcache.Entry{Key: key, Sig: sig, Result: res}
		if snap != nil {
			e.Snap = snap
		}
		if req.Verify {
			e.Verified = verify(res)
		}
		s.cache.Add(e)
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	served.res = e.Result
	served.verified = e.Verified
	served.cached = served.cached || shared
	return served, nil
}

// tryMapperDelta attempts the mapper-level ECO path: find the nearest
// cached relative by cone-hash overlap and delta-remap against its
// snapshot. Any ineligibility falls back to a cold map. Delta results are
// cached without a snapshot of their own; later edits keep aligning
// against the original baseline entry, which Nearest still finds.
func (s *Server) tryMapperDelta(g *aig.AIG, sig string, key mapcache.Key, opt mapper.Options, wantVerify bool, verify func(*mapper.Result) bool, served *asicServed) (*mapcache.Entry, bool) {
	near := s.cache.Nearest(sig, g.ConeHashes())
	if near == nil {
		return nil, false
	}
	snap, ok := near.Snap.(*mapper.Snapshot)
	if !ok {
		return nil, false
	}
	res, st, err := mapper.MapDelta(g, opt, snap)
	if err != nil {
		return nil, false
	}
	s.cache.RecordECOHit()
	s.metrics.ObserveDirtyFraction(st.DirtyFraction)
	served.eco = true
	served.dirty = st.DirtyFraction
	e := &mapcache.Entry{Key: key, Sig: sig, Result: res}
	if wantVerify {
		e.Verified = verify(res)
	}
	s.cache.Add(e)
	return e, true
}
