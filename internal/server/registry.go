// Package server wraps the SLAP flow behind a long-running HTTP service:
// a model/library registry that deserialises artifacts once and shares
// them read-only across requests, a request scheduler that clamps
// per-request worker counts to a global budget, and JSON endpoints for
// mapping, cut classification, health and metrics.
//
// Concurrency model (DESIGN.md §8): each request decodes its own aig.AIG
// and runs its own cut enumerator and mapper state, so requests share
// nothing mutable except the registry entries — nn.Model is read-only at
// inference time and library.Library locks its match memo internally.
package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"slap/internal/library"
	"slap/internal/nn"
)

// DefaultLibrary is the registry name of the built-in ASAP7-flavoured
// library, preloaded by NewRegistry and used when a request names none.
const DefaultLibrary = "asap7ish"

// ModelInfo describes one registry model for listings.
type ModelInfo struct {
	Name     string    `json:"name"`
	Params   int       `json:"params"`
	Classes  int       `json:"classes"`
	Source   string    `json:"source"`
	LoadedAt time.Time `json:"loaded_at"`
}

// LibraryInfo describes one registry library for listings.
type LibraryInfo struct {
	Name     string    `json:"name"`
	Gates    int       `json:"gates"`
	Source   string    `json:"source"`
	LoadedAt time.Time `json:"loaded_at"`
}

// Registry holds the named models and libraries of a mapping service.
// Artifacts are deserialised once (at startup or on hot-add) and then
// shared read-only by every request; entries are never mutated in place.
type Registry struct {
	mu     sync.RWMutex
	models map[string]modelEntry
	libs   map[string]libEntry

	// Hot-load failure bookkeeping: a rejected artifact never corrupts the
	// registry (the old entries keep serving), but the operator should see
	// it — /healthz reports degraded while failures stand.
	loadFailures int64
	lastLoadErr  string
}

type modelEntry struct {
	model *nn.Model
	info  ModelInfo
}

type libEntry struct {
	lib  *library.Library
	info LibraryInfo
}

// NewRegistry returns a registry preloaded with the built-in asap7ish
// library.
func NewRegistry() *Registry {
	r := &Registry{
		models: make(map[string]modelEntry),
		libs:   make(map[string]libEntry),
	}
	lib := library.ASAP7ish()
	r.libs[DefaultLibrary] = libEntry{lib: lib, info: LibraryInfo{
		Name: DefaultLibrary, Gates: len(lib.Gates), Source: "builtin",
	}}
	return r
}

// nameFromPath derives a registry name from an artifact path: the base name
// without its extension.
func nameFromPath(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}

// AddModel registers a loaded model under name. Duplicate names are
// rejected: entries are immutable so cached *nn.Model pointers held by
// in-flight requests stay valid.
func (r *Registry) AddModel(name string, m *nn.Model, source string) error {
	if name == "" {
		return fmt.Errorf("server: model name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.models[name]; ok {
		return fmt.Errorf("server: model %q already registered", name)
	}
	r.models[name] = modelEntry{model: m, info: ModelInfo{
		Name: name, Params: m.NumParams(), Classes: m.Classes,
		Source: source, LoadedAt: time.Now(),
	}}
	return nil
}

// AddModelFile loads a gob model from path and registers it; an empty name
// uses the file's base name without extension.
func (r *Registry) AddModelFile(name, path string) error {
	if name == "" {
		name = nameFromPath(path)
	}
	m, err := nn.LoadFile(path)
	if err != nil {
		return err
	}
	return r.AddModel(name, m, path)
}

// AddLibrary registers a loaded library under name.
func (r *Registry) AddLibrary(name string, l *library.Library, source string) error {
	if name == "" {
		return fmt.Errorf("server: library name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.libs[name]; ok {
		return fmt.Errorf("server: library %q already registered", name)
	}
	r.libs[name] = libEntry{lib: l, info: LibraryInfo{
		Name: name, Gates: len(l.Gates), Source: source, LoadedAt: time.Now(),
	}}
	return nil
}

// AddLibraryFile parses a genlib-like library file and registers it; an
// empty name uses the file's base name without extension.
func (r *Registry) AddLibraryFile(name, path string) error {
	if name == "" {
		name = nameFromPath(path)
	}
	l, err := library.LoadFile(path)
	if err != nil {
		return err
	}
	return r.AddLibrary(name, l, path)
}

// RecordLoadFailure notes a failed artifact hot-load for health reporting.
func (r *Registry) RecordLoadFailure(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.loadFailures++
	r.lastLoadErr = err.Error()
}

// LoadFailures returns the count of failed artifact hot-loads and the most
// recent failure message.
func (r *Registry) LoadFailures() (int64, string) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.loadFailures, r.lastLoadErr
}

// Model returns the named model, or an error listing the available names.
func (r *Registry) Model(name string) (*nn.Model, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.models[name]; ok {
		return e.model, nil
	}
	return nil, fmt.Errorf("server: unknown model %q (available: %s)", name, joinKeys(r.models))
}

// Library returns the named library; an empty name selects DefaultLibrary.
func (r *Registry) Library(name string) (*library.Library, error) {
	if name == "" {
		name = DefaultLibrary
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.libs[name]; ok {
		return e.lib, nil
	}
	return nil, fmt.Errorf("server: unknown library %q (available: %s)", name, joinKeys(r.libs))
}

// Models lists registered models sorted by name.
func (r *Registry) Models() []ModelInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ModelInfo, 0, len(r.models))
	for _, e := range r.models {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Libraries lists registered libraries sorted by name.
func (r *Registry) Libraries() []LibraryInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]LibraryInfo, 0, len(r.libs))
	for _, e := range r.libs {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func joinKeys[V any](m map[string]V) string {
	if len(m) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
