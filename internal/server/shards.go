package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"slap/internal/aig"
	"slap/internal/dataset"
	"slap/internal/genjob"
)

// Remote shard execution: a fleet coordinator splits a dataset sweep with
// genjob.Plan and POSTs each shard here. The worker executes the mapping
// range locally and answers with the framed, checksummed shard bytes —
// exactly what a local run would persist — so the coordinator can verify,
// journal and merge them with the stock genjob machinery, byte-identical
// to a single-process sweep.

// ShardExecRequest is the JSON body of POST /v1/shards/execute. The sweep
// fields mirror DatasetJobRequest; Shard/Circuit/Start/End address the one
// shard to execute. Fingerprint is the coordinator's canonical sweep
// fingerprint: the worker re-derives it from its own view of the sweep and
// refuses on mismatch, so version skew fails loudly instead of merging
// subtly different results.
type ShardExecRequest struct {
	Circuits       []string `json:"circuits"`
	MapsPerCircuit int      `json:"maps_per_circuit"`
	Classes        int      `json:"classes"`
	Seed           int64    `json:"seed"`
	ShuffleLimit   int      `json:"shuffle_limit"`
	Metric         string   `json:"metric"`
	MaxMapFailures int      `json:"max_map_failures"`
	Fingerprint    string   `json:"fingerprint"`

	Shard   int `json:"shard"`
	Circuit int `json:"circuit"`
	Start   int `json:"start"`
	End     int `json:"end"`

	// TimeoutMS bounds the execution (0 = server default).
	TimeoutMS int64 `json:"timeout_ms"`
}

// shardSHAHeader carries the payload SHA-256 of a returned shard frame, so
// callers can cross-check the frame they received against what the worker
// computed before even parsing it.
const shardSHAHeader = "X-Slap-Shard-SHA256"

// datasetSweepConfig resolves the shared sweep fields of dataset-shaped
// requests (builtin circuits, metric, default library) into a
// dataset.Config. Returned un-normalized; callers Normalize.
func (s *Server) datasetSweepConfig(circuitNames []string, maps, classes int, seed int64, limit int, metricName string, maxMapFailures int) (dataset.Config, error) {
	names := circuitNames
	if len(names) == 0 {
		names = []string{"rc16", "cla16"}
	}
	var graphs []*aig.AIG
	for _, n := range names {
		g, err := builtinCircuit(n)
		if err != nil {
			return dataset.Config{}, err
		}
		graphs = append(graphs, g)
	}
	var metric dataset.Metric
	switch metricName {
	case "", "delay":
		metric = dataset.MetricDelay
	case "area":
		metric = dataset.MetricArea
	case "adp":
		metric = dataset.MetricADP
	default:
		return dataset.Config{}, fmt.Errorf("unknown metric %q (want delay, area or adp)", metricName)
	}
	lib, err := s.reg.Library("")
	if err != nil {
		return dataset.Config{}, err
	}
	return dataset.Config{
		Circuits:       graphs,
		Library:        lib,
		MapsPerCircuit: maps,
		Classes:        classes,
		Seed:           seed,
		ShuffleLimit:   limit,
		Metric:         metric,
		MaxFailures:    maxMapFailures,
		// One mapping at a time: fleet-level shard fan-out supplies the
		// parallelism, same as the local shard pool (see genjob).
		Workers: 1,
	}, nil
}

func (s *Server) handleShardExecute(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, 1<<16)
	var req ShardExecRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON request: %w", err))
		return
	}
	if req.MapsPerCircuit <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("maps_per_circuit must be positive"))
		return
	}
	dcfg, err := s.datasetSweepConfig(req.Circuits, req.MapsPerCircuit, req.Classes, req.Seed, req.ShuffleLimit, req.Metric, req.MaxMapFailures)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dcfg, err = dcfg.Normalize()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dcfg.Workers = 1
	if fp := genjob.Fingerprint(dcfg); req.Fingerprint != "" && req.Fingerprint != fp {
		writeError(w, http.StatusConflict,
			fmt.Errorf("sweep fingerprint mismatch: coordinator %s, worker %s (version skew?)", short(req.Fingerprint), short(fp)))
		return
	}
	sp := genjob.Spec{Shard: req.Shard, Circuit: req.Circuit, Start: req.Start, End: req.End}
	if sp.Circuit < 0 || sp.Circuit >= len(dcfg.Circuits) || sp.Start < 0 || sp.End > req.MapsPerCircuit || sp.Start >= sp.End {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid shard spec %+v", sp))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancel()

	// Shard execution borrows one worker token: remote sweeps compete with
	// interactive mappings under the same budget, exactly like local jobs.
	_, release, err := s.sched.Acquire(ctx, 1)
	if err != nil {
		writeError(w, schedStatus(err), err)
		return
	}
	defer release()
	if s.faultHook != nil {
		s.faultHook("/v1/shards/execute")
	}

	framed, sha, err := genjob.ExecuteShardBytes(ctx, dcfg, sp)
	if err != nil {
		writeError(w, schedStatus(err), err)
		return
	}
	s.stampWorker(w)
	w.Header().Set(shardSHAHeader, sha)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(framed)))
	w.Write(framed)
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
