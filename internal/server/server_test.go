package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slap/internal/circuits"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/library"
	"slap/internal/mapper"
)

// rc16Text returns the checked-in 16-bit ripple-carry adder AIGER source —
// the same artifact the CI smoke job curls at a live server.
func rc16Text(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("testdata/rc16.aag")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// newTestServer builds a server whose registry holds asap7ish plus a tiny
// deterministic model named "toy".
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		reg := NewRegistry()
		if err := reg.AddModel("toy", tinyModel(7), "test"); err != nil {
			t.Fatal(err)
		}
		cfg.Registry = reg
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestMapEndpointMatchesCLI is the acceptance parity check: mapping the
// 16-bit adder over POST /v1/map must produce exactly the area/delay the
// slap CLI flow computes on the same model/library, for both the vanilla
// default policy and the ML slap policy.
func TestMapEndpointMatchesCLI(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	g := circuits.TrainRC16()
	lib := library.ASAP7ish()

	t.Run("default", func(t *testing.T) {
		want, err := mapper.Map(g, mapper.Options{Library: lib, Policy: cuts.DefaultPolicy{}})
		if err != nil {
			t.Fatal(err)
		}
		resp, data := postJSON(t, ts.URL+"/v1/map", map[string]any{
			"circuit": rc16Text(t), "policy": "default",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var got MapResponse
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Area != want.Area || got.Delay != want.Delay {
			t.Errorf("server mapped area=%v delay=%v, CLI flow area=%v delay=%v",
				got.Area, got.Delay, want.Area, want.Delay)
		}
		if got.Cells != want.Netlist.NumCells() {
			t.Errorf("server cells=%d, CLI flow cells=%d", got.Cells, want.Netlist.NumCells())
		}
	})

	t.Run("slap", func(t *testing.T) {
		model, err := srv.Registry().Model("toy")
		if err != nil {
			t.Fatal(err)
		}
		sl := core.New(model, lib)
		want, err := sl.Map(g)
		if err != nil {
			t.Fatal(err)
		}
		resp, data := postJSON(t, ts.URL+"/v1/map", map[string]any{
			"circuit": rc16Text(t), "policy": "slap", "model": "toy",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var got MapResponse
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got.Area != want.Area || got.Delay != want.Delay {
			t.Errorf("server slap-mapped area=%v delay=%v, CLI flow area=%v delay=%v",
				got.Area, got.Delay, want.Area, want.Delay)
		}
		if got.Policy != "slap" {
			t.Errorf("policy = %q, want slap", got.Policy)
		}
	})
}

func TestMapRawBodyWithQueryParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postRaw(t, ts.URL+"/v1/map?policy=unlimited&verify=1&netlist=blif", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got MapResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Area <= 0 || got.Delay <= 0 {
		t.Errorf("implausible QoR: %+v", got)
	}
	if !got.Verified {
		t.Error("verify=1 did not run the equivalence check")
	}
	if got.NetlistFormat != "blif" || !strings.Contains(got.Netlist, ".model") {
		t.Errorf("netlist payload missing or wrong format: %q...", truncateStr(got.Netlist, 40))
	}
}

func TestMapLUTTarget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postRaw(t, ts.URL+"/v1/map?policy=default&target=lut", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got MapResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.LUTs <= 0 || got.Depth <= 0 {
		t.Errorf("implausible LUT mapping: %+v", got)
	}
}

// TestMapMultiRound drives the new /v1/map knobs end to end: a 4-round
// choices request (JSON and query-param forms, both targets, slap and
// default policies) answers per-round QoR, verifies against the submitted
// circuit, and the run lands in the slap_map_rounds / area-gain metrics.
func TestMapMultiRound(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for _, tc := range []struct {
		name string
		req  map[string]any
	}{
		{"asic-default", map[string]any{"policy": "default", "rounds": 4, "choices": true, "verify": true}},
		{"asic-slap", map[string]any{"policy": "slap", "model": "toy", "rounds": 4, "delay_factor": 1.1, "choices": true, "verify": true}},
		{"lut-slap", map[string]any{"policy": "slap", "model": "toy", "target": "lut", "rounds": 4, "choices": true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.req["circuit"] = rc16Text(t)
			resp, data := postJSON(t, ts.URL+"/v1/map", tc.req)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, data)
			}
			var got MapResponse
			if err := json.Unmarshal(data, &got); err != nil {
				t.Fatal(err)
			}
			if got.RoundsRun != 4 || len(got.RoundStats) != 4 {
				t.Fatalf("missing per-round QoR: rounds_run=%d stats=%d", got.RoundsRun, len(got.RoundStats))
			}
			for i, st := range got.RoundStats {
				if st.Round != i+1 || st.Mode == "" {
					t.Fatalf("round stat %d malformed: %+v", i, st)
				}
			}
			if tc.req["verify"] == true && !got.Verified {
				t.Error("verify did not run against the submitted circuit")
			}
		})
	}

	// Query-param form of the same knobs.
	resp, data := postRaw(t, ts.URL+"/v1/map?policy=default&rounds=3&delay_factor=1.2&choices=true", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query form: status %d: %s", resp.StatusCode, data)
	}
	var got MapResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.RoundsRun != 3 {
		t.Fatalf("query form ran %d rounds, want 3", got.RoundsRun)
	}

	// The runs must show up in the new metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mdata, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(mdata)
	for _, want := range []string{"slap_map_rounds_bucket", "slap_map_rounds_count", "slap_map_round_area_gain_count"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if strings.Contains(text, "slap_map_rounds_count 0\n") {
		t.Error("slap_map_rounds histogram recorded nothing")
	}
	if strings.Contains(text, "slap_map_round_area_gain_count 0\n") {
		t.Error("area-gain histogram recorded nothing despite multi-round runs")
	}
}

func TestMapRequestLifecycleErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	t.Run("oversized body", func(t *testing.T) {
		_, small := newTestServer(t, Config{MaxBodyBytes: 1024})
		big := strings.Repeat("x", 4096)
		resp, _ := postRaw(t, small.URL+"/v1/map", big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 413", resp.StatusCode)
		}
		// A JSON envelope over the limit is rejected the same way.
		resp, _ = postJSON(t, small.URL+"/v1/map", map[string]any{"circuit": big})
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("json status %d, want 413", resp.StatusCode)
		}
	})

	t.Run("malformed AIGER", func(t *testing.T) {
		resp, data := postRaw(t, ts.URL+"/v1/map", "aag 3 not a real header\n")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, "aig") {
			t.Errorf("parse error not surfaced: %s", data)
		}
	})

	t.Run("undetectable format", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL+"/v1/map", "garbage body\n")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("empty body", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL+"/v1/map", "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("unknown model", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL+"/v1/map?policy=slap&model=zzz", rc16Text(t))
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("slap without model", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL+"/v1/map?policy=slap", rc16Text(t))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})

	t.Run("unknown library", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL+"/v1/map?library=zzz", rc16Text(t))
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("status %d, want 404", resp.StatusCode)
		}
	})

	t.Run("unknown policy", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL+"/v1/map?policy=zzz", rc16Text(t))
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("status %d, want 500", resp.StatusCode)
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/map")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/map status %d, want 405", resp.StatusCode)
		}
	})
}

// TestMapTimeout maps a circuit large enough that a 1 ms deadline expires
// mid-flight and checks the request answers 504.
func TestMapTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	if err := circuits.ArrayMultiplier(8).WriteAAG(&buf); err != nil {
		t.Fatal(err)
	}
	resp, data := postRaw(t, ts.URL+"/v1/map?policy=unlimited&timeout_ms=1", buf.String())
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, data)
	}
}

// TestGracefulShutdown starts a real http.Server, fires a mapping, and
// shuts down while it is in flight: the mapping must complete with 200.
func TestGracefulShutdown(t *testing.T) {
	s := New(Config{})
	// Wrap the handler to signal when the mapping request has actually
	// entered — sleeping instead races the listener close under -race.
	entered := make(chan struct{})
	var once sync.Once
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/map" {
			once.Do(func() { close(entered) })
		}
		s.Handler().ServeHTTP(w, r)
	})
	hs := httptest.NewServer(h)
	// httptest.Server.Close blocks until outstanding requests finish — the
	// same drain semantics as http.Server.Shutdown on SIGTERM.
	type result struct {
		status int
		body   []byte
	}
	done := make(chan result, 1)
	body := rc16Text(t)
	go func() {
		resp, err := http.Post(hs.URL+"/v1/map?policy=default", "text/plain", strings.NewReader(body))
		if err != nil {
			done <- result{status: -1, body: []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		done <- result{status: resp.StatusCode, body: data}
	}()
	<-entered
	hs.Close()
	s.Close()
	r := <-done
	if r.status != http.StatusOK {
		t.Fatalf("in-flight mapping during shutdown: status %d, body %s", r.status, r.body)
	}
	var got MapResponse
	if err := json.Unmarshal(r.body, &got); err != nil || got.Area <= 0 {
		t.Errorf("in-flight mapping returned bad payload: %s", r.body)
	}
}

func TestClassifyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postRaw(t, ts.URL+"/v1/classify?model=toy&detail=1", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got ClassifyResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	g := circuits.TrainRC16()
	if got.Nodes != g.NumAnds() {
		t.Errorf("classified %d nodes, graph has %d AND nodes", got.Nodes, g.NumAnds())
	}
	sum := 0
	for _, c := range got.Histogram {
		sum += c
	}
	if sum != got.Cuts || sum == 0 {
		t.Errorf("histogram sums to %d, cuts = %d", sum, got.Cuts)
	}
	detailSum := 0
	for _, n := range got.Detail {
		detailSum += len(n.Classes)
	}
	if detailSum != got.Cuts {
		t.Errorf("detail lists %d cut classes, want %d", detailSum, got.Cuts)
	}

	t.Run("requires model", func(t *testing.T) {
		resp, _ := postRaw(t, ts.URL+"/v1/classify", rc16Text(t))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})
}

func TestHealthzAndRegistryEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Errorf("healthz: status %d body %s", resp.StatusCode, data)
	}

	resp, err = http.Get(ts.URL + "/v1/registry")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(data), "toy") || !strings.Contains(string(data), DefaultLibrary) {
		t.Errorf("registry listing: status %d body %s", resp.StatusCode, data)
	}
}

// TestRegistryHotAdd saves a model to disk, hot-adds it over HTTP, and maps
// with it — the MapTune-style multi-configuration serving flow.
func TestRegistryHotAdd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	path := t.TempDir() + "/hot.gob"
	if err := tinyModel(11).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/registry/models", map[string]any{"path": path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hot-add: status %d body %s", resp.StatusCode, data)
	}
	resp, data = postRaw(t, ts.URL+"/v1/map?policy=slap&model=hot", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map with hot-added model: status %d body %s", resp.StatusCode, data)
	}
	// Duplicate hot-add conflicts.
	resp, _ = postJSON(t, ts.URL+"/v1/registry/models", map[string]any{"path": path})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate hot-add: status %d, want 409", resp.StatusCode)
	}
	// Query-param form (the README curl one-liner) works too.
	resp, data = postRaw(t, ts.URL+"/v1/registry/models?name=hot2&path="+path, "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "hot2") {
		t.Errorf("query-param hot-add: status %d body %s", resp.StatusCode, data)
	}
	// Bad path surfaces the filename.
	resp, data = postJSON(t, ts.URL+"/v1/registry/models", map[string]any{"path": "/nonexistent/m.gob"})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "m.gob") {
		t.Errorf("bad-path hot-add: status %d body %s", resp.StatusCode, data)
	}
}

// metricsGauge extracts one gauge value from Prometheus exposition text.
func metricsGauge(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err != nil {
				t.Fatalf("bad %s line %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

// TestStressMixedEndpoints is the acceptance stress test: ≥8 concurrent
// mixed-endpoint requests against a 2-token budget, run under -race in CI.
// The worker budget is observed via the /metrics inflight/queue gauges and
// via the scheduler gauges sampled concurrently.
func TestStressMixedEndpoints(t *testing.T) {
	const budget = 2
	srv, ts := newTestServer(t, Config{WorkerBudget: budget, QueueCap: 64})
	rc16 := rc16Text(t)

	var overBudget atomic.Int64
	stop := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if inflight := srv.Scheduler().InFlight(); inflight > budget {
				overBudget.Store(int64(inflight))
			}
			resp, err := http.Get(ts.URL + "/metrics")
			if err == nil {
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				text := string(data)
				if v := metricsGauge(t, text, "slap_inflight_workers"); v > budget {
					overBudget.Store(int64(v))
				}
				_ = metricsGauge(t, text, "slap_queue_depth")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	type job struct {
		name string
		run  func(i int) error
	}
	jobs := []job{
		{"map-default", func(i int) error {
			resp, data := postRaw(t, ts.URL+fmt.Sprintf("/v1/map?policy=default&workers=%d", 1+i%4), rc16)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("map-default: %d %s", resp.StatusCode, data)
			}
			return nil
		}},
		{"map-slap", func(i int) error {
			resp, data := postJSON(t, ts.URL+"/v1/map", map[string]any{
				"circuit": rc16, "policy": "slap", "model": "toy", "workers": 2,
			})
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("map-slap: %d %s", resp.StatusCode, data)
			}
			return nil
		}},
		{"classify", func(i int) error {
			resp, data := postRaw(t, ts.URL+"/v1/classify?model=toy&workers=3", rc16)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("classify: %d %s", resp.StatusCode, data)
			}
			return nil
		}},
		{"map-lut", func(i int) error {
			resp, data := postRaw(t, ts.URL+"/v1/map?policy=default&target=lut&workers=1", rc16)
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("map-lut: %d %s", resp.StatusCode, data)
			}
			return nil
		}},
		{"healthz", func(i int) error {
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				return err
			}
			resp.Body.Close()
			return nil
		}},
		{"registry", func(i int) error {
			resp, err := http.Get(ts.URL + "/v1/registry")
			if err != nil {
				return err
			}
			resp.Body.Close()
			return nil
		}},
	}

	const rounds = 2
	var wg sync.WaitGroup
	errs := make(chan error, rounds*len(jobs))
	for r := 0; r < rounds; r++ {
		for ji, j := range jobs {
			wg.Add(1)
			go func(r, ji int, j job) {
				defer wg.Done()
				if err := j.run(r*len(jobs) + ji); err != nil {
					errs <- err
				}
			}(r, ji, j)
		}
	}
	wg.Wait()
	close(stop)
	samplerWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if v := overBudget.Load(); v != 0 {
		t.Errorf("observed %d inflight workers, budget is %d", v, budget)
	}

	// After the storm: gauges back to idle, counters recorded the traffic.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	if v := metricsGauge(t, text, "slap_inflight_workers"); v != 0 {
		t.Errorf("slap_inflight_workers = %v after drain, want 0", v)
	}
	if v := metricsGauge(t, text, "slap_queue_depth"); v != 0 {
		t.Errorf("slap_queue_depth = %v after drain, want 0", v)
	}
	if v := metricsGauge(t, text, "slap_worker_budget"); v != budget {
		t.Errorf("slap_worker_budget = %v, want %d", v, budget)
	}
	if v := metricsGauge(t, text, "slap_cuts_considered_total"); v <= 0 {
		t.Errorf("slap_cuts_considered_total = %v, want > 0", v)
	}
	if !strings.Contains(text, `slap_requests_total{endpoint="/v1/map",code="200"}`) {
		t.Errorf("per-endpoint request counter missing from metrics:\n%s", text)
	}
}

func truncateStr(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// TestInferBatchMetricsExported drives classification and slap mapping with
// the default micro-batching enabled and checks the coalescer's flush
// telemetry reaches /metrics: batch-size histogram, queue-wait histogram and
// per-reason flush counters.
func TestInferBatchMetricsExported(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postRaw(t, ts.URL+"/v1/classify?model=toy", rc16Text(t))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("classify: status %d (%s)", resp.StatusCode, data)
			}
		}()
	}
	wg.Wait()
	resp, data := postRaw(t, ts.URL+"/v1/map?policy=slap&model=toy", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("map: status %d (%s)", resp.StatusCode, data)
	}

	respM, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(respM.Body)
	respM.Body.Close()
	text := string(body)

	for _, want := range []string{
		`slap_infer_batch_size_bucket{le="1"}`,
		`slap_infer_batch_size_bucket{le="+Inf"}`,
		`slap_infer_queue_wait_seconds_bucket{le="+Inf"}`,
		`slap_infer_flushes_total{reason="size"}`,
		`slap_infer_flushes_total{reason="deadline"}`,
		`slap_infer_flushes_total{reason="drain"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if v := metricsGauge(t, text, "slap_infer_batch_size_count"); v <= 0 {
		t.Errorf("slap_infer_batch_size_count = %v, want > 0 after batched inference", v)
	}
	if v := metricsGauge(t, text, "slap_infer_batch_size_sum"); v <= 0 {
		t.Errorf("slap_infer_batch_size_sum = %v, want > 0", v)
	}
}

// TestBatchingDisabled checks MaxBatch < 0 falls back to per-sample inference
// (no flushes recorded) while requests still succeed.
func TestBatchingDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: -1})
	resp, data := postRaw(t, ts.URL+"/v1/classify?model=toy", rc16Text(t))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classify: status %d (%s)", resp.StatusCode, data)
	}
	respM, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(respM.Body)
	respM.Body.Close()
	if v := metricsGauge(t, string(body), "slap_infer_batch_size_count"); v != 0 {
		t.Errorf("batching disabled but %v flushes recorded", v)
	}
}

// TestStreamingServerParity maps the same circuit through the default
// (streaming) server and a DisableStreaming one and requires identical
// mapping figures and netlist bytes — the HTTP-level view of the fused
// pipeline's byte-identity guarantee — then checks the arena pool and
// peak-cut telemetry on /metrics after repeated same-graph requests.
func TestStreamingServerParity(t *testing.T) {
	_, stream := newTestServer(t, Config{AdaptiveBatchWait: true})
	_, twoPhase := newTestServer(t, Config{DisableStreaming: true})
	body := map[string]any{
		"circuit": rc16Text(t), "policy": "default",
		"netlist": "blif", "verify": true,
	}

	var first MapResponse
	for i := 0; i < 3; i++ {
		resp, data := postJSON(t, stream.URL+"/v1/map", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("streaming map %d: status %d (%s)", i, resp.StatusCode, data)
		}
		var got MapResponse
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = got
			continue
		}
		if got.Area != first.Area || got.Delay != first.Delay || got.Netlist != first.Netlist {
			t.Fatalf("streaming map %d diverged from its own first run", i)
		}
	}
	if first.PeakCuts <= 0 {
		t.Errorf("streaming PeakCuts = %d, want > 0", first.PeakCuts)
	}
	if !first.Verified {
		t.Error("streaming mapping did not verify")
	}

	resp, data := postJSON(t, twoPhase.URL+"/v1/map", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("two-phase map: status %d (%s)", resp.StatusCode, data)
	}
	var ref MapResponse
	if err := json.Unmarshal(data, &ref); err != nil {
		t.Fatal(err)
	}
	if first.Area != ref.Area || first.Delay != ref.Delay || first.Cells != ref.Cells ||
		first.CutsConsidered != ref.CutsConsidered || first.MatchAttempts != ref.MatchAttempts ||
		first.Netlist != ref.Netlist {
		t.Errorf("streaming response diverged from two-phase: %+v vs %+v", first, ref)
	}
	if first.PeakCuts >= ref.PeakCuts {
		t.Errorf("streaming peak %d not below two-phase total %d", first.PeakCuts, ref.PeakCuts)
	}

	respM, err := http.Get(stream.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(respM.Body)
	respM.Body.Close()
	if v := metricsGauge(t, string(text), "slap_arena_misses_total"); v != 1 {
		t.Errorf("slap_arena_misses_total = %v, want 1 (one graph identity)", v)
	}
	if v := metricsGauge(t, string(text), "slap_arena_hits_total"); v < 2 {
		t.Errorf("slap_arena_hits_total = %v, want >= 2 after repeated same-graph maps", v)
	}
	if v := metricsGauge(t, string(text), "slap_arena_cached"); v < 1 {
		t.Errorf("slap_arena_cached = %v, want >= 1", v)
	}
	if v := metricsGauge(t, string(text), "slap_peak_live_cuts"); int(v) != first.PeakCuts {
		t.Errorf("slap_peak_live_cuts = %v, want %d", v, first.PeakCuts)
	}
	if !strings.Contains(string(text), "slap_infer_adaptive_wait_seconds") {
		t.Error("metrics missing slap_infer_adaptive_wait_seconds")
	}
}

// TestStreamingLUTAndSlapParity covers the remaining policy x target routes:
// the lut target and the ML slap policy must agree between the streaming and
// two-phase servers too.
func TestStreamingLUTAndSlapParity(t *testing.T) {
	srvA, stream := newTestServer(t, Config{})
	_, twoPhase := newTestServer(t, Config{DisableStreaming: true, Registry: srvA.Registry()})
	for _, body := range []map[string]any{
		{"circuit": rc16Text(t), "policy": "default", "target": "lut"},
		{"circuit": rc16Text(t), "policy": "shuffle", "seed": 5, "workers": 2},
		{"circuit": rc16Text(t), "policy": "slap", "model": "toy"},
		{"circuit": rc16Text(t), "policy": "slap", "model": "toy", "target": "lut"},
	} {
		resp, data := postJSON(t, stream.URL+"/v1/map", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("streaming %v: status %d (%s)", body["policy"], resp.StatusCode, data)
		}
		var got MapResponse
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		resp, data = postJSON(t, twoPhase.URL+"/v1/map", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("two-phase %v: status %d (%s)", body["policy"], resp.StatusCode, data)
		}
		var ref MapResponse
		if err := json.Unmarshal(data, &ref); err != nil {
			t.Fatal(err)
		}
		if got.Area != ref.Area || got.Delay != ref.Delay || got.LUTs != ref.LUTs ||
			got.Depth != ref.Depth || got.CutsConsidered != ref.CutsConsidered {
			t.Errorf("%v target=%v: streaming %+v diverged from two-phase %+v",
				body["policy"], body["target"], got, ref)
		}
	}
}
