package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math/rand"
	"mime"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slap/internal/aig"
	"slap/internal/choice"
	"slap/internal/core"
	"slap/internal/cuts"
	"slap/internal/infer"
	"slap/internal/library"
	"slap/internal/lutmap"
	"slap/internal/mapcache"
	"slap/internal/mapper"
	"slap/internal/nn"
)

// Config configures a mapping server.
type Config struct {
	// Registry supplies models and libraries; nil creates a fresh registry
	// holding only the built-in asap7ish library.
	Registry *Registry
	// WorkerBudget is the global worker-token budget (0 = GOMAXPROCS).
	WorkerBudget int
	// QueueCap bounds the scheduler wait queue (0 = DefaultQueueCap).
	QueueCap int
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// DefaultTimeout applies to requests that set no timeout_ms
	// (0 = DefaultRequestTimeout).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (0 = DefaultMaxTimeout).
	MaxTimeout time.Duration
	// JobsDir is where dataset-generation jobs persist their shard files
	// and manifests (0 = a "slap-jobs" directory under os.TempDir).
	JobsDir string
	// JobRetention is how long a finished dataset job (and its on-disk
	// shard directory) outlives completion before being garbage-collected
	// (0 = DefaultJobRetention, negative = keep forever).
	JobRetention time.Duration
	// MaxBatch is the inference coalescer's flush size: concurrent slap
	// mappings and classifications share batched forward passes through one
	// coalescer per model (0 = infer.DefaultMaxBatch, negative = disable
	// batching and run the per-sample path).
	MaxBatch int
	// BatchWait bounds how long a lone inference submission waits for
	// batch-mates before flushing anyway (0 = infer.DefaultMaxWait).
	BatchWait time.Duration
	// AdaptiveBatchWait derives each coalescer's flush deadline from the
	// observed arrival rate (EWMA), clamped to BatchWait; the current value
	// is exported on /metrics.
	AdaptiveBatchWait bool
	// DisableStreaming falls back to the two-phase enumerate-then-match
	// pipeline for every mapping instead of the fused streaming flow.
	DisableStreaming bool
	// ArenaCache is how many cut arenas the server caches across mapping
	// requests, keyed by graph identity, so repeated mappings of the same
	// design reuse cut storage instead of reallocating it
	// (0 = cuts.DefaultPoolArenas, negative = no caching).
	ArenaCache int
	// ResultCacheBytes is the byte budget of the content-addressed mapping
	// result cache: asic mappings are keyed by graph structure + names +
	// options, so exact resubmissions are answered in O(1) and concurrent
	// identical submissions collapse into one mapping (0 = disabled,
	// negative = mapcache.DefaultBudget).
	ResultCacheBytes int64
	// ECO, with a result cache enabled, serves cache misses by
	// delta-remapping against the nearest cached relative (by cone-hash
	// overlap) instead of a cold full map, re-processing only the dirty
	// cone while producing a byte-identical netlist.
	ECO bool
	// WorkerName identifies this node in a fleet: it is stamped on every
	// /v1/map and /v1/classify response (and the X-Slap-Worker header), so
	// clients and the coordinator can observe hash-affinity end to end.
	// Empty on single-node deployments.
	WorkerName string
	// ChoiceOptions tunes choice-view construction for choices=1 requests
	// (zero value = the choice package defaults). Its Workers field is a
	// scheduling knob; every other field changes the built view and is part
	// of the cache signature.
	ChoiceOptions choice.Options
	// ChoiceCacheBytes is the byte budget of the content-addressed choice
	// view cache: built views are keyed by graph structure + choice options
	// with singleflight dedup, so repeat choices=1 submissions skip view
	// construction (0 = choice.DefaultCacheBudget, negative = disabled).
	ChoiceCacheBytes int64
}

// Server defaults.
const (
	DefaultMaxBodyBytes   = 8 << 20
	DefaultRequestTimeout = 60 * time.Second
	DefaultMaxTimeout     = 5 * time.Minute
	DefaultJobRetention   = time.Hour
)

// Server is the long-running mapping service: registry + scheduler +
// metrics behind an http.Handler.
type Server struct {
	cfg     Config
	reg     *Registry
	sched   *Scheduler
	metrics *Metrics
	mux     *http.ServeMux
	start   time.Time

	jobs    sync.Map // job id -> *datasetJob
	jobsSeq atomic.Int64

	// pool caches cut arenas across mapping requests (nil when ArenaCache
	// is negative): a service re-mapping the same design — parameter
	// sweeps, policy comparisons — reuses all cut storage from the previous
	// run instead of reallocating it.
	pool *cuts.Pool

	// cache holds mapped results content-addressed by (graph, options), so
	// resubmissions skip mapping entirely and — with cfg.ECO — edited
	// designs delta-remap against their nearest cached relative. Nil when
	// ResultCacheBytes is zero.
	cache *mapcache.Cache

	// views caches built choice views content-addressed by (graph, choice
	// options) with singleflight dedup, so repeat choices=1 submissions —
	// which fleet hash-affinity routes to the same worker — skip view
	// construction entirely. Nil when ChoiceCacheBytes is negative.
	views *choice.Cache

	// classify collapses concurrent identical /v1/classify submissions
	// (same graph, same model) into one classification run.
	classify *mapcache.Flight[*core.Classification]

	// coalescers holds one inference coalescer per registry model
	// (*nn.Model -> *infer.Coalescer), created on first slap/classify use
	// so concurrent requests against the same model share forward passes.
	coalescers sync.Map

	// faultHook, when set (tests only), runs at the start of every mapping
	// worker so panic recovery and budget accounting can be exercised.
	faultHook func(endpoint string)
}

// New assembles a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = DefaultRequestTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.JobsDir == "" {
		cfg.JobsDir = filepath.Join(os.TempDir(), "slap-jobs")
	}
	s := &Server{
		cfg:   cfg,
		reg:   cfg.Registry,
		sched: NewScheduler(cfg.WorkerBudget, cfg.QueueCap),
		start: time.Now(),
	}
	if cfg.ArenaCache >= 0 {
		s.pool = cuts.NewPool(cfg.ArenaCache) // 0 = DefaultPoolArenas
	}
	if cfg.ResultCacheBytes != 0 {
		s.cache = mapcache.New(cfg.ResultCacheBytes) // negative = DefaultBudget
	}
	if cfg.ChoiceCacheBytes >= 0 {
		s.views = choice.NewCache(cfg.ChoiceCacheBytes) // 0 = DefaultCacheBudget
	}
	s.classify = mapcache.NewFlight[*core.Classification]()
	s.metrics = NewMetrics(s.sched)
	s.metrics.SetDegradedFunc(s.degradedReasons)
	if s.pool != nil {
		s.metrics.SetArenaStatsFunc(s.pool.Stats)
	}
	if s.cache != nil {
		s.metrics.SetMapCacheStatsFunc(s.cache.Stats)
	}
	if s.views != nil {
		s.metrics.SetChoiceCacheStatsFunc(s.views.Stats)
		s.views.OnBuild = s.metrics.ObserveChoiceBuild
	}
	s.metrics.SetBatchWaitFunc(s.maxBatchWait)

	mux := http.NewServeMux()
	mux.Handle("POST /v1/map", s.instrument("/v1/map", s.handleMap))
	mux.Handle("POST /v1/classify", s.instrument("/v1/classify", s.handleClassify))
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	mux.Handle("GET /v1/registry", s.instrument("/v1/registry", s.handleRegistryList))
	mux.Handle("POST /v1/registry/models", s.instrument("/v1/registry/models", s.handleRegistryAddModel))
	mux.Handle("POST /v1/registry/libraries", s.instrument("/v1/registry/libraries", s.handleRegistryAddLibrary))
	mux.Handle("POST /v1/jobs/dataset", s.instrument("/v1/jobs/dataset", s.handleJobSubmit))
	mux.Handle("POST /v1/shards/execute", s.instrument("/v1/shards/execute", s.handleShardExecute))
	mux.Handle("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobStatus))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobCancel))
	mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux = mux
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's registry (for startup preloading).
func (s *Server) Registry() *Registry { return s.reg }

// Scheduler exposes the worker scheduler (gauges, tests).
func (s *Server) Scheduler() *Scheduler { return s.sched }

// Metrics exposes the server's metrics (expvar publication, tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close begins draining: queued requests fail fast with 503 while granted
// worker tokens stay borrowed until their mappings finish, then the
// inference coalescers drain and stop. Call after http.Server.Shutdown has
// stopped accepting connections.
func (s *Server) Close() {
	s.sched.Close()
	s.coalescers.Range(func(_, v any) bool {
		v.(*infer.Coalescer).Close()
		return true
	})
}

// batcherFor returns the shared batched-inference hook for model, creating
// the engine + coalescer pair on first use. Returns an untyped nil when
// batching is disabled, so core sees Batch == nil and stays per-sample.
func (s *Server) batcherFor(model *nn.Model) core.Batcher {
	if s.cfg.MaxBatch < 0 {
		return nil
	}
	if v, ok := s.coalescers.Load(model); ok {
		return v.(*infer.Coalescer)
	}
	co := infer.NewCoalescer(infer.NewEngine(model, infer.Options{}), infer.CoalescerOptions{
		MaxBatch:     s.cfg.MaxBatch,
		MaxWait:      s.cfg.BatchWait,
		AdaptiveWait: s.cfg.AdaptiveBatchWait,
		Collector:    s.metrics,
	})
	if prev, loaded := s.coalescers.LoadOrStore(model, co); loaded {
		co.Close()
		return prev.(*infer.Coalescer)
	}
	return co
}

// maxBatchWait reports the largest currently-armed coalescer flush deadline
// in seconds — the /metrics view of the adaptive batch wait. Zero when no
// coalescer exists yet.
func (s *Server) maxBatchWait() float64 {
	var w time.Duration
	s.coalescers.Range(func(_, v any) bool {
		if cur := v.(*infer.Coalescer).CurrentWait(); cur > w {
			w = cur
		}
		return true
	})
	return w.Seconds()
}

// ---------------------------------------------------------------------------
// Request/response types

// MapRequest is the JSON envelope of POST /v1/map. When the request body is
// not JSON, the body is the circuit text itself and every other field is
// read from the URL query (same names).
type MapRequest struct {
	// Circuit is the AIGER or BLIF source text.
	Circuit string `json:"circuit"`
	// Format is the circuit format: aag, blif or auto (default auto).
	Format string `json:"format"`
	// Policy is the cut policy: default, unlimited, shuffle or slap.
	Policy string `json:"policy"`
	// Model names a registry model (required for policy slap and classify).
	Model string `json:"model"`
	// Library names a registry library (default asap7ish).
	Library string `json:"library"`
	// Target selects the backend: asic (standard cells, default) or lut.
	Target string `json:"target"`
	// Seed drives the shuffle policy.
	Seed int64 `json:"seed"`
	// Limit is the per-node cut budget of default/shuffle (0 = 250).
	Limit int `json:"limit"`
	// Workers requests a worker count; the scheduler clamps it to the
	// global budget (0 = whole budget).
	Workers int `json:"workers"`
	// TimeoutMS bounds the request (0 = server default).
	TimeoutMS int64 `json:"timeout_ms"`
	// Netlist selects an optional netlist payload: none, verilog or blif.
	Netlist string `json:"netlist"`
	// Verify re-simulates the mapped netlist against the subject graph.
	Verify bool `json:"verify"`
	// Detail requests per-node classes from /v1/classify.
	Detail bool `json:"detail"`
	// Rounds is the number of selection rounds: <= 1 keeps the classic
	// single-pass schedule, N > 1 runs the multi-round engine (round 1
	// delay/depth-optimal, then area-recovery rounds, exact-area last).
	Rounds int `json:"rounds"`
	// DelayFactor scales the round-1 delay into the recovery rounds'
	// required-time target; values <= 1 (including unset) pin the round-1
	// optimum.
	DelayFactor float64 `json:"delay_factor"`
	// Choices maps over a structural-choice view of the circuit, so
	// matching sees the union of each node's rewrite variants.
	Choices bool `json:"choices"`
}

// MapResponse is the JSON answer of POST /v1/map.
type MapResponse struct {
	Policy         string  `json:"policy"`
	Target         string  `json:"target"`
	Area           float64 `json:"area,omitempty"`
	Delay          float64 `json:"delay,omitempty"`
	ADP            float64 `json:"adp,omitempty"`
	Cells          int     `json:"cells,omitempty"`
	LUTs           int     `json:"luts,omitempty"`
	Depth          int32   `json:"depth,omitempty"`
	CutsConsidered int     `json:"cuts_considered"`
	PeakCuts       int     `json:"peak_cuts,omitempty"`
	MatchAttempts  int     `json:"match_attempts,omitempty"`
	Workers        int     `json:"workers"`
	QueueMS        float64 `json:"queue_ms"`
	ElapsedMS      float64 `json:"elapsed_ms"`
	Verified       bool    `json:"verified,omitempty"`
	Worker         string  `json:"worker,omitempty"`
	Cached         bool    `json:"cached,omitempty"`
	ECO            bool    `json:"eco,omitempty"`
	DirtyFraction  float64 `json:"dirty_fraction,omitempty"`
	Netlist        string  `json:"netlist,omitempty"`
	NetlistFormat  string  `json:"netlist_format,omitempty"`
	// RoundsRun and RoundStats report per-round QoR when the multi-round
	// engine ran; absent on classic single-pass mappings.
	RoundsRun  int        `json:"rounds_run,omitempty"`
	RoundStats []RoundQoR `json:"round_stats,omitempty"`
}

// RoundQoR is one round's QoR record in a multi-round mapping response.
// Area/Delay report the asic cover estimate, LUTs/Depth the lut cover.
type RoundQoR struct {
	Round          int     `json:"round"`
	Mode           string  `json:"mode"`
	Area           float64 `json:"area,omitempty"`
	Delay          float64 `json:"delay,omitempty"`
	LUTs           int     `json:"luts,omitempty"`
	Depth          int32   `json:"depth,omitempty"`
	CutsConsidered int     `json:"cuts_considered"`
	PeakCuts       int     `json:"peak_cuts,omitempty"`
}

// asicRounds converts mapper round stats into response records.
func asicRounds(stats []mapper.RoundStat) (int, []RoundQoR) {
	if len(stats) == 0 {
		return 0, nil
	}
	out := make([]RoundQoR, len(stats))
	for i, st := range stats {
		out[i] = RoundQoR{
			Round: st.Round, Mode: st.Mode,
			Area: st.EstArea, Delay: st.EstDelay,
			CutsConsidered: st.CutsConsidered, PeakCuts: st.PeakCuts,
		}
	}
	return len(stats), out
}

// lutRounds converts lutmap round stats into response records.
func lutRounds(stats []lutmap.RoundStat) (int, []RoundQoR) {
	if len(stats) == 0 {
		return 0, nil
	}
	out := make([]RoundQoR, len(stats))
	for i, st := range stats {
		out[i] = RoundQoR{
			Round: st.Round, Mode: st.Mode,
			LUTs: st.LUTs, Depth: st.Depth,
			CutsConsidered: st.CutsConsidered, PeakCuts: st.PeakCuts,
		}
	}
	return len(stats), out
}

// roundAreaGain is the relative area (asic) or LUT-count (lut) improvement
// of the final recovery round over the round-1 delay/depth cover.
func roundAreaGain(first, last RoundQoR) (float64, bool) {
	switch {
	case first.Area > 0:
		return (first.Area - last.Area) / first.Area, true
	case first.LUTs > 0:
		return float64(first.LUTs-last.LUTs) / float64(first.LUTs), true
	}
	return 0, false
}

// ClassifyResponse is the JSON answer of POST /v1/classify.
type ClassifyResponse struct {
	Model     string                `json:"model"`
	Nodes     int                   `json:"nodes"`
	Cuts      int                   `json:"cuts"`
	Histogram []int                 `json:"histogram"`
	Workers   int                   `json:"workers"`
	Worker    string                `json:"worker,omitempty"`
	Shared    bool                  `json:"shared,omitempty"`
	ElapsedMS float64               `json:"elapsed_ms"`
	Detail    []core.NodeCutClasses `json:"detail,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Instrumentation and helpers

type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// instrument records per-endpoint request counts and latencies, and is
// the panic bulkhead: a panicking handler answers 500 (when no bytes are
// out yet), bumps panics_total, and the connection — not the process —
// is the blast radius.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.AddPanic()
				if !sw.wrote {
					writeError(sw, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
				} else {
					sw.status = http.StatusInternalServerError
				}
			}
			s.metrics.Observe(endpoint, sw.status, time.Since(t0))
		}()
		h(sw, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// parseRequest reads the request envelope and decodes the circuit. The body
// is size-limited; oversized bodies yield 413, undecodable circuits 400.
func (s *Server) parseRequest(w http.ResponseWriter, r *http.Request) (*MapRequest, *aig.AIG, int, error) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	req := &MapRequest{}

	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		if err := json.NewDecoder(body).Decode(req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return nil, nil, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			}
			return nil, nil, http.StatusBadRequest, fmt.Errorf("decoding JSON request: %w", err)
		}
	} else {
		// Raw circuit body; options come from the URL query.
		raw, err := io.ReadAll(body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				return nil, nil, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)
			}
			return nil, nil, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err)
		}
		req.Circuit = string(raw)
		q := r.URL.Query()
		req.Format = q.Get("format")
		req.Policy = q.Get("policy")
		req.Model = q.Get("model")
		req.Library = q.Get("library")
		req.Target = q.Get("target")
		req.Netlist = q.Get("netlist")
		req.Seed = queryInt64(q.Get("seed"))
		req.Limit = int(queryInt64(q.Get("limit")))
		req.Workers = int(queryInt64(q.Get("workers")))
		req.TimeoutMS = queryInt64(q.Get("timeout_ms"))
		req.Verify = queryBool(q.Get("verify"))
		req.Detail = queryBool(q.Get("detail"))
		req.Rounds = int(queryInt64(q.Get("rounds")))
		req.DelayFactor = queryFloat(q.Get("delay_factor"))
		req.Choices = queryBool(q.Get("choices"))
	}
	if strings.TrimSpace(req.Circuit) == "" {
		return nil, nil, http.StatusBadRequest, fmt.Errorf("empty circuit: send AIGER/BLIF text as the body, or a JSON envelope with a \"circuit\" field")
	}
	g, err := aig.Decode(req.Format, strings.NewReader(req.Circuit))
	if err != nil {
		return nil, nil, http.StatusBadRequest, err
	}
	return req, g, http.StatusOK, nil
}

func queryInt64(s string) int64 {
	v, _ := strconv.ParseInt(s, 10, 64)
	return v
}

func queryBool(s string) bool {
	v, _ := strconv.ParseBool(s)
	return v
}

func queryFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// requestChoiceView resolves the graph a request maps over: the original,
// or — when the client asked for structural choices — a combined choice
// view whose equivalence classes the enumerator exposes to matching. The
// view shares the base PIs/POs, so verification and netlist emission still
// run against the client's circuit. Views are checked out of the server's
// content-addressed cache (built at most once per (graph, options) pair,
// concurrent identical requests share one build) under the configured
// choice options; construction honours ctx, so a dropped client or an
// expired deadline aborts an in-flight build instead of burning the full
// SAT budget.
func (s *Server) requestChoiceView(ctx context.Context, g *aig.AIG, choices bool) (*aig.AIG, cuts.ChoiceSource, error) {
	if !choices {
		return g, nil, nil
	}
	var v *choice.View
	var err error
	if s.views != nil {
		v, err = s.views.Checkout(ctx, g, s.cfg.ChoiceOptions)
	} else {
		v, err = choice.BuildContext(ctx, g, s.cfg.ChoiceOptions)
		if err == nil {
			s.metrics.ObserveChoiceBuild(v)
		}
	}
	if err != nil {
		return nil, nil, err
	}
	return v.G, v, nil
}

// timeoutFor clamps a client-requested timeout to the server's cap.
func (s *Server) timeoutFor(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 {
		d = s.cfg.DefaultTimeout
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// schedStatus maps scheduler/context errors to HTTP statuses.
func schedStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed), errors.Is(err, infer.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// ---------------------------------------------------------------------------
// Handlers

// degradedReasons lists why the service is degraded (empty = healthy):
// registry artifacts that failed to hot-load and dataset jobs that blew
// their failure budget. Degraded is not down — the service keeps
// answering 200 — but operators and probes see it flagged.
func (s *Server) degradedReasons() []string {
	var reasons []string
	if n, last := s.reg.LoadFailures(); n > 0 {
		reasons = append(reasons, fmt.Sprintf("registry: %d artifact load failure(s), last: %s", n, last))
	}
	s.jobs.Range(func(_, v any) bool {
		j := v.(*datasetJob)
		if j.budgetExceeded() {
			reasons = append(reasons, fmt.Sprintf("dataset job %s exceeded its failure budget", j.id))
		}
		return true
	})
	return reasons
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	reasons := s.degradedReasons()
	if len(reasons) > 0 {
		status = "degraded"
	}
	body := map[string]any{
		"status":    status,
		"degraded":  reasons,
		"uptime_s":  time.Since(s.start).Seconds(),
		"models":    len(s.reg.Models()),
		"libraries": len(s.reg.Libraries()),
		"budget":    s.sched.Budget(),
		"inflight":  s.sched.InFlight(),
		"queued":    s.sched.QueueDepth(),
	}
	if s.cfg.WorkerName != "" {
		body["worker"] = s.cfg.WorkerName
	}
	// Cache warmth, for fleet coordinators judging routing quality: how
	// many designs this node can re-map with a warm arena, and how many
	// mapped results (and ECO baselines) it holds.
	if s.pool != nil {
		ps := s.pool.Stats()
		body["arena_cached"] = ps.Cached
		body["arena_graphs"] = ps.Graphs
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		body["mapcache_entries"] = cs.Entries
		body["mapcache_snapshots"] = cs.Snapshots
		body["mapcache_bytes"] = cs.Bytes
	}
	if s.views != nil {
		vs := s.views.Stats()
		body["choice_views"] = vs.Views
		body["choice_view_bytes"] = vs.Bytes
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WritePrometheus(w)
}

func (s *Server) handleRegistryList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"models":    s.reg.Models(),
		"libraries": s.reg.Libraries(),
	})
}

type registryAddRequest struct {
	Name string `json:"name"`
	Path string `json:"path"`
}

func (s *Server) handleRegistryAddModel(w http.ResponseWriter, r *http.Request) {
	s.handleRegistryAdd(w, r, s.reg.AddModelFile)
}

func (s *Server) handleRegistryAddLibrary(w http.ResponseWriter, r *http.Request) {
	s.handleRegistryAdd(w, r, s.reg.AddLibraryFile)
}

// handleRegistryAdd hot-adds an artifact from a server-local path, named
// either by URL query (?name=exp&path=/models/exp.gob) or a JSON body.
func (s *Server) handleRegistryAdd(w http.ResponseWriter, r *http.Request, add func(name, path string) error) {
	q := r.URL.Query()
	req := registryAddRequest{Name: q.Get("name"), Path: q.Get("path")}
	if req.Path == "" {
		body := http.MaxBytesReader(w, r.Body, 1<<16)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decoding JSON request: %w", err))
			return
		}
	}
	if req.Path == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"path\""))
		return
	}
	if err := add(req.Name, req.Path); err != nil {
		s.reg.RecordLoadFailure(err)
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already registered") {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	s.handleRegistryList(w, r)
}

func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	req, g, status, err := s.parseRequest(w, r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancel()

	lib, err := s.reg.Library(req.Library)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	var model *nn.Model
	if req.Policy == "slap" {
		if req.Model == "" {
			writeError(w, http.StatusBadRequest, errors.New("policy \"slap\" requires \"model\" (see GET /v1/registry)"))
			return
		}
		if model, err = s.reg.Model(req.Model); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
	}

	t0 := time.Now()
	granted, release, err := s.sched.Acquire(ctx, req.Workers)
	if err != nil {
		writeError(w, schedStatus(err), err)
		return
	}
	queueMS := float64(time.Since(t0).Microseconds()) / 1000

	type outcome struct {
		resp *MapResponse
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		// The mapping holds its worker tokens until it actually finishes,
		// even if the handler has already answered 504 — that is what keeps
		// the global budget honest. Recovery runs before the deferred
		// release (LIFO), so a panicking mapping still hands its tokens
		// back and answers 500 instead of killing the process.
		defer release()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.AddPanic()
				ch <- outcome{nil, fmt.Errorf("mapping panicked: %v", p)}
			}
		}()
		resp, err := s.executeMap(ctx, req, g, lib, model, granted)
		if resp != nil {
			s.metrics.AddCuts(resp.CutsConsidered)
			s.metrics.ObservePeakCuts(resp.PeakCuts)
			rounds := resp.RoundsRun
			if rounds < 1 {
				rounds = 1
			}
			s.metrics.ObserveRounds(rounds)
			if n := len(resp.RoundStats); n > 1 {
				if gain, ok := roundAreaGain(resp.RoundStats[0], resp.RoundStats[n-1]); ok {
					s.metrics.ObserveRoundAreaGain(gain)
				}
			}
		}
		ch <- outcome{resp, err}
	}()

	select {
	case out := <-ch:
		if out.err != nil {
			writeError(w, schedStatus(out.err), out.err)
			return
		}
		out.resp.QueueMS = queueMS
		out.resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
		out.resp.Worker = s.cfg.WorkerName
		s.stampWorker(w)
		writeJSON(w, http.StatusOK, out.resp)
	case <-ctx.Done():
		writeError(w, schedStatus(ctx.Err()), fmt.Errorf("mapping abandoned: %w", ctx.Err()))
	}
}

// stampWorker sets the X-Slap-Worker response header on fleet nodes, so
// even payloads without a worker field (errors, raw shard frames) reveal
// which node answered.
func (s *Server) stampWorker(w http.ResponseWriter) {
	if s.cfg.WorkerName != "" {
		w.Header().Set("X-Slap-Worker", s.cfg.WorkerName)
	}
}

// executeMap runs one mapping with the granted worker count. Each request
// maps its own freshly decoded graph; the only shared state is the
// registry's model (read-only) and library (internally locked memo).
func (s *Server) executeMap(ctx context.Context, req *MapRequest, g *aig.AIG, lib *library.Library, model *nn.Model, workers int) (*MapResponse, error) {
	if s.faultHook != nil {
		s.faultHook("/v1/map")
	}
	target := req.Target
	if target == "" {
		target = "asic"
	}
	policy := req.Policy
	if policy == "" {
		policy = "default"
	}

	var cutPolicy cuts.Policy
	switch policy {
	case "default":
		cutPolicy = cuts.DefaultPolicy{Limit: req.Limit}
	case "unlimited":
		cutPolicy = cuts.UnlimitedPolicy{}
	case "shuffle":
		cutPolicy = &cuts.ShufflePolicy{Rng: rand.New(rand.NewSource(req.Seed)), Limit: req.Limit}
	case "slap":
		// handled below via core.SLAP
	default:
		return nil, fmt.Errorf("unknown policy %q (want default, unlimited, shuffle or slap)", policy)
	}

	streaming := !s.cfg.DisableStreaming
	resp := &MapResponse{Target: target, Workers: workers}
	switch target {
	case "lut":
		var res *lutmap.Result
		var err error
		if policy == "slap" {
			sl := core.New(model, lib)
			sl.Workers = workers
			sl.Batch = s.batcherFor(model)
			sl.Rounds = req.Rounds
			sl.DelayFactor = req.DelayFactor
			sl.Choices = req.Choices
			sl.ChoiceOpts = s.cfg.ChoiceOptions
			sl.Views = s.views
			if streaming {
				sl.Pool = s.pool
				res, err = sl.MapLUTStreamContext(ctx, g)
			} else {
				res, err = sl.MapLUTContext(ctx, g)
			}
		} else {
			mg, ch, cerr := s.requestChoiceView(ctx, g, req.Choices)
			if cerr != nil {
				return nil, cerr
			}
			opt := lutmap.Options{
				Policy: cutPolicy, Workers: workers,
				Rounds: req.Rounds, DelayFactor: req.DelayFactor, Choices: ch,
			}
			if streaming {
				opt.Pool = s.pool
				res, err = lutmap.MapStream(mg, opt)
			} else {
				res, err = lutmap.Map(mg, opt)
			}
		}
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp.Policy = res.PolicyName
		resp.LUTs = res.NumLUTs()
		resp.Depth = res.Depth
		resp.CutsConsidered = res.CutsConsidered
		resp.PeakCuts = res.PeakCuts
		resp.RoundsRun, resp.RoundStats = lutRounds(res.RoundStats)
		return resp, nil
	case "asic":
		var served *asicServed
		var err error
		if s.cache != nil {
			served, err = s.cachedMapASIC(ctx, req, g, lib, model, workers, policy, cutPolicy, streaming)
		} else {
			var res *mapper.Result
			if policy == "slap" {
				sl := core.New(model, lib)
				sl.Workers = workers
				sl.Batch = s.batcherFor(model)
				sl.Rounds = req.Rounds
				sl.DelayFactor = req.DelayFactor
				sl.Choices = req.Choices
				sl.ChoiceOpts = s.cfg.ChoiceOptions
				sl.Views = s.views
				if streaming {
					sl.Pool = s.pool
					res, err = sl.MapStreamContext(ctx, g)
				} else {
					res, err = sl.MapContext(ctx, g)
				}
			} else {
				mg, ch, cerr := s.requestChoiceView(ctx, g, req.Choices)
				if cerr != nil {
					return nil, cerr
				}
				opt := mapper.Options{
					Library: lib, Policy: cutPolicy, Workers: workers,
					Rounds: req.Rounds, DelayFactor: req.DelayFactor, Choices: ch,
				}
				if streaming {
					opt.Pool = s.pool
					res, err = mapper.MapStream(mg, opt)
				} else {
					res, err = mapper.Map(mg, opt)
				}
			}
			served = &asicServed{res: res}
		}
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res := served.res
		resp.Policy = res.PolicyName
		resp.PeakCuts = res.PeakCuts
		resp.Area = res.Area
		resp.Delay = res.Delay
		resp.ADP = res.ADP()
		resp.Cells = res.Netlist.NumCells()
		resp.CutsConsidered = res.CutsConsidered
		resp.MatchAttempts = res.MatchAttempts
		resp.Cached = served.cached
		resp.ECO = served.eco
		resp.DirtyFraction = served.dirty
		resp.RoundsRun, resp.RoundStats = asicRounds(res.RoundStats)
		if req.Verify {
			// Cached entries carry their verify bit; an entry cached without
			// verification is checked here without re-mapping.
			if !served.verified {
				if err := res.Netlist.EquivalentTo(g, 8, rand.New(rand.NewSource(99))); err != nil {
					return nil, fmt.Errorf("equivalence check failed: %w", err)
				}
			}
			resp.Verified = true
		}
		switch req.Netlist {
		case "", "none":
		case "verilog":
			var buf bytes.Buffer
			if err := res.Netlist.WriteVerilog(&buf); err != nil {
				return nil, err
			}
			resp.Netlist, resp.NetlistFormat = buf.String(), "verilog"
		case "blif":
			var buf bytes.Buffer
			if err := res.Netlist.WriteBLIF(&buf); err != nil {
				return nil, err
			}
			resp.Netlist, resp.NetlistFormat = buf.String(), "blif"
		default:
			return nil, fmt.Errorf("unknown netlist format %q (want verilog, blif or none)", req.Netlist)
		}
		return resp, nil
	default:
		return nil, fmt.Errorf("unknown target %q (want asic or lut)", target)
	}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	req, g, status, err := s.parseRequest(w, r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, errors.New("classify requires \"model\" (see GET /v1/registry)"))
		return
	}
	model, err := s.reg.Model(req.Model)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	lib, err := s.reg.Library(req.Library)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(req.TimeoutMS))
	defer cancel()

	t0 := time.Now()
	granted, release, err := s.sched.Acquire(ctx, req.Workers)
	if err != nil {
		writeError(w, schedStatus(err), err)
		return
	}

	type outcome struct {
		cls    *core.Classification
		shared bool
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer release()
		defer func() {
			if p := recover(); p != nil {
				s.metrics.AddPanic()
				ch <- outcome{nil, false, fmt.Errorf("classification panicked: %v", p)}
			}
		}()
		if s.faultHook != nil {
			s.faultHook("/v1/classify")
		}
		// Concurrent identical submissions (same graph, same model) share one
		// classification run; only the leader counts the cuts it processed.
		key := mapcache.KeyOf(g, fmt.Sprintf("classify/model=%p", model))
		cls, shared, err := s.classify.Do(key, func() (*core.Classification, error) {
			sl := core.New(model, lib)
			sl.Workers = granted
			sl.Batch = s.batcherFor(model)
			cls, err := sl.ClassifyContext(ctx, g)
			if cls != nil {
				s.metrics.AddCuts(cls.TotalCuts)
			}
			return cls, err
		})
		ch <- outcome{cls, shared, err}
	}()

	select {
	case out := <-ch:
		if out.err != nil {
			writeError(w, schedStatus(out.err), out.err)
			return
		}
		resp := &ClassifyResponse{
			Model:     req.Model,
			Nodes:     len(out.cls.Nodes),
			Cuts:      out.cls.TotalCuts,
			Histogram: out.cls.Histogram,
			Workers:   granted,
			Worker:    s.cfg.WorkerName,
			Shared:    out.shared,
			ElapsedMS: float64(time.Since(t0).Microseconds()) / 1000,
		}
		if req.Detail {
			resp.Detail = out.cls.Nodes
		}
		s.stampWorker(w)
		writeJSON(w, http.StatusOK, resp)
	case <-ctx.Done():
		writeError(w, schedStatus(ctx.Err()), fmt.Errorf("classification abandoned: %w", ctx.Err()))
	}
}
